package fluodb

import (
	"fluodb/internal/agg"
	"fluodb/internal/expr"
	"fluodb/internal/types"
)

// Re-exported value model. FluoDB's engine packages live under
// internal/; these aliases are the supported public surface.
type (
	// Value is a SQL scalar (NULL, BOOLEAN, BIGINT, DOUBLE or VARCHAR).
	Value = types.Value
	// Kind is a SQL type tag.
	Kind = types.Kind
	// Row is a tuple of values.
	Row = types.Row
	// Schema is an ordered list of columns.
	Schema = types.Schema
	// Column is one attribute of a relation.
	Column = types.Column
)

// SQL type tags.
const (
	KindNull   = types.KindNull
	KindBool   = types.KindBool
	KindInt    = types.KindInt
	KindFloat  = types.KindFloat
	KindString = types.KindString
)

// Null is the SQL NULL value.
var Null = types.Null

// Int builds a BIGINT value.
func Int(i int64) Value { return types.NewInt(i) }

// Float builds a DOUBLE value.
func Float(f float64) Value { return types.NewFloat(f) }

// Str builds a VARCHAR value.
func Str(s string) Value { return types.NewString(s) }

// Bool builds a BOOLEAN value.
func Bool(b bool) Value { return types.NewBool(b) }

// NewSchema builds a schema from alternating name/kind pairs, e.g.
// NewSchema("id", KindInt, "score", KindFloat). It panics on malformed
// input; it is intended for literals.
func NewSchema(pairs ...interface{}) Schema { return types.NewSchema(pairs...) }

// ScalarFunc describes a user-defined scalar function; see
// RegisterFunc.
type ScalarFunc = expr.ScalarFunc

// RegisterFunc registers a scalar UDF, making it callable from SQL by
// name. It replaces any function with the same (case-insensitive) name,
// including built-ins.
func RegisterFunc(f *ScalarFunc) { expr.RegisterFunc(f) }

// AggState is a user-defined aggregate's partial state: weighted,
// mergeable and cloneable (see internal/agg's documentation for the
// weight semantics — weights carry both the multiset multiplicity and
// poissonized bootstrap resamples).
type AggState = agg.State

// RegisterAggregate registers a UDAF under the given name. The
// constructor receives the constant arguments after the first (e.g. the
// q of QUANTILE(x, q)).
func RegisterAggregate(name string, newState func(params []Value) (AggState, error)) {
	agg.Register(agg.NewFunc(name, newState))
}
