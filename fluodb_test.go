package fluodb_test

import (
	"bytes"
	"math"
	"strings"
	"testing"

	"fluodb"
	"fluodb/workloads"
)

func smallDB(t *testing.T) *fluodb.DB {
	t.Helper()
	db := fluodb.Open()
	tab := db.CreateTable("sessions", fluodb.NewSchema(
		"session_id", fluodb.KindInt,
		"buffer_time", fluodb.KindFloat,
		"play_time", fluodb.KindFloat,
	))
	for i := 0; i < 6; i++ {
		err := tab.Append(fluodb.Row{
			fluodb.Int(int64(i + 1)),
			fluodb.Float(float64(10 * (i + 1))),
			fluodb.Float(float64(100 * (i + 1))),
		})
		if err != nil {
			t.Fatal(err)
		}
	}
	return db
}

func TestOpenCreateQuery(t *testing.T) {
	db := smallDB(t)
	res, err := db.Query("SELECT COUNT(*), AVG(play_time) FROM sessions")
	if err != nil {
		t.Fatal(err)
	}
	if c, _ := res.Rows[0][0].AsFloat(); c != 6 {
		t.Errorf("count = %v", c)
	}
	if a, _ := res.Rows[0][1].AsFloat(); a != 350 {
		t.Errorf("avg = %v", a)
	}
	if res.Schema[0].Name != "COUNT(*)" {
		t.Errorf("schema = %v", res.Schema)
	}
}

func TestSBIThroughPublicAPI(t *testing.T) {
	db := smallDB(t)
	res, err := db.Query(`SELECT AVG(play_time) FROM sessions
		WHERE buffer_time > (SELECT AVG(buffer_time) FROM sessions)`)
	if err != nil {
		t.Fatal(err)
	}
	if got, _ := res.Rows[0][0].AsFloat(); got != 500 {
		t.Errorf("SBI = %v, want 500", got)
	}
}

func TestTableManagement(t *testing.T) {
	db := smallDB(t)
	if names := db.TableNames(); len(names) != 1 || names[0] != "sessions" {
		t.Errorf("names = %v", names)
	}
	tab, ok := db.Table("SESSIONS")
	if !ok || tab.NumRows() != 6 {
		t.Fatal("case-insensitive lookup")
	}
	if tab.Schema().ColumnIndex("play_time") != 2 {
		t.Error("schema")
	}
	if !db.DropTable("sessions") {
		t.Error("drop")
	}
	if _, err := db.Query("SELECT 1 FROM sessions"); err == nil {
		t.Error("query after drop should fail")
	}
}

func TestCSVRoundTripPublic(t *testing.T) {
	db := smallDB(t)
	tab, _ := db.Table("sessions")
	var buf bytes.Buffer
	if err := tab.SaveCSV(&buf); err != nil {
		t.Fatal(err)
	}
	db2 := fluodb.Open()
	tab2, err := db2.LoadCSV("sessions", &buf)
	if err != nil {
		t.Fatal(err)
	}
	if tab2.NumRows() != 6 {
		t.Errorf("rows = %d", tab2.NumRows())
	}
}

func TestShuffleKeepsRows(t *testing.T) {
	db := smallDB(t)
	tab, _ := db.Table("sessions")
	tab.Shuffle(42)
	res, err := db.Query("SELECT SUM(play_time) FROM sessions")
	if err != nil {
		t.Fatal(err)
	}
	if got, _ := res.Rows[0][0].AsFloat(); got != 2100 {
		t.Errorf("sum after shuffle = %v", got)
	}
}

func TestExplainShowsBlocks(t *testing.T) {
	db := smallDB(t)
	out, err := db.Explain(`SELECT AVG(play_time) FROM sessions
		WHERE buffer_time > (SELECT AVG(buffer_time) FROM sessions)`)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "block 0 (scalar)") || !strings.Contains(out, "block 1 (root)") {
		t.Errorf("explain:\n%s", out)
	}
}

func TestQueryOnlinePublic(t *testing.T) {
	db := fluodb.Open()
	workloads.AttachConviva(db, 3000, 5)
	exact, err := db.Query(`SELECT AVG(play_time) FROM sessions
		WHERE buffer_time > (SELECT AVG(buffer_time) FROM sessions)`)
	if err != nil {
		t.Fatal(err)
	}
	truth, _ := exact.Rows[0][0].AsFloat()

	oq, err := db.QueryOnline(`SELECT AVG(play_time) FROM sessions
		WHERE buffer_time > (SELECT AVG(buffer_time) FROM sessions)`,
		fluodb.OnlineOptions{Batches: 10, Trials: 30, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	steps := 0
	var last *fluodb.Snapshot
	for !oq.Done() {
		s, err := oq.Step()
		if err != nil {
			t.Fatal(err)
		}
		last = s
		steps++
		if !s.Rows[0][0].HasCI {
			t.Fatal("aggregate cell must carry a CI")
		}
	}
	if steps != 10 || oq.Batch() != 10 {
		t.Errorf("steps = %d", steps)
	}
	got, _ := last.Rows[0][0].Value.AsFloat()
	if math.Abs(got-truth) > 1e-9 {
		t.Errorf("final = %v, want %v", got, truth)
	}
	if _, err := oq.Step(); err != fluodb.ErrDone {
		t.Errorf("err = %v, want ErrDone", err)
	}
	if oq.Metrics().Batches != 10 {
		t.Error("metrics")
	}
}

func TestQueryOnlineEarlyStop(t *testing.T) {
	db := fluodb.Open()
	workloads.AttachConviva(db, 2000, 6)
	oq, err := db.QueryOnline(`SELECT AVG(play_time) FROM sessions`,
		fluodb.OnlineOptions{Batches: 20, Trials: 20, Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	last, err := oq.Run(func(s *fluodb.Snapshot) bool {
		return s.RSD() > 0.005 // stop when accurate enough
	})
	if err != nil {
		t.Fatal(err)
	}
	if last == nil || oq.Batch() == 0 {
		t.Fatal("no snapshots")
	}
}

func TestRegisterUDFPublic(t *testing.T) {
	fluodb.RegisterFunc(&fluodb.ScalarFunc{
		Name: "CLAMP100", MinArgs: 1, MaxArgs: 1,
		Eval: func(args []fluodb.Value) fluodb.Value {
			f, ok := args[0].AsFloat()
			if !ok {
				return fluodb.Null
			}
			if f > 100 {
				f = 100
			}
			return fluodb.Float(f)
		},
	})
	db := smallDB(t)
	res, err := db.Query("SELECT SUM(CLAMP100(play_time)) FROM sessions")
	if err != nil {
		t.Fatal(err)
	}
	if got, _ := res.Rows[0][0].AsFloat(); got != 600 {
		t.Errorf("sum of clamped = %v", got)
	}
}

func TestRegisterUDAFPublic(t *testing.T) {
	fluodb.RegisterAggregate("SUMSQ", func(params []fluodb.Value) (fluodb.AggState, error) {
		return &sumsq{}, nil
	})
	db := smallDB(t)
	res, err := db.Query("SELECT SUMSQ(buffer_time) FROM sessions")
	if err != nil {
		t.Fatal(err)
	}
	want := 100.0 + 400 + 900 + 1600 + 2500 + 3600
	if got, _ := res.Rows[0][0].AsFloat(); got != want {
		t.Errorf("sumsq = %v, want %v", got, want)
	}
	// UDAFs participate in online execution too.
	oq, err := db.QueryOnline("SELECT SUMSQ(buffer_time) FROM sessions",
		fluodb.OnlineOptions{Batches: 3, Trials: 10, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	last, err := oq.Run(nil)
	if err != nil {
		t.Fatal(err)
	}
	if got, _ := last.Rows[0][0].Value.AsFloat(); got != want {
		t.Errorf("online sumsq = %v, want %v", got, want)
	}
}

type sumsq struct{ s float64 }

func (x *sumsq) Add(v fluodb.Value, w float64) {
	if f, ok := v.AsFloat(); ok {
		x.s += f * f * w
	}
}
func (x *sumsq) Merge(o fluodb.AggState)           { x.s += o.(*sumsq).s }
func (x *sumsq) Result(scale float64) fluodb.Value { return fluodb.Float(x.s * scale) }
func (x *sumsq) Clone() fluodb.AggState            { c := *x; return &c }

func TestWorkloadsSuiteExposed(t *testing.T) {
	suite := workloads.Suite()
	if len(suite) != 8 {
		t.Fatalf("suite size = %d", len(suite))
	}
	if q, ok := workloads.ByName("SBI"); !ok || q.Dataset != "conviva" {
		t.Error("ByName(SBI)")
	}
	db := fluodb.Open()
	workloads.AttachTPCH(db, 500, 10, 1)
	if _, ok := db.Table("partsupp"); !ok {
		t.Error("partsupp missing")
	}
	q17, _ := workloads.ByName("Q17")
	if _, err := db.Query(q17.SQL); err != nil {
		t.Errorf("Q17 on attached TPCH: %v", err)
	}
}

func TestQueryErrorsSurface(t *testing.T) {
	db := smallDB(t)
	if _, err := db.Query("SELEC nope"); err == nil {
		t.Error("parse error should surface")
	}
	if _, err := db.Query("SELECT nope FROM sessions"); err == nil {
		t.Error("bind error should surface")
	}
	if _, err := db.QueryOnline("SELECT session_id FROM sessions", fluodb.OnlineOptions{}); err == nil {
		t.Error("projection online should be rejected")
	}
	if _, err := db.Explain("SELECT * FROM nope"); err == nil {
		t.Error("explain error should surface")
	}
}

func TestSaveDirOpenDir(t *testing.T) {
	db := smallDB(t)
	dir := t.TempDir() + "/db"
	if err := db.SaveDir(dir); err != nil {
		t.Fatal(err)
	}
	db2, err := fluodb.OpenDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	res, err := db2.Query("SELECT SUM(play_time) FROM sessions")
	if err != nil {
		t.Fatal(err)
	}
	if got, _ := res.Rows[0][0].AsFloat(); got != 2100 {
		t.Errorf("sum after reopen = %v", got)
	}
	if _, err := fluodb.OpenDir(t.TempDir()); err == nil {
		t.Error("empty dir should fail")
	}
}

func TestExecDDLAndDML(t *testing.T) {
	db := fluodb.Open()
	if _, err := db.Exec(`CREATE TABLE metrics (id INT, name VARCHAR, score DOUBLE, ok BOOLEAN)`); err != nil {
		t.Fatal(err)
	}
	r, err := db.Exec(`INSERT INTO metrics VALUES (1, 'a', 2.5, TRUE), (2, 'b', 1 + 0.5, FALSE)`)
	if err != nil {
		t.Fatal(err)
	}
	if r.RowsAffected != 2 {
		t.Fatalf("affected = %d", r.RowsAffected)
	}
	// column-subset insert fills the rest with NULL
	if _, err := db.Exec(`INSERT INTO metrics (id, score) VALUES (3, ABS(-9))`); err != nil {
		t.Fatal(err)
	}
	res, err := db.Exec(`SELECT COUNT(*), SUM(score), COUNT(name) FROM metrics`)
	if err != nil {
		t.Fatal(err)
	}
	row := res.Result.Rows[0]
	if c, _ := row[0].AsFloat(); c != 3 {
		t.Errorf("count = %v", c)
	}
	if s, _ := row[1].AsFloat(); s != 2.5+1.5+9 {
		t.Errorf("sum = %v", s)
	}
	if c, _ := row[2].AsFloat(); c != 2 {
		t.Errorf("count(name) = %v (NULL must not count)", c)
	}
	if _, err := db.Exec(`DROP TABLE metrics;`); err != nil {
		t.Fatal(err)
	}
	if _, ok := db.Table("metrics"); ok {
		t.Error("table should be dropped")
	}
}

func TestExecCoercionAndErrors(t *testing.T) {
	db := fluodb.Open()
	if _, err := db.Exec(`CREATE TABLE t (i INT, f DOUBLE, s VARCHAR)`); err != nil {
		t.Fatal(err)
	}
	// int literal into DOUBLE column, float into INT (truncates), int into VARCHAR
	if _, err := db.Exec(`INSERT INTO t VALUES (2.9, 3, 42)`); err != nil {
		t.Fatal(err)
	}
	res, _ := db.Exec(`SELECT i, f, s FROM t`)
	row := res.Result.Rows[0]
	if row[0].Int() != 2 || row[1].Float() != 3 || row[2].Str() != "42" {
		t.Errorf("coerced row = %v", row)
	}

	bad := []string{
		`CREATE TABLE t (x INT)`,                         // already exists
		`CREATE TABLE u (x WIDGET)`,                      // unknown type
		`INSERT INTO nope VALUES (1)`,                    // unknown table
		`INSERT INTO t (zz) VALUES (1)`,                  // unknown column
		`INSERT INTO t VALUES (1, 2)`,                    // arity
		`INSERT INTO t VALUES ((SELECT 1 FROM t), 1, 2)`, // subquery
		`DROP TABLE nope`,
		`UPDATE t SET x = 1`,                   // unsupported statement
		`INSERT INTO t VALUES ('str', 1, 'x')`, // string into INT
	}
	for _, sql := range bad {
		if _, err := db.Exec(sql); err == nil {
			t.Errorf("Exec(%q) should fail", sql)
		}
	}
}

func TestExecSelectPassthrough(t *testing.T) {
	db := smallDB(t)
	r, err := db.Exec(`SELECT COUNT(*) FROM sessions;`)
	if err != nil {
		t.Fatal(err)
	}
	if r.Result == nil {
		t.Fatal("SELECT through Exec should return a result")
	}
	if c, _ := r.Result.Rows[0][0].AsFloat(); c != 6 {
		t.Errorf("count = %v", c)
	}
}

func TestExecScript(t *testing.T) {
	db := fluodb.Open()
	results, err := db.ExecScript(`
		CREATE TABLE pts (x INT, y DOUBLE);
		INSERT INTO pts VALUES (1, 1.5), (2, 2.5); -- two rows
		SELECT SUM(y) FROM pts`)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 3 {
		t.Fatalf("results = %d", len(results))
	}
	if results[1].RowsAffected != 2 {
		t.Errorf("inserted = %d", results[1].RowsAffected)
	}
	if got, _ := results[2].Result.Rows[0][0].AsFloat(); got != 4 {
		t.Errorf("sum = %v", got)
	}
	// error mid-script returns partial results
	partial, err := db.ExecScript(`INSERT INTO pts VALUES (3, 3.5); SELECT nope FROM pts`)
	if err == nil {
		t.Fatal("bad script should fail")
	}
	if len(partial) != 1 {
		t.Errorf("partial results = %d", len(partial))
	}
}

func TestPublicTableAccessors(t *testing.T) {
	db := smallDB(t)
	tab, _ := db.Table("sessions")
	if tab.Name() != "sessions" {
		t.Error("Name")
	}
	if len(tab.Rows()) != 6 {
		t.Error("Rows")
	}
	dir := t.TempDir()
	path := dir + "/x.csv"
	if err := tab.SaveCSVFile(path); err != nil {
		t.Fatal(err)
	}
	db2 := fluodb.Open()
	t2, err := db2.LoadCSVFile("copy", path)
	if err != nil {
		t.Fatal(err)
	}
	if t2.NumRows() != 6 {
		t.Error("LoadCSVFile rows")
	}
	if _, err := db2.LoadCSVFile("x", dir+"/missing.csv"); err == nil {
		t.Error("missing file should fail")
	}
}

func TestApproxCountDistinctEndToEnd(t *testing.T) {
	db := fluodb.Open()
	workloads.AttachConviva(db, 20000, 61)
	exact, err := db.Query("SELECT COUNT(DISTINCT user_id) FROM sessions")
	if err != nil {
		t.Fatal(err)
	}
	approx, err := db.Query("SELECT APPROX_COUNT_DISTINCT(user_id) FROM sessions")
	if err != nil {
		t.Fatal(err)
	}
	want, _ := exact.Rows[0][0].AsFloat()
	got, _ := approx.Rows[0][0].AsFloat()
	if math.Abs(got-want)/want > 0.07 {
		t.Errorf("approx = %v, exact = %v", got, want)
	}
	// online too
	oq, err := db.QueryOnline("SELECT APPROX_COUNT_DISTINCT(user_id) FROM sessions",
		fluodb.OnlineOptions{Batches: 5, Trials: 10, Seed: 62})
	if err != nil {
		t.Fatal(err)
	}
	final, err := oq.Run(nil)
	if err != nil {
		t.Fatal(err)
	}
	gotOnline, _ := final.Rows[0][0].Value.AsFloat()
	if math.Abs(gotOnline-want)/want > 0.07 {
		t.Errorf("online approx = %v, exact = %v", gotOnline, want)
	}
}
