module fluodb

go 1.22
