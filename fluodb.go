// Package fluodb is a parallel online query execution engine
// implementing G-OLA (Generalized On-Line Aggregation, SIGMOD 2015): it
// answers OLAP SQL queries — including arbitrarily nested aggregate
// subqueries — by streaming random mini-batches of the data and
// presenting continuously refined approximate answers with bootstrap
// confidence intervals, which the caller can stop as soon as the
// accuracy suffices.
//
// Basic usage:
//
//	db := fluodb.Open()
//	t := db.CreateTable("sessions", fluodb.NewSchema(
//	    "buffer_time", fluodb.KindFloat, "play_time", fluodb.KindFloat))
//	t.Append(fluodb.Row{fluodb.Float(12.5), fluodb.Float(340)})
//	...
//	exact, err := db.Query(`SELECT AVG(play_time) FROM sessions`)
//
// Online execution with progressive refinement:
//
//	oq, err := db.QueryOnline(`SELECT AVG(play_time) FROM sessions
//	    WHERE buffer_time > (SELECT AVG(buffer_time) FROM sessions)`,
//	    fluodb.OnlineOptions{Batches: 50})
//	for !oq.Done() {
//	    snap, err := oq.Step()
//	    // snap.Rows carries point estimates + confidence intervals;
//	    // stop whenever snap.RSD() is small enough.
//	}
package fluodb

import (
	"io"

	"fluodb/internal/exec"
	"fluodb/internal/plan"
	"fluodb/internal/storage"
)

// DB is an in-memory FluoDB database: a catalog of tables plus the
// batch and online execution engines.
type DB struct {
	cat *storage.Catalog
}

// Open creates an empty database.
func Open() *DB {
	return &DB{cat: storage.NewCatalog()}
}

// Table is a handle to a stored table.
type Table struct {
	db *DB
	t  *storage.Table
}

// CreateTable registers a new empty table, replacing any table with the
// same name.
func (db *DB) CreateTable(name string, schema Schema) *Table {
	t := storage.NewTable(name, schema)
	db.cat.Put(t)
	return &Table{db: db, t: t}
}

// Table looks up a table handle by name.
func (db *DB) Table(name string) (*Table, bool) {
	t, ok := db.cat.Get(name)
	if !ok {
		return nil, false
	}
	return &Table{db: db, t: t}, true
}

// DropTable removes a table; it reports whether the table existed.
func (db *DB) DropTable(name string) bool { return db.cat.Drop(name) }

// TableNames lists the registered tables, sorted.
func (db *DB) TableNames() []string { return db.cat.Names() }

// LoadCSV reads a table from a typed-header CSV stream (see SaveCSV)
// and registers it under the given name.
func (db *DB) LoadCSV(name string, r io.Reader) (*Table, error) {
	t, err := storage.ReadCSV(name, r)
	if err != nil {
		return nil, err
	}
	db.cat.Put(t)
	return &Table{db: db, t: t}, nil
}

// LoadCSVFile is LoadCSV over a file path.
func (db *DB) LoadCSVFile(name, path string) (*Table, error) {
	t, err := storage.LoadCSVFile(name, path)
	if err != nil {
		return nil, err
	}
	db.cat.Put(t)
	return &Table{db: db, t: t}, nil
}

// Append adds one row.
func (t *Table) Append(row Row) error { return t.t.Append(row) }

// AppendAll adds many rows.
func (t *Table) AppendAll(rows []Row) error { return t.t.AppendAll(rows) }

// Name returns the table name.
func (t *Table) Name() string { return t.t.Name() }

// Schema returns the table schema.
func (t *Table) Schema() Schema { return t.t.Schema() }

// NumRows returns the row count.
func (t *Table) NumRows() int { return t.t.NumRows() }

// Rows exposes the stored rows; callers must not mutate them.
func (t *Table) Rows() []Row { return t.t.Rows() }

// SaveCSV writes the table with a typed header row ("name:type").
func (t *Table) SaveCSV(w io.Writer) error { return t.t.WriteCSV(w) }

// SaveCSVFile is SaveCSV over a file path.
func (t *Table) SaveCSVFile(path string) error { return t.t.SaveCSVFile(path) }

// Shuffle randomly permutes the table in place (registering the
// permuted copy under the same name). This is the pre-processing step
// of §2: after shuffling, any prefix of the table is a uniform random
// sample, which online execution relies on when the physical data order
// correlates with query attributes.
func (t *Table) Shuffle(seed int64) {
	t.t = t.t.Shuffled(seed)
	t.db.cat.Put(t.t)
}

// Result is a materialized exact query result.
type Result struct {
	Schema Schema
	Rows   []Row
}

// Query parses, plans and executes a SQL query exactly over the full
// data (the traditional batched execution baseline).
func (db *DB) Query(sql string) (*Result, error) {
	q, err := plan.Compile(sql, db.cat)
	if err != nil {
		return nil, err
	}
	res, err := exec.Run(q, db.cat)
	if err != nil {
		return nil, err
	}
	return &Result{Schema: res.Schema, Rows: res.Rows}, nil
}

// Explain returns the compiled lineage-block plan of a query: one SPJA
// block per nested aggregate subquery plus the root, with the broadcast
// parameters ($0, $1, ...) connecting them.
func (db *DB) Explain(sql string) (string, error) {
	q, err := plan.Compile(sql, db.cat)
	if err != nil {
		return "", err
	}
	return q.Explain(), nil
}

// SaveDir persists every table as a typed-header CSV under dir
// (creating it if needed).
func (db *DB) SaveDir(dir string) error { return db.cat.SaveDir(dir) }

// OpenDir loads a database persisted with SaveDir (or any directory of
// typed-header CSVs; file stems become table names).
func OpenDir(dir string) (*DB, error) {
	cat, err := storage.LoadDir(dir)
	if err != nil {
		return nil, err
	}
	return &DB{cat: cat}, nil
}
