#!/bin/sh
# Advisory perf diff: run the fold benchmark fresh and compare ns/row
# per scenario against the committed BENCH_fold.json trajectory.
# Prints WARN lines for regressions above 10% and always exits 0 —
# benchmark noise on shared CI machines must not fail the tier-1 gate,
# but a warning in the check.sh output tells the author to re-measure.
#
# Usage: scripts/benchdiff.sh [baseline.json]   (default BENCH_fold.json)
set -u
cd "$(dirname "$0")/.."

baseline="${1:-BENCH_fold.json}"
go run ./cmd/flbench -experiment fold -rows 100000 -compare "$baseline" || true
exit 0
