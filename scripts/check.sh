#!/bin/sh
# Tier-1 gate: everything a PR must keep green.
#
#   go vet           static checks
#   go build         the whole tree compiles
#   go test -race    full suite under the race detector
#   determinism      pooled/spawned parallel runs bit-identical to serial
#   alloc regression steady-state fold stays allocation-free; pooled
#                    batch feed stays amortized-zero
#                    (run without -race: its instrumentation allocates,
#                    so the alloc tests skip themselves under it)
#   columnar gates   segment-sweep fold stays at 0 allocs/tuple; the
#                    columnar/row bit-identity sweep re-runs under -race
#   ledger gates     resource-ledger charge counters match ground truth,
#                    per-batch collection allocates nothing, and budget
#                    degradation stays bit-identical across P
#   chaos gate       short seeded fault soak under -race: bit-identical
#                    answers under injected panics/stragglers/corruption,
#                    checkpoint round-trips, zero leaked goroutines
#   shard gates      N-shard × per-shard-P bit-identity matrix under
#                    -race, plus a shard-kill/straggler chaos slice with
#                    coordinator recovery (replacement incarnations and
#                    rolling-checkpoint restores)
#   benchdiff        advisory fold ns/row diff vs BENCH_fold.json
set -eu
cd "$(dirname "$0")/.."

echo "== go vet ./..."
go vet ./...

echo "== go build ./..."
go build ./...

echo "== go test -race ./..."
go test -race ./...

echo "== parallel determinism (pool P in {1,2,4,8} + spawn vs serial, recompute replay)"
# TestParallelFoldBitIdentical sweeps the pooled runtime across
# P∈{2,4,8} plus the legacy per-batch-spawn path against the serial
# (P=1) snapshots; TestRecomputeReplayBitIdentical forces a mid-run
# variation-range failure with Parallelism 4 and asserts the replayed
# result is byte-identical to serial (the prefetch-invalidation guard).
go test ./internal/core -run 'TestParallelFoldBitIdentical|TestRecomputeReplayBitIdentical' -count=1

echo "== alloc regression (go test ./internal/core -run TestFoldSteadyStateAllocs)"
go test ./internal/core -run TestFoldSteadyStateAllocs -count=1

echo "== alloc regression with instrumentation on (profiled subtests)"
go test ./internal/core -run 'TestFoldSteadyStateAllocs/.+/profiled' -count=1

echo "== alloc regression with span timelines on (spanned subtests)"
# The span tracer records at batch/phase/task granularity into
# preallocated slabs, so the per-tuple fold loop must stay at zero
# allocations with a SpanTracer attached.
go test ./internal/core -run 'TestFoldSteadyStateAllocs/.+/spanned' -count=1

echo "== span timeline smoke (go test ./internal/core -run TestSpanHierarchyParallelQuery)"
# A P=4 multi-key query must export a Chrome trace that parses as JSON
# with every child span inside its parent and every worker task inside
# a mini-batch (otrace.ValidateChromeJSON re-checks nesting from the
# exported bytes, not the in-memory slabs).
go test ./internal/core -run 'TestSpanHierarchyParallelQuery|TestSpanInstantCorrelation' -count=1

echo "== pooled batch alloc gate (go test ./internal/core -run TestPooledFeedBatchAllocs)"
go test ./internal/core -run TestPooledFeedBatchAllocs -count=1

echo "== columnar fold alloc gate (go test ./internal/core -run TestColumnarFoldAllocs)"
# The segment-sweep hot path must stay at zero allocations per tuple
# once scratch is warm (kernels, tri/selection vectors, weight buffers
# and the group memo are all reused across batches).
go test ./internal/core -run TestColumnarFoldAllocs -count=1

echo "== dims-grouped columnar alloc gate (go test ./internal/core -run TestColumnarDimsFoldAllocs)"
# The dims-grouped sweep must also stay at zero allocations once the
# join memo has seen every distinct fact key combination (joined-row
# expansion and group resolution both run through word-code memos).
go test ./internal/core -run TestColumnarDimsFoldAllocs -count=1

echo "== columnar bit-identity under -race (go test -race ./internal/core -run TestColumnarBitIdentical)"
# A small race-instrumented slice of the columnar/row equivalence sweep
# (including the dims-grouped and tri-kernel uncertain-where queries):
# shard-parallel segment sweeps share plan and colstore state read-only,
# and the race detector holds them to it.
go test -race ./internal/core -run 'TestColumnarBitIdentical|TestColumnarSubsampleBitIdentical' -count=1

echo "== tri-kernel parity + segseal chaos (go test ./internal/core)"
# The vectorized tri-state classifier must match per-row evalTri
# decision-for-decision across the expression × range matrix, and
# injected segment-cache drops on the incremental seal seam must
# re-encode and re-engage without perturbing bit-identity.
go test ./internal/core -run 'TestTriKernelParity|TestTriKernelRefusals|TestChaosSegSealDrop' -count=1

echo "== resource ledger gates (ground truth, 0-alloc collection, budget bit-identity)"
# The group-table charge counter must agree with an independent walk of
# the final table; the per-batch residency collection (walk + GC read +
# usage stamp) must allocate nothing; and a 1-byte MaxMemoryBytes budget
# forcing all three degradation rungs must stay bit-identical to the
# unbudgeted run across seeds and P∈{1,2,4,8}, with checkpoint/resume
# re-engaging the latched rungs.
go test ./internal/core -run 'TestLedgerGroundTruth|TestLedgerUncertainCharge|TestLedgerCollectAllocs|TestBudgetDegradeBitIdentical|TestBudgetCheckpointResume' -count=1

echo "== mem families conformance (go test ./internal/metrics -run 'Conformance')"
# The gola_mem_*/gola_gc_* families and the reason-split eviction
# counter must pass the strict Prometheus exposition parser.
go test ./internal/metrics -run 'TestMemFamiliesConformance|TestExpositionConformance' -count=1

echo "== go vet (observability packages)"
go vet ./internal/metrics/ ./internal/dashboard/ ./internal/audit/

echo "== statistical gate (go test ./internal/audit -run TestAuditGate)"
# Fails if bootstrap-CI coverage on the small fixed-seed workload drops
# below 0.90, if any committed deterministic decision stands
# contradicted, or if the uncertain set stops draining monotonically.
go test ./internal/audit -run TestAuditGate -count=1

echo "== chaos gate (go test -race ./internal/bench -run TestChaosGate)"
# 90 seeded fault schedules under the race detector: every (fault
# profile, run mode, query) combination several times over. Each run
# must be bit-identical to the fault-free reference, every checkpoint
# round-trip byte-identical, and runtime.NumGoroutine must return to its
# pre-soak level. The full soak is `make chaos` (1000+ schedules).
go test -race ./internal/bench -run TestChaosGate -count=1

echo "== shard bit-identity matrix under -race (go test -race ./internal/core -run TestShardFoldBitIdentical)"
# The coordinator must be a pure implementation detail: N∈{1,2,4,8}
# shard engines × per-shard P∈{1,4} all reproduce the unsharded serial
# trajectory byte-for-byte, with shard goroutines and the merge path
# race-instrumented.
go test -race ./internal/core -run 'TestShardFoldBitIdentical|TestShardKillRecovery|TestShardCheckpointRestoreMidRun' -count=1

echo "== shard chaos gate (go test -race ./internal/bench -run TestShardChaosGate)"
# 60 seeded shard-fault schedules: injected shard deaths and stragglers
# across plain/cancel/checkpoint modes, every run bit-identical to its
# fault-free same-topology reference, recovery absorbed by the ladder
# (re-dispatch → rolling-checkpoint restore), zero leaked goroutines.
go test -race ./internal/bench -run TestShardChaosGate -count=1

echo "== benchdiff (advisory, never fails the gate)"
sh scripts/benchdiff.sh || true

echo "== check OK"
