#!/bin/sh
# Tier-1 gate: everything a PR must keep green.
#
#   go vet           static checks
#   go build         the whole tree compiles
#   go test -race    full suite under the race detector
#   alloc regression steady-state fold stays allocation-free
#                    (run without -race: its instrumentation allocates,
#                    so the alloc tests skip themselves under it)
set -eu
cd "$(dirname "$0")/.."

echo "== go vet ./..."
go vet ./...

echo "== go build ./..."
go build ./...

echo "== go test -race ./..."
go test -race ./...

echo "== alloc regression (go test ./internal/core -run TestFoldSteadyStateAllocs)"
go test ./internal/core -run TestFoldSteadyStateAllocs -count=1

echo "== alloc regression with instrumentation on (profiled subtests)"
go test ./internal/core -run 'TestFoldSteadyStateAllocs/.+/profiled' -count=1

echo "== go vet (observability packages)"
go vet ./internal/metrics/ ./internal/dashboard/ ./internal/audit/

echo "== statistical gate (go test ./internal/audit -run TestAuditGate)"
# Fails if bootstrap-CI coverage on the small fixed-seed workload drops
# below 0.90, if any committed deterministic decision stands
# contradicted, or if the uncertain set stops draining monotonically.
go test ./internal/audit -run TestAuditGate -count=1

echo "== check OK"
