package fluodb_test

import (
	"errors"
	"testing"

	"fluodb"
	"fluodb/workloads"
)

// Checkpoint bytes arriving over a network or from disk can be damaged
// anywhere: the magic/version/mode header, the options fingerprint, the
// payload, or the FNV-1a trailer. ResumeOnline must refuse every such
// mutation with a typed ErrKindCheckpoint error — never panic, and
// never resume from silently-wrong state.

// corruptionCheckpoint runs a query two batches in and returns its
// checkpoint plus the context to resume it.
func corruptionCheckpoint(t *testing.T) (*fluodb.DB, string, fluodb.OnlineOptions, []byte) {
	t.Helper()
	db := fluodb.Open()
	workloads.AttachConviva(db, 4000, 17)
	const sql = `SELECT device, COUNT(*), AVG(play_time) FROM sessions GROUP BY device`
	opt := fluodb.OnlineOptions{Batches: 4, Trials: 20, Seed: 99}
	oq, err := db.QueryOnline(sql, opt)
	if err != nil {
		t.Fatal(err)
	}
	defer oq.Close()
	for i := 0; i < 2; i++ {
		if _, err := oq.Step(); err != nil {
			t.Fatal(err)
		}
	}
	ck, err := oq.Checkpoint()
	if err != nil {
		t.Fatal(err)
	}
	return db, sql, opt, ck
}

// mustRefuse asserts a damaged checkpoint is rejected with the typed
// error (recover guards against the "never panic" half of the contract).
func mustRefuse(t *testing.T, db *fluodb.DB, sql string, opt fluodb.OnlineOptions, ck []byte, label string) {
	t.Helper()
	defer func() {
		if v := recover(); v != nil {
			t.Fatalf("%s: ResumeOnline panicked: %v", label, v)
		}
	}()
	oq, err := db.ResumeOnline(sql, opt, ck)
	if err == nil {
		oq.Close()
		t.Fatalf("%s: corrupted checkpoint accepted", label)
	}
	if !errors.Is(err, fluodb.ErrKindCheckpoint) {
		t.Fatalf("%s: want ErrKindCheckpoint, got %v", label, err)
	}
}

// TestCheckpointCorruptionTable flips bytes across every structural
// region of the checkpoint format and sweeps truncations.
func TestCheckpointCorruptionTable(t *testing.T) {
	db, sql, opt, ck := corruptionCheckpoint(t)

	// Sanity: the pristine bytes resume.
	oq, err := db.ResumeOnline(sql, opt, ck)
	if err != nil {
		t.Fatalf("pristine checkpoint refused: %v", err)
	}
	oq.Close()

	flip := func(at int) []byte {
		c := append([]byte(nil), ck...)
		c[at] ^= 0x40
		return c
	}
	regions := []struct {
		label string
		at    int
	}{
		{"magic", 0},
		{"magic-tail", 4},
		{"version", 5},
		{"mode", 6},
		{"fingerprint", 7},
		{"fingerprint-tail", 14},
		{"batch-index", 15},
		{"payload-early", len(ck) / 4},
		{"payload-mid", len(ck) / 2},
		{"payload-late", len(ck) - 16},
		{"trailer-checksum", len(ck) - 4},
		{"trailer-last", len(ck) - 1},
	}
	for _, r := range regions {
		mustRefuse(t, db, sql, opt, flip(r.at), "flip:"+r.label)
	}

	// Truncations: empty, header-only, mid-payload, missing trailer.
	for _, n := range []int{0, 3, 5, 7, 15, len(ck) / 2, len(ck) - 8, len(ck) - 1} {
		mustRefuse(t, db, sql, opt, ck[:n], "truncate")
	}

	// Fingerprint mismatch through legitimate bytes: a checkpoint from a
	// different seed must be refused, not merged into the wrong query.
	other := opt
	other.Seed = 100
	oq2, err := db.QueryOnline(sql, other)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := oq2.Step(); err != nil {
		t.Fatal(err)
	}
	ck2, err := oq2.Checkpoint()
	oq2.Close()
	if err != nil {
		t.Fatal(err)
	}
	mustRefuse(t, db, sql, opt, ck2, "foreign-fingerprint")
}

// TestCheckpointCorruptionSweep XOR-flips one byte at every offset of
// the checkpoint (a deterministic exhaustive fuzz): each mutation must
// either be refused with the typed error or produce a resume whose
// remaining snapshots are identical to the undamaged resume — a flip
// the checksum cannot see (none exist for FNV-1a over these sizes, but
// the sweep proves it) must at least not corrupt the answer.
func TestCheckpointCorruptionSweep(t *testing.T) {
	db, sql, opt, ck := corruptionCheckpoint(t)
	step := 1
	if testing.Short() {
		step = 17
	}
	for at := 0; at < len(ck); at += step {
		c := append([]byte(nil), ck...)
		c[at] ^= 0x01
		func() {
			defer func() {
				if v := recover(); v != nil {
					t.Fatalf("offset %d: ResumeOnline panicked: %v", at, v)
				}
			}()
			oq, err := db.ResumeOnline(sql, opt, c)
			if err == nil {
				oq.Close()
				t.Fatalf("offset %d: single-bit corruption accepted", at)
			}
			if !errors.Is(err, fluodb.ErrKindCheckpoint) {
				t.Fatalf("offset %d: want ErrKindCheckpoint, got %v", at, err)
			}
		}()
	}
}
