package fluodb

import (
	"fluodb/internal/exec"
	"fluodb/internal/plan"
	"fluodb/internal/sqlparser"
)

// ExecResult is the outcome of Exec.
type ExecResult struct {
	// RowsAffected is the number of rows inserted (INSERT), or 0.
	RowsAffected int
	// Result is non-nil iff the statement was a SELECT.
	Result *Result
}

// Exec parses and executes any supported SQL statement: SELECT (returned
// like Query), CREATE TABLE, INSERT INTO ... VALUES, or DROP TABLE. A
// trailing semicolon is accepted.
func (db *DB) Exec(sql string) (*ExecResult, error) {
	stmt, err := sqlparser.ParseStatement(sql)
	if err != nil {
		return nil, err
	}
	if sel, ok := stmt.(*sqlparser.SelectStmt); ok {
		q, err := plan.CompileStmt(sel, sql, db.cat)
		if err != nil {
			return nil, err
		}
		res, err := exec.Run(q, db.cat)
		if err != nil {
			return nil, err
		}
		return &ExecResult{Result: &Result{Schema: res.Schema, Rows: res.Rows}}, nil
	}
	n, err := exec.ExecStatement(stmt, db.cat)
	if err != nil {
		return nil, err
	}
	return &ExecResult{RowsAffected: n}, nil
}

// ExecScript executes a multi-statement SQL script (statements separated
// by semicolons; line comments and string literals are respected). It
// stops at the first error and returns the results of the statements
// that ran.
func (db *DB) ExecScript(script string) ([]*ExecResult, error) {
	var out []*ExecResult
	for _, stmt := range sqlparser.SplitStatements(script) {
		r, err := db.Exec(stmt)
		if err != nil {
			return out, err
		}
		out = append(out, r)
	}
	return out, nil
}
