.PHONY: check test bench-fold

# Tier-1 gate: vet + build + race-enabled tests + fold alloc regression.
check:
	sh scripts/check.sh

test:
	go test ./...

# Fold hot-path throughput; append -json/-label via ARGS to record a
# new BENCH_fold.json entry.
bench-fold:
	go test ./internal/core -bench BenchmarkFold -benchmem
	go run ./cmd/flbench -experiment fold -rows 100000 $(ARGS)
