.PHONY: check test bench-fold bench-compare audit chaos shard trace mem

# Tier-1 gate: vet + build + race-enabled tests + fold alloc regression.
check:
	sh scripts/check.sh

test:
	go test ./...

# Fold hot-path throughput; append -json/-label via ARGS to record a
# new BENCH_fold.json entry.
bench-fold:
	go test ./internal/core -bench BenchmarkFold -benchmem
	go run ./cmd/flbench -experiment fold -rows 100000 $(ARGS)

# Advisory perf diff: fresh fold run vs the committed BENCH_fold.json;
# warns above 10% ns/row regression, never fails (see benchdiff.sh).
bench-compare:
	sh scripts/benchdiff.sh

# Statistical-correctness audit: 20 seeded replications measuring
# empirical CI coverage, relative-error trajectories, and the
# deterministic-set invariant; regenerates BENCH_accuracy.json.
audit:
	go run ./cmd/flbench -experiment audit $(ARGS)

# Robustness soak: 1000+ deterministically seeded fault schedules
# (worker panics, stragglers, shard corruption, prefetch loss) against
# the chaos-hardened runtime; every run must be bit-identical to its
# fault-free reference, every checkpoint round-trip byte-identical, and
# no goroutine may leak. Scale with ARGS="-schedules 5000".
chaos:
	go run ./cmd/flbench -experiment chaos $(ARGS)

# Sharded execution sweep: fold throughput through the coordinator at
# N∈{1,2,4,8} shard engines vs the unsharded baseline, every topology
# verified bit-identical (the command fails on divergence). Record into
# BENCH_fold.json with ARGS="-json BENCH_fold.json -label <name>".
shard:
	go run ./cmd/flbench -experiment shard $(ARGS)

# Memory observability: per-pool ledger residency across scenarios and
# worker counts, GC telemetry, and a forced walk down the MaxMemoryBytes
# degradation ladder verified bit-identical against the unbudgeted run
# (the command fails on divergence). Record with ARGS="-json mem.json".
mem:
	go run ./cmd/flbench -experiment mem $(ARGS)

# Span-timeline capture: run one traced suite query (default Q17) and
# write trace.json (Chrome trace-event format — open in ui.perfetto.dev
# or chrome://tracing) plus trace.jsonl (the structured G-OLA event
# ring). Pick a query with ARGS="-tracequery SBI".
trace:
	go run ./cmd/flbench -spans trace.json -trace trace.jsonl $(ARGS)
