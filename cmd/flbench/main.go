// Command flbench regenerates the paper's evaluation figures and
// tables (see DESIGN.md §4 for the experiment index):
//
//	flbench -experiment fig3a   # Figure 3(a): RSD vs time, TPC-H Q17
//	flbench -experiment fig3b   # Figure 3(b): CDM/G-OLA per-batch ratio
//	flbench -experiment t1      # headline latency metrics (§5 prose)
//	flbench -experiment t2      # uncertain-set sizes (§3.2/§5 prose)
//	flbench -experiment eps     # ablation: ε slack sweep
//	flbench -experiment boots   # ablation: bootstrap trial count sweep
//	flbench -experiment k       # ablation: mini-batch granularity sweep
//	flbench -experiment fold    # fold-path throughput (see BENCH_fold.json)
//	flbench -experiment scaling # parallel scaling: pool vs per-batch spawn, P∈{1,2,4,8}
//	flbench -experiment shard   # sharded execution: coordinator + N∈{1,2,4,8} shard engines vs unsharded
//	flbench -experiment audit   # statistical-correctness audit (BENCH_accuracy.json)
//	flbench -experiment chaos   # robustness soak: seeded fault schedules (-schedules N)
//	flbench -experiment mem     # resource-ledger residency + budget degradation ladder
//	flbench -experiment all     # everything
//
// Scale with -rows, -batches, -trials; fix randomness with -seed.
//
// Every experiment can write its structured result as a JSON artifact
// with -json out.json. Two experiments have artifact conventions: fold
// updates a BENCH_fold.json perf trajectory (demoting the previous
// "current" entry into "baselines"), and audit defaults to writing
// BENCH_accuracy.json even without -json.
//
// -trace out.jsonl runs one suite query (default Q17, pick another with
// -tracequery) with the engine's event tracer and phase profiler on and
// dumps the structured G-OLA events — range commits/failures, uncertain
// flips, recompute triggers — as JSON Lines, followed by the per-phase
// profile on stdout. -tracecap overrides the event-ring capacity.
// -spans out.json additionally (or instead) records the run's span
// timeline — query → mini-batch → phase → worker task, with ring events
// as instants — and writes it as Chrome trace-event JSON; open the file
// in ui.perfetto.dev or chrome://tracing.
//
// The fold experiment maintains the repo's perf trajectory: running it
// with -json BENCH_fold.json demotes the file's previous "current"
// measurement into "baselines" and installs the new one, so each PR
// appends one point to the history. The scaling experiment writes its
// pool-vs-spawn worker sweep into the same file's "scaling" series.
// `-experiment fold -compare BENCH_fold.json` diffs a fresh run against
// the committed trajectory and prints WARN lines for >10% ns/row
// regressions (advisory: the exit status stays 0; see
// scripts/benchdiff.sh and `make bench-compare`).
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"log/slog"
	"os"
	"strconv"

	"fluodb/internal/audit"
	"fluodb/internal/bench"
)

func main() {
	var (
		experiment = flag.String("experiment", "all", "fig3a|fig3b|t1|t2|eps|boots|k|fold|scaling|shard|audit|chaos|mem|all")
		logFmt     = flag.String("logfmt", "text", "structured-log output: text|json (stderr)")
		jsonOut    = flag.String("json", "", "write the experiment result as a JSON artifact (fold/scaling: updates a BENCH_fold.json trajectory; audit: defaults to BENCH_accuracy.json)")
		label      = flag.String("label", "", "fold/scaling only: label for the -json entry (e.g. a PR name)")
		compare    = flag.String("compare", "", "fold only: diff the fresh run against this committed BENCH_fold.json and print WARN lines for >10% ns/row regressions (always exits 0)")
		rows       = flag.Int("rows", 100000, "fact-table rows per dataset (audit default: 20000)")
		parts      = flag.Int("parts", 0, "distinct parts (default rows/150)")
		batches    = flag.Int("batches", 10, "mini-batches (k)")
		trials     = flag.Int("trials", 100, "bootstrap trials (B)")
		seed       = flag.String("seed", "", "RNG seed, any uint64 including an explicit 0 (default: fixed 20150531)")
		reps       = flag.Int("reps", 20, "audit only: seeded replications")
		rowPath    = flag.Bool("rowpath", false, "fold only: force the legacy row-at-a-time fold path (A/B baseline for the columnar hot path)")
		schedules  = flag.Int("schedules", 1000, "chaos only: seeded fault schedules to run")
		format     = flag.String("format", "table", "table|csv (csv: plot-ready series for fig3a/fig3b)")
		traceOut   = flag.String("trace", "", "run one traced query and write G-OLA events to this JSONL file")
		traceQuery = flag.String("tracequery", "Q17", "suite query for -trace")
		traceCap   = flag.Int("tracecap", 0, "trace only: event-ring capacity (0: 64k default)")
		spansOut   = flag.String("spans", "", "run one traced query and write its span timeline to this file as Chrome trace-event JSON (open in ui.perfetto.dev); combines with -trace")
	)
	flag.Parse()
	switch *logFmt {
	case "json":
		slog.SetDefault(slog.New(slog.NewJSONHandler(os.Stderr, nil)))
	case "text":
		slog.SetDefault(slog.New(slog.NewTextHandler(os.Stderr, nil)))
	default:
		fmt.Fprintf(os.Stderr, "flbench: -logfmt %q must be text or json\n", *logFmt)
		os.Exit(1)
	}
	cfg := bench.Config{
		Rows: *rows, Parts: *parts, Batches: *batches, Trials: *trials,
		RowPath: *rowPath, TraceCap: *traceCap,
	}
	if *seed != "" {
		v, err := strconv.ParseUint(*seed, 10, 64)
		if err != nil {
			fmt.Fprintf(os.Stderr, "flbench: -seed %q is not a uint64: %v\n", *seed, err)
			os.Exit(1)
		}
		cfg.Seed, cfg.SeedSet = v, true
	}
	rowsSet := false
	flag.Visit(func(f *flag.Flag) {
		if f.Name == "rows" {
			rowsSet = true
		}
	})
	if *traceOut != "" || *spansOut != "" {
		if err := runTrace(cfg, *traceQuery, *traceOut, *spansOut); err != nil {
			fmt.Fprintln(os.Stderr, "flbench:", err)
			os.Exit(1)
		}
		return
	}
	var err error
	switch {
	case *experiment == "fold":
		err = runFold(cfg, *jsonOut, *label, *compare)
	case *experiment == "scaling":
		err = runScaling(cfg, *jsonOut, *label)
	case *experiment == "shard":
		err = runShard(cfg, *jsonOut, *label)
	case *experiment == "audit":
		err = runAudit(cfg, rowsSet, *reps, *jsonOut)
	case *experiment == "chaos":
		err = runChaos(cfg, *schedules, *jsonOut)
	case *experiment == "mem":
		err = runMem(cfg, *jsonOut)
	case *format == "csv":
		err = runCSV(*experiment, cfg)
	default:
		err = run(*experiment, cfg, *jsonOut)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "flbench:", err)
		os.Exit(1)
	}
}

// writeJSON marshals an experiment result as an indented JSON artifact.
func writeJSON(path string, v any) error {
	b, err := json.MarshalIndent(v, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(path, append(b, '\n'), 0o644); err != nil {
		return err
	}
	fmt.Printf("wrote %s\n", path)
	return nil
}

// runAudit runs the statistical-correctness harness and writes the
// BENCH_accuracy.json artifact.
func runAudit(cfg bench.Config, rowsSet bool, reps int, jsonOut string) error {
	acfg := audit.Config{
		Parts: cfg.Parts, Batches: cfg.Batches, Trials: cfg.Trials,
		Reps: reps, Parallelism: 1,
	}
	if rowsSet {
		acfg.Rows = cfg.Rows // otherwise audit's smaller 20000-row default
	}
	if cfg.SeedSet {
		acfg.Seed = cfg.EngineSeed()
	}
	res, err := audit.Run(acfg)
	if err != nil {
		return err
	}
	fmt.Print(audit.FormatResult(res))
	if jsonOut == "" {
		jsonOut = "BENCH_accuracy.json"
	}
	b, err := res.JSON()
	if err != nil {
		return err
	}
	if err := os.WriteFile(jsonOut, append(b, '\n'), 0o644); err != nil {
		return err
	}
	fmt.Printf("wrote %s\n", jsonOut)
	return nil
}

// runChaos runs the robustness soak: -schedules seeded fault schedules,
// each verified bit-identical against a fault-free reference (or
// honoring the deadline/checkpoint degraded contracts). Any violation
// exits non-zero with the offending schedule's index, which replays the
// exact faults.
func runChaos(cfg bench.Config, schedules int, jsonOut string) error {
	res, err := bench.ChaosSoak(cfg, schedules)
	if res != nil {
		fmt.Print(bench.FormatChaos(res))
	}
	if err != nil {
		return err
	}
	if jsonOut != "" {
		return writeJSON(jsonOut, res)
	}
	return nil
}

// runMem measures resource-ledger residency and walks the memory-budget
// degradation ladder, verifying the budgeted run bit-identical.
func runMem(cfg bench.Config, jsonOut string) error {
	slog.Info("experiment started", "experiment", "mem",
		"rows", cfg.Rows, "batches", cfg.Batches, "trials", cfg.Trials)
	res, err := bench.MemBench(cfg)
	if err != nil {
		return err
	}
	fmt.Print(bench.FormatMem(res))
	if b := res.Budget; b != nil {
		slog.Info("budget ladder walked", "experiment", "mem",
			"budget_bytes", b.BudgetBytes, "final_rung", b.FinalRung,
			"bit_identical", b.BitIdentical)
		if !b.BitIdentical {
			return fmt.Errorf("budget-degraded run diverged from unbudgeted reference: %s", b.Mismatch)
		}
	}
	if jsonOut != "" {
		return writeJSON(jsonOut, res)
	}
	return nil
}

// runTrace captures one query's structured G-OLA event stream
// (-trace, JSONL) and/or its span timeline (-spans, Chrome trace JSON).
func runTrace(cfg bench.Config, query, path, spansPath string) error {
	var w io.Writer = io.Discard
	var f *os.File
	if path != "" {
		var err error
		if f, err = os.Create(path); err != nil {
			return err
		}
		w = f
	}
	var sw io.Writer
	var sf *os.File
	if spansPath != "" {
		var err error
		if sf, err = os.Create(spansPath); err != nil {
			if f != nil {
				f.Close()
			}
			return err
		}
		sw = sf
	}
	res, err := bench.TraceRun(cfg, query, w, sw)
	if f != nil {
		if cerr := f.Close(); err == nil {
			err = cerr
		}
	}
	if sf != nil {
		if cerr := sf.Close(); err == nil {
			err = cerr
		}
	}
	if err != nil {
		return err
	}
	if path != "" {
		fmt.Printf("wrote %s\n", path)
	}
	if spansPath != "" {
		fmt.Printf("wrote %s\n", spansPath)
	}
	fmt.Print(bench.FormatTrace(res))
	return nil
}

// runFold measures fold-path throughput, optionally diffs it against a
// committed trajectory (-compare, advisory) and optionally updates the
// BENCH_fold.json perf trajectory (-json).
func runFold(cfg bench.Config, jsonOut, label, compare string) error {
	points, err := bench.FoldBench(cfg)
	if err != nil {
		return err
	}
	fmt.Print(bench.FormatFold(points))
	if compare != "" {
		warnings, err := bench.CompareFold(compare, points, 10)
		if err != nil {
			// Advisory: a missing or unparsable baseline must not fail
			// check.sh.
			fmt.Printf("benchdiff: cannot compare against %s: %v\n", compare, err)
		} else if len(warnings) == 0 {
			fmt.Printf("benchdiff: no scenario regressed >10%% ns/row vs %s\n", compare)
		} else {
			for _, w := range warnings {
				fmt.Println(w)
			}
		}
	}
	if jsonOut == "" {
		return nil
	}
	if label == "" {
		label = "unlabeled"
	}
	if err := bench.WriteFoldJSON(jsonOut, label, points); err != nil {
		return err
	}
	fmt.Printf("wrote %s (label %q)\n", jsonOut, label)
	return nil
}

// runScaling measures the pool-vs-spawn worker sweep and optionally
// installs it as the BENCH_fold.json scaling series.
func runScaling(cfg bench.Config, jsonOut, label string) error {
	points, err := bench.ScalingBench(cfg)
	if err != nil {
		return err
	}
	fmt.Print(bench.FormatScaling(points))
	if jsonOut == "" {
		return nil
	}
	if err := bench.WriteScalingJSON(jsonOut, label, points); err != nil {
		return err
	}
	fmt.Printf("wrote %s scaling series\n", jsonOut)
	return nil
}

// runShard measures the coordinator's shard-topology sweep (every
// sharded run verified bit-identical to the unsharded baseline) and
// optionally installs it as the BENCH_fold.json sharding series.
func runShard(cfg bench.Config, jsonOut, label string) error {
	points, err := bench.ShardBench(cfg)
	if err != nil {
		return err
	}
	fmt.Print(bench.FormatShard(points))
	for _, p := range points {
		if !p.BitIdentical {
			return fmt.Errorf("shard sweep: %s N=%d diverged from the unsharded run", p.Scenario, p.Shards)
		}
	}
	if jsonOut == "" {
		return nil
	}
	if err := bench.WriteShardJSON(jsonOut, label, points); err != nil {
		return err
	}
	fmt.Printf("wrote %s sharding series\n", jsonOut)
	return nil
}

// runCSV emits plot-ready series.
func runCSV(experiment string, cfg bench.Config) error {
	switch experiment {
	case "fig3a":
		r, err := bench.Figure3a(cfg)
		if err != nil {
			return err
		}
		fmt.Println("batch,elapsed_ms,rsd_pct,fraction_pct,uncertain,batch_engine_ms")
		for _, p := range r.Points {
			fmt.Printf("%d,%.3f,%.5f,%.2f,%d,%.3f\n",
				p.Batch, p.ElapsedMS, p.RSDPercent, p.FractionPct, p.Uncertain, r.BatchEngineMS)
		}
		return nil
	case "fig3b":
		series, err := bench.Figure3b(cfg)
		if err != nil {
			return err
		}
		fmt.Print("batch")
		for _, s := range series {
			fmt.Printf(",%s", s.Query)
		}
		fmt.Println()
		if len(series) == 0 {
			return nil
		}
		for i := range series[0].Ratio {
			fmt.Print(i + 1)
			for _, s := range series {
				fmt.Printf(",%.4f", s.Ratio[i])
			}
			fmt.Println()
		}
		return nil
	default:
		return fmt.Errorf("-format csv supports fig3a and fig3b only")
	}
}

func run(experiment string, cfg bench.Config, jsonOut string) error {
	all := experiment == "all"
	did := false
	results := map[string]any{}
	if all || experiment == "fig3a" {
		did = true
		r, err := bench.Figure3a(cfg)
		if err != nil {
			return err
		}
		results["fig3a"] = r
		fmt.Print(bench.FormatFig3a(r))
		fmt.Println()
		fmt.Print(bench.AsciiChart(r, 72, 14))
		fmt.Println()
	}
	if all || experiment == "fig3b" {
		did = true
		s, err := bench.Figure3b(cfg)
		if err != nil {
			return err
		}
		results["fig3b"] = s
		fmt.Print(bench.FormatFig3b(s))
		fmt.Println()
	}
	if all || experiment == "t1" {
		did = true
		r, err := bench.Table1(cfg)
		if err != nil {
			return err
		}
		results["t1"] = r
		fmt.Println("T1: headline metrics (Q17)")
		fmt.Printf("  first answer:        %.1f ms (%.1f%% of batch time)\n",
			r.Fig3a.FirstAnswerMS, r.Fig3a.FirstAnswerPct)
		fmt.Printf("  mean refresh cadence: %.1f ms\n", r.MeanRefreshMS)
		fmt.Printf("  total overhead:      %.0f%% vs batch engine\n", r.Fig3a.OverheadPct)
		if r.Fig3a.TimeTo2PctMS >= 0 {
			fmt.Printf("  stop at 2%% RSD:      %.1f ms (%.1fx faster than batch)\n",
				r.Fig3a.TimeTo2PctMS, r.Fig3a.SpeedupAt2PctRSD)
		}
		fmt.Printf("  final RSD:           %.3f%%\n", r.FinalRSDPct)
		fmt.Println()
	}
	if all || experiment == "t2" {
		did = true
		rows, err := bench.Table2(cfg)
		if err != nil {
			return err
		}
		results["t2"] = rows
		fmt.Print(bench.FormatT2(rows))
		fmt.Println()
	}
	if all || experiment == "eps" {
		did = true
		pts, err := bench.AblationEpsilon(cfg, nil)
		if err != nil {
			return err
		}
		results["eps"] = pts
		fmt.Println("A1: epsilon slack sweep (SBI + Q17)")
		fmt.Printf("%6s %10s %12s %14s %10s\n", "query", "eps (σ)", "recomputes", "max uncertain", "total ms")
		for _, p := range pts {
			fmt.Printf("%6s %10.2f %12d %14d %10.1f\n",
				p.Query, p.EpsilonSigma, p.Recomputes, p.MaxUncertain, p.TotalMS)
		}
		fmt.Println()
	}
	if all || experiment == "boots" {
		did = true
		pts, err := bench.AblationBootstrap(cfg, nil)
		if err != nil {
			return err
		}
		results["boots"] = pts
		fmt.Println("A2: bootstrap trial count sweep (SBI)")
		fmt.Printf("%8s %10s %14s %14s\n", "trials", "total ms", "first RSD %", "last RSD %")
		for _, p := range pts {
			fmt.Printf("%8d %10.1f %14.3f %14.3f\n", p.Trials, p.TotalMS, p.FirstRSDPct, p.LastRSDPct)
		}
		fmt.Println()
	}
	if all || experiment == "k" {
		did = true
		pts, err := bench.AblationBatches(cfg, nil)
		if err != nil {
			return err
		}
		results["k"] = pts
		fmt.Println("A3: mini-batch granularity sweep (Q17)")
		fmt.Printf("%8s %12s %16s %14s\n", "k", "total ms", "first answer ms", "refresh ms")
		for _, p := range pts {
			fmt.Printf("%8d %12.1f %16.1f %14.1f\n", p.Batches, p.TotalMS, p.FirstAnswerMS, p.MeanRefreshMS)
		}
		fmt.Println()
	}
	if !did {
		return fmt.Errorf("unknown experiment %q", experiment)
	}
	if jsonOut != "" {
		var payload any = results
		if !all {
			payload = results[experiment]
		}
		return writeJSON(jsonOut, payload)
	}
	return nil
}
