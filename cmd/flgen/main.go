// Command flgen generates the synthetic evaluation datasets as typed
// CSV files loadable with fluodb.DB.LoadCSVFile (or the fluodb console's
// \load command):
//
//	flgen -dataset conviva -rows 1000000 -out sessions.csv
//	flgen -dataset tpch    -rows 1000000 -out lineitem.csv
//	flgen -dataset partsupp -parts 5000  -out partsupp.csv
//
// Rows are emitted pre-shuffled so any prefix is a uniform sample (§2).
package main

import (
	"flag"
	"fmt"
	"os"

	"fluodb/internal/storage"
	"fluodb/internal/workload"
)

func main() {
	var (
		dataset = flag.String("dataset", "conviva", "conviva|tpch|partsupp")
		rows    = flag.Int("rows", 100000, "rows to generate")
		parts   = flag.Int("parts", 0, "distinct parts for tpch/partsupp (default rows/150)")
		seed    = flag.Uint64("seed", 42, "RNG seed")
		out     = flag.String("out", "", "output CSV path (default <dataset>.csv)")
	)
	flag.Parse()
	if *parts <= 0 {
		*parts = *rows/150 + 10
	}
	if *out == "" {
		*out = *dataset + ".csv"
	}
	var t *storage.Table
	switch *dataset {
	case "conviva":
		t = workload.GenSessions(*rows, *seed)
	case "tpch":
		t = workload.GenLineitem(*rows, *parts, *seed)
	case "partsupp":
		supps := *rows / *parts
		if supps < 4 {
			supps = 4
		}
		t = workload.GenPartSupp(*parts, supps, *seed)
	default:
		fmt.Fprintf(os.Stderr, "flgen: unknown dataset %q\n", *dataset)
		os.Exit(1)
	}
	t = t.Shuffled(int64(*seed) + 1)
	if err := t.SaveCSVFile(*out); err != nil {
		fmt.Fprintln(os.Stderr, "flgen:", err)
		os.Exit(1)
	}
	fmt.Printf("wrote %d rows of %s to %s\n", t.NumRows(), *dataset, *out)
}
