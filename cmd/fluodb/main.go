// Command fluodb is an interactive SQL console over the FluoDB engine —
// the query-console experience of the paper's demo (§6, Figure 4).
//
// Queries run in G-OLA online mode by default: every mini-batch prints a
// refined approximate answer with ±95% confidence intervals. Type \help
// for the meta commands (\gen, \load, \explain, \batch, \suite, ...).
package main

import (
	"fmt"
	"os"

	"fluodb/internal/repl"
)

func main() {
	c := repl.New(os.Stdout)
	if err := c.Run(os.Stdin); err != nil {
		fmt.Fprintln(os.Stderr, "fluodb:", err)
		os.Exit(1)
	}
}
