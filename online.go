package fluodb

import (
	"context"

	"fluodb/internal/bootstrap"
	"fluodb/internal/chaos"
	"fluodb/internal/core"
	"fluodb/internal/otrace"
	"fluodb/internal/plan"
)

// OnlineOptions configure G-OLA execution; zero values take defaults
// (10 batches, 100 bootstrap trials, 95% confidence, ε = 1σ).
type OnlineOptions = core.Options

// Snapshot is a continuously refined approximate answer: point
// estimates with bootstrap confidence intervals, plus execution
// statistics (uncertain-set size, recomputations).
type Snapshot = core.Snapshot

// CellEstimate is one output cell of a snapshot.
type CellEstimate = core.CellEstimate

// Interval is a confidence interval.
type Interval = bootstrap.Interval

// OnlineMetrics aggregates online execution statistics.
type OnlineMetrics = core.Metrics

// PhaseTimes is a per-phase breakdown of where online execution time
// went (join, fold, bootstrap weights, classification, uncertain
// re-evaluation, range maintenance, recompute, snapshot emission).
// Fine-grained phases require OnlineOptions.Profile.
type PhaseTimes = core.PhaseTimes

// BlockPhaseStat is one lineage block's cumulative per-phase profile.
type BlockPhaseStat = core.BlockPhaseStat

// TraceEvent is one structured G-OLA event (range commit/failure,
// uncertain flip, recompute trigger).
type TraceEvent = core.Event

// Tracer is a bounded ring of TraceEvents; attach one via
// OnlineOptions.Tracer to observe the engine's decisions.
type Tracer = core.Tracer

// NewTracer builds a Tracer retaining the most recent capacity events
// (a default capacity when capacity <= 0).
func NewTracer(capacity int) *Tracer { return core.NewTracer(capacity) }

// SpanTracer records a hierarchical execution timeline — query →
// mini-batch → phase → per-worker shard task, plus prefetch fills,
// retries and checkpoint/resume — exportable as Chrome trace-event
// JSON (Perfetto-loadable) or JSONL. Attach one via
// OnlineOptions.Spans; ring Tracer events mirror onto the timeline as
// instant events.
type SpanTracer = otrace.Tracer

// NewSpanTracer builds a SpanTracer whose per-track slabs hold up to
// capacity spans each (a default when capacity <= 0).
func NewSpanTracer(capacity int) *SpanTracer { return otrace.NewTracer(capacity) }

// ResourceUsage is one mini-batch's memory observation: per-pool byte
// residency from the engine's resource ledger, GC telemetry attributed
// to the batch, and soft-budget state. It rides on Snapshot.Resources
// and is also available from OnlineQuery.Resources.
type ResourceUsage = core.ResourceUsage

// ConvergencePoint is one batch's convergence-observatory sample:
// relative CI half-width quantiles, uncertain-set churn, throughput
// and the 1/√n fit behind Snapshot.ETA.
type ConvergencePoint = core.ConvergencePoint

// AggConvergence is one output column's half-width quantiles within a
// ConvergencePoint.
type AggConvergence = core.AggConvergence

// ErrDone is returned by OnlineQuery.Step after the last mini-batch.
var ErrDone = core.ErrDone

// QueryError is the typed error surface of the online runtime: every
// non-ErrDone failure is (or wraps) one of these, with Kind naming the
// failure class and Batch/Worker locating it.
type QueryError = core.QueryError

// ErrorKind classifies a QueryError.
type ErrorKind = core.ErrorKind

// Error kinds.
const (
	ErrKindInvalidOptions = core.ErrKindInvalidOptions
	ErrKindWorkerPanic    = core.ErrKindWorkerPanic
	ErrKindPoolStopped    = core.ErrKindPoolStopped
	ErrKindInterrupted    = core.ErrKindInterrupted
	ErrKindCheckpoint     = core.ErrKindCheckpoint
	ErrKindShardLost      = core.ErrKindShardLost
)

// ShardStat is one shard slot's progress inside a sharded query
// (OnlineOptions.Shards > 0); see Snapshot.Shards.
type ShardStat = core.ShardStat

// ErrPoolStopped is returned by internal pool submission after Close;
// callers see it only wrapped in a QueryError if a race made a Step
// observe a closing pool (the Step still completes serially).
var ErrPoolStopped = core.ErrPoolStopped

// IsInterrupted reports whether err is a QueryError carrying a context
// deadline/cancellation (the snapshot returned alongside it is the
// bounded-time answer).
func IsInterrupted(err error) bool { return core.IsInterrupted(err) }

// ChaosConfig configures deterministic fault injection: seeded
// probabilities for worker panics, stragglers, shard-state corruption
// and prefetch invalidation. All decisions are pure functions of
// (Seed, site), so a failing schedule replays exactly from its seed.
type ChaosConfig = chaos.Config

// ChaosInjector injects faults at the runtime's instrumented sites.
// Attach one via OnlineOptions.Chaos (tests and the chaos soak only —
// never in production paths).
type ChaosInjector = chaos.Injector

// NewChaosInjector builds an injector for the given config.
func NewChaosInjector(cfg ChaosConfig) *ChaosInjector { return chaos.New(cfg) }

// OnlineQuery is a running G-OLA execution. Each Step processes one
// mini-batch and returns a refined Snapshot; the caller may stop at any
// time, trading accuracy for latency on the fly (the OLA control knob).
type OnlineQuery struct {
	eng *core.Engine
}

// QueryOnline compiles a SQL aggregate query for online execution.
//
// The engine randomly partitions every fact table the query scans into
// opt.Batches uniform mini-batches and processes one per Step. Nested
// aggregate subqueries are maintained with G-OLA delta maintenance:
// tuples whose predicate decisions are provably stable under the
// current variation ranges fold into incremental state; the small
// uncertain remainder is cached and lazily re-evaluated.
//
// The data should be in random order for the estimates to be unbiased;
// call Table.Shuffle first if the physical order may correlate with
// query attributes (§2 of the paper).
func (db *DB) QueryOnline(sql string, opt OnlineOptions) (*OnlineQuery, error) {
	q, err := plan.Compile(sql, db.cat)
	if err != nil {
		return nil, err
	}
	eng, err := core.New(q, db.cat, opt)
	if err != nil {
		return nil, err
	}
	return &OnlineQuery{eng: eng}, nil
}

// Step processes the next mini-batch and returns the refined snapshot.
// It returns ErrDone once all batches are processed.
func (oq *OnlineQuery) Step() (*Snapshot, error) { return oq.eng.Step() }

// StepContext is Step under a deadline: if ctx is done at the
// mini-batch boundary, the query stops and returns the last committed
// snapshot (Interrupted=true, CIs valid for the processed prefix) with
// an ErrKindInterrupted QueryError. The query is not poisoned — a later
// StepContext with a live context resumes exactly where it stopped.
func (oq *OnlineQuery) StepContext(ctx context.Context) (*Snapshot, error) {
	return oq.eng.StepContext(ctx)
}

// RunContext is Run under a deadline: a context interruption is not an
// error — the bounded-time answer (last committed snapshot, marked
// Interrupted) is returned with a nil error, the OLA contract of
// "cancel any time, keep the best answer so far".
func (oq *OnlineQuery) RunContext(ctx context.Context, fn func(*Snapshot) bool) (*Snapshot, error) {
	return oq.eng.RunContext(ctx, fn)
}

// Checkpoint serializes the query's state at the current mini-batch
// boundary: the deterministic set, the uncertain cache, parameter
// bindings and the RNG cursor. The bytes are deterministic (equal
// states produce equal checkpoints) and integrity-checked on restore.
// Resume with DB.ResumeOnline.
func (oq *OnlineQuery) Checkpoint() ([]byte, error) { return oq.eng.Checkpoint() }

// Done reports whether all mini-batches have been processed.
func (oq *OnlineQuery) Done() bool { return oq.eng.Done() }

// Batch returns the number of mini-batches processed so far.
func (oq *OnlineQuery) Batch() int { return oq.eng.Batch() }

// Run executes all remaining batches, invoking fn per snapshot; fn
// returning false stops the query early (the user is satisfied with the
// current accuracy). It returns the last snapshot produced.
func (oq *OnlineQuery) Run(fn func(*Snapshot) bool) (*Snapshot, error) {
	return oq.eng.Run(fn)
}

// Metrics returns accumulated execution statistics.
func (oq *OnlineQuery) Metrics() OnlineMetrics { return oq.eng.Metrics() }

// Close releases the query's persistent worker pool. It is idempotent
// and safe to call at any point — a closed query keeps answering
// Metrics/Report, and any further Steps degrade to serial execution. A
// finalizer reclaims the pool of an abandoned query eventually, but
// callers that create many queries should Close each one (or defer it)
// to bound live goroutines.
func (oq *OnlineQuery) Close() { oq.eng.Close() }

// ResumeOnline rebuilds an online query from a Checkpoint taken against
// the same catalog with the same SQL and statistics-affecting options
// (seed, batches, trials, confidence; Parallelism, MaxMemoryBytes and
// observability options may differ — a budget-degraded query resumes
// with its degradation rungs re-engaged). The resumed query continues from the checkpoint
// batch with bit-identical snapshots. Mismatched or corrupted bytes are
// refused with an ErrKindCheckpoint QueryError.
func (db *DB) ResumeOnline(sql string, opt OnlineOptions, ckpt []byte) (*OnlineQuery, error) {
	q, err := plan.Compile(sql, db.cat)
	if err != nil {
		return nil, err
	}
	eng, err := core.Resume(q, db.cat, opt, ckpt)
	if err != nil {
		return nil, err
	}
	return &OnlineQuery{eng: eng}, nil
}

// Violation is one committed deterministic decision contradicted by the
// engine's current point state (see AuditInvariants).
type Violation = core.Violation

// AuditInvariants re-checks every committed deterministic decision
// (scalar/group variation ranges, IN-subquery memberships) against the
// engine's current point estimates — the G-OLA consistency invariant.
// After the final mini-batch the point state is exact, so a correct run
// returns nil; any violation means the engine stood by a decision the
// data contradicts. Violations are also emitted as trace events and
// counted in Metrics().InvariantViolations.
func (oq *OnlineQuery) AuditInvariants() []Violation { return oq.eng.AuditInvariants() }

// Report renders an EXPLAIN-ANALYZE-style text profile of the execution
// so far: run totals, the per-phase time breakdown, each lineage block's
// cumulative cost, and the per-batch trajectory. Enable
// OnlineOptions.Profile for the fine-grained (join/fold/weights/
// classify) phases.
func (oq *OnlineQuery) Report() string { return oq.eng.Report() }

// ConvergenceSeries returns the per-batch convergence samples recorded
// so far (bounded; decimated on very long runs).
func (oq *OnlineQuery) ConvergenceSeries() []ConvergencePoint { return oq.eng.ConvergenceSeries() }

// Resources returns the most recent mini-batch's memory observation
// (zero-valued before the first committed batch).
func (oq *OnlineQuery) Resources() ResourceUsage { return oq.eng.Resources() }
