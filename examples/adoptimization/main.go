// Real-time ad optimization (§6.2 of the paper): MyTube wants to re-rank
// ad placements every minute, not every day. The dashboard query asks,
// per ad, for click-through rate and viewer engagement — but only over
// "healthy" sessions, i.e. sessions whose buffering stays below the
// (nested, converging) site-wide average: degraded sessions would bias
// the ad comparison.
//
// G-OLA delivers a usable ranking after a few percent of the log and
// refines it continuously; the exact batch answer arrives much later.
package main

import (
	"fmt"
	"log"
	"time"

	"fluodb"
	"fluodb/workloads"
)

const adQuery = `
	SELECT ad_id,
	       COUNT(*)                AS impressions,
	       AVG(ad_clicks)          AS clicks_per_session,
	       AVG(play_time)          AS engagement
	FROM sessions
	WHERE ad_impressions > 0
	  AND buffer_time < (SELECT AVG(buffer_time) FROM sessions)
	GROUP BY ad_id
	HAVING COUNT(*) > 200
	ORDER BY clicks_per_session DESC
	LIMIT 5`

func main() {
	db := fluodb.Open()
	workloads.AttachConviva(db, 300_000, 11)

	oq, err := db.QueryOnline(adQuery, fluodb.OnlineOptions{Batches: 15})
	if err != nil {
		log.Fatal(err)
	}

	start := time.Now()
	fmt.Println("top ads by CTR among healthy sessions (refining):")
	_, err = oq.Run(func(s *fluodb.Snapshot) bool {
		fmt.Printf("\nafter %4.0f ms (%3.0f%% of log, rsd %.2f%%):\n",
			float64(time.Since(start).Milliseconds()), s.FractionProcessed*100, s.RSD()*100)
		fmt.Printf("  %6s %12s %22s %12s\n", "ad", "impressions", "clicks/session ±95%", "engagement")
		for _, row := range s.Rows {
			fmt.Printf("  %6s %12.0f %12.4f ± %-7.4f %12.1f\n",
				row[0].Value, f(row[1].Value), f(row[2].Value),
				(row[2].CI.Hi-row[2].CI.Lo)/2, f(row[3].Value))
		}
		// An ad team would stop as soon as the top ad's CI separates
		// from the runner-up's; we demonstrate with a fixed target.
		return s.RSD() > 0.02
	})
	if err != nil {
		log.Fatal(err)
	}

	// Verify the early ranking against the exact answer.
	exact, err := db.Query(adQuery)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nexact ranking (full scan):")
	for _, r := range exact.Rows {
		fmt.Printf("  ad %s: %.4f clicks/session, engagement %.1f\n",
			r[0], f(r[2]), f(r[3]))
	}
}

func f(v fluodb.Value) float64 {
	x, _ := v.AsFloat()
	return x
}
