// Quickstart: the paper's Example 1 ("Slow Buffering Impact") end to
// end — build a table, run the nested-aggregate query online, watch the
// answer refine, and stop early once it is accurate enough.
package main

import (
	"fmt"
	"log"

	"fluodb"
	"fluodb/workloads"
)

func main() {
	db := fluodb.Open()

	// Attach 200k synthetic video-session rows (shuffled, so any prefix
	// is a uniform sample). In a real deployment you would LoadCSVFile
	// or Append your own rows.
	workloads.AttachConviva(db, 200_000, 7)

	// The SBI query (Example 1 of the paper): how long do users with
	// above-average buffering keep watching? The inner AVG makes it
	// non-monotonic — classic online aggregation cannot run it.
	const sbi = `
		SELECT AVG(play_time) FROM sessions
		WHERE buffer_time > (SELECT AVG(buffer_time) FROM sessions)`

	fmt.Println("plan:")
	plan, err := db.Explain(sbi)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(plan)

	oq, err := db.QueryOnline(sbi, fluodb.OnlineOptions{Batches: 20})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("online refinement (stop at 0.5% relative standard deviation):")
	last, err := oq.Run(func(s *fluodb.Snapshot) bool {
		cell := s.Rows[0][0]
		fmt.Printf("  %3.0f%% of data: AVG(play_time) = %8.2f  95%% CI [%8.2f, %8.2f]  rsd %.3f%%  uncertain %d\n",
			s.FractionProcessed*100, f(cell.Value), cell.CI.Lo, cell.CI.Hi,
			cell.RSD*100, s.UncertainRows)
		return s.RSD() > 0.005 // keep going while above 0.5%
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("stopped after %d/%d batches\n", last.Batch, last.TotalBatches)

	// Exact answer, for comparison (the traditional batch engine).
	exact, err := db.Query(sbi)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("exact (full scan):   AVG(play_time) = %.2f\n", f(exact.Rows[0][0]))
}

func f(v fluodb.Value) float64 {
	x, _ := v.AsFloat()
	return x
}
