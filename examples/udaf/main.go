// User-defined aggregates online (§2 of the paper: G-OLA handles
// "user-defined functions and aggregates" — UDAFs participate in online
// execution exactly like built-ins, bootstrap error bars included).
//
// This example registers GINI, a Gini-coefficient aggregate (a measure
// of inequality, here of watch-time concentration across sessions), and
// runs it online inside a nested query: "how unequal is engagement among
// sessions with above-average buffering?"
package main

import (
	"fmt"
	"log"
	"math"
	"sort"

	"fluodb"
	"fluodb/workloads"
)

// giniState approximates the Gini coefficient over a bounded reservoir
// of weighted observations. It implements fluodb.AggState: the weights
// carry both multiset multiplicities and poissonized bootstrap
// resamples, so the same state serves the point estimate and every
// bootstrap replica.
type giniState struct {
	vals []float64
	wts  []float64
	n    int
	rng  uint64
}

const giniReservoir = 4096

func newGini() *giniState { return &giniState{rng: 0x9E3779B97F4A7C15} }

func (g *giniState) rand() uint64 {
	g.rng ^= g.rng << 13
	g.rng ^= g.rng >> 7
	g.rng ^= g.rng << 17
	return g.rng
}

// Add implements fluodb.AggState.
func (g *giniState) Add(v fluodb.Value, w float64) {
	f, ok := v.AsFloat()
	if !ok || w <= 0 || f < 0 {
		return
	}
	g.n++
	if len(g.vals) < giniReservoir {
		g.vals = append(g.vals, f)
		g.wts = append(g.wts, w)
		return
	}
	if j := int(g.rand() % uint64(g.n)); j < giniReservoir {
		g.vals[j] = f
		g.wts[j] = w
	}
}

// Merge implements fluodb.AggState.
func (g *giniState) Merge(o fluodb.AggState) {
	og := o.(*giniState)
	for i := range og.vals {
		g.Add(fluodb.Float(og.vals[i]), og.wts[i])
	}
}

// Result implements fluodb.AggState: the weighted Gini coefficient.
func (g *giniState) Result(scale float64) fluodb.Value {
	if len(g.vals) == 0 {
		return fluodb.Null
	}
	idx := make([]int, len(g.vals))
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(a, b int) bool { return g.vals[idx[a]] < g.vals[idx[b]] })
	var totW, totV float64
	for i := range g.vals {
		totW += g.wts[i]
		totV += g.wts[i] * g.vals[i]
	}
	if totV == 0 {
		return fluodb.Float(0)
	}
	// Gini = 1 - 2 * area under the Lorenz curve.
	var cumV, area float64
	for _, i := range idx {
		prev := cumV
		cumV += g.wts[i] * g.vals[i]
		area += (prev + cumV) / 2 * (g.wts[i] / totW)
	}
	gini := 1 - 2*area/totV
	if math.IsNaN(gini) {
		return fluodb.Null
	}
	return fluodb.Float(gini)
}

// Clone implements fluodb.AggState.
func (g *giniState) Clone() fluodb.AggState {
	c := &giniState{n: g.n, rng: g.rng}
	c.vals = append([]float64(nil), g.vals...)
	c.wts = append([]float64(nil), g.wts...)
	return c
}

func main() {
	fluodb.RegisterAggregate("GINI", func(params []fluodb.Value) (fluodb.AggState, error) {
		return newGini(), nil
	})

	db := fluodb.Open()
	workloads.AttachConviva(db, 150_000, 77)

	const q = `
		SELECT GINI(play_time), AVG(play_time), COUNT(*)
		FROM sessions
		WHERE buffer_time > (SELECT AVG(buffer_time) FROM sessions)`

	oq, err := db.QueryOnline(q, fluodb.OnlineOptions{Batches: 10})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("watch-time inequality among slow-buffering sessions (refining):")
	_, err = oq.Run(func(s *fluodb.Snapshot) bool {
		row := s.Rows[0]
		fmt.Printf("  %3.0f%% of data: GINI = %.4f [%.4f, %.4f]   AVG = %.1f   n ≈ %.0f\n",
			s.FractionProcessed*100,
			f(row[0].Value), row[0].CI.Lo, row[0].CI.Hi,
			f(row[1].Value), f(row[2].Value))
		return true
	})
	if err != nil {
		log.Fatal(err)
	}

	exact, err := db.Query(q)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("full scan (same reservoir approximation, different sample): GINI = %.4f\n",
		f(exact.Rows[0][0]))
}

func f(v fluodb.Value) float64 {
	x, _ := v.AsFloat()
	return x
}
