// Web console (§6 / Figure 4 of the paper): a browser dashboard that
// lets you type arbitrary SQL aggregate queries and watch the answer
// refine live, with error bars, exactly like the demo's MyTube consoles.
//
//	go run ./examples/console
//	open http://localhost:8080
//
// Each query streams Server-Sent Events: one JSON snapshot per
// mini-batch, carrying point estimates, confidence intervals, the
// uncertain-set size and the fraction of data processed. The Stop
// button abandons the query at the current accuracy — the OLA knob.
package main

import (
	"flag"
	"log"
	"net/http"

	"fluodb/internal/core"
	"fluodb/internal/dashboard"
	"fluodb/internal/workload"
)

var (
	addr = flag.String("addr", "localhost:8080", "listen address")
	rows = flag.Int("rows", 200_000, "synthetic rows per dataset")
)

func main() {
	flag.Parse()
	log.Printf("generating %d rows per dataset...", *rows)
	cat := workload.ConvivaCatalog(*rows, 99)
	tpch := workload.TPCHCatalog(*rows, *rows/150+10, 100)
	for _, name := range tpch.Names() {
		t, _ := tpch.Get(name)
		cat.Put(t)
	}
	srv := dashboard.New(cat, core.Options{Batches: 25})
	log.Printf("FluoDB console on http://%s", *addr)
	log.Fatal(http.ListenAndServe(*addr, srv.Handler()))
}
