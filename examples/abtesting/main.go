// A/B testing (§6.2 of the paper): MyTube ships a UI change to arm "B"
// and wants to know, as early as possible, whether it moves engagement.
// Waiting for a full scan of the session log costs real time; G-OLA
// streams the log and reports both arms with confidence intervals, so
// the analyst can call the experiment the moment the intervals separate.
//
// The generator plants a ≈60-second true lift in arm B, so the demo has
// a ground truth to find.
package main

import (
	"fmt"
	"log"
	"time"

	"fluodb"
	"fluodb/workloads"
)

const abQuery = `
	SELECT variant, COUNT(*) AS sessions, AVG(play_time) AS engagement
	FROM sessions
	GROUP BY variant
	ORDER BY variant`

func main() {
	db := fluodb.Open()
	workloads.AttachConviva(db, 400_000, 23)

	oq, err := db.QueryOnline(abQuery, fluodb.OnlineOptions{Batches: 40})
	if err != nil {
		log.Fatal(err)
	}

	start := time.Now()
	decided := false
	last, err := oq.Run(func(s *fluodb.Snapshot) bool {
		a, b := findArm(s, "A"), findArm(s, "B")
		if a == nil || b == nil {
			return true
		}
		aEng, bEng := (*a)[2], (*b)[2]
		fmt.Printf("%4.0f ms  %3.0f%% of log   A: %7.2f [%7.2f,%7.2f]   B: %7.2f [%7.2f,%7.2f]\n",
			float64(time.Since(start).Milliseconds()), s.FractionProcessed*100,
			f(aEng.Value), aEng.CI.Lo, aEng.CI.Hi,
			f(bEng.Value), bEng.CI.Lo, bEng.CI.Hi)
		// Decision rule: call the test when the 95% intervals separate.
		if aEng.CI.Hi < bEng.CI.Lo || bEng.CI.Hi < aEng.CI.Lo {
			winner := "A"
			lift := f(aEng.Value) - f(bEng.Value)
			if f(bEng.Value) > f(aEng.Value) {
				winner = "B"
				lift = -lift
			}
			fmt.Printf("\n>>> arms separated after %.0f%% of the data: arm %s wins, observed lift ≈ %.1f s\n",
				s.FractionProcessed*100, winner, lift)
			decided = true
			return false
		}
		return true
	})
	if err != nil {
		log.Fatal(err)
	}
	if !decided {
		fmt.Println("\narms never separated — no significant difference found")
	}
	_ = last

	exact, err := db.Query(abQuery)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nexact per-arm engagement (full scan):")
	for _, r := range exact.Rows {
		fmt.Printf("  %s: %.2f s over %.0f sessions\n", r[0], f(r[2]), f(r[1]))
	}
}

// findArm locates the snapshot row of a variant.
func findArm(s *fluodb.Snapshot, arm string) *[]fluodb.CellEstimate {
	for i := range s.Rows {
		if s.Rows[i][0].Value.String() == arm {
			return &s.Rows[i]
		}
	}
	return nil
}

func f(v fluodb.Value) float64 {
	x, _ := v.AsFloat()
	return x
}
