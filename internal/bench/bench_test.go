package bench

import (
	"strings"
	"testing"
)

// tiny keeps unit tests fast; shapes are asserted, not absolute times.
var tiny = Config{Rows: 4000, Parts: 30, Batches: 5, Trials: 15, Seed: 3}

func TestFigure3aShape(t *testing.T) {
	r, err := Figure3a(tiny)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Points) != tiny.Batches {
		t.Fatalf("points = %d", len(r.Points))
	}
	if r.FirstAnswerMS <= 0 || r.BatchEngineMS <= 0 {
		t.Error("timings missing")
	}
	// The first approximate answer must arrive well before the batch
	// engine finishes (the paper's headline property).
	if r.FirstAnswerMS >= r.BatchEngineMS {
		t.Errorf("first answer %.2fms not before batch %.2fms", r.FirstAnswerMS, r.BatchEngineMS)
	}
	// RSD is non-increasing in trend: last ≤ first.
	if r.Points[len(r.Points)-1].RSDPercent > r.Points[0].RSDPercent {
		t.Errorf("RSD grew: first %.3f last %.3f",
			r.Points[0].RSDPercent, r.Points[len(r.Points)-1].RSDPercent)
	}
	out := FormatFig3a(r)
	if !strings.Contains(out, "first answer") {
		t.Error("format")
	}
}

func TestFigure3bShape(t *testing.T) {
	series, err := Figure3b(tiny)
	if err != nil {
		t.Fatal(err)
	}
	if len(series) != len(Fig3bQueries) {
		t.Fatalf("series = %d", len(series))
	}
	var first, last float64
	for _, s := range series {
		if len(s.Ratio) != tiny.Batches {
			t.Fatalf("%s: ratios = %d", s.Query, len(s.Ratio))
		}
		first += s.Ratio[0]
		last += s.Ratio[len(s.Ratio)-1]
	}
	// Wall-clock ratios at this tiny scale are too noisy to assert on a
	// shared machine; the growth trend is asserted at medium scale in
	// TestHeadlineShapesMediumScale and recorded at full scale in
	// EXPERIMENTS.md. Here we only log it.
	t.Logf("mean CDM/G-OLA ratio: batch 1 = %.3f, batch %d = %.3f", first, tiny.Batches, last)
	out := FormatFig3b(series)
	if !strings.Contains(out, "Q17") {
		t.Error("format")
	}
}

func TestTable1(t *testing.T) {
	r, err := Table1(tiny)
	if err != nil {
		t.Fatal(err)
	}
	if r.MeanRefreshMS <= 0 {
		t.Error("refresh cadence missing")
	}
}

func TestTable2AllQueries(t *testing.T) {
	rows, err := Table2(tiny)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 8 {
		t.Fatalf("rows = %d", len(rows))
	}
	for _, r := range rows {
		if len(r.PerBatch) != tiny.Batches {
			t.Errorf("%s: per-batch = %d", r.Query, len(r.PerBatch))
		}
		// uncertain sets drain once all data is processed
		if r.Final != 0 {
			t.Errorf("%s: final uncertain = %d", r.Query, r.Final)
		}
	}
	if out := FormatT2(rows); !strings.Contains(out, "SBI") {
		t.Error("format")
	}
}

func TestAblationEpsilonTrend(t *testing.T) {
	pts, err := AblationEpsilon(tiny, []float64{0.05, 4.0})
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 4 { // 2 ε settings × {SBI, Q17}
		t.Fatalf("points = %d", len(pts))
	}
	for i := 0; i < len(pts); i += 2 {
		small, large := pts[i], pts[i+1]
		if small.Query != large.Query {
			t.Fatalf("pairing broken: %s vs %s", small.Query, large.Query)
		}
		// Larger ε ⇒ no more recomputes than tiny ε (usually fewer) and
		// at least as many uncertain tuples.
		if large.Recomputes > small.Recomputes {
			t.Errorf("%s recomputes: eps=4 → %d > eps=0.05 → %d",
				small.Query, large.Recomputes, small.Recomputes)
		}
		if large.MaxUncertain < small.MaxUncertain {
			t.Errorf("%s uncertain: eps=4 → %d < eps=0.05 → %d",
				small.Query, large.MaxUncertain, small.MaxUncertain)
		}
	}
}

func TestAblationBootstrap(t *testing.T) {
	pts, err := AblationBootstrap(tiny, []int{10, 40})
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 2 || pts[0].TotalMS <= 0 {
		t.Fatal("points")
	}
}

func TestAblationBatches(t *testing.T) {
	pts, err := AblationBatches(tiny, []int{2, 8})
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 2 {
		t.Fatal("points")
	}
	// More batches ⇒ earlier first answer.
	if pts[1].FirstAnswerMS >= pts[0].FirstAnswerMS {
		t.Logf("note: first answer k=8 (%.2fms) not earlier than k=2 (%.2fms) at tiny scale",
			pts[1].FirstAnswerMS, pts[0].FirstAnswerMS)
	}
}

func TestConfigDefaults(t *testing.T) {
	c := Config{}.WithDefaults()
	if c.Rows == 0 || c.Parts == 0 || c.Batches == 0 || c.Trials == 0 || c.Seed == 0 {
		t.Errorf("defaults = %+v", c)
	}
}

// TestHeadlineShapesMediumScale pins the paper's headline shapes at a
// scale big enough to be meaningful but small enough for CI. Skipped
// under -short.
func TestHeadlineShapesMediumScale(t *testing.T) {
	if testing.Short() {
		t.Skip("medium-scale shape regression")
	}
	cfg := Config{Rows: 60000, Batches: 10, Trials: 50, Seed: 20150531}

	// Figure 3(a): first answer arrives well before the batch engine,
	// and the RSD decays monotonically in trend.
	fa, err := Figure3a(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if fa.FirstAnswerMS >= fa.BatchEngineMS {
		t.Errorf("first answer %.1fms not before batch %.1fms", fa.FirstAnswerMS, fa.BatchEngineMS)
	}
	if last, first := fa.Points[len(fa.Points)-1].RSDPercent, fa.Points[0].RSDPercent; last > first {
		t.Errorf("RSD grew: %.3f → %.3f", first, last)
	}

	// Figure 3(b): averaged over the suite, CDM/G-OLA grows through the
	// window (CDM re-reads the prefix; G-OLA touches ΔD + uncertain).
	fb, err := Figure3b(cfg)
	if err != nil {
		t.Fatal(err)
	}
	var first, second float64
	for _, s := range fb {
		half := len(s.Ratio) / 2
		for i, r := range s.Ratio {
			if i < half {
				first += r
			} else {
				second += r
			}
		}
	}
	if second <= first {
		t.Errorf("mean ratio did not grow: first half %.2f, second half %.2f", first, second)
	}

	// T2: the Conviva-style queries keep tiny uncertain sets (the
	// paper's "very small in practice"), and every query drains to zero.
	t2, err := Table2(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range t2 {
		if row.Final != 0 {
			t.Errorf("%s: final uncertain = %d", row.Query, row.Final)
		}
		switch row.Query {
		case "SBI", "C1", "C2", "C3":
			if row.MaxPctOfSeen > 6 {
				t.Errorf("%s: uncertain peak %.2f%% of seen (want ≤ 6%%)", row.Query, row.MaxPctOfSeen)
			}
		case "Q11":
			if row.MaxUncertain != 0 {
				t.Errorf("Q11: uncertain = %d (HAVING-only uncertainty caches nothing)", row.MaxUncertain)
			}
		}
	}
}

func TestAsciiChart(t *testing.T) {
	r, err := Figure3a(tiny)
	if err != nil {
		t.Fatal(err)
	}
	chart := AsciiChart(r, 60, 10)
	if !strings.Contains(chart, "*") || !strings.Contains(chart, "RSD%") {
		t.Errorf("chart = %q", chart)
	}
	if AsciiChart(r, 4, 2) != "" {
		t.Error("degenerate dimensions should yield empty chart")
	}
	if AsciiChart(&Fig3aResult{}, 60, 10) != "" {
		t.Error("empty result should yield empty chart")
	}
}

// TestChaosGate is the CI slice of the robustness soak: enough seeded
// schedules to cover every (profile, mode, query) combination several
// times over, small enough to run under -race in the tier-1 suite. The
// full soak is `flbench -experiment chaos` (or `make chaos`).
func TestChaosGate(t *testing.T) {
	n := 90 // covers the 11-profile × 3-mode × 2-query rotation
	if testing.Short() {
		n = 33
	}
	res, err := ChaosSoak(tiny, n)
	if err != nil {
		t.Fatal(err)
	}
	if res.BitIdentical != res.Schedules {
		t.Fatalf("%d/%d schedules bit-identical", res.BitIdentical, res.Schedules)
	}
	var fired int64
	for _, c := range res.FaultCounts {
		fired += c
	}
	if fired == 0 {
		t.Fatal("soak fired no faults")
	}
	if res.CheckpointRoundTrips == 0 || res.CancelResumes == 0 {
		t.Fatalf("modes not exercised: %+v", res.ModeCounts)
	}
	out := FormatChaos(res)
	if !strings.Contains(out, "bit-identical") {
		t.Fatalf("FormatChaos output malformed:\n%s", out)
	}
}

// TestShardChaosGate is the sharded slice of the soak: 60 schedules of
// shard kills, stragglers, and mixes, every one run through the
// coordinator and checked bit-identical against the fault-free
// unsharded row-path reference — across plain, cancel+resume, and
// checkpoint round-trip modes. Shard deaths must be absorbed by the
// recovery ladder (replacement incarnations, then rolling-checkpoint
// restores), never surfacing to the caller.
func TestShardChaosGate(t *testing.T) {
	n := 60 // covers 4 shard profiles × 3 modes × 2 queries repeatedly
	if testing.Short() {
		n = 24
	}
	res, err := ShardChaosSoak(tiny, n)
	if err != nil {
		t.Fatal(err)
	}
	if res.BitIdentical != res.Schedules {
		t.Fatalf("%d/%d schedules bit-identical", res.BitIdentical, res.Schedules)
	}
	if res.FaultCounts["shard-kill"] == 0 {
		t.Fatal("soak fired no shard kills")
	}
	if res.FaultCounts["shard-straggler"] == 0 {
		t.Fatal("soak fired no shard stragglers")
	}
	if res.CheckpointRoundTrips == 0 || res.CancelResumes == 0 {
		t.Fatalf("modes not exercised: %+v", res.ModeCounts)
	}
}
