// Package bench regenerates every figure and quantitative claim of the
// paper's evaluation (§5). Each experiment returns a structured result
// whose fields correspond to the series/rows the paper reports; the
// flbench command renders them as tables, and bench_test.go exposes them
// as testing.B benchmarks. See DESIGN.md §4 for the experiment index.
package bench

import (
	"fmt"
	"strings"
	"time"

	"fluodb/internal/baseline"
	"fluodb/internal/core"
	"fluodb/internal/exec"
	"fluodb/internal/plan"
	"fluodb/internal/storage"
	"fluodb/internal/workload"
)

// Config scales the experiments. The defaults target a laptop: the
// paper ran 100 GB per dataset on a 100-node cluster; shapes (who wins,
// growth trends, crossovers) are preserved at this scale, absolute
// seconds are not.
type Config struct {
	Rows    int // fact-table rows
	Parts   int // distinct parts for the TPC-H-style data
	Batches int // k
	Trials  int // B bootstrap trials
	Seed    uint64
	// SeedSet marks Seed as explicitly chosen, letting a caller request
	// seed 0 itself (the zero value otherwise means "use the default").
	SeedSet bool
	// RowPath forces the engines under measurement onto the legacy
	// row-at-a-time fold path (core.Options.RowPath), the A/B baseline
	// for the columnar hot path. Honored by the fold experiment.
	RowPath bool
	// TraceCap overrides the event-ring capacity of traced runs
	// (flbench -tracecap); 0 keeps the 64k default.
	TraceCap int
}

// WithDefaults fills unset fields.
func (c Config) WithDefaults() Config {
	if c.Rows <= 0 {
		c.Rows = 100000
	}
	if c.Parts <= 0 {
		c.Parts = c.Rows/150 + 10
	}
	if c.Batches <= 0 {
		c.Batches = 10
	}
	if c.Trials <= 0 {
		c.Trials = 100
	}
	if c.Seed == 0 && !c.SeedSet {
		c.Seed = 20150531 // SIGMOD'15 opening day
	}
	return c
}

// EngineSeed is the seed handed to the catalog and engine layers, which
// treat 0 as "use the built-in default". An explicitly requested seed 0
// therefore maps to a fixed distinct constant so it still names one
// reproducible world rather than silently aliasing the default.
func (c Config) EngineSeed() uint64 {
	if c.Seed == 0 {
		return 0x5EED0DB
	}
	return c.Seed
}

// catalogFor builds the dataset a suite query needs.
func catalogFor(q workload.Query, cfg Config) *storage.Catalog {
	if q.Dataset == "conviva" {
		return workload.ConvivaCatalog(cfg.Rows, cfg.EngineSeed())
	}
	return workload.TPCHCatalog(cfg.Rows, cfg.Parts, cfg.EngineSeed())
}

// ---------------------------------------------------------------------
// Figure 3(a): relative standard deviation vs. query time for TPC-H Q17
// under G-OLA, with the batch engine's completion time as reference.
// ---------------------------------------------------------------------

// Fig3aPoint is one point of the refinement curve.
type Fig3aPoint struct {
	Batch       int
	ElapsedMS   float64 // cumulative G-OLA time when the snapshot appeared
	RSDPercent  float64
	Uncertain   int
	FractionPct float64
}

// Fig3aResult is the full Figure 3(a) data.
type Fig3aResult struct {
	Query            string
	Points           []Fig3aPoint
	BatchEngineMS    float64 // the vertical bar
	FirstAnswerMS    float64
	FirstAnswerPct   float64 // first answer as % of batch time (paper: ~1.6%)
	TotalOnlineMS    float64
	OverheadPct      float64 // G-OLA total vs batch (paper: ~+60%)
	TimeTo2PctMS     float64 // time until RSD ≤ 2% (paper: ~10× faster), -1 if never
	SpeedupAt2PctRSD float64
}

// Figure3a runs the experiment.
func Figure3a(cfg Config) (*Fig3aResult, error) {
	cfg = cfg.WithDefaults()
	wq, _ := workload.ByName("Q17")
	cat := catalogFor(wq, cfg)

	// Batch engine reference (the vertical bar in the plot).
	qb, err := plan.Compile(wq.SQL, cat)
	if err != nil {
		return nil, err
	}
	t0 := time.Now()
	if _, err := exec.Run(qb, cat); err != nil {
		return nil, err
	}
	batchMS := ms(time.Since(t0))

	qo, err := plan.Compile(wq.SQL, cat)
	if err != nil {
		return nil, err
	}
	eng, err := core.New(qo, cat, core.Options{
		Batches: cfg.Batches, Trials: cfg.Trials, Seed: cfg.EngineSeed(),
	})
	if err != nil {
		return nil, err
	}
	defer eng.Close()
	res := &Fig3aResult{Query: wq.Name, BatchEngineMS: batchMS, TimeTo2PctMS: -1}
	var cum float64
	start := time.Now()
	for !eng.Done() {
		s, err := eng.Step()
		if err != nil {
			return nil, err
		}
		cum = ms(time.Since(start))
		p := Fig3aPoint{
			Batch:       s.Batch,
			ElapsedMS:   cum,
			RSDPercent:  s.RSD() * 100,
			Uncertain:   s.UncertainRows,
			FractionPct: s.FractionProcessed * 100,
		}
		res.Points = append(res.Points, p)
		if res.FirstAnswerMS == 0 {
			res.FirstAnswerMS = cum
		}
		if res.TimeTo2PctMS < 0 && p.RSDPercent <= 2 {
			res.TimeTo2PctMS = cum
		}
	}
	res.TotalOnlineMS = cum
	if batchMS > 0 {
		res.FirstAnswerPct = res.FirstAnswerMS / batchMS * 100
		res.OverheadPct = (res.TotalOnlineMS - batchMS) / batchMS * 100
		if res.TimeTo2PctMS > 0 {
			res.SpeedupAt2PctRSD = batchMS / res.TimeTo2PctMS
		}
	}
	return res, nil
}

// ---------------------------------------------------------------------
// Figure 3(b): per-batch query-time ratio CDM / G-OLA over the first 10
// mini-batches for C1, C2, C3, Q11, Q17, Q18, Q20.
// ---------------------------------------------------------------------

// Fig3bSeries is one query's curve.
type Fig3bSeries struct {
	Query  string
	GolaMS []float64
	CdmMS  []float64
	Ratio  []float64
}

// Fig3bQueries lists the queries Figure 3(b) plots.
var Fig3bQueries = []string{"C1", "C2", "C3", "Q11", "Q17", "Q18", "Q20"}

// Figure3b runs the experiment. Like the paper, it measures the first
// cfg.Batches mini-batches of a much longer run (the paper uses 1 GB
// batches over 100 GB, i.e. a window of 10 out of k = 100), so
// completion effects never enter the window.
func Figure3b(cfg Config) ([]Fig3bSeries, error) {
	cfg = cfg.WithDefaults()
	window := cfg.Batches
	total := window * 5 // the window covers the first 20% of the data
	var out []Fig3bSeries
	for _, name := range Fig3bQueries {
		wq, ok := workload.ByName(name)
		if !ok {
			return nil, fmt.Errorf("bench: unknown query %s", name)
		}
		cat := catalogFor(wq, cfg)
		s := Fig3bSeries{Query: name}

		qg, err := plan.Compile(wq.SQL, cat)
		if err != nil {
			return nil, fmt.Errorf("bench %s: %w", name, err)
		}
		eng, err := core.New(qg, cat, core.Options{
			Batches: total, Trials: cfg.Trials, Seed: cfg.EngineSeed(),
		})
		if err != nil {
			return nil, err
		}
		defer eng.Close()
		for i := 0; i < window; i++ {
			t0 := time.Now()
			if _, err := eng.Step(); err != nil {
				return nil, err
			}
			s.GolaMS = append(s.GolaMS, ms(time.Since(t0)))
		}

		qc, err := plan.Compile(wq.SQL, cat)
		if err != nil {
			return nil, err
		}
		cdm, err := baseline.NewCDM(qc, cat, total)
		if err != nil {
			return nil, err
		}
		for i := 0; i < window; i++ {
			t0 := time.Now()
			if _, err := cdm.Step(); err != nil {
				return nil, err
			}
			s.CdmMS = append(s.CdmMS, ms(time.Since(t0)))
		}

		for i := range s.GolaMS {
			g := s.GolaMS[i]
			if g <= 0 {
				g = 0.001
			}
			s.Ratio = append(s.Ratio, s.CdmMS[i]/g)
		}
		out = append(out, s)
	}
	return out, nil
}

// ---------------------------------------------------------------------
// T1 (§5 prose): headline latency metrics for Q17.
// ---------------------------------------------------------------------

// T1Result captures the prose claims around Figure 3(a).
type T1Result struct {
	Fig3a          *Fig3aResult
	MeanRefreshMS  float64 // the paper's "refined every ~2.5 s" cadence
	FinalRSDPct    float64
	FinalUncertain int
}

// Table1 runs the experiment.
func Table1(cfg Config) (*T1Result, error) {
	f, err := Figure3a(cfg)
	if err != nil {
		return nil, err
	}
	r := &T1Result{Fig3a: f}
	if n := len(f.Points); n > 0 {
		r.MeanRefreshMS = f.TotalOnlineMS / float64(n)
		r.FinalRSDPct = f.Points[n-1].RSDPercent
		r.FinalUncertain = f.Points[n-1].Uncertain
	}
	return r, nil
}

// ---------------------------------------------------------------------
// T2 (§3.2/§5 prose): uncertain sets are very small in practice.
// ---------------------------------------------------------------------

// T2Row is one query's uncertain-set profile.
type T2Row struct {
	Query        string
	PerBatch     []int
	MaxUncertain int
	MaxPctOfSeen float64
	Final        int
	Recomputes   int
}

// Table2 profiles the uncertain sets of every suite query.
func Table2(cfg Config) ([]T2Row, error) {
	cfg = cfg.WithDefaults()
	var out []T2Row
	for _, wq := range workload.Suite() {
		cat := catalogFor(wq, cfg)
		q, err := plan.Compile(wq.SQL, cat)
		if err != nil {
			return nil, err
		}
		eng, err := core.New(q, cat, core.Options{
			Batches: cfg.Batches, Trials: cfg.Trials, Seed: cfg.EngineSeed(),
		})
		if err != nil {
			return nil, err
		}
		defer eng.Close()
		row := T2Row{Query: wq.Name}
		rowsPerBatch := cfg.Rows / cfg.Batches
		for !eng.Done() {
			s, err := eng.Step()
			if err != nil {
				return nil, err
			}
			row.PerBatch = append(row.PerBatch, s.UncertainRows)
			if s.UncertainRows > row.MaxUncertain {
				row.MaxUncertain = s.UncertainRows
			}
			seen := rowsPerBatch * s.Batch
			if seen > 0 {
				pct := float64(s.UncertainRows) / float64(seen) * 100
				if pct > row.MaxPctOfSeen {
					row.MaxPctOfSeen = pct
				}
			}
			row.Final = s.UncertainRows
			row.Recomputes = s.Recomputes
		}
		out = append(out, row)
	}
	return out, nil
}

// ---------------------------------------------------------------------
// A1 (ablation, §3.2): the ε slack trades recomputation probability
// against uncertain-set size.
// ---------------------------------------------------------------------

// EpsPoint is one (query, ε) setting's outcome.
type EpsPoint struct {
	Query        string
	EpsilonSigma float64
	Recomputes   int
	MaxUncertain int
	TotalMS      float64
}

// AblationEpsilon sweeps ε over SBI (a stable global threshold, showing
// the uncertain-set growth) and Q17 (fragile per-group ranges, showing
// the recomputation side of the trade).
func AblationEpsilon(cfg Config, epsilons []float64) ([]EpsPoint, error) {
	cfg = cfg.WithDefaults()
	if len(epsilons) == 0 {
		epsilons = []float64{0.05, 0.25, 0.5, 1.0, 2.0, 4.0}
	}
	var out []EpsPoint
	for _, name := range []string{"SBI", "Q17"} {
		wq, _ := workload.ByName(name)
		cat := catalogFor(wq, cfg)
		for _, eps := range epsilons {
			q, err := plan.Compile(wq.SQL, cat)
			if err != nil {
				return nil, err
			}
			eng, err := core.New(q, cat, core.Options{
				Batches: cfg.Batches, Trials: cfg.Trials, Seed: cfg.EngineSeed(), EpsilonSigma: eps,
			})
			if err != nil {
				return nil, err
			}
			defer eng.Close()
			p := EpsPoint{Query: name, EpsilonSigma: eps}
			t0 := time.Now()
			for !eng.Done() {
				s, err := eng.Step()
				if err != nil {
					return nil, err
				}
				if s.UncertainRows > p.MaxUncertain {
					p.MaxUncertain = s.UncertainRows
				}
			}
			p.TotalMS = ms(time.Since(t0))
			p.Recomputes = eng.Metrics().Recomputes
			out = append(out, p)
		}
	}
	return out, nil
}

// ---------------------------------------------------------------------
// A2 (ablation, §2.2): bootstrap trial count vs. CI quality/overhead.
// ---------------------------------------------------------------------

// TrialPoint is one B setting's outcome.
type TrialPoint struct {
	Trials      int
	TotalMS     float64
	FirstRSDPct float64
	LastRSDPct  float64
}

// AblationBootstrap sweeps the trial count over SBI.
func AblationBootstrap(cfg Config, trialCounts []int) ([]TrialPoint, error) {
	cfg = cfg.WithDefaults()
	if len(trialCounts) == 0 {
		trialCounts = []int{20, 50, 100, 200}
	}
	wq, _ := workload.ByName("SBI")
	cat := catalogFor(wq, cfg)
	var out []TrialPoint
	for _, b := range trialCounts {
		q, err := plan.Compile(wq.SQL, cat)
		if err != nil {
			return nil, err
		}
		eng, err := core.New(q, cat, core.Options{
			Batches: cfg.Batches, Trials: b, Seed: cfg.EngineSeed(),
		})
		if err != nil {
			return nil, err
		}
		defer eng.Close()
		p := TrialPoint{Trials: b}
		t0 := time.Now()
		first := true
		for !eng.Done() {
			s, err := eng.Step()
			if err != nil {
				return nil, err
			}
			if first {
				p.FirstRSDPct = s.RSD() * 100
				first = false
			}
			p.LastRSDPct = s.RSD() * 100
		}
		p.TotalMS = ms(time.Since(t0))
		out = append(out, p)
	}
	return out, nil
}

// ---------------------------------------------------------------------
// A3 (ablation, §2.1): mini-batch granularity vs. cadence and overhead.
// ---------------------------------------------------------------------

// BatchPoint is one k setting's outcome.
type BatchPoint struct {
	Batches       int
	TotalMS       float64
	MeanRefreshMS float64
	FirstAnswerMS float64
}

// AblationBatches sweeps k over Q17.
func AblationBatches(cfg Config, ks []int) ([]BatchPoint, error) {
	cfg = cfg.WithDefaults()
	if len(ks) == 0 {
		ks = []int{5, 10, 20, 50}
	}
	wq, _ := workload.ByName("Q17")
	cat := catalogFor(wq, cfg)
	var out []BatchPoint
	for _, k := range ks {
		q, err := plan.Compile(wq.SQL, cat)
		if err != nil {
			return nil, err
		}
		eng, err := core.New(q, cat, core.Options{
			Batches: k, Trials: cfg.Trials, Seed: cfg.EngineSeed(),
		})
		if err != nil {
			return nil, err
		}
		defer eng.Close()
		p := BatchPoint{Batches: k}
		t0 := time.Now()
		for !eng.Done() {
			if _, err := eng.Step(); err != nil {
				return nil, err
			}
			if p.FirstAnswerMS == 0 {
				p.FirstAnswerMS = ms(time.Since(t0))
			}
		}
		p.TotalMS = ms(time.Since(t0))
		p.MeanRefreshMS = p.TotalMS / float64(k)
		out = append(out, p)
	}
	return out, nil
}

func ms(d time.Duration) float64 { return float64(d.Microseconds()) / 1000 }

// ---------------------------------------------------------------------
// Rendering helpers shared by flbench.
// ---------------------------------------------------------------------

// FormatFig3a renders the Figure 3(a) series as an aligned text table.
func FormatFig3a(r *Fig3aResult) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Figure 3(a): RSD vs time, %s (batch engine: %.1f ms)\n", r.Query, r.BatchEngineMS)
	fmt.Fprintf(&b, "%6s %12s %10s %12s %10s\n", "batch", "elapsed ms", "rsd %", "fraction %", "uncertain")
	for _, p := range r.Points {
		fmt.Fprintf(&b, "%6d %12.1f %10.3f %12.1f %10d\n",
			p.Batch, p.ElapsedMS, p.RSDPercent, p.FractionPct, p.Uncertain)
	}
	fmt.Fprintf(&b, "first answer: %.1f ms (%.1f%% of batch time)\n", r.FirstAnswerMS, r.FirstAnswerPct)
	fmt.Fprintf(&b, "total online: %.1f ms (overhead %.0f%% vs batch)\n", r.TotalOnlineMS, r.OverheadPct)
	if r.TimeTo2PctMS >= 0 {
		fmt.Fprintf(&b, "time to 2%% RSD: %.1f ms (%.1fx faster than batch)\n",
			r.TimeTo2PctMS, r.SpeedupAt2PctRSD)
	} else {
		fmt.Fprintf(&b, "2%% RSD not reached within %d batches\n", len(r.Points))
	}
	return b.String()
}

// FormatFig3b renders the Figure 3(b) ratios.
func FormatFig3b(series []Fig3bSeries) string {
	var b strings.Builder
	b.WriteString("Figure 3(b): per-batch time ratio CDM / G-OLA\n")
	fmt.Fprintf(&b, "%6s", "batch")
	for _, s := range series {
		fmt.Fprintf(&b, " %8s", s.Query)
	}
	b.WriteString("\n")
	n := 0
	for _, s := range series {
		if len(s.Ratio) > n {
			n = len(s.Ratio)
		}
	}
	for i := 0; i < n; i++ {
		fmt.Fprintf(&b, "%6d", i+1)
		for _, s := range series {
			if i < len(s.Ratio) {
				fmt.Fprintf(&b, " %8.2f", s.Ratio[i])
			} else {
				fmt.Fprintf(&b, " %8s", "-")
			}
		}
		b.WriteString("\n")
	}
	return b.String()
}

// FormatT2 renders the uncertain-set profile.
func FormatT2(rows []T2Row) string {
	var b strings.Builder
	b.WriteString("T2: uncertain-set sizes per query\n")
	fmt.Fprintf(&b, "%6s %12s %14s %8s %10s\n", "query", "max", "max % seen", "final", "recomputes")
	for _, r := range rows {
		fmt.Fprintf(&b, "%6s %12d %14.2f %8d %10d\n",
			r.Query, r.MaxUncertain, r.MaxPctOfSeen, r.Final, r.Recomputes)
	}
	return b.String()
}

// AsciiChart renders the Figure 3(a) refinement curve as a terminal
// plot (RSD% on the y axis, elapsed time on the x axis), echoing the
// dashboards of the paper's demo.
func AsciiChart(r *Fig3aResult, width, height int) string {
	if len(r.Points) == 0 || width < 16 || height < 4 {
		return ""
	}
	maxRSD := 0.0
	maxT := r.Points[len(r.Points)-1].ElapsedMS
	for _, p := range r.Points {
		if p.RSDPercent > maxRSD {
			maxRSD = p.RSDPercent
		}
	}
	if maxRSD == 0 || maxT == 0 {
		return ""
	}
	grid := make([][]byte, height)
	for y := range grid {
		grid[y] = []byte(strings.Repeat(" ", width))
	}
	for _, p := range r.Points {
		x := int(p.ElapsedMS / maxT * float64(width-1))
		y := height - 1 - int(p.RSDPercent/maxRSD*float64(height-1))
		if x >= 0 && x < width && y >= 0 && y < height {
			grid[y][x] = '*'
		}
	}
	// vertical bar where the batch engine finishes (if on-scale)
	if r.BatchEngineMS <= maxT {
		x := int(r.BatchEngineMS / maxT * float64(width-1))
		for y := range grid {
			if grid[y][x] == ' ' {
				grid[y][x] = '|'
			}
		}
	}
	var b strings.Builder
	fmt.Fprintf(&b, "RSD%% (max %.2f)\n", maxRSD)
	for _, row := range grid {
		b.WriteString(string(row))
		b.WriteByte('\n')
	}
	fmt.Fprintf(&b, "0%s%.0f ms ('|' = batch engine done)\n",
		strings.Repeat(" ", width-18), maxT)
	return b.String()
}
