package bench

import (
	"fmt"
	"io"

	"fluodb/internal/core"
	"fluodb/internal/otrace"
	"fluodb/internal/plan"
	"fluodb/internal/workload"
)

// Structured trace capture: run one suite query with the engine's event
// tracer and phase profiler enabled and dump everything the engine
// decided — range commits, variation-range failures, uncertain flips,
// recompute triggers — as JSON Lines. This is flbench -trace.

// TraceResult summarizes a traced run.
type TraceResult struct {
	Query      string
	Events     int
	Dropped    int
	ByKind     map[string]int
	Recomputes int
	Report     string // the engine's per-phase text profile
	// Span-timeline capture (flbench -spans): recorded span count and
	// slab overflow drops. Zero when no spans writer was supplied.
	Spans        int
	DroppedSpans int
}

// traceCapacity bounds the captured ring; 64k events comfortably holds
// every commit of the suite queries at benchmark scale.
const traceCapacity = 1 << 16

// TraceRun executes one suite query (default Q17, the nested
// non-monotonic workload) with tracing and profiling enabled, streaming
// the retained events to w as JSONL. When spansW is non-nil the run
// also records a span timeline and writes it there as Chrome
// trace-event JSON (Perfetto-loadable), with the ring events attached
// as instants.
func TraceRun(cfg Config, queryName string, w, spansW io.Writer) (*TraceResult, error) {
	cfg = cfg.WithDefaults()
	if queryName == "" {
		queryName = "Q17"
	}
	wq, ok := workload.ByName(queryName)
	if !ok {
		return nil, fmt.Errorf("bench trace: unknown suite query %q", queryName)
	}
	cat := catalogFor(wq, cfg)
	q, err := plan.Compile(wq.SQL, cat)
	if err != nil {
		return nil, err
	}
	ringCap := cfg.TraceCap
	if ringCap <= 0 {
		ringCap = traceCapacity
	}
	tracer := core.NewTracer(ringCap)
	opt := core.Options{
		Batches: cfg.Batches, Trials: cfg.Trials, Seed: cfg.EngineSeed(),
		Profile: true, Tracer: tracer,
	}
	var spans *otrace.Tracer
	if spansW != nil {
		spans = otrace.NewTracer(0)
		spans.SetLabel(wq.Name + ": " + wq.SQL)
		opt.Spans = spans
	}
	eng, err := core.New(q, cat, opt)
	if err != nil {
		return nil, err
	}
	defer eng.Close()
	if _, err := eng.Run(nil); err != nil {
		return nil, err
	}
	if err := tracer.WriteJSONL(w); err != nil {
		return nil, err
	}
	res := &TraceResult{
		Query:      wq.Name,
		Dropped:    tracer.Dropped(),
		ByKind:     map[string]int{},
		Recomputes: eng.Metrics().Recomputes,
		Report:     eng.Report(),
	}
	for _, ev := range tracer.Events() {
		res.Events++
		res.ByKind[ev.Kind]++
	}
	if spans != nil {
		if err := spans.WriteChromeTrace(spansW); err != nil {
			return nil, err
		}
		res.Spans = len(spans.Spans())
		res.DroppedSpans = int(spans.DroppedSpans())
	}
	return res, nil
}

// FormatTrace renders a trace summary.
func FormatTrace(r *TraceResult) string {
	s := fmt.Sprintf("trace: %s — %d events captured (%d dropped), %d recomputes\n",
		r.Query, r.Events, r.Dropped, r.Recomputes)
	if r.Spans > 0 {
		s += fmt.Sprintf("  spans: %d recorded (%d dropped) — load the JSON into ui.perfetto.dev\n",
			r.Spans, r.DroppedSpans)
	}
	for _, kind := range []string{core.EvCommit, core.EvRangeFailure, core.EvFlip, core.EvRecompute, core.EvNoCommit} {
		if n := r.ByKind[kind]; n > 0 {
			s += fmt.Sprintf("  %-20s %d\n", kind, n)
		}
	}
	return s + r.Report
}
