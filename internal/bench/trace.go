package bench

import (
	"fmt"
	"io"

	"fluodb/internal/core"
	"fluodb/internal/plan"
	"fluodb/internal/workload"
)

// Structured trace capture: run one suite query with the engine's event
// tracer and phase profiler enabled and dump everything the engine
// decided — range commits, variation-range failures, uncertain flips,
// recompute triggers — as JSON Lines. This is flbench -trace.

// TraceResult summarizes a traced run.
type TraceResult struct {
	Query      string
	Events     int
	Dropped    int
	ByKind     map[string]int
	Recomputes int
	Report     string // the engine's per-phase text profile
}

// traceCapacity bounds the captured ring; 64k events comfortably holds
// every commit of the suite queries at benchmark scale.
const traceCapacity = 1 << 16

// TraceRun executes one suite query (default Q17, the nested
// non-monotonic workload) with tracing and profiling enabled, streaming
// the retained events to w as JSONL.
func TraceRun(cfg Config, queryName string, w io.Writer) (*TraceResult, error) {
	cfg = cfg.WithDefaults()
	if queryName == "" {
		queryName = "Q17"
	}
	wq, ok := workload.ByName(queryName)
	if !ok {
		return nil, fmt.Errorf("bench trace: unknown suite query %q", queryName)
	}
	cat := catalogFor(wq, cfg)
	q, err := plan.Compile(wq.SQL, cat)
	if err != nil {
		return nil, err
	}
	tracer := core.NewTracer(traceCapacity)
	eng, err := core.New(q, cat, core.Options{
		Batches: cfg.Batches, Trials: cfg.Trials, Seed: cfg.EngineSeed(),
		Profile: true, Tracer: tracer,
	})
	if err != nil {
		return nil, err
	}
	defer eng.Close()
	if _, err := eng.Run(nil); err != nil {
		return nil, err
	}
	if err := tracer.WriteJSONL(w); err != nil {
		return nil, err
	}
	res := &TraceResult{
		Query:      wq.Name,
		Dropped:    tracer.Dropped(),
		ByKind:     map[string]int{},
		Recomputes: eng.Metrics().Recomputes,
		Report:     eng.Report(),
	}
	for _, ev := range tracer.Events() {
		res.Events++
		res.ByKind[ev.Kind]++
	}
	return res, nil
}

// FormatTrace renders a trace summary.
func FormatTrace(r *TraceResult) string {
	s := fmt.Sprintf("trace: %s — %d events captured (%d dropped), %d recomputes\n",
		r.Query, r.Events, r.Dropped, r.Recomputes)
	for _, kind := range []string{core.EvCommit, core.EvRangeFailure, core.EvFlip, core.EvRecompute, core.EvNoCommit} {
		if n := r.ByKind[kind]; n > 0 {
			s += fmt.Sprintf("  %-20s %d\n", kind, n)
		}
	}
	return s + r.Report
}
