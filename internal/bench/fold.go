package bench

import (
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"time"

	"fluodb/internal/bootstrap"
	"fluodb/internal/core"
	"fluodb/internal/plan"
	"fluodb/internal/storage"
	"fluodb/internal/types"
)

// Fold-path benchmark: end-to-end mini-batch fold throughput through the
// public engine API. Unlike the figure experiments, these scenarios are
// built so that (after the first mini-batch) every tuple hits an
// existing group — the steady state the per-tuple fold cost is defined
// over. Parallelism is pinned to 1 so the numbers measure the serial
// fold loop, not the machine's core count.

// FoldPoint is one fold scenario's measurement (best of FoldReps runs).
// The phase breakdown and per-batch uncertain counts come from one
// extra run with the profiler enabled, outside the timed reps (phase
// timing adds clock reads to the hot loop), so the trajectory captures
// where time goes — estimation overhead vs fold work — not just wall
// time.
type FoldPoint struct {
	Scenario          string             `json:"scenario"`
	Rows              int                `json:"rows"`
	Batches           int                `json:"batches"`
	Trials            int                `json:"trials"`
	NsPerRow          float64            `json:"ns_per_row"`
	RowsPerSec        float64            `json:"rows_per_sec"`
	Recomputes        int                `json:"recomputes"`
	UncertainPerBatch []int              `json:"uncertain_per_batch,omitempty"`
	PhaseMS           map[string]float64 `json:"phase_ms,omitempty"`
}

// FoldBaseline is one historical entry of the perf trajectory.
type FoldBaseline struct {
	Label  string      `json:"label"`
	Points []FoldPoint `json:"points"`
}

// FoldResult is the BENCH_fold.json document: the current measurement
// plus every previous "current" this file has carried, so successive
// PRs accumulate a perf trajectory.
type FoldResult struct {
	GeneratedBy string         `json:"generated_by"`
	GoVersion   string         `json:"go_version"`
	Label       string         `json:"label"`
	Current     []FoldPoint    `json:"current"`
	Baselines   []FoldBaseline `json:"baselines,omitempty"`
}

// FoldReps is the number of repetitions per scenario (best run wins).
const FoldReps = 3

// foldBenchCatalog builds the fold-benchmark fact table: two
// low-cardinality key columns (a: 8 values, b: 16 values) and one
// measure, so group creation stops after the first few tuples.
func foldBenchCatalog(n int, seed uint64) *storage.Catalog {
	cat := storage.NewCatalog()
	t := storage.NewTable("facts", types.NewSchema(
		"a", types.KindString,
		"b", types.KindInt,
		"x", types.KindFloat,
	))
	as := []string{"aa", "bb", "cc", "dd", "ee", "ff", "gg", "hh"}
	rng := bootstrap.NewRNG(seed)
	for i := 0; i < n; i++ {
		_ = t.Append(types.Row{
			types.NewString(as[rng.Intn(len(as))]),
			types.NewInt(int64(rng.Intn(16))),
			types.NewFloat(rng.Float64() * 100),
		})
	}
	cat.Put(t)
	return cat
}

// FoldBench measures fold throughput for single- and multi-column
// group-bys, each with the default bootstrap subsample (few tuples carry
// trial weights) and with an unbounded subsample (every tuple folds into
// all B replicas).
func FoldBench(cfg Config) ([]FoldPoint, error) {
	cfg = cfg.WithDefaults()
	const (
		sqlSingle = `SELECT a, COUNT(x), SUM(x), AVG(x) FROM facts GROUP BY a`
		sqlMulti  = `SELECT a, b, COUNT(x), SUM(x), AVG(x) FROM facts GROUP BY a, b`
	)
	scenarios := []struct {
		name      string
		sql       string
		sampleCap int
	}{
		{"single-key/sampled-few", sqlSingle, 0},
		{"single-key/sampled-all", sqlSingle, -1},
		{"multi-key/sampled-few", sqlMulti, 0},
		{"multi-key/sampled-all", sqlMulti, -1},
	}
	cat := foldBenchCatalog(cfg.Rows, cfg.EngineSeed())
	var out []FoldPoint
	for _, sc := range scenarios {
		best := time.Duration(0)
		// rep -1 is the profiled pass: phase timers on, excluded from
		// the throughput measurement (clock reads cost hot-loop time).
		var profiled core.Metrics
		for rep := -1; rep < FoldReps; rep++ {
			q, err := plan.Compile(sc.sql, cat)
			if err != nil {
				return nil, fmt.Errorf("bench fold %s: %w", sc.name, err)
			}
			eng, err := core.New(q, cat, core.Options{
				Batches: cfg.Batches, Trials: cfg.Trials, Seed: cfg.EngineSeed(),
				BootstrapSampleCap: sc.sampleCap, Parallelism: 1,
				Profile: rep < 0,
			})
			if err != nil {
				return nil, err
			}
			t0 := time.Now()
			if _, err := eng.Run(nil); err != nil {
				return nil, err
			}
			d := time.Since(t0)
			if rep < 0 {
				profiled = eng.Metrics()
				continue
			}
			if best == 0 || d < best {
				best = d
			}
		}
		ns := float64(best.Nanoseconds()) / float64(cfg.Rows)
		out = append(out, FoldPoint{
			Scenario: sc.name, Rows: cfg.Rows, Batches: cfg.Batches, Trials: cfg.Trials,
			NsPerRow: ns, RowsPerSec: 1e9 / ns,
			Recomputes:        profiled.Recomputes,
			UncertainPerBatch: profiled.UncertainPerBatch,
			PhaseMS:           profiled.Phases.Milliseconds(),
		})
	}
	return out, nil
}

// WriteFoldJSON writes (or updates) a BENCH_fold.json trajectory file:
// if path already holds a result, its "current" entry is demoted into
// "baselines" before the new measurement is installed.
func WriteFoldJSON(path, label string, points []FoldPoint) error {
	res := FoldResult{
		GeneratedBy: "cmd/flbench -experiment fold",
		GoVersion:   runtime.Version(),
		Label:       label,
		Current:     points,
	}
	if prev, err := os.ReadFile(path); err == nil {
		var old FoldResult
		if err := json.Unmarshal(prev, &old); err == nil && len(old.Current) > 0 {
			res.Baselines = append(old.Baselines, FoldBaseline{Label: old.Label, Points: old.Current})
		}
	}
	data, err := json.MarshalIndent(res, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// FormatFold renders fold points as an aligned table, with each
// scenario's dominant phases (from the profiled pass) alongside the
// throughput numbers.
func FormatFold(points []FoldPoint) string {
	s := "Fold-path throughput (Parallelism=1, steady-state group-by)\n"
	s += fmt.Sprintf("%-26s %10s %12s %14s  %s\n", "scenario", "rows", "ns/row", "rows/sec", "phase breakdown (ms)")
	for _, p := range points {
		s += fmt.Sprintf("%-26s %10d %12.1f %14.0f  %s\n",
			p.Scenario, p.Rows, p.NsPerRow, p.RowsPerSec, formatPhaseMS(p.PhaseMS))
	}
	return s
}

// formatPhaseMS renders a phase_ms map in the profiler's canonical
// phase order.
func formatPhaseMS(phases map[string]float64) string {
	if len(phases) == 0 {
		return "-"
	}
	s := ""
	for _, name := range core.PhaseNames {
		v, ok := phases[name]
		if !ok {
			continue
		}
		if s != "" {
			s += " "
		}
		s += fmt.Sprintf("%s=%.1f", name, v)
	}
	return s
}
