package bench

import (
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"time"

	"fluodb/internal/bootstrap"
	"fluodb/internal/core"
	"fluodb/internal/plan"
	"fluodb/internal/storage"
	"fluodb/internal/types"
)

// Fold-path benchmark: end-to-end mini-batch fold throughput through the
// public engine API. Unlike the figure experiments, these scenarios are
// built so that (after the first mini-batch) every tuple hits an
// existing group — the steady state the per-tuple fold cost is defined
// over. Parallelism is pinned to 1 so the numbers measure the serial
// fold loop, not the machine's core count.

// FoldPoint is one fold scenario's measurement (best of FoldReps runs).
// The phase breakdown and per-batch uncertain counts come from one
// extra run with the profiler enabled, outside the timed reps (phase
// timing adds clock reads to the hot loop), so the trajectory captures
// where time goes — estimation overhead vs fold work — not just wall
// time.
type FoldPoint struct {
	Scenario          string             `json:"scenario"`
	Rows              int                `json:"rows"`
	Batches           int                `json:"batches"`
	Trials            int                `json:"trials"`
	NsPerRow          float64            `json:"ns_per_row"`
	RowsPerSec        float64            `json:"rows_per_sec"`
	Recomputes        int                `json:"recomputes"`
	UncertainPerBatch []int              `json:"uncertain_per_batch,omitempty"`
	PhaseMS           map[string]float64 `json:"phase_ms,omitempty"`
}

// FoldBaseline is one historical entry of the perf trajectory.
type FoldBaseline struct {
	Label  string      `json:"label"`
	Points []FoldPoint `json:"points"`
}

// ScalingPoint is one parallel-scaling measurement: a fold scenario run
// at a fixed worker count under either the persistent worker pool
// ("pool") or the legacy per-batch goroutine-spawn runtime ("spawn").
type ScalingPoint struct {
	Scenario    string  `json:"scenario"`
	Parallelism int     `json:"parallelism"`
	Runtime     string  `json:"runtime"` // "pool" | "spawn"
	Rows        int     `json:"rows"`
	NsPerRow    float64 `json:"ns_per_row"`
	RowsPerSec  float64 `json:"rows_per_sec"`
}

// FoldResult is the BENCH_fold.json document: the current measurement
// plus every previous "current" this file has carried, so successive
// PRs accumulate a perf trajectory. Scaling holds the parallel-scaling
// series (P sweep, pool vs spawn) and Sharding the shard-topology
// sweep (N shard engines behind the coordinator) of the current label.
type FoldResult struct {
	GeneratedBy string         `json:"generated_by"`
	GoVersion   string         `json:"go_version"`
	Label       string         `json:"label"`
	Current     []FoldPoint    `json:"current"`
	Scaling     []ScalingPoint `json:"scaling,omitempty"`
	Sharding    []ShardPoint   `json:"sharding,omitempty"`
	Baselines   []FoldBaseline `json:"baselines,omitempty"`
}

// FoldReps is the number of repetitions per scenario (best run wins).
const FoldReps = 3

// foldBenchCatalog builds the fold-benchmark fact table: two
// low-cardinality key columns (a: 8 values, b: 16 values) and one
// measure, so group creation stops after the first few tuples.
func foldBenchCatalog(n int, seed uint64) *storage.Catalog {
	cat := storage.NewCatalog()
	t := storage.NewTable("facts", types.NewSchema(
		"a", types.KindString,
		"b", types.KindInt,
		"x", types.KindFloat,
	))
	as := []string{"aa", "bb", "cc", "dd", "ee", "ff", "gg", "hh"}
	rng := bootstrap.NewRNG(seed)
	for i := 0; i < n; i++ {
		_ = t.Append(types.Row{
			types.NewString(as[rng.Intn(len(as))]),
			types.NewInt(int64(rng.Intn(16))),
			types.NewFloat(rng.Float64() * 100),
		})
	}
	cat.Put(t)
	return cat
}

// FoldBench measures fold throughput for single- and multi-column
// group-bys, each with the default bootstrap subsample (few tuples carry
// trial weights) and with an unbounded subsample (every tuple folds into
// all B replicas).
func FoldBench(cfg Config) ([]FoldPoint, error) {
	cfg = cfg.WithDefaults()
	const (
		sqlSingle = `SELECT a, COUNT(x), SUM(x), AVG(x) FROM facts GROUP BY a`
		sqlMulti  = `SELECT a, b, COUNT(x), SUM(x), AVG(x) FROM facts GROUP BY a, b`
		// filtered exercises the vectorized certain-WHERE kernel with a
		// dictionary string predicate alongside a numeric compare;
		// uncertain-where exercises the tri-state classification kernel
		// (nested-aggregate predicate, certain/uncertain run splitting).
		sqlFiltered  = `SELECT a, COUNT(x), SUM(x), AVG(x) FROM facts WHERE a != 'hh' AND x < 90.0 GROUP BY a`
		sqlUncertain = `SELECT a, COUNT(x), SUM(x) FROM facts WHERE x < (SELECT 1.2 * AVG(x) FROM facts) GROUP BY a`
	)
	scenarios := []struct {
		name      string
		sql       string
		sampleCap int
	}{
		{"single-key/sampled-few", sqlSingle, 0},
		{"single-key/sampled-all", sqlSingle, -1},
		{"multi-key/sampled-few", sqlMulti, 0},
		{"multi-key/sampled-all", sqlMulti, -1},
		{"filtered/sampled-all", sqlFiltered, -1},
		{"uncertain-where", sqlUncertain, 0},
	}
	cat := foldBenchCatalog(cfg.Rows, cfg.EngineSeed())
	var out []FoldPoint
	for _, sc := range scenarios {
		best := time.Duration(0)
		// rep -1 is the profiled pass: phase timers on, excluded from
		// the throughput measurement (clock reads cost hot-loop time).
		var profiled core.Metrics
		for rep := -1; rep < FoldReps; rep++ {
			q, err := plan.Compile(sc.sql, cat)
			if err != nil {
				return nil, fmt.Errorf("bench fold %s: %w", sc.name, err)
			}
			eng, err := core.New(q, cat, core.Options{
				Batches: cfg.Batches, Trials: cfg.Trials, Seed: cfg.EngineSeed(),
				BootstrapSampleCap: sc.sampleCap, Parallelism: 1,
				Profile: rep < 0, RowPath: cfg.RowPath,
			})
			if err != nil {
				return nil, err
			}
			t0 := time.Now()
			_, err = eng.Run(nil)
			d := time.Since(t0)
			eng.Close()
			if err != nil {
				return nil, err
			}
			if rep < 0 {
				profiled = eng.Metrics()
				continue
			}
			if best == 0 || d < best {
				best = d
			}
		}
		ns := float64(best.Nanoseconds()) / float64(cfg.Rows)
		out = append(out, FoldPoint{
			Scenario: sc.name, Rows: cfg.Rows, Batches: cfg.Batches, Trials: cfg.Trials,
			NsPerRow: ns, RowsPerSec: 1e9 / ns,
			Recomputes:        profiled.Recomputes,
			UncertainPerBatch: profiled.UncertainPerBatch,
			PhaseMS:           profiled.Phases.Milliseconds(),
		})
	}
	return out, nil
}

// ScalingBench sweeps the mini-batch runtime across worker counts
// P∈{1,2,4,8}, comparing the persistent worker pool (cross-batch shard
// reuse + parallel reclassification + pipelined weight prefetch)
// against the legacy per-batch goroutine-spawn path on the sampled-all
// scenarios (every tuple folds into all B replicas — the configuration
// where per-batch shard setup cost is proportionally smallest, i.e. the
// hardest one for the pool to win). ParallelThreshold is lowered to 512
// so all worker counts engage on cfg.Rows/cfg.Batches-row batches.
func ScalingBench(cfg Config) ([]ScalingPoint, error) {
	cfg = cfg.WithDefaults()
	scenarios := []struct {
		name string
		sql  string
	}{
		{"single-key/sampled-all", `SELECT a, COUNT(x), SUM(x), AVG(x) FROM facts GROUP BY a`},
		{"multi-key/sampled-all", `SELECT a, b, COUNT(x), SUM(x), AVG(x) FROM facts GROUP BY a, b`},
	}
	runtimes := []struct {
		name  string
		spawn bool
	}{
		{"pool", false},
		{"spawn", true},
	}
	cat := foldBenchCatalog(cfg.Rows, cfg.EngineSeed())
	var out []ScalingPoint
	for _, sc := range scenarios {
		for _, p := range []int{1, 2, 4, 8} {
			for _, rt := range runtimes {
				best := time.Duration(0)
				for rep := 0; rep < FoldReps; rep++ {
					q, err := plan.Compile(sc.sql, cat)
					if err != nil {
						return nil, fmt.Errorf("bench scaling %s: %w", sc.name, err)
					}
					eng, err := core.New(q, cat, core.Options{
						Batches: cfg.Batches, Trials: cfg.Trials, Seed: cfg.EngineSeed(),
						BootstrapSampleCap: -1,
						Parallelism:        p, ParallelThreshold: 512,
						PerBatchSpawn: rt.spawn,
					})
					if err != nil {
						return nil, err
					}
					t0 := time.Now()
					_, err = eng.Run(nil)
					d := time.Since(t0)
					eng.Close()
					if err != nil {
						return nil, err
					}
					if best == 0 || d < best {
						best = d
					}
				}
				ns := float64(best.Nanoseconds()) / float64(cfg.Rows)
				out = append(out, ScalingPoint{
					Scenario: sc.name, Parallelism: p, Runtime: rt.name,
					Rows: cfg.Rows, NsPerRow: ns, RowsPerSec: 1e9 / ns,
				})
			}
		}
	}
	return out, nil
}

// WriteFoldJSON writes (or updates) a BENCH_fold.json trajectory file:
// if path already holds a result, its "current" entry is demoted into
// "baselines" before the new measurement is installed. An existing
// scaling series carries over only when the label is unchanged (a new
// label's scaling numbers must be re-measured under that label).
func WriteFoldJSON(path, label string, points []FoldPoint) error {
	res := FoldResult{
		GeneratedBy: "cmd/flbench -experiment fold",
		GoVersion:   runtime.Version(),
		Label:       label,
		Current:     points,
	}
	if prev, err := os.ReadFile(path); err == nil {
		var old FoldResult
		if err := json.Unmarshal(prev, &old); err == nil && len(old.Current) > 0 {
			res.Baselines = append(old.Baselines, FoldBaseline{Label: old.Label, Points: old.Current})
			if old.Label == label {
				res.Scaling = old.Scaling
				res.Sharding = old.Sharding
			}
		}
	}
	data, err := json.MarshalIndent(res, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// WriteScalingJSON installs a parallel-scaling series into an existing
// (or fresh) BENCH_fold.json, leaving the current points and baseline
// trajectory untouched.
func WriteScalingJSON(path, label string, points []ScalingPoint) error {
	res := FoldResult{
		GeneratedBy: "cmd/flbench -experiment fold",
		GoVersion:   runtime.Version(),
		Label:       label,
	}
	if prev, err := os.ReadFile(path); err == nil {
		var old FoldResult
		if err := json.Unmarshal(prev, &old); err == nil {
			res.Current = old.Current
			res.Baselines = old.Baselines
			res.Sharding = old.Sharding
			if label == "" {
				res.Label = old.Label
			}
		}
	}
	res.Scaling = points
	data, err := json.MarshalIndent(res, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// WriteShardJSON installs the shard-topology sweep into an existing (or
// fresh) BENCH_fold.json, leaving every other series untouched.
func WriteShardJSON(path, label string, points []ShardPoint) error {
	res := FoldResult{
		GeneratedBy: "cmd/flbench -experiment fold",
		GoVersion:   runtime.Version(),
		Label:       label,
	}
	if prev, err := os.ReadFile(path); err == nil {
		var old FoldResult
		if err := json.Unmarshal(prev, &old); err == nil {
			res.Current = old.Current
			res.Baselines = old.Baselines
			res.Scaling = old.Scaling
			if label == "" {
				res.Label = old.Label
			}
		}
	}
	res.Sharding = points
	data, err := json.MarshalIndent(res, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// CompareFold diffs freshly measured fold points against the committed
// trajectory at path and returns one warning line per scenario whose
// ns/row regressed by more than warnPct percent (plus a line per
// scenario that cannot be compared). It never fails the caller: perf
// diffs on shared machines are advisory.
func CompareFold(path string, points []FoldPoint, warnPct float64) ([]string, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var committed FoldResult
	if err := json.Unmarshal(data, &committed); err != nil {
		return nil, fmt.Errorf("parse %s: %w", path, err)
	}
	base := map[string]FoldPoint{}
	for _, p := range committed.Current {
		base[p.Scenario] = p
	}
	var warnings []string
	for _, p := range points {
		b, ok := base[p.Scenario]
		if !ok {
			warnings = append(warnings, fmt.Sprintf(
				"NOTE  %-26s not in committed %s (label %q); no baseline to compare",
				p.Scenario, path, committed.Label))
			continue
		}
		delta := 100 * (p.NsPerRow - b.NsPerRow) / b.NsPerRow
		if delta > warnPct {
			warnings = append(warnings, fmt.Sprintf(
				"WARN  %-26s %.1f ns/row vs committed %.1f (%+.1f%% > %.0f%% threshold)",
				p.Scenario, p.NsPerRow, b.NsPerRow, delta, warnPct))
		}
	}
	return warnings, nil
}

// FormatFold renders fold points as an aligned table, with each
// scenario's dominant phases (from the profiled pass) alongside the
// throughput numbers.
func FormatFold(points []FoldPoint) string {
	s := "Fold-path throughput (Parallelism=1, steady-state group-by)\n"
	s += fmt.Sprintf("%-26s %10s %12s %14s  %s\n", "scenario", "rows", "ns/row", "rows/sec", "phase breakdown (ms)")
	for _, p := range points {
		s += fmt.Sprintf("%-26s %10d %12.1f %14.0f  %s\n",
			p.Scenario, p.Rows, p.NsPerRow, p.RowsPerSec, formatPhaseMS(p.PhaseMS))
	}
	return s
}

// FormatScaling renders the parallel-scaling series as an aligned
// table, pairing pool and spawn rows per (scenario, P) with the pool's
// advantage.
func FormatScaling(points []ScalingPoint) string {
	s := "Parallel scaling (sampled-all, ParallelThreshold=512, best of reps)\n"
	s += fmt.Sprintf("%-26s %4s %10s %12s %14s %10s\n",
		"scenario", "P", "runtime", "ns/row", "rows/sec", "pool vs spawn")
	spawn := map[string]float64{}
	for _, p := range points {
		if p.Runtime == "spawn" {
			spawn[fmt.Sprintf("%s/%d", p.Scenario, p.Parallelism)] = p.NsPerRow
		}
	}
	for _, p := range points {
		adv := ""
		if p.Runtime == "pool" {
			if sp, ok := spawn[fmt.Sprintf("%s/%d", p.Scenario, p.Parallelism)]; ok && p.NsPerRow > 0 {
				adv = fmt.Sprintf("%+.1f%%", 100*(sp-p.NsPerRow)/p.NsPerRow)
			}
		}
		s += fmt.Sprintf("%-26s %4d %10s %12.1f %14.0f %10s\n",
			p.Scenario, p.Parallelism, p.Runtime, p.NsPerRow, p.RowsPerSec, adv)
	}
	return s
}

// formatPhaseMS renders a phase_ms map in the profiler's canonical
// phase order.
func formatPhaseMS(phases map[string]float64) string {
	if len(phases) == 0 {
		return "-"
	}
	s := ""
	for _, name := range core.PhaseNames {
		v, ok := phases[name]
		if !ok {
			continue
		}
		if s != "" {
			s += " "
		}
		s += fmt.Sprintf("%s=%.1f", name, v)
	}
	return s
}
