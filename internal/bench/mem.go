package bench

import (
	"fmt"

	"fluodb/internal/core"
	"fluodb/internal/plan"
)

// Memory experiment (flbench -experiment mem): what the resource ledger
// says an online query pins, per pool and per worker count, plus a
// forced walk down the MaxMemoryBytes degradation ladder verified
// bit-identical against the unbudgeted run. This is the executable form
// of the ledger's contract — observability that never changes answers.

// MemPoint is one scenario's ledger observation.
type MemPoint struct {
	Scenario    string `json:"scenario"`
	Parallelism int    `json:"parallelism"`
	Rows        int    `json:"rows"`
	// PeakBytes is the query's high-water total residency; SteadyBytes
	// the residency after the final batch.
	PeakBytes   int64 `json:"peak_bytes"`
	SteadyBytes int64 `json:"steady_bytes"`
	// Final-batch pool split (the dominant pools).
	GroupTableBytes  int64 `json:"group_tables"`
	WeightArenaBytes int64 `json:"weight_arenas"`
	UncertainBytes   int64 `json:"uncertain"`
	SegCacheBytes    int64 `json:"segment_cache"`
	// GC telemetry accumulated across the run.
	GCCycles  int64 `json:"gc_cycles"`
	GCPauseNS int64 `json:"gc_pause_ns"`
}

// MemBudget is the degradation-ladder trajectory of a budgeted run.
type MemBudget struct {
	Scenario string `json:"scenario"`
	// UnbudgetedPeak is the reference run's peak; BudgetBytes the soft
	// limit that forced the ladder.
	UnbudgetedPeak int64 `json:"unbudgeted_peak"`
	BudgetBytes    int64 `json:"budget_bytes"`
	// RungPerBatch is the engaged rung after each batch (latched, so
	// non-decreasing); FinalRung its last value.
	RungPerBatch    []int `json:"rung_per_batch"`
	FinalRung       int   `json:"final_rung"`
	BudgetEvictions int64 `json:"budget_evictions"`
	// BitIdentical reports whether every budgeted snapshot's rows matched
	// the unbudgeted run exactly (must be true; rungs 1-2 are
	// bit-identical fallbacks and rung 3 evicts only on uncertain-heavy
	// queries).
	BitIdentical bool   `json:"bit_identical"`
	Mismatch     string `json:"mismatch,omitempty"`
}

// MemResult is the whole experiment.
type MemResult struct {
	Points []MemPoint `json:"points"`
	Budget *MemBudget `json:"budget,omitempty"`
}

// memRun drains one engine, collecting the ledger trajectory.
func memRun(sql string, cfg Config, parallelism int, budget int64) ([]*core.Snapshot, *core.Engine, error) {
	cat := foldBenchCatalog(cfg.Rows, cfg.EngineSeed())
	q, err := plan.Compile(sql, cat)
	if err != nil {
		return nil, nil, err
	}
	eng, err := core.New(q, cat, core.Options{
		Batches: cfg.Batches, Trials: cfg.Trials, Seed: cfg.EngineSeed(),
		Parallelism: parallelism, ParallelThreshold: 512,
		MaxMemoryBytes: budget,
	})
	if err != nil {
		return nil, nil, err
	}
	var snaps []*core.Snapshot
	for !eng.Done() {
		s, err := eng.Step()
		if err != nil {
			eng.Close()
			return nil, nil, err
		}
		snaps = append(snaps, s)
	}
	return snaps, eng, nil
}

// MemBench measures per-pool residency across scenarios and worker
// counts, then forces the full degradation ladder under a tiny budget
// and verifies the answers stayed bit-identical.
func MemBench(cfg Config) (*MemResult, error) {
	cfg = cfg.WithDefaults()
	scenarios := []struct {
		name string
		sql  string
	}{
		{"single-key", `SELECT a, COUNT(x), SUM(x), AVG(x) FROM facts GROUP BY a`},
		{"multi-key", `SELECT a, b, COUNT(x), SUM(x), AVG(x) FROM facts GROUP BY a, b`},
	}
	res := &MemResult{}
	for _, sc := range scenarios {
		for _, p := range []int{1, 4} {
			_, eng, err := memRun(sc.sql, cfg, p, 0)
			if err != nil {
				return nil, fmt.Errorf("bench mem %s/P=%d: %w", sc.name, p, err)
			}
			u := eng.Resources()
			m := eng.Metrics()
			eng.Close()
			res.Points = append(res.Points, MemPoint{
				Scenario: sc.name, Parallelism: p, Rows: cfg.Rows,
				PeakBytes: u.PeakBytes, SteadyBytes: u.TotalBytes,
				GroupTableBytes:  u.GroupTableBytes,
				WeightArenaBytes: u.WeightArenaBytes,
				UncertainBytes:   u.UncertainBytes,
				SegCacheBytes:    u.SegCacheBytes,
				GCCycles:         m.GCCycles, GCPauseNS: m.GCPauseNS,
			})
		}
	}

	// Budget trajectory: rerun the multi-key scenario under a budget far
	// below its unbudgeted peak, forcing every rung, and demand
	// bit-identical rows. 1 byte would also work; peak/16 exercises the
	// "re-collect between rungs" path more realistically.
	sc := scenarios[1]
	ref, refEng, err := memRun(sc.sql, cfg, 4, 0)
	if err != nil {
		return nil, err
	}
	peak := refEng.Resources().PeakBytes
	refEng.Close()
	budget := peak / 16
	if budget < 1 {
		budget = 1
	}
	got, gotEng, err := memRun(sc.sql, cfg, 4, budget)
	if err != nil {
		return nil, err
	}
	mb := &MemBudget{
		Scenario:       sc.name,
		UnbudgetedPeak: peak,
		BudgetBytes:    budget,
		FinalRung:      gotEng.Resources().DegradeRung,
	}
	mb.BudgetEvictions = gotEng.Metrics().BudgetEvictions
	gotEng.Close()
	for _, s := range got {
		mb.RungPerBatch = append(mb.RungPerBatch, s.Resources.DegradeRung)
	}
	if err := snapsEqual(ref, got); err != nil {
		mb.Mismatch = err.Error()
	} else {
		mb.BitIdentical = true
	}
	res.Budget = mb
	return res, nil
}

// FormatMem renders the experiment as aligned tables.
func FormatMem(r *MemResult) string {
	s := "Memory residency (resource ledger, final batch / peak)\n"
	s += fmt.Sprintf("%-12s %3s %10s %12s %12s %12s %12s %12s %10s\n",
		"scenario", "P", "rows", "peak", "steady", "tables", "arenas", "segcache", "gc cycles")
	for _, p := range r.Points {
		s += fmt.Sprintf("%-12s %3d %10d %12d %12d %12d %12d %12d %10d\n",
			p.Scenario, p.Parallelism, p.Rows, p.PeakBytes, p.SteadyBytes,
			p.GroupTableBytes, p.WeightArenaBytes, p.SegCacheBytes, p.GCCycles)
	}
	if b := r.Budget; b != nil {
		s += fmt.Sprintf("Budget ladder (%s): %d-byte budget vs %d-byte unbudgeted peak\n",
			b.Scenario, b.BudgetBytes, b.UnbudgetedPeak)
		s += fmt.Sprintf("  rung per batch: %v (final %d), budget evictions %d\n",
			b.RungPerBatch, b.FinalRung, b.BudgetEvictions)
		if b.BitIdentical {
			s += "  bit-identical to unbudgeted run: yes\n"
		} else {
			s += fmt.Sprintf("  bit-identical to unbudgeted run: NO — %s\n", b.Mismatch)
		}
	}
	return s
}
