package bench

import (
	"bytes"
	"context"
	"fmt"
	"reflect"
	"strings"
	"time"

	"fluodb/internal/chaos"
	"fluodb/internal/core"
	"fluodb/internal/otrace"
	"fluodb/internal/plan"
	"fluodb/internal/storage"
	"fluodb/internal/testutil"
)

// The chaos soak: thousands of deterministically seeded fault schedules
// thrown at the online runtime, each run checked against a fault-free
// reference for bit-identical snapshots (or, for the deadline and
// checkpoint modes, for the documented degraded contract). A schedule
// is fully named by its index — re-running the soak with the same base
// seed replays the exact same faults at the exact same (batch, worker)
// sites, so any failure is reproducible in isolation.

// chaosProfile is one fault mix. shards > 0 runs the schedule on a
// sharded topology (coordinator + N shard engines, core's Options.Shards)
// instead of the worker pool alone, so the bit-identity check also
// covers the coordinator's merge and its kill/recover ladder.
type chaosProfile struct {
	name   string
	shards int
	cfg    chaos.Config
}

// chaosProfiles are the pool-runtime fault mixes the soak rotates
// through.
var chaosProfiles = []chaosProfile{
	{name: "panic", cfg: chaos.Config{PanicProb: 0.3}},
	{name: "straggler", cfg: chaos.Config{StragglerProb: 0.5, StragglerDelay: 50 * time.Microsecond}},
	{name: "corrupt", cfg: chaos.Config{CorruptProb: 0.3}},
	{name: "prefetch-drop", cfg: chaos.Config{PrefetchDropProb: 0.5}},
	// mixed also runs with the span-timeline tracer attached: the
	// observability layer must neither perturb bit-identity nor emit a
	// malformed trace while absorbing every fault kind at once.
	{name: "mixed", cfg: chaos.Config{PanicProb: 0.15, StragglerProb: 0.2, CorruptProb: 0.15,
		PrefetchDropProb: 0.25, StragglerDelay: 50 * time.Microsecond}},
	// colstress targets the columnar hot path's fallback seams: prefetch
	// drops force the in-loop weight regeneration branch of the segment
	// sweep, panics force worker containment and shard re-feeds, corrupt
	// flips rows so reclassification re-runs — all while the reference
	// ran on the row path, so any divergence between the two fold
	// implementations under faults is caught, not just fault handling.
	{name: "colstress", cfg: chaos.Config{PanicProb: 0.2, CorruptProb: 0.1, PrefetchDropProb: 0.5}},
	// segseal targets the incremental segment-seal seam: the columnar
	// segment cache is dropped between batches, forcing an incremental
	// re-encode plus kernel recompilation mid-query, layered with
	// prefetch drops so the rebuilt sweep also regenerates weights
	// in-loop. The reference still runs the row path, so the re-encoded
	// segments must reproduce it bit for bit.
	{name: "segseal", cfg: chaos.Config{SegSealDropProb: 0.5, PrefetchDropProb: 0.25}},
}

// shardChaosProfiles are the sharded-topology fault mixes: injected
// shard deaths (recovered by replacement incarnations and, when a
// slice exhausts its retry budget, by a rolling-checkpoint restore),
// shard stragglers (benign for correctness — the coordinator merges in
// shard order regardless of completion order), and a mix layering
// prefetch drops on top. Kill probabilities are chosen so rung 1
// absorbs nearly every death (a slice is lost only after 4 consecutive
// kills across incarnations, ~p⁴) while still firing kills in most
// schedules.
var shardChaosProfiles = []chaosProfile{
	{name: "shard-kill", shards: 2, cfg: chaos.Config{ShardKillProb: 0.2}},
	{name: "shard-kill-wide", shards: 4, cfg: chaos.Config{ShardKillProb: 0.2}},
	{name: "shard-straggler", shards: 4, cfg: chaos.Config{ShardStragglerProb: 0.5,
		StragglerDelay: 50 * time.Microsecond}},
	{name: "shard-mixed", shards: 4, cfg: chaos.Config{ShardKillProb: 0.15,
		ShardStragglerProb: 0.2, PrefetchDropProb: 0.25, StragglerDelay: 50 * time.Microsecond}},
}

// allChaosProfiles is the full rotation `flbench -experiment chaos`
// runs: pool faults and shard faults interleaved.
var allChaosProfiles = append(append([]chaosProfile{}, chaosProfiles...), shardChaosProfiles...)

// chaosModes are the run shapes: a plain run compared snapshot-for-
// snapshot; a deadline cancellation mid-prefix followed by a resume; a
// checkpoint/resume round-trip verified byte-identical.
var chaosModes = []string{"plain", "cancel", "checkpoint"}

// chaosQueries exercise both runtime shapes: a banked grouped aggregate
// (full-checkpoint path) and a nested-subquery query with a live
// uncertain cache (classification, reclassification, replay path).
var chaosQueries = []string{
	`SELECT a, COUNT(x), SUM(x), AVG(x) FROM facts GROUP BY a`,
	`SELECT a, SUM(x), AVG(x) FROM facts
		WHERE x < (SELECT 0.8 * AVG(x) FROM facts) GROUP BY a`,
}

// ChaosResult summarizes a soak.
type ChaosResult struct {
	Schedules            int              `json:"schedules"`
	BitIdentical         int              `json:"bit_identical"` // schedules whose outputs matched the reference exactly
	FaultCounts          map[string]int64 `json:"fault_counts"`  // fired faults by kind
	ModeCounts           map[string]int   `json:"mode_counts"`
	Profiles             map[string]int   `json:"profiles"`
	CancelResumes        int              `json:"cancel_resumes"`
	CheckpointRoundTrips int              `json:"checkpoint_round_trips"`
	SpanRuns             int              `json:"span_runs"` // schedules run with span tracing, exports validated
	GoroutinesBefore     int              `json:"goroutines_before"`
	GoroutinesAfter      int              `json:"goroutines_after"`
	ElapsedMS            float64          `json:"elapsed_ms"`
}

// chaosEnv is the fixed workload the soak runs every schedule against.
type chaosEnv struct {
	cat       *storage.Catalog
	qs        []*plan.Query
	refs      [][]*core.Snapshot // fault-free reference snapshots per query
	shardRefs map[[2]int][]*core.Snapshot
	opt       core.Options
}

// refFor returns the fault-free reference trajectory for query qi on
// the given topology. Unsharded schedules check against the row-path
// reference (a cross-path equivalence check). Sharded schedules check
// against a fault-free run of the same topology, built on demand and
// cached: bootstrap trial sums are float folds whose leaf partition is
// the shard×worker split, so an N-shard run matches an unsharded run
// only up to the last ulp of the CI/RSD statistics on this catalog.
// (The exact-arithmetic fixtures in core's shard tests pin the full
// sharded-vs-unsharded bit-identity; here the soak's claim is that
// faults never perturb the sharded trajectory at all.)
func (env *chaosEnv) refFor(qi, shards int) ([]*core.Snapshot, error) {
	if shards == 0 {
		return env.refs[qi], nil
	}
	key := [2]int{qi, shards}
	if ref, ok := env.shardRefs[key]; ok {
		return ref, nil
	}
	opt := env.opt
	opt.Shards = shards
	ref, err := runAll(env.qs[qi], env.cat, opt)
	if err != nil {
		return nil, fmt.Errorf("building N=%d reference for query %d: %w", shards, qi, err)
	}
	env.shardRefs[key] = ref
	return ref, nil
}

func chaosBase(cfg Config) (*chaosEnv, error) {
	cfg = cfg.WithDefaults()
	// Small fixture: the soak's power comes from schedule count, not data
	// volume. 4 batches × 4 workers gives 16+ injection sites per pass.
	rows := 4096
	env := &chaosEnv{
		cat: foldBenchCatalog(rows, cfg.EngineSeed()),
		opt: core.Options{
			Batches: 4, Trials: 16, Seed: cfg.EngineSeed(),
			Parallelism: 4, ParallelThreshold: 64,
		},
		shardRefs: map[[2]int][]*core.Snapshot{},
	}
	// References run fault-free on the legacy row-at-a-time fold path;
	// scheduled runs use the default (columnar) path. Every bit-identical
	// check in the soak is therefore also a cross-path equivalence check:
	// the vectorized classify/fold pipeline must agree with the row loop
	// exactly, under every fault mix.
	refOpt := env.opt
	refOpt.RowPath = true
	for _, sql := range chaosQueries {
		q, err := plan.Compile(sql, env.cat)
		if err != nil {
			return nil, err
		}
		env.qs = append(env.qs, q)
		ref, err := runAll(q, env.cat, refOpt)
		if err != nil {
			return nil, err
		}
		env.refs = append(env.refs, ref)
	}
	return env, nil
}

// runAll drains a fresh engine and returns every snapshot.
func runAll(q *plan.Query, cat *storage.Catalog, opt core.Options) ([]*core.Snapshot, error) {
	eng, err := core.New(q, cat, opt)
	if err != nil {
		return nil, err
	}
	defer eng.Close()
	var snaps []*core.Snapshot
	for !eng.Done() {
		s, err := eng.Step()
		if err != nil {
			return nil, err
		}
		snaps = append(snaps, s)
	}
	return snaps, nil
}

// snapsEqual demands bit-identical result rows (values, CIs, RSDs).
func snapsEqual(a, b []*core.Snapshot) error {
	if len(a) != len(b) {
		return fmt.Errorf("snapshot count %d vs %d", len(a), len(b))
	}
	for i := range a {
		if !reflect.DeepEqual(a[i].Rows, b[i].Rows) {
			return fmt.Errorf("batch %d rows differ", a[i].Batch)
		}
	}
	return nil
}

// runSchedule executes one seeded schedule and verifies its contract.
func runSchedule(env *chaosEnv, profs []chaosProfile, i int, r *ChaosResult) error {
	prof := profs[i%len(profs)]
	mode := chaosModes[(i/len(profs))%len(chaosModes)]
	qi := (i / (len(profs) * len(chaosModes))) % len(env.qs)
	q := env.qs[qi]
	ref, err := env.refFor(qi, prof.shards)
	if err != nil {
		return err
	}

	ccfg := prof.cfg
	ccfg.Seed = uint64(i)*0x9E3779B97F4A7C15 + 1
	inj := chaos.New(ccfg)
	opt := env.opt
	opt.Chaos = inj
	opt.Shards = prof.shards
	var spans *otrace.Tracer
	if prof.name == "mixed" {
		spans = otrace.NewTracer(0)
		opt.Spans = spans
	}

	r.ModeCounts[mode]++
	r.Profiles[prof.name]++
	defer func() {
		counts := inj.Counts()
		for k := chaos.Kind(1); int(k) < len(counts); k++ {
			r.FaultCounts[k.String()] += counts[k]
		}
	}()

	switch mode {
	case "plain":
		got, err := runAll(q, env.cat, opt)
		if err != nil {
			return fmt.Errorf("schedule %d (%s/%s): %w", i, prof.name, mode, err)
		}
		if err := snapsEqual(ref, got); err != nil {
			return fmt.Errorf("schedule %d (%s/%s): %w", i, prof.name, mode, err)
		}
		r.BitIdentical++

	case "cancel":
		eng, err := core.New(q, env.cat, opt)
		if err != nil {
			return err
		}
		defer eng.Close()
		stop := i % (env.opt.Batches + 1) // cancel after 0..Batches batches
		var got []*core.Snapshot
		for b := 0; b < stop; b++ {
			s, err := eng.Step()
			if err != nil {
				return fmt.Errorf("schedule %d (%s/%s) step %d: %w", i, prof.name, mode, b, err)
			}
			got = append(got, s)
		}
		ctx, cancel := context.WithCancel(context.Background())
		cancel()
		bounded, err := eng.StepContext(ctx)
		if !eng.Done() {
			if !core.IsInterrupted(err) {
				return fmt.Errorf("schedule %d (%s/%s): cancelled step returned %v", i, prof.name, mode, err)
			}
			if bounded == nil || !bounded.Interrupted {
				return fmt.Errorf("schedule %d (%s/%s): bounded answer not marked Interrupted", i, prof.name, mode)
			}
			if stop > 0 && !reflect.DeepEqual(bounded.Rows, got[stop-1].Rows) {
				return fmt.Errorf("schedule %d (%s/%s): bounded answer != last committed snapshot", i, prof.name, mode)
			}
		}
		// Resume to completion; the whole stream must match the reference.
		for !eng.Done() {
			s, err := eng.Step()
			if err != nil {
				return fmt.Errorf("schedule %d (%s/%s) resume: %w", i, prof.name, mode, err)
			}
			got = append(got, s)
		}
		if err := snapsEqual(ref, got); err != nil {
			return fmt.Errorf("schedule %d (%s/%s) post-cancel: %w", i, prof.name, mode, err)
		}
		r.BitIdentical++
		r.CancelResumes++

	case "checkpoint":
		eng, err := core.New(q, env.cat, opt)
		if err != nil {
			return err
		}
		defer eng.Close()
		k := 1 + i%env.opt.Batches // checkpoint after 1..Batches batches
		var got []*core.Snapshot
		for b := 0; b < k; b++ {
			s, err := eng.Step()
			if err != nil {
				return fmt.Errorf("schedule %d (%s/%s) step %d: %w", i, prof.name, mode, b, err)
			}
			got = append(got, s)
		}
		ck1, err := eng.Checkpoint()
		if err != nil {
			return fmt.Errorf("schedule %d (%s/%s) checkpoint: %w", i, prof.name, mode, err)
		}
		res, err := core.Resume(q, env.cat, opt, ck1)
		if err != nil {
			return fmt.Errorf("schedule %d (%s/%s) resume: %w", i, prof.name, mode, err)
		}
		defer res.Close()
		ck2, err := res.Checkpoint()
		if err != nil {
			return fmt.Errorf("schedule %d (%s/%s) re-checkpoint: %w", i, prof.name, mode, err)
		}
		if !bytes.Equal(ck1, ck2) {
			return fmt.Errorf("schedule %d (%s/%s): checkpoint round-trip not byte-identical (%d vs %d bytes)",
				i, prof.name, mode, len(ck1), len(ck2))
		}
		for !res.Done() {
			s, err := res.Step()
			if err != nil {
				return fmt.Errorf("schedule %d (%s/%s) continue: %w", i, prof.name, mode, err)
			}
			got = append(got, s)
		}
		if err := snapsEqual(ref, got); err != nil {
			return fmt.Errorf("schedule %d (%s/%s) post-resume: %w", i, prof.name, mode, err)
		}
		r.BitIdentical++
		r.CheckpointRoundTrips++
	}
	if spans != nil {
		// The fault-riddled run already matched the reference bit-for-bit
		// above; now its timeline must also be structurally sound and
		// export to valid, correctly nested Chrome trace JSON.
		if err := otrace.ValidateNesting(spans.Spans()); err != nil {
			return fmt.Errorf("schedule %d (%s/%s): span nesting under faults: %w", i, prof.name, mode, err)
		}
		var buf bytes.Buffer
		if err := spans.WriteChromeTrace(&buf); err != nil {
			return fmt.Errorf("schedule %d (%s/%s): span export: %w", i, prof.name, mode, err)
		}
		if _, _, err := otrace.ValidateChromeJSON(buf.Bytes()); err != nil {
			return fmt.Errorf("schedule %d (%s/%s): exported trace invalid: %w", i, prof.name, mode, err)
		}
		r.SpanRuns++
	}
	return nil
}

// ChaosSoak runs the given number of seeded fault schedules across the
// full profile rotation (pool and shard faults) and fails on the first
// contract violation: a non-bit-identical answer, a mis-typed error, a
// broken checkpoint round-trip, or leaked goroutines.
func ChaosSoak(cfg Config, schedules int) (*ChaosResult, error) {
	if schedules <= 0 {
		schedules = 1000
	}
	return soak(cfg, schedules, allChaosProfiles)
}

// ShardChaosSoak is the soak restricted to the sharded-topology
// profiles: every schedule runs through the coordinator, so kills,
// replacement incarnations, and checkpoint restores dominate. This is
// the CI gate's target (TestShardChaosGate).
func ShardChaosSoak(cfg Config, schedules int) (*ChaosResult, error) {
	if schedules <= 0 {
		schedules = 60
	}
	return soak(cfg, schedules, shardChaosProfiles)
}

func soak(cfg Config, schedules int, profs []chaosProfile) (*ChaosResult, error) {
	env, err := chaosBase(cfg)
	if err != nil {
		return nil, err
	}
	r := &ChaosResult{
		Schedules:   schedules,
		FaultCounts: map[string]int64{},
		ModeCounts:  map[string]int{},
		Profiles:    map[string]int{},
	}
	r.GoroutinesBefore = testutil.GoroutineBaseline()
	start := time.Now()
	for i := 0; i < schedules; i++ {
		if err := runSchedule(env, profs, i, r); err != nil {
			return r, err
		}
	}
	r.ElapsedMS = ms(time.Since(start))
	// Engine pools close synchronously, but worker goroutines need a
	// moment to observe their closed channels; settle before judging.
	r.GoroutinesAfter = testutil.SettleGoroutines(r.GoroutinesBefore, 5*time.Second)
	if r.GoroutinesAfter > r.GoroutinesBefore {
		return r, fmt.Errorf("goroutine leak: %d before soak, %d after", r.GoroutinesBefore, r.GoroutinesAfter)
	}
	return r, nil
}

// FormatChaos renders a soak summary.
func FormatChaos(r *ChaosResult) string {
	var b strings.Builder
	fmt.Fprintf(&b, "chaos soak: %d schedules in %.0f ms\n", r.Schedules, r.ElapsedMS)
	fmt.Fprintf(&b, "  bit-identical runs:     %d/%d\n", r.BitIdentical, r.Schedules)
	fmt.Fprintf(&b, "  cancel+resume cycles:   %d\n", r.CancelResumes)
	fmt.Fprintf(&b, "  checkpoint round-trips: %d (all byte-identical)\n", r.CheckpointRoundTrips)
	fmt.Fprintf(&b, "  span-traced runs:       %d (exports validated)\n", r.SpanRuns)
	fmt.Fprintf(&b, "  goroutines before/after: %d/%d\n", r.GoroutinesBefore, r.GoroutinesAfter)
	b.WriteString("  faults fired:\n")
	for _, k := range []string{"panic", "straggler", "corrupt", "prefetch-drop", "segseal",
		"shard-kill", "shard-straggler"} {
		fmt.Fprintf(&b, "    %-15s %d\n", k, r.FaultCounts[k])
	}
	b.WriteString("  schedules by profile:")
	for _, p := range allChaosProfiles {
		if n := r.Profiles[p.name]; n > 0 {
			fmt.Fprintf(&b, " %s=%d", p.name, n)
		}
	}
	b.WriteString("\n")
	return b.String()
}
