package bench

import (
	"fmt"
	"time"

	"fluodb/internal/bootstrap"
	"fluodb/internal/core"
	"fluodb/internal/plan"
	"fluodb/internal/storage"
	"fluodb/internal/types"
)

// Sharded-execution benchmark: fold throughput through the coordinator
// at topology widths N∈{1,2,4,8} with per-shard parallelism pinned to
// 1, against the unsharded engine as baseline. Every sharded run is
// also checked bit-identical to the unsharded trajectory: the catalog
// uses integer-valued measures, so every fold — certain sums and
// bootstrap trial sums alike — is exact float arithmetic and the
// merge order cannot perturb a single bit (the same construction as
// core's shard determinism fixtures).

// ShardPoint is one (scenario, N) measurement of the shard sweep.
type ShardPoint struct {
	Scenario     string  `json:"scenario"`
	Shards       int     `json:"shards"` // 0 = unsharded baseline
	Parallelism  int     `json:"parallelism"`
	Rows         int     `json:"rows"`
	NsPerRow     float64 `json:"ns_per_row"`
	RowsPerSec   float64 `json:"rows_per_sec"`
	BitIdentical bool    `json:"bit_identical"` // vs the unsharded run (true for the baseline itself)
}

// shardBenchCatalog is foldBenchCatalog with an integer-valued measure:
// all certain and trial sums stay far below 2^53, so float addition is
// exact and associative, and any shard×worker partition of a batch
// folds to byte-identical statistics.
func shardBenchCatalog(n int, seed uint64) *storage.Catalog {
	cat := storage.NewCatalog()
	t := storage.NewTable("facts", types.NewSchema(
		"a", types.KindString,
		"b", types.KindInt,
		"x", types.KindFloat,
	))
	as := []string{"aa", "bb", "cc", "dd", "ee", "ff", "gg", "hh"}
	rng := bootstrap.NewRNG(seed)
	for i := 0; i < n; i++ {
		_ = t.Append(types.Row{
			types.NewString(as[rng.Intn(len(as))]),
			types.NewInt(int64(rng.Intn(16))),
			types.NewFloat(float64(rng.Intn(1000))),
		})
	}
	cat.Put(t)
	return cat
}

// ShardBench sweeps the coordinator across topology widths and verifies
// each sharded trajectory against the unsharded run.
func ShardBench(cfg Config) ([]ShardPoint, error) {
	cfg = cfg.WithDefaults()
	scenarios := []struct {
		name string
		sql  string
	}{
		{"single-key/sampled-all", `SELECT a, COUNT(x), SUM(x), AVG(x) FROM facts GROUP BY a`},
		{"multi-key/sampled-all", `SELECT a, b, COUNT(x), SUM(x), AVG(x) FROM facts GROUP BY a, b`},
	}
	cat := shardBenchCatalog(cfg.Rows, cfg.EngineSeed())
	var out []ShardPoint
	for _, sc := range scenarios {
		q, err := plan.Compile(sc.sql, cat)
		if err != nil {
			return nil, fmt.Errorf("bench shard %s: %w", sc.name, err)
		}
		base := core.Options{
			Batches: cfg.Batches, Trials: cfg.Trials, Seed: cfg.EngineSeed(),
			BootstrapSampleCap: -1, Parallelism: 1,
			// Low threshold so shard slices still engage the fold path's
			// clamps at bench batch sizes.
			ParallelThreshold: 512,
		}
		ref, err := runAll(q, cat, base)
		if err != nil {
			return nil, fmt.Errorf("bench shard %s baseline: %w", sc.name, err)
		}
		for _, n := range []int{0, 1, 2, 4, 8} {
			opt := base
			opt.Shards = n
			bit := true
			if n > 0 {
				got, err := runAll(q, cat, opt)
				if err != nil {
					return nil, fmt.Errorf("bench shard %s N=%d: %w", sc.name, n, err)
				}
				bit = snapsEqual(ref, got) == nil
			}
			best := time.Duration(0)
			for rep := 0; rep < FoldReps; rep++ {
				q, err := plan.Compile(sc.sql, cat)
				if err != nil {
					return nil, err
				}
				eng, err := core.New(q, cat, opt)
				if err != nil {
					return nil, err
				}
				t0 := time.Now()
				_, err = eng.Run(nil)
				d := time.Since(t0)
				eng.Close()
				if err != nil {
					return nil, err
				}
				if best == 0 || d < best {
					best = d
				}
			}
			ns := float64(best.Nanoseconds()) / float64(cfg.Rows)
			out = append(out, ShardPoint{
				Scenario: sc.name, Shards: n, Parallelism: 1,
				Rows: cfg.Rows, NsPerRow: ns, RowsPerSec: 1e9 / ns,
				BitIdentical: bit,
			})
		}
	}
	return out, nil
}

// FormatShard renders the shard sweep as an aligned table with each
// topology's cost relative to the unsharded baseline.
func FormatShard(points []ShardPoint) string {
	s := "Sharded execution (per-shard P=1, best of reps, vs unsharded baseline)\n"
	s += fmt.Sprintf("%-26s %7s %12s %14s %10s %14s\n",
		"scenario", "shards", "ns/row", "rows/sec", "vs base", "bit-identical")
	base := map[string]float64{}
	for _, p := range points {
		if p.Shards == 0 {
			base[p.Scenario] = p.NsPerRow
		}
	}
	for _, p := range points {
		rel, bit := "-", "yes"
		if p.Shards > 0 {
			if b, ok := base[p.Scenario]; ok && p.NsPerRow > 0 {
				rel = fmt.Sprintf("%+.1f%%", 100*(p.NsPerRow-b)/b)
			}
			if !p.BitIdentical {
				bit = "NO"
			}
		}
		shards := "none"
		if p.Shards > 0 {
			shards = fmt.Sprintf("%d", p.Shards)
		}
		s += fmt.Sprintf("%-26s %7s %12.1f %14.0f %10s %14s\n",
			p.Scenario, shards, p.NsPerRow, p.RowsPerSec, rel, bit)
	}
	return s
}
