package exec

import (
	"fmt"
	"math"
	"testing"

	"fluodb/internal/plan"
	"fluodb/internal/storage"
	"fluodb/internal/types"
)

// testDB builds a small deterministic catalog:
//
//	sessions: 6 rows with buffer/play times (AVG(buffer_time) = 35)
//	lineitem: 8 rows over 2 parts
//	parts:    2 rows
func testDB(t *testing.T) *storage.Catalog {
	t.Helper()
	cat := storage.NewCatalog()

	s := storage.NewTable("sessions", types.NewSchema(
		"session_id", types.KindInt,
		"buffer_time", types.KindFloat,
		"play_time", types.KindFloat,
		"country", types.KindString,
	))
	rows := []struct {
		id     int64
		buf, p float64
		c      string
	}{
		{1, 10, 100, "US"},
		{2, 20, 200, "US"},
		{3, 30, 300, "DE"},
		{4, 40, 400, "DE"},
		{5, 50, 500, "FR"},
		{6, 60, 600, "FR"},
	}
	for _, r := range rows {
		_ = s.Append(types.Row{
			types.NewInt(r.id), types.NewFloat(r.buf), types.NewFloat(r.p), types.NewString(r.c)})
	}
	cat.Put(s)

	li := storage.NewTable("lineitem", types.NewSchema(
		"orderkey", types.KindInt,
		"partkey", types.KindInt,
		"quantity", types.KindFloat,
		"extendedprice", types.KindFloat,
	))
	liRows := []struct {
		ok, pk int64
		q, ep  float64
	}{
		{100, 1, 1, 10},
		{100, 1, 2, 20},
		{101, 1, 3, 30},
		{101, 2, 10, 100},
		{102, 2, 20, 200},
		{102, 2, 30, 300},
		{103, 2, 40, 400},
		{103, 1, 6, 60},
	}
	for _, r := range liRows {
		_ = li.Append(types.Row{
			types.NewInt(r.ok), types.NewInt(r.pk), types.NewFloat(r.q), types.NewFloat(r.ep)})
	}
	cat.Put(li)

	p := storage.NewTable("parts", types.NewSchema(
		"partkey", types.KindInt, "brand", types.KindString))
	_ = p.Append(types.Row{types.NewInt(1), types.NewString("B1")})
	_ = p.Append(types.Row{types.NewInt(2), types.NewString("B2")})
	cat.Put(p)

	return cat
}

func run(t *testing.T, cat *storage.Catalog, sql string) *Result {
	t.Helper()
	q, err := plan.Compile(sql, cat)
	if err != nil {
		t.Fatalf("Compile(%s): %v", sql, err)
	}
	res, err := Run(q, cat)
	if err != nil {
		t.Fatalf("Run(%s): %v", sql, err)
	}
	return res
}

func wantFloat(t *testing.T, v types.Value, want float64) {
	t.Helper()
	got, ok := v.AsFloat()
	if !ok || math.Abs(got-want) > 1e-9 {
		t.Fatalf("value = %v, want %v", v, want)
	}
}

func TestGlobalAggregates(t *testing.T) {
	res := run(t, testDB(t), "SELECT COUNT(*), AVG(buffer_time), SUM(play_time), MIN(buffer_time), MAX(buffer_time) FROM sessions")
	if len(res.Rows) != 1 {
		t.Fatalf("rows = %d", len(res.Rows))
	}
	r := res.Rows[0]
	wantFloat(t, r[0], 6)
	wantFloat(t, r[1], 35)
	wantFloat(t, r[2], 2100)
	wantFloat(t, r[3], 10)
	wantFloat(t, r[4], 60)
}

func TestWhereFilter(t *testing.T) {
	res := run(t, testDB(t), "SELECT COUNT(*) FROM sessions WHERE country = 'US'")
	wantFloat(t, res.Rows[0][0], 2)
}

func TestGroupByWithHavingAndOrder(t *testing.T) {
	res := run(t, testDB(t), `SELECT country, COUNT(*) AS c, AVG(play_time) AS p
		FROM sessions GROUP BY country HAVING COUNT(*) > 1 ORDER BY p DESC`)
	if len(res.Rows) != 3 {
		t.Fatalf("rows = %d", len(res.Rows))
	}
	if res.Rows[0][0].Str() != "FR" || res.Rows[2][0].Str() != "US" {
		t.Errorf("order: %v", res.Rows)
	}
}

func TestLimit(t *testing.T) {
	res := run(t, testDB(t), "SELECT country, COUNT(*) FROM sessions GROUP BY country ORDER BY country LIMIT 2")
	if len(res.Rows) != 2 || res.Rows[0][0].Str() != "DE" {
		t.Fatalf("rows = %v", res.Rows)
	}
}

func TestProjectionQuery(t *testing.T) {
	res := run(t, testDB(t), "SELECT session_id, play_time * 2 FROM sessions WHERE buffer_time >= 50 ORDER BY 1")
	if len(res.Rows) != 2 {
		t.Fatalf("rows = %d", len(res.Rows))
	}
	wantFloat(t, res.Rows[0][1], 1000)
}

func TestSBIExact(t *testing.T) {
	// AVG(buffer_time) = 35 → rows with buffer_time > 35: ids 4,5,6 →
	// AVG(play_time) = (400+500+600)/3 = 500.
	res := run(t, testDB(t), `SELECT AVG(play_time) FROM sessions
		WHERE buffer_time > (SELECT AVG(buffer_time) FROM sessions)`)
	wantFloat(t, res.Rows[0][0], 500)
}

func TestCorrelatedQ17Exact(t *testing.T) {
	// per-part AVG(quantity): part1 = (1+2+3+6)/4 = 3, part2 = 25.
	// threshold 0.2*avg: part1 = 0.6, part2 = 5.
	// rows with quantity < threshold: none for part1 (min q=1 > 0.6)...
	// part1 rows q=1,2,3,6 → none < 0.6; part2 rows q=10..40 → none < 5.
	res := run(t, testDB(t), `SELECT SUM(extendedprice) FROM lineitem l
		WHERE quantity < (SELECT 0.2 * AVG(quantity) FROM lineitem i WHERE i.partkey = l.partkey)`)
	if !res.Rows[0][0].IsNull() {
		t.Fatalf("sum over empty = %v, want NULL", res.Rows[0][0])
	}
	// with a 2x threshold: part1 thr=6 → q in {1,2,3} (price 10+20+30);
	// part2 thr=50 → all 4 rows qualify (100+200+300+400) ... q<50 all.
	res2 := run(t, testDB(t), `SELECT SUM(extendedprice) FROM lineitem l
		WHERE quantity < (SELECT 2.0 * AVG(quantity) FROM lineitem i WHERE i.partkey = l.partkey)`)
	wantFloat(t, res2.Rows[0][0], 10+20+30+100+200+300+400)
}

func TestInSubqueryQ18Style(t *testing.T) {
	// per-order SUM(quantity): 100→3, 101→13, 102→50, 103→46.
	// orders with sum > 40: 102, 103.
	res := run(t, testDB(t), `SELECT orderkey, SUM(quantity) FROM lineitem
		WHERE orderkey IN (SELECT orderkey FROM lineitem GROUP BY orderkey HAVING SUM(quantity) > 40)
		GROUP BY orderkey ORDER BY orderkey`)
	if len(res.Rows) != 2 {
		t.Fatalf("rows = %v", res.Rows)
	}
	if res.Rows[0][0].Int() != 102 || res.Rows[1][0].Int() != 103 {
		t.Errorf("keys = %v", res.Rows)
	}
	wantFloat(t, res.Rows[0][1], 50)
	wantFloat(t, res.Rows[1][1], 46)
}

func TestNotInSubquery(t *testing.T) {
	res := run(t, testDB(t), `SELECT COUNT(*) FROM lineitem
		WHERE orderkey NOT IN (SELECT orderkey FROM lineitem GROUP BY orderkey HAVING SUM(quantity) > 40)`)
	// orders 100 (2 rows) and 101 (2 rows)
	wantFloat(t, res.Rows[0][0], 4)
}

func TestUncertainHavingQ11Style(t *testing.T) {
	// total SUM(extendedprice) = 1120; per-part: p1 = 120, p2 = 1000.
	// threshold 0.5 * total = 560 → only part 2 passes.
	res := run(t, testDB(t), `SELECT partkey, SUM(extendedprice) FROM lineitem GROUP BY partkey
		HAVING SUM(extendedprice) > (SELECT SUM(extendedprice) * 0.5 FROM lineitem)`)
	if len(res.Rows) != 1 || res.Rows[0][0].Int() != 2 {
		t.Fatalf("rows = %v", res.Rows)
	}
	wantFloat(t, res.Rows[0][1], 1000)
}

func TestJoinAggregate(t *testing.T) {
	res := run(t, testDB(t), `SELECT brand, SUM(quantity) FROM lineitem l
		JOIN parts p ON l.partkey = p.partkey GROUP BY brand ORDER BY brand`)
	if len(res.Rows) != 2 {
		t.Fatalf("rows = %v", res.Rows)
	}
	wantFloat(t, res.Rows[0][1], 12)  // B1: 1+2+3+6
	wantFloat(t, res.Rows[1][1], 100) // B2: 10+20+30+40
}

func TestLeftJoinNullExtension(t *testing.T) {
	cat := testDB(t)
	// add a lineitem row with a partkey that has no part
	li, _ := cat.Get("lineitem")
	_ = li.Append(types.Row{types.NewInt(999), types.NewInt(77), types.NewFloat(5), types.NewFloat(50)})
	res := run(t, cat, `SELECT COUNT(*) FROM lineitem l LEFT JOIN parts p ON l.partkey = p.partkey WHERE brand IS NULL`)
	wantFloat(t, res.Rows[0][0], 1)
	// inner join drops it
	res2 := run(t, cat, `SELECT COUNT(*) FROM lineitem l JOIN parts p ON l.partkey = p.partkey`)
	wantFloat(t, res2.Rows[0][0], 8)
}

func TestNestedTwoLevelScalar(t *testing.T) {
	// innermost: AVG(play_time) = 350 → middle: AVG(buffer_time) over
	// play_time > 350 → rows 4,5,6 → (40+50+60)/3 = 50 →
	// outer: AVG(play_time) where buffer_time > 50 → row 6 → 600.
	res := run(t, testDB(t), `SELECT AVG(play_time) FROM sessions
		WHERE buffer_time > (SELECT AVG(buffer_time) FROM sessions
			WHERE play_time > (SELECT AVG(play_time) FROM sessions))`)
	wantFloat(t, res.Rows[0][0], 600)
}

func TestEmptyInputGlobalAggregate(t *testing.T) {
	cat := testDB(t)
	res := run(t, cat, "SELECT COUNT(*), AVG(play_time) FROM sessions WHERE buffer_time > 1000")
	wantFloat(t, res.Rows[0][0], 0)
	if !res.Rows[0][1].IsNull() {
		t.Errorf("AVG over empty = %v", res.Rows[0][1])
	}
}

func TestGroupByExpression(t *testing.T) {
	res := run(t, testDB(t), `SELECT FLOOR(buffer_time / 25), COUNT(*) FROM sessions GROUP BY 1 ORDER BY 1`)
	// buckets: 10,20 → 0; 30,40 → 1; 50,60 → 2
	if len(res.Rows) != 3 {
		t.Fatalf("rows = %v", res.Rows)
	}
	for i, want := range []int64{0, 1, 2} {
		if res.Rows[i][0].Int() != want {
			t.Errorf("bucket %d = %v", i, res.Rows[i][0])
		}
		wantFloat(t, res.Rows[i][1], 2)
	}
}

func TestCaseInSelect(t *testing.T) {
	res := run(t, testDB(t), `SELECT SUM(CASE WHEN country = 'US' THEN 1 ELSE 0 END) FROM sessions`)
	wantFloat(t, res.Rows[0][0], 2)
}

func TestStddevAndQuantiles(t *testing.T) {
	res := run(t, testDB(t), `SELECT STDDEV(buffer_time), MEDIAN(buffer_time), QUANTILE(buffer_time, 0.0) FROM sessions`)
	// stddev of 10..60 step 10: sqrt(350/... ) sample: mean 35, ss = 1750, var = 350, sd ≈ 18.708
	wantFloat(t, res.Rows[0][0], math.Sqrt(350))
	wantFloat(t, res.Rows[0][1], 35) // t-digest median of 10..60 interpolates to 35
	wantFloat(t, res.Rows[0][2], 10)
}

func TestScaleAffectsExtensiveAggsOnly(t *testing.T) {
	cat := testDB(t)
	q, err := plan.Compile("SELECT COUNT(*), SUM(play_time), AVG(play_time) FROM sessions", cat)
	if err != nil {
		t.Fatal(err)
	}
	env := NewEnv(q)
	rows, err := EvalRootBlock(q.Root, cat, env, 3) // pretend only 1/3 of data seen
	if err != nil {
		t.Fatal(err)
	}
	wantFloat(t, rows[0][0], 18)   // scaled count
	wantFloat(t, rows[0][1], 6300) // scaled sum
	wantFloat(t, rows[0][2], 350)  // avg invariant
}

func TestCountDistinctExact(t *testing.T) {
	res := run(t, testDB(t), "SELECT COUNT(DISTINCT country) FROM sessions")
	wantFloat(t, res.Rows[0][0], 3)
}

func TestExistsRewriteRuns(t *testing.T) {
	res := run(t, testDB(t), `SELECT COUNT(*) FROM sessions WHERE EXISTS (SELECT 1 FROM parts WHERE brand = 'B1')`)
	wantFloat(t, res.Rows[0][0], 6)
	res2 := run(t, testDB(t), `SELECT COUNT(*) FROM sessions WHERE EXISTS (SELECT 1 FROM parts WHERE brand = 'NOPE')`)
	wantFloat(t, res2.Rows[0][0], 0)
}

func TestRunUnknownTableInDim(t *testing.T) {
	cat := testDB(t)
	q, err := plan.Compile(`SELECT COUNT(*) FROM lineitem l JOIN parts p ON l.partkey = p.partkey`, cat)
	if err != nil {
		t.Fatal(err)
	}
	cat.Drop("parts")
	if _, err := Run(q, cat); err == nil {
		t.Error("dropped dimension table should error at run time")
	}
}

func TestSelectDistinctProjection(t *testing.T) {
	res := run(t, testDB(t), "SELECT DISTINCT country FROM sessions ORDER BY country")
	if len(res.Rows) != 3 {
		t.Fatalf("rows = %v", res.Rows)
	}
	if res.Rows[0][0].Str() != "DE" || res.Rows[2][0].Str() != "US" {
		t.Errorf("distinct values = %v", res.Rows)
	}
	// multi-column distinct
	// combos: (US,f) (US,f) (DE,f) (DE,t) (FR,t) (FR,t) → 4 distinct
	res2 := run(t, testDB(t), "SELECT DISTINCT country, session_id > 3 FROM sessions")
	if len(res2.Rows) != 4 {
		t.Fatalf("multi-col distinct rows = %v", res2.Rows)
	}
}

func TestScalarSubqueryInSelectList(t *testing.T) {
	// params may appear in the select list (applied post-aggregation)
	res := run(t, testDB(t), `SELECT AVG(play_time) - (SELECT AVG(buffer_time) FROM sessions) FROM sessions`)
	wantFloat(t, res.Rows[0][0], 350-35)
}

func TestSubqueryInHavingOnly(t *testing.T) {
	res := run(t, testDB(t), `SELECT country, AVG(play_time) FROM sessions GROUP BY country
		HAVING AVG(play_time) > (SELECT AVG(play_time) FROM sessions) ORDER BY country`)
	// global avg = 350; per-country: US 150, DE 350, FR 550 → only FR
	if len(res.Rows) != 1 || res.Rows[0][0].Str() != "FR" {
		t.Fatalf("rows = %v", res.Rows)
	}
}

func TestLimitOffset(t *testing.T) {
	res := run(t, testDB(t), "SELECT session_id FROM sessions ORDER BY session_id LIMIT 2 OFFSET 3")
	if len(res.Rows) != 2 || res.Rows[0][0].Int() != 4 || res.Rows[1][0].Int() != 5 {
		t.Fatalf("rows = %v", res.Rows)
	}
	// offset beyond the result set
	res2 := run(t, testDB(t), "SELECT session_id FROM sessions LIMIT 5 OFFSET 100")
	if len(res2.Rows) != 0 {
		t.Fatalf("rows = %v", res2.Rows)
	}
	// grouped query with offset
	res3 := run(t, testDB(t), "SELECT country, COUNT(*) FROM sessions GROUP BY country ORDER BY country LIMIT 10 OFFSET 1")
	if len(res3.Rows) != 2 || res3.Rows[0][0].Str() != "FR" {
		t.Fatalf("rows = %v", res3.Rows)
	}
}

func TestJoinOnComputedKeys(t *testing.T) {
	cat := testDB(t)
	// buckets table keyed by FLOOR(quantity / 10)
	b := storage.NewTable("buckets", types.NewSchema(
		"bucket", types.KindInt, "label", types.KindString))
	for i := int64(0); i <= 4; i++ {
		_ = b.Append(types.Row{types.NewInt(i), types.NewString(fmt.Sprintf("B%d", i))})
	}
	cat.Put(b)
	res := run(t, cat, `SELECT label, COUNT(*) FROM lineitem l
		JOIN buckets bk ON FLOOR(l.quantity / 10) = bk.bucket
		GROUP BY label ORDER BY label`)
	// quantities: 1,2,3,10,20,30,40,6 → buckets 0(×4),1,2,3,4
	if len(res.Rows) != 5 {
		t.Fatalf("rows = %v", res.Rows)
	}
	wantFloat(t, res.Rows[0][1], 4) // B0
}

func TestDuplicateDimKeysExpandRows(t *testing.T) {
	cat := testDB(t)
	// a dim table with duplicate keys produces one output row per match
	d := storage.NewTable("tags", types.NewSchema(
		"partkey", types.KindInt, "tag", types.KindString))
	_ = d.Append(types.Row{types.NewInt(1), types.NewString("x")})
	_ = d.Append(types.Row{types.NewInt(1), types.NewString("y")})
	cat.Put(d)
	res := run(t, cat, `SELECT COUNT(*) FROM lineitem l JOIN tags t ON l.partkey = t.partkey`)
	// part 1 has 4 lineitem rows × 2 tags = 8
	wantFloat(t, res.Rows[0][0], 8)
}
