// Package exec implements FluoDB's batch execution engine: it evaluates a
// compiled block DAG over full tables, exactly — the "traditional query
// engine" baseline of the paper's §5 (a SparkSQL-style batched engine),
// and the recompute substrate used by the classical-delta-maintenance
// baseline and by G-OLA's variation-range failure recovery.
package exec

import (
	"fmt"
	"sort"

	"fluodb/internal/agg"
	"fluodb/internal/expr"
	"fluodb/internal/plan"
	"fluodb/internal/storage"
	"fluodb/internal/types"
)

// Env carries the parameter bindings produced by already-evaluated
// blocks.
type Env struct {
	Scalars []types.Value
	Groups  []func(string) (types.Value, bool)
	Sets    []expr.SetLookup
}

// NewEnv allocates binding slots for a query.
func NewEnv(q *plan.Query) *Env {
	return &Env{
		Scalars: make([]types.Value, len(q.ScalarBlocks)),
		Groups:  make([]func(string) (types.Value, bool), len(q.GroupBlocks)),
		Sets:    make([]expr.SetLookup, len(q.SetBlocks)),
	}
}

// Ctx builds an expression context for a row under this environment.
func (e *Env) Ctx(row types.Row) *expr.Ctx {
	return &expr.Ctx{Row: row, Scalars: e.Scalars, Groups: e.Groups, SetsFns: e.Sets}
}

// Result is a materialized query result.
type Result struct {
	Schema types.Schema
	Rows   []types.Row
}

// Run evaluates the whole query over the full tables in the catalog.
func Run(q *plan.Query, cat *storage.Catalog) (*Result, error) {
	env := NewEnv(q)
	for _, b := range q.Blocks {
		if b == q.Root {
			continue
		}
		if err := EvalParamBlock(b, cat, env, 1); err != nil {
			return nil, err
		}
	}
	rows, err := EvalRootBlock(q.Root, cat, env, 1)
	if err != nil {
		return nil, err
	}
	return &Result{Schema: q.Root.OutSchema(), Rows: rows}, nil
}

// EvalParamBlock evaluates a non-root block over its full fact table and
// installs its result into the environment. scale is the extensive-
// aggregate multiplicity (1 for batch execution, k/i when evaluating a
// sample prefix as in §2.2).
func EvalParamBlock(b *plan.Block, cat *storage.Catalog, env *Env, scale float64) error {
	facts, err := factRows(b, cat)
	if err != nil {
		return err
	}
	return EvalParamBlockRows(b, facts, cat, env, scale)
}

// EvalParamBlockRows is EvalParamBlock over an explicit row set (used by
// the delta-maintenance baselines that evaluate growing prefixes).
func EvalParamBlockRows(b *plan.Block, facts []types.Row, cat *storage.Catalog, env *Env, scale float64) error {
	tab, err := BuildAggTable(b, facts, cat, env)
	if err != nil {
		return err
	}
	InstallBinding(b, tab, env, scale)
	return nil
}

// InstallBinding converts a block's aggregate table into its parameter
// binding and installs it into env.
func InstallBinding(b *plan.Block, tab *AggTable, env *Env, scale float64) {
	switch b.Kind {
	case plan.ScalarBlock:
		env.Scalars[b.ParamIdx] = scalarValue(b, tab, env, scale)
	case plan.GroupScalarBlock:
		m := GroupValues(b, tab, env, scale)
		env.Groups[b.ParamIdx] = func(key string) (types.Value, bool) {
			v, ok := m[key]
			return v, ok
		}
	case plan.SetBlock:
		m := SetMembers(b, tab, env, scale)
		env.Sets[b.ParamIdx] = func(key string) bool { return m[key] }
	}
}

// scalarValue finalizes a scalar block (single global group).
func scalarValue(b *plan.Block, tab *AggTable, env *Env, scale float64) types.Value {
	if tab.Len() == 0 {
		// Aggregates over empty input: finalize an empty state set so
		// COUNT yields 0 and the rest yield NULL.
		entry := tab.emptyEntry(b)
		post := postRow(b, entry, scale)
		ctx := env.Ctx(post)
		return b.Select[0].Eval(ctx)
	}
	post := postRow(b, tab.entries[0], scale)
	return b.Select[0].Eval(env.Ctx(post))
}

// groupCols is the identity column projection of a block's group keys.
func groupCols(b *plan.Block) []int {
	cols := make([]int, len(b.GroupBy))
	for i := range cols {
		cols[i] = i
	}
	return cols
}

// GroupValues finalizes a group-scalar block into key → value.
func GroupValues(b *plan.Block, tab *AggTable, env *Env, scale float64) map[string]types.Value {
	cols := groupCols(b)
	out := make(map[string]types.Value, tab.Len())
	for _, e := range tab.Entries() {
		post := postRow(b, e, scale)
		out[e.Key.KeyString(cols)] = b.Select[0].Eval(env.Ctx(post))
	}
	return out
}

// SetMembers finalizes a set block into the set of member keys
// (applying HAVING).
func SetMembers(b *plan.Block, tab *AggTable, env *Env, scale float64) map[string]bool {
	out := make(map[string]bool, tab.Len())
	for _, entry := range tab.Entries() {
		post := postRow(b, entry, scale)
		if b.Having != nil && !b.Having.Eval(env.Ctx(post)).Truthy() {
			continue
		}
		// Key of the SetParam lookup: the single selected group key.
		keyVal := b.Select[0].Eval(env.Ctx(post))
		out[types.KeyString1(keyVal)] = true
	}
	return out
}

// EvalRootBlock evaluates the root block over its full fact table.
func EvalRootBlock(b *plan.Block, cat *storage.Catalog, env *Env, scale float64) ([]types.Row, error) {
	facts, err := factRows(b, cat)
	if err != nil {
		return nil, err
	}
	return EvalRootBlockRows(b, facts, cat, env, scale)
}

// EvalRootBlockRows evaluates the root block over explicit fact rows.
func EvalRootBlockRows(b *plan.Block, facts []types.Row, cat *storage.Catalog, env *Env, scale float64) ([]types.Row, error) {
	if !b.Aggregating {
		return evalProjection(b, facts, cat, env)
	}
	tab, err := BuildAggTable(b, facts, cat, env)
	if err != nil {
		return nil, err
	}
	return FinalizeRoot(b, tab, env, scale), nil
}

// FinalizeRoot turns an aggregate table into the root's output rows
// (HAVING, projection, ORDER BY, LIMIT).
func FinalizeRoot(b *plan.Block, tab *AggTable, env *Env, scale float64) []types.Row {
	var out []types.Row
	if len(b.GroupBy) == 0 && tab.Len() == 0 {
		// Global aggregate over empty input still yields one row.
		entry := tab.emptyEntry(b)
		post := postRow(b, entry, scale)
		if b.Having == nil || b.Having.Eval(env.Ctx(post)).Truthy() {
			out = append(out, projectRow(b, post, env))
		}
		return out
	}
	for _, e := range tab.Entries() {
		post := postRow(b, e, scale)
		if b.Having != nil && !b.Having.Eval(env.Ctx(post)).Truthy() {
			continue
		}
		out = append(out, projectRow(b, post, env))
	}
	out = sortAndLimit(b, out)
	return applyLimit(b, out)
}

func projectRow(b *plan.Block, post types.Row, env *Env) types.Row {
	ctx := env.Ctx(post)
	row := make(types.Row, len(b.Select))
	for i, e := range b.Select {
		row[i] = e.Eval(ctx)
	}
	return row
}

func sortAndLimit(b *plan.Block, rows []types.Row) []types.Row {
	if len(b.OrderBy) > 0 {
		sort.SliceStable(rows, func(i, j int) bool {
			for _, o := range b.OrderBy {
				c := types.Compare(rows[i][o.Col], rows[j][o.Col])
				if c != 0 {
					if o.Desc {
						return c > 0
					}
					return c < 0
				}
			}
			return false
		})
	}
	return rows
}

// applyLimit applies the block's OFFSET and LIMIT.
func applyLimit(b *plan.Block, rows []types.Row) []types.Row {
	if b.Offset > 0 {
		if b.Offset >= len(rows) {
			return nil
		}
		rows = rows[b.Offset:]
	}
	if b.Limit >= 0 && len(rows) > b.Limit {
		return rows[:b.Limit]
	}
	return rows
}

func evalProjection(b *plan.Block, facts []types.Row, cat *storage.Catalog, env *Env) ([]types.Row, error) {
	joiner, err := NewJoiner(b, cat)
	if err != nil {
		return nil, err
	}
	var out []types.Row
	var seen map[string]bool
	var allCols []int
	if b.Distinct {
		seen = map[string]bool{}
		allCols = make([]int, len(b.Select))
		for i := range allCols {
			allCols[i] = i
		}
	}
	for _, f := range facts {
		rows := joiner.Join(f)
		for _, row := range rows {
			ctx := env.Ctx(row)
			if b.Where != nil && !b.Where.Eval(ctx).Truthy() {
				continue
			}
			proj := projectRow(b, row, env)
			if b.Distinct {
				key := proj.KeyString(allCols)
				if seen[key] {
					continue
				}
				seen[key] = true
			}
			out = append(out, proj)
		}
	}
	out = sortAndLimit(b, out)
	out = applyLimit(b, out)
	return out, nil
}

// factRows fetches the block's fact table rows.
func factRows(b *plan.Block, cat *storage.Catalog) ([]types.Row, error) {
	t, ok := cat.Get(b.Input.Fact)
	if !ok {
		return nil, fmt.Errorf("exec: unknown table %q", b.Input.Fact)
	}
	return t.Rows(), nil
}

// Joiner joins a fact row against the block's dimension hash tables.
type Joiner struct {
	dims   []*dimTable
	hasDim bool
	// one is a reusable single-row result for the no-dimension fast
	// path; valid until the next Join call (callers consume the result
	// before joining the next tuple).
	one [1]types.Row
}

type dimTable struct {
	spec plan.DimJoin
	m    map[string][]types.Row
}

// NewJoiner builds the dimension hash tables for a block (G-OLA reads
// dimension tables in entirety once; the fact table streams).
func NewJoiner(b *plan.Block, cat *storage.Catalog) (*Joiner, error) {
	j := &Joiner{}
	for _, d := range b.Dims {
		t, ok := cat.Get(d.Table)
		if !ok {
			return nil, fmt.Errorf("exec: unknown dimension table %q", d.Table)
		}
		dt := &dimTable{spec: d, m: make(map[string][]types.Row, t.NumRows())}
		for _, row := range t.Rows() {
			k := d.RightKey.Eval(&expr.Ctx{Row: row})
			if k.IsNull() {
				continue
			}
			key := types.KeyString1(k)
			dt.m[key] = append(dt.m[key], row)
		}
		j.dims = append(j.dims, dt)
		j.hasDim = true
	}
	return j, nil
}

// Join expands one fact row into joined rows (empty when an inner join
// misses). The result is only valid until the next Join call.
func (j *Joiner) Join(fact types.Row) []types.Row {
	if !j.hasDim {
		j.one[0] = fact
		return j.one[:]
	}
	acc := []types.Row{fact}
	for _, dt := range j.dims {
		var next []types.Row
		width := len(dt.spec.Schema)
		for _, row := range acc {
			k := dt.spec.LeftKey.Eval(&expr.Ctx{Row: row})
			var matches []types.Row
			if !k.IsNull() {
				matches = dt.m[types.KeyString1(k)]
			}
			if len(matches) == 0 {
				if dt.spec.Left {
					ext := make(types.Row, len(row)+width)
					copy(ext, row)
					for i := 0; i < width; i++ {
						ext[len(row)+i] = types.Null
					}
					next = append(next, ext)
				}
				continue
			}
			for _, m := range matches {
				ext := make(types.Row, 0, len(row)+width)
				ext = append(ext, row...)
				ext = append(ext, m...)
				next = append(next, ext)
			}
		}
		acc = next
	}
	return acc
}

// AggTable is a block's grouped aggregation state: an open-addressing
// hash table keyed by the group-by row itself (types.Row.HashKey with
// types.KeyEqual verification), preserving insertion order for
// deterministic output. Group lookup never materializes a key string.
type AggTable struct {
	entries []*GroupEntry
	hashes  []uint64 // HashKey per entry, parallel to entries
	slots   []int32  // 1-based indexes into entries; 0 = empty
	mask    uint64
	// scratch buffers for per-tuple key evaluation.
	keyRow types.Row
	cols   []int
}

// GroupEntry is one group's key values and aggregate states.
type GroupEntry struct {
	Key    types.Row
	States []agg.State
}

// NewAggTable creates an empty table.
func NewAggTable() *AggTable {
	return &AggTable{}
}

// Len returns the number of live groups.
func (t *AggTable) Len() int { return len(t.entries) }

// Entries returns the group entries in insertion order (read-only).
func (t *AggTable) Entries() []*GroupEntry { return t.entries }

// emptyEntry builds a zero-group entry (for global aggregates over empty
// input).
func (t *AggTable) emptyEntry(b *plan.Block) *GroupEntry {
	entry := &GroupEntry{States: make([]agg.State, len(b.Aggs))}
	for i := range b.Aggs {
		s, err := b.Aggs[i].NewState()
		if err != nil {
			panic(fmt.Sprintf("exec: agg state: %v", err)) // validated at plan time
		}
		entry.States[i] = s
	}
	return entry
}

// Entry returns (creating if needed) the group entry for the given input
// row. The hit path is allocation-free: key evaluation into a reused
// scratch row, hash, probe.
func (t *AggTable) Entry(b *plan.Block, ctx *expr.Ctx) *GroupEntry {
	if t.cols == nil && len(b.GroupBy) > 0 {
		t.keyRow = make(types.Row, len(b.GroupBy))
		t.cols = make([]int, len(b.GroupBy))
		for i := range t.cols {
			t.cols[i] = i
		}
	}
	for i, g := range b.GroupBy {
		t.keyRow[i] = g.Eval(ctx)
	}
	h := t.keyRow.HashKey(t.cols)
	if t.slots != nil {
		i := h & t.mask
		for {
			s := t.slots[i]
			if s == 0 {
				break
			}
			if t.hashes[s-1] == h && types.KeyEqual(t.entries[s-1].Key, t.keyRow, t.cols) {
				return t.entries[s-1]
			}
			i = (i + 1) & t.mask
		}
	}
	e := t.emptyEntry(b)
	e.Key = t.keyRow.Clone()
	t.insert(e, h)
	return e
}

// insert links a new entry into the probe table (the caller has verified
// the key is absent).
func (t *AggTable) insert(e *GroupEntry, hash uint64) {
	if (len(t.entries)+1)*8 > len(t.slots)*7 {
		t.grow()
	}
	t.entries = append(t.entries, e)
	t.hashes = append(t.hashes, hash)
	idx := int32(len(t.entries)) // 1-based
	i := hash & t.mask
	for t.slots[i] != 0 {
		i = (i + 1) & t.mask
	}
	t.slots[i] = idx
}

func (t *AggTable) grow() {
	n := len(t.slots) * 2
	if n < 16 {
		n = 16
	}
	t.slots = make([]int32, n)
	t.mask = uint64(n - 1)
	for i, h := range t.hashes {
		j := h & t.mask
		for t.slots[j] != 0 {
			j = (j + 1) & t.mask
		}
		t.slots[j] = int32(i + 1)
	}
}

// Fold adds one input row into the table with the given weight.
func (t *AggTable) Fold(b *plan.Block, ctx *expr.Ctx, w float64) {
	e := t.Entry(b, ctx)
	for i := range b.Aggs {
		e.States[i].Add(b.Aggs[i].Arg.Eval(ctx), w)
	}
}

// BuildAggTable streams the fact rows through join + WHERE + GROUP BY.
func BuildAggTable(b *plan.Block, facts []types.Row, cat *storage.Catalog, env *Env) (*AggTable, error) {
	joiner, err := NewJoiner(b, cat)
	if err != nil {
		return nil, err
	}
	tab := NewAggTable()
	for _, f := range facts {
		for _, row := range joiner.Join(f) {
			ctx := env.Ctx(row)
			if b.Where != nil && !b.Where.Eval(ctx).Truthy() {
				continue
			}
			tab.Fold(b, ctx, 1)
		}
	}
	return tab, nil
}

// postRow lays out [group keys..., finalized aggregates...].
func postRow(b *plan.Block, e *GroupEntry, scale float64) types.Row {
	row := make(types.Row, 0, b.PostAggWidth())
	row = append(row, e.Key...)
	for _, s := range e.States {
		row = append(row, s.Result(scale))
	}
	return row
}

// PostRow exposes postRow for the online engine.
func PostRow(b *plan.Block, e *GroupEntry, scale float64) types.Row { return postRow(b, e, scale) }

// PostRowInto is PostRow into a reusable buffer (may be nil); it returns
// the filled buffer. Hot loops that evaluate an expression immediately
// and discard the row use it to avoid per-group allocation.
func PostRowInto(b *plan.Block, e *GroupEntry, scale float64, buf types.Row) types.Row {
	buf = buf[:0]
	buf = append(buf, e.Key...)
	for _, s := range e.States {
		buf = append(buf, s.Result(scale))
	}
	return buf
}

// CloneForWorker returns a joiner sharing the (read-only) dimension hash
// tables but with private per-call scratch, for use by a parallel
// worker.
func (j *Joiner) CloneForWorker() *Joiner {
	c := &Joiner{dims: j.dims, hasDim: j.hasDim}
	return c
}
