package exec

import (
	"fmt"

	"fluodb/internal/plan"
	"fluodb/internal/sqlparser"
	"fluodb/internal/storage"
	"fluodb/internal/types"
)

// ExecStatement executes a non-SELECT statement (CREATE TABLE, INSERT,
// DROP TABLE) against the catalog; it returns the number of rows
// inserted (0 for DDL). SELECT statements are the caller's job (they
// need a choice of engine: batch or online).
func ExecStatement(stmt sqlparser.Stmt, cat *storage.Catalog) (int, error) {
	switch s := stmt.(type) {
	case *sqlparser.CreateTableStmt:
		if _, exists := cat.Get(s.Name); exists {
			return 0, fmt.Errorf("exec: table %q already exists", s.Name)
		}
		cat.Put(storage.NewTable(s.Name, s.Schema))
		return 0, nil
	case *sqlparser.InsertStmt:
		return execInsert(s, cat)
	case *sqlparser.DropTableStmt:
		if !cat.Drop(s.Name) {
			return 0, fmt.Errorf("exec: unknown table %q", s.Name)
		}
		return 0, nil
	default:
		return 0, fmt.Errorf("exec: unsupported statement %T", stmt)
	}
}

func execInsert(s *sqlparser.InsertStmt, cat *storage.Catalog) (int, error) {
	t, ok := cat.Get(s.Table)
	if !ok {
		return 0, fmt.Errorf("exec: unknown table %q", s.Table)
	}
	schema := t.Schema()
	targets := make([]int, 0, len(schema))
	if len(s.Columns) == 0 {
		for i := range schema {
			targets = append(targets, i)
		}
	} else {
		for _, name := range s.Columns {
			idx := schema.ColumnIndex(name)
			if idx < 0 {
				return 0, fmt.Errorf("exec: table %q has no column %q", s.Table, name)
			}
			targets = append(targets, idx)
		}
	}
	inserted := 0
	for _, exprRow := range s.Rows {
		if len(exprRow) != len(targets) {
			return inserted, fmt.Errorf(
				"exec: INSERT row has %d values, expected %d", len(exprRow), len(targets))
		}
		row := make(types.Row, len(schema))
		for i := range row {
			row[i] = types.Null
		}
		for i, e := range exprRow {
			v, err := plan.BindConst(e)
			if err != nil {
				return inserted, err
			}
			coerced, err := CoerceValue(v, schema[targets[i]].Type)
			if err != nil {
				return inserted, fmt.Errorf("exec: column %q: %w", schema[targets[i]].Name, err)
			}
			row[targets[i]] = coerced
		}
		if err := t.Append(row); err != nil {
			return inserted, err
		}
		inserted++
	}
	return inserted, nil
}

// CoerceValue converts an inserted value to the column type, or errors
// when no sensible conversion exists.
func CoerceValue(v types.Value, kind types.Kind) (types.Value, error) {
	if v.IsNull() || v.Kind() == kind {
		return v, nil
	}
	switch kind {
	case types.KindInt:
		if v.Kind() != types.KindString {
			if i, ok := v.AsInt(); ok {
				return types.NewInt(i), nil
			}
		}
	case types.KindFloat:
		if v.Kind() != types.KindString {
			if f, ok := v.AsFloat(); ok {
				return types.NewFloat(f), nil
			}
		}
	case types.KindString:
		return types.NewString(v.String()), nil
	case types.KindBool:
		if v.Kind() == types.KindInt {
			return types.NewBool(v.Int() != 0), nil
		}
	}
	return types.Null, fmt.Errorf("cannot store %s value %s in a %s column", v.Kind(), v, kind)
}
