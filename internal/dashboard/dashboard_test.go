package dashboard

import (
	"bufio"
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"fluodb/internal/chaos"
	"fluodb/internal/core"
	"fluodb/internal/otrace"
	"fluodb/internal/testutil"
	"fluodb/internal/workload"
)

func testServer(t *testing.T) *Server {
	t.Helper()
	cat := workload.ConvivaCatalog(2000, 9)
	return New(cat, core.Options{Batches: 5, Trials: 10, Seed: 3})
}

func TestHomePageServed(t *testing.T) {
	srv := httptest.NewServer(testServer(t).Handler())
	defer srv.Close()
	resp, err := http.Get(srv.URL + "/")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Fatalf("status = %d", resp.StatusCode)
	}
	buf := make([]byte, 4096)
	n, _ := resp.Body.Read(buf)
	if !strings.Contains(string(buf[:n]), "FluoDB") {
		t.Error("home page content")
	}
}

func TestQueryStreamsSnapshots(t *testing.T) {
	srv := httptest.NewServer(testServer(t).Handler())
	defer srv.Close()
	resp, err := http.Get(srv.URL + "/query?sql=" +
		"SELECT+AVG(play_time)+FROM+sessions+WHERE+buffer_time+%3E+(SELECT+AVG(buffer_time)+FROM+sessions)")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Fatalf("content type = %q", ct)
	}
	sc := bufio.NewScanner(resp.Body)
	var snaps []SnapshotJSON
	for sc.Scan() {
		line := sc.Text()
		if !strings.HasPrefix(line, "data: ") {
			continue
		}
		var s SnapshotJSON
		if err := json.Unmarshal([]byte(strings.TrimPrefix(line, "data: ")), &s); err != nil {
			t.Fatalf("bad event %q: %v", line, err)
		}
		if s.Err != "" {
			t.Fatalf("error event: %s", s.Err)
		}
		snaps = append(snaps, s)
	}
	if len(snaps) != 5 {
		t.Fatalf("snapshots = %d, want 5", len(snaps))
	}
	last := snaps[len(snaps)-1]
	if last.Fraction != 1 || last.Batch != 5 || last.Total != 5 {
		t.Errorf("last snapshot: %+v", last)
	}
	if len(last.Columns) != 1 || len(last.Rows) != 1 {
		t.Errorf("shape: cols=%v rows=%d", last.Columns, len(last.Rows))
	}
	if !last.Rows[0][0].HasCI {
		t.Error("aggregate cell should carry a CI")
	}
	// RSD tightens from first to last snapshot.
	if snaps[0].RSD < last.RSD {
		t.Errorf("rsd grew: %v → %v", snaps[0].RSD, last.RSD)
	}
}

func TestQueryErrorsAreEvents(t *testing.T) {
	srv := httptest.NewServer(testServer(t).Handler())
	defer srv.Close()
	resp, err := http.Get(srv.URL + "/query?sql=SELECT+nope+FROM+sessions")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	sc := bufio.NewScanner(resp.Body)
	found := false
	for sc.Scan() {
		if strings.HasPrefix(sc.Text(), "data: ") {
			var s SnapshotJSON
			_ = json.Unmarshal([]byte(strings.TrimPrefix(sc.Text(), "data: ")), &s)
			if s.Err != "" {
				found = true
			}
		}
	}
	if !found {
		t.Error("compile error should arrive as an SSE event")
	}
}

func TestQueryMissingSQLIs400(t *testing.T) {
	srv := httptest.NewServer(testServer(t).Handler())
	defer srv.Close()
	resp, err := http.Get(srv.URL + "/query")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("status = %d", resp.StatusCode)
	}
}

func TestClientDisconnectCancelsQuery(t *testing.T) {
	s := testServer(t)
	srv := httptest.NewServer(s.Handler())
	defer srv.Close()
	ctx, cancel := context.WithCancel(context.Background())
	req, _ := http.NewRequestWithContext(ctx, "GET", srv.URL+
		"/query?sql=SELECT+AVG(play_time)+FROM+sessions", nil)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	// read one event then hang up — the handler must return promptly
	// and release the query goroutine (the active-queries gauge drops
	// back to zero).
	buf := make([]byte, 256)
	_, _ = resp.Body.Read(buf)
	cancel()
	resp.Body.Close()
	deadline := time.Now().Add(2 * time.Second)
	for s.ActiveQueries() != 0 {
		if time.Now().After(deadline) {
			t.Fatalf("query goroutine not released: %d still active", s.ActiveQueries())
		}
		time.Sleep(5 * time.Millisecond)
	}
	if got := s.queries.Load(); got != 1 {
		t.Fatalf("queries counter = %d, want 1", got)
	}
}

func TestEncodeSnapshotRowCap(t *testing.T) {
	cat := workload.ConvivaCatalog(3000, 10)
	s := New(cat, core.Options{Batches: 3, Trials: 8, Seed: 4})
	srv := httptest.NewServer(s.Handler())
	defer srv.Close()
	// user_id has hundreds of groups — events must cap at 50 rows
	resp, err := http.Get(srv.URL + "/query?sql=" +
		"SELECT+user_id,+COUNT(*)+FROM+sessions+GROUP+BY+user_id")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		if !strings.HasPrefix(sc.Text(), "data: ") {
			continue
		}
		var snap SnapshotJSON
		if err := json.Unmarshal([]byte(strings.TrimPrefix(sc.Text(), "data: ")), &snap); err != nil {
			t.Fatal(err)
		}
		if len(snap.Rows) > maxRowsPerEvent {
			t.Fatalf("event carries %d rows", len(snap.Rows))
		}
	}
}

func TestBlocksInPayload(t *testing.T) {
	srv := httptest.NewServer(testServer(t).Handler())
	defer srv.Close()
	resp, err := http.Get(srv.URL + "/query?sql=" +
		"SELECT+AVG(play_time)+FROM+sessions+WHERE+buffer_time+%3E+(SELECT+AVG(buffer_time)+FROM+sessions)")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	sc := bufio.NewScanner(resp.Body)
	for sc.Scan() {
		if !strings.HasPrefix(sc.Text(), "data: ") {
			continue
		}
		var s SnapshotJSON
		if err := json.Unmarshal([]byte(strings.TrimPrefix(sc.Text(), "data: ")), &s); err != nil {
			t.Fatal(err)
		}
		if len(s.Blocks) != 2 {
			t.Fatalf("blocks = %d", len(s.Blocks))
		}
		if s.Blocks[0].Kind != "scalar" || s.Blocks[1].Kind != "root" {
			t.Fatalf("block kinds = %+v", s.Blocks)
		}
		break
	}
}

// TestPhasesInPayload checks the SSE wire form carries per-batch and
// per-block phase timings (New forces the profiler on).
func TestPhasesInPayload(t *testing.T) {
	srv := httptest.NewServer(testServer(t).Handler())
	defer srv.Close()
	resp, err := http.Get(srv.URL + "/query?sql=" +
		"SELECT+AVG(play_time)+FROM+sessions+WHERE+buffer_time+%3E+(SELECT+AVG(buffer_time)+FROM+sessions)")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	sc := bufio.NewScanner(resp.Body)
	for sc.Scan() {
		if !strings.HasPrefix(sc.Text(), "data: ") {
			continue
		}
		var s SnapshotJSON
		if err := json.Unmarshal([]byte(strings.TrimPrefix(sc.Text(), "data: ")), &s); err != nil {
			t.Fatal(err)
		}
		if s.Phases["fold"] <= 0 || s.Phases["snapshot"] <= 0 {
			t.Fatalf("snapshot phases missing: %v", s.Phases)
		}
		for _, b := range s.Blocks {
			if b.PhaseMS["fold"] <= 0 {
				t.Fatalf("block %s carries no fold time: %v", b.Kind, b.PhaseMS)
			}
		}
		break
	}
}

func TestMetricsEndpoint(t *testing.T) {
	s := testServer(t)
	srv := httptest.NewServer(s.Handler())
	defer srv.Close()
	// Run one query to completion so the counters move.
	resp, err := http.Get(srv.URL + "/query?sql=SELECT+AVG(play_time)+FROM+sessions")
	if err != nil {
		t.Fatal(err)
	}
	_, _ = io.Copy(io.Discard, resp.Body)
	resp.Body.Close()

	mresp, err := http.Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer mresp.Body.Close()
	if ct := mresp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Fatalf("content type = %q", ct)
	}
	body, err := io.ReadAll(mresp.Body)
	if err != nil {
		t.Fatal(err)
	}
	text := string(body)
	for _, want := range []string{
		"# TYPE fluodb_queries_total counter",
		"fluodb_queries_total 1",
		"fluodb_queries_active 0",
		"fluodb_batches_total 5",
		"# TYPE fluodb_rows_total counter",
		"fluodb_recomputes_total",
		"# TYPE fluodb_uncertain_rows gauge",
		"# TYPE fluodb_batch_seconds histogram",
		"fluodb_batch_seconds_count 5",
		`fluodb_phase_seconds_bucket{phase="fold",le="+Inf"}`,
		`fluodb_phase_seconds_bucket{phase="snapshot",le="+Inf"}`,
	} {
		if !strings.Contains(text, want) {
			t.Fatalf("/metrics missing %q:\n%s", want, text)
		}
	}
	// The catalog has 2000 rows and the query scans all of them.
	if !strings.Contains(text, "fluodb_rows_total 2000") {
		t.Fatalf("rows counter wrong:\n%s", text)
	}
	// The fold phase histogram recorded all five batches.
	if !strings.Contains(text, `fluodb_phase_seconds_count{phase="fold"} 5`) {
		t.Fatalf("fold phase histogram not populated:\n%s", text)
	}
}

func TestPprofEndpoints(t *testing.T) {
	srv := httptest.NewServer(testServer(t).Handler())
	defer srv.Close()
	for _, path := range []string{
		"/debug/pprof/",
		"/debug/pprof/cmdline",
		"/debug/pprof/symbol",
		"/debug/pprof/heap",
		"/debug/pprof/goroutine",
	} {
		resp, err := http.Get(srv.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		_, _ = io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode != 200 {
			t.Errorf("%s: status = %d", path, resp.StatusCode)
		}
	}
}

// TestAccuracySeriesAndGolaMetrics: dashboard queries are audited
// against the batch executor's exact answer, so SSE events must carry
// the accuracy series and /metrics the gola_* statistical families.
func TestAccuracySeriesAndGolaMetrics(t *testing.T) {
	s := testServer(t)
	srv := httptest.NewServer(s.Handler())
	defer srv.Close()
	resp, err := http.Get(srv.URL + "/query?sql=" +
		"SELECT+AVG(play_time)+FROM+sessions+WHERE+buffer_time+%3E+(SELECT+AVG(buffer_time)+FROM+sessions)")
	if err != nil {
		t.Fatal(err)
	}
	sc := bufio.NewScanner(resp.Body)
	var snaps []SnapshotJSON
	for sc.Scan() {
		line := sc.Text()
		if !strings.HasPrefix(line, "data: ") {
			continue
		}
		var sj SnapshotJSON
		if err := json.Unmarshal([]byte(strings.TrimPrefix(line, "data: ")), &sj); err != nil {
			t.Fatal(err)
		}
		snaps = append(snaps, sj)
	}
	resp.Body.Close()
	if len(snaps) == 0 {
		t.Fatal("no snapshots")
	}
	for _, sj := range snaps {
		if !sj.Audited {
			t.Fatalf("snapshot %d not audited", sj.Batch)
		}
	}
	// Early batches estimate, so relative error is nonzero; the final
	// batch is exact.
	if snaps[0].RelErr == 0 && snaps[0].CIWidth == 0 {
		t.Error("first snapshot carries no accuracy series")
	}
	last := snaps[len(snaps)-1]
	if last.RelErr > 1e-9 {
		t.Errorf("final snapshot rel_err = %g, want ~0 (exactness)", last.RelErr)
	}

	mresp, err := http.Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(mresp.Body)
	mresp.Body.Close()
	text := string(body)
	for _, want := range []string{
		"# TYPE gola_deterministic_flips_total counter",
		"gola_invariant_violations_total 0",
		"# TYPE gola_relative_error histogram",
		"gola_relative_error_count 5",
		"gola_ci_width_count 5",
		"# TYPE gola_ci_coverage gauge",
		"# TYPE gola_uncertain_evictions counter",
	} {
		if !strings.Contains(text, want) {
			t.Fatalf("/metrics missing %q:\n%s", want, text)
		}
	}
}

// TestClientDisconnectMidChaos is the robustness satellite: a client
// that hangs up while the engine is absorbing injected worker panics
// must still release the handler (ActiveQueries drains) and leak no
// goroutines — the contained-panic path cannot strand pool workers.
func TestClientDisconnectMidChaos(t *testing.T) {
	cat := workload.ConvivaCatalog(4000, 9)
	s := New(cat, core.Options{
		Batches: 8, Trials: 16, Seed: 3,
		Parallelism: 4, ParallelThreshold: 64,
		Chaos: chaos.New(chaos.Config{Seed: 77, PanicProb: 0.3, CorruptProb: 0.2}),
	})
	srv := httptest.NewServer(s.Handler())
	defer srv.Close()
	client := &http.Client{Transport: &http.Transport{DisableKeepAlives: true}}

	baseline := testutil.GoroutineBaseline()
	for i := 0; i < 4; i++ {
		ctx, cancel := context.WithCancel(context.Background())
		req, _ := http.NewRequestWithContext(ctx, "GET", srv.URL+
			"/query?sql=SELECT+AVG(play_time)+FROM+sessions+WHERE+buffer_time+%3E+(SELECT+AVG(buffer_time)+FROM+sessions)", nil)
		resp, err := client.Do(req)
		if err != nil {
			cancel()
			t.Fatal(err)
		}
		// Read one event so the engine is mid-run, then hang up.
		buf := make([]byte, 256)
		_, _ = resp.Body.Read(buf)
		cancel()
		resp.Body.Close()
	}
	deadline := time.Now().Add(3 * time.Second)
	for s.ActiveQueries() != 0 {
		if time.Now().After(deadline) {
			t.Fatalf("handlers not released under chaos: %d still active", s.ActiveQueries())
		}
		time.Sleep(5 * time.Millisecond)
	}
	// Engine pools close with their handlers; allow the runtime a moment
	// to reap worker goroutines, then require no leak beyond transient
	// HTTP conns.
	testutil.VerifyNoLeaks(t, baseline)
}

// TestConvergencePayloadAndTrace: SSE events must carry the
// convergence-observatory sample, /metrics the gola_* convergence
// families, and /trace a valid, correctly nested Chrome trace of the
// query that just ran.
func TestConvergencePayloadAndTrace(t *testing.T) {
	s := testServer(t)
	srv := httptest.NewServer(s.Handler())
	defer srv.Close()

	// Before any query, /trace serves an empty (but valid) trace.
	tresp, err := http.Get(srv.URL + "/trace")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(tresp.Body)
	tresp.Body.Close()
	if ns, _, err := otrace.ValidateChromeJSON(body); err != nil || ns != 0 {
		t.Fatalf("empty trace invalid: spans=%d err=%v", ns, err)
	}

	resp, err := http.Get(srv.URL + "/query?sql=" +
		"SELECT+country,+AVG(play_time)+FROM+sessions+GROUP+BY+country")
	if err != nil {
		t.Fatal(err)
	}
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	var snaps []SnapshotJSON
	for sc.Scan() {
		if !strings.HasPrefix(sc.Text(), "data: ") {
			continue
		}
		var sj SnapshotJSON
		if err := json.Unmarshal([]byte(strings.TrimPrefix(sc.Text(), "data: ")), &sj); err != nil {
			t.Fatal(err)
		}
		if sj.Err != "" {
			t.Fatalf("error event: %s", sj.Err)
		}
		snaps = append(snaps, sj)
	}
	resp.Body.Close()
	if len(snaps) == 0 {
		t.Fatal("no snapshots")
	}
	for _, sj := range snaps {
		if sj.Conv == nil {
			t.Fatalf("snapshot %d carries no convergence sample", sj.Batch)
		}
		if sj.Conv.Batch != sj.Batch {
			t.Fatalf("conv batch %d on snapshot %d", sj.Conv.Batch, sj.Batch)
		}
	}
	if c := snaps[0].Conv; !c.HasCI || c.HalfWidthMax <= 0 {
		t.Fatalf("first batch conv sample empty: %+v", c)
	}

	mresp, err := http.Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	mbody, _ := io.ReadAll(mresp.Body)
	mresp.Body.Close()
	text := string(mbody)
	for _, want := range []string{
		"# TYPE gola_ci_halfwidth histogram",
		`gola_ci_halfwidth_count{q="p50"} 5`,
		`gola_ci_halfwidth_count{q="max"} 5`,
		"# TYPE gola_uncertain_churn_total counter",
		`gola_uncertain_churn_total{dir="in"}`,
		`gola_uncertain_churn_total{dir="out"}`,
		"# TYPE gola_rows_per_second gauge",
		"# TYPE gola_eta_seconds gauge",
		`gola_eta_seconds{epsilon="0.01"}`,
	} {
		if !strings.Contains(text, want) {
			t.Fatalf("/metrics missing %q:\n%s", want, text)
		}
	}

	// /trace now carries the finished query's timeline, Perfetto-valid.
	tresp2, err := http.Get(srv.URL + "/trace")
	if err != nil {
		t.Fatal(err)
	}
	if ct := tresp2.Header.Get("Content-Type"); ct != "application/json" {
		t.Fatalf("trace content type = %q", ct)
	}
	tbody, _ := io.ReadAll(tresp2.Body)
	tresp2.Body.Close()
	ns, _, err := otrace.ValidateChromeJSON(tbody)
	if err != nil {
		t.Fatalf("trace export invalid: %v", err)
	}
	if ns == 0 {
		t.Fatal("trace carries no spans after a query")
	}
}

// TestMemPayloadAndMetrics: SSE events carry the per-batch memory
// observation, and /metrics the gola_mem_* / gola_gc_* resource-ledger
// families with the eviction counter split by reason. The server runs
// under a 1-byte MaxMemoryBytes so the full degradation ladder engages
// and the budget gauges move.
func TestMemPayloadAndMetrics(t *testing.T) {
	cat := workload.ConvivaCatalog(2000, 9)
	s := New(cat, core.Options{Batches: 5, Trials: 10, Seed: 3, MaxMemoryBytes: 1})
	srv := httptest.NewServer(s.Handler())
	defer srv.Close()

	resp, err := http.Get(srv.URL + "/query?sql=" +
		"SELECT+country,+AVG(play_time)+FROM+sessions+GROUP+BY+country")
	if err != nil {
		t.Fatal(err)
	}
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	var snaps []SnapshotJSON
	for sc.Scan() {
		if !strings.HasPrefix(sc.Text(), "data: ") {
			continue
		}
		var sj SnapshotJSON
		if err := json.Unmarshal([]byte(strings.TrimPrefix(sc.Text(), "data: ")), &sj); err != nil {
			t.Fatal(err)
		}
		if sj.Err != "" {
			t.Fatalf("error event: %s", sj.Err)
		}
		snaps = append(snaps, sj)
	}
	resp.Body.Close()
	if len(snaps) != 5 {
		t.Fatalf("snapshots = %d, want 5", len(snaps))
	}
	for _, sj := range snaps {
		if sj.Mem == nil || sj.Mem.TotalBytes <= 0 {
			t.Fatalf("batch %d: no mem payload: %+v", sj.Batch, sj.Mem)
		}
		if sj.Mem.PeakBytes < sj.Mem.TotalBytes {
			t.Fatalf("batch %d: peak %d below total %d", sj.Batch, sj.Mem.PeakBytes, sj.Mem.TotalBytes)
		}
		if sj.Mem.DegradeRung != 3 || sj.Mem.BudgetBytes != 1 {
			t.Fatalf("batch %d: budget state %+v, want rung 3 under 1-byte budget", sj.Batch, sj.Mem)
		}
		if sj.Degraded != "budget:segcache+prefetch+evict" {
			t.Fatalf("batch %d: Degraded = %q", sj.Batch, sj.Degraded)
		}
	}

	mresp, err := http.Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	mbody, _ := io.ReadAll(mresp.Body)
	mresp.Body.Close()
	text := string(mbody)
	for _, want := range []string{
		"# TYPE gola_mem_bytes gauge",
		`gola_mem_bytes{pool="group-tables"}`,
		`gola_mem_bytes{pool="weight-arenas"}`,
		`gola_mem_bytes{pool="uncertain-cache"}`,
		`gola_mem_bytes{pool="prefetch"}`,
		`gola_mem_bytes{pool="col-scratch"}`,
		`gola_mem_bytes{pool="segment-cache"}`,
		`gola_mem_bytes{pool="checkpoint"}`,
		"# TYPE gola_mem_total_bytes gauge",
		"# TYPE gola_mem_peak_bytes gauge",
		"gola_mem_degrade_rung 3",
		"# TYPE gola_gc_pause_ns_total counter",
		"# TYPE gola_gc_cycles_total counter",
		"# TYPE gola_gc_heap_live_bytes gauge",
		"# TYPE gola_gc_heap_goal_bytes gauge",
		"# TYPE gola_uncertain_evictions counter",
		`gola_uncertain_evictions{reason="cap"}`,
		`gola_uncertain_evictions{reason="budget"}`,
	} {
		if !strings.Contains(text, want) {
			t.Fatalf("/metrics missing %q:\n%s", want, text)
		}
	}
	// The heap gauges reflect a live process, and the total moved.
	if strings.Contains(text, "gola_gc_heap_live_bytes 0\n") {
		t.Fatal("heap live gauge never set")
	}
	if strings.Contains(text, "gola_mem_total_bytes 0\n") {
		t.Fatal("mem total gauge never set")
	}
}

// TestShardPayloadAndMetrics: a sharded query's SSE events carry the
// per-shard progress slots, and /metrics the gola_shard_* families.
// Kill chaos is injected so the fault/recovery counters move — the
// answer must still stream to completion (the coordinator's ladder
// absorbs every death).
func TestShardPayloadAndMetrics(t *testing.T) {
	cat := workload.ConvivaCatalog(2000, 9)
	s := New(cat, core.Options{Batches: 5, Trials: 10, Seed: 3, Shards: 2,
		Chaos: chaos.New(chaos.Config{Seed: 41, ShardKillProb: 0.4})})
	srv := httptest.NewServer(s.Handler())
	defer srv.Close()

	resp, err := http.Get(srv.URL + "/query?sql=" +
		"SELECT+country,+AVG(play_time)+FROM+sessions+GROUP+BY+country")
	if err != nil {
		t.Fatal(err)
	}
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	var snaps []SnapshotJSON
	for sc.Scan() {
		if !strings.HasPrefix(sc.Text(), "data: ") {
			continue
		}
		var sj SnapshotJSON
		if err := json.Unmarshal([]byte(strings.TrimPrefix(sc.Text(), "data: ")), &sj); err != nil {
			t.Fatal(err)
		}
		if sj.Err != "" {
			t.Fatalf("error event: %s", sj.Err)
		}
		snaps = append(snaps, sj)
	}
	resp.Body.Close()
	if len(snaps) != 5 {
		t.Fatalf("snapshots = %d, want 5", len(snaps))
	}
	for _, sj := range snaps {
		if len(sj.Shards) != 2 {
			t.Fatalf("batch %d: shard slots = %d, want 2", sj.Batch, len(sj.Shards))
		}
		for i, st := range sj.Shards {
			if st.ID != i {
				t.Fatalf("batch %d: slot %d reports ID %d", sj.Batch, i, st.ID)
			}
		}
	}

	mresp, err := http.Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	mbody, _ := io.ReadAll(mresp.Body)
	mresp.Body.Close()
	text := string(mbody)
	for _, want := range []string{
		"# TYPE gola_shard_count gauge",
		"gola_shard_count 2",
		"# TYPE gola_shard_kills_total counter",
		"# TYPE gola_shard_respawns_total counter",
		"# TYPE gola_shard_restores_total counter",
	} {
		if !strings.Contains(text, want) {
			t.Fatalf("/metrics missing %q:\n%s", want, text)
		}
	}
	// The pinned (seed, prob) schedule fires kills; each kill spawns a
	// replacement incarnation, so both counters must have moved.
	if strings.Contains(text, "gola_shard_kills_total 0\n") {
		t.Fatal("kill chaos fired no shard kills")
	}
	if strings.Contains(text, "gola_shard_respawns_total 0\n") {
		t.Fatal("shard kills recovered without respawns")
	}
}
