// Package dashboard implements the web console of the paper's demo
// (§6, Figure 4): an HTTP server that runs online SQL queries against a
// fluodb-style engine and streams each refined snapshot to the browser
// as a Server-Sent Event, so approximate answers with error bars appear
// immediately and tighten live. Closing the request (the browser's Stop
// button) cancels the query — the OLA accuracy/time control knob.
package dashboard

import (
	"encoding/json"
	"fmt"
	"net/http"

	"fluodb/internal/core"
	"fluodb/internal/plan"
	"fluodb/internal/storage"
)

// Server serves the console UI and the SSE query endpoint.
type Server struct {
	cat *storage.Catalog
	opt core.Options
}

// New builds a dashboard server over a catalog. opt configures the
// online executions (zero values take engine defaults).
func New(cat *storage.Catalog, opt core.Options) *Server {
	return &Server{cat: cat, opt: opt}
}

// Handler returns the HTTP handler: "/" serves the console page,
// "/query?sql=..." streams snapshots.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/", s.home)
	mux.HandleFunc("/query", s.Query)
	return mux
}

func (s *Server) home(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/html; charset=utf-8")
	fmt.Fprint(w, homeHTML)
}

// SnapshotJSON is the wire form of one refinement step.
type SnapshotJSON struct {
	Batch     int        `json:"batch"`
	Total     int        `json:"total"`
	Fraction  float64    `json:"fraction"`
	RSD       float64    `json:"rsd"`
	Uncertain int        `json:"uncertain"`
	Columns   []string   `json:"columns"`
	Rows      [][]CellJS `json:"rows"`
	Blocks    []BlockJS  `json:"blocks,omitempty"`
	Err       string     `json:"error,omitempty"`
}

// BlockJS profiles one lineage block on the wire.
type BlockJS struct {
	Kind      string `json:"kind"`
	Table     string `json:"table"`
	Groups    int    `json:"groups"`
	Uncertain int    `json:"uncertain"`
}

// CellJS is one output cell on the wire.
type CellJS struct {
	V     string  `json:"v"`
	Lo    float64 `json:"lo,omitempty"`
	Hi    float64 `json:"hi,omitempty"`
	HasCI bool    `json:"ci"`
}

// maxRowsPerEvent bounds the payload of one SSE event.
const maxRowsPerEvent = 50

// Query runs one online query, streaming snapshots as SSE events until
// completion or client disconnect.
func (s *Server) Query(w http.ResponseWriter, r *http.Request) {
	sql := r.URL.Query().Get("sql")
	if sql == "" {
		http.Error(w, "missing ?sql=", http.StatusBadRequest)
		return
	}
	flusher, ok := w.(http.Flusher)
	if !ok {
		http.Error(w, "streaming unsupported", http.StatusInternalServerError)
		return
	}
	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-cache")

	send := func(v SnapshotJSON) {
		data, _ := json.Marshal(v)
		fmt.Fprintf(w, "data: %s\n\n", data)
		flusher.Flush()
	}

	q, err := plan.Compile(sql, s.cat)
	if err != nil {
		send(SnapshotJSON{Err: err.Error()})
		return
	}
	eng, err := core.New(q, s.cat, s.opt)
	if err != nil {
		send(SnapshotJSON{Err: err.Error()})
		return
	}
	ctx := r.Context()
	for !eng.Done() {
		select {
		case <-ctx.Done():
			return // user stopped the query at the current accuracy
		default:
		}
		snap, err := eng.Step()
		if err != nil {
			send(SnapshotJSON{Err: err.Error()})
			return
		}
		send(EncodeSnapshot(snap))
	}
}

// EncodeSnapshot converts an engine snapshot to its wire form.
func EncodeSnapshot(snap *core.Snapshot) SnapshotJSON {
	out := SnapshotJSON{
		Batch:     snap.Batch,
		Total:     snap.TotalBatches,
		Fraction:  snap.FractionProcessed,
		RSD:       snap.RSD(),
		Uncertain: snap.UncertainRows,
	}
	for _, c := range snap.Schema {
		out.Columns = append(out.Columns, c.Name)
	}
	for _, b := range snap.Blocks {
		out.Blocks = append(out.Blocks, BlockJS{
			Kind: b.Kind, Table: b.Table, Groups: b.Groups, Uncertain: b.Uncertain,
		})
	}
	limit := len(snap.Rows)
	if limit > maxRowsPerEvent {
		limit = maxRowsPerEvent
	}
	for _, row := range snap.Rows[:limit] {
		var cells []CellJS
		for _, cell := range row {
			cells = append(cells, CellJS{
				V: cell.Value.String(), Lo: cell.CI.Lo, Hi: cell.CI.Hi, HasCI: cell.HasCI,
			})
		}
		out.Rows = append(out.Rows, cells)
	}
	return out
}

const homeHTML = `<!DOCTYPE html>
<html><head><title>FluoDB console</title><style>
body { font-family: system-ui, sans-serif; margin: 2rem auto; max-width: 960px; }
textarea { width: 100%; height: 7rem; font-family: monospace; font-size: 14px; }
table { border-collapse: collapse; margin-top: 1rem; width: 100%; }
td, th { border: 1px solid #ccc; padding: 4px 8px; text-align: right; font-variant-numeric: tabular-nums; }
th { background: #f4f4f4; }
.ci { color: #888; font-size: 0.85em; }
#status { margin-top: .5rem; color: #555; }
progress { width: 100%; }
</style></head><body>
<h1>FluoDB — G-OLA online SQL console</h1>
<p>Tables: <code>sessions</code> (Conviva-style) and <code>lineitem</code>/<code>partsupp</code>
(TPC-H-style). Try the paper's SBI query:</p>
<textarea id="sql">SELECT AVG(play_time) FROM sessions
WHERE buffer_time > (SELECT AVG(buffer_time) FROM sessions)</textarea><br>
<button onclick="run()">Run online</button>
<button onclick="stop()">Stop (accept current accuracy)</button>
<div id="status"></div>
<progress id="prog" value="0" max="1"></progress>
<div id="out"></div>
<script>
let es = null;
function stop() { if (es) { es.close(); es = null; } }
function run() {
  stop();
  const sql = document.getElementById('sql').value;
  es = new EventSource('/query?sql=' + encodeURIComponent(sql));
  es.onmessage = (ev) => {
    const s = JSON.parse(ev.data);
    if (s.error) {
      document.getElementById('status').textContent = 'error: ' + s.error;
      stop(); return;
    }
    document.getElementById('prog').value = s.fraction;
    document.getElementById('status').textContent =
      'batch ' + s.batch + '/' + s.total + ' — ' + (100*s.fraction).toFixed(0) +
      '% of data — rsd ' + (100*s.rsd).toFixed(3) + '% — uncertain tuples ' + s.uncertain;
    let html = '<table><tr>';
    for (const c of s.columns) html += '<th>' + c + '</th>';
    html += '</tr>';
    for (const row of s.rows) {
      html += '<tr>';
      for (const cell of row) {
        html += '<td>' + (isNaN(+cell.v) ? cell.v : (+cell.v).toFixed(3));
        if (cell.ci) html += ' <span class="ci">[' + cell.lo.toFixed(2) + ', ' + cell.hi.toFixed(2) + ']</span>';
        html += '</td>';
      }
      html += '</tr>';
    }
    html += '</table>';
    document.getElementById('out').innerHTML = html;
    if (s.batch === s.total) stop();
  };
  es.onerror = () => stop();
}
</script></body></html>`
