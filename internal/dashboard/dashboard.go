// Package dashboard implements the web console of the paper's demo
// (§6, Figure 4): an HTTP server that runs online SQL queries against a
// fluodb-style engine and streams each refined snapshot to the browser
// as a Server-Sent Event, so approximate answers with error bars appear
// immediately and tighten live. Closing the request (the browser's Stop
// button) cancels the query — the OLA accuracy/time control knob.
//
// The server doubles as the engine's observability surface: /metrics
// exposes Prometheus-format counters, gauges and per-phase duration
// histograms for every query it runs, and /debug/pprof/ mounts the
// standard Go profiler endpoints.
package dashboard

import (
	"encoding/json"
	"fmt"
	"log/slog"
	"math"
	"net/http"
	"net/http/pprof"
	"sync/atomic"

	"fluodb/internal/audit"
	"fluodb/internal/core"
	"fluodb/internal/metrics"
	"fluodb/internal/otrace"
	"fluodb/internal/plan"
	"fluodb/internal/resource"
	"fluodb/internal/storage"
)

// Server serves the console UI, the SSE query endpoint, and the
// /metrics + pprof observability surface.
type Server struct {
	cat *storage.Catalog
	opt core.Options

	reg          *metrics.Registry
	queries      *metrics.Counter
	active       *metrics.Gauge
	batches      *metrics.Counter
	rows         *metrics.Counter
	recomputes   *metrics.Counter
	uncertain    *metrics.Gauge
	batchSeconds *metrics.Histogram
	phaseSeconds []*metrics.Histogram // aligned with core.PhaseNames
	// Statistical-correctness families (internal/audit): every query the
	// dashboard runs is audited against the batch executor's exact
	// answer, so these track the estimator, not just the runtime.
	detFlips   *metrics.Counter
	violations *metrics.Counter
	// Uncertain evictions split by cause: reason="cap" is the
	// MaxUncertainRows row-count cap, reason="budget" is rung 3 of the
	// MaxMemoryBytes degradation ladder.
	evictionsCap    *metrics.Counter
	evictionsBudget *metrics.Counter
	relErr          *metrics.Histogram
	ciWidth         *metrics.Histogram
	coverageBits    atomic.Uint64 // float64 bits: latest snapshot's CI coverage
	// Convergence-observatory families (core.ConvergencePoint): CI
	// half-width quantiles, throughput, uncertain-cache churn and the
	// ETA-to-1% prediction of the most recent batch.
	hwP50, hwP90, hwMax *metrics.Histogram
	churnIn, churnOut   *metrics.Counter
	rowsPerSecBits      atomic.Uint64 // float64 bits
	etaBits             atomic.Uint64 // float64 bits; NaN until predicted
	// Resource-ledger families (Snapshot.Resources): per-pool byte
	// residency, total/peak, budget degradation rung and GC telemetry of
	// the most recent committed mini-batch.
	memPool     []*metrics.Gauge // aligned with resource.Category
	memTotal    *metrics.Gauge
	memPeak     *metrics.Gauge
	degradeRung *metrics.Gauge
	gcPauseNS   *metrics.Counter
	gcCycles    *metrics.Counter
	heapLive    *metrics.Gauge
	heapGoal    *metrics.Gauge
	// Sharded-execution families (Metrics.Shard*): topology width of the
	// most recent query plus the coordinator's fault/recovery ledger.
	shardCount    *metrics.Gauge
	shardKills    *metrics.Counter
	shardRespawns *metrics.Counter
	shardRestores *metrics.Counter
	// spans holds the most recent query's span timeline for /trace.
	spans atomic.Pointer[otrace.Tracer]

	log *slog.Logger
}

// New builds a dashboard server over a catalog. opt configures the
// online executions (zero values take engine defaults); the per-phase
// profiler is always enabled so the phase histograms and SSE payloads
// carry real timings.
func New(cat *storage.Catalog, opt core.Options) *Server {
	opt.Profile = true
	s := &Server{cat: cat, opt: opt, reg: metrics.NewRegistry()}
	s.queries = s.reg.Counter("fluodb_queries_total", "Online queries started.")
	s.active = s.reg.Gauge("fluodb_queries_active", "Online queries currently running.")
	s.batches = s.reg.Counter("fluodb_batches_total", "Mini-batches processed across all queries.")
	s.rows = s.reg.Counter("fluodb_rows_total", "Fact rows folded across all queries.")
	s.recomputes = s.reg.Counter("fluodb_recomputes_total", "Variation-range failures that forced a recompute.")
	s.uncertain = s.reg.Gauge("fluodb_uncertain_rows", "Cached uncertain tuples after the most recent mini-batch.")
	s.batchSeconds = s.reg.Histogram("fluodb_batch_seconds", "Mini-batch processing time.")
	for _, name := range core.PhaseNames {
		s.phaseSeconds = append(s.phaseSeconds, s.reg.Histogram(
			fmt.Sprintf("fluodb_phase_seconds{phase=%q}", name),
			"Per-batch time spent in each G-OLA engine phase."))
	}
	s.detFlips = s.reg.Counter("gola_deterministic_flips_total",
		"Committed deterministic decisions contradicted in flight (recovered by replay).")
	s.violations = s.reg.Counter("gola_invariant_violations_total",
		"Committed decisions still contradicted when the invariant audit ran (bugs).")
	const evictHelp = "Uncertain tuples force-resolved by a budget, by reason: cap = MaxUncertainRows, budget = MaxMemoryBytes degradation rung 3 (degraded precision)."
	s.evictionsCap = s.reg.Counter(`gola_uncertain_evictions{reason="cap"}`, evictHelp)
	s.evictionsBudget = s.reg.Counter(`gola_uncertain_evictions{reason="budget"}`, evictHelp)
	s.relErr = s.reg.Histogram("gola_relative_error",
		"Per-batch mean relative error of audited estimates vs ground truth (unitless).")
	s.ciWidth = s.reg.Histogram("gola_ci_width",
		"Per-batch mean relative 95% CI width of audited estimates (unitless).")
	s.reg.GaugeFunc("gola_ci_coverage",
		"Fraction of 95% CIs containing ground truth in the most recent audited snapshot.",
		func() float64 { return math.Float64frombits(s.coverageBits.Load()) })
	s.hwP50 = s.reg.Histogram(`gola_ci_halfwidth{q="p50"}`,
		"Relative CI half-width quantiles across output cells, one observation per committed mini-batch (unitless).")
	s.hwP90 = s.reg.Histogram(`gola_ci_halfwidth{q="p90"}`,
		"Relative CI half-width quantiles across output cells, one observation per committed mini-batch (unitless).")
	s.hwMax = s.reg.Histogram(`gola_ci_halfwidth{q="max"}`,
		"Relative CI half-width quantiles across output cells, one observation per committed mini-batch (unitless).")
	s.churnIn = s.reg.Counter(`gola_uncertain_churn_total{dir="in"}`,
		"Uncertain-cache tuple flow per direction: in = fresh arrivals, out = reclassified/evicted departures.")
	s.churnOut = s.reg.Counter(`gola_uncertain_churn_total{dir="out"}`,
		"Uncertain-cache tuple flow per direction: in = fresh arrivals, out = reclassified/evicted departures.")
	s.reg.GaugeFunc("gola_rows_per_second",
		"Fact-row throughput of the most recent committed mini-batch.",
		func() float64 { return math.Float64frombits(s.rowsPerSecBits.Load()) })
	s.etaBits.Store(math.Float64bits(math.NaN()))
	s.reg.GaugeFunc(`gola_eta_seconds{epsilon="0.01"}`,
		"Predicted seconds until every CI half-width is within epsilon (1/sqrt(n) fit); NaN until predictable.",
		func() float64 { return math.Float64frombits(s.etaBits.Load()) })
	for c := resource.Category(0); c < resource.NumCategories; c++ {
		s.memPool = append(s.memPool, s.reg.Gauge(
			fmt.Sprintf("gola_mem_bytes{pool=%q}", c.String()),
			"Resource-ledger residency per pool after the most recent mini-batch (bytes)."))
	}
	s.memTotal = s.reg.Gauge("gola_mem_total_bytes",
		"Total resource-ledger residency after the most recent mini-batch (bytes).")
	s.memPeak = s.reg.Gauge("gola_mem_peak_bytes",
		"High-water total ledger residency of the most recent query (bytes).")
	s.degradeRung = s.reg.Gauge("gola_mem_degrade_rung",
		"Highest MaxMemoryBytes degradation rung engaged (0 none, 1 segment cache dropped, 2 prefetch disabled, 3 uncertain eviction).")
	s.gcPauseNS = s.reg.Counter("gola_gc_pause_ns_total",
		"GC pause nanoseconds elapsed during dashboard query mini-batches.")
	s.gcCycles = s.reg.Counter("gola_gc_cycles_total",
		"GC cycles completed during dashboard query mini-batches.")
	s.heapLive = s.reg.Gauge("gola_gc_heap_live_bytes",
		"Live heap bytes at the most recent mini-batch boundary.")
	s.heapGoal = s.reg.Gauge("gola_gc_heap_goal_bytes",
		"GC heap goal bytes at the most recent mini-batch boundary.")
	s.shardCount = s.reg.Gauge("gola_shard_count",
		"Shard engines behind the coordinator for the most recent query (0 = unsharded).")
	s.shardKills = s.reg.Counter("gola_shard_kills_total",
		"Shard engines lost mid-dispatch (died or panicked) across all queries.")
	s.shardRespawns = s.reg.Counter("gola_shard_respawns_total",
		"Replacement shard incarnations spawned by the coordinator's recovery ladder.")
	s.shardRestores = s.reg.Counter("gola_shard_restores_total",
		"Whole-topology respawn + rolling-checkpoint restores (recovery rung 2).")
	s.log = slog.Default()
	return s
}

// SetLogger installs a structured logger for query lifecycle events
// (start, completion, failure). The default is slog.Default().
func (s *Server) SetLogger(l *slog.Logger) {
	if l != nil {
		s.log = l
	}
}

// ActiveQueries reports how many query handlers are currently running —
// the value behind the fluodb_queries_active gauge.
func (s *Server) ActiveQueries() int64 { return s.active.Load() }

// Handler returns the HTTP handler: "/" serves the console page,
// "/query?sql=..." streams snapshots, "/metrics" exposes Prometheus
// text, and "/debug/pprof/" mounts the Go profiler.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/", s.home)
	mux.HandleFunc("/query", s.Query)
	mux.HandleFunc("/metrics", s.metrics)
	mux.HandleFunc("/trace", s.trace)
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}

func (s *Server) home(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/html; charset=utf-8")
	fmt.Fprint(w, homeHTML)
}

func (s *Server) metrics(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	s.reg.WritePrometheus(w)
}

// trace serves the most recent query's span timeline as Chrome
// trace-event JSON — download and load into Perfetto (ui.perfetto.dev)
// or chrome://tracing. Before any query has run it serves an empty
// trace.
func (s *Server) trace(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	w.Header().Set("Content-Disposition", `attachment; filename="fluodb-trace.json"`)
	_ = s.spans.Load().WriteChromeTrace(w)
}

// SnapshotJSON is the wire form of one refinement step.
type SnapshotJSON struct {
	Batch     int                `json:"batch"`
	Total     int                `json:"total"`
	Fraction  float64            `json:"fraction"`
	RSD       float64            `json:"rsd"`
	Uncertain int                `json:"uncertain"`
	Phases    map[string]float64 `json:"phases,omitempty"` // this batch, phase → ms
	Columns   []string           `json:"columns"`
	Rows      [][]CellJS         `json:"rows"`
	Blocks    []BlockJS          `json:"blocks,omitempty"`
	// Accuracy series (present when the query was audited against the
	// batch executor's exact answer): mean/max relative error, mean
	// relative CI width, and the fraction of CIs covering truth.
	Audited  bool    `json:"audited,omitempty"`
	RelErr   float64 `json:"rel_err,omitempty"`
	MaxErr   float64 `json:"max_err,omitempty"`
	CIWidth  float64 `json:"ci_width,omitempty"`
	Coverage float64 `json:"coverage,omitempty"`
	// Degraded names every degradation in force ("budget:..." rungs of
	// the MaxMemoryBytes ladder, "cap:evict" for MaxUncertainRows); the
	// answer is still a valid estimate.
	Degraded string `json:"degraded,omitempty"`
	// Mem is this batch's memory observation (per-pool residency, GC
	// telemetry, budget state), absent until the ledger has observed.
	Mem *core.ResourceUsage `json:"mem,omitempty"`
	Err string              `json:"error,omitempty"`
	// Conv is this batch's convergence-observatory sample (half-width
	// quantiles, churn, throughput, fit); ETASeconds is the 1/√n-fit
	// prediction of seconds until every half-width is within 1%
	// (present only when ETAKnown).
	Conv       *core.ConvergencePoint `json:"conv,omitempty"`
	ETASeconds float64                `json:"eta_s,omitempty"`
	ETAKnown   bool                   `json:"eta_known,omitempty"`
	// Shards is the per-shard progress of a sharded execution (rows
	// folded, steps served, current incarnation per slot); absent when
	// the query runs unsharded.
	Shards []core.ShardStat `json:"shards,omitempty"`
}

// BlockJS profiles one lineage block on the wire. PhaseMS is the
// block's cumulative per-phase cost so far, phase → milliseconds.
type BlockJS struct {
	Kind      string             `json:"kind"`
	Table     string             `json:"table"`
	Groups    int                `json:"groups"`
	Uncertain int                `json:"uncertain"`
	PhaseMS   map[string]float64 `json:"phase_ms,omitempty"`
}

// CellJS is one output cell on the wire.
type CellJS struct {
	V     string  `json:"v"`
	Lo    float64 `json:"lo,omitempty"`
	Hi    float64 `json:"hi,omitempty"`
	HasCI bool    `json:"ci"`
}

// maxRowsPerEvent bounds the payload of one SSE event.
const maxRowsPerEvent = 50

// Query runs one online query, streaming snapshots as SSE events until
// completion or client disconnect.
func (s *Server) Query(w http.ResponseWriter, r *http.Request) {
	sql := r.URL.Query().Get("sql")
	if sql == "" {
		http.Error(w, "missing ?sql=", http.StatusBadRequest)
		return
	}
	flusher, ok := w.(http.Flusher)
	if !ok {
		http.Error(w, "streaming unsupported", http.StatusInternalServerError)
		return
	}
	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-cache")

	send := func(v SnapshotJSON) {
		data, _ := json.Marshal(v)
		fmt.Fprintf(w, "data: %s\n\n", data)
		flusher.Flush()
	}

	q, err := plan.Compile(sql, s.cat)
	if err != nil {
		send(SnapshotJSON{Err: err.Error()})
		return
	}
	// Each query records a span timeline; the latest is served by /trace.
	opt := s.opt
	opt.Spans = otrace.NewTracer(0)
	opt.Spans.SetLabel(sql)
	s.spans.Store(opt.Spans)
	eng, err := core.New(q, s.cat, opt)
	if err != nil {
		send(SnapshotJSON{Err: err.Error()})
		return
	}
	defer eng.Close()
	s.queries.Inc()
	s.active.Add(1)
	defer s.active.Add(-1)
	// Audit every dashboard query against the exact batch answer: the
	// console's tables are laptop-scale, so the oracle costs one batch
	// execution up front and buys live accuracy series. A query the
	// batch executor cannot run (it should not exist) just streams
	// unaudited.
	oracle, oerr := audit.NewOracle(q, s.cat)
	if oerr != nil {
		oracle = nil
	}
	s.log.Info("online query started", "sql", sql, "batches", s.opt.Batches)
	ctx := r.Context()
	var prevRows, prevCapEvict, prevBudgetEvict int64
	var prevRecomputes, prevFlips int
	var prevKills, prevRespawns, prevRestores int64
	for !eng.Done() {
		snap, err := eng.StepContext(ctx)
		if core.IsInterrupted(err) {
			// Client disconnected (or stopped the query): the engine quit
			// at the mini-batch boundary; the bounded-time answer is snap,
			// but there is no one left to send it to.
			s.log.Info("online query interrupted", "sql", sql, "batch", eng.Batch())
			return
		}
		if err != nil {
			s.log.Error("online query failed", "sql", sql, "batch", eng.Batch(), "err", err)
			send(SnapshotJSON{Err: err.Error()})
			return
		}
		m := eng.Metrics()
		s.batches.Inc()
		s.rows.Add(m.RowsProcessed - prevRows)
		s.recomputes.Add(int64(m.Recomputes - prevRecomputes))
		s.detFlips.Add(int64(m.DetFlips - prevFlips))
		capEvict := m.UncertainEvictions - m.BudgetEvictions
		s.evictionsCap.Add(capEvict - prevCapEvict)
		s.evictionsBudget.Add(m.BudgetEvictions - prevBudgetEvict)
		prevRows, prevRecomputes, prevFlips = m.RowsProcessed, m.Recomputes, m.DetFlips
		prevCapEvict, prevBudgetEvict = capEvict, m.BudgetEvictions
		s.shardCount.Set(int64(m.Shards))
		s.shardKills.Add(m.ShardKills - prevKills)
		s.shardRespawns.Add(m.ShardRespawns - prevRespawns)
		s.shardRestores.Add(m.ShardRestores - prevRestores)
		prevKills, prevRespawns, prevRestores = m.ShardKills, m.ShardRespawns, m.ShardRestores
		s.uncertain.Set(int64(snap.UncertainRows))
		s.batchSeconds.Observe(snap.Elapsed)
		for i, d := range snap.Phases.Durations() {
			if d > 0 {
				s.phaseSeconds[i].Observe(d)
			}
		}
		c := snap.Convergence
		if c.HasCI {
			s.hwP50.ObserveValue(c.HalfWidthP50)
			s.hwP90.ObserveValue(c.HalfWidthP90)
			s.hwMax.ObserveValue(c.HalfWidthMax)
		}
		s.churnIn.Add(c.UncertainIn)
		s.churnOut.Add(c.UncertainOut)
		s.rowsPerSecBits.Store(math.Float64bits(c.RowsPerSec))
		if eta, ok := snap.ETA(0.01); ok {
			s.etaBits.Store(math.Float64bits(eta.Seconds()))
		}
		u := snap.Resources
		for i, v := range [...]int64{u.GroupTableBytes, u.WeightArenaBytes,
			u.UncertainBytes, u.PrefetchBytes, u.ColScratchBytes,
			u.SegCacheBytes, u.CheckpointBytes} {
			s.memPool[i].Set(v)
		}
		s.memTotal.Set(u.TotalBytes)
		s.memPeak.Set(u.PeakBytes)
		s.degradeRung.Set(int64(u.DegradeRung))
		s.gcPauseNS.Add(u.GCPauseNS)
		s.gcCycles.Add(u.GCCycles)
		s.heapLive.Set(u.HeapLiveBytes)
		s.heapGoal.Set(u.HeapGoalBytes)
		out := EncodeSnapshot(snap)
		if oracle != nil {
			tp := oracle.Compare(snap)
			out.Audited = true
			out.RelErr = tp.MeanRelErr
			out.MaxErr = tp.MaxRelErr
			out.CIWidth = tp.MeanCIWidth
			if tp.CICells > 0 {
				out.Coverage = float64(tp.Covered) / float64(tp.CICells)
				s.coverageBits.Store(math.Float64bits(out.Coverage))
			}
			s.relErr.ObserveValue(tp.MeanRelErr)
			s.ciWidth.ObserveValue(tp.MeanCIWidth)
		}
		send(out)
	}
	// End-of-run consistency audit: every surviving committed decision
	// must agree with the exact final state.
	s.violations.Add(int64(len(eng.AuditInvariants())))
	m := eng.Metrics()
	s.log.Info("online query completed", "sql", sql,
		"batches", m.Batches, "rows", m.RowsProcessed,
		"recomputes", m.Recomputes, "mem_peak", m.MemPeakBytes,
		"degrade_rung", m.DegradeRung)
}

// EncodeSnapshot converts an engine snapshot to its wire form.
func EncodeSnapshot(snap *core.Snapshot) SnapshotJSON {
	out := SnapshotJSON{
		Batch:     snap.Batch,
		Total:     snap.TotalBatches,
		Fraction:  snap.FractionProcessed,
		RSD:       snap.RSD(),
		Uncertain: snap.UncertainRows,
		Phases:    snap.Phases.Milliseconds(),
		Degraded:  snap.Degraded,
	}
	if u := snap.Resources; u.TotalBytes > 0 || u.PeakBytes > 0 {
		out.Mem = &u
	}
	out.Shards = snap.Shards
	if snap.Convergence.Batch > 0 {
		c := snap.Convergence
		out.Conv = &c
		if eta, ok := snap.ETA(0.01); ok {
			out.ETASeconds = eta.Seconds()
			out.ETAKnown = true
		}
	}
	for _, c := range snap.Schema {
		out.Columns = append(out.Columns, c.Name)
	}
	for _, b := range snap.Blocks {
		out.Blocks = append(out.Blocks, BlockJS{
			Kind: b.Kind, Table: b.Table, Groups: b.Groups, Uncertain: b.Uncertain,
			PhaseMS: b.Phases.Milliseconds(),
		})
	}
	limit := len(snap.Rows)
	if limit > maxRowsPerEvent {
		limit = maxRowsPerEvent
	}
	for _, row := range snap.Rows[:limit] {
		var cells []CellJS
		for _, cell := range row {
			cells = append(cells, CellJS{
				V: cell.Value.String(), Lo: cell.CI.Lo, Hi: cell.CI.Hi, HasCI: cell.HasCI,
			})
		}
		out.Rows = append(out.Rows, cells)
	}
	return out
}

const homeHTML = `<!DOCTYPE html>
<html><head><title>FluoDB console</title><style>
body { font-family: system-ui, sans-serif; margin: 2rem auto; max-width: 960px; }
textarea { width: 100%; height: 7rem; font-family: monospace; font-size: 14px; }
table { border-collapse: collapse; margin-top: 1rem; width: 100%; }
td, th { border: 1px solid #ccc; padding: 4px 8px; text-align: right; font-variant-numeric: tabular-nums; }
th { background: #f4f4f4; }
.ci { color: #888; font-size: 0.85em; }
#status { margin-top: .5rem; color: #555; }
#phases { margin-top: .25rem; color: #777; font-size: 0.85em; font-family: monospace; }
#accuracy { margin-top: .25rem; color: #777; font-size: 0.85em; font-family: monospace; }
#accuracy .spark { color: #36c; letter-spacing: 1px; }
#conv { margin-top: .25rem; color: #777; font-size: 0.85em; font-family: monospace; }
#conv .spark { color: #c63; letter-spacing: 1px; }
#mem { margin-top: .25rem; color: #777; font-size: 0.85em; font-family: monospace; }
#mem .spark { color: #393; letter-spacing: 1px; }
#mem .degrade { color: #c33; }
progress { width: 100%; }
</style></head><body>
<h1>FluoDB — G-OLA online SQL console</h1>
<p>Tables: <code>sessions</code> (Conviva-style) and <code>lineitem</code>/<code>partsupp</code>
(TPC-H-style). Try the paper's SBI query:</p>
<textarea id="sql">SELECT AVG(play_time) FROM sessions
WHERE buffer_time > (SELECT AVG(buffer_time) FROM sessions)</textarea><br>
<button onclick="run()">Run online</button>
<button onclick="stop()">Stop (accept current accuracy)</button>
<div id="status"></div>
<div id="phases"></div>
<div id="accuracy"></div>
<div id="conv"></div>
<div id="mem"></div>
<progress id="prog" value="0" max="1"></progress>
<div id="out"></div>
<p><a href="/metrics">/metrics</a> — Prometheus · <a href="/trace">/trace</a> — Perfetto timeline of the last query · <a href="/debug/pprof/">/debug/pprof/</a> — Go profiler</p>
<script>
let es = null;
let errSeries = [];
let hwSeries = [];
let memSeries = [];
function stop() { if (es) { es.close(); es = null; } }
function fmtB(b) {
  if (b >= 1<<30) return (b/(1<<30)).toFixed(2) + 'GiB';
  if (b >= 1<<20) return (b/(1<<20)).toFixed(2) + 'MiB';
  if (b >= 1<<10) return (b/(1<<10)).toFixed(1) + 'KiB';
  return b + 'B';
}
function sparkline(xs) {
  const bars = '▁▂▃▄▅▆▇█';
  const max = Math.max(...xs, 1e-12);
  return xs.map(x => bars[Math.min(bars.length - 1,
    Math.round((x / max) * (bars.length - 1)))]).join('');
}
function run() {
  stop();
  errSeries = [];
  hwSeries = [];
  memSeries = [];
  document.getElementById('accuracy').textContent = '';
  document.getElementById('conv').textContent = '';
  document.getElementById('mem').textContent = '';
  const sql = document.getElementById('sql').value;
  es = new EventSource('/query?sql=' + encodeURIComponent(sql));
  es.onmessage = (ev) => {
    const s = JSON.parse(ev.data);
    if (s.error) {
      document.getElementById('status').textContent = 'error: ' + s.error;
      stop(); return;
    }
    document.getElementById('prog').value = s.fraction;
    document.getElementById('status').textContent =
      'batch ' + s.batch + '/' + s.total + ' — ' + (100*s.fraction).toFixed(0) +
      '% of data — rsd ' + (100*s.rsd).toFixed(3) + '% — uncertain tuples ' + s.uncertain;
    if (s.phases) {
      const top = Object.entries(s.phases).sort((a, b) => b[1] - a[1]).slice(0, 4)
        .map(([k, v]) => k + ' ' + v.toFixed(1) + 'ms').join(' · ');
      document.getElementById('phases').textContent = top ? 'batch phases: ' + top : '';
    }
    if (s.conv && s.conv.has_ci) {
      hwSeries.push(s.conv.hw_max || 0);
      let line = 'ci half-width <span class="spark">' + sparkline(hwSeries) + '</span> ' +
        'p50 ' + (100*s.conv.hw_p50).toFixed(2) + '% · max ' + (100*s.conv.hw_max).toFixed(2) +
        '% — ' + Math.round(s.conv.rows_per_sec).toLocaleString() + ' rows/s — churn +' +
        s.conv.uncertain_in + '/-' + s.conv.uncertain_out;
      if (s.eta_known) line += ' — eta to 1%: ' + (s.eta_s < 0.0005 ? 'now' : s.eta_s.toFixed(1) + 's');
      document.getElementById('conv').innerHTML = line;
    }
    if (s.mem) {
      memSeries.push(s.mem.total || 0);
      let line = 'mem <span class="spark">' + sparkline(memSeries) + '</span> ' +
        fmtB(s.mem.total) + ' (peak ' + fmtB(s.mem.peak) + ') — tables ' +
        fmtB(s.mem.group_tables) + ' · arenas ' + fmtB(s.mem.weight_arenas) +
        ' · uncertain ' + fmtB(s.mem.uncertain) + ' · segcache ' + fmtB(s.mem.segment_cache);
      if (s.mem.heap_live) line += ' — heap ' + fmtB(s.mem.heap_live);
      if (s.degraded) line += ' <span class="degrade">degraded: ' + s.degraded + '</span>';
      document.getElementById('mem').innerHTML = line;
    }
    if (s.audited) {
      errSeries.push(s.rel_err || 0);
      document.getElementById('accuracy').innerHTML =
        'rel err <span class="spark">' + sparkline(errSeries) + '</span> ' +
        (100*(s.rel_err||0)).toFixed(2) + '% — ci width ' + (100*(s.ci_width||0)).toFixed(2) +
        '% — ci coverage ' + (100*(s.coverage||0)).toFixed(0) + '%';
    }
    let html = '<table><tr>';
    for (const c of s.columns) html += '<th>' + c + '</th>';
    html += '</tr>';
    for (const row of s.rows) {
      html += '<tr>';
      for (const cell of row) {
        html += '<td>' + (isNaN(+cell.v) ? cell.v : (+cell.v).toFixed(3));
        if (cell.ci) html += ' <span class="ci">[' + cell.lo.toFixed(2) + ', ' + cell.hi.toFixed(2) + ']</span>';
        html += '</td>';
      }
      html += '</tr>';
    }
    html += '</table>';
    document.getElementById('out').innerHTML = html;
    if (s.batch === s.total) stop();
  };
  es.onerror = () => stop();
}
</script></body></html>`
