package expr

import (
	"math/rand"
	"testing"

	"fluodb/internal/colstore"
	"fluodb/internal/sqlparser"
	"fluodb/internal/types"
)

// vtEnv is a random table plus its columnar build.
type vtEnv struct {
	schema types.Schema
	rows   []types.Row
	ct     *colstore.Table
}

func vtBuild(seed int64, nrows int) *vtEnv {
	rng := rand.New(rand.NewSource(seed))
	schema := types.NewSchema(
		"b", types.KindBool,
		"i", types.KindInt,
		"f", types.KindFloat,
		"s", types.KindString,
		"j", types.KindInt,
	)
	words := []string{"alpha", "beta", "gamma", "", "delta%x"}
	rows := make([]types.Row, nrows)
	for r := range rows {
		row := make(types.Row, len(schema))
		for c := range schema {
			if rng.Float64() < 0.12 {
				row[c] = types.Null
				continue
			}
			switch schema[c].Type {
			case types.KindBool:
				row[c] = types.NewBool(rng.Intn(2) == 1)
			case types.KindInt:
				row[c] = types.NewInt(rng.Int63n(20) - 10)
			case types.KindFloat:
				f := rng.NormFloat64() * 5
				if rng.Intn(10) == 0 {
					f = 0
				}
				row[c] = types.NewFloat(f)
			case types.KindString:
				row[c] = types.NewString(words[rng.Intn(len(words))])
			}
		}
		rows[r] = row
	}
	return &vtEnv{schema: schema, rows: rows, ct: colstore.Build(schema, rows, 64)}
}

func (e *vtEnv) col(idx int) *Col {
	return &Col{Idx: idx, Name: e.schema[idx].Name, Typ: e.schema[idx].Type}
}

// randCompilable draws an expression from the compilable grammar.
func randCompilable(rng *rand.Rand, e *vtEnv, depth int) Expr {
	cmps := []sqlparser.BinaryOp{
		sqlparser.OpEq, sqlparser.OpNe, sqlparser.OpLt,
		sqlparser.OpLe, sqlparser.OpGt, sqlparser.OpGe,
	}
	if depth <= 0 || rng.Intn(3) == 0 {
		switch rng.Intn(8) {
		case 0: // numeric col vs const
			c := e.col(rng.Intn(3))
			var k types.Value
			switch rng.Intn(4) {
			case 0:
				k = types.NewInt(rng.Int63n(20) - 10)
			case 1:
				k = types.NewFloat(rng.NormFloat64() * 5)
			case 2:
				k = types.NewBool(rng.Intn(2) == 1)
			default:
				k = types.Null
			}
			if rng.Intn(2) == 0 {
				return &Binary{Op: cmps[rng.Intn(len(cmps))], L: c, R: &Const{V: k}}
			}
			return &Binary{Op: cmps[rng.Intn(len(cmps))], L: &Const{V: k}, R: c}
		case 1: // string col vs const (incl. cross-kind and LIKE)
			c := e.col(3)
			ks := []types.Value{
				types.NewString("beta"), types.NewString("a%"),
				types.NewString("%a"), types.NewInt(3), types.Null,
				types.NewString("_e%"),
			}
			k := ks[rng.Intn(len(ks))]
			op := cmps[rng.Intn(len(cmps))]
			if rng.Intn(3) == 0 && k.Kind() == types.KindString {
				op = sqlparser.OpLike
			}
			if rng.Intn(4) == 0 {
				return &Binary{Op: op, L: &Const{V: k}, R: c}
			}
			return &Binary{Op: op, L: c, R: &Const{V: k}}
		case 2: // col vs col (numeric)
			a, b := rng.Intn(3), rng.Intn(3)
			if rng.Intn(2) == 0 {
				b = 4 // second int column
			}
			return &Binary{Op: cmps[rng.Intn(len(cmps))], L: e.col(a), R: e.col(b)}
		case 3:
			return &IsNull{X: e.col(rng.Intn(5)), Negated: rng.Intn(2) == 1}
		case 4: // bare column truthiness
			return e.col(rng.Intn(5))
		case 5:
			return &Const{V: types.NewBool(rng.Intn(2) == 1)}
		case 6: // string IN-list over the dictionary column
			pool := []types.Value{
				types.NewString("beta"), types.NewString("gamma"),
				types.NewString("nope"), types.NewString(""), types.Null,
			}
			n := 1 + rng.Intn(3)
			list := make([]Expr, 0, n)
			for j := 0; j < n; j++ {
				list = append(list, &Const{V: pool[rng.Intn(len(pool))]})
			}
			return &InList{X: e.col(3), List: list, Negated: rng.Intn(2) == 1}
		default: // const vs const
			return &Binary{Op: cmps[rng.Intn(len(cmps))],
				L: &Const{V: types.NewInt(rng.Int63n(4))},
				R: &Const{V: types.NewInt(rng.Int63n(4))}}
		}
	}
	switch rng.Intn(3) {
	case 0:
		return &Not{X: randCompilable(rng, e, depth-1)}
	case 1:
		return &Binary{Op: sqlparser.OpAnd,
			L: randCompilable(rng, e, depth-1), R: randCompilable(rng, e, depth-1)}
	default:
		return &Binary{Op: sqlparser.OpOr,
			L: randCompilable(rng, e, depth-1), R: randCompilable(rng, e, depth-1)}
	}
}

// TestKernelParity: for random compilable trees the kernel's tri bytes
// must equal the row evaluator's three-valued truth on every row.
func TestKernelParity(t *testing.T) {
	for seed := int64(1); seed <= 8; seed++ {
		env := vtBuild(seed, 300)
		rng := rand.New(rand.NewSource(seed * 77))
		for trial := 0; trial < 60; trial++ {
			ex := randCompilable(rng, env, 3)
			k := CompileKernel(ex, env.ct)
			if k == nil {
				t.Fatalf("seed %d trial %d: %s should compile", seed, trial, ex)
			}
			out := make([]uint8, env.ct.SegSize)
			ctx := &Ctx{}
			for si, seg := range env.ct.Segs {
				lo := 0
				if seg.N > 2 && trial%5 == 0 {
					lo = 1 // exercise sub-segment ranges
				}
				k.EvalInto(out, seg, lo, seg.N)
				for i := lo; i < seg.N; i++ {
					ctx.Row = seg.Rows[i]
					want := triOf(ex.Eval(ctx))
					if out[i] != want {
						t.Fatalf("seed %d trial %d seg %d row %d: kernel %d want %d for %s on %v",
							seed, trial, si, i, out[i], want, ex, seg.Rows[i])
					}
				}
			}
		}
	}
}

// TestKernelParityAfterUpdate: kernels compiled against an incrementally
// updated encoding (grown dictionaries, fresh open tail) must still
// agree with the row evaluator on every row — including constants that
// were absent before the update and present after it.
func TestKernelParityAfterUpdate(t *testing.T) {
	for seed := int64(1); seed <= 4; seed++ {
		env := vtBuild(seed, 150)
		rng := rand.New(rand.NewSource(seed * 131))
		// Grow the table: old strings, plus "nope" (absent pre-update) so
		// a recompiled = 'nope' kernel flips from constant-fold to a real
		// code compare.
		rows := env.rows
		for i := 0; i < 90; i++ {
			w := []string{"alpha", "nope", "épo"}[rng.Intn(3)]
			rows = append(rows, types.Row{
				types.NewBool(i%2 == 0), types.NewInt(int64(i % 7)),
				types.NewFloat(float64(i) / 3), types.NewString(w),
				types.NewInt(int64(-i)),
			})
		}
		env.ct.Update(rows)
		env.rows = rows
		exprs := []Expr{
			&Binary{Op: sqlparser.OpEq, L: env.col(3), R: &Const{V: types.NewString("nope")}},
			&Binary{Op: sqlparser.OpNe, L: env.col(3), R: &Const{V: types.NewString("still-absent")}},
			&InList{X: env.col(3), List: []Expr{
				&Const{V: types.NewString("nope")}, &Const{V: types.NewString("beta")}}},
		}
		for trial := 0; trial < 40; trial++ {
			exprs = append(exprs, randCompilable(rng, env, 3))
		}
		out := make([]uint8, env.ct.SegSize)
		ctx := &Ctx{}
		for n, ex := range exprs {
			k := CompileKernel(ex, env.ct)
			if k == nil {
				t.Fatalf("seed %d expr %d: %s should compile", seed, n, ex)
			}
			for si, seg := range env.ct.Segs {
				k.EvalInto(out, seg, 0, seg.N)
				for i := 0; i < seg.N; i++ {
					ctx.Row = seg.Rows[i]
					want := triOf(ex.Eval(ctx))
					if out[i] != want {
						t.Fatalf("seed %d expr %d seg %d row %d: kernel %d want %d for %s",
							seed, n, si, i, out[i], want, ex)
					}
				}
			}
		}
	}
}

// TestKernelNotCompilable: trees outside the subset must return nil
// rather than a wrong kernel.
func TestKernelNotCompilable(t *testing.T) {
	env := vtBuild(1, 10)
	i, f, s := env.col(1), env.col(2), env.col(3)
	cases := []Expr{
		// arithmetic inside a comparison
		&Binary{Op: sqlparser.OpLt,
			L: &Binary{Op: sqlparser.OpAdd, L: i, R: f}, R: &Const{V: types.NewInt(1)}},
		// string col vs string col
		&Binary{Op: sqlparser.OpEq, L: s, R: s},
		// params
		&Binary{Op: sqlparser.OpLt, L: f, R: &ScalarParam{Idx: 0}},
		&SetParam{Idx: 0, X: i},
		// IN list
		&InList{X: i, List: []Expr{&Const{V: types.NewInt(1)}}},
		// CASE
		&Case{},
		// LIKE on a numeric column
		&Binary{Op: sqlparser.OpLike, L: i, R: &Const{V: types.NewString("%")}},
		// out-of-range column
		&Col{Idx: 99},
		// AND with one bad side
		&Binary{Op: sqlparser.OpAnd, L: i, R: &InList{X: i}},
	}
	for n, c := range cases {
		if CompileKernel(c, env.ct) != nil {
			t.Fatalf("case %d (%s): expected nil kernel", n, c)
		}
	}
}

// TestKernelMixedColumn: a column with kind-mismatched values must not
// compile (its banks are absent).
func TestKernelMixedColumn(t *testing.T) {
	schema := types.NewSchema("x", types.KindInt)
	rows := []types.Row{
		{types.NewInt(1)},
		{types.NewString("oops")},
	}
	ct := colstore.Build(schema, rows, 0)
	if !ct.Mixed[0] {
		t.Fatal("column should be mixed")
	}
	c := &Col{Idx: 0, Typ: types.KindInt}
	if CompileKernel(c, ct) != nil {
		t.Fatal("mixed column must not compile")
	}
	if CompileKernel(&Binary{Op: sqlparser.OpLt, L: c, R: &Const{V: types.NewInt(5)}}, ct) != nil {
		t.Fatal("comparison over mixed column must not compile")
	}
}
