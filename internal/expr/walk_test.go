package expr

import (
	"testing"

	"fluodb/internal/sqlparser"
	"fluodb/internal/types"
)

func TestChildrenCoverage(t *testing.T) {
	colE := &Col{Idx: 0}
	constE := &Const{V: types.NewInt(1)}
	cases := []struct {
		e    Expr
		want int
	}{
		{colE, 0},
		{constE, 0},
		{&Binary{Op: sqlparser.OpAdd, L: colE, R: constE}, 2},
		{&Not{X: colE}, 1},
		{&Neg{X: colE}, 1},
		{&IsNull{X: colE}, 1},
		{&InList{X: colE, List: []Expr{constE, constE}}, 3},
		{&SetParam{Idx: 0, X: colE}, 1},
		{&GroupParam{Idx: 0, Keys: []Expr{colE, constE}}, 2},
		{&ScalarParam{Idx: 0}, 0},
		{&Case{
			Whens: []struct{ Cond, Result Expr }{{colE, constE}},
			Else:  constE,
		}, 3},
	}
	for _, c := range cases {
		if got := len(Children(c.e)); got != c.want {
			t.Errorf("Children(%T) = %d, want %d", c.e, got, c.want)
		}
	}
	fn, _ := LookupFunc("ABS")
	call, _ := NewCall(fn, []Expr{colE})
	if got := len(Children(call)); got != 1 {
		t.Errorf("Children(Call) = %d", got)
	}
}

func TestWalkVisitsAll(t *testing.T) {
	e := &Binary{Op: sqlparser.OpAnd,
		L: &Binary{Op: sqlparser.OpGt, L: &Col{Idx: 0}, R: &ScalarParam{Idx: 0}},
		R: &Not{X: &Col{Idx: 1}},
	}
	var count int
	Walk(e, func(Expr) bool { count++; return true })
	if count != 6 {
		t.Errorf("visited %d nodes, want 6", count)
	}
	// pruning: stop at the NOT
	count = 0
	Walk(e, func(x Expr) bool {
		count++
		_, isNot := x.(*Not)
		return !isNot
	})
	if count != 5 {
		t.Errorf("pruned walk visited %d, want 5", count)
	}
	Walk(nil, func(Expr) bool { t.Fatal("nil walk should not visit"); return true })
}

func TestHasParamsVariants(t *testing.T) {
	if HasParams(&Col{Idx: 0}) {
		t.Error("col has no params")
	}
	if !HasParams(&ScalarParam{Idx: 0}) {
		t.Error("scalar param")
	}
	if !HasParams(&Binary{Op: sqlparser.OpGt, L: &Col{Idx: 0}, R: &GroupParam{Idx: 0}}) {
		t.Error("nested group param")
	}
	if !HasParams(&SetParam{Idx: 0, X: &Col{Idx: 0}}) {
		t.Error("set param")
	}
}

func TestSplitConjuncts(t *testing.T) {
	a := &Binary{Op: sqlparser.OpGt, L: &Col{Idx: 0}, R: &Const{V: types.NewInt(1)}}
	b := &Binary{Op: sqlparser.OpLt, L: &Col{Idx: 1}, R: &Const{V: types.NewInt(2)}}
	c := &IsNull{X: &Col{Idx: 2}}
	tree := &Binary{Op: sqlparser.OpAnd,
		L: &Binary{Op: sqlparser.OpAnd, L: a, R: b}, R: c}
	got := SplitConjuncts(tree)
	if len(got) != 3 {
		t.Fatalf("conjuncts = %d", len(got))
	}
	if got[0] != Expr(a) || got[1] != Expr(b) || got[2] != Expr(c) {
		t.Error("conjunct identity/order")
	}
	// OR is not split
	or := &Binary{Op: sqlparser.OpOr, L: a, R: b}
	if len(SplitConjuncts(or)) != 1 {
		t.Error("OR must not split")
	}
	if SplitConjuncts(nil) != nil {
		t.Error("nil input")
	}
}
