// Package expr implements FluoDB's bound (column-resolved) expression
// trees and their evaluation, including SQL three-valued logic, scalar
// built-ins, user-defined functions, and the placeholder nodes through
// which G-OLA injects the running estimates of nested aggregate
// subqueries (see internal/core).
package expr

import (
	"fmt"
	"math"
	"strings"

	"fluodb/internal/sqlparser"
	"fluodb/internal/types"
)

// Ctx carries everything an expression may reference during evaluation.
type Ctx struct {
	// Row is the current input tuple.
	Row types.Row
	// Scalars holds the current values of uncertain scalar placeholders
	// (one per nested aggregate subquery), indexed by ScalarParam.Idx.
	// During online execution the controller rebinds these per snapshot
	// and per bootstrap replica.
	Scalars []types.Value
	// Groups holds per-group lookups for equality-correlated subqueries,
	// indexed by GroupParam.Idx. The key is the correlated column's
	// canonical key string.
	Groups []func(key string) (types.Value, bool)
	// SetsFns holds membership oracles for IN-subquery placeholders,
	// indexed by SetParam.Idx.
	SetsFns []SetLookup
}

// Expr is a bound expression.
type Expr interface {
	// Eval evaluates against the context. It never panics on well-typed
	// plans; type mismatches yield NULL like most permissive engines.
	Eval(ctx *Ctx) types.Value
	// Kind is the statically inferred result type (best effort; KindNull
	// when unknown).
	Kind() types.Kind
	// String renders for EXPLAIN output.
	String() string
}

// --- column and constant ---

// Col references the Idx-th column of the input row.
type Col struct {
	Idx  int
	Name string
	Typ  types.Kind
}

// Eval implements Expr.
func (c *Col) Eval(ctx *Ctx) types.Value {
	if c.Idx < 0 || c.Idx >= len(ctx.Row) {
		return types.Null
	}
	return ctx.Row[c.Idx]
}

// Kind implements Expr.
func (c *Col) Kind() types.Kind { return c.Typ }

// String implements Expr.
func (c *Col) String() string { return fmt.Sprintf("%s#%d", c.Name, c.Idx) }

// Const is a literal value.
type Const struct {
	V types.Value
}

// Eval implements Expr.
func (c *Const) Eval(*Ctx) types.Value { return c.V }

// Kind implements Expr.
func (c *Const) Kind() types.Kind { return c.V.Kind() }

// String implements Expr.
func (c *Const) String() string { return c.V.SQLLiteral() }

// --- uncertain scalar placeholders (the G-OLA hook) ---

// ScalarParam stands for the value of a nested aggregate subquery. The
// planner assigns each scalar subquery an index; the online controller
// binds running estimates (or bootstrap replica values) into Ctx.Scalars.
type ScalarParam struct {
	Idx  int
	Typ  types.Kind
	Desc string // subquery SQL, for EXPLAIN
}

// Eval implements Expr.
func (p *ScalarParam) Eval(ctx *Ctx) types.Value {
	if p.Idx < 0 || p.Idx >= len(ctx.Scalars) {
		return types.Null
	}
	return ctx.Scalars[p.Idx]
}

// Kind implements Expr.
func (p *ScalarParam) Kind() types.Kind { return p.Typ }

// String implements Expr.
func (p *ScalarParam) String() string { return fmt.Sprintf("$%d{%s}", p.Idx, p.Desc) }

// GroupParam stands for the value of an equality-correlated aggregate
// subquery: the inner aggregate grouped by the correlation key. Keys are
// the bound expressions computing the outer side of the correlation
// predicate(s); the lookup maps their canonical key string to the
// group's current aggregate estimate.
type GroupParam struct {
	Idx  int
	Keys []Expr
	Typ  types.Kind
	Desc string
}

// KeyString computes the canonical correlation key of the current row.
func (p *GroupParam) KeyString(ctx *Ctx) string {
	if len(p.Keys) == 1 {
		return types.KeyString1(p.Keys[0].Eval(ctx))
	}
	row := make(types.Row, len(p.Keys))
	cols := make([]int, len(p.Keys))
	for i, k := range p.Keys {
		row[i] = k.Eval(ctx)
		cols[i] = i
	}
	return row.KeyString(cols)
}

// Eval implements Expr.
func (p *GroupParam) Eval(ctx *Ctx) types.Value {
	if p.Idx < 0 || p.Idx >= len(ctx.Groups) || ctx.Groups[p.Idx] == nil {
		return types.Null
	}
	v, ok := ctx.Groups[p.Idx](p.KeyString(ctx))
	if !ok {
		return types.Null
	}
	return v
}

// Kind implements Expr.
func (p *GroupParam) Kind() types.Kind { return p.Typ }

// String implements Expr.
func (p *GroupParam) String() string {
	parts := make([]string, len(p.Keys))
	for i, k := range p.Keys {
		parts[i] = k.String()
	}
	return fmt.Sprintf("$%d[%s]{%s}", p.Idx, strings.Join(parts, ","), p.Desc)
}

// --- operators ---

// Binary applies a binary operator with SQL NULL semantics.
type Binary struct {
	Op   sqlparser.BinaryOp
	L, R Expr
}

// Eval implements Expr.
func (b *Binary) Eval(ctx *Ctx) types.Value {
	switch b.Op {
	case sqlparser.OpAnd:
		return evalAnd(b.L.Eval(ctx), func() types.Value { return b.R.Eval(ctx) })
	case sqlparser.OpOr:
		return evalOr(b.L.Eval(ctx), func() types.Value { return b.R.Eval(ctx) })
	}
	l := b.L.Eval(ctx)
	r := b.R.Eval(ctx)
	if l.IsNull() || r.IsNull() {
		return types.Null
	}
	switch b.Op {
	case sqlparser.OpAdd, sqlparser.OpSub, sqlparser.OpMul, sqlparser.OpDiv, sqlparser.OpMod:
		return evalArith(b.Op, l, r)
	case sqlparser.OpEq:
		return types.NewBool(types.Compare(l, r) == 0)
	case sqlparser.OpNe:
		return types.NewBool(types.Compare(l, r) != 0)
	case sqlparser.OpLt:
		return types.NewBool(types.Compare(l, r) < 0)
	case sqlparser.OpLe:
		return types.NewBool(types.Compare(l, r) <= 0)
	case sqlparser.OpGt:
		return types.NewBool(types.Compare(l, r) > 0)
	case sqlparser.OpGe:
		return types.NewBool(types.Compare(l, r) >= 0)
	case sqlparser.OpLike:
		if l.Kind() != types.KindString || r.Kind() != types.KindString {
			return types.Null
		}
		return types.NewBool(likeMatch(l.Str(), r.Str()))
	}
	return types.Null
}

// Kind implements Expr.
func (b *Binary) Kind() types.Kind {
	switch b.Op {
	case sqlparser.OpAdd, sqlparser.OpSub, sqlparser.OpMul, sqlparser.OpMod:
		if b.L.Kind() == types.KindInt && b.R.Kind() == types.KindInt {
			return types.KindInt
		}
		return types.KindFloat
	case sqlparser.OpDiv:
		return types.KindFloat
	default:
		return types.KindBool
	}
}

// String implements Expr.
func (b *Binary) String() string {
	return "(" + b.L.String() + " " + b.Op.String() + " " + b.R.String() + ")"
}

func evalArith(op sqlparser.BinaryOp, l, r types.Value) types.Value {
	if l.Kind() == types.KindInt && r.Kind() == types.KindInt && op != sqlparser.OpDiv {
		a, b := l.Int(), r.Int()
		switch op {
		case sqlparser.OpAdd:
			return types.NewInt(a + b)
		case sqlparser.OpSub:
			return types.NewInt(a - b)
		case sqlparser.OpMul:
			return types.NewInt(a * b)
		case sqlparser.OpMod:
			if b == 0 {
				return types.Null
			}
			return types.NewInt(a % b)
		}
	}
	a, ok1 := l.AsFloat()
	b, ok2 := r.AsFloat()
	if !ok1 || !ok2 {
		return types.Null
	}
	switch op {
	case sqlparser.OpAdd:
		return types.NewFloat(a + b)
	case sqlparser.OpSub:
		return types.NewFloat(a - b)
	case sqlparser.OpMul:
		return types.NewFloat(a * b)
	case sqlparser.OpDiv:
		if b == 0 {
			return types.Null
		}
		return types.NewFloat(a / b)
	case sqlparser.OpMod:
		if b == 0 {
			return types.Null
		}
		return types.NewFloat(math.Mod(a, b))
	}
	return types.Null
}

// evalAnd implements Kleene AND with short circuit.
func evalAnd(l types.Value, rf func() types.Value) types.Value {
	if !l.IsNull() && !l.Truthy() {
		return types.NewBool(false)
	}
	r := rf()
	if !r.IsNull() && !r.Truthy() {
		return types.NewBool(false)
	}
	if l.IsNull() || r.IsNull() {
		return types.Null
	}
	return types.NewBool(true)
}

// evalOr implements Kleene OR with short circuit.
func evalOr(l types.Value, rf func() types.Value) types.Value {
	if !l.IsNull() && l.Truthy() {
		return types.NewBool(true)
	}
	r := rf()
	if !r.IsNull() && r.Truthy() {
		return types.NewBool(true)
	}
	if l.IsNull() || r.IsNull() {
		return types.Null
	}
	return types.NewBool(false)
}

// Not negates a boolean with NULL propagation.
type Not struct{ X Expr }

// Eval implements Expr.
func (n *Not) Eval(ctx *Ctx) types.Value {
	v := n.X.Eval(ctx)
	if v.IsNull() {
		return types.Null
	}
	return types.NewBool(!v.Truthy())
}

// Kind implements Expr.
func (n *Not) Kind() types.Kind { return types.KindBool }

// String implements Expr.
func (n *Not) String() string { return "(NOT " + n.X.String() + ")" }

// Neg is unary minus.
type Neg struct{ X Expr }

// Eval implements Expr.
func (n *Neg) Eval(ctx *Ctx) types.Value {
	v := n.X.Eval(ctx)
	switch v.Kind() {
	case types.KindInt:
		return types.NewInt(-v.Int())
	case types.KindFloat:
		return types.NewFloat(-v.Float())
	default:
		return types.Null
	}
}

// Kind implements Expr.
func (n *Neg) Kind() types.Kind { return n.X.Kind() }

// String implements Expr.
func (n *Neg) String() string { return "(-" + n.X.String() + ")" }

// IsNull is `x IS [NOT] NULL`.
type IsNull struct {
	X       Expr
	Negated bool
}

// Eval implements Expr.
func (i *IsNull) Eval(ctx *Ctx) types.Value {
	isNull := i.X.Eval(ctx).IsNull()
	if i.Negated {
		return types.NewBool(!isNull)
	}
	return types.NewBool(isNull)
}

// Kind implements Expr.
func (i *IsNull) Kind() types.Kind { return types.KindBool }

// String implements Expr.
func (i *IsNull) String() string {
	if i.Negated {
		return "(" + i.X.String() + " IS NOT NULL)"
	}
	return "(" + i.X.String() + " IS NULL)"
}

// InList is `x [NOT] IN (v1, v2, ...)` with SQL NULL semantics.
type InList struct {
	X       Expr
	List    []Expr
	Negated bool
}

// Eval implements Expr.
func (in *InList) Eval(ctx *Ctx) types.Value {
	x := in.X.Eval(ctx)
	if x.IsNull() {
		return types.Null
	}
	sawNull := false
	found := false
	for _, e := range in.List {
		v := e.Eval(ctx)
		if v.IsNull() {
			sawNull = true
			continue
		}
		if types.Equal(x, v) {
			found = true
			break
		}
	}
	switch {
	case found:
		return types.NewBool(!in.Negated)
	case sawNull:
		return types.Null
	default:
		return types.NewBool(in.Negated)
	}
}

// Kind implements Expr.
func (in *InList) Kind() types.Kind { return types.KindBool }

// String implements Expr.
func (in *InList) String() string {
	parts := make([]string, len(in.List))
	for i, e := range in.List {
		parts[i] = e.String()
	}
	not := ""
	if in.Negated {
		not = " NOT"
	}
	return "(" + in.X.String() + not + " IN (" + strings.Join(parts, ", ") + "))"
}

// SetParam is `x [NOT] IN (subquery)` where the subquery's result set is
// bound at runtime: the lookup classifies a key as member / non-member.
// This is G-OLA's uncertain set-membership hook (TPC-H Q18/Q20 style).
type SetParam struct {
	Idx     int
	X       Expr
	Negated bool
	Desc    string
}

// SetLookup answers membership queries for a SetParam.
type SetLookup func(key string) bool

// Eval implements Expr. The membership function is found in Ctx.Sets.
func (s *SetParam) Eval(ctx *Ctx) types.Value {
	x := s.X.Eval(ctx)
	if x.IsNull() {
		return types.Null
	}
	if s.Idx < 0 || s.Idx >= len(ctx.SetsFns) || ctx.SetsFns[s.Idx] == nil {
		return types.Null
	}
	member := ctx.SetsFns[s.Idx](types.KeyString1(x))
	return types.NewBool(member != s.Negated)
}

// Kind implements Expr.
func (s *SetParam) Kind() types.Kind { return types.KindBool }

// String implements Expr.
func (s *SetParam) String() string {
	not := ""
	if s.Negated {
		not = " NOT"
	}
	return fmt.Sprintf("(%s%s IN $set%d{%s})", s.X, not, s.Idx, s.Desc)
}

// Case is CASE WHEN ... THEN ... ELSE ... END (searched form; the binder
// rewrites the operand form into equality comparisons).
type Case struct {
	Whens []struct {
		Cond, Result Expr
	}
	Else Expr // may be nil
}

// Eval implements Expr.
func (c *Case) Eval(ctx *Ctx) types.Value {
	for _, w := range c.Whens {
		if w.Cond.Eval(ctx).Truthy() {
			return w.Result.Eval(ctx)
		}
	}
	if c.Else != nil {
		return c.Else.Eval(ctx)
	}
	return types.Null
}

// Kind implements Expr.
func (c *Case) Kind() types.Kind {
	if len(c.Whens) > 0 {
		return c.Whens[0].Result.Kind()
	}
	return types.KindNull
}

// String implements Expr.
func (c *Case) String() string {
	var b strings.Builder
	b.WriteString("CASE")
	for _, w := range c.Whens {
		b.WriteString(" WHEN ")
		b.WriteString(w.Cond.String())
		b.WriteString(" THEN ")
		b.WriteString(w.Result.String())
	}
	if c.Else != nil {
		b.WriteString(" ELSE ")
		b.WriteString(c.Else.String())
	}
	b.WriteString(" END")
	return b.String()
}

// likeMatch implements SQL LIKE with % (any run) and _ (any one char),
// matching bytes (ASCII data in our workloads).
func likeMatch(s, pattern string) bool {
	// dynamic programming over pattern/state
	return likeRec(s, pattern)
}

func likeRec(s, p string) bool {
	for len(p) > 0 {
		switch p[0] {
		case '%':
			// collapse consecutive %
			for len(p) > 0 && p[0] == '%' {
				p = p[1:]
			}
			if len(p) == 0 {
				return true
			}
			for i := 0; i <= len(s); i++ {
				if likeRec(s[i:], p) {
					return true
				}
			}
			return false
		case '_':
			if len(s) == 0 {
				return false
			}
			s, p = s[1:], p[1:]
		default:
			if len(s) == 0 || s[0] != p[0] {
				return false
			}
			s, p = s[1:], p[1:]
		}
	}
	return len(s) == 0
}
