package expr

import (
	"math"
	"testing"
	"testing/quick"

	"fluodb/internal/sqlparser"
	"fluodb/internal/types"
)

func ev(t *testing.T, e Expr, row types.Row) types.Value {
	t.Helper()
	return e.Eval(&Ctx{Row: row})
}

func bin(op sqlparser.BinaryOp, l, r Expr) Expr { return &Binary{Op: op, L: l, R: r} }
func c(v types.Value) Expr                      { return &Const{V: v} }
func ci(i int64) Expr                           { return c(types.NewInt(i)) }
func cf(f float64) Expr                         { return c(types.NewFloat(f)) }
func cs(s string) Expr                          { return c(types.NewString(s)) }

func TestColAndConst(t *testing.T) {
	col := &Col{Idx: 1, Name: "b", Typ: types.KindInt}
	row := types.Row{types.NewInt(1), types.NewInt(7)}
	if got := ev(t, col, row); got.Int() != 7 {
		t.Errorf("col = %v", got)
	}
	if got := ev(t, &Col{Idx: 9}, row); !got.IsNull() {
		t.Errorf("out-of-range col = %v", got)
	}
	if got := ev(t, ci(3), nil); got.Int() != 3 {
		t.Errorf("const = %v", got)
	}
}

func TestArithmeticIntAndFloat(t *testing.T) {
	if got := ev(t, bin(sqlparser.OpAdd, ci(2), ci(3)), nil); got.Kind() != types.KindInt || got.Int() != 5 {
		t.Errorf("2+3 = %v (%v)", got, got.Kind())
	}
	if got := ev(t, bin(sqlparser.OpDiv, ci(7), ci(2)), nil); got.Kind() != types.KindFloat || got.Float() != 3.5 {
		t.Errorf("7/2 = %v", got)
	}
	if got := ev(t, bin(sqlparser.OpMul, cf(1.5), ci(4)), nil); got.Float() != 6 {
		t.Errorf("1.5*4 = %v", got)
	}
	if got := ev(t, bin(sqlparser.OpMod, ci(7), ci(3)), nil); got.Int() != 1 {
		t.Errorf("7%%3 = %v", got)
	}
	if got := ev(t, bin(sqlparser.OpDiv, ci(1), ci(0)), nil); !got.IsNull() {
		t.Errorf("1/0 = %v, want NULL", got)
	}
	if got := ev(t, bin(sqlparser.OpMod, ci(1), ci(0)), nil); !got.IsNull() {
		t.Errorf("1%%0 = %v, want NULL", got)
	}
}

func TestComparisonNullPropagation(t *testing.T) {
	if got := ev(t, bin(sqlparser.OpGt, c(types.Null), ci(1)), nil); !got.IsNull() {
		t.Errorf("NULL > 1 = %v", got)
	}
	if got := ev(t, bin(sqlparser.OpEq, ci(1), cf(1.0)), nil); !got.Bool() {
		t.Error("1 = 1.0 should be true")
	}
	if got := ev(t, bin(sqlparser.OpNe, cs("a"), cs("b")), nil); !got.Bool() {
		t.Error("'a' <> 'b' should be true")
	}
}

func TestKleeneLogic(t *testing.T) {
	T, F, N := c(types.NewBool(true)), c(types.NewBool(false)), c(types.Null)
	cases := []struct {
		e    Expr
		want string
	}{
		{bin(sqlparser.OpAnd, T, T), "true"},
		{bin(sqlparser.OpAnd, T, N), "NULL"},
		{bin(sqlparser.OpAnd, F, N), "false"},
		{bin(sqlparser.OpAnd, N, F), "false"},
		{bin(sqlparser.OpOr, F, N), "NULL"},
		{bin(sqlparser.OpOr, T, N), "true"},
		{bin(sqlparser.OpOr, N, T), "true"},
		{bin(sqlparser.OpOr, F, F), "false"},
	}
	for _, cse := range cases {
		if got := ev(t, cse.e, nil).String(); got != cse.want {
			t.Errorf("%s = %s, want %s", cse.e, got, cse.want)
		}
	}
}

func TestNotNegIsNull(t *testing.T) {
	if got := ev(t, &Not{X: c(types.NewBool(false))}, nil); !got.Bool() {
		t.Error("NOT false")
	}
	if got := ev(t, &Not{X: c(types.Null)}, nil); !got.IsNull() {
		t.Error("NOT NULL should be NULL")
	}
	if got := ev(t, &Neg{X: ci(5)}, nil); got.Int() != -5 {
		t.Error("-5")
	}
	if got := ev(t, &Neg{X: cs("x")}, nil); !got.IsNull() {
		t.Error("-string should be NULL")
	}
	if got := ev(t, &IsNull{X: c(types.Null)}, nil); !got.Bool() {
		t.Error("NULL IS NULL")
	}
	if got := ev(t, &IsNull{X: ci(1), Negated: true}, nil); !got.Bool() {
		t.Error("1 IS NOT NULL")
	}
}

func TestInListSemantics(t *testing.T) {
	in := &InList{X: ci(2), List: []Expr{ci(1), ci(2)}}
	if got := ev(t, in, nil); !got.Bool() {
		t.Error("2 IN (1,2)")
	}
	// not found but NULL present → NULL
	in2 := &InList{X: ci(3), List: []Expr{ci(1), c(types.Null)}}
	if got := ev(t, in2, nil); !got.IsNull() {
		t.Errorf("3 IN (1,NULL) = %v, want NULL", got)
	}
	in3 := &InList{X: ci(3), List: []Expr{ci(1)}, Negated: true}
	if got := ev(t, in3, nil); !got.Bool() {
		t.Error("3 NOT IN (1)")
	}
}

func TestScalarParamBinding(t *testing.T) {
	p := &ScalarParam{Idx: 0, Typ: types.KindFloat, Desc: "AVG(x)"}
	e := bin(sqlparser.OpGt, ci(10), p)
	got := e.Eval(&Ctx{Scalars: []types.Value{types.NewFloat(5)}})
	if !got.Bool() {
		t.Error("10 > $0(=5)")
	}
	// rebind (what snapshots and bootstrap replicas do)
	got = e.Eval(&Ctx{Scalars: []types.Value{types.NewFloat(50)}})
	if got.Bool() {
		t.Error("10 > $0(=50) should be false")
	}
	if got := e.Eval(&Ctx{}); !got.IsNull() {
		t.Error("unbound scalar param should evaluate to NULL")
	}
}

func TestGroupParamBinding(t *testing.T) {
	key := &Col{Idx: 0, Name: "partkey", Typ: types.KindInt}
	p := &GroupParam{Idx: 0, Keys: []Expr{key}, Typ: types.KindFloat, Desc: "AVG(q) BY partkey"}
	lookup := func(k string) (types.Value, bool) {
		if k == (types.Row{types.NewInt(7)}).KeyString([]int{0}) {
			return types.NewFloat(3.5), true
		}
		return types.Null, false
	}
	ctx := &Ctx{Row: types.Row{types.NewInt(7)}, Groups: []func(string) (types.Value, bool){lookup}}
	if got := p.Eval(ctx); got.Float() != 3.5 {
		t.Errorf("group param = %v", got)
	}
	ctx.Row = types.Row{types.NewInt(8)}
	if got := p.Eval(ctx); !got.IsNull() {
		t.Errorf("missing group = %v, want NULL", got)
	}
}

func TestSetParamBinding(t *testing.T) {
	s := &SetParam{Idx: 0, X: &Col{Idx: 0, Name: "k", Typ: types.KindInt}}
	member := func(k string) bool {
		return k == (types.Row{types.NewInt(1)}).KeyString([]int{0})
	}
	ctx := &Ctx{Row: types.Row{types.NewInt(1)}, SetsFns: []SetLookup{member}}
	if !s.Eval(ctx).Bool() {
		t.Error("1 IN set")
	}
	ctx.Row = types.Row{types.NewInt(2)}
	if s.Eval(ctx).Bool() {
		t.Error("2 IN set should be false")
	}
	neg := &SetParam{Idx: 0, X: &Col{Idx: 0}, Negated: true}
	if !neg.Eval(ctx).Bool() {
		t.Error("2 NOT IN set should be true")
	}
	ctx.Row = types.Row{types.Null}
	if !s.Eval(ctx).IsNull() {
		t.Error("NULL IN set should be NULL")
	}
}

func TestCaseExpr(t *testing.T) {
	cse := &Case{
		Whens: []struct{ Cond, Result Expr }{
			{bin(sqlparser.OpGt, &Col{Idx: 0}, ci(10)), cs("big")},
			{bin(sqlparser.OpGt, &Col{Idx: 0}, ci(0)), cs("small")},
		},
		Else: cs("neg"),
	}
	if got := ev(t, cse, types.Row{types.NewInt(20)}); got.Str() != "big" {
		t.Errorf("case(20) = %v", got)
	}
	if got := ev(t, cse, types.Row{types.NewInt(5)}); got.Str() != "small" {
		t.Errorf("case(5) = %v", got)
	}
	if got := ev(t, cse, types.Row{types.NewInt(-1)}); got.Str() != "neg" {
		t.Errorf("case(-1) = %v", got)
	}
	noElse := &Case{Whens: cse.Whens}
	if got := ev(t, noElse, types.Row{types.NewInt(-1)}); !got.IsNull() {
		t.Errorf("case without else = %v", got)
	}
}

func TestLikeMatch(t *testing.T) {
	cases := []struct {
		s, p string
		want bool
	}{
		{"hello", "hello", true},
		{"hello", "h%", true},
		{"hello", "%llo", true},
		{"hello", "h_llo", true},
		{"hello", "h_ll", false},
		{"hello", "%", true},
		{"", "%", true},
		{"", "_", false},
		{"abc", "%b%", true},
		{"abc", "%%c", true},
		{"mississippi", "%iss%ppi", true},
	}
	for _, cse := range cases {
		e := bin(sqlparser.OpLike, cs(cse.s), cs(cse.p))
		if got := ev(t, e, nil).Bool(); got != cse.want {
			t.Errorf("%q LIKE %q = %v, want %v", cse.s, cse.p, got, cse.want)
		}
	}
	// LIKE on non-strings is NULL
	if got := ev(t, bin(sqlparser.OpLike, ci(1), cs("%")), nil); !got.IsNull() {
		t.Error("1 LIKE '%' should be NULL")
	}
}

func TestBuiltins(t *testing.T) {
	call := func(name string, args ...Expr) types.Value {
		f, ok := LookupFunc(name)
		if !ok {
			t.Fatalf("missing builtin %s", name)
		}
		e, err := NewCall(f, args)
		if err != nil {
			t.Fatalf("NewCall(%s): %v", name, err)
		}
		return e.Eval(&Ctx{})
	}
	if got := call("ABS", ci(-7)); got.Int() != 7 {
		t.Errorf("ABS = %v", got)
	}
	if got := call("FLOOR", cf(3.9)); got.Int() != 3 {
		t.Errorf("FLOOR = %v", got)
	}
	if got := call("CEIL", cf(3.1)); got.Int() != 4 {
		t.Errorf("CEIL = %v", got)
	}
	if got := call("ROUND", cf(3.14159), ci(2)); got.Float() != 3.14 {
		t.Errorf("ROUND = %v", got)
	}
	if got := call("SQRT", cf(9)); got.Float() != 3 {
		t.Errorf("SQRT = %v", got)
	}
	if got := call("SQRT", cf(-1)); !got.IsNull() {
		t.Errorf("SQRT(-1) = %v, want NULL", got)
	}
	if got := call("POW", cf(2), cf(10)); got.Float() != 1024 {
		t.Errorf("POW = %v", got)
	}
	if got := call("LEAST", ci(3), ci(1), ci(2)); got.Int() != 1 {
		t.Errorf("LEAST = %v", got)
	}
	if got := call("GREATEST", ci(3), ci(1)); got.Int() != 3 {
		t.Errorf("GREATEST = %v", got)
	}
	if got := call("COALESCE", c(types.Null), ci(5)); got.Int() != 5 {
		t.Errorf("COALESCE = %v", got)
	}
	if got := call("NULLIF", ci(5), ci(5)); !got.IsNull() {
		t.Errorf("NULLIF = %v", got)
	}
	if got := call("IF", c(types.NewBool(true)), ci(1), ci(2)); got.Int() != 1 {
		t.Errorf("IF = %v", got)
	}
	if got := call("LENGTH", cs("abc")); got.Int() != 3 {
		t.Errorf("LENGTH = %v", got)
	}
	if got := call("UPPER", cs("abc")); got.Str() != "ABC" {
		t.Errorf("UPPER = %v", got)
	}
	if got := call("SUBSTR", cs("hello"), ci(2), ci(3)); got.Str() != "ell" {
		t.Errorf("SUBSTR = %v", got)
	}
	if got := call("CONCAT", cs("a"), ci(1)); got.Str() != "a1" {
		t.Errorf("CONCAT = %v", got)
	}
	if got := call("SIGN", cf(-2.5)); got.Int() != -1 {
		t.Errorf("SIGN = %v", got)
	}
	if got := call("MOD", ci(10), ci(3)); got.Int() != 1 {
		t.Errorf("MOD = %v", got)
	}
}

func TestCallArityChecked(t *testing.T) {
	f, _ := LookupFunc("SQRT")
	if _, err := NewCall(f, []Expr{ci(1), ci(2)}); err == nil {
		t.Error("SQRT/2 should be rejected")
	}
	if _, err := NewCall(f, nil); err == nil {
		t.Error("SQRT/0 should be rejected")
	}
}

func TestRegisterUDF(t *testing.T) {
	RegisterFunc(&ScalarFunc{
		Name: "DOUBLE_IT", MinArgs: 1, MaxArgs: 1,
		Eval: func(args []types.Value) types.Value {
			x, ok := args[0].AsFloat()
			if !ok {
				return types.Null
			}
			return types.NewFloat(2 * x)
		},
	})
	f, ok := LookupFunc("double_it")
	if !ok {
		t.Fatal("UDF not registered")
	}
	e, _ := NewCall(f, []Expr{cf(21)})
	if got := e.Eval(&Ctx{}); got.Float() != 42 {
		t.Errorf("UDF = %v", got)
	}
}

func TestArithPropertyQuick(t *testing.T) {
	// Property: for finite floats, (a+b)-b ≈ a under our evaluator.
	f := func(a, b float64) bool {
		if math.IsNaN(a) || math.IsNaN(b) || math.IsInf(a, 0) || math.IsInf(b, 0) {
			return true
		}
		a, b = math.Mod(a, 1e6), math.Mod(b, 1e6)
		e := bin(sqlparser.OpSub, bin(sqlparser.OpAdd, cf(a), cf(b)), cf(b))
		got, ok := e.Eval(&Ctx{}).AsFloat()
		return ok && math.Abs(got-a) <= 1e-6*(1+math.Abs(a))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestComparisonTrichotomyQuick(t *testing.T) {
	f := func(a, b int64) bool {
		lt := ev(nil2(t), bin(sqlparser.OpLt, ci(a), ci(b)), nil).Bool()
		eq := ev(nil2(t), bin(sqlparser.OpEq, ci(a), ci(b)), nil).Bool()
		gt := ev(nil2(t), bin(sqlparser.OpGt, ci(a), ci(b)), nil).Bool()
		n := 0
		for _, x := range []bool{lt, eq, gt} {
			if x {
				n++
			}
		}
		return n == 1
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// nil2 adapts t for helpers in quick closures.
func nil2(t *testing.T) *testing.T { return t }

func TestStringRendering(t *testing.T) {
	e := bin(sqlparser.OpGt, &Col{Idx: 0, Name: "a"}, &ScalarParam{Idx: 1, Desc: "AVG(b)"})
	s := e.String()
	if s != "(a#0 > $1{AVG(b)})" {
		t.Errorf("String = %q", s)
	}
}

func TestStringBuiltins(t *testing.T) {
	call := func(name string, args ...Expr) types.Value {
		fn, ok := LookupFunc(name)
		if !ok {
			t.Fatalf("missing builtin %s", name)
		}
		e, err := NewCall(fn, args)
		if err != nil {
			t.Fatal(err)
		}
		return e.Eval(&Ctx{})
	}
	if got := call("TRIM", cs("  hi  ")); got.Str() != "hi" {
		t.Errorf("TRIM = %q", got)
	}
	if got := call("REPLACE", cs("a-b-c"), cs("-"), cs("+")); got.Str() != "a+b+c" {
		t.Errorf("REPLACE = %q", got)
	}
	if got := call("STARTS_WITH", cs("Brand#11"), cs("Brand")); !got.Bool() {
		t.Error("STARTS_WITH")
	}
	if got := call("CONTAINS", cs("mississippi"), cs("ssis")); !got.Bool() {
		t.Error("CONTAINS")
	}
	if got := call("TRUNC", cf(-2.9)); got.Int() != -2 {
		t.Errorf("TRUNC = %v", got)
	}
	if got := call("TRIM", ci(5)); !got.IsNull() {
		t.Error("TRIM of non-string should be NULL")
	}
}

func TestConversionBuiltins(t *testing.T) {
	call := func(name string, arg Expr) types.Value {
		fn, _ := LookupFunc(name)
		e, _ := NewCall(fn, []Expr{arg})
		return e.Eval(&Ctx{})
	}
	if got := call("TO_INT", cs(" 42 ")); got.Int() != 42 {
		t.Errorf("TO_INT string = %v", got)
	}
	if got := call("TO_INT", cf(3.9)); got.Int() != 3 {
		t.Errorf("TO_INT float = %v", got)
	}
	if got := call("TO_INT", cs("zap")); !got.IsNull() {
		t.Errorf("TO_INT garbage = %v", got)
	}
	if got := call("TO_FLOAT", cs("2.5")); got.Float() != 2.5 {
		t.Errorf("TO_FLOAT = %v", got)
	}
	if got := call("TO_STRING", ci(7)); got.Str() != "7" {
		t.Errorf("TO_STRING = %v", got)
	}
	if got := call("TO_STRING", c(types.Null)); !got.IsNull() {
		t.Errorf("TO_STRING NULL = %v", got)
	}
}
