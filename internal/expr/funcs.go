package expr

import (
	"fmt"
	"math"
	"strings"
	"sync"

	"fluodb/internal/types"
)

// ScalarFunc is a scalar (per-row) function. UDFs implement this shape.
type ScalarFunc struct {
	Name string
	// MinArgs/MaxArgs bound the arity; MaxArgs < 0 means variadic.
	MinArgs, MaxArgs int
	// Kind infers the result type from argument types (may be nil,
	// defaulting to KindFloat).
	KindFn func(args []types.Kind) types.Kind
	// Eval computes the result. Args are already evaluated.
	Eval func(args []types.Value) types.Value
}

var (
	fnMu   sync.RWMutex
	fnsReg = map[string]*ScalarFunc{}
)

// RegisterFunc adds a scalar function (or UDF), replacing any previous
// function of the same case-insensitive name.
func RegisterFunc(f *ScalarFunc) {
	fnMu.Lock()
	defer fnMu.Unlock()
	fnsReg[strings.ToUpper(f.Name)] = f
}

// LookupFunc resolves a scalar function by name.
func LookupFunc(name string) (*ScalarFunc, bool) {
	fnMu.RLock()
	defer fnMu.RUnlock()
	f, ok := fnsReg[strings.ToUpper(name)]
	return f, ok
}

// Call is a bound scalar function application.
type Call struct {
	Fn   *ScalarFunc
	Args []Expr
}

// NewCall builds a Call after arity checking.
func NewCall(fn *ScalarFunc, args []Expr) (*Call, error) {
	if len(args) < fn.MinArgs || (fn.MaxArgs >= 0 && len(args) > fn.MaxArgs) {
		return nil, fmt.Errorf("expr: %s expects %d..%d arguments, got %d",
			fn.Name, fn.MinArgs, fn.MaxArgs, len(args))
	}
	return &Call{Fn: fn, Args: args}, nil
}

// Eval implements Expr.
func (c *Call) Eval(ctx *Ctx) types.Value {
	vals := make([]types.Value, len(c.Args))
	for i, a := range c.Args {
		vals[i] = a.Eval(ctx)
	}
	return c.Fn.Eval(vals)
}

// Kind implements Expr.
func (c *Call) Kind() types.Kind {
	if c.Fn.KindFn == nil {
		return types.KindFloat
	}
	kinds := make([]types.Kind, len(c.Args))
	for i, a := range c.Args {
		kinds[i] = a.Kind()
	}
	return c.Fn.KindFn(kinds)
}

// String implements Expr.
func (c *Call) String() string {
	parts := make([]string, len(c.Args))
	for i, a := range c.Args {
		parts[i] = a.String()
	}
	return c.Fn.Name + "(" + strings.Join(parts, ", ") + ")"
}

func firstKind(args []types.Kind) types.Kind {
	if len(args) > 0 {
		return args[0]
	}
	return types.KindNull
}

func floatKind([]types.Kind) types.Kind  { return types.KindFloat }
func intKind([]types.Kind) types.Kind    { return types.KindInt }
func stringKind([]types.Kind) types.Kind { return types.KindString }

// unaryMath registers a float→float builtin.
func unaryMath(name string, f func(float64) float64) {
	RegisterFunc(&ScalarFunc{
		Name: name, MinArgs: 1, MaxArgs: 1, KindFn: floatKind,
		Eval: func(args []types.Value) types.Value {
			x, ok := args[0].AsFloat()
			if !ok {
				return types.Null
			}
			r := f(x)
			if math.IsNaN(r) || math.IsInf(r, 0) {
				return types.Null
			}
			return types.NewFloat(r)
		},
	})
}

func init() {
	RegisterFunc(&ScalarFunc{
		Name: "ABS", MinArgs: 1, MaxArgs: 1, KindFn: firstKind,
		Eval: func(args []types.Value) types.Value {
			switch args[0].Kind() {
			case types.KindInt:
				v := args[0].Int()
				if v < 0 {
					v = -v
				}
				return types.NewInt(v)
			case types.KindFloat:
				return types.NewFloat(math.Abs(args[0].Float()))
			default:
				return types.Null
			}
		},
	})
	RegisterFunc(&ScalarFunc{
		Name: "FLOOR", MinArgs: 1, MaxArgs: 1, KindFn: intKind,
		Eval: func(args []types.Value) types.Value {
			x, ok := args[0].AsFloat()
			if !ok {
				return types.Null
			}
			return types.NewInt(int64(math.Floor(x)))
		},
	})
	RegisterFunc(&ScalarFunc{
		Name: "CEIL", MinArgs: 1, MaxArgs: 1, KindFn: intKind,
		Eval: func(args []types.Value) types.Value {
			x, ok := args[0].AsFloat()
			if !ok {
				return types.Null
			}
			return types.NewInt(int64(math.Ceil(x)))
		},
	})
	RegisterFunc(&ScalarFunc{
		Name: "ROUND", MinArgs: 1, MaxArgs: 2, KindFn: floatKind,
		Eval: func(args []types.Value) types.Value {
			x, ok := args[0].AsFloat()
			if !ok {
				return types.Null
			}
			digits := 0.0
			if len(args) == 2 {
				d, ok := args[1].AsFloat()
				if !ok {
					return types.Null
				}
				digits = d
			}
			p := math.Pow(10, digits)
			return types.NewFloat(math.Round(x*p) / p)
		},
	})
	unaryMath("SQRT", math.Sqrt)
	unaryMath("LN", math.Log)
	unaryMath("LOG", math.Log10)
	unaryMath("LOG2", math.Log2)
	unaryMath("EXP", math.Exp)
	RegisterFunc(&ScalarFunc{
		Name: "POW", MinArgs: 2, MaxArgs: 2, KindFn: floatKind,
		Eval: func(args []types.Value) types.Value {
			x, ok1 := args[0].AsFloat()
			y, ok2 := args[1].AsFloat()
			if !ok1 || !ok2 {
				return types.Null
			}
			return types.NewFloat(math.Pow(x, y))
		},
	})
	RegisterFunc(&ScalarFunc{
		Name: "MOD", MinArgs: 2, MaxArgs: 2, KindFn: firstKind,
		Eval: func(args []types.Value) types.Value {
			a, ok1 := args[0].AsInt()
			b, ok2 := args[1].AsInt()
			if !ok1 || !ok2 || b == 0 {
				return types.Null
			}
			return types.NewInt(a % b)
		},
	})
	minmax := func(name string, min bool) {
		RegisterFunc(&ScalarFunc{
			Name: name, MinArgs: 1, MaxArgs: -1, KindFn: firstKind,
			Eval: func(args []types.Value) types.Value {
				best := types.Null
				for _, a := range args {
					if a.IsNull() {
						return types.Null
					}
					if best.IsNull() {
						best = a
						continue
					}
					c := types.Compare(a, best)
					if (min && c < 0) || (!min && c > 0) {
						best = a
					}
				}
				return best
			},
		})
	}
	minmax("LEAST", true)
	minmax("GREATEST", false)
	RegisterFunc(&ScalarFunc{
		Name: "COALESCE", MinArgs: 1, MaxArgs: -1, KindFn: firstKind,
		Eval: func(args []types.Value) types.Value {
			for _, a := range args {
				if !a.IsNull() {
					return a
				}
			}
			return types.Null
		},
	})
	RegisterFunc(&ScalarFunc{
		Name: "NULLIF", MinArgs: 2, MaxArgs: 2, KindFn: firstKind,
		Eval: func(args []types.Value) types.Value {
			if !args[0].IsNull() && !args[1].IsNull() && types.Equal(args[0], args[1]) {
				return types.Null
			}
			return args[0]
		},
	})
	RegisterFunc(&ScalarFunc{
		Name: "IF", MinArgs: 3, MaxArgs: 3,
		KindFn: func(args []types.Kind) types.Kind {
			if len(args) == 3 {
				return args[1]
			}
			return types.KindNull
		},
		Eval: func(args []types.Value) types.Value {
			if args[0].Truthy() {
				return args[1]
			}
			return args[2]
		},
	})
	RegisterFunc(&ScalarFunc{
		Name: "LENGTH", MinArgs: 1, MaxArgs: 1, KindFn: intKind,
		Eval: func(args []types.Value) types.Value {
			if args[0].Kind() != types.KindString {
				return types.Null
			}
			return types.NewInt(int64(len(args[0].Str())))
		},
	})
	RegisterFunc(&ScalarFunc{
		Name: "UPPER", MinArgs: 1, MaxArgs: 1, KindFn: stringKind,
		Eval: func(args []types.Value) types.Value {
			if args[0].Kind() != types.KindString {
				return types.Null
			}
			return types.NewString(strings.ToUpper(args[0].Str()))
		},
	})
	RegisterFunc(&ScalarFunc{
		Name: "LOWER", MinArgs: 1, MaxArgs: 1, KindFn: stringKind,
		Eval: func(args []types.Value) types.Value {
			if args[0].Kind() != types.KindString {
				return types.Null
			}
			return types.NewString(strings.ToLower(args[0].Str()))
		},
	})
	RegisterFunc(&ScalarFunc{
		Name: "SUBSTR", MinArgs: 2, MaxArgs: 3, KindFn: stringKind,
		Eval: func(args []types.Value) types.Value {
			if args[0].Kind() != types.KindString {
				return types.Null
			}
			s := args[0].Str()
			start, ok := args[1].AsInt()
			if !ok {
				return types.Null
			}
			// SQL SUBSTR is 1-based.
			if start < 1 {
				start = 1
			}
			if int(start) > len(s) {
				return types.NewString("")
			}
			out := s[start-1:]
			if len(args) == 3 {
				n, ok := args[2].AsInt()
				if !ok || n < 0 {
					return types.Null
				}
				if int(n) < len(out) {
					out = out[:n]
				}
			}
			return types.NewString(out)
		},
	})
	RegisterFunc(&ScalarFunc{
		Name: "CONCAT", MinArgs: 1, MaxArgs: -1, KindFn: stringKind,
		Eval: func(args []types.Value) types.Value {
			var b strings.Builder
			for _, a := range args {
				if a.IsNull() {
					continue
				}
				b.WriteString(a.String())
			}
			return types.NewString(b.String())
		},
	})
	RegisterFunc(&ScalarFunc{
		Name: "SIGN", MinArgs: 1, MaxArgs: 1, KindFn: intKind,
		Eval: func(args []types.Value) types.Value {
			x, ok := args[0].AsFloat()
			if !ok {
				return types.Null
			}
			switch {
			case x > 0:
				return types.NewInt(1)
			case x < 0:
				return types.NewInt(-1)
			default:
				return types.NewInt(0)
			}
		},
	})
}

func init() {
	RegisterFunc(&ScalarFunc{
		Name: "TRIM", MinArgs: 1, MaxArgs: 1, KindFn: stringKind,
		Eval: func(args []types.Value) types.Value {
			if args[0].Kind() != types.KindString {
				return types.Null
			}
			return types.NewString(strings.TrimSpace(args[0].Str()))
		},
	})
	RegisterFunc(&ScalarFunc{
		Name: "REPLACE", MinArgs: 3, MaxArgs: 3, KindFn: stringKind,
		Eval: func(args []types.Value) types.Value {
			for _, a := range args {
				if a.Kind() != types.KindString {
					return types.Null
				}
			}
			return types.NewString(strings.ReplaceAll(args[0].Str(), args[1].Str(), args[2].Str()))
		},
	})
	RegisterFunc(&ScalarFunc{
		Name: "STARTS_WITH", MinArgs: 2, MaxArgs: 2,
		KindFn: func([]types.Kind) types.Kind { return types.KindBool },
		Eval: func(args []types.Value) types.Value {
			if args[0].Kind() != types.KindString || args[1].Kind() != types.KindString {
				return types.Null
			}
			return types.NewBool(strings.HasPrefix(args[0].Str(), args[1].Str()))
		},
	})
	RegisterFunc(&ScalarFunc{
		Name: "CONTAINS", MinArgs: 2, MaxArgs: 2,
		KindFn: func([]types.Kind) types.Kind { return types.KindBool },
		Eval: func(args []types.Value) types.Value {
			if args[0].Kind() != types.KindString || args[1].Kind() != types.KindString {
				return types.Null
			}
			return types.NewBool(strings.Contains(args[0].Str(), args[1].Str()))
		},
	})
	RegisterFunc(&ScalarFunc{
		Name: "TRUNC", MinArgs: 1, MaxArgs: 1, KindFn: intKind,
		Eval: func(args []types.Value) types.Value {
			f, ok := args[0].AsFloat()
			if !ok {
				return types.Null
			}
			return types.NewInt(int64(math.Trunc(f)))
		},
	})
}

func init() {
	RegisterFunc(&ScalarFunc{
		Name: "TO_INT", MinArgs: 1, MaxArgs: 1, KindFn: intKind,
		Eval: func(args []types.Value) types.Value {
			switch args[0].Kind() {
			case types.KindString:
				v, err := types.ParseValue(strings.TrimSpace(args[0].Str()), types.KindInt)
				if err != nil {
					return types.Null
				}
				return v
			default:
				if i, ok := args[0].AsInt(); ok {
					return types.NewInt(i)
				}
				return types.Null
			}
		},
	})
	RegisterFunc(&ScalarFunc{
		Name: "TO_FLOAT", MinArgs: 1, MaxArgs: 1, KindFn: floatKind,
		Eval: func(args []types.Value) types.Value {
			switch args[0].Kind() {
			case types.KindString:
				v, err := types.ParseValue(strings.TrimSpace(args[0].Str()), types.KindFloat)
				if err != nil {
					return types.Null
				}
				return v
			default:
				if f, ok := args[0].AsFloat(); ok {
					return types.NewFloat(f)
				}
				return types.Null
			}
		},
	})
	RegisterFunc(&ScalarFunc{
		Name: "TO_STRING", MinArgs: 1, MaxArgs: 1, KindFn: stringKind,
		Eval: func(args []types.Value) types.Value {
			if args[0].IsNull() {
				return types.Null
			}
			return types.NewString(args[0].String())
		},
	})
}
