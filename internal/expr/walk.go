package expr

import "fluodb/internal/sqlparser"

// Children returns the direct sub-expressions of e (empty for leaves).
func Children(e Expr) []Expr {
	switch x := e.(type) {
	case *Binary:
		return []Expr{x.L, x.R}
	case *Not:
		return []Expr{x.X}
	case *Neg:
		return []Expr{x.X}
	case *IsNull:
		return []Expr{x.X}
	case *InList:
		out := make([]Expr, 0, len(x.List)+1)
		out = append(out, x.X)
		out = append(out, x.List...)
		return out
	case *SetParam:
		return []Expr{x.X}
	case *GroupParam:
		return append([]Expr(nil), x.Keys...)
	case *Case:
		var out []Expr
		for _, w := range x.Whens {
			out = append(out, w.Cond, w.Result)
		}
		if x.Else != nil {
			out = append(out, x.Else)
		}
		return out
	case *Call:
		return append([]Expr(nil), x.Args...)
	default:
		return nil
	}
}

// Walk visits e and its sub-expressions pre-order. If f returns false the
// node's children are skipped.
func Walk(e Expr, f func(Expr) bool) {
	if e == nil {
		return
	}
	if !f(e) {
		return
	}
	for _, c := range Children(e) {
		Walk(c, f)
	}
}

// HasParams reports whether the expression references any uncertain
// placeholder (scalar, group, or set param) — i.e. whether G-OLA must
// classify tuples evaluated through it into uncertain/deterministic
// sets.
func HasParams(e Expr) bool {
	found := false
	Walk(e, func(x Expr) bool {
		switch x.(type) {
		case *ScalarParam, *GroupParam, *SetParam:
			found = true
			return false
		}
		return !found
	})
	return found
}

// SplitConjuncts flattens top-level ANDs into a list of conjuncts.
func SplitConjuncts(e Expr) []Expr {
	if e == nil {
		return nil
	}
	if b, ok := e.(*Binary); ok && b.Op == sqlparser.OpAnd {
		return append(SplitConjuncts(b.L), SplitConjuncts(b.R)...)
	}
	return []Expr{e}
}
