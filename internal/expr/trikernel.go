// Tri-state classification kernels: the vectorized counterpart of the
// engine's interval-semantics predicate evaluation (core's evalTri).
// Where Kernel answers certain predicates, TriKernel answers predicates
// that reference still-converging nested aggregates: each row's byte is
// TriTrue when the predicate holds for every value the uncertain
// parameters may still take, TriFalse when it fails for every value,
// and TriNull ("uncertain") otherwise — byte-for-byte the engine's
// triTrue/triFalse/triUnknown encoding.
//
// The parameter sides of comparisons are row-free by construction
// (Slots): the caller evaluates each slot expression's variation range
// once per mini-batch and injects it via SetRange, so the per-row loop
// touches only typed banks. The compilable subset mirrors evalTri
// exactly:
//
//   - a param-free subtree collapses to its point truth (NULL → false),
//     lowered through compileVec;
//   - AND/OR/NOT combine with the same Kleene tables (Unknown and NULL
//     share byte 2, and the tables coincide);
//   - comparisons evaluate interval sides: a constant folds at compile,
//     a clean column is a per-row point (NULL → range-NULL; a string
//     column is range-unknown when non-NULL, matching the row path's
//     AsFloat failure), and a param side becomes an injected slot;
//   - any other param-bearing node the row path answers with a
//     row-independent triUnknown compiles to a constant; SetParam and
//     row-dependent param sides refuse compilation (nil) and the caller
//     stays on the per-row path.
package expr

import (
	"fluodb/internal/colstore"
	"fluodb/internal/sqlparser"
	"fluodb/internal/types"
)

// Slot range statuses, mirroring the engine's rangeStatus values.
const (
	RangeOK      uint8 = 0 // [Lo, Hi] is a meaningful bound
	RangeNull    uint8 = 1 // the value is SQL NULL (comparisons are false)
	RangeUnknown uint8 = 2 // unbounded → comparison outcome is uncertain
)

// slotRange is one injected variation range.
type slotRange struct {
	lo, hi float64
	status uint8
}

// triState carries the per-batch injected slot ranges, shared by
// reference with every compiled comparison node.
type triState struct{ ranges []slotRange }

// TriKernel is a compiled segment-at-a-time tri-state classifier. Like
// Kernel it owns scratch and injected state, so compile one per worker.
type TriKernel struct {
	root  vecNode
	slots []Expr
	st    *triState
}

// CompileTriKernel lowers e into a tri-state kernel over ct's layout, or
// returns nil if any part of e falls outside the compilable subset.
func CompileTriKernel(e Expr, ct *colstore.Table) *TriKernel {
	if ct == nil {
		return nil
	}
	k := &TriKernel{st: &triState{}}
	n := k.compileTri(e, ct)
	if n == nil {
		return nil
	}
	k.root = n
	return k
}

// Slots returns the row-free parameter-side expressions whose variation
// ranges the caller must inject (SetRange, same index) before EvalInto.
// Slot expressions contain no column reads, so evaluating their ranges
// needs no row.
func (k *TriKernel) Slots() []Expr { return k.slots }

// SetRange injects slot's variation range for the current mini-batch.
func (k *TriKernel) SetRange(slot int, lo, hi float64, status uint8) {
	k.st.ranges[slot] = slotRange{lo: lo, hi: hi, status: status}
}

// EvalInto fills out[lo:hi] (segment-local indexes) with the tri-state
// classification of each row of seg under the injected slot ranges.
func (k *TriKernel) EvalInto(out []uint8, seg *colstore.Segment, lo, hi int) {
	k.root.eval(out, seg, lo, hi)
}

func (k *TriKernel) compileTri(e Expr, ct *colstore.Table) vecNode {
	if !HasParams(e) {
		// Param-free subtree: the row path evaluates it pointwise and
		// maps NULL to false (triFromBool of Truthy).
		inner := compileVec(e, ct)
		if inner == nil {
			return nil
		}
		return &triCollapse{x: inner}
	}
	switch x := e.(type) {
	case *Binary:
		switch x.Op {
		case sqlparser.OpAnd, sqlparser.OpOr:
			l := k.compileTri(x.L, ct)
			if l == nil {
				return nil
			}
			r := k.compileTri(x.R, ct)
			if r == nil {
				return nil
			}
			// The Kleene tables with Unknown on byte 2 are exactly
			// evalTri's And/Or combination; evaluating both sides is
			// observationally identical because operands are pure.
			tmp := make([]uint8, ct.SegSize)
			if x.Op == sqlparser.OpAnd {
				return &vecLogic{l: l, r: r, tmp: tmp, table: &kleeneAnd}
			}
			return &vecLogic{l: l, r: r, tmp: tmp, table: &kleeneOr}
		case sqlparser.OpEq, sqlparser.OpNe, sqlparser.OpLt, sqlparser.OpLe,
			sqlparser.OpGt, sqlparser.OpGe:
			return k.compileTriCmp(x, ct)
		default:
			// Param-bearing arithmetic/LIKE as a predicate: the row path
			// answers triUnknown for every row.
			return vecConst{tri: TriNull}
		}
	case *Not:
		inner := k.compileTri(x.X, ct)
		if inner == nil {
			return nil
		}
		return &vecNot{x: inner} // notTable keeps Unknown unknown
	case *SetParam:
		// Row-dependent membership (NULL subject → false, else a per-key
		// lookup): stays on the per-row path.
		return nil
	default:
		// Any other param-bearing node (bare ScalarParam, IN-list or
		// CASE with params, ...): evalTri's default is triUnknown,
		// row-independently.
		return vecConst{tri: TriNull}
	}
}

// Comparison side kinds. A side is evaluated to a variation range per
// row (columns), per batch (slots), or once at compile (constants).
const (
	sideConst  uint8 = iota // fixed range, precomputed
	sideSlot                // injected via SetRange
	sideIntCol              // int/bool bank point; NULL → RangeNull
	sideFltCol              // float bank point; NULL → RangeNull
	sideStrCol              // NULL → RangeNull, else RangeUnknown
)

type cmpSide struct {
	kind   uint8
	col    int
	slot   int
	lo, hi float64
	status uint8
}

// rangeAt evaluates the side for segment-local row i.
func (s *cmpSide) rangeAt(seg *colstore.Segment, i int, st *triState) (lo, hi float64, status uint8) {
	switch s.kind {
	case sideConst:
		return s.lo, s.hi, s.status
	case sideSlot:
		r := &st.ranges[s.slot]
		return r.lo, r.hi, r.status
	case sideIntCol:
		c := &seg.Cols[s.col]
		if c.Null(i) {
			return 0, 0, RangeNull
		}
		v := float64(c.Ints[i])
		return v, v, RangeOK
	case sideFltCol:
		c := &seg.Cols[s.col]
		if c.Null(i) {
			return 0, 0, RangeNull
		}
		v := c.Floats[i]
		return v, v, RangeOK
	default: // sideStrCol
		if seg.Cols[s.col].Null(i) {
			return 0, 0, RangeNull
		}
		return 0, 0, RangeUnknown
	}
}

func (k *TriKernel) compileTriCmp(b *Binary, ct *colstore.Table) vecNode {
	l, ok := k.makeSide(b.L, ct)
	if !ok {
		return nil
	}
	r, ok := k.makeSide(b.R, ct)
	if !ok {
		return nil
	}
	return &triCmp{op: b.Op, l: l, r: r, st: k.st}
}

// makeSide lowers one comparison operand. Param-free operands must be
// plain constants or clean columns (the row path evaluates them
// pointwise; anything wider stays on the per-row path); param-bearing
// operands must be row-free and become injected slots.
func (k *TriKernel) makeSide(e Expr, ct *colstore.Table) (cmpSide, bool) {
	if !HasParams(e) {
		switch x := e.(type) {
		case *Const:
			if x.V.IsNull() {
				return cmpSide{kind: sideConst, status: RangeNull}, true
			}
			if f, ok := x.V.AsFloat(); ok {
				return cmpSide{kind: sideConst, lo: f, hi: f, status: RangeOK}, true
			}
			return cmpSide{kind: sideConst, status: RangeUnknown}, true
		case *Col:
			if !cleanCol(ct, x.Idx) {
				return cmpSide{}, false
			}
			switch ct.Schema[x.Idx].Type {
			case types.KindInt, types.KindBool:
				return cmpSide{kind: sideIntCol, col: x.Idx}, true
			case types.KindFloat:
				return cmpSide{kind: sideFltCol, col: x.Idx}, true
			case types.KindString:
				return cmpSide{kind: sideStrCol, col: x.Idx}, true
			default:
				// Declared-NULL column: every stored value is NULL.
				return cmpSide{kind: sideConst, status: RangeNull}, true
			}
		default:
			return cmpSide{}, false
		}
	}
	// Param side: row-free means its variation range is constant across
	// the batch (columns and group params read the row).
	rowFree := true
	Walk(e, func(n Expr) bool {
		switch n.(type) {
		case *Col, *GroupParam:
			rowFree = false
		}
		return rowFree
	})
	if !rowFree {
		return cmpSide{}, false
	}
	slot := len(k.slots)
	k.slots = append(k.slots, e)
	k.st.ranges = append(k.st.ranges, slotRange{status: RangeUnknown})
	return cmpSide{kind: sideSlot, slot: slot}, true
}

// triCmp compares two variation ranges per row, replicating the
// engine's evalCompareTri decision table: a NULL side is false (SQL),
// an unbounded side is uncertain, and each operator commits true/false
// only when the ranges cannot overlap the other outcome.
type triCmp struct {
	op   sqlparser.BinaryOp
	l, r cmpSide
	st   *triState
}

func (n *triCmp) eval(out []uint8, seg *colstore.Segment, lo, hi int) {
	st := n.st
	for i := lo; i < hi; i++ {
		alo, ahi, ast := n.l.rangeAt(seg, i, st)
		blo, bhi, bst := n.r.rangeAt(seg, i, st)
		if ast == RangeNull || bst == RangeNull {
			out[i] = TriFalse
			continue
		}
		if ast != RangeOK || bst != RangeOK {
			out[i] = TriNull
			continue
		}
		v := TriNull
		switch n.op {
		case sqlparser.OpGt:
			if alo > bhi {
				v = TriTrue
			} else if ahi <= blo {
				v = TriFalse
			}
		case sqlparser.OpGe:
			if alo >= bhi {
				v = TriTrue
			} else if ahi < blo {
				v = TriFalse
			}
		case sqlparser.OpLt:
			if ahi < blo {
				v = TriTrue
			} else if alo >= bhi {
				v = TriFalse
			}
		case sqlparser.OpLe:
			if ahi <= blo {
				v = TriTrue
			} else if alo > bhi {
				v = TriFalse
			}
		case sqlparser.OpEq:
			if !(alo <= bhi && blo <= ahi) {
				v = TriFalse
			} else if alo == ahi && blo == bhi && alo == blo {
				v = TriTrue
			}
		case sqlparser.OpNe:
			if !(alo <= bhi && blo <= ahi) {
				v = TriTrue
			} else if alo == ahi && blo == bhi && alo == blo {
				v = TriFalse
			}
		}
		out[i] = v
	}
}

// triCollapse maps a param-free subtree's NULL to false: the row path
// evaluates such subtrees pointwise as triFromBool(Truthy()).
type triCollapse struct{ x vecNode }

func (n *triCollapse) eval(out []uint8, seg *colstore.Segment, lo, hi int) {
	n.x.eval(out, seg, lo, hi)
	for i := lo; i < hi; i++ {
		if out[i] == TriNull {
			out[i] = TriFalse
		}
	}
}
