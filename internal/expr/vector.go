// Vectorized predicate kernels: a compilable subtree of a bound
// expression (Col/Const leaves; comparison, LIKE-on-dictionary, AND/OR,
// NOT, IS NULL) is lowered once into a small tree of typed loop nodes
// that evaluate a whole colstore segment range into a tri-state byte
// vector — no per-row interface dispatch, no Value boxing.
//
// The contract that matters is bit-identity with the row path: for every
// row, the kernel's tri byte equals the three-valued truth of
// Expr.Eval on that row (TriTrue ⟺ Eval(...).Truthy(), TriNull ⟺ NULL,
// TriFalse otherwise). AND/OR evaluate both sides instead of
// short-circuiting, which is observationally identical here because
// compilable subtrees are pure. Anything outside the compilable subset —
// params, arithmetic inside comparisons, CASE, IN-lists over non-string
// columns, mixed-kind columns — makes CompileKernel return nil and the
// caller stays on the per-row path.
//
// String predicates run over dictionary codes, never string bytes:
// `=`/`!=` against a string constant resolve the constant to its
// table-wide code once at compile (a string absent from the dictionary
// is stored nowhere, so the comparison folds to a constant vector with
// NULLs preserved), and IN-lists/LIKE/ordered compares precompute a
// per-code tri table by running the row evaluator once per distinct
// string.
package expr

import (
	"fluodb/internal/colstore"
	"fluodb/internal/sqlparser"
	"fluodb/internal/types"
)

// Tri-state bytes produced by kernels. The encoding matches the
// engine's classify logic: a row passes a certain WHERE iff its byte is
// TriTrue.
const (
	TriFalse uint8 = 0 // non-NULL, not truthy
	TriTrue  uint8 = 1 // truthy
	TriNull  uint8 = 2 // SQL NULL
)

// Kernel is a compiled segment-at-a-time predicate evaluator. A Kernel
// owns scratch buffers for its inner AND/OR nodes and is therefore NOT
// safe for concurrent use: compile one per worker (compilation is cheap
// and pure).
type Kernel struct {
	root vecNode
}

// CompileKernel lowers e into a vector kernel over ct's layout, or
// returns nil if any part of e falls outside the compilable subset.
func CompileKernel(e Expr, ct *colstore.Table) *Kernel {
	if ct == nil {
		return nil
	}
	n := compileVec(e, ct)
	if n == nil {
		return nil
	}
	return &Kernel{root: n}
}

// EvalInto fills out[lo:hi] (segment-local indexes) with the tri-state
// truth of the compiled expression for each row of seg.
func (k *Kernel) EvalInto(out []uint8, seg *colstore.Segment, lo, hi int) {
	k.root.eval(out, seg, lo, hi)
}

type vecNode interface {
	eval(out []uint8, seg *colstore.Segment, lo, hi int)
}

// triOf maps a scalar value to its tri byte (the single definition the
// whole kernel layer shares with the row path's Truthy semantics).
func triOf(v types.Value) uint8 {
	if v.IsNull() {
		return TriNull
	}
	if v.Truthy() {
		return TriTrue
	}
	return TriFalse
}

func cleanCol(ct *colstore.Table, idx int) bool {
	return idx >= 0 && idx < len(ct.Schema) && !ct.Mixed[idx]
}

func compileVec(e Expr, ct *colstore.Table) vecNode {
	switch x := e.(type) {
	case *Const:
		return vecConst{tri: triOf(x.V)}
	case *Col:
		if !cleanCol(ct, x.Idx) {
			return nil
		}
		return &vecTruthy{col: x.Idx, kind: ct.Schema[x.Idx].Type}
	case *Not:
		inner := compileVec(x.X, ct)
		if inner == nil {
			return nil
		}
		return &vecNot{x: inner}
	case *IsNull:
		c, ok := x.X.(*Col)
		if !ok || !cleanCol(ct, c.Idx) {
			return nil
		}
		return &vecIsNull{col: c.Idx, negated: x.Negated}
	case *Binary:
		switch x.Op {
		case sqlparser.OpAnd, sqlparser.OpOr:
			l := compileVec(x.L, ct)
			if l == nil {
				return nil
			}
			r := compileVec(x.R, ct)
			if r == nil {
				return nil
			}
			tmp := make([]uint8, ct.SegSize)
			if x.Op == sqlparser.OpAnd {
				return &vecLogic{l: l, r: r, tmp: tmp, table: &kleeneAnd}
			}
			return &vecLogic{l: l, r: r, tmp: tmp, table: &kleeneOr}
		default:
			return compileCmp(x, ct)
		}
	case *InList:
		// IN over a dictionary column with an all-constant list: a
		// per-code tri table probed through the row evaluator inherits
		// the exact IN semantics (found → !Negated, any NULL element →
		// NULL, else Negated; NULL subject → NULL via the bitmap branch).
		c, ok := x.X.(*Col)
		if !ok || !cleanCol(ct, c.Idx) || ct.Schema[c.Idx].Type != types.KindString {
			return nil
		}
		for _, it := range x.List {
			if _, isConst := it.(*Const); !isConst {
				return nil
			}
		}
		dict := ct.Dicts[c.Idx]
		table := make([]uint8, len(dict.Vals))
		ctx := &Ctx{}
		for code, s := range dict.Vals {
			probe := &InList{X: &Const{V: types.NewString(s)}, List: x.List, Negated: x.Negated}
			table[code] = triOf(probe.Eval(ctx))
		}
		return &vecStrTable{col: c.Idx, table: table}
	}
	return nil
}

// opTable maps a comparison operator to its truth table indexed by the
// types.Compare sign (0: less, 1: equal, 2: greater).
func opTable(op sqlparser.BinaryOp) ([3]uint8, bool) {
	switch op {
	case sqlparser.OpEq:
		return [3]uint8{0, 1, 0}, true
	case sqlparser.OpNe:
		return [3]uint8{1, 0, 1}, true
	case sqlparser.OpLt:
		return [3]uint8{1, 0, 0}, true
	case sqlparser.OpLe:
		return [3]uint8{1, 1, 0}, true
	case sqlparser.OpGt:
		return [3]uint8{0, 0, 1}, true
	case sqlparser.OpGe:
		return [3]uint8{0, 1, 1}, true
	default:
		return [3]uint8{}, false
	}
}

// flipOp reverses a comparison so `const op col` becomes `col op' const`.
func flipOp(op sqlparser.BinaryOp) sqlparser.BinaryOp {
	switch op {
	case sqlparser.OpLt:
		return sqlparser.OpGt
	case sqlparser.OpLe:
		return sqlparser.OpGe
	case sqlparser.OpGt:
		return sqlparser.OpLt
	case sqlparser.OpGe:
		return sqlparser.OpLe
	default: // Eq, Ne are symmetric
		return op
	}
}

func numericKind(k types.Kind) bool {
	return k == types.KindInt || k == types.KindFloat || k == types.KindBool
}

func compileCmp(b *Binary, ct *colstore.Table) vecNode {
	_, isCmp := opTable(b.Op)
	if !isCmp && b.Op != sqlparser.OpLike {
		return nil
	}

	lc, lIsCol := b.L.(*Col)
	rc, rIsCol := b.R.(*Col)
	lk, lIsConst := b.L.(*Const)
	rk, rIsConst := b.R.(*Const)

	// Both constant: fold to a single tri byte via the row evaluator, so
	// the semantics are its by construction.
	if lIsConst && rIsConst {
		return vecConst{tri: triOf(b.Eval(&Ctx{}))}
	}

	// NULL constant operand: every comparison (and LIKE) yields NULL.
	if (lIsConst && lk.V.IsNull()) || (rIsConst && rk.V.IsNull()) {
		return vecConst{tri: TriNull}
	}

	// Dictionary equality fast path: string `=`/`!=` string constant
	// compares codes, not bytes — the constant resolves to its table-wide
	// code once at compile, and code equality is string equality because
	// codes are unique per distinct string. A constant absent from the
	// dictionary can match no stored row, so the comparison folds to a
	// constant vector (NULL rows still yield NULL).
	if b.Op == sqlparser.OpEq || b.Op == sqlparser.OpNe {
		neg := b.Op == sqlparser.OpNe
		if lIsCol && rIsConst && cleanCol(ct, lc.Idx) &&
			ct.Schema[lc.Idx].Type == types.KindString && rk.V.Kind() == types.KindString {
			return codeEqNode(ct, lc.Idx, rk.V.Str(), neg)
		}
		if rIsCol && lIsConst && cleanCol(ct, rc.Idx) &&
			ct.Schema[rc.Idx].Type == types.KindString && lk.V.Kind() == types.KindString {
			return codeEqNode(ct, rc.Idx, lk.V.Str(), neg)
		}
	}

	// A clean dictionary-encoded string column against a constant: build
	// a per-code truth table by running the row evaluator once per
	// distinct string. This inherits every corner of the row semantics —
	// lexicographic compares, LIKE patterns, mixed-kind tag ordering —
	// because the table *is* the row evaluator's answer.
	if lIsCol && rIsConst && cleanCol(ct, lc.Idx) && ct.Schema[lc.Idx].Type == types.KindString {
		return strTableNode(ct, lc.Idx, b.Op, rk.V, false)
	}
	if rIsCol && lIsConst && cleanCol(ct, rc.Idx) && ct.Schema[rc.Idx].Type == types.KindString {
		return strTableNode(ct, rc.Idx, b.Op, lk.V, true)
	}

	if b.Op == sqlparser.OpLike {
		return nil // LIKE over non-string columns: stay on the row path
	}

	// Numeric column vs numeric constant (normalize const-op-col).
	if lIsConst && rIsCol {
		lc, rc = rc, nil
		lIsCol, rIsCol = true, false
		rk = lk
		rIsConst = true
		b = &Binary{Op: flipOp(b.Op), L: lc, R: rk}
	}
	tt, _ := opTable(b.Op)
	if lIsCol && rIsConst {
		if !cleanCol(ct, lc.Idx) || !numericKind(ct.Schema[lc.Idx].Type) || !numericKind(rk.V.Kind()) {
			return nil
		}
		colKind := ct.Schema[lc.Idx].Type
		if colKind == types.KindInt && rk.V.Kind() == types.KindInt {
			return &vecCmpII{col: lc.Idx, k: rk.V.Int(), tt: tt}
		}
		f, _ := rk.V.AsFloat()
		if colKind == types.KindFloat {
			return &vecCmpFC{col: lc.Idx, k: f, tt: tt}
		}
		return &vecCmpIC{col: lc.Idx, k: f, tt: tt}
	}

	// Column vs column, both numeric-ish.
	if lIsCol && rIsCol {
		if !cleanCol(ct, lc.Idx) || !cleanCol(ct, rc.Idx) {
			return nil
		}
		lt, rt := ct.Schema[lc.Idx].Type, ct.Schema[rc.Idx].Type
		if !numericKind(lt) || !numericKind(rt) {
			return nil
		}
		return &vecCmpCC{
			lcol: lc.Idx, rcol: rc.Idx,
			lFloats: lt == types.KindFloat, rFloats: rt == types.KindFloat,
			exact: lt == types.KindInt && rt == types.KindInt,
			tt:    tt,
		}
	}
	return nil
}

// codeEqNode lowers string `=`/`!=` against a string constant into a
// direct dictionary-code compare (see compileCmp).
func codeEqNode(ct *colstore.Table, col int, s string, negate bool) vecNode {
	code, ok := ct.Dicts[col].Code(s)
	if !ok {
		miss := TriFalse
		if negate {
			miss = TriTrue
		}
		return &vecCodeConst{col: col, tri: miss}
	}
	return &vecCodeEq{col: col, code: code, negate: negate}
}

// strTableNode builds the per-dictionary-code tri table for `col op
// const` (or `const op col` when flipped).
func strTableNode(ct *colstore.Table, col int, op sqlparser.BinaryOp, k types.Value, flipped bool) vecNode {
	dict := ct.Dicts[col]
	table := make([]uint8, len(dict.Vals))
	ctx := &Ctx{}
	for code, s := range dict.Vals {
		sv := &Const{V: types.NewString(s)}
		var probe Expr
		if flipped {
			probe = &Binary{Op: op, L: &Const{V: k}, R: sv}
		} else {
			probe = &Binary{Op: op, L: sv, R: &Const{V: k}}
		}
		table[code] = triOf(probe.Eval(ctx))
	}
	return &vecStrTable{col: col, table: table}
}

// --- nodes ---

type vecConst struct{ tri uint8 }

func (n vecConst) eval(out []uint8, _ *colstore.Segment, lo, hi int) {
	for i := lo; i < hi; i++ {
		out[i] = n.tri
	}
}

type vecTruthy struct {
	col  int
	kind types.Kind
}

func (n *vecTruthy) eval(out []uint8, seg *colstore.Segment, lo, hi int) {
	c := &seg.Cols[n.col]
	switch n.kind {
	case types.KindInt, types.KindBool:
		for i := lo; i < hi; i++ {
			if c.Null(i) {
				out[i] = TriNull
			} else if c.Ints[i] != 0 {
				out[i] = TriTrue
			} else {
				out[i] = TriFalse
			}
		}
	case types.KindFloat:
		for i := lo; i < hi; i++ {
			if c.Null(i) {
				out[i] = TriNull
			} else if c.Floats[i] != 0 {
				out[i] = TriTrue
			} else {
				out[i] = TriFalse
			}
		}
	case types.KindString:
		// A non-NULL string is never truthy (matches Value.Truthy).
		for i := lo; i < hi; i++ {
			if c.Null(i) {
				out[i] = TriNull
			} else {
				out[i] = TriFalse
			}
		}
	default: // declared-NULL column
		for i := lo; i < hi; i++ {
			out[i] = TriNull
		}
	}
}

var notTable = [3]uint8{TriTrue, TriFalse, TriNull}

type vecNot struct{ x vecNode }

func (n *vecNot) eval(out []uint8, seg *colstore.Segment, lo, hi int) {
	n.x.eval(out, seg, lo, hi)
	for i := lo; i < hi; i++ {
		out[i] = notTable[out[i]]
	}
}

type vecIsNull struct {
	col     int
	negated bool
}

func (n *vecIsNull) eval(out []uint8, seg *colstore.Segment, lo, hi int) {
	c := &seg.Cols[n.col]
	t, f := TriTrue, TriFalse
	if n.negated {
		t, f = f, t
	}
	for i := lo; i < hi; i++ {
		if c.Null(i) {
			out[i] = t
		} else {
			out[i] = f
		}
	}
}

// Kleene tables indexed by l*3+r. Evaluating both sides then combining
// is identical to the row path's short-circuit because operands are pure.
var kleeneAnd = [9]uint8{
	0, 0, 0, // l = false
	0, 1, 2, // l = true
	0, 2, 2, // l = NULL
}

var kleeneOr = [9]uint8{
	0, 1, 2, // l = false
	1, 1, 1, // l = true
	2, 1, 2, // l = NULL
}

type vecLogic struct {
	l, r  vecNode
	tmp   []uint8
	table *[9]uint8
}

func (n *vecLogic) eval(out []uint8, seg *colstore.Segment, lo, hi int) {
	n.l.eval(out, seg, lo, hi)
	n.r.eval(n.tmp, seg, lo, hi)
	t := n.table
	for i := lo; i < hi; i++ {
		out[i] = t[out[i]*3+n.tmp[i]]
	}
}

// vecCmpFC: float column vs constant, float compare.
type vecCmpFC struct {
	col int
	k   float64
	tt  [3]uint8
}

func (n *vecCmpFC) eval(out []uint8, seg *colstore.Segment, lo, hi int) {
	c := &seg.Cols[n.col]
	k, tt := n.k, &n.tt
	if !c.HasNulls() {
		for i := lo; i < hi; i++ {
			v := c.Floats[i]
			j := 1
			if v < k {
				j = 0
			} else if v > k {
				j = 2
			}
			out[i] = tt[j]
		}
		return
	}
	for i := lo; i < hi; i++ {
		if c.Null(i) {
			out[i] = TriNull
			continue
		}
		v := c.Floats[i]
		j := 1
		if v < k {
			j = 0
		} else if v > k {
			j = 2
		}
		out[i] = tt[j]
	}
}

// vecCmpIC: int/bool column vs constant, float compare (mixed numeric
// kinds compare by value as floats, mirroring types.Compare).
type vecCmpIC struct {
	col int
	k   float64
	tt  [3]uint8
}

func (n *vecCmpIC) eval(out []uint8, seg *colstore.Segment, lo, hi int) {
	c := &seg.Cols[n.col]
	k, tt := n.k, &n.tt
	if !c.HasNulls() {
		for i := lo; i < hi; i++ {
			v := float64(c.Ints[i])
			j := 1
			if v < k {
				j = 0
			} else if v > k {
				j = 2
			}
			out[i] = tt[j]
		}
		return
	}
	for i := lo; i < hi; i++ {
		if c.Null(i) {
			out[i] = TriNull
			continue
		}
		v := float64(c.Ints[i])
		j := 1
		if v < k {
			j = 0
		} else if v > k {
			j = 2
		}
		out[i] = tt[j]
	}
}

// vecCmpII: BIGINT column vs BIGINT constant — exact 64-bit compare
// (mirrors the int/int fast path in types.Compare; no float rounding on
// huge ints).
type vecCmpII struct {
	col int
	k   int64
	tt  [3]uint8
}

func (n *vecCmpII) eval(out []uint8, seg *colstore.Segment, lo, hi int) {
	c := &seg.Cols[n.col]
	k, tt := n.k, &n.tt
	if !c.HasNulls() {
		for i := lo; i < hi; i++ {
			v := c.Ints[i]
			j := 1
			if v < k {
				j = 0
			} else if v > k {
				j = 2
			}
			out[i] = tt[j]
		}
		return
	}
	for i := lo; i < hi; i++ {
		if c.Null(i) {
			out[i] = TriNull
			continue
		}
		v := c.Ints[i]
		j := 1
		if v < k {
			j = 0
		} else if v > k {
			j = 2
		}
		out[i] = tt[j]
	}
}

// vecCmpCC: numeric column vs numeric column.
type vecCmpCC struct {
	lcol, rcol       int
	lFloats, rFloats bool
	exact            bool // both BIGINT: exact int64 compare
	tt               [3]uint8
}

func (n *vecCmpCC) eval(out []uint8, seg *colstore.Segment, lo, hi int) {
	lc, rc := &seg.Cols[n.lcol], &seg.Cols[n.rcol]
	tt := &n.tt
	for i := lo; i < hi; i++ {
		if lc.Null(i) || rc.Null(i) {
			out[i] = TriNull
			continue
		}
		j := 1
		if n.exact {
			a, b := lc.Ints[i], rc.Ints[i]
			if a < b {
				j = 0
			} else if a > b {
				j = 2
			}
		} else {
			var a, b float64
			if n.lFloats {
				a = lc.Floats[i]
			} else {
				a = float64(lc.Ints[i])
			}
			if n.rFloats {
				b = rc.Floats[i]
			} else {
				b = float64(rc.Ints[i])
			}
			if a < b {
				j = 0
			} else if a > b {
				j = 2
			}
		}
		out[i] = tt[j]
	}
}

// vecStrTable: dictionary-encoded column against a constant, answered
// by a precomputed per-code tri table.
type vecStrTable struct {
	col   int
	table []uint8
}

func (n *vecStrTable) eval(out []uint8, seg *colstore.Segment, lo, hi int) {
	c := &seg.Cols[n.col]
	if !c.HasNulls() {
		for i := lo; i < hi; i++ {
			out[i] = n.table[c.Codes[i]]
		}
		return
	}
	for i := lo; i < hi; i++ {
		if c.Null(i) {
			out[i] = TriNull
		} else {
			out[i] = n.table[c.Codes[i]]
		}
	}
}

// vecCodeEq: dictionary-encoded column `=`/`!=` one resolved code.
type vecCodeEq struct {
	col    int
	code   uint32
	negate bool
}

func (n *vecCodeEq) eval(out []uint8, seg *colstore.Segment, lo, hi int) {
	c := &seg.Cols[n.col]
	t, f := TriTrue, TriFalse
	if n.negate {
		t, f = f, t
	}
	if !c.HasNulls() {
		for i := lo; i < hi; i++ {
			if c.Codes[i] == n.code {
				out[i] = t
			} else {
				out[i] = f
			}
		}
		return
	}
	for i := lo; i < hi; i++ {
		if c.Null(i) {
			out[i] = TriNull
		} else if c.Codes[i] == n.code {
			out[i] = t
		} else {
			out[i] = f
		}
	}
}

// vecCodeConst: the constant string is absent from the dictionary —
// every non-NULL row gets the folded answer, NULL rows stay NULL.
type vecCodeConst struct {
	col int
	tri uint8
}

func (n *vecCodeConst) eval(out []uint8, seg *colstore.Segment, lo, hi int) {
	c := &seg.Cols[n.col]
	if !c.HasNulls() {
		for i := lo; i < hi; i++ {
			out[i] = n.tri
		}
		return
	}
	for i := lo; i < hi; i++ {
		if c.Null(i) {
			out[i] = TriNull
		} else {
			out[i] = n.tri
		}
	}
}
