package sqlparser

import (
	"fmt"
	"strings"

	"fluodb/internal/types"
)

// Stmt is any SQL statement (SELECT, CREATE TABLE, INSERT, DROP TABLE).
type Stmt interface {
	Node
	stmtNode()
}

func (*SelectStmt) stmtNode()      {}
func (*CreateTableStmt) stmtNode() {}
func (*InsertStmt) stmtNode()      {}
func (*DropTableStmt) stmtNode()   {}

// CreateTableStmt is CREATE TABLE name (col type, ...).
type CreateTableStmt struct {
	Name   string
	Schema types.Schema
}

// SQL implements Node.
func (c *CreateTableStmt) SQL() string {
	var b strings.Builder
	b.WriteString("CREATE TABLE ")
	b.WriteString(c.Name)
	b.WriteString(" (")
	for i, col := range c.Schema {
		if i > 0 {
			b.WriteString(", ")
		}
		b.WriteString(col.Name)
		b.WriteByte(' ')
		b.WriteString(col.Type.String())
	}
	b.WriteString(")")
	return b.String()
}

// InsertStmt is INSERT INTO name [(cols...)] VALUES (...), (...).
type InsertStmt struct {
	Table   string
	Columns []string // empty = all columns in table order
	Rows    [][]Expr // constant expressions
}

// SQL implements Node.
func (ins *InsertStmt) SQL() string {
	var b strings.Builder
	b.WriteString("INSERT INTO ")
	b.WriteString(ins.Table)
	if len(ins.Columns) > 0 {
		b.WriteString(" (")
		b.WriteString(strings.Join(ins.Columns, ", "))
		b.WriteString(")")
	}
	b.WriteString(" VALUES ")
	for i, row := range ins.Rows {
		if i > 0 {
			b.WriteString(", ")
		}
		b.WriteString("(")
		for j, e := range row {
			if j > 0 {
				b.WriteString(", ")
			}
			b.WriteString(e.SQL())
		}
		b.WriteString(")")
	}
	return b.String()
}

// DropTableStmt is DROP TABLE name.
type DropTableStmt struct {
	Name string
}

// SQL implements Node.
func (d *DropTableStmt) SQL() string { return "DROP TABLE " + d.Name }

// ParseStatement parses one statement of any supported kind (an
// optional trailing semicolon is accepted).
func ParseStatement(input string) (Stmt, error) {
	toks, err := lex(input)
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks}
	var stmt Stmt
	switch {
	case p.peekKeyword("SELECT"):
		s, err := p.parseSelect()
		if err != nil {
			return nil, err
		}
		stmt = s
	case p.peekKeyword("CREATE"):
		s, err := p.parseCreateTable()
		if err != nil {
			return nil, err
		}
		stmt = s
	case p.peekKeyword("INSERT"):
		s, err := p.parseInsert()
		if err != nil {
			return nil, err
		}
		stmt = s
	case p.peekKeyword("DROP"):
		s, err := p.parseDropTable()
		if err != nil {
			return nil, err
		}
		stmt = s
	default:
		return nil, errorf(p.cur().pos,
			"expected SELECT, CREATE TABLE, INSERT or DROP TABLE, found %q", p.cur().text)
	}
	p.acceptOp(";")
	if !p.atEOF() {
		return nil, errorf(p.cur().pos, "unexpected trailing input %q", p.cur().text)
	}
	return stmt, nil
}

// typeFromName maps SQL type names to kinds.
func typeFromName(name string) (types.Kind, error) {
	switch strings.ToUpper(name) {
	case "INT", "INTEGER", "BIGINT", "SMALLINT":
		return types.KindInt, nil
	case "DOUBLE", "FLOAT", "REAL", "DECIMAL", "NUMERIC":
		return types.KindFloat, nil
	case "VARCHAR", "TEXT", "STRING", "CHAR":
		return types.KindString, nil
	case "BOOLEAN", "BOOL":
		return types.KindBool, nil
	default:
		return types.KindNull, fmt.Errorf("sql: unknown type %q", name)
	}
}

func (p *parser) parseCreateTable() (*CreateTableStmt, error) {
	if err := p.expectKeyword("CREATE"); err != nil {
		return nil, err
	}
	if err := p.expectKeyword("TABLE"); err != nil {
		return nil, err
	}
	name := p.cur()
	if name.kind != tokIdent {
		return nil, errorf(name.pos, "expected table name, found %q", name.text)
	}
	p.i++
	if err := p.expectOp("("); err != nil {
		return nil, err
	}
	stmt := &CreateTableStmt{Name: name.text}
	for {
		col := p.cur()
		if col.kind != tokIdent {
			return nil, errorf(col.pos, "expected column name, found %q", col.text)
		}
		p.i++
		typ := p.cur()
		if typ.kind != tokIdent {
			return nil, errorf(typ.pos, "expected column type, found %q", typ.text)
		}
		p.i++
		kind, err := typeFromName(typ.text)
		if err != nil {
			return nil, errorf(typ.pos, "%v", err)
		}
		// swallow optional type parameters like VARCHAR(64)
		if p.acceptOp("(") {
			for !p.peekOp(")") && !p.atEOF() {
				p.i++
			}
			if err := p.expectOp(")"); err != nil {
				return nil, err
			}
		}
		stmt.Schema = append(stmt.Schema, types.Column{Name: col.text, Type: kind})
		if p.acceptOp(",") {
			continue
		}
		break
	}
	if err := p.expectOp(")"); err != nil {
		return nil, err
	}
	if len(stmt.Schema) == 0 {
		return nil, errorf(name.pos, "CREATE TABLE needs at least one column")
	}
	return stmt, nil
}

func (p *parser) parseInsert() (*InsertStmt, error) {
	if err := p.expectKeyword("INSERT"); err != nil {
		return nil, err
	}
	if err := p.expectKeyword("INTO"); err != nil {
		return nil, err
	}
	name := p.cur()
	if name.kind != tokIdent {
		return nil, errorf(name.pos, "expected table name, found %q", name.text)
	}
	p.i++
	stmt := &InsertStmt{Table: name.text}
	if p.acceptOp("(") {
		for {
			col := p.cur()
			if col.kind != tokIdent {
				return nil, errorf(col.pos, "expected column name, found %q", col.text)
			}
			p.i++
			stmt.Columns = append(stmt.Columns, col.text)
			if !p.acceptOp(",") {
				break
			}
		}
		if err := p.expectOp(")"); err != nil {
			return nil, err
		}
	}
	if err := p.expectKeyword("VALUES"); err != nil {
		return nil, err
	}
	for {
		if err := p.expectOp("("); err != nil {
			return nil, err
		}
		var row []Expr
		for {
			e, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			row = append(row, e)
			if !p.acceptOp(",") {
				break
			}
		}
		if err := p.expectOp(")"); err != nil {
			return nil, err
		}
		stmt.Rows = append(stmt.Rows, row)
		if !p.acceptOp(",") {
			break
		}
	}
	return stmt, nil
}

func (p *parser) parseDropTable() (*DropTableStmt, error) {
	if err := p.expectKeyword("DROP"); err != nil {
		return nil, err
	}
	if err := p.expectKeyword("TABLE"); err != nil {
		return nil, err
	}
	name := p.cur()
	if name.kind != tokIdent {
		return nil, errorf(name.pos, "expected table name, found %q", name.text)
	}
	p.i++
	return &DropTableStmt{Name: name.text}, nil
}

// SplitStatements splits a SQL script into individual statements on
// semicolons, respecting string literals and line comments. Empty
// statements are dropped.
func SplitStatements(script string) []string {
	var out []string
	var cur strings.Builder
	inString := false
	inComment := false
	for i := 0; i < len(script); i++ {
		c := script[i]
		switch {
		case inComment:
			cur.WriteByte(c)
			if c == '\n' {
				inComment = false
			}
		case inString:
			cur.WriteByte(c)
			if c == '\'' {
				// doubled quote stays inside the string
				if i+1 < len(script) && script[i+1] == '\'' {
					cur.WriteByte('\'')
					i++
				} else {
					inString = false
				}
			}
		case c == '\'':
			inString = true
			cur.WriteByte(c)
		case c == '-' && i+1 < len(script) && script[i+1] == '-':
			inComment = true
			cur.WriteByte(c)
		case c == ';':
			if s := strings.TrimSpace(cur.String()); s != "" {
				out = append(out, s)
			}
			cur.Reset()
		default:
			cur.WriteByte(c)
		}
	}
	if s := strings.TrimSpace(cur.String()); s != "" {
		out = append(out, s)
	}
	return out
}
