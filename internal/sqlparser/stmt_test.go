package sqlparser

import (
	"testing"

	"fluodb/internal/types"
)

func TestParseCreateTable(t *testing.T) {
	s, err := ParseStatement(`CREATE TABLE metrics (id INT, name VARCHAR(64), score DOUBLE, ok BOOLEAN)`)
	if err != nil {
		t.Fatal(err)
	}
	ct, ok := s.(*CreateTableStmt)
	if !ok {
		t.Fatalf("stmt = %T", s)
	}
	if ct.Name != "metrics" || len(ct.Schema) != 4 {
		t.Fatalf("parsed = %+v", ct)
	}
	want := []types.Kind{types.KindInt, types.KindString, types.KindFloat, types.KindBool}
	for i, k := range want {
		if ct.Schema[i].Type != k {
			t.Errorf("col %d kind = %v, want %v", i, ct.Schema[i].Type, k)
		}
	}
	if ct.SQL() != "CREATE TABLE metrics (id BIGINT, name VARCHAR, score DOUBLE, ok BOOLEAN)" {
		t.Errorf("SQL = %q", ct.SQL())
	}
}

func TestParseInsert(t *testing.T) {
	s, err := ParseStatement(`INSERT INTO t (a, b) VALUES (1, 'x'), (2 + 3, NULL);`)
	if err != nil {
		t.Fatal(err)
	}
	ins := s.(*InsertStmt)
	if ins.Table != "t" || len(ins.Columns) != 2 || len(ins.Rows) != 2 {
		t.Fatalf("parsed = %+v", ins)
	}
	if len(ins.Rows[0]) != 2 || len(ins.Rows[1]) != 2 {
		t.Error("row widths")
	}
	// without column list
	s2, err := ParseStatement(`INSERT INTO t VALUES (1)`)
	if err != nil {
		t.Fatal(err)
	}
	if len(s2.(*InsertStmt).Columns) != 0 {
		t.Error("columns should be empty")
	}
}

func TestParseDropTable(t *testing.T) {
	s, err := ParseStatement(`DROP TABLE old_stuff`)
	if err != nil {
		t.Fatal(err)
	}
	if s.(*DropTableStmt).Name != "old_stuff" {
		t.Errorf("name = %q", s.(*DropTableStmt).Name)
	}
	if s.SQL() != "DROP TABLE old_stuff" {
		t.Errorf("SQL = %q", s.SQL())
	}
}

func TestParseStatementSelectAndSemicolon(t *testing.T) {
	s, err := ParseStatement("SELECT 1;")
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := s.(*SelectStmt); !ok {
		t.Fatalf("stmt = %T", s)
	}
}

func TestParseStatementErrors(t *testing.T) {
	bad := []string{
		"",
		"UPDATE t SET x = 1",
		"CREATE TABLE",
		"CREATE TABLE t ()",
		"CREATE TABLE t (x)",
		"CREATE TABLE t (x WIDGET)",
		"CREATE TABLE t (x INT",
		"INSERT t VALUES (1)",
		"INSERT INTO t (1) VALUES (2)",
		"INSERT INTO t VALUES",
		"INSERT INTO t VALUES (1",
		"DROP TABLE",
		"DROP t",
		"SELECT 1; SELECT 2",
	}
	for _, sql := range bad {
		if _, err := ParseStatement(sql); err == nil {
			t.Errorf("ParseStatement(%q) should fail", sql)
		}
	}
}

func TestInsertSQLRendering(t *testing.T) {
	s, _ := ParseStatement(`INSERT INTO t (a) VALUES (1), (2)`)
	want := "INSERT INTO t (a) VALUES (1), (2)"
	if got := s.SQL(); got != want {
		t.Errorf("SQL = %q, want %q", got, want)
	}
}

func TestSplitStatements(t *testing.T) {
	script := `
CREATE TABLE t (a INT); -- comment with ; inside
INSERT INTO t VALUES (1), (2);
INSERT INTO t VALUES (3) ; SELECT 'a;b' FROM t;
SELECT COUNT(*) FROM t`
	got := SplitStatements(script)
	if len(got) != 5 {
		t.Fatalf("statements = %d: %q", len(got), got)
	}
	if got[3] != "SELECT 'a;b' FROM t" {
		t.Errorf("string-literal semicolon split: %q", got[3])
	}
	if len(SplitStatements("  ;;  ")) != 0 {
		t.Error("empty statements should be dropped")
	}
	// each piece parses
	for _, s := range got {
		if _, err := ParseStatement(s); err != nil {
			t.Errorf("ParseStatement(%q): %v", s, err)
		}
	}
}
