// Package sqlparser implements a hand-written lexer and recursive-descent
// parser for the OLAP SQL subset FluoDB executes: SELECT-PROJECT-JOIN-
// AGGREGATE blocks with scalar and IN subqueries (including equality-
// correlated ones), CASE expressions, and user-defined function calls.
package sqlparser

import (
	"strings"

	"fluodb/internal/types"
)

// Node is implemented by every AST node.
type Node interface {
	// SQL renders the node back to SQL text (canonicalized).
	SQL() string
}

// Expr is implemented by every expression node.
type Expr interface {
	Node
	exprNode()
}

// SelectStmt is a full SELECT query.
type SelectStmt struct {
	Distinct bool
	Items    []SelectItem
	From     TableRef // nil for expression-only SELECTs (SELECT 1+1)
	Where    Expr     // nil if absent
	GroupBy  []Expr
	Having   Expr // nil if absent
	OrderBy  []OrderItem
	Limit    int // -1 if absent
	Offset   int // 0 if absent
}

// SelectItem is one output column of a SELECT list.
type SelectItem struct {
	Expr  Expr
	Alias string // "" if none
	Star  bool   // SELECT *
}

// OrderItem is one ORDER BY term.
type OrderItem struct {
	Expr Expr
	Desc bool
}

// TableRef is a FROM-clause item.
type TableRef interface {
	Node
	tableRefNode()
}

// BaseTable names a stored table, optionally aliased.
type BaseTable struct {
	Name  string
	Alias string
}

// JoinType enumerates supported join flavours.
type JoinType int

// Join types.
const (
	InnerJoin JoinType = iota
	LeftJoin
)

// Join is a binary join between two table refs with an ON condition.
type Join struct {
	Type        JoinType
	Left, Right TableRef
	On          Expr
}

// --- expressions ---

// ColumnRef references a column, optionally qualified by a table alias.
type ColumnRef struct {
	Table string // "" if unqualified
	Name  string
}

// Literal is a constant value.
type Literal struct {
	Value types.Value
}

// BinaryOp enumerates binary operators.
type BinaryOp int

// Binary operators.
const (
	OpAdd BinaryOp = iota
	OpSub
	OpMul
	OpDiv
	OpMod
	OpEq
	OpNe
	OpLt
	OpLe
	OpGt
	OpGe
	OpAnd
	OpOr
	OpLike
)

var binaryOpText = map[BinaryOp]string{
	OpAdd: "+", OpSub: "-", OpMul: "*", OpDiv: "/", OpMod: "%",
	OpEq: "=", OpNe: "<>", OpLt: "<", OpLe: "<=", OpGt: ">", OpGe: ">=",
	OpAnd: "AND", OpOr: "OR", OpLike: "LIKE",
}

// String returns the SQL spelling of the operator.
func (op BinaryOp) String() string { return binaryOpText[op] }

// IsComparison reports whether the operator is a θ-comparison
// (the predicates G-OLA classifies into uncertain/deterministic sets).
func (op BinaryOp) IsComparison() bool {
	switch op {
	case OpEq, OpNe, OpLt, OpLe, OpGt, OpGe:
		return true
	}
	return false
}

// Binary is a binary operator application.
type Binary struct {
	Op   BinaryOp
	L, R Expr
}

// Unary is -x or NOT x.
type Unary struct {
	Op string // "-" or "NOT"
	X  Expr
}

// FuncCall is a scalar function, aggregate function, or UDF/UDAF call.
// Aggregate-ness is resolved by the planner against the agg registry.
type FuncCall struct {
	Name     string
	Args     []Expr
	Star     bool // COUNT(*)
	Distinct bool // COUNT(DISTINCT x)
}

// Subquery is a scalar subquery expression: (SELECT ...).
type Subquery struct {
	Select *SelectStmt
}

// InExpr is `x IN (subquery)` or `x IN (e1, e2, ...)`.
type InExpr struct {
	X       Expr
	Sub     *SelectStmt // nil when List is set
	List    []Expr
	Negated bool
}

// ExistsExpr is EXISTS (subquery).
type ExistsExpr struct {
	Sub     *SelectStmt
	Negated bool
}

// Between is `x BETWEEN lo AND hi`.
type Between struct {
	X, Lo, Hi Expr
	Negated   bool
}

// IsNull is `x IS [NOT] NULL`.
type IsNull struct {
	X       Expr
	Negated bool
}

// CaseWhen is one WHEN cond THEN result arm.
type CaseWhen struct {
	Cond, Result Expr
}

// Case is `CASE [operand] WHEN .. THEN .. [ELSE ..] END`. When Operand is
// non-nil the WHEN conditions are equality-compared against it.
type Case struct {
	Operand Expr // nil for searched CASE
	Whens   []CaseWhen
	Else    Expr // nil if absent
}

func (*ColumnRef) exprNode()  {}
func (*Literal) exprNode()    {}
func (*Binary) exprNode()     {}
func (*Unary) exprNode()      {}
func (*FuncCall) exprNode()   {}
func (*Subquery) exprNode()   {}
func (*InExpr) exprNode()     {}
func (*ExistsExpr) exprNode() {}
func (*Between) exprNode()    {}
func (*IsNull) exprNode()     {}
func (*Case) exprNode()       {}

func (*BaseTable) tableRefNode() {}
func (*Join) tableRefNode()      {}

// --- SQL rendering ---

// SQL implements Node.
func (s *SelectStmt) SQL() string {
	var b strings.Builder
	b.WriteString("SELECT ")
	if s.Distinct {
		b.WriteString("DISTINCT ")
	}
	for i, it := range s.Items {
		if i > 0 {
			b.WriteString(", ")
		}
		if it.Star {
			b.WriteByte('*')
			continue
		}
		b.WriteString(it.Expr.SQL())
		if it.Alias != "" {
			b.WriteString(" AS ")
			b.WriteString(it.Alias)
		}
	}
	if s.From != nil {
		b.WriteString(" FROM ")
		b.WriteString(s.From.SQL())
	}
	if s.Where != nil {
		b.WriteString(" WHERE ")
		b.WriteString(s.Where.SQL())
	}
	if len(s.GroupBy) > 0 {
		b.WriteString(" GROUP BY ")
		for i, e := range s.GroupBy {
			if i > 0 {
				b.WriteString(", ")
			}
			b.WriteString(e.SQL())
		}
	}
	if s.Having != nil {
		b.WriteString(" HAVING ")
		b.WriteString(s.Having.SQL())
	}
	if len(s.OrderBy) > 0 {
		b.WriteString(" ORDER BY ")
		for i, o := range s.OrderBy {
			if i > 0 {
				b.WriteString(", ")
			}
			b.WriteString(o.Expr.SQL())
			if o.Desc {
				b.WriteString(" DESC")
			}
		}
	}
	if s.Limit >= 0 {
		b.WriteString(" LIMIT ")
		b.WriteString(itoa(s.Limit))
	}
	if s.Offset > 0 {
		b.WriteString(" OFFSET ")
		b.WriteString(itoa(s.Offset))
	}
	return b.String()
}

func itoa(n int) string {
	return types.NewInt(int64(n)).String()
}

// SQL implements Node.
func (t *BaseTable) SQL() string {
	if t.Alias != "" && !strings.EqualFold(t.Alias, t.Name) {
		return t.Name + " AS " + t.Alias
	}
	return t.Name
}

// SQL implements Node.
func (j *Join) SQL() string {
	kw := " JOIN "
	if j.Type == LeftJoin {
		kw = " LEFT JOIN "
	}
	return j.Left.SQL() + kw + j.Right.SQL() + " ON " + j.On.SQL()
}

// SQL implements Node.
func (c *ColumnRef) SQL() string {
	if c.Table != "" {
		return c.Table + "." + c.Name
	}
	return c.Name
}

// SQL implements Node.
func (l *Literal) SQL() string { return l.Value.SQLLiteral() }

// SQL implements Node.
func (bx *Binary) SQL() string {
	return "(" + bx.L.SQL() + " " + bx.Op.String() + " " + bx.R.SQL() + ")"
}

// SQL implements Node.
func (u *Unary) SQL() string {
	if u.Op == "NOT" {
		return "(NOT " + u.X.SQL() + ")"
	}
	return "(" + u.Op + u.X.SQL() + ")"
}

// SQL implements Node.
func (f *FuncCall) SQL() string {
	if f.Star {
		return strings.ToUpper(f.Name) + "(*)"
	}
	var b strings.Builder
	b.WriteString(strings.ToUpper(f.Name))
	b.WriteByte('(')
	if f.Distinct {
		b.WriteString("DISTINCT ")
	}
	for i, a := range f.Args {
		if i > 0 {
			b.WriteString(", ")
		}
		b.WriteString(a.SQL())
	}
	b.WriteByte(')')
	return b.String()
}

// SQL implements Node.
func (s *Subquery) SQL() string { return "(" + s.Select.SQL() + ")" }

// SQL implements Node.
func (in *InExpr) SQL() string {
	var b strings.Builder
	b.WriteString(in.X.SQL())
	if in.Negated {
		b.WriteString(" NOT")
	}
	b.WriteString(" IN (")
	if in.Sub != nil {
		b.WriteString(in.Sub.SQL())
	} else {
		for i, e := range in.List {
			if i > 0 {
				b.WriteString(", ")
			}
			b.WriteString(e.SQL())
		}
	}
	b.WriteByte(')')
	return b.String()
}

// SQL implements Node.
func (e *ExistsExpr) SQL() string {
	s := "EXISTS (" + e.Sub.SQL() + ")"
	if e.Negated {
		return "NOT " + s
	}
	return s
}

// SQL implements Node.
func (bt *Between) SQL() string {
	not := ""
	if bt.Negated {
		not = " NOT"
	}
	return "(" + bt.X.SQL() + not + " BETWEEN " + bt.Lo.SQL() + " AND " + bt.Hi.SQL() + ")"
}

// SQL implements Node.
func (i *IsNull) SQL() string {
	if i.Negated {
		return "(" + i.X.SQL() + " IS NOT NULL)"
	}
	return "(" + i.X.SQL() + " IS NULL)"
}

// SQL implements Node.
func (c *Case) SQL() string {
	var b strings.Builder
	b.WriteString("CASE")
	if c.Operand != nil {
		b.WriteByte(' ')
		b.WriteString(c.Operand.SQL())
	}
	for _, w := range c.Whens {
		b.WriteString(" WHEN ")
		b.WriteString(w.Cond.SQL())
		b.WriteString(" THEN ")
		b.WriteString(w.Result.SQL())
	}
	if c.Else != nil {
		b.WriteString(" ELSE ")
		b.WriteString(c.Else.SQL())
	}
	b.WriteString(" END")
	return b.String()
}
