package sqlparser

import (
	"strings"
	"testing"

	"fluodb/internal/types"
)

func mustParse(t *testing.T, sql string) *SelectStmt {
	t.Helper()
	stmt, err := Parse(sql)
	if err != nil {
		t.Fatalf("Parse(%q): %v", sql, err)
	}
	return stmt
}

func TestParseSimpleSelect(t *testing.T) {
	stmt := mustParse(t, "SELECT a, b AS bee FROM t WHERE a > 3")
	if len(stmt.Items) != 2 {
		t.Fatalf("items = %d", len(stmt.Items))
	}
	if stmt.Items[1].Alias != "bee" {
		t.Errorf("alias = %q", stmt.Items[1].Alias)
	}
	bt, ok := stmt.From.(*BaseTable)
	if !ok || bt.Name != "t" {
		t.Fatalf("from = %#v", stmt.From)
	}
	bin, ok := stmt.Where.(*Binary)
	if !ok || bin.Op != OpGt {
		t.Fatalf("where = %#v", stmt.Where)
	}
}

func TestParseStarAndCountStar(t *testing.T) {
	stmt := mustParse(t, "SELECT *, COUNT(*) FROM t")
	if !stmt.Items[0].Star {
		t.Error("first item should be *")
	}
	fc, ok := stmt.Items[1].Expr.(*FuncCall)
	if !ok || !fc.Star || fc.Name != "COUNT" {
		t.Errorf("second item = %#v", stmt.Items[1].Expr)
	}
}

func TestParsePrecedence(t *testing.T) {
	stmt := mustParse(t, "SELECT 1 + 2 * 3")
	bin := stmt.Items[0].Expr.(*Binary)
	if bin.Op != OpAdd {
		t.Fatalf("top op = %v", bin.Op)
	}
	if r, ok := bin.R.(*Binary); !ok || r.Op != OpMul {
		t.Fatalf("rhs = %#v", bin.R)
	}
}

func TestParseAndOrNotPrecedence(t *testing.T) {
	stmt := mustParse(t, "SELECT 1 FROM t WHERE NOT a = 1 AND b = 2 OR c = 3")
	or, ok := stmt.Where.(*Binary)
	if !ok || or.Op != OpOr {
		t.Fatalf("top = %#v", stmt.Where)
	}
	and, ok := or.L.(*Binary)
	if !ok || and.Op != OpAnd {
		t.Fatalf("or.L = %#v", or.L)
	}
	if _, ok := and.L.(*Unary); !ok {
		t.Fatalf("and.L should be NOT, got %#v", and.L)
	}
}

func TestParseScalarSubquery(t *testing.T) {
	stmt := mustParse(t, `SELECT AVG(play_time) FROM Sessions
		WHERE buffer_time > (SELECT AVG(buffer_time) FROM Sessions)`)
	bin := stmt.Where.(*Binary)
	sub, ok := bin.R.(*Subquery)
	if !ok {
		t.Fatalf("rhs = %#v", bin.R)
	}
	if len(sub.Select.Items) != 1 {
		t.Fatal("inner select items")
	}
	fc := sub.Select.Items[0].Expr.(*FuncCall)
	if fc.Name != "AVG" {
		t.Errorf("inner agg = %s", fc.Name)
	}
}

func TestParseCorrelatedSubquery(t *testing.T) {
	stmt := mustParse(t, `SELECT SUM(price) FROM lineitem l
		WHERE quantity < (SELECT 0.2 * AVG(quantity) FROM lineitem i WHERE i.partkey = l.partkey)`)
	bin := stmt.Where.(*Binary)
	sub := bin.R.(*Subquery)
	inner := sub.Select
	w, ok := inner.Where.(*Binary)
	if !ok || w.Op != OpEq {
		t.Fatalf("inner where = %#v", inner.Where)
	}
	lref := w.L.(*ColumnRef)
	rref := w.R.(*ColumnRef)
	if lref.Table != "i" || rref.Table != "l" {
		t.Errorf("refs = %v, %v", lref, rref)
	}
}

func TestParseInSubqueryAndList(t *testing.T) {
	stmt := mustParse(t, "SELECT 1 FROM o WHERE k IN (SELECT k FROM l GROUP BY k HAVING SUM(q) > 300)")
	in, ok := stmt.Where.(*InExpr)
	if !ok || in.Sub == nil || in.Negated {
		t.Fatalf("where = %#v", stmt.Where)
	}
	if in.Sub.Having == nil {
		t.Error("inner HAVING missing")
	}

	stmt2 := mustParse(t, "SELECT 1 FROM t WHERE x NOT IN (1, 2, 3)")
	in2 := stmt2.Where.(*InExpr)
	if !in2.Negated || len(in2.List) != 3 {
		t.Fatalf("in2 = %#v", in2)
	}
}

func TestParseBetweenLikeIsNull(t *testing.T) {
	stmt := mustParse(t, "SELECT 1 FROM t WHERE a BETWEEN 1 AND 5 AND b LIKE 'x%' AND c IS NOT NULL")
	and1 := stmt.Where.(*Binary)
	and2 := and1.L.(*Binary)
	if _, ok := and2.L.(*Between); !ok {
		t.Errorf("first conjunct = %#v", and2.L)
	}
	like := and2.R.(*Binary)
	if like.Op != OpLike {
		t.Errorf("second conjunct = %#v", and2.R)
	}
	isn := and1.R.(*IsNull)
	if !isn.Negated {
		t.Error("IS NOT NULL should be negated")
	}
}

func TestParseGroupByHavingOrderLimit(t *testing.T) {
	stmt := mustParse(t, `SELECT g, COUNT(*) c FROM t GROUP BY g
		HAVING COUNT(*) > 10 ORDER BY c DESC, g LIMIT 5`)
	if len(stmt.GroupBy) != 1 || stmt.Having == nil {
		t.Fatal("group/having")
	}
	if len(stmt.OrderBy) != 2 || !stmt.OrderBy[0].Desc || stmt.OrderBy[1].Desc {
		t.Fatalf("order = %#v", stmt.OrderBy)
	}
	if stmt.Limit != 5 {
		t.Errorf("limit = %d", stmt.Limit)
	}
	if stmt.Items[1].Alias != "c" {
		t.Errorf("bare alias = %q", stmt.Items[1].Alias)
	}
}

func TestParseJoins(t *testing.T) {
	stmt := mustParse(t, "SELECT 1 FROM a JOIN b ON a.x = b.x LEFT JOIN c ON b.y = c.y")
	j, ok := stmt.From.(*Join)
	if !ok || j.Type != LeftJoin {
		t.Fatalf("top join = %#v", stmt.From)
	}
	inner, ok := j.Left.(*Join)
	if !ok || inner.Type != InnerJoin {
		t.Fatalf("inner = %#v", j.Left)
	}
}

func TestParseCommaJoin(t *testing.T) {
	stmt := mustParse(t, "SELECT 1 FROM a, b WHERE a.x = b.x")
	j, ok := stmt.From.(*Join)
	if !ok {
		t.Fatalf("from = %#v", stmt.From)
	}
	lit, ok := j.On.(*Literal)
	if !ok || !lit.Value.Bool() {
		t.Fatalf("comma join ON = %#v", j.On)
	}
}

func TestParseCase(t *testing.T) {
	stmt := mustParse(t, `SELECT CASE WHEN a > 1 THEN 'hi' WHEN a > 0 THEN 'mid' ELSE 'lo' END FROM t`)
	c, ok := stmt.Items[0].Expr.(*Case)
	if !ok || len(c.Whens) != 2 || c.Else == nil || c.Operand != nil {
		t.Fatalf("case = %#v", stmt.Items[0].Expr)
	}
	stmt2 := mustParse(t, `SELECT CASE a WHEN 1 THEN 'one' END FROM t`)
	c2 := stmt2.Items[0].Expr.(*Case)
	if c2.Operand == nil || c2.Else != nil {
		t.Fatalf("case2 = %#v", c2)
	}
}

func TestParseExists(t *testing.T) {
	stmt := mustParse(t, "SELECT 1 FROM t WHERE EXISTS (SELECT 1 FROM u)")
	if _, ok := stmt.Where.(*ExistsExpr); !ok {
		t.Fatalf("where = %#v", stmt.Where)
	}
	stmt2 := mustParse(t, "SELECT 1 FROM t WHERE NOT EXISTS (SELECT 1 FROM u)")
	u, ok := stmt2.Where.(*Unary)
	if !ok || u.Op != "NOT" {
		t.Fatalf("where2 = %#v", stmt2.Where)
	}
}

func TestParseNegativeNumbersAndFloats(t *testing.T) {
	stmt := mustParse(t, "SELECT -3, -2.5, 1e3, .5")
	if v := stmt.Items[0].Expr.(*Literal).Value; v.Int() != -3 {
		t.Errorf("item0 = %v", v)
	}
	if v := stmt.Items[1].Expr.(*Literal).Value; v.Float() != -2.5 {
		t.Errorf("item1 = %v", v)
	}
	if v := stmt.Items[2].Expr.(*Literal).Value; v.Float() != 1000 {
		t.Errorf("item2 = %v", v)
	}
	if v := stmt.Items[3].Expr.(*Literal).Value; v.Float() != 0.5 {
		t.Errorf("item3 = %v", v)
	}
}

func TestParseStringEscapes(t *testing.T) {
	stmt := mustParse(t, "SELECT 'o''brien'")
	if v := stmt.Items[0].Expr.(*Literal).Value; v.Str() != "o'brien" {
		t.Errorf("got %q", v.Str())
	}
}

func TestParseComments(t *testing.T) {
	stmt := mustParse(t, "SELECT 1 -- trailing comment\nFROM t")
	if stmt.From == nil {
		t.Error("comment swallowed FROM")
	}
}

func TestParseLiteralsNullTrueFalse(t *testing.T) {
	stmt := mustParse(t, "SELECT NULL, TRUE, FALSE")
	if !stmt.Items[0].Expr.(*Literal).Value.IsNull() {
		t.Error("NULL")
	}
	if !stmt.Items[1].Expr.(*Literal).Value.Bool() {
		t.Error("TRUE")
	}
	if stmt.Items[2].Expr.(*Literal).Value.Bool() {
		t.Error("FALSE")
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		"",
		"SELEC 1",
		"SELECT",
		"SELECT 1 FROM",
		"SELECT 1 FROM t WHERE",
		"SELECT 1 WHERE 2",
		"SELECT 'unterminated",
		"SELECT 1 FROM t LIMIT x",
		"SELECT (1",
		"SELECT 1 extra ,",
		"SELECT CASE END",
		"SELECT 1 FROM t GROUP 1",
		"SELECT f(1,",
		"SELECT a . ",
		"SELECT @",
	}
	for _, sql := range bad {
		if _, err := Parse(sql); err == nil {
			t.Errorf("Parse(%q) should fail", sql)
		}
	}
}

func TestSQLRoundTrip(t *testing.T) {
	queries := []string{
		"SELECT AVG(play_time) FROM Sessions WHERE (buffer_time > (SELECT AVG(buffer_time) FROM Sessions))",
		"SELECT g, COUNT(*) FROM t GROUP BY g HAVING (COUNT(*) > 10) ORDER BY g LIMIT 3",
		"SELECT CASE WHEN (a > 1) THEN 'x' ELSE 'y' END FROM t",
		"SELECT a FROM t WHERE a IN (1, 2)",
	}
	for _, q := range queries {
		stmt, err := Parse(q)
		if err != nil {
			t.Fatalf("Parse(%q): %v", q, err)
		}
		rendered := stmt.SQL()
		stmt2, err := Parse(rendered)
		if err != nil {
			t.Fatalf("re-Parse(%q): %v", rendered, err)
		}
		if stmt2.SQL() != rendered {
			t.Errorf("SQL not a fixpoint:\n  %s\n  %s", rendered, stmt2.SQL())
		}
	}
}

func TestParseExprStandalone(t *testing.T) {
	e, err := ParseExpr("1 + 2 * x")
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := e.(*Binary); !ok {
		t.Fatalf("expr = %#v", e)
	}
	if _, err := ParseExpr("1 +"); err == nil {
		t.Error("bad expr should fail")
	}
	if _, err := ParseExpr("1 2"); err == nil {
		t.Error("trailing token should fail")
	}
}

func TestLexerPositionsInErrors(t *testing.T) {
	_, err := Parse("SELECT $")
	if err == nil {
		t.Fatal("expected error")
	}
	var perr *Error
	if !asError(err, &perr) {
		t.Fatalf("error type = %T", err)
	}
	if perr.Pos != 7 {
		t.Errorf("pos = %d, want 7", perr.Pos)
	}
	if !strings.Contains(err.Error(), "byte 7") {
		t.Errorf("message = %q", err.Error())
	}
}

// asError is a tiny errors.As for *Error without importing errors (keeps
// the test focused on this package's behaviour).
func asError(err error, target **Error) bool {
	e, ok := err.(*Error)
	if ok {
		*target = e
	}
	return ok
}

func TestKeywordCaseInsensitive(t *testing.T) {
	stmt := mustParse(t, "select a from t where a between 1 and 2")
	if stmt.From == nil || stmt.Where == nil {
		t.Fatal("lower-case keywords failed")
	}
}

func TestQualifiedStarNotSupported(t *testing.T) {
	// t.* is not in the subset; ensure a clean error rather than a panic.
	if _, err := Parse("SELECT t.* FROM t"); err == nil {
		t.Error("t.* should be a parse error")
	}
}

func TestDistinctAggregate(t *testing.T) {
	stmt := mustParse(t, "SELECT COUNT(DISTINCT a) FROM t")
	fc := stmt.Items[0].Expr.(*FuncCall)
	if !fc.Distinct {
		t.Error("DISTINCT flag lost")
	}
}

func TestLiteralSQLRendering(t *testing.T) {
	l := &Literal{Value: types.NewString("a'b")}
	if l.SQL() != "'a''b'" {
		t.Errorf("SQL = %q", l.SQL())
	}
}

func BenchmarkParseSBI(b *testing.B) {
	const q = `SELECT AVG(play_time) FROM Sessions
		WHERE buffer_time > (SELECT AVG(buffer_time) FROM Sessions)`
	for i := 0; i < b.N; i++ {
		if _, err := Parse(q); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkParseComplex(b *testing.B) {
	const q = `SELECT custkey, orderkey, SUM(quantity) AS total
		FROM lineitem
		WHERE orderkey IN (SELECT orderkey FROM lineitem GROUP BY orderkey HAVING SUM(quantity) > 300)
		  AND shipmode LIKE 'AIR%' AND discount BETWEEN 0.01 AND 0.05
		GROUP BY custkey, orderkey ORDER BY total DESC LIMIT 100`
	for i := 0; i < b.N; i++ {
		if _, err := Parse(q); err != nil {
			b.Fatal(err)
		}
	}
}
