package sqlparser

import (
	"strings"
	"testing"

	"fluodb/internal/bootstrap"
)

// TestParserNeverPanicsOnRandomInput feeds the parser random token soup
// and mutated valid queries: it must return an error or an AST, never
// panic.
func TestParserNeverPanicsOnRandomInput(t *testing.T) {
	rng := bootstrap.NewRNG(0xF722)
	tokens := []string{
		"SELECT", "FROM", "WHERE", "GROUP", "BY", "HAVING", "ORDER", "LIMIT",
		"AND", "OR", "NOT", "IN", "BETWEEN", "LIKE", "CASE", "WHEN", "THEN",
		"ELSE", "END", "JOIN", "ON", "AS", "IS", "NULL", "DISTINCT", "EXISTS",
		"(", ")", ",", "*", "+", "-", "/", "%", "=", "<", ">", "<=", ">=", "<>",
		"t", "x", "y", "sessions", "AVG", "COUNT", "SUM",
		"1", "2.5", "'str'", "''", ".", "1e9", "0",
	}
	defer func() {
		if r := recover(); r != nil {
			t.Fatalf("parser panicked: %v", r)
		}
	}()
	for trial := 0; trial < 3000; trial++ {
		n := 1 + rng.Intn(24)
		parts := make([]string, n)
		for i := range parts {
			parts[i] = tokens[rng.Intn(len(tokens))]
		}
		input := strings.Join(parts, " ")
		_, _ = Parse(input)
	}
}

// TestParserNeverPanicsOnMutatedQueries mutates valid queries byte-wise.
func TestParserNeverPanicsOnMutatedQueries(t *testing.T) {
	rng := bootstrap.NewRNG(0xD00D)
	seeds := []string{
		"SELECT AVG(play_time) FROM sessions WHERE buffer_time > (SELECT AVG(buffer_time) FROM sessions)",
		"SELECT a, COUNT(*) c FROM t GROUP BY a HAVING c > 1 ORDER BY c DESC LIMIT 3",
		"SELECT CASE WHEN x > 1 THEN 'a' ELSE 'b' END FROM t WHERE y IN (1,2,3)",
		"SELECT x FROM a JOIN b ON a.k = b.k WHERE x BETWEEN 1 AND 2 AND s LIKE 'x%'",
	}
	defer func() {
		if r := recover(); r != nil {
			t.Fatalf("parser panicked: %v", r)
		}
	}()
	for trial := 0; trial < 3000; trial++ {
		s := []byte(seeds[rng.Intn(len(seeds))])
		for m := 0; m < 1+rng.Intn(5); m++ {
			switch rng.Intn(3) {
			case 0: // flip a byte
				s[rng.Intn(len(s))] = byte(32 + rng.Intn(95))
			case 1: // delete a byte
				i := rng.Intn(len(s))
				s = append(s[:i], s[i+1:]...)
			case 2: // duplicate a chunk
				i := rng.Intn(len(s))
				j := i + rng.Intn(len(s)-i)
				s = append(s[:j], s[i:]...)
			}
			if len(s) == 0 {
				s = []byte("S")
			}
		}
		_, _ = Parse(string(s))
	}
}

// TestParseValidStaysValidUnderWhitespace checks whitespace/comment
// insensitivity of the grammar.
func TestParseValidStaysValidUnderWhitespace(t *testing.T) {
	sql := "SELECT a,COUNT(*) FROM t GROUP BY a"
	variants := []string{
		"SELECT  a , COUNT( * )  FROM t  GROUP  BY a",
		"SELECT a,COUNT(*)\nFROM t\nGROUP BY a",
		"SELECT a,COUNT(*) -- trailing\nFROM t GROUP BY a",
		"\tSELECT\ta,COUNT(*)\tFROM\tt\tGROUP\tBY\ta",
	}
	want, err := Parse(sql)
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range variants {
		got, err := Parse(v)
		if err != nil {
			t.Fatalf("Parse(%q): %v", v, err)
		}
		if got.SQL() != want.SQL() {
			t.Errorf("canonical SQL differs for %q: %q vs %q", v, got.SQL(), want.SQL())
		}
	}
}
