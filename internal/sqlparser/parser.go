package sqlparser

import (
	"strconv"
	"strings"

	"fluodb/internal/types"
)

// Parse parses one SELECT statement (optionally terminated by a
// semicolon-free end of input).
func Parse(input string) (*SelectStmt, error) {
	toks, err := lex(input)
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks}
	stmt, err := p.parseSelect()
	if err != nil {
		return nil, err
	}
	if !p.atEOF() {
		return nil, errorf(p.cur().pos, "unexpected trailing input %q", p.cur().text)
	}
	return stmt, nil
}

// ParseExpr parses a standalone expression (used by tests and the UDF
// playground in the CLI).
func ParseExpr(input string) (Expr, error) {
	toks, err := lex(input)
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks}
	e, err := p.parseExpr()
	if err != nil {
		return nil, err
	}
	if !p.atEOF() {
		return nil, errorf(p.cur().pos, "unexpected trailing input %q", p.cur().text)
	}
	return e, nil
}

type parser struct {
	toks []token
	i    int
}

func (p *parser) cur() token  { return p.toks[p.i] }
func (p *parser) next() token { t := p.toks[p.i]; p.i++; return t }
func (p *parser) atEOF() bool { return p.cur().kind == tokEOF }

// peekKeyword reports whether the current token is the given keyword.
func (p *parser) peekKeyword(kw string) bool {
	t := p.cur()
	return t.kind == tokKeyword && t.text == kw
}

// acceptKeyword consumes the keyword if present.
func (p *parser) acceptKeyword(kw string) bool {
	if p.peekKeyword(kw) {
		p.i++
		return true
	}
	return false
}

// expectKeyword consumes the keyword or errors.
func (p *parser) expectKeyword(kw string) error {
	if !p.acceptKeyword(kw) {
		return errorf(p.cur().pos, "expected %s, found %q", kw, p.cur().text)
	}
	return nil
}

// peekOp reports whether the current token is the given operator.
func (p *parser) peekOp(op string) bool {
	t := p.cur()
	return t.kind == tokOp && t.text == op
}

// acceptOp consumes the operator if present.
func (p *parser) acceptOp(op string) bool {
	if p.peekOp(op) {
		p.i++
		return true
	}
	return false
}

// expectOp consumes the operator or errors.
func (p *parser) expectOp(op string) error {
	if !p.acceptOp(op) {
		return errorf(p.cur().pos, "expected %q, found %q", op, p.cur().text)
	}
	return nil
}

func (p *parser) parseSelect() (*SelectStmt, error) {
	if err := p.expectKeyword("SELECT"); err != nil {
		return nil, err
	}
	stmt := &SelectStmt{Limit: -1}
	if p.acceptKeyword("DISTINCT") {
		stmt.Distinct = true
	} else {
		p.acceptKeyword("ALL")
	}
	for {
		item, err := p.parseSelectItem()
		if err != nil {
			return nil, err
		}
		stmt.Items = append(stmt.Items, item)
		if !p.acceptOp(",") {
			break
		}
	}
	if p.acceptKeyword("FROM") {
		from, err := p.parseTableRef()
		if err != nil {
			return nil, err
		}
		stmt.From = from
	}
	if p.peekKeyword("WHERE") {
		if stmt.From == nil {
			return nil, errorf(p.cur().pos, "WHERE requires a FROM clause")
		}
		p.i++
		w, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		stmt.Where = w
	}
	if p.acceptKeyword("GROUP") {
		if err := p.expectKeyword("BY"); err != nil {
			return nil, err
		}
		for {
			e, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			stmt.GroupBy = append(stmt.GroupBy, e)
			if !p.acceptOp(",") {
				break
			}
		}
	}
	if p.acceptKeyword("HAVING") {
		h, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		stmt.Having = h
	}
	if p.acceptKeyword("ORDER") {
		if err := p.expectKeyword("BY"); err != nil {
			return nil, err
		}
		for {
			e, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			item := OrderItem{Expr: e}
			if p.acceptKeyword("DESC") {
				item.Desc = true
			} else {
				p.acceptKeyword("ASC")
			}
			stmt.OrderBy = append(stmt.OrderBy, item)
			if !p.acceptOp(",") {
				break
			}
		}
	}
	if p.acceptKeyword("LIMIT") {
		t := p.cur()
		if t.kind != tokNumber {
			return nil, errorf(t.pos, "LIMIT expects a number, found %q", t.text)
		}
		n, err := strconv.Atoi(t.text)
		if err != nil || n < 0 {
			return nil, errorf(t.pos, "invalid LIMIT %q", t.text)
		}
		p.i++
		stmt.Limit = n
	}
	if p.acceptKeyword("OFFSET") {
		t := p.cur()
		if t.kind != tokNumber {
			return nil, errorf(t.pos, "OFFSET expects a number, found %q", t.text)
		}
		n, err := strconv.Atoi(t.text)
		if err != nil || n < 0 {
			return nil, errorf(t.pos, "invalid OFFSET %q", t.text)
		}
		p.i++
		stmt.Offset = n
	}
	return stmt, nil
}

func (p *parser) parseSelectItem() (SelectItem, error) {
	if p.peekOp("*") {
		p.i++
		return SelectItem{Star: true}, nil
	}
	e, err := p.parseExpr()
	if err != nil {
		return SelectItem{}, err
	}
	item := SelectItem{Expr: e}
	if p.acceptKeyword("AS") {
		t := p.cur()
		if t.kind != tokIdent && t.kind != tokString {
			return SelectItem{}, errorf(t.pos, "expected alias after AS, found %q", t.text)
		}
		p.i++
		item.Alias = t.text
	} else if t := p.cur(); t.kind == tokIdent {
		// bare alias: SELECT x foo
		p.i++
		item.Alias = t.text
	}
	return item, nil
}

func (p *parser) parseTableRef() (TableRef, error) {
	left, err := p.parseBaseTable()
	if err != nil {
		return nil, err
	}
	var ref TableRef = left
	for {
		var jt JoinType
		switch {
		case p.acceptKeyword("JOIN"):
			jt = InnerJoin
		case p.peekKeyword("INNER"):
			p.i++
			if err := p.expectKeyword("JOIN"); err != nil {
				return nil, err
			}
			jt = InnerJoin
		case p.peekKeyword("LEFT"):
			p.i++
			p.acceptKeyword("OUTER")
			if err := p.expectKeyword("JOIN"); err != nil {
				return nil, err
			}
			jt = LeftJoin
		case p.acceptOp(","):
			// comma join parses as inner join with ON TRUE; the WHERE
			// clause supplies the condition.
			right, err := p.parseBaseTable()
			if err != nil {
				return nil, err
			}
			ref = &Join{Type: InnerJoin, Left: ref, Right: right,
				On: &Literal{Value: types.NewBool(true)}}
			continue
		default:
			return ref, nil
		}
		right, err := p.parseBaseTable()
		if err != nil {
			return nil, err
		}
		if err := p.expectKeyword("ON"); err != nil {
			return nil, err
		}
		cond, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		ref = &Join{Type: jt, Left: ref, Right: right, On: cond}
	}
}

func (p *parser) parseBaseTable() (*BaseTable, error) {
	t := p.cur()
	if t.kind != tokIdent {
		return nil, errorf(t.pos, "expected table name, found %q", t.text)
	}
	p.i++
	bt := &BaseTable{Name: t.text}
	if p.acceptKeyword("AS") {
		a := p.cur()
		if a.kind != tokIdent {
			return nil, errorf(a.pos, "expected alias after AS, found %q", a.text)
		}
		p.i++
		bt.Alias = a.text
	} else if a := p.cur(); a.kind == tokIdent {
		p.i++
		bt.Alias = a.text
	}
	if bt.Alias == "" {
		bt.Alias = bt.Name
	}
	return bt, nil
}

// Expression grammar (loosest to tightest):
//
//	expr      := orExpr
//	orExpr    := andExpr { OR andExpr }
//	andExpr   := notExpr { AND notExpr }
//	notExpr   := [NOT] cmpExpr
//	cmpExpr   := addExpr [ (θ addExpr) | IN (...) | BETWEEN a AND b
//	                        | IS [NOT] NULL | LIKE pattern ]
//	addExpr   := mulExpr { (+|-) mulExpr }
//	mulExpr   := unary { (*|/|%) unary }
//	unary     := [-] primary
//	primary   := literal | columnRef | funcCall | (expr) | (SELECT...)
//	             | CASE ... END | EXISTS (SELECT...)
func (p *parser) parseExpr() (Expr, error) { return p.parseOr() }

func (p *parser) parseOr() (Expr, error) {
	l, err := p.parseAnd()
	if err != nil {
		return nil, err
	}
	for p.acceptKeyword("OR") {
		r, err := p.parseAnd()
		if err != nil {
			return nil, err
		}
		l = &Binary{Op: OpOr, L: l, R: r}
	}
	return l, nil
}

func (p *parser) parseAnd() (Expr, error) {
	l, err := p.parseNot()
	if err != nil {
		return nil, err
	}
	for p.acceptKeyword("AND") {
		r, err := p.parseNot()
		if err != nil {
			return nil, err
		}
		l = &Binary{Op: OpAnd, L: l, R: r}
	}
	return l, nil
}

func (p *parser) parseNot() (Expr, error) {
	if p.acceptKeyword("NOT") {
		x, err := p.parseNot()
		if err != nil {
			return nil, err
		}
		return &Unary{Op: "NOT", X: x}, nil
	}
	return p.parseComparison()
}

var cmpOps = map[string]BinaryOp{
	"=": OpEq, "<>": OpNe, "!=": OpNe, "<": OpLt, "<=": OpLe, ">": OpGt, ">=": OpGe,
}

func (p *parser) parseComparison() (Expr, error) {
	l, err := p.parseAdd()
	if err != nil {
		return nil, err
	}
	t := p.cur()
	if t.kind == tokOp {
		if op, ok := cmpOps[t.text]; ok {
			p.i++
			r, err := p.parseAdd()
			if err != nil {
				return nil, err
			}
			return &Binary{Op: op, L: l, R: r}, nil
		}
	}
	negated := false
	if p.peekKeyword("NOT") {
		// lookahead for NOT IN / NOT BETWEEN / NOT LIKE
		save := p.i
		p.i++
		switch {
		case p.peekKeyword("IN"), p.peekKeyword("BETWEEN"), p.peekKeyword("LIKE"):
			negated = true
		default:
			p.i = save
			return l, nil
		}
	}
	switch {
	case p.acceptKeyword("IN"):
		return p.parseInTail(l, negated)
	case p.acceptKeyword("BETWEEN"):
		lo, err := p.parseAdd()
		if err != nil {
			return nil, err
		}
		if err := p.expectKeyword("AND"); err != nil {
			return nil, err
		}
		hi, err := p.parseAdd()
		if err != nil {
			return nil, err
		}
		return &Between{X: l, Lo: lo, Hi: hi, Negated: negated}, nil
	case p.acceptKeyword("LIKE"):
		pat, err := p.parseAdd()
		if err != nil {
			return nil, err
		}
		like := Expr(&Binary{Op: OpLike, L: l, R: pat})
		if negated {
			like = &Unary{Op: "NOT", X: like}
		}
		return like, nil
	case p.acceptKeyword("IS"):
		neg := p.acceptKeyword("NOT")
		if err := p.expectKeyword("NULL"); err != nil {
			return nil, err
		}
		return &IsNull{X: l, Negated: neg}, nil
	}
	return l, nil
}

func (p *parser) parseInTail(l Expr, negated bool) (Expr, error) {
	if err := p.expectOp("("); err != nil {
		return nil, err
	}
	if p.peekKeyword("SELECT") {
		sub, err := p.parseSelect()
		if err != nil {
			return nil, err
		}
		if err := p.expectOp(")"); err != nil {
			return nil, err
		}
		return &InExpr{X: l, Sub: sub, Negated: negated}, nil
	}
	var list []Expr
	for {
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		list = append(list, e)
		if !p.acceptOp(",") {
			break
		}
	}
	if err := p.expectOp(")"); err != nil {
		return nil, err
	}
	return &InExpr{X: l, List: list, Negated: negated}, nil
}

func (p *parser) parseAdd() (Expr, error) {
	l, err := p.parseMul()
	if err != nil {
		return nil, err
	}
	for {
		switch {
		case p.acceptOp("+"):
			r, err := p.parseMul()
			if err != nil {
				return nil, err
			}
			l = &Binary{Op: OpAdd, L: l, R: r}
		case p.acceptOp("-"):
			r, err := p.parseMul()
			if err != nil {
				return nil, err
			}
			l = &Binary{Op: OpSub, L: l, R: r}
		default:
			return l, nil
		}
	}
}

func (p *parser) parseMul() (Expr, error) {
	l, err := p.parseUnary()
	if err != nil {
		return nil, err
	}
	for {
		var op BinaryOp
		switch {
		case p.acceptOp("*"):
			op = OpMul
		case p.acceptOp("/"):
			op = OpDiv
		case p.acceptOp("%"):
			op = OpMod
		default:
			return l, nil
		}
		r, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		l = &Binary{Op: op, L: l, R: r}
	}
}

func (p *parser) parseUnary() (Expr, error) {
	if p.acceptOp("-") {
		x, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		// Fold -literal immediately so "-3" is a literal, not an op.
		if lit, ok := x.(*Literal); ok {
			switch lit.Value.Kind() {
			case types.KindInt:
				return &Literal{Value: types.NewInt(-lit.Value.Int())}, nil
			case types.KindFloat:
				return &Literal{Value: types.NewFloat(-lit.Value.Float())}, nil
			}
		}
		return &Unary{Op: "-", X: x}, nil
	}
	p.acceptOp("+")
	return p.parsePrimary()
}

func (p *parser) parsePrimary() (Expr, error) {
	t := p.cur()
	switch t.kind {
	case tokNumber:
		p.i++
		if strings.ContainsAny(t.text, ".eE") {
			f, err := strconv.ParseFloat(t.text, 64)
			if err != nil {
				return nil, errorf(t.pos, "invalid number %q", t.text)
			}
			return &Literal{Value: types.NewFloat(f)}, nil
		}
		n, err := strconv.ParseInt(t.text, 10, 64)
		if err != nil {
			return nil, errorf(t.pos, "invalid integer %q", t.text)
		}
		return &Literal{Value: types.NewInt(n)}, nil
	case tokString:
		p.i++
		return &Literal{Value: types.NewString(t.text)}, nil
	case tokKeyword:
		switch t.text {
		case "NULL":
			p.i++
			return &Literal{Value: types.Null}, nil
		case "TRUE":
			p.i++
			return &Literal{Value: types.NewBool(true)}, nil
		case "FALSE":
			p.i++
			return &Literal{Value: types.NewBool(false)}, nil
		case "CASE":
			return p.parseCase()
		case "EXISTS":
			p.i++
			if err := p.expectOp("("); err != nil {
				return nil, err
			}
			sub, err := p.parseSelect()
			if err != nil {
				return nil, err
			}
			if err := p.expectOp(")"); err != nil {
				return nil, err
			}
			return &ExistsExpr{Sub: sub}, nil
		}
		return nil, errorf(t.pos, "unexpected keyword %q in expression", t.text)
	case tokIdent:
		p.i++
		// function call?
		if p.peekOp("(") {
			return p.parseCallTail(t.text)
		}
		// qualified column?
		if p.acceptOp(".") {
			col := p.cur()
			if col.kind != tokIdent {
				return nil, errorf(col.pos, "expected column after %q.", t.text)
			}
			p.i++
			return &ColumnRef{Table: t.text, Name: col.Name()}, nil
		}
		return &ColumnRef{Name: t.text}, nil
	case tokOp:
		if t.text == "(" {
			p.i++
			if p.peekKeyword("SELECT") {
				sub, err := p.parseSelect()
				if err != nil {
					return nil, err
				}
				if err := p.expectOp(")"); err != nil {
					return nil, err
				}
				return &Subquery{Select: sub}, nil
			}
			e, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			if err := p.expectOp(")"); err != nil {
				return nil, err
			}
			return e, nil
		}
	}
	return nil, errorf(t.pos, "unexpected token %q in expression", t.text)
}

// Name returns the identifier text of a token (helper to keep call sites
// readable).
func (t token) Name() string { return t.text }

func (p *parser) parseCallTail(name string) (Expr, error) {
	if err := p.expectOp("("); err != nil {
		return nil, err
	}
	call := &FuncCall{Name: strings.ToUpper(name)}
	if p.acceptOp("*") {
		call.Star = true
		if err := p.expectOp(")"); err != nil {
			return nil, err
		}
		return call, nil
	}
	if p.acceptOp(")") {
		return call, nil
	}
	if p.acceptKeyword("DISTINCT") {
		call.Distinct = true
	}
	for {
		a, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		call.Args = append(call.Args, a)
		if !p.acceptOp(",") {
			break
		}
	}
	if err := p.expectOp(")"); err != nil {
		return nil, err
	}
	return call, nil
}

func (p *parser) parseCase() (Expr, error) {
	if err := p.expectKeyword("CASE"); err != nil {
		return nil, err
	}
	c := &Case{}
	if !p.peekKeyword("WHEN") {
		op, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		c.Operand = op
	}
	for p.acceptKeyword("WHEN") {
		cond, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if err := p.expectKeyword("THEN"); err != nil {
			return nil, err
		}
		res, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		c.Whens = append(c.Whens, CaseWhen{Cond: cond, Result: res})
	}
	if len(c.Whens) == 0 {
		return nil, errorf(p.cur().pos, "CASE requires at least one WHEN arm")
	}
	if p.acceptKeyword("ELSE") {
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		c.Else = e
	}
	if err := p.expectKeyword("END"); err != nil {
		return nil, err
	}
	return c, nil
}
