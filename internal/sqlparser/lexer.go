package sqlparser

import (
	"fmt"
	"strings"
	"unicode"
)

// tokenKind classifies lexer tokens.
type tokenKind int

const (
	tokEOF tokenKind = iota
	tokIdent
	tokKeyword
	tokNumber
	tokString
	tokOp // punctuation and operators
)

// token is one lexeme with its source position (byte offset).
type token struct {
	kind tokenKind
	text string // keywords are upper-cased; idents keep original case
	pos  int
}

// keywords recognized by the lexer. Everything else alphanumeric is an
// identifier.
var keywords = map[string]bool{
	"SELECT": true, "FROM": true, "WHERE": true, "GROUP": true, "BY": true,
	"HAVING": true, "ORDER": true, "LIMIT": true, "AS": true, "AND": true,
	"OR": true, "NOT": true, "IN": true, "IS": true, "NULL": true,
	"BETWEEN": true, "LIKE": true, "CASE": true, "WHEN": true, "THEN": true,
	"ELSE": true, "END": true, "JOIN": true, "INNER": true, "LEFT": true,
	"OUTER": true, "ON": true, "DISTINCT": true, "ASC": true, "DESC": true,
	"TRUE": true, "FALSE": true, "EXISTS": true, "ALL": true,
	"CREATE": true, "TABLE": true, "INSERT": true, "INTO": true,
	"VALUES": true, "DROP": true, "OFFSET": true,
}

// Error is a parse error carrying the byte position in the input.
type Error struct {
	Pos int
	Msg string
}

// Error implements error.
func (e *Error) Error() string { return fmt.Sprintf("sql: %s (at byte %d)", e.Msg, e.Pos) }

func errorf(pos int, format string, args ...interface{}) error {
	return &Error{Pos: pos, Msg: fmt.Sprintf(format, args...)}
}

// lex tokenizes the input. Comments (-- to end of line) are skipped.
func lex(input string) ([]token, error) {
	var toks []token
	i := 0
	n := len(input)
	for i < n {
		c := input[i]
		switch {
		case c == ' ' || c == '\t' || c == '\n' || c == '\r':
			i++
		case c == '-' && i+1 < n && input[i+1] == '-':
			for i < n && input[i] != '\n' {
				i++
			}
		case isDigit(c) || (c == '.' && i+1 < n && isDigit(input[i+1])):
			start := i
			seenDot := false
			seenExp := false
			for i < n {
				d := input[i]
				if isDigit(d) {
					i++
				} else if d == '.' && !seenDot && !seenExp {
					seenDot = true
					i++
				} else if (d == 'e' || d == 'E') && !seenExp && i > start {
					seenExp = true
					i++
					if i < n && (input[i] == '+' || input[i] == '-') {
						i++
					}
				} else {
					break
				}
			}
			toks = append(toks, token{tokNumber, input[start:i], start})
		case c == '\'':
			start := i
			i++
			var sb strings.Builder
			closed := false
			for i < n {
				if input[i] == '\'' {
					if i+1 < n && input[i+1] == '\'' { // escaped quote
						sb.WriteByte('\'')
						i += 2
						continue
					}
					i++
					closed = true
					break
				}
				sb.WriteByte(input[i])
				i++
			}
			if !closed {
				return nil, errorf(start, "unterminated string literal")
			}
			toks = append(toks, token{tokString, sb.String(), start})
		case isIdentStart(rune(c)):
			start := i
			for i < n && isIdentPart(rune(input[i])) {
				i++
			}
			word := input[start:i]
			up := strings.ToUpper(word)
			if keywords[up] {
				toks = append(toks, token{tokKeyword, up, start})
			} else {
				toks = append(toks, token{tokIdent, word, start})
			}
		default:
			start := i
			// multi-char operators first
			two := ""
			if i+1 < n {
				two = input[i : i+2]
			}
			switch two {
			case "<=", ">=", "<>", "!=":
				toks = append(toks, token{tokOp, two, start})
				i += 2
				continue
			}
			switch c {
			case '+', '-', '*', '/', '%', '(', ')', ',', '=', '<', '>', '.', ';':
				toks = append(toks, token{tokOp, string(c), start})
				i++
			default:
				return nil, errorf(i, "unexpected character %q", string(c))
			}
		}
	}
	toks = append(toks, token{tokEOF, "", n})
	return toks, nil
}

func isDigit(c byte) bool { return c >= '0' && c <= '9' }

func isIdentStart(r rune) bool {
	return r == '_' || unicode.IsLetter(r)
}

func isIdentPart(r rune) bool {
	return r == '_' || unicode.IsLetter(r) || unicode.IsDigit(r)
}
