// Package retry provides the small bounded-backoff policy shared by
// the runtime's containment ladders: the serial redo of a failed
// parallel batch (core/parallel.go) and the shard re-dispatch rung of
// the coordinator's recovery ladder (core/coordinator.go). The policy
// is deliberately tiny — attempts, a doubling backoff between a base
// and a cap, and optional deterministic jitter — because the ladders it
// backs must stay replayable: given the same seed and site, a retried
// schedule sleeps the same intervals on every run.
package retry

import (
	"time"

	"fluodb/internal/bootstrap"
)

// Policy describes one bounded retry ladder.
type Policy struct {
	// Attempts is the total number of tries (≥1; 0 resolves to 1).
	Attempts int
	// Base is the sleep before the second attempt; each later attempt
	// doubles it up to Cap. Zero means no sleeping at all.
	Base time.Duration
	// Cap bounds the doubled backoff (0 = uncapped).
	Cap time.Duration
	// Seed, when nonzero, enables deterministic jitter: each sleep is
	// scaled into [50%, 100%] of its nominal value by a pure hash of
	// (Seed, site, attempt). Zero keeps the exact nominal backoff —
	// the mode the pre-existing serial-retry ladder pins in tests.
	Seed uint64
}

// attempts resolves the zero value.
func (p Policy) attempts() int {
	if p.Attempts <= 0 {
		return 1
	}
	return p.Attempts
}

// Backoff returns the sleep to take before the given 1-based attempt at
// the given site (attempt 1 never sleeps). Deterministic: equal
// (Policy, site, attempt) yield equal durations.
func (p Policy) Backoff(site uint64, attempt int) time.Duration {
	if attempt <= 1 || p.Base <= 0 {
		return 0
	}
	d := p.Base
	for i := 2; i < attempt; i++ {
		d *= 2
		if p.Cap > 0 && d >= p.Cap {
			d = p.Cap
			break
		}
	}
	if p.Cap > 0 && d > p.Cap {
		d = p.Cap
	}
	if p.Seed != 0 {
		// Scale into [50%, 100%]: enough spread to de-synchronize
		// retries, never longer than the nominal ladder.
		h := bootstrap.Mix64(p.Seed ^ site ^ uint64(attempt)*0x9E3779B97F4A7C15)
		frac := 0.5 + 0.5*float64(h>>11)/(1<<53)
		d = time.Duration(float64(d) * frac)
	}
	return d
}

// Do runs fn up to p.Attempts times, sleeping Backoff(site, attempt)
// before each retry, until fn returns nil. It returns the last error
// (nil on success). fn receives the 1-based attempt number.
func (p Policy) Do(site uint64, fn func(attempt int) error) error {
	var err error
	for attempt := 1; attempt <= p.attempts(); attempt++ {
		if d := p.Backoff(site, attempt); d > 0 {
			time.Sleep(d)
		}
		if err = fn(attempt); err == nil {
			return nil
		}
	}
	return err
}
