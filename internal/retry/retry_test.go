package retry

import (
	"errors"
	"testing"
	"time"
)

// TestBackoffLadder pins the no-jitter ladder the serial-shard retry
// relies on: 0, base, 2·base, … capped.
func TestBackoffLadder(t *testing.T) {
	p := Policy{Attempts: 6, Base: time.Millisecond, Cap: 8 * time.Millisecond}
	want := []time.Duration{0, time.Millisecond, 2 * time.Millisecond,
		4 * time.Millisecond, 8 * time.Millisecond, 8 * time.Millisecond}
	for i, w := range want {
		if got := p.Backoff(0, i+1); got != w {
			t.Fatalf("attempt %d: backoff %v, want %v", i+1, got, w)
		}
	}
	if got := (Policy{Attempts: 3}).Backoff(7, 3); got != 0 {
		t.Fatalf("zero Base must never sleep, got %v", got)
	}
}

// TestBackoffJitterDeterministic checks jittered backoffs are a pure
// function of (seed, site, attempt) and stay within [50%, 100%] of the
// nominal ladder.
func TestBackoffJitterDeterministic(t *testing.T) {
	p := Policy{Attempts: 4, Base: 4 * time.Millisecond, Cap: 32 * time.Millisecond, Seed: 99}
	for site := uint64(0); site < 8; site++ {
		for attempt := 2; attempt <= 4; attempt++ {
			a := p.Backoff(site, attempt)
			b := p.Backoff(site, attempt)
			if a != b {
				t.Fatalf("site %d attempt %d: %v != %v (non-deterministic)", site, attempt, a, b)
			}
			nominal := Policy{Attempts: p.Attempts, Base: p.Base, Cap: p.Cap}.Backoff(site, attempt)
			if a < nominal/2 || a > nominal {
				t.Fatalf("site %d attempt %d: jittered %v outside [%v, %v]", site, attempt, a, nominal/2, nominal)
			}
		}
	}
	// Different sites should not all collapse onto one duration.
	seen := map[time.Duration]bool{}
	for site := uint64(0); site < 32; site++ {
		seen[p.Backoff(site, 2)] = true
	}
	if len(seen) < 2 {
		t.Fatal("jitter produced identical backoffs across 32 sites")
	}
}

// TestDo checks the attempt loop: stops on first success, returns the
// last error on exhaustion, resolves Attempts 0 to one try.
func TestDo(t *testing.T) {
	calls := 0
	err := Policy{Attempts: 5}.Do(0, func(attempt int) error {
		calls++
		if attempt != calls {
			t.Fatalf("attempt %d on call %d", attempt, calls)
		}
		if attempt < 3 {
			return errors.New("not yet")
		}
		return nil
	})
	if err != nil || calls != 3 {
		t.Fatalf("Do: err=%v calls=%d, want nil/3", err, calls)
	}

	boom := errors.New("boom")
	calls = 0
	if err := (Policy{Attempts: 2}).Do(0, func(int) error { calls++; return boom }); !errors.Is(err, boom) || calls != 2 {
		t.Fatalf("exhausted Do: err=%v calls=%d, want boom/2", err, calls)
	}

	calls = 0
	if err := (Policy{}).Do(0, func(int) error { calls++; return boom }); !errors.Is(err, boom) || calls != 1 {
		t.Fatalf("zero-value Do: err=%v calls=%d, want boom/1", err, calls)
	}
}
