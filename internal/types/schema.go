package types

import (
	"fmt"
	"math"
	"strconv"
	"strings"
)

// Column describes one attribute of a relation.
type Column struct {
	Name string
	Type Kind
}

// Schema is an ordered list of columns.
type Schema []Column

// NewSchema builds a schema from alternating name/kind pairs, e.g.
// NewSchema("a", KindInt, "b", KindFloat). It panics on malformed input;
// it is intended for literals in tests and generators.
func NewSchema(pairs ...interface{}) Schema {
	if len(pairs)%2 != 0 {
		panic("types: NewSchema needs name/kind pairs")
	}
	s := make(Schema, 0, len(pairs)/2)
	for i := 0; i < len(pairs); i += 2 {
		name, ok := pairs[i].(string)
		if !ok {
			panic(fmt.Sprintf("types: NewSchema pair %d: name must be string", i/2))
		}
		kind, ok := pairs[i+1].(Kind)
		if !ok {
			panic(fmt.Sprintf("types: NewSchema pair %d: type must be Kind", i/2))
		}
		s = append(s, Column{Name: name, Type: kind})
	}
	return s
}

// ColumnIndex returns the index of the named column (case-insensitive),
// or -1 if absent.
func (s Schema) ColumnIndex(name string) int {
	for i, c := range s {
		if strings.EqualFold(c.Name, name) {
			return i
		}
	}
	return -1
}

// Names returns the column names in order.
func (s Schema) Names() []string {
	out := make([]string, len(s))
	for i, c := range s {
		out[i] = c.Name
	}
	return out
}

// String renders the schema as "(a BIGINT, b DOUBLE)".
func (s Schema) String() string {
	var b strings.Builder
	b.WriteByte('(')
	for i, c := range s {
		if i > 0 {
			b.WriteString(", ")
		}
		b.WriteString(c.Name)
		b.WriteByte(' ')
		b.WriteString(c.Type.String())
	}
	b.WriteByte(')')
	return b.String()
}

// Row is a tuple of values laid out in schema order.
type Row []Value

// Clone returns a deep copy of the row (Values are immutable, so a
// shallow copy of the slice suffices).
func (r Row) Clone() Row {
	out := make(Row, len(r))
	copy(out, r)
	return out
}

// HashKey hashes the projection of the row onto the given column indexes.
// It is consistent with KeyEqual.
func (r Row) HashKey(cols []int) uint64 {
	const prime64 = 1099511628211
	h := uint64(14695981039346656037)
	for _, c := range cols {
		h ^= r[c].Hash()
		h *= prime64
	}
	return h
}

// KeyEqual reports whether two rows agree on the given column indexes.
func KeyEqual(a, b Row, cols []int) bool {
	for _, c := range cols {
		if !Equal(a[c], b[c]) {
			return false
		}
	}
	return true
}

// KeyString renders the projection of the row onto cols as a canonical
// string, usable as a map key. It distinguishes NULL from "NULL" and 1
// from "1" via kind tags.
func (r Row) KeyString(cols []int) string {
	if len(cols) == 1 {
		return KeyString1(r[cols[0]])
	}
	var b strings.Builder
	for i, c := range cols {
		if i > 0 {
			b.WriteByte(0x1f)
		}
		appendKey(&b, r[c])
	}
	return b.String()
}

// KeyString1 is the canonical key of a single value (the common
// single-column grouping fast path, avoiding slice allocation).
func KeyString1(v Value) string {
	switch v.kind {
	case KindNull:
		return "Z"
	case KindString:
		return "S" + v.s
	case KindBool, KindInt:
		// Integral numerics of magnitude < 2^53 print identically via
		// FormatInt and the shortest-float format, so the int fast path
		// stays consistent with float-valued keys.
		if v.i > -(1<<53) && v.i < 1<<53 {
			return "N" + strconv.FormatInt(v.i, 10)
		}
		f, _ := v.AsFloat()
		return "N" + NewFloat(f).String()
	default:
		f, _ := v.AsFloat()
		if f == math.Trunc(f) && f > -(1<<53) && f < 1<<53 {
			return "N" + strconv.FormatInt(int64(f), 10)
		}
		return "N" + NewFloat(f).String()
	}
}

// appendKey writes one value's canonical key segment.
func appendKey(b *strings.Builder, v Value) {
	switch v.kind {
	case KindNull:
		b.WriteByte('Z')
	case KindString:
		b.WriteByte('S')
		b.WriteString(v.s)
	default:
		rest := KeyString1(v)
		b.WriteString(rest)
	}
}

// String renders the row for debugging: "[1, 2.5, hello]".
func (r Row) String() string {
	parts := make([]string, len(r))
	for i, v := range r {
		parts[i] = v.String()
	}
	return "[" + strings.Join(parts, ", ") + "]"
}
