// Package types defines the value model shared by every layer of FluoDB:
// scalar values, rows, schemas, comparison, hashing and coercion rules.
//
// The engine uses a small tagged-union Value rather than interface{} so
// that hot loops (filters, aggregates, delta maintenance) avoid boxing.
package types

import (
	"fmt"
	"math"
	"strconv"
	"strings"
)

// Kind enumerates the SQL types supported by the engine.
type Kind uint8

const (
	// KindNull is the type of the SQL NULL literal.
	KindNull Kind = iota
	// KindBool is a boolean.
	KindBool
	// KindInt is a 64-bit signed integer.
	KindInt
	// KindFloat is a 64-bit IEEE-754 float (SQL DOUBLE).
	KindFloat
	// KindString is a UTF-8 string (SQL VARCHAR).
	KindString
)

// String implements fmt.Stringer.
func (k Kind) String() string {
	switch k {
	case KindNull:
		return "NULL"
	case KindBool:
		return "BOOLEAN"
	case KindInt:
		return "BIGINT"
	case KindFloat:
		return "DOUBLE"
	case KindString:
		return "VARCHAR"
	default:
		return fmt.Sprintf("Kind(%d)", uint8(k))
	}
}

// Numeric reports whether the kind is a numeric type.
func (k Kind) Numeric() bool { return k == KindInt || k == KindFloat }

// Value is a single SQL scalar. The zero Value is SQL NULL.
type Value struct {
	kind Kind
	i    int64   // KindBool (0/1) and KindInt payload
	f    float64 // KindFloat payload
	s    string  // KindString payload
}

// Null is the SQL NULL value.
var Null = Value{}

// NewBool returns a boolean value.
func NewBool(b bool) Value {
	var i int64
	if b {
		i = 1
	}
	return Value{kind: KindBool, i: i}
}

// NewInt returns an integer value.
func NewInt(i int64) Value { return Value{kind: KindInt, i: i} }

// NewFloat returns a float value.
func NewFloat(f float64) Value { return Value{kind: KindFloat, f: f} }

// NewString returns a string value.
func NewString(s string) Value { return Value{kind: KindString, s: s} }

// Kind returns the value's type tag.
func (v Value) Kind() Kind { return v.kind }

// IsNull reports whether the value is SQL NULL.
func (v Value) IsNull() bool { return v.kind == KindNull }

// Bool returns the boolean payload. It panics if the value is not a bool.
func (v Value) Bool() bool {
	if v.kind != KindBool {
		panic(fmt.Sprintf("types: Bool() on %s value", v.kind))
	}
	return v.i != 0
}

// Int returns the integer payload. It panics if the value is not an int.
func (v Value) Int() int64 {
	if v.kind != KindInt {
		panic(fmt.Sprintf("types: Int() on %s value", v.kind))
	}
	return v.i
}

// Float returns the float payload. It panics if the value is not a float.
func (v Value) Float() float64 {
	if v.kind != KindFloat {
		panic(fmt.Sprintf("types: Float() on %s value", v.kind))
	}
	return v.f
}

// Str returns the string payload. It panics if the value is not a string.
func (v Value) Str() string {
	if v.kind != KindString {
		panic(fmt.Sprintf("types: Str() on %s value", v.kind))
	}
	return v.s
}

// AsFloat coerces a numeric or boolean value to float64.
// The second result is false for NULL and non-numeric values.
func (v Value) AsFloat() (float64, bool) {
	switch v.kind {
	case KindInt:
		return float64(v.i), true
	case KindFloat:
		return v.f, true
	case KindBool:
		return float64(v.i), true
	default:
		return 0, false
	}
}

// AsInt coerces a numeric value to int64, truncating floats toward zero.
// The second result is false for NULL and non-numeric values.
func (v Value) AsInt() (int64, bool) {
	switch v.kind {
	case KindInt:
		return v.i, true
	case KindFloat:
		return int64(v.f), true
	case KindBool:
		return v.i, true
	default:
		return 0, false
	}
}

// Truthy reports whether the value counts as true in a WHERE clause
// (three-valued logic: NULL is not truthy).
func (v Value) Truthy() bool {
	switch v.kind {
	case KindBool:
		return v.i != 0
	case KindInt:
		return v.i != 0
	case KindFloat:
		return v.f != 0
	default:
		return false
	}
}

// String renders the value the way the CLI prints result cells.
func (v Value) String() string {
	switch v.kind {
	case KindNull:
		return "NULL"
	case KindBool:
		if v.i != 0 {
			return "true"
		}
		return "false"
	case KindInt:
		return strconv.FormatInt(v.i, 10)
	case KindFloat:
		return strconv.FormatFloat(v.f, 'g', -1, 64)
	case KindString:
		return v.s
	default:
		return fmt.Sprintf("Value(kind=%d)", uint8(v.kind))
	}
}

// SQLLiteral renders the value as a SQL literal (strings quoted).
func (v Value) SQLLiteral() string {
	if v.kind == KindString {
		return "'" + strings.ReplaceAll(v.s, "'", "''") + "'"
	}
	return v.String()
}

// Compare orders two values. NULL sorts before everything; numeric kinds
// compare by value across int/float; bools compare false<true; strings
// compare lexicographically. Comparing a string with a number orders by
// kind tag (deterministic but arbitrary), matching sort stability needs.
func Compare(a, b Value) int {
	an, bn := a.kind == KindNull, b.kind == KindNull
	switch {
	case an && bn:
		return 0
	case an:
		return -1
	case bn:
		return 1
	}
	if af, ok := a.AsFloat(); ok {
		if bf, ok2 := b.AsFloat(); ok2 {
			// Exact path for int/int to avoid float rounding on huge ints.
			if a.kind == KindInt && b.kind == KindInt {
				switch {
				case a.i < b.i:
					return -1
				case a.i > b.i:
					return 1
				default:
					return 0
				}
			}
			switch {
			case af < bf:
				return -1
			case af > bf:
				return 1
			default:
				return 0
			}
		}
	}
	if a.kind == KindString && b.kind == KindString {
		return strings.Compare(a.s, b.s)
	}
	// Mixed incomparable kinds: order by kind tag.
	switch {
	case a.kind < b.kind:
		return -1
	case a.kind > b.kind:
		return 1
	default:
		return 0
	}
}

// Equal reports value equality under Compare semantics (NULL == NULL here;
// SQL ternary NULL handling is done by the expression layer).
func Equal(a, b Value) bool { return Compare(a, b) == 0 }

// Hash returns a 64-bit hash of the value, consistent with Equal: values
// that compare equal hash equally (ints and integral floats included).
func (v Value) Hash() uint64 {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	mix := func(b byte) { h ^= uint64(b); h *= prime64 }
	switch v.kind {
	case KindNull:
		mix(0)
	case KindBool, KindInt:
		// Hash as float bits when integral so 1 and 1.0 collide with Equal.
		f := float64(v.i)
		u := math.Float64bits(f)
		for i := 0; i < 8; i++ {
			mix(byte(u >> (8 * i)))
		}
	case KindFloat:
		f := v.f
		if f == 0 { // normalize -0.0
			f = 0
		}
		u := math.Float64bits(f)
		for i := 0; i < 8; i++ {
			mix(byte(u >> (8 * i)))
		}
	case KindString:
		mix(0x53) // kind salt so "" and NULL differ
		for i := 0; i < len(v.s); i++ {
			mix(v.s[i])
		}
	}
	return h
}

// ParseValue parses a CSV/literal token into the given kind.
// Empty strings parse to NULL for non-string kinds.
func ParseValue(tok string, kind Kind) (Value, error) {
	if tok == "" && kind != KindString {
		return Null, nil
	}
	switch kind {
	case KindBool:
		b, err := strconv.ParseBool(tok)
		if err != nil {
			return Null, fmt.Errorf("types: parse bool %q: %w", tok, err)
		}
		return NewBool(b), nil
	case KindInt:
		i, err := strconv.ParseInt(tok, 10, 64)
		if err != nil {
			return Null, fmt.Errorf("types: parse int %q: %w", tok, err)
		}
		return NewInt(i), nil
	case KindFloat:
		f, err := strconv.ParseFloat(tok, 64)
		if err != nil {
			return Null, fmt.Errorf("types: parse float %q: %w", tok, err)
		}
		return NewFloat(f), nil
	case KindString:
		return NewString(tok), nil
	case KindNull:
		return Null, nil
	default:
		return Null, fmt.Errorf("types: parse into unknown kind %v", kind)
	}
}
