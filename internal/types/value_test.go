package types

import (
	"math"
	"testing"
	"testing/quick"
)

func TestValueConstructorsAndAccessors(t *testing.T) {
	if !Null.IsNull() || Null.Kind() != KindNull {
		t.Fatalf("zero Value must be NULL, got kind %v", Null.Kind())
	}
	if v := NewBool(true); !v.Bool() || v.Kind() != KindBool {
		t.Errorf("NewBool(true) = %v", v)
	}
	if v := NewInt(-42); v.Int() != -42 || v.Kind() != KindInt {
		t.Errorf("NewInt(-42) = %v", v)
	}
	if v := NewFloat(3.5); v.Float() != 3.5 || v.Kind() != KindFloat {
		t.Errorf("NewFloat(3.5) = %v", v)
	}
	if v := NewString("hi"); v.Str() != "hi" || v.Kind() != KindString {
		t.Errorf("NewString = %v", v)
	}
}

func TestAccessorPanicsOnWrongKind(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Int() on a string value should panic")
		}
	}()
	_ = NewString("x").Int()
}

func TestAsFloatCoercion(t *testing.T) {
	cases := []struct {
		v    Value
		want float64
		ok   bool
	}{
		{NewInt(7), 7, true},
		{NewFloat(2.5), 2.5, true},
		{NewBool(true), 1, true},
		{NewBool(false), 0, true},
		{NewString("7"), 0, false},
		{Null, 0, false},
	}
	for _, c := range cases {
		got, ok := c.v.AsFloat()
		if got != c.want || ok != c.ok {
			t.Errorf("AsFloat(%v) = (%v,%v), want (%v,%v)", c.v, got, ok, c.want, c.ok)
		}
	}
}

func TestAsIntCoercion(t *testing.T) {
	if got, ok := NewFloat(3.9).AsInt(); !ok || got != 3 {
		t.Errorf("AsInt(3.9) = (%d,%v), want (3,true)", got, ok)
	}
	if _, ok := Null.AsInt(); ok {
		t.Error("AsInt(NULL) should fail")
	}
}

func TestTruthy(t *testing.T) {
	truthy := []Value{NewBool(true), NewInt(1), NewFloat(-0.5)}
	falsy := []Value{Null, NewBool(false), NewInt(0), NewFloat(0), NewString("x")}
	for _, v := range truthy {
		if !v.Truthy() {
			t.Errorf("%v should be truthy", v)
		}
	}
	for _, v := range falsy {
		if v.Truthy() {
			t.Errorf("%v should not be truthy", v)
		}
	}
}

func TestCompareOrdering(t *testing.T) {
	cases := []struct {
		a, b Value
		want int
	}{
		{Null, Null, 0},
		{Null, NewInt(0), -1},
		{NewInt(0), Null, 1},
		{NewInt(1), NewInt(2), -1},
		{NewInt(2), NewInt(2), 0},
		{NewInt(3), NewFloat(2.5), 1},
		{NewFloat(2.5), NewInt(3), -1},
		{NewInt(1), NewFloat(1.0), 0},
		{NewString("a"), NewString("b"), -1},
		{NewString("b"), NewString("b"), 0},
		{NewBool(false), NewBool(true), -1},
	}
	for _, c := range cases {
		if got := Compare(c.a, c.b); got != c.want {
			t.Errorf("Compare(%v,%v) = %d, want %d", c.a, c.b, got, c.want)
		}
	}
}

func TestCompareHugeIntsExact(t *testing.T) {
	// 2^62 and 2^62+1 are indistinguishable as float64; the int/int
	// fast path must still order them correctly.
	a, b := NewInt(1<<62), NewInt(1<<62+1)
	if Compare(a, b) != -1 || Compare(b, a) != 1 {
		t.Error("huge int comparison lost precision")
	}
}

func TestHashConsistentWithEqual(t *testing.T) {
	pairs := [][2]Value{
		{NewInt(1), NewFloat(1.0)},
		{NewBool(true), NewInt(1)},
		{NewFloat(0.0), NewFloat(math.Copysign(0, -1))},
		{NewString("x"), NewString("x")},
	}
	for _, p := range pairs {
		if !Equal(p[0], p[1]) {
			t.Fatalf("%v and %v should be Equal", p[0], p[1])
		}
		if p[0].Hash() != p[1].Hash() {
			t.Errorf("Equal values %v, %v hash differently", p[0], p[1])
		}
	}
	if Null.Hash() == NewString("").Hash() {
		t.Error("NULL and empty string should hash differently")
	}
}

func TestHashEqualPropertyQuick(t *testing.T) {
	// Property: for random int pairs, Equal implies equal hashes and
	// Compare is antisymmetric.
	f := func(a, b int64) bool {
		va, vb := NewInt(a), NewInt(b)
		if Equal(va, vb) && va.Hash() != vb.Hash() {
			return false
		}
		return Compare(va, vb) == -Compare(vb, va)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestCompareTransitivityQuick(t *testing.T) {
	f := func(a, b, c float64) bool {
		if math.IsNaN(a) || math.IsNaN(b) || math.IsNaN(c) {
			return true
		}
		va, vb, vc := NewFloat(a), NewFloat(b), NewFloat(c)
		if Compare(va, vb) <= 0 && Compare(vb, vc) <= 0 {
			return Compare(va, vc) <= 0
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestValueString(t *testing.T) {
	cases := []struct {
		v    Value
		want string
	}{
		{Null, "NULL"},
		{NewBool(true), "true"},
		{NewInt(-3), "-3"},
		{NewFloat(2.5), "2.5"},
		{NewString("hi"), "hi"},
	}
	for _, c := range cases {
		if got := c.v.String(); got != c.want {
			t.Errorf("String(%#v) = %q, want %q", c.v, got, c.want)
		}
	}
}

func TestSQLLiteralQuoting(t *testing.T) {
	if got := NewString("o'brien").SQLLiteral(); got != "'o''brien'" {
		t.Errorf("SQLLiteral = %q", got)
	}
	if got := NewInt(5).SQLLiteral(); got != "5" {
		t.Errorf("SQLLiteral = %q", got)
	}
}

func TestParseValue(t *testing.T) {
	cases := []struct {
		tok  string
		kind Kind
		want Value
	}{
		{"42", KindInt, NewInt(42)},
		{"2.5", KindFloat, NewFloat(2.5)},
		{"true", KindBool, NewBool(true)},
		{"hello", KindString, NewString("hello")},
		{"", KindInt, Null},
		{"", KindString, NewString("")},
	}
	for _, c := range cases {
		got, err := ParseValue(c.tok, c.kind)
		if err != nil {
			t.Errorf("ParseValue(%q,%v): %v", c.tok, c.kind, err)
			continue
		}
		if !Equal(got, c.want) || got.Kind() != c.want.Kind() {
			t.Errorf("ParseValue(%q,%v) = %v, want %v", c.tok, c.kind, got, c.want)
		}
	}
	if _, err := ParseValue("zap", KindInt); err == nil {
		t.Error("ParseValue of garbage int should error")
	}
}

func TestKindString(t *testing.T) {
	if KindFloat.String() != "DOUBLE" || KindInt.String() != "BIGINT" {
		t.Error("Kind.String mismatch")
	}
	if !KindInt.Numeric() || KindString.Numeric() {
		t.Error("Kind.Numeric mismatch")
	}
}
