package types

import (
	"testing"
	"testing/quick"
)

func TestNewSchemaAndLookup(t *testing.T) {
	s := NewSchema("id", KindInt, "name", KindString, "score", KindFloat)
	if len(s) != 3 {
		t.Fatalf("len = %d", len(s))
	}
	if s.ColumnIndex("name") != 1 {
		t.Error("ColumnIndex(name)")
	}
	if s.ColumnIndex("NAME") != 1 {
		t.Error("ColumnIndex should be case-insensitive")
	}
	if s.ColumnIndex("missing") != -1 {
		t.Error("ColumnIndex(missing)")
	}
	want := "(id BIGINT, name VARCHAR, score DOUBLE)"
	if s.String() != want {
		t.Errorf("String = %q, want %q", s.String(), want)
	}
	names := s.Names()
	if len(names) != 3 || names[2] != "score" {
		t.Errorf("Names = %v", names)
	}
}

func TestNewSchemaPanicsOnOddArgs(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewSchema("only-name")
}

func TestRowClone(t *testing.T) {
	r := Row{NewInt(1), NewString("a")}
	c := r.Clone()
	c[0] = NewInt(9)
	if r[0].Int() != 1 {
		t.Error("Clone must not alias the original")
	}
}

func TestKeyEqualAndHashKey(t *testing.T) {
	a := Row{NewInt(1), NewString("x"), NewFloat(2.0)}
	b := Row{NewInt(1), NewString("y"), NewFloat(2.0)}
	if !KeyEqual(a, b, []int{0, 2}) {
		t.Error("rows agree on cols 0,2")
	}
	if KeyEqual(a, b, []int{1}) {
		t.Error("rows differ on col 1")
	}
	if a.HashKey([]int{0, 2}) != b.HashKey([]int{0, 2}) {
		t.Error("equal keys must hash equal")
	}
}

func TestKeyStringDistinguishesKindsButNotNumericWidth(t *testing.T) {
	null := Row{Null}
	str := Row{NewString("NULL")}
	if null.KeyString([]int{0}) == str.KeyString([]int{0}) {
		t.Error("NULL and the string \"NULL\" must not collide")
	}
	i := Row{NewInt(1)}
	f := Row{NewFloat(1.0)}
	if i.KeyString([]int{0}) != f.KeyString([]int{0}) {
		t.Error("1 and 1.0 group together, consistent with Equal")
	}
}

func TestKeyStringSeparatorSafety(t *testing.T) {
	// ("a","b") and ("a\x1fb",) style collisions across different column
	// *counts* are impossible since cols is fixed per query; but two
	// 2-col keys must not collide when values shift across the separator.
	a := Row{NewString("x\x1f"), NewString("y")}
	b := Row{NewString("x"), NewString("\x1fy")}
	// These are genuinely ambiguous with a naive join; document that keys
	// include kind tags which keep this specific pair distinct.
	if a.KeyString([]int{0, 1}) == b.KeyString([]int{0, 1}) {
		t.Log("known limitation: control chars inside string keys may collide")
	}
}

func TestKeyStringEqualPropertyQuick(t *testing.T) {
	f := func(a, b int64) bool {
		ra := Row{NewInt(a)}
		rb := Row{NewInt(b)}
		sameKey := ra.KeyString([]int{0}) == rb.KeyString([]int{0})
		return sameKey == Equal(ra[0], rb[0])
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestRowString(t *testing.T) {
	r := Row{NewInt(1), NewString("a"), Null}
	if r.String() != "[1, a, NULL]" {
		t.Errorf("Row.String = %q", r.String())
	}
}

func BenchmarkKeyString1Int(b *testing.B) {
	v := NewInt(123456)
	for i := 0; i < b.N; i++ {
		_ = KeyString1(v)
	}
}

func BenchmarkKeyStringMultiCol(b *testing.B) {
	r := Row{NewInt(42), NewString("US"), NewFloat(2.5)}
	cols := []int{0, 1, 2}
	for i := 0; i < b.N; i++ {
		_ = r.KeyString(cols)
	}
}
