package storage

import (
	"fmt"
	"os"
	"path/filepath"
	"strings"
)

// SaveDir persists every table of the catalog into dir (created if
// needed): one typed-header CSV per table. Table names map to file
// names; names must therefore be filesystem-safe (the engine lower-cases
// and restricts them to SQL identifiers, which is sufficient).
func (c *Catalog) SaveDir(dir string) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return fmt.Errorf("storage: create %s: %w", dir, err)
	}
	for _, name := range c.Names() {
		t, ok := c.Get(name)
		if !ok {
			continue
		}
		path := filepath.Join(dir, name+".csv")
		if err := t.SaveCSVFile(path); err != nil {
			return fmt.Errorf("storage: save table %s: %w", name, err)
		}
	}
	return nil
}

// LoadDir loads every *.csv in dir (written by SaveDir, or hand-made
// typed-header CSVs) into a fresh catalog; the file stem becomes the
// table name.
func LoadDir(dir string) (*Catalog, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("storage: read %s: %w", dir, err)
	}
	cat := NewCatalog()
	found := false
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".csv") {
			continue
		}
		name := strings.TrimSuffix(e.Name(), ".csv")
		t, err := LoadCSVFile(name, filepath.Join(dir, e.Name()))
		if err != nil {
			return nil, fmt.Errorf("storage: load %s: %w", e.Name(), err)
		}
		cat.Put(t)
		found = true
	}
	if !found {
		return nil, fmt.Errorf("storage: no .csv tables in %s", dir)
	}
	return cat, nil
}
