// Package storage implements FluoDB's in-memory storage layer: tables,
// catalogs, CSV import/export, the random-shuffle pre-processing step of
// §2 (so any prefix of the data is a uniform sample), and the uniform
// mini-batch partitioning that drives G-OLA's execution model.
package storage

import (
	"encoding/csv"
	"fmt"
	"io"
	"math/rand"
	"os"
	"sort"
	"strings"
	"sync"

	"fluodb/internal/colstore"
	"fluodb/internal/types"
)

// Table is an in-memory relation.
type Table struct {
	name   string
	schema types.Schema
	rows   []types.Row

	colMu sync.Mutex
	col   *colstore.Table // lazy columnar encoding; see Columnar
}

// NewTable creates an empty table.
func NewTable(name string, schema types.Schema) *Table {
	return &Table{name: name, schema: schema}
}

// FromRows creates a table from pre-built rows (rows are not copied).
func FromRows(name string, schema types.Schema, rows []types.Row) *Table {
	return &Table{name: name, schema: schema, rows: rows}
}

// Name returns the table name.
func (t *Table) Name() string { return t.name }

// Schema returns the table schema.
func (t *Table) Schema() types.Schema { return t.schema }

// NumRows returns the row count.
func (t *Table) NumRows() int { return len(t.rows) }

// Rows exposes the backing rows. Callers must not mutate them.
func (t *Table) Rows() []types.Row { return t.rows }

// Append adds a row after arity checking.
func (t *Table) Append(row types.Row) error {
	if len(row) != len(t.schema) {
		return fmt.Errorf("storage: %s expects %d columns, row has %d",
			t.name, len(t.schema), len(row))
	}
	t.rows = append(t.rows, row)
	return nil
}

// AppendAll adds many rows (no copy) after arity checking each.
func (t *Table) AppendAll(rows []types.Row) error {
	for _, r := range rows {
		if err := t.Append(r); err != nil {
			return err
		}
	}
	return nil
}

// Columnar returns the table's columnar encoding, building it on first
// use and updating it incrementally after the row count changes
// (Append/AppendAll are the only mutators; they always change the
// count). Growth re-encodes only the open tail segment plus the
// appended suffix — sealed segments and dictionary codes are untouched
// (colstore.Table.Update). The encoding aliases the current backing
// rows, and consumers re-verify per batch with colstore.Table.Aligned
// before trusting it, so a stale cache can cause a slow row-path batch
// but never a wrong answer.
func (t *Table) Columnar() *colstore.Table {
	t.colMu.Lock()
	defer t.colMu.Unlock()
	if t.col == nil {
		t.col = colstore.Build(t.schema, t.rows, 0)
	} else if t.col.NumRows() != len(t.rows) {
		t.col.Update(t.rows)
	}
	return t.col
}

// DropColumnar releases the cached columnar encoding. The next Columnar
// call rebuilds it; until then consumers fall back to the row path
// (bit-identical by the colstore round-trip contract). Used by the
// engine's memory-budget degradation ladder.
func (t *Table) DropColumnar() {
	t.colMu.Lock()
	t.col = nil
	t.colMu.Unlock()
}

// ColumnarBytes reports the resident size of the cached columnar
// encoding (0 when none is cached).
func (t *Table) ColumnarBytes() int64 {
	t.colMu.Lock()
	defer t.colMu.Unlock()
	if t.col == nil {
		return 0
	}
	return t.col.MemBytes()
}

// Shuffled returns a new table with the rows randomly permuted using the
// given seed (Fisher–Yates). This is the pre-processing tool of §2 that
// makes any prefix of the data a uniform random sample, for datasets
// whose physical order correlates with query attributes.
func (t *Table) Shuffled(seed int64) *Table {
	rng := rand.New(rand.NewSource(seed))
	rows := make([]types.Row, len(t.rows))
	copy(rows, t.rows)
	rng.Shuffle(len(rows), func(i, j int) { rows[i], rows[j] = rows[j], rows[i] })
	return &Table{name: t.name, schema: t.schema, rows: rows}
}

// MiniBatches splits the table into k batches of uniform size (the last
// batch absorbs the remainder, so sizes differ by at most len/k). It
// panics if k < 1; callers validate user input.
func (t *Table) MiniBatches(k int) [][]types.Row {
	if k < 1 {
		panic("storage: MiniBatches requires k >= 1")
	}
	if k > len(t.rows) && len(t.rows) > 0 {
		k = len(t.rows)
	}
	if len(t.rows) == 0 {
		return make([][]types.Row, k)
	}
	out := make([][]types.Row, 0, k)
	size := len(t.rows) / k
	for i := 0; i < k; i++ {
		lo := i * size
		hi := lo + size
		if i == k-1 {
			hi = len(t.rows)
		}
		out = append(out, t.rows[lo:hi])
	}
	return out
}

// SortBy sorts the table in place by the given column indexes ascending
// (used by tests and by deterministic generators before shuffling).
func (t *Table) SortBy(cols ...int) {
	sort.SliceStable(t.rows, func(i, j int) bool {
		for _, c := range cols {
			cmp := types.Compare(t.rows[i][c], t.rows[j][c])
			if cmp != 0 {
				return cmp < 0
			}
		}
		return false
	})
}

// header renders "name:KIND" CSV header cells.
func headerFor(schema types.Schema) []string {
	h := make([]string, len(schema))
	for i, c := range schema {
		h[i] = c.Name + ":" + kindTag(c.Type)
	}
	return h
}

func kindTag(k types.Kind) string {
	switch k {
	case types.KindBool:
		return "bool"
	case types.KindInt:
		return "int"
	case types.KindFloat:
		return "float"
	case types.KindString:
		return "string"
	default:
		return "null"
	}
}

func kindFromTag(tag string) (types.Kind, error) {
	switch strings.ToLower(tag) {
	case "bool":
		return types.KindBool, nil
	case "int", "bigint":
		return types.KindInt, nil
	case "float", "double":
		return types.KindFloat, nil
	case "string", "varchar":
		return types.KindString, nil
	default:
		return types.KindNull, fmt.Errorf("storage: unknown type tag %q", tag)
	}
}

// WriteCSV serializes the table with a typed header row (name:type).
func (t *Table) WriteCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	if err := cw.Write(headerFor(t.schema)); err != nil {
		return err
	}
	rec := make([]string, len(t.schema))
	for _, row := range t.rows {
		for i, v := range row {
			if v.IsNull() {
				rec[i] = ""
			} else {
				rec[i] = v.String()
			}
		}
		if err := cw.Write(rec); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// ReadCSV parses a table written by WriteCSV.
func ReadCSV(name string, r io.Reader) (*Table, error) {
	cr := csv.NewReader(r)
	cr.ReuseRecord = true
	head, err := cr.Read()
	if err != nil {
		return nil, fmt.Errorf("storage: read CSV header: %w", err)
	}
	schema := make(types.Schema, len(head))
	for i, cell := range head {
		parts := strings.SplitN(cell, ":", 2)
		if len(parts) != 2 {
			return nil, fmt.Errorf("storage: header cell %q must be name:type", cell)
		}
		kind, err := kindFromTag(parts[1])
		if err != nil {
			return nil, err
		}
		schema[i] = types.Column{Name: parts[0], Type: kind}
	}
	t := NewTable(name, schema)
	for {
		rec, err := cr.Read()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, fmt.Errorf("storage: read CSV row: %w", err)
		}
		row := make(types.Row, len(schema))
		for i, cell := range rec {
			v, err := types.ParseValue(cell, schema[i].Type)
			if err != nil {
				return nil, err
			}
			row[i] = v
		}
		if err := t.Append(row); err != nil {
			return nil, err
		}
	}
	return t, nil
}

// SaveCSVFile writes the table to a file path.
func (t *Table) SaveCSVFile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	if err := t.WriteCSV(f); err != nil {
		return err
	}
	return f.Close()
}

// LoadCSVFile reads a table from a file path.
func LoadCSVFile(name, path string) (*Table, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return ReadCSV(name, f)
}

// Catalog is a thread-safe table registry.
type Catalog struct {
	mu     sync.RWMutex
	tables map[string]*Table
}

// NewCatalog creates an empty catalog.
func NewCatalog() *Catalog {
	return &Catalog{tables: map[string]*Table{}}
}

// Put registers a table under its (case-insensitive) name, replacing any
// previous table with the same name.
func (c *Catalog) Put(t *Table) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.tables[strings.ToLower(t.Name())] = t
}

// Get resolves a table by name.
func (c *Catalog) Get(name string) (*Table, bool) {
	c.mu.RLock()
	defer c.mu.RUnlock()
	t, ok := c.tables[strings.ToLower(name)]
	return t, ok
}

// Drop removes a table; it reports whether the table existed.
func (c *Catalog) Drop(name string) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	key := strings.ToLower(name)
	_, ok := c.tables[key]
	delete(c.tables, key)
	return ok
}

// Names lists registered table names, sorted.
func (c *Catalog) Names() []string {
	c.mu.RLock()
	defer c.mu.RUnlock()
	out := make([]string, 0, len(c.tables))
	for n := range c.tables {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}
