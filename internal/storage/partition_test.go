package storage

import "testing"

// TestSliceRanges checks the contiguous cover property for every
// (n, parts) in a small grid: ranges tile [0, n) exactly, in order.
func TestSliceRanges(t *testing.T) {
	for n := 0; n <= 67; n++ {
		for parts := 1; parts <= 9; parts++ {
			rs := SliceRanges(n, parts)
			if len(rs) != parts {
				t.Fatalf("n=%d parts=%d: %d ranges", n, parts, len(rs))
			}
			pos := 0
			for i, r := range rs {
				if r.Lo != pos || r.Hi < r.Lo {
					t.Fatalf("n=%d parts=%d range %d: [%d,%d) after pos %d", n, parts, i, r.Lo, r.Hi, pos)
				}
				pos = r.Hi
			}
			if pos != n {
				t.Fatalf("n=%d parts=%d: ranges cover %d rows", n, parts, pos)
			}
		}
	}
	if rs := SliceRanges(10, 0); len(rs) != 1 || rs[0] != (SliceRange{0, 10}) {
		t.Fatalf("parts=0 must collapse to one full range, got %v", rs)
	}
}

// TestHashShard checks determinism, range, and rough uniformity.
func TestHashShard(t *testing.T) {
	const parts = 8
	var counts [parts]int
	for i := uint64(0); i < 8000; i++ {
		key := i * 0x243F6A8885A308D3 // arbitrary spread of key hashes
		s := HashShard(key, parts)
		if s != HashShard(key, parts) {
			t.Fatal("HashShard not deterministic")
		}
		if s < 0 || s >= parts {
			t.Fatalf("HashShard(%d) = %d out of range", key, s)
		}
		counts[s]++
	}
	for s, c := range counts {
		if c < 500 || c > 1500 { // 1000 expected per shard
			t.Fatalf("shard %d got %d of 8000 keys (poor uniformity)", s, c)
		}
	}
	if HashShard(12345, 1) != 0 || HashShard(12345, 0) != 0 {
		t.Fatal("parts<=1 must map to shard 0")
	}
}
