package storage

import (
	"bytes"
	"path/filepath"
	"testing"
	"testing/quick"

	"fluodb/internal/types"
)

func testTable(t *testing.T, n int) *Table {
	t.Helper()
	tab := NewTable("t", types.NewSchema("id", types.KindInt, "v", types.KindFloat))
	for i := 0; i < n; i++ {
		if err := tab.Append(types.Row{types.NewInt(int64(i)), types.NewFloat(float64(i) / 2)}); err != nil {
			t.Fatal(err)
		}
	}
	return tab
}

func TestAppendArityChecked(t *testing.T) {
	tab := testTable(t, 0)
	if err := tab.Append(types.Row{types.NewInt(1)}); err == nil {
		t.Error("short row should be rejected")
	}
	if err := tab.AppendAll([]types.Row{{types.NewInt(1), types.NewFloat(2), types.NewInt(3)}}); err == nil {
		t.Error("long row should be rejected")
	}
}

func TestShuffledIsPermutationAndDeterministic(t *testing.T) {
	tab := testTable(t, 100)
	s1 := tab.Shuffled(42)
	s2 := tab.Shuffled(42)
	s3 := tab.Shuffled(7)
	if s1.NumRows() != 100 {
		t.Fatal("row count changed")
	}
	// same seed → same order
	for i := range s1.Rows() {
		if !types.Equal(s1.Rows()[i][0], s2.Rows()[i][0]) {
			t.Fatal("same seed must reproduce the permutation")
		}
	}
	// different seed → (almost surely) different order
	same := true
	for i := range s1.Rows() {
		if !types.Equal(s1.Rows()[i][0], s3.Rows()[i][0]) {
			same = false
			break
		}
	}
	if same {
		t.Error("different seeds produced identical permutation")
	}
	// permutation: all ids present exactly once
	seen := map[int64]bool{}
	for _, r := range s1.Rows() {
		seen[r[0].Int()] = true
	}
	if len(seen) != 100 {
		t.Errorf("shuffle lost rows: %d distinct ids", len(seen))
	}
	// original untouched
	if tab.Rows()[0][0].Int() != 0 {
		t.Error("Shuffled mutated the source table")
	}
}

func TestMiniBatchesUniform(t *testing.T) {
	tab := testTable(t, 103)
	batches := tab.MiniBatches(10)
	if len(batches) != 10 {
		t.Fatalf("batches = %d", len(batches))
	}
	total := 0
	for i, b := range batches {
		total += len(b)
		if i < 9 && len(b) != 10 {
			t.Errorf("batch %d size = %d, want 10", i, len(b))
		}
	}
	if total != 103 {
		t.Errorf("total = %d", total)
	}
	// batches partition the table in order
	if batches[0][0][0].Int() != 0 || batches[9][len(batches[9])-1][0].Int() != 102 {
		t.Error("batches out of order")
	}
}

func TestMiniBatchesEdgeCases(t *testing.T) {
	empty := testTable(t, 0)
	if got := empty.MiniBatches(4); len(got) != 4 {
		t.Errorf("empty table should still give k batch slots, got %d", len(got))
	}
	small := testTable(t, 3)
	b := small.MiniBatches(10)
	total := 0
	for _, x := range b {
		total += len(x)
	}
	if total != 3 {
		t.Errorf("k > n total = %d", total)
	}
	defer func() {
		if recover() == nil {
			t.Error("k=0 should panic")
		}
	}()
	small.MiniBatches(0)
}

func TestMiniBatchesCoverEverythingQuick(t *testing.T) {
	f := func(n uint8, k uint8) bool {
		if k == 0 {
			return true
		}
		tab := testTable(nil2(t), int(n))
		total := 0
		for _, b := range tab.MiniBatches(int(k)) {
			total += len(b)
		}
		return total == int(n)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func nil2(t *testing.T) *testing.T { return t }

func TestSortBy(t *testing.T) {
	tab := NewTable("t", types.NewSchema("a", types.KindInt, "b", types.KindInt))
	_ = tab.Append(types.Row{types.NewInt(2), types.NewInt(1)})
	_ = tab.Append(types.Row{types.NewInt(1), types.NewInt(2)})
	_ = tab.Append(types.Row{types.NewInt(1), types.NewInt(1)})
	tab.SortBy(0, 1)
	want := [][2]int64{{1, 1}, {1, 2}, {2, 1}}
	for i, w := range want {
		if tab.Rows()[i][0].Int() != w[0] || tab.Rows()[i][1].Int() != w[1] {
			t.Fatalf("row %d = %v", i, tab.Rows()[i])
		}
	}
}

func TestCSVRoundTrip(t *testing.T) {
	tab := NewTable("t", types.NewSchema(
		"id", types.KindInt, "name", types.KindString,
		"score", types.KindFloat, "ok", types.KindBool))
	_ = tab.Append(types.Row{types.NewInt(1), types.NewString("a,b"), types.NewFloat(2.5), types.NewBool(true)})
	_ = tab.Append(types.Row{types.Null, types.NewString(""), types.Null, types.NewBool(false)})

	var buf bytes.Buffer
	if err := tab.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ReadCSV("t2", &buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.NumRows() != 2 {
		t.Fatalf("rows = %d", got.NumRows())
	}
	if got.Schema().String() != tab.Schema().String() {
		t.Errorf("schema = %v", got.Schema())
	}
	if got.Rows()[0][1].Str() != "a,b" {
		t.Errorf("comma string = %q", got.Rows()[0][1].Str())
	}
	if !got.Rows()[1][0].IsNull() || !got.Rows()[1][2].IsNull() {
		t.Error("NULLs lost in round trip")
	}
}

func TestCSVFileHelpers(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "t.csv")
	tab := testTable(t, 5)
	if err := tab.SaveCSVFile(path); err != nil {
		t.Fatal(err)
	}
	got, err := LoadCSVFile("t", path)
	if err != nil {
		t.Fatal(err)
	}
	if got.NumRows() != 5 {
		t.Errorf("rows = %d", got.NumRows())
	}
}

func TestReadCSVErrors(t *testing.T) {
	if _, err := ReadCSV("x", bytes.NewBufferString("")); err == nil {
		t.Error("empty input should fail")
	}
	if _, err := ReadCSV("x", bytes.NewBufferString("a\n1\n")); err == nil {
		t.Error("untyped header should fail")
	}
	if _, err := ReadCSV("x", bytes.NewBufferString("a:int\nzap\n")); err == nil {
		t.Error("bad int cell should fail")
	}
	if _, err := ReadCSV("x", bytes.NewBufferString("a:widget\n")); err == nil {
		t.Error("unknown type tag should fail")
	}
}

func TestCatalog(t *testing.T) {
	c := NewCatalog()
	c.Put(testTable(t, 1))
	if _, ok := c.Get("T"); !ok {
		t.Error("case-insensitive get failed")
	}
	if names := c.Names(); len(names) != 1 || names[0] != "t" {
		t.Errorf("names = %v", names)
	}
	if !c.Drop("t") {
		t.Error("drop existing")
	}
	if c.Drop("t") {
		t.Error("drop missing should report false")
	}
	if _, ok := c.Get("t"); ok {
		t.Error("table should be gone")
	}
}

func TestFromRowsShares(t *testing.T) {
	rows := []types.Row{{types.NewInt(1)}}
	tab := FromRows("x", types.NewSchema("a", types.KindInt), rows)
	if tab.NumRows() != 1 || tab.Name() != "x" {
		t.Error("FromRows basics")
	}
}
