package storage

// Deterministic partitioning primitives for sharded execution. The
// coordinator (core/coordinator.go) splits every mini-batch into
// contiguous per-shard row ranges with SliceRanges: contiguity is what
// keeps the N-shard trajectory bit-identical to the single-engine run —
// merging contiguous slices in slice order reproduces the serial group
// insertion order exactly, for any N. HashShard is the content-keyed
// placement function for the process-separable stage of the shard arc,
// where rows are routed by key instead of position; it is deterministic
// in (key, parts) so a re-planned or recovered topology routes every
// row identically.

// SliceRange is one shard's contiguous [Lo, Hi) row range.
type SliceRange struct {
	Lo, Hi int
}

// SliceRanges partitions [0, n) into parts contiguous ranges, the last
// absorbing the remainder (the same split rule the intra-batch worker
// sharding uses, so shard and worker boundaries compose). parts ≤ 1 or
// n ≤ 0 yield a single range covering everything.
func SliceRanges(n, parts int) []SliceRange {
	if parts < 1 {
		parts = 1
	}
	if n < 0 {
		n = 0
	}
	out := make([]SliceRange, parts)
	size := n / parts
	for p := 0; p < parts; p++ {
		lo := p * size
		hi := lo + size
		if p == parts-1 {
			hi = n
		}
		out[p] = SliceRange{Lo: lo, Hi: hi}
	}
	return out
}

// HashShard maps a 64-bit row or key hash onto [0, parts) with a
// multiply-shift over the high bits (uniform for hash-distributed keys,
// no modulo bias). Deterministic: the same key always lands on the same
// shard for a given parts count.
func HashShard(key uint64, parts int) int {
	if parts <= 1 {
		return 0
	}
	// Fibonacci scramble, then scale the high 32 bits into [0, parts).
	h := key * 0x9E3779B97F4A7C15
	return int((h >> 32) * uint64(parts) >> 32)
}
