package storage

import (
	"os"
	"path/filepath"
	"testing"

	"fluodb/internal/types"
)

func TestSaveDirLoadDirRoundTrip(t *testing.T) {
	cat := NewCatalog()
	a := NewTable("alpha", types.NewSchema("x", types.KindInt, "s", types.KindString))
	_ = a.Append(types.Row{types.NewInt(1), types.NewString("one")})
	_ = a.Append(types.Row{types.NewInt(2), types.NewString("two")})
	b := NewTable("beta", types.NewSchema("f", types.KindFloat))
	_ = b.Append(types.Row{types.NewFloat(2.5)})
	cat.Put(a)
	cat.Put(b)

	dir := filepath.Join(t.TempDir(), "db")
	if err := cat.SaveDir(dir); err != nil {
		t.Fatal(err)
	}
	got, err := LoadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	names := got.Names()
	if len(names) != 2 || names[0] != "alpha" || names[1] != "beta" {
		t.Fatalf("names = %v", names)
	}
	ga, _ := got.Get("alpha")
	if ga.NumRows() != 2 || ga.Rows()[1][1].Str() != "two" {
		t.Errorf("alpha content: %v", ga.Rows())
	}
	gb, _ := got.Get("beta")
	if gb.Rows()[0][0].Float() != 2.5 {
		t.Errorf("beta content: %v", gb.Rows())
	}
}

func TestLoadDirErrors(t *testing.T) {
	if _, err := LoadDir(filepath.Join(t.TempDir(), "nope")); err == nil {
		t.Error("missing dir should fail")
	}
	empty := t.TempDir()
	if _, err := LoadDir(empty); err == nil {
		t.Error("empty dir should fail")
	}
	bad := t.TempDir()
	if err := os.WriteFile(filepath.Join(bad, "t.csv"), []byte("not a header\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadDir(bad); err == nil {
		t.Error("malformed csv should fail")
	}
}

func TestLoadDirSkipsNonCSV(t *testing.T) {
	dir := t.TempDir()
	cat := NewCatalog()
	tab := NewTable("only", types.NewSchema("x", types.KindInt))
	_ = tab.Append(types.Row{types.NewInt(1)})
	cat.Put(tab)
	if err := cat.SaveDir(dir); err != nil {
		t.Fatal(err)
	}
	_ = os.WriteFile(filepath.Join(dir, "README.txt"), []byte("hi"), 0o644)
	_ = os.Mkdir(filepath.Join(dir, "sub"), 0o755)
	got, err := LoadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Names()) != 1 {
		t.Errorf("names = %v", got.Names())
	}
}
