// Package repl implements the interactive SQL console behind
// cmd/fluodb — the query-console experience of the paper's demo (§6).
// It is factored out of the command so its dispatch, rendering and
// error paths are unit-testable against injected I/O.
package repl

import (
	"bufio"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"
	"time"

	"fluodb/internal/core"
	"fluodb/internal/exec"
	"fluodb/internal/plan"
	"fluodb/internal/sqlparser"
	"fluodb/internal/storage"
	"fluodb/internal/workload"
)

// Console is one interactive session.
type Console struct {
	cat     *storage.Catalog
	out     *bufio.Writer
	batches int
	trials  int
	// MaxRows caps printed result rows per snapshot/result.
	MaxRows int
	// Now is injectable for deterministic tests.
	Now func() time.Time
}

// New builds a console writing to w.
func New(w io.Writer) *Console {
	return &Console{
		cat:     storage.NewCatalog(),
		out:     bufio.NewWriter(w),
		batches: 10,
		trials:  100,
		MaxRows: 40,
		Now:     time.Now,
	}
}

// Catalog exposes the session catalog (for tests and embedding).
func (c *Console) Catalog() *storage.Catalog { return c.cat }

// Run reads commands from r until EOF or \quit.
func (c *Console) Run(r io.Reader) error {
	fmt.Fprintln(c.out, `FluoDB — G-OLA online SQL console. \help for commands, \quit to exit.`)
	c.out.Flush()
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for {
		fmt.Fprint(c.out, "fluodb> ")
		c.out.Flush()
		if !sc.Scan() {
			break
		}
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		if line == `\quit` || line == "exit" {
			break
		}
		if err := c.Dispatch(line); err != nil {
			fmt.Fprintln(c.out, "error:", err)
		}
		c.out.Flush()
	}
	return sc.Err()
}

// Dispatch executes one console line (a meta command or SQL).
// SELECTs run online; CREATE/INSERT/DROP execute directly.
func (c *Console) Dispatch(line string) error {
	defer c.out.Flush()
	if !strings.HasPrefix(line, `\`) {
		up := strings.ToUpper(line)
		if strings.HasPrefix(up, "CREATE") || strings.HasPrefix(up, "INSERT") ||
			strings.HasPrefix(up, "DROP") {
			stmt, err := sqlparser.ParseStatement(line)
			if err != nil {
				return err
			}
			n, err := exec.ExecStatement(stmt, c.cat)
			if err != nil {
				return err
			}
			if n > 0 {
				fmt.Fprintf(c.out, "%d row(s) inserted\n", n)
			} else {
				fmt.Fprintln(c.out, "ok")
			}
			return nil
		}
		return c.runOnline(line)
	}
	fields := strings.Fields(line)
	cmd := fields[0]
	rest := strings.TrimSpace(strings.TrimPrefix(line, cmd))
	switch cmd {
	case `\help`:
		c.help()
	case `\load`:
		if len(fields) != 3 {
			return fmt.Errorf(`usage: \load <name> <file.csv>`)
		}
		t, err := storage.LoadCSVFile(fields[1], fields[2])
		if err != nil {
			return err
		}
		c.cat.Put(t)
		fmt.Fprintf(c.out, "loaded %d rows into %s\n", t.NumRows(), t.Name())
	case `\gen`:
		if len(fields) != 3 {
			return fmt.Errorf(`usage: \gen conviva|tpch <rows>`)
		}
		n, err := strconv.Atoi(fields[2])
		if err != nil || n <= 0 {
			return fmt.Errorf("bad row count %q", fields[2])
		}
		var src *storage.Catalog
		switch fields[1] {
		case "conviva":
			src = workload.ConvivaCatalog(n, 42)
			fmt.Fprintf(c.out, "generated sessions (%d rows)\n", n)
		case "tpch":
			src = workload.TPCHCatalog(n, n/150+10, 42)
			fmt.Fprintf(c.out, "generated lineitem (%d rows) + partsupp\n", n)
		default:
			return fmt.Errorf("unknown dataset %q", fields[1])
		}
		for _, name := range src.Names() {
			t, _ := src.Get(name)
			c.cat.Put(t)
		}
	case `\tables`:
		for _, n := range c.cat.Names() {
			t, _ := c.cat.Get(n)
			fmt.Fprintf(c.out, "%s %s (%d rows)\n", n, t.Schema(), t.NumRows())
		}
	case `\explain`:
		if rest == "" {
			return fmt.Errorf(`usage: \explain <sql>`)
		}
		q, err := plan.Compile(rest, c.cat)
		if err != nil {
			return err
		}
		fmt.Fprint(c.out, q.Explain())
	case `\batch`:
		if rest == "" {
			return fmt.Errorf(`usage: \batch <sql>`)
		}
		return c.runBatch(rest)
	case `\batches`:
		return c.setInt(fields, &c.batches, "batches")
	case `\trials`:
		return c.setInt(fields, &c.trials, "trials")
	case `\i`:
		if len(fields) != 2 {
			return fmt.Errorf(`usage: \i <file.sql>`)
		}
		data, err := os.ReadFile(fields[1])
		if err != nil {
			return err
		}
		for _, stmt := range sqlparser.SplitStatements(string(data)) {
			fmt.Fprintf(c.out, "fluodb> %s\n", stmt)
			if err := c.Dispatch(stmt); err != nil {
				return err
			}
		}
	case `\save`:
		if len(fields) != 2 {
			return fmt.Errorf(`usage: \save <dir>`)
		}
		if err := c.cat.SaveDir(fields[1]); err != nil {
			return err
		}
		fmt.Fprintf(c.out, "saved %d table(s) to %s\n", len(c.cat.Names()), fields[1])
	case `\open`:
		if len(fields) != 2 {
			return fmt.Errorf(`usage: \open <dir>`)
		}
		cat, err := storage.LoadDir(fields[1])
		if err != nil {
			return err
		}
		for _, name := range cat.Names() {
			t, _ := cat.Get(name)
			c.cat.Put(t)
		}
		fmt.Fprintf(c.out, "opened %d table(s) from %s\n", len(cat.Names()), fields[1])
	case `\suite`:
		for _, q := range workload.Suite() {
			fmt.Fprintf(c.out, "%-4s [%s] %s\n", q.Name, q.Dataset, q.Description)
		}
	case `\q`:
		if len(fields) != 2 {
			return fmt.Errorf(`usage: \q <name> (see \suite)`)
		}
		q, ok := workload.ByName(fields[1])
		if !ok {
			return fmt.Errorf("unknown suite query %q", fields[1])
		}
		fmt.Fprintln(c.out, q.SQL)
		return c.runOnline(q.SQL)
	default:
		return fmt.Errorf(`unknown command %s (try \help)`, cmd)
	}
	return nil
}

func (c *Console) help() {
	fmt.Fprint(c.out, `SQL runs online by default (refined answers with ±95% CIs).
CREATE TABLE / INSERT INTO ... VALUES / DROP TABLE execute directly.
\load <name> <file.csv>   load a typed-header CSV as a table
\gen conviva|tpch <rows>  generate + load a synthetic dataset
\save <dir> / \open <dir> persist / load the whole database as CSVs
\tables                   list tables
\explain <sql>            show the lineage-block plan
\batch <sql>              run exactly with the batch engine
\batches <k>              set mini-batch count (default 10)
\trials <B>               set bootstrap trial count (default 100)
\suite                    list the paper's evaluation queries
\q <name>                 run a suite query (e.g. \q SBI)
\quit                     exit
`)
}

func (c *Console) setInt(fields []string, dst *int, what string) error {
	if len(fields) != 2 {
		return fmt.Errorf(`usage: \%s <n>`, what)
	}
	n, err := strconv.Atoi(fields[1])
	if err != nil || n <= 0 {
		return fmt.Errorf("bad %s %q", what, fields[1])
	}
	*dst = n
	fmt.Fprintf(c.out, "%s = %d\n", what, n)
	return nil
}

func (c *Console) runBatch(sql string) error {
	start := c.Now()
	q, err := plan.Compile(sql, c.cat)
	if err != nil {
		return err
	}
	res, err := exec.Run(q, c.cat)
	if err != nil {
		return err
	}
	names := make([]string, len(res.Schema))
	for i, col := range res.Schema {
		names[i] = col.Name
	}
	fmt.Fprintln(c.out, strings.Join(names, " | "))
	for i, row := range res.Rows {
		if i >= c.MaxRows {
			fmt.Fprintf(c.out, "... (%d rows total)\n", len(res.Rows))
			break
		}
		parts := make([]string, len(row))
		for j, v := range row {
			parts[j] = v.String()
		}
		fmt.Fprintln(c.out, strings.Join(parts, " | "))
	}
	fmt.Fprintf(c.out, "%d row(s), exact, %.1f ms\n", len(res.Rows), c.msSince(start))
	return nil
}

func (c *Console) runOnline(sql string) error {
	q, err := plan.Compile(sql, c.cat)
	if err != nil {
		return err
	}
	eng, err := core.New(q, c.cat, core.Options{Batches: c.batches, Trials: c.trials})
	if err != nil {
		return err
	}
	defer eng.Close()
	start := c.Now()
	for !eng.Done() {
		s, err := eng.Step()
		if err != nil {
			return err
		}
		fmt.Fprintf(c.out, "-- batch %d/%d (%.0f%% of data, %.1f ms, rsd %.3f%%, uncertain %d)\n",
			s.Batch, s.TotalBatches, s.FractionProcessed*100, c.msSince(start),
			s.RSD()*100, s.UncertainRows)
		names := make([]string, len(s.Schema))
		for i, col := range s.Schema {
			names[i] = col.Name
		}
		fmt.Fprintln(c.out, strings.Join(names, " | "))
		for i, row := range s.Rows {
			if i >= c.MaxRows {
				fmt.Fprintf(c.out, "... (%d rows total)\n", len(s.Rows))
				break
			}
			parts := make([]string, len(row))
			for j, cell := range row {
				if cell.HasCI {
					parts[j] = fmt.Sprintf("%s ± %.4g", cell.Value, (cell.CI.Hi-cell.CI.Lo)/2)
				} else {
					parts[j] = cell.Value.String()
				}
			}
			fmt.Fprintln(c.out, strings.Join(parts, " | "))
		}
		c.out.Flush()
	}
	fmt.Fprintf(c.out, "done in %.1f ms\n", c.msSince(start))
	return nil
}

func (c *Console) msSince(t time.Time) float64 {
	return float64(c.Now().Sub(t).Microseconds()) / 1000
}
