package repl

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"fluodb/internal/storage"
	"fluodb/internal/types"
)

func testConsole(t *testing.T) (*Console, *bytes.Buffer) {
	t.Helper()
	var out bytes.Buffer
	c := New(&out)
	c.Now = func() time.Time { return time.Unix(0, 0) }
	tab := storage.NewTable("sessions", types.NewSchema(
		"session_id", types.KindInt,
		"buffer_time", types.KindFloat,
		"play_time", types.KindFloat,
	))
	for i := 0; i < 60; i++ {
		_ = tab.Append(types.Row{
			types.NewInt(int64(i)),
			types.NewFloat(float64(i % 10 * 10)),
			types.NewFloat(float64(100 + i)),
		})
	}
	c.Catalog().Put(tab)
	return c, &out
}

func TestDispatchTables(t *testing.T) {
	c, out := testConsole(t)
	if err := c.Dispatch(`\tables`); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "sessions") || !strings.Contains(out.String(), "60 rows") {
		t.Errorf("output = %q", out.String())
	}
}

func TestDispatchBatchSQL(t *testing.T) {
	c, out := testConsole(t)
	if err := c.Dispatch(`\batch SELECT COUNT(*) FROM sessions`); err != nil {
		t.Fatal(err)
	}
	s := out.String()
	if !strings.Contains(s, "COUNT(*)") || !strings.Contains(s, "60") || !strings.Contains(s, "exact") {
		t.Errorf("output = %q", s)
	}
}

func TestDispatchOnlineSQL(t *testing.T) {
	c, out := testConsole(t)
	if err := c.Dispatch(`\batches 3`); err != nil {
		t.Fatal(err)
	}
	if err := c.Dispatch(`\trials 10`); err != nil {
		t.Fatal(err)
	}
	if err := c.Dispatch(`SELECT AVG(play_time) FROM sessions`); err != nil {
		t.Fatal(err)
	}
	s := out.String()
	if strings.Count(s, "-- batch") != 3 {
		t.Errorf("expected 3 snapshots, output = %q", s)
	}
	if !strings.Contains(s, "±") {
		t.Error("online output should carry error bars")
	}
	if !strings.Contains(s, "done in") {
		t.Error("completion line missing")
	}
}

func TestDispatchExplain(t *testing.T) {
	c, out := testConsole(t)
	err := c.Dispatch(`\explain SELECT AVG(play_time) FROM sessions WHERE buffer_time > (SELECT AVG(buffer_time) FROM sessions)`)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "block 0 (scalar)") {
		t.Errorf("explain output = %q", out.String())
	}
}

func TestDispatchSuiteAndHelp(t *testing.T) {
	c, out := testConsole(t)
	if err := c.Dispatch(`\suite`); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "SBI") || !strings.Contains(out.String(), "Q17") {
		t.Error("suite listing")
	}
	out.Reset()
	if err := c.Dispatch(`\help`); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), `\batch`) {
		t.Error("help text")
	}
}

func TestDispatchGenAndSuiteQuery(t *testing.T) {
	c, out := testConsole(t)
	if err := c.Dispatch(`\gen conviva 500`); err != nil {
		t.Fatal(err)
	}
	if err := c.Dispatch(`\batches 2`); err != nil {
		t.Fatal(err)
	}
	if err := c.Dispatch(`\trials 8`); err != nil {
		t.Fatal(err)
	}
	out.Reset()
	if err := c.Dispatch(`\q SBI`); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "AVG(play_time)") {
		t.Errorf("SBI output = %q", out.String())
	}
}

func TestDispatchLoadCSV(t *testing.T) {
	c, out := testConsole(t)
	dir := t.TempDir()
	path := filepath.Join(dir, "t.csv")
	tab := storage.NewTable("ext", types.NewSchema("a", types.KindInt))
	_ = tab.Append(types.Row{types.NewInt(7)})
	if err := tab.SaveCSVFile(path); err != nil {
		t.Fatal(err)
	}
	if err := c.Dispatch(`\load ext ` + path); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "loaded 1 rows into ext") {
		t.Errorf("output = %q", out.String())
	}
	if _, ok := c.Catalog().Get("ext"); !ok {
		t.Error("table not registered")
	}
}

func TestDispatchErrors(t *testing.T) {
	c, _ := testConsole(t)
	bad := []string{
		`\nope`,
		`\load onlyname`,
		`\gen conviva notanumber`,
		`\gen mars 10`,
		`\batches zero`,
		`\batches -1`,
		`\q NOPE`,
		`\explain`,
		`\batch`,
		`SELECT nope FROM sessions`,
		`SELECT session_id FROM sessions`, // projection online → rejected
	}
	for _, line := range bad {
		if err := c.Dispatch(line); err == nil {
			t.Errorf("Dispatch(%q) should fail", line)
		}
	}
}

func TestRunLoopQuitAndErrorRecovery(t *testing.T) {
	c, out := testConsole(t)
	in := strings.NewReader("\\tables\nSELECT nope FROM sessions\n\\quit\n")
	if err := c.Run(in); err != nil {
		t.Fatal(err)
	}
	s := out.String()
	if !strings.Contains(s, "sessions") {
		t.Error("first command output missing")
	}
	if !strings.Contains(s, "error:") {
		t.Error("error should be printed, not fatal")
	}
	if strings.Count(s, "fluodb>") < 3 {
		t.Errorf("prompt count in %q", s)
	}
}

func TestMaxRowsTruncation(t *testing.T) {
	c, out := testConsole(t)
	c.MaxRows = 3
	if err := c.Dispatch(`\batch SELECT session_id FROM sessions ORDER BY session_id`); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "... (60 rows total)") {
		t.Errorf("truncation marker missing: %q", out.String())
	}
}

func TestDispatchDDL(t *testing.T) {
	c, out := testConsole(t)
	if err := c.Dispatch(`CREATE TABLE notes (id INT, txt VARCHAR)`); err != nil {
		t.Fatal(err)
	}
	if err := c.Dispatch(`INSERT INTO notes VALUES (1, 'hello'), (2, 'world')`); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "2 row(s) inserted") {
		t.Errorf("output = %q", out.String())
	}
	out.Reset()
	if err := c.Dispatch(`\batch SELECT COUNT(*) FROM notes`); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "1 row(s), exact") {
		t.Errorf("output = %q", out.String())
	}
	if err := c.Dispatch(`DROP TABLE notes`); err != nil {
		t.Fatal(err)
	}
	if _, ok := c.Catalog().Get("notes"); ok {
		t.Error("notes should be dropped")
	}
	if err := c.Dispatch(`DROP TABLE notes`); err == nil {
		t.Error("double drop should fail")
	}
}

func TestDispatchSaveOpen(t *testing.T) {
	c, out := testConsole(t)
	dir := t.TempDir() + "/db"
	if err := c.Dispatch(`\save ` + dir); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "saved 1 table(s)") {
		t.Errorf("output = %q", out.String())
	}
	var out2 bytes.Buffer
	c2 := New(&out2)
	if err := c2.Dispatch(`\open ` + dir); err != nil {
		t.Fatal(err)
	}
	if tab, ok := c2.Catalog().Get("sessions"); !ok || tab.NumRows() != 60 {
		t.Error("reopened catalog incomplete")
	}
	if err := c2.Dispatch(`\open /nope/nope`); err == nil {
		t.Error("bad dir should fail")
	}
	if err := c2.Dispatch(`\save`); err == nil {
		t.Error("missing arg should fail")
	}
}

func TestDispatchScriptFile(t *testing.T) {
	c, out := testConsole(t)
	path := filepath.Join(t.TempDir(), "setup.sql")
	script := "CREATE TABLE s2 (a INT);\nINSERT INTO s2 VALUES (1), (2), (3);"
	if err := osWriteFile(path, script); err != nil {
		t.Fatal(err)
	}
	if err := c.Dispatch(`\i ` + path); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "3 row(s) inserted") {
		t.Errorf("output = %q", out.String())
	}
	if tab, ok := c.Catalog().Get("s2"); !ok || tab.NumRows() != 3 {
		t.Error("script effects missing")
	}
	if err := c.Dispatch(`\i /nope.sql`); err == nil {
		t.Error("missing file should fail")
	}
}

func osWriteFile(path, content string) error {
	return os.WriteFile(path, []byte(content), 0o644)
}

func TestDispatchApproxDistinctAndConversions(t *testing.T) {
	c, out := testConsole(t)
	if err := c.Dispatch(`\batch SELECT APPROX_COUNT_DISTINCT(session_id), TO_STRING(COUNT(*)) FROM sessions`); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "60") {
		t.Errorf("output = %q", out.String())
	}
}
