package metrics

import (
	"math"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestCounterGauge(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("c_total", "a counter")
	g := r.Gauge("g", "a gauge")
	c.Inc()
	c.Add(4)
	g.Set(7)
	g.Add(-2)
	if c.Load() != 5 {
		t.Errorf("counter = %d, want 5", c.Load())
	}
	if g.Load() != 5 {
		t.Errorf("gauge = %d, want 5", g.Load())
	}
}

func TestRegistrationIdempotent(t *testing.T) {
	r := NewRegistry()
	a := r.Counter("x_total", "x")
	b := r.Counter("x_total", "x")
	if a != b {
		t.Error("same name should return the same counter")
	}
	defer func() {
		if recover() == nil {
			t.Error("kind conflict should panic")
		}
	}()
	r.Gauge("x_total", "conflict")
}

func TestHistogramBuckets(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("d_seconds", "durations")
	h.Observe(1500 * time.Nanosecond) // → le=2e-06
	h.Observe(3 * time.Millisecond)   // → le=5e-03
	h.Observe(time.Minute)            // → +Inf
	if h.Count() != 3 {
		t.Fatalf("count = %d", h.Count())
	}
	var sb strings.Builder
	r.WritePrometheus(&sb)
	out := sb.String()
	for _, want := range []string{
		"# TYPE d_seconds histogram",
		`d_seconds_bucket{le="1e-06"} 0`,
		`d_seconds_bucket{le="2e-06"} 1`,
		`d_seconds_bucket{le="0.005"} 2`,
		`d_seconds_bucket{le="+Inf"} 3`,
		"d_seconds_count 3",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
}

func TestLabeledFamilies(t *testing.T) {
	r := NewRegistry()
	r.Histogram(`p_seconds{phase="join"}`, "per-phase time").Observe(time.Millisecond)
	r.Histogram(`p_seconds{phase="fold"}`, "per-phase time").Observe(2 * time.Millisecond)
	var sb strings.Builder
	r.WritePrometheus(&sb)
	out := sb.String()
	if strings.Count(out, "# TYPE p_seconds histogram") != 1 {
		t.Errorf("family header should appear once:\n%s", out)
	}
	for _, want := range []string{
		`p_seconds_bucket{phase="join",le="0.001"} 1`,
		`p_seconds_bucket{phase="fold",le="+Inf"} 1`,
		`p_seconds_sum{phase="fold"} 0.002`,
		`p_seconds_count{phase="join"} 1`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
}

func TestGaugeFunc(t *testing.T) {
	r := NewRegistry()
	r.GaugeFunc("live", "sampled at render", func() float64 { return 42 })
	var sb strings.Builder
	r.WritePrometheus(&sb)
	if !strings.Contains(sb.String(), "live 42") {
		t.Errorf("gauge func value missing:\n%s", sb.String())
	}
}

func TestNanotimeMonotonic(t *testing.T) {
	a := Nanotime()
	time.Sleep(time.Millisecond)
	b := Nanotime()
	if b <= a {
		t.Errorf("Nanotime not monotonic: %d then %d", a, b)
	}
}

// Concurrent observation must be clean under -race.
func TestConcurrentObserve(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("n_total", "n")
	h := r.Histogram("t_seconds", "t")
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				c.Inc()
				h.Observe(time.Microsecond)
			}
		}()
	}
	wg.Wait()
	if c.Load() != 8000 || h.Count() != 8000 {
		t.Errorf("counts: %d, %d", c.Load(), h.Count())
	}
}

func TestObserveValueUnitless(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("rel_err", "relative error")
	h.ObserveValue(0.0000015) // → le=2e-06
	h.ObserveValue(0.003)     // → le=0.005
	h.ObserveValue(42)        // → +Inf
	h.ObserveValue(-1)        // clamps to the smallest bucket
	h.ObserveValue(math.NaN())
	h.ObserveValue(math.Inf(1)) // clamps finite: sum must stay finite
	if h.Count() != 6 {
		t.Fatalf("count = %d", h.Count())
	}
	var sb strings.Builder
	r.WritePrometheus(&sb)
	out := sb.String()
	for _, want := range []string{
		`rel_err_bucket{le="2e-06"} 3`, // 1.5e-6 plus the two clamped zeros
		`rel_err_bucket{le="0.005"} 4`,
		`rel_err_bucket{le="+Inf"} 6`,
		"rel_err_count 6",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
	// _sum renders through Seconds(), which for unitless observations
	// must give back the plain total.
	if s := h.Sum().Seconds(); s < 42 || s > 2e9 {
		t.Fatalf("unitless sum round-trip broken: %g", s)
	}
}
