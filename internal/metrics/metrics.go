// Package metrics is the engine's stdlib-only instrumentation kernel:
// atomic counters and gauges, monotonic nanosecond timers, fixed-bucket
// duration histograms, and a registry that renders everything in the
// Prometheus text exposition format. It has no dependencies beyond the
// standard library and no locks on the observation paths, so metrics
// can be updated from the fold hot loop and from concurrent workers
// without giving back the engine's allocation discipline: every
// observation is a handful of atomic adds on pre-allocated state.
package metrics

import (
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Counter is a monotonically increasing atomic counter.
type Counter struct{ v atomic.Int64 }

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n (n must be non-negative for Prometheus semantics).
func (c *Counter) Add(n int64) { c.v.Add(n) }

// Load returns the current value.
func (c *Counter) Load() int64 { return c.v.Load() }

// Gauge is an instantaneous atomic value that may go up and down.
type Gauge struct{ v atomic.Int64 }

// Set installs the current value.
func (g *Gauge) Set(n int64) { g.v.Store(n) }

// Add adjusts the current value by n (may be negative).
func (g *Gauge) Add(n int64) { g.v.Add(n) }

// Load returns the current value.
func (g *Gauge) Load() int64 { return g.v.Load() }

// epoch anchors Nanotime; only differences are meaningful.
var epoch = time.Now()

// Nanotime returns monotonic nanoseconds since process start. It is a
// plain time.Since under the hood (vDSO-backed on the major platforms)
// and does not allocate, so it is safe in per-tuple hot paths.
func Nanotime() int64 { return int64(time.Since(epoch)) }

// DurationBuckets are the fixed histogram bucket upper bounds in
// seconds: a 1-2-5 ladder from 1µs to 10s. Batch work at any realistic
// scale lands inside; everything slower lands in +Inf.
var DurationBuckets = []float64{
	1e-6, 2e-6, 5e-6, 1e-5, 2e-5, 5e-5, 1e-4, 2e-4, 5e-4,
	1e-3, 2e-3, 5e-3, 1e-2, 2e-2, 5e-2, 0.1, 0.2, 0.5, 1, 2, 5, 10,
}

// Histogram is a fixed-bucket duration histogram. Buckets are shared
// (DurationBuckets) so histograms are comparable and the per-histogram
// state is one flat atomic array.
type Histogram struct {
	counts []atomic.Int64 // len(DurationBuckets)+1; last is +Inf
	count  atomic.Int64
	sumNs  atomic.Int64
}

func newHistogram() *Histogram {
	return &Histogram{counts: make([]atomic.Int64, len(DurationBuckets)+1)}
}

// Observe records one duration.
func (h *Histogram) Observe(d time.Duration) {
	s := d.Seconds()
	i := sort.SearchFloat64s(DurationBuckets, s)
	h.counts[i].Add(1)
	h.count.Add(1)
	h.sumNs.Add(int64(d))
}

// ObserveValue records one unitless observation, reading the bucket
// ladder as plain numbers (1e-6 … 10) rather than seconds — relative
// errors and CI widths span exactly that range. Negative and non-finite
// values clamp to zero so a degenerate stat can never corrupt the
// histogram sum.
func (h *Histogram) ObserveValue(v float64) {
	if !(v > 0) { // catches negatives and NaN
		v = 0
	} else if v > 1e9 {
		v = 1e9 // keep the ns-scaled sum far from int64 overflow
	}
	i := sort.SearchFloat64s(DurationBuckets, v)
	h.counts[i].Add(1)
	h.count.Add(1)
	h.sumNs.Add(int64(v * 1e9))
}

// Count returns the number of observations.
func (h *Histogram) Count() int64 { return h.count.Load() }

// Sum returns the total observed duration.
func (h *Histogram) Sum() time.Duration { return time.Duration(h.sumNs.Load()) }

// metric is one registered series. The name may carry a Prometheus
// label set ({...}); HELP/TYPE headers are emitted once per base name,
// so series like `x{phase="join"}` and `x{phase="fold"}` group under
// one family.
type metric struct {
	name string
	base string
	help string
	kind string // "counter", "gauge", "histogram"
	c    *Counter
	g    *Gauge
	h    *Histogram
	fn   func() float64 // gauge callback, when non-nil
}

// Registry names metrics and renders them as Prometheus text. Lookups
// and registration take a lock; the returned metric handles are
// lock-free.
type Registry struct {
	mu      sync.Mutex
	metrics []*metric
	byName  map[string]*metric
}

// NewRegistry builds an empty registry.
func NewRegistry() *Registry {
	return &Registry{byName: map[string]*metric{}}
}

// baseName strips a trailing {label} set.
func baseName(name string) string {
	if i := strings.IndexByte(name, '{'); i >= 0 {
		return name[:i]
	}
	return name
}

// register installs a series, or returns the existing one with the same
// full name (registration is idempotent so servers can re-register on
// reuse). Kind conflicts panic: they are programming errors.
func (r *Registry) register(name, help, kind string) *metric {
	r.mu.Lock()
	defer r.mu.Unlock()
	if m, ok := r.byName[name]; ok {
		if m.kind != kind {
			panic(fmt.Sprintf("metrics: %s re-registered as %s (was %s)", name, kind, m.kind))
		}
		return m
	}
	m := &metric{name: name, base: baseName(name), help: help, kind: kind}
	switch kind {
	case "counter":
		m.c = &Counter{}
	case "gauge":
		m.g = &Gauge{}
	case "histogram":
		m.h = newHistogram()
	}
	r.metrics = append(r.metrics, m)
	r.byName[name] = m
	return m
}

// Counter registers (or fetches) a counter series.
func (r *Registry) Counter(name, help string) *Counter {
	return r.register(name, help, "counter").c
}

// Gauge registers (or fetches) a gauge series.
func (r *Registry) Gauge(name, help string) *Gauge {
	return r.register(name, help, "gauge").g
}

// GaugeFunc registers a gauge whose value is sampled at render time.
func (r *Registry) GaugeFunc(name, help string, fn func() float64) {
	m := r.register(name, help, "gauge")
	m.fn = fn
}

// Histogram registers (or fetches) a fixed-bucket duration histogram.
func (r *Registry) Histogram(name, help string) *Histogram {
	return r.register(name, help, "histogram").h
}

// series splits a full name into (base, label-content) where labels is
// the inside of the {...} set, or "".
func seriesLabels(name string) string {
	if i := strings.IndexByte(name, '{'); i >= 0 {
		return strings.TrimSuffix(name[i+1:], "}")
	}
	return ""
}

// withLabel renders base{existing,extra} (either part may be empty).
func withLabel(base, existing, extra string) string {
	switch {
	case existing == "" && extra == "":
		return base
	case existing == "":
		return base + "{" + extra + "}"
	case extra == "":
		return base + "{" + existing + "}"
	default:
		return base + "{" + existing + "," + extra + "}"
	}
}

// WritePrometheus renders every registered series in the text
// exposition format (version 0.0.4). HELP/TYPE headers are emitted once
// per metric family, in first-registration order.
func (r *Registry) WritePrometheus(w io.Writer) {
	r.mu.Lock()
	ms := make([]*metric, len(r.metrics))
	copy(ms, r.metrics)
	r.mu.Unlock()

	seenHeader := map[string]bool{}
	for _, m := range ms {
		if !seenHeader[m.base] {
			seenHeader[m.base] = true
			fmt.Fprintf(w, "# HELP %s %s\n", m.base, m.help)
			fmt.Fprintf(w, "# TYPE %s %s\n", m.base, m.kind)
		}
		labels := seriesLabels(m.name)
		switch m.kind {
		case "counter":
			fmt.Fprintf(w, "%s %d\n", m.name, m.c.Load())
		case "gauge":
			if m.fn != nil {
				fmt.Fprintf(w, "%s %g\n", m.name, m.fn())
			} else {
				fmt.Fprintf(w, "%s %d\n", m.name, m.g.Load())
			}
		case "histogram":
			var cum int64
			for i, b := range DurationBuckets {
				cum += m.h.counts[i].Load()
				le := `le="` + strconv.FormatFloat(b, 'g', -1, 64) + `"`
				fmt.Fprintf(w, "%s %d\n", withLabel(m.base+"_bucket", labels, le), cum)
			}
			cum += m.h.counts[len(DurationBuckets)].Load()
			fmt.Fprintf(w, "%s %d\n", withLabel(m.base+"_bucket", labels, `le="+Inf"`), cum)
			fmt.Fprintf(w, "%s %g\n", withLabel(m.base+"_sum", labels, ""), m.h.Sum().Seconds())
			fmt.Fprintf(w, "%s %d\n", withLabel(m.base+"_count", labels, ""), m.h.Count())
		}
	}
}
