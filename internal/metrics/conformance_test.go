package metrics

import (
	"bufio"
	"fmt"
	"math"
	"strconv"
	"strings"
	"testing"
	"time"
)

// Strict Prometheus text-exposition conformance: parse the registry's
// output with an unforgiving line-level parser and check the format
// invariants a real scraper depends on — HELP/TYPE exactly once per
// base family and before any sample of it, histogram buckets cumulative
// and monotone ending at +Inf, _sum/_count consistent with the bucket
// totals, and every labeled series well-formed.

// expoSample is one parsed sample line.
type expoSample struct {
	base   string
	labels map[string]string
	value  float64
}

// parseExposition parses Prometheus text format strictly, failing on
// anything a scraper would reject.
func parseExposition(t *testing.T, text string) (helps, types map[string]string, samples []expoSample) {
	t.Helper()
	helps = map[string]string{}
	types = map[string]string{}
	sc := bufio.NewScanner(strings.NewReader(text))
	line := 0
	for sc.Scan() {
		line++
		l := sc.Text()
		if l == "" {
			continue
		}
		if strings.HasPrefix(l, "# HELP ") {
			rest := strings.TrimPrefix(l, "# HELP ")
			name, help, ok := strings.Cut(rest, " ")
			if !ok || name == "" || help == "" {
				t.Fatalf("line %d: malformed HELP: %q", line, l)
			}
			if _, dup := helps[name]; dup {
				t.Fatalf("line %d: duplicate HELP for %s", line, name)
			}
			helps[name] = help
			continue
		}
		if strings.HasPrefix(l, "# TYPE ") {
			rest := strings.TrimPrefix(l, "# TYPE ")
			parts := strings.Fields(rest)
			if len(parts) != 2 {
				t.Fatalf("line %d: malformed TYPE: %q", line, l)
			}
			name, kind := parts[0], parts[1]
			switch kind {
			case "counter", "gauge", "histogram", "summary", "untyped":
			default:
				t.Fatalf("line %d: invalid TYPE %q", line, kind)
			}
			if _, dup := types[name]; dup {
				t.Fatalf("line %d: duplicate TYPE for %s", line, name)
			}
			if _, ok := helps[name]; !ok {
				t.Fatalf("line %d: TYPE %s before its HELP", line, name)
			}
			types[name] = kind
			continue
		}
		if strings.HasPrefix(l, "#") {
			t.Fatalf("line %d: unknown comment form: %q", line, l)
		}
		s := parseSampleLine(t, line, l)
		family := histogramFamily(s.base)
		if _, ok := types[family]; !ok {
			t.Fatalf("line %d: sample %s before its TYPE header", line, s.base)
		}
		samples = append(samples, s)
	}
	return helps, types, samples
}

// parseSampleLine parses `name{l1="v1",...} value`.
func parseSampleLine(t *testing.T, line int, l string) expoSample {
	t.Helper()
	nameEnd := strings.IndexAny(l, "{ ")
	if nameEnd <= 0 {
		t.Fatalf("line %d: malformed sample: %q", line, l)
	}
	s := expoSample{base: l[:nameEnd], labels: map[string]string{}}
	if !validMetricName(s.base) {
		t.Fatalf("line %d: invalid metric name %q", line, s.base)
	}
	rest := l[nameEnd:]
	if rest[0] == '{' {
		close := strings.IndexByte(rest, '}')
		if close < 0 {
			t.Fatalf("line %d: unterminated label set: %q", line, l)
		}
		for _, pair := range strings.Split(rest[1:close], ",") {
			if pair == "" {
				continue
			}
			k, v, ok := strings.Cut(pair, "=")
			if !ok || len(v) < 2 || v[0] != '"' || v[len(v)-1] != '"' {
				t.Fatalf("line %d: malformed label %q in %q", line, pair, l)
			}
			if !validLabelName(k) {
				t.Fatalf("line %d: invalid label name %q", line, k)
			}
			uq, err := strconv.Unquote(v)
			if err != nil {
				t.Fatalf("line %d: label value %s does not unquote: %v", line, v, err)
			}
			s.labels[k] = uq
		}
		rest = rest[close+1:]
	}
	fields := strings.Fields(rest)
	if len(fields) != 1 {
		t.Fatalf("line %d: expected exactly one value: %q", line, l)
	}
	v, err := parseValue(fields[0])
	if err != nil {
		t.Fatalf("line %d: bad value %q: %v", line, fields[0], err)
	}
	s.value = v
	return s
}

func parseValue(s string) (float64, error) {
	switch s {
	case "+Inf":
		return math.Inf(1), nil
	case "-Inf":
		return math.Inf(-1), nil
	case "NaN":
		return math.NaN(), nil
	}
	return strconv.ParseFloat(s, 64)
}

func validMetricName(s string) bool {
	for i, c := range s {
		ok := c == '_' || c == ':' || (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
			(i > 0 && c >= '0' && c <= '9')
		if !ok {
			return false
		}
	}
	return s != ""
}

func validLabelName(s string) bool {
	for i, c := range s {
		ok := c == '_' || (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
			(i > 0 && c >= '0' && c <= '9')
		if !ok {
			return false
		}
	}
	return s != "" && !strings.HasPrefix(s, "__")
}

// histogramFamily maps _bucket/_sum/_count sample names to their family.
func histogramFamily(base string) string {
	for _, suf := range []string{"_bucket", "_sum", "_count"} {
		if f, ok := strings.CutSuffix(base, suf); ok {
			return f
		}
	}
	return base
}

// buildConformanceRegistry populates one of every metric shape the
// engine registers, including multi-series labeled families.
func buildConformanceRegistry() *Registry {
	r := NewRegistry()
	c := r.Counter("conf_ops_total", "Operations.")
	c.Add(42)
	g := r.Gauge("conf_depth", "Queue depth.")
	g.Set(-7)
	r.GaugeFunc("conf_ratio", "A sampled ratio.", func() float64 { return 0.25 })
	h := r.Histogram("conf_latency_seconds", "Latency.")
	for _, d := range []time.Duration{time.Microsecond, time.Millisecond, 3 * time.Millisecond, 2 * time.Second, time.Minute} {
		h.Observe(d) // time.Minute lands in +Inf
	}
	for _, phase := range []string{"join", "fold", "snapshot"} {
		ph := r.Histogram(fmt.Sprintf("conf_phase_seconds{phase=%q}", phase), "Per-phase time.")
		ph.Observe(5 * time.Millisecond)
		ph.Observe(50 * time.Millisecond)
	}
	r.Counter(`conf_churn_total{dir="in"}`, "Flows.").Add(3)
	r.Counter(`conf_churn_total{dir="out"}`, "Flows.").Add(5)
	return r
}

func TestExpositionConformance(t *testing.T) {
	var sb strings.Builder
	buildConformanceRegistry().WritePrometheus(&sb)
	text := sb.String()
	helps, types, samples := parseExposition(t, text)

	// Every family has exactly one HELP and one TYPE (duplicates already
	// fail in the parser), and every sample's family is typed.
	for name := range helps {
		if _, ok := types[name]; !ok {
			t.Errorf("family %s has HELP but no TYPE", name)
		}
	}
	wantTypes := map[string]string{
		"conf_ops_total":       "counter",
		"conf_depth":           "gauge",
		"conf_ratio":           "gauge",
		"conf_latency_seconds": "histogram",
		"conf_phase_seconds":   "histogram",
		"conf_churn_total":     "counter",
	}
	for name, kind := range wantTypes {
		if types[name] != kind {
			t.Errorf("family %s has TYPE %q, want %q", name, types[name], kind)
		}
	}

	// Counters must be non-negative; the labeled counter family carries
	// one series per label set.
	churn := map[string]float64{}
	for _, s := range samples {
		if types[histogramFamily(s.base)] == "counter" && s.value < 0 {
			t.Errorf("counter %s negative: %g", s.base, s.value)
		}
		if s.base == "conf_churn_total" {
			churn[s.labels["dir"]] = s.value
		}
	}
	if churn["in"] != 3 || churn["out"] != 5 {
		t.Errorf("labeled counter series wrong: %v", churn)
	}

	// Histogram invariants, per (family, non-le label set).
	checkHistogram(t, samples, "conf_latency_seconds", "")
	for _, phase := range []string{"join", "fold", "snapshot"} {
		checkHistogram(t, samples, "conf_phase_seconds", phase)
	}
}

// checkHistogram asserts the bucket ladder of one histogram series is
// cumulative, monotone, ends at +Inf, and agrees with _count; _sum must
// be consistent with the observations' bucket placement.
func checkHistogram(t *testing.T, samples []expoSample, family, phase string) {
	t.Helper()
	var les []float64
	var cums []float64
	var sum, count float64
	var haveSum, haveCount bool
	for _, s := range samples {
		if phase != "" && s.labels["phase"] != phase {
			continue
		}
		switch s.base {
		case family + "_bucket":
			le, err := parseValue(s.labels["le"])
			if err != nil {
				t.Fatalf("%s: bucket without parsable le: %v", family, s.labels)
			}
			les = append(les, le)
			cums = append(cums, s.value)
		case family + "_sum":
			sum, haveSum = s.value, true
		case family + "_count":
			count, haveCount = s.value, true
		}
	}
	if len(les) == 0 {
		t.Fatalf("%s{phase=%q}: no buckets", family, phase)
	}
	if !haveSum || !haveCount {
		t.Fatalf("%s{phase=%q}: missing _sum or _count", family, phase)
	}
	if !math.IsInf(les[len(les)-1], 1) {
		t.Fatalf("%s{phase=%q}: bucket ladder does not end at +Inf (last le=%g)", family, phase, les[len(les)-1])
	}
	for i := 1; i < len(les); i++ {
		if les[i] <= les[i-1] {
			t.Fatalf("%s{phase=%q}: le bounds not increasing: %g after %g", family, phase, les[i], les[i-1])
		}
		if cums[i] < cums[i-1] {
			t.Fatalf("%s{phase=%q}: bucket counts not cumulative: le=%g has %g < %g", family, phase, les[i], cums[i], cums[i-1])
		}
	}
	if cums[len(cums)-1] != count {
		t.Fatalf("%s{phase=%q}: +Inf bucket %g != _count %g", family, phase, cums[len(cums)-1], count)
	}
	if count > 0 && sum < 0 {
		t.Fatalf("%s{phase=%q}: negative duration sum %g", family, phase, sum)
	}
	// Sum consistency: each observation lies at or below its bucket's
	// upper bound, so sum <= Σ (bucket delta × le), with +Inf deltas
	// bounded by the known observations (here: only finite checks).
	var upper float64
	for i := range les {
		delta := cums[i]
		if i > 0 {
			delta -= cums[i-1]
		}
		if math.IsInf(les[i], 1) {
			if delta > 0 {
				upper = math.Inf(1)
			}
			continue
		}
		upper += delta * les[i]
	}
	if !math.IsInf(upper, 1) && sum > upper+1e-9 {
		t.Fatalf("%s{phase=%q}: _sum %g exceeds bucket-implied upper bound %g", family, phase, sum, upper)
	}
}

// TestEngineRegistryConformance runs the same strict parser over the
// exact families the dashboard registers, so the real /metrics payload
// (not just a synthetic registry) is conformance-checked.
func TestEngineRegistryConformance(t *testing.T) {
	r := NewRegistry()
	r.Counter("fluodb_queries_total", "Online queries started.").Inc()
	h := r.Histogram(`fluodb_phase_seconds{phase="fold"}`, "Per-phase time.")
	h.Observe(2 * time.Millisecond)
	r.Histogram(`gola_ci_halfwidth{q="max"}`, "Half-width quantiles.").ObserveValue(0.017)
	var sb strings.Builder
	r.WritePrometheus(&sb)
	_, types, samples := parseExposition(t, sb.String())
	if types["gola_ci_halfwidth"] != "histogram" {
		t.Fatalf("gola_ci_halfwidth TYPE = %q", types["gola_ci_halfwidth"])
	}
	checkHistogram(t, samples, "gola_ci_halfwidth", "")
	// ObserveValue(0.017) lands in the le=0.02 bucket of the 1-2-5 ladder.
	for _, s := range samples {
		if s.base == "gola_ci_halfwidth_bucket" && s.labels["le"] == "0.02" && s.value != 1 {
			t.Fatalf("0.017 not in le=0.02 bucket: %+v", s)
		}
	}
}

// TestMemFamiliesConformance runs the strict parser over the
// resource-ledger families exactly as the dashboard registers them —
// a labeled multi-series gauge family (gola_mem_bytes{pool=...}),
// plain gauges, and the reason-split eviction counter — so the
// /metrics payload of a budgeted query is scraper-clean.
func TestMemFamiliesConformance(t *testing.T) {
	r := NewRegistry()
	pools := []string{"group-tables", "weight-arenas", "uncertain-cache",
		"prefetch", "col-scratch", "segment-cache", "checkpoint"}
	for i, p := range pools {
		r.Gauge(fmt.Sprintf("gola_mem_bytes{pool=%q}", p),
			"Resource-ledger residency per pool (bytes).").Set(int64(100 * (i + 1)))
	}
	r.Gauge("gola_mem_total_bytes", "Total ledger residency (bytes).").Set(2800)
	r.Gauge("gola_mem_peak_bytes", "High-water ledger residency (bytes).").Set(4096)
	r.Gauge("gola_mem_degrade_rung", "Highest degradation rung engaged.").Set(3)
	r.Counter("gola_gc_pause_ns_total", "GC pause nanoseconds.").Add(12345)
	r.Counter("gola_gc_cycles_total", "GC cycles.").Add(7)
	r.Gauge("gola_gc_heap_live_bytes", "Live heap bytes.").Set(1 << 20)
	r.Gauge("gola_gc_heap_goal_bytes", "GC heap goal bytes.").Set(2 << 20)
	const evictHelp = "Uncertain tuples force-resolved, by reason."
	r.Counter(`gola_uncertain_evictions{reason="cap"}`, evictHelp).Add(3)
	r.Counter(`gola_uncertain_evictions{reason="budget"}`, evictHelp).Add(5)

	var sb strings.Builder
	r.WritePrometheus(&sb)
	_, types, samples := parseExposition(t, sb.String())
	for name, kind := range map[string]string{
		"gola_mem_bytes":           "gauge",
		"gola_mem_total_bytes":     "gauge",
		"gola_mem_peak_bytes":      "gauge",
		"gola_mem_degrade_rung":    "gauge",
		"gola_gc_pause_ns_total":   "counter",
		"gola_gc_cycles_total":     "counter",
		"gola_gc_heap_live_bytes":  "gauge",
		"gola_gc_heap_goal_bytes":  "gauge",
		"gola_uncertain_evictions": "counter",
	} {
		if types[name] != kind {
			t.Errorf("family %s has TYPE %q, want %q", name, types[name], kind)
		}
	}
	// One series per pool, each with its label intact; the eviction
	// counter carries both reasons.
	poolVals := map[string]float64{}
	evict := map[string]float64{}
	for _, s := range samples {
		switch s.base {
		case "gola_mem_bytes":
			poolVals[s.labels["pool"]] = s.value
		case "gola_uncertain_evictions":
			evict[s.labels["reason"]] = s.value
		}
	}
	if len(poolVals) != len(pools) {
		t.Fatalf("pool series = %d, want %d: %v", len(poolVals), len(pools), poolVals)
	}
	for i, p := range pools {
		if poolVals[p] != float64(100*(i+1)) {
			t.Errorf("pool %q = %g, want %d", p, poolVals[p], 100*(i+1))
		}
	}
	if evict["cap"] != 3 || evict["budget"] != 5 {
		t.Errorf("eviction reason split = %v", evict)
	}
}
