// Package colstore is FluoDB's typed columnar layout: a storage.Table's
// rows re-encoded once into fixed-size segments of flat typed banks —
// []int64 for BIGINT/BOOLEAN, []float64 for DOUBLE, dictionary codes for
// VARCHAR — plus per-column null bitmaps. The mini-batch hot loops in
// internal/core sweep these banks directly (vectorized classification
// into selection vectors, fused banked folds) instead of walking boxed
// types.Row values; OLA-RAW's chunked in-situ layout is the same segment
// abstraction, and PF-OLA's lesson is that online aggregation lives or
// dies on the tightness of this per-chunk loop.
//
// The encoding is strictly a cache: the source rows stay authoritative
// (segments alias them for row-path fallback and uncertain-set lineage),
// and scanning a column back yields values equal to the originals —
// including NULLs and dictionary strings — which is what licenses the
// engine to switch between the row and columnar paths per batch with
// bit-identical results.
package colstore

import (
	"math"

	"fluodb/internal/types"
)

// DefaultSegmentSize is the number of rows per segment. Batches need not
// align with segments: sweeps address half-open local row ranges.
const DefaultSegmentSize = 4096

// Dict is a table-level dictionary for one VARCHAR column. Codes are
// assigned in first-occurrence order and are stable across segments, so
// a (column, code) pair identifies one distinct string table-wide —
// per-code predicate tables and group keys never touch string bytes.
type Dict struct {
	Vals []string
	idx  map[string]uint32
}

func newDict() *Dict { return &Dict{idx: map[string]uint32{}} }

func (d *Dict) code(s string) uint32 {
	if c, ok := d.idx[s]; ok {
		return c
	}
	c := uint32(len(d.Vals))
	d.Vals = append(d.Vals, s)
	d.idx[s] = c
	return c
}

// Code looks up the code of s without assigning one. Predicate kernels
// resolve constant strings through it: an absent string can never match
// an equality (and can never be stored), so the caller folds the
// comparison to a constant vector instead of growing the dictionary.
func (d *Dict) Code(s string) (uint32, bool) {
	c, ok := d.idx[s]
	return c, ok
}

// Col is one column's typed bank within a segment. Exactly one of Ints,
// Floats or Codes is populated, per the declared schema kind (BOOLEAN
// packs into Ints as 0/1); a mixed column (see Table.Mixed) populates
// none. NULL slots hold zero in the bank and are flagged in the bitmap.
type Col struct {
	Ints   []int64
	Floats []float64
	Codes  []uint32
	nulls  []uint64 // 1 bit per row; nil = segment has no NULLs here
}

// Null reports whether the column's local row i is SQL NULL.
func (c *Col) Null(i int) bool {
	return c.nulls != nil && c.nulls[i>>6]>>(uint(i)&63)&1 == 1
}

// HasNulls reports whether the segment holds any NULL in this column.
func (c *Col) HasNulls() bool { return c.nulls != nil }

func (c *Col) setNull(i, n int) {
	if c.nulls == nil {
		c.nulls = make([]uint64, (n+63)/64)
	}
	c.nulls[i>>6] |= 1 << (uint(i) & 63)
}

// Segment is a fixed-size run of rows in columnar form. Rows aliases
// the source rows it was built from (never copied), so the row-oriented
// fallback and uncertain-set lineage read the exact same tuples.
type Segment struct {
	Base int // global index of the segment's first row
	N    int
	Cols []Col
	Rows []types.Row
}

// Table is the columnar encoding of one relation.
type Table struct {
	Schema  types.Schema
	Dicts   []*Dict // per column; nil for non-VARCHAR columns
	Segs    []*Segment
	SegSize int
	// Mixed flags columns holding at least one non-NULL value whose kind
	// differs from the declared schema kind (rows are not kind-checked on
	// append). A mixed column carries no typed bank; readers must fall
	// back to the source rows for it.
	Mixed []bool
	src   []types.Row
	// version counts encoding generations: Build starts at 1 and every
	// Update (incremental or full rebuild) bumps it. Compiled kernels
	// capture per-code tables sized to the dictionaries they saw, so
	// consumers key cached kernels on (table pointer, version) and
	// recompile when either moves.
	version uint64
}

// Version returns the encoding generation (see the version field).
func (t *Table) Version() uint64 { return t.version }

// Build encodes rows (not copied; segments alias them) under the given
// schema. segSize <= 0 selects DefaultSegmentSize.
func Build(schema types.Schema, rows []types.Row, segSize int) *Table {
	if segSize <= 0 {
		segSize = DefaultSegmentSize
	}
	t := &Table{
		Schema:  schema,
		Dicts:   make([]*Dict, len(schema)),
		SegSize: segSize,
		Mixed:   make([]bool, len(schema)),
		src:     rows,
		version: 1,
	}
	for c, col := range schema {
		if col.Type == types.KindString {
			t.Dicts[c] = newDict()
		}
	}
	// First pass: find mixed columns, so their banks are never built
	// half-filled.
	for _, row := range rows {
		for c := range schema {
			if c >= len(row) {
				continue
			}
			v := row[c]
			if !v.IsNull() && v.Kind() != schema[c].Type {
				t.Mixed[c] = true
			}
		}
	}
	for base := 0; base < len(rows); base += segSize {
		hi := base + segSize
		if hi > len(rows) {
			hi = len(rows)
		}
		t.Segs = append(t.Segs, t.buildSegment(rows[base:hi], base))
	}
	return t
}

func (t *Table) buildSegment(rows []types.Row, base int) *Segment {
	n := len(rows)
	seg := &Segment{Base: base, N: n, Cols: make([]Col, len(t.Schema)), Rows: rows}
	for c, sc := range t.Schema {
		if t.Mixed[c] {
			continue
		}
		col := &seg.Cols[c]
		switch sc.Type {
		case types.KindInt, types.KindBool:
			col.Ints = make([]int64, n)
		case types.KindFloat:
			col.Floats = make([]float64, n)
		case types.KindString:
			col.Codes = make([]uint32, n)
		default:
			// Declared NULL-kind column: every value is NULL (anything else
			// would have marked it mixed).
			for i := 0; i < n; i++ {
				col.setNull(i, n)
			}
			continue
		}
		for i, row := range rows {
			var v types.Value
			if c < len(row) {
				v = row[c]
			}
			if v.IsNull() {
				col.setNull(i, n)
				continue
			}
			switch sc.Type {
			case types.KindInt:
				col.Ints[i] = v.Int()
			case types.KindBool:
				if v.Bool() {
					col.Ints[i] = 1
				}
			case types.KindFloat:
				col.Floats[i] = v.Float()
			case types.KindString:
				col.Codes[i] = t.Dicts[c].code(v.Str())
			}
		}
	}
	return seg
}

// Update brings the encoding up to date with rows, which must be the
// table's current backing slice. The common case — rows extend the
// previously encoded prefix — is handled incrementally: sealed (full)
// segments are kept untouched (their typed banks are never rebuilt,
// asserted by backing-pointer identity tests), only the open tail
// segment is re-encoded together with the appended suffix, and
// dictionary codes stay stable because re-encoding the tail replays the
// exact first-occurrence order of a full build. A shrunk table or a
// suffix value whose kind newly flags a column as Mixed falls back to a
// full rebuild (Mixed banks must be absent table-wide, not per
// segment). Either way the version advances, so cached kernels
// recompile against the current dictionaries.
func (t *Table) Update(rows []types.Row) {
	t.version++
	old := len(t.src)
	if len(rows) < old {
		t.rebuildAll(rows)
		return
	}
	for _, row := range rows[old:] {
		for c := range t.Schema {
			if t.Mixed[c] || c >= len(row) {
				continue
			}
			v := row[c]
			if !v.IsNull() && v.Kind() != t.Schema[c].Type {
				t.Mixed[c] = true
				t.rebuildAll(rows)
				return
			}
		}
	}
	t.src = rows
	// Appending may have moved the backing array; re-alias every sealed
	// segment's row window so Aligned and row-path fallbacks keep seeing
	// the live tuples.
	if n := len(t.Segs); n > 0 && t.Segs[n-1].N < t.SegSize {
		t.Segs = t.Segs[:n-1] // open tail: rebuilt below with the suffix
	}
	for _, seg := range t.Segs {
		seg.Rows = rows[seg.Base : seg.Base+seg.N]
	}
	base := 0
	if n := len(t.Segs); n > 0 {
		last := t.Segs[n-1]
		base = last.Base + last.N
	}
	for ; base < len(rows); base += t.SegSize {
		hi := base + t.SegSize
		if hi > len(rows) {
			hi = len(rows)
		}
		t.Segs = append(t.Segs, t.buildSegment(rows[base:hi], base))
	}
}

// rebuildAll re-encodes from scratch, preserving the (already bumped)
// version. The fresh dictionaries may assign different codes than the
// incremental path would have; the version bump is what forces every
// cached kernel to resolve its constants again.
func (t *Table) rebuildAll(rows []types.Row) {
	v := t.version
	*t = *Build(t.Schema, rows, t.SegSize)
	t.version = v
}

// NumRows returns the number of encoded rows.
func (t *Table) NumRows() int { return len(t.src) }

// MemBytes estimates the encoding's resident size: typed banks, null
// bitmaps, segment headers, and dictionary strings. The aliased source
// rows are excluded — they belong to the storage layer and exist
// whether or not the encoding does.
func (t *Table) MemBytes() int64 {
	var b int64
	for _, seg := range t.Segs {
		b += int64(len(seg.Cols)) * 8 // Col headers (approx; slices dominate)
		for c := range seg.Cols {
			col := &seg.Cols[c]
			b += 8*int64(cap(col.Ints)) + 8*int64(cap(col.Floats)) +
				4*int64(cap(col.Codes)) + 8*int64(cap(col.nulls))
		}
	}
	for _, d := range t.Dicts {
		if d == nil {
			continue
		}
		for _, s := range d.Vals {
			b += 16 + int64(len(s)) // string header + bytes
		}
		b += int64(len(d.idx)) * 24 // map entry approx
	}
	return b
}

// Segment returns the segment containing global row g and g's local
// index within it.
func (t *Table) Segment(g int) (*Segment, int) {
	return t.Segs[g/t.SegSize], g % t.SegSize
}

// Aligned reports whether rows is exactly the encoded rows [base,
// base+len(rows)) — same backing array, not merely equal values. The
// engine uses this to prove a mini-batch slice and the columnar cache
// describe the same tuples before switching to the columnar path.
func (t *Table) Aligned(rows []types.Row, base int) bool {
	if len(rows) == 0 {
		return true
	}
	if base < 0 || base+len(rows) > len(t.src) {
		return false
	}
	return &t.src[base] == &rows[0]
}

// Value scans one cell back to a types.Value (the round-trip contract:
// equal to the source row's value, including NULL and dictionary
// strings). Mixed columns read from the aliased source rows.
func (t *Table) Value(seg *Segment, c, i int) types.Value {
	if t.Mixed[c] {
		row := seg.Rows[i]
		if c >= len(row) {
			return types.Null
		}
		return row[c]
	}
	col := &seg.Cols[c]
	if col.Null(i) {
		return types.Null
	}
	switch t.Schema[c].Type {
	case types.KindInt:
		return types.NewInt(col.Ints[i])
	case types.KindBool:
		return types.NewBool(col.Ints[i] != 0)
	case types.KindFloat:
		return types.NewFloat(col.Floats[i])
	case types.KindString:
		return types.NewString(t.Dicts[c].Vals[col.Codes[i]])
	default:
		return types.Null
	}
}

// Row scans global row g back into buf (grown as needed).
func (t *Table) Row(g int, buf types.Row) types.Row {
	seg, i := t.Segment(g)
	if cap(buf) < len(t.Schema) {
		buf = make(types.Row, len(t.Schema))
	}
	buf = buf[:len(t.Schema)]
	for c := range t.Schema {
		buf[c] = t.Value(seg, c, i)
	}
	return buf
}

// Float reads a numeric/boolean cell as float64 (the aggregate-input
// view, mirroring types.Value.AsFloat). ok is false for NULL and for
// non-numeric declared kinds.
func (t *Table) Float(seg *Segment, c, i int) (float64, bool) {
	col := &seg.Cols[c]
	if col.Null(i) {
		return 0, false
	}
	switch t.Schema[c].Type {
	case types.KindInt, types.KindBool:
		return float64(col.Ints[i]), true
	case types.KindFloat:
		return col.Floats[i], true
	default:
		return 0, false
	}
}

// KeyWord is the physical group-key code of one cell: a 64-bit word
// that is equal for equal stored values of the same column (distinct
// words may still compare equal under types.Equal — e.g. -0.0 and 0.0 —
// which is why key-word memos must resolve through the canonical path
// on first sight rather than asserting uniqueness).
func (t *Table) KeyWord(seg *Segment, c, i int) (word uint64, null bool) {
	col := &seg.Cols[c]
	if col.Null(i) {
		return 0, true
	}
	switch t.Schema[c].Type {
	case types.KindInt, types.KindBool:
		return uint64(col.Ints[i]), false
	case types.KindFloat:
		return math.Float64bits(col.Floats[i]), false
	case types.KindString:
		return uint64(col.Codes[i]), false
	default:
		return 0, true
	}
}
