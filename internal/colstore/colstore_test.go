package colstore

import (
	"math/rand"
	"testing"

	"fluodb/internal/types"
)

// randValue draws a value of the declared kind, NULL with probability
// pNull, and (when allowMixed) occasionally a value of the wrong kind to
// exercise the Mixed-column fallback.
func randValue(rng *rand.Rand, kind types.Kind, pNull float64, allowMixed bool) types.Value {
	if rng.Float64() < pNull {
		return types.Null
	}
	if allowMixed && rng.Float64() < 0.05 {
		// Wrong-kind value: a string in a numeric column or vice versa.
		if kind == types.KindString {
			return types.NewInt(rng.Int63n(100))
		}
		return types.NewString("stray")
	}
	switch kind {
	case types.KindBool:
		return types.NewBool(rng.Intn(2) == 1)
	case types.KindInt:
		return types.NewInt(rng.Int63n(1000) - 500)
	case types.KindFloat:
		f := rng.NormFloat64() * 100
		switch rng.Intn(20) {
		case 0:
			f = 0
		case 1:
			return types.NewFloat(negZero())
		}
		return types.NewFloat(f)
	case types.KindString:
		words := []string{"alpha", "beta", "gamma", "delta", "", "alpha", "épsilon"}
		return types.NewString(words[rng.Intn(len(words))])
	default:
		return types.Null
	}
}

func negZero() float64 {
	z := 0.0
	return -z
}

func randSchema(rng *rand.Rand) types.Schema {
	kinds := []types.Kind{types.KindBool, types.KindInt, types.KindFloat, types.KindString}
	ncols := 1 + rng.Intn(6)
	s := make(types.Schema, ncols)
	for c := range s {
		s[c] = types.Column{
			Name: string(rune('a' + c)),
			Type: kinds[rng.Intn(len(kinds))],
		}
	}
	return s
}

// TestColstoreRoundTrip is the property test from the PR 6 satellite
// list: for randomized schemas and data (nulls, dictionary strings,
// -0.0, and deliberately kind-mismatched "mixed" cells) a columnar build
// scans back to rows equal to the originals cell-for-cell.
func TestColstoreRoundTrip(t *testing.T) {
	for seed := int64(0); seed < 20; seed++ {
		rng := rand.New(rand.NewSource(seed))
		schema := randSchema(rng)
		nrows := rng.Intn(600)
		allowMixed := seed%3 == 0
		rows := make([]types.Row, nrows)
		for i := range rows {
			row := make(types.Row, len(schema))
			for c := range schema {
				row[c] = randValue(rng, schema[c].Type, 0.15, allowMixed)
			}
			rows[i] = row
		}
		segSize := []int{0, 1, 7, 64, 4096}[rng.Intn(5)]
		ct := Build(schema, rows, segSize)

		if ct.NumRows() != nrows {
			t.Fatalf("seed %d: NumRows=%d want %d", seed, ct.NumRows(), nrows)
		}
		var buf types.Row
		for g := 0; g < nrows; g++ {
			buf = ct.Row(g, buf)
			for c := range schema {
				orig, got := rows[g][c], buf[c]
				if orig.IsNull() != got.IsNull() || (!orig.IsNull() && !types.Equal(orig, got)) {
					t.Fatalf("seed %d row %d col %d (%s, mixed=%v): got %v want %v",
						seed, g, c, schema[c].Type, ct.Mixed[c], got, orig)
				}
				// Kinds must round-trip exactly too, not merely compare equal
				// (the fold path branches on declared kind).
				if orig.Kind() != got.Kind() {
					t.Fatalf("seed %d row %d col %d: kind %v want %v", seed, g, c, got.Kind(), orig.Kind())
				}
			}
		}
	}
}

func TestColstoreAligned(t *testing.T) {
	schema := types.NewSchema("a", types.KindInt)
	rows := make([]types.Row, 100)
	for i := range rows {
		rows[i] = types.Row{types.NewInt(int64(i))}
	}
	ct := Build(schema, rows, 16)

	if !ct.Aligned(rows[10:40], 10) {
		t.Fatal("subslice of source should be aligned")
	}
	if !ct.Aligned(nil, 0) {
		t.Fatal("empty slice is trivially aligned")
	}
	if ct.Aligned(rows[10:40], 11) {
		t.Fatal("wrong base must not align")
	}
	other := make([]types.Row, 30)
	copy(other, rows[10:40])
	if ct.Aligned(other, 10) {
		t.Fatal("copied rows must not align (different backing array)")
	}
	if ct.Aligned(rows[90:], 90+20) {
		t.Fatal("out-of-range base must not align")
	}
}

func TestColstoreSegmentLookup(t *testing.T) {
	schema := types.NewSchema("a", types.KindInt)
	rows := make([]types.Row, 100)
	for i := range rows {
		rows[i] = types.Row{types.NewInt(int64(i))}
	}
	ct := Build(schema, rows, 16)
	if len(ct.Segs) != 7 {
		t.Fatalf("want 7 segments, got %d", len(ct.Segs))
	}
	if last := ct.Segs[6]; last.N != 4 || last.Base != 96 {
		t.Fatalf("last segment base=%d n=%d, want 96/4", last.Base, last.N)
	}
	seg, loc := ct.Segment(53)
	if seg.Base != 48 || loc != 5 {
		t.Fatalf("Segment(53) = base %d loc %d", seg.Base, loc)
	}
	if got := seg.Cols[0].Ints[loc]; got != 53 {
		t.Fatalf("bank value %d want 53", got)
	}
}

// TestColstoreDictStability: codes are table-wide, so equal strings in
// different segments share a code.
func TestColstoreDictStability(t *testing.T) {
	schema := types.NewSchema("s", types.KindString)
	words := []string{"x", "y", "z"}
	rows := make([]types.Row, 50)
	for i := range rows {
		rows[i] = types.Row{types.NewString(words[i%3])}
	}
	ct := Build(schema, rows, 8)
	d := ct.Dicts[0]
	if len(d.Vals) != 3 {
		t.Fatalf("dict size %d want 3", len(d.Vals))
	}
	for g := 0; g < 50; g++ {
		seg, loc := ct.Segment(g)
		code := seg.Cols[0].Codes[loc]
		if d.Vals[code] != words[g%3] {
			t.Fatalf("row %d: code %d decodes to %q want %q", g, code, d.Vals[code], words[g%3])
		}
	}
}

func TestColstoreKeyWord(t *testing.T) {
	schema := types.NewSchema("a", types.KindInt, "f", types.KindFloat, "s", types.KindString)
	rows := []types.Row{
		{types.NewInt(-7), types.NewFloat(2.5), types.NewString("p")},
		{types.Null, types.NewFloat(2.5), types.NewString("q")},
		{types.NewInt(-7), types.Null, types.NewString("p")},
	}
	ct := Build(schema, rows, 0)
	seg := ct.Segs[0]
	w0, n0 := ct.KeyWord(seg, 0, 0)
	w2, n2 := ct.KeyWord(seg, 0, 2)
	if n0 || n2 || w0 != w2 {
		t.Fatalf("equal ints must share key words: %v/%v null %v/%v", w0, w2, n0, n2)
	}
	if _, null := ct.KeyWord(seg, 0, 1); !null {
		t.Fatal("NULL int must report null key word")
	}
	if _, null := ct.KeyWord(seg, 1, 2); !null {
		t.Fatal("NULL float must report null key word")
	}
	ws0, _ := ct.KeyWord(seg, 2, 0)
	ws1, _ := ct.KeyWord(seg, 2, 1)
	ws2, _ := ct.KeyWord(seg, 2, 2)
	if ws0 == ws1 || ws0 != ws2 {
		t.Fatalf("string key words: %d %d %d", ws0, ws1, ws2)
	}
}
