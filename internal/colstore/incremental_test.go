package colstore

import (
	"math/rand"
	"testing"

	"fluodb/internal/types"
)

// bankPtr returns an identity witness for a segment column's typed bank
// (nil when the bank is empty). Incremental updates must never rebuild
// sealed segments, which this pins by pointer, not by value.
func bankPtr(col *Col) any {
	switch {
	case len(col.Ints) > 0:
		return &col.Ints[0]
	case len(col.Floats) > 0:
		return &col.Floats[0]
	case len(col.Codes) > 0:
		return &col.Codes[0]
	}
	return nil
}

func checkRoundTrip(t *testing.T, ct *Table, rows []types.Row) {
	t.Helper()
	if ct.NumRows() != len(rows) {
		t.Fatalf("NumRows=%d want %d", ct.NumRows(), len(rows))
	}
	var buf types.Row
	for g := range rows {
		buf = ct.Row(g, buf)
		for c := range ct.Schema {
			orig, got := rows[g][c], buf[c]
			if orig.IsNull() != got.IsNull() || (!orig.IsNull() && !types.Equal(orig, got)) {
				t.Fatalf("row %d col %d: got %v want %v", g, c, got, orig)
			}
		}
	}
}

// TestColstoreUpdateIncremental: growing the source rows re-encodes only
// the open tail; sealed segment banks keep their backing arrays, rows
// re-alias the (possibly moved) source array, and the whole table still
// round-trips.
func TestColstoreUpdateIncremental(t *testing.T) {
	schema := types.NewSchema("a", types.KindInt, "f", types.KindFloat, "s", types.KindString)
	rng := rand.New(rand.NewSource(42))
	mk := func(i int) types.Row {
		return types.Row{
			types.NewInt(int64(i % 13)),
			types.NewFloat(rng.Float64() * 10),
			types.NewString([]string{"x", "y", "z"}[i%3]),
		}
	}
	rows := make([]types.Row, 0, 40)
	for i := 0; i < 40; i++ {
		rows = append(rows, mk(i))
	}
	ct := Build(schema, rows, 16) // 2 sealed + open tail of 8
	if len(ct.Segs) != 3 {
		t.Fatalf("want 3 segments, got %d", len(ct.Segs))
	}
	v0 := ct.Version()
	sealed := make([][]any, 2)
	for s := 0; s < 2; s++ {
		for c := range schema {
			sealed[s] = append(sealed[s], bankPtr(&ct.Segs[s].Cols[c]))
		}
	}
	// Force the backing array to move so the re-aliasing path is real.
	grown := make([]types.Row, 0, 200)
	grown = append(grown, rows...)
	for i := 40; i < 100; i++ {
		grown = append(grown, mk(i))
	}
	ct.Update(grown)

	if ct.Version() <= v0 {
		t.Fatalf("version must advance: %d -> %d", v0, ct.Version())
	}
	if len(ct.Segs) != 7 { // 100/16 -> 6 sealed + tail of 4
		t.Fatalf("want 7 segments, got %d", len(ct.Segs))
	}
	for s := 0; s < 2; s++ {
		for c := range schema {
			if got := bankPtr(&ct.Segs[s].Cols[c]); got != sealed[s][c] {
				t.Fatalf("sealed segment %d col %d bank was rebuilt", s, c)
			}
		}
	}
	for _, seg := range ct.Segs {
		if !ct.Aligned(seg.Rows, seg.Base) {
			t.Fatalf("segment at base %d does not alias the live rows", seg.Base)
		}
	}
	checkRoundTrip(t, ct, grown)
}

// TestColstoreUpdateSealsFullTail: a tail that is exactly full counts as
// sealed — a later Update must not rebuild it.
func TestColstoreUpdateSealsFullTail(t *testing.T) {
	schema := types.NewSchema("a", types.KindInt)
	rows := make([]types.Row, 0, 64)
	for i := 0; i < 32; i++ {
		rows = append(rows, types.Row{types.NewInt(int64(i))})
	}
	ct := Build(schema, rows, 16) // two exactly-full segments
	p0 := bankPtr(&ct.Segs[0].Cols[0])
	p1 := bankPtr(&ct.Segs[1].Cols[0])
	rows = append(rows, types.Row{types.NewInt(99)})
	ct.Update(rows)
	if bankPtr(&ct.Segs[0].Cols[0]) != p0 || bankPtr(&ct.Segs[1].Cols[0]) != p1 {
		t.Fatal("full tail segment was rebuilt on append")
	}
	if len(ct.Segs) != 3 || ct.Segs[2].N != 1 {
		t.Fatalf("want new 1-row tail, got %d segs (last N=%d)",
			len(ct.Segs), ct.Segs[len(ct.Segs)-1].N)
	}
	checkRoundTrip(t, ct, rows)
}

// TestColstoreUpdateDictStable: incremental updates keep existing
// dictionary codes and assign new strings the same codes a full rebuild
// would (suffix scan order = full scan order for fresh strings).
func TestColstoreUpdateDictStable(t *testing.T) {
	schema := types.NewSchema("s", types.KindString)
	words := []string{"x", "y", "z"}
	rows := make([]types.Row, 0, 50)
	for i := 0; i < 20; i++ {
		rows = append(rows, types.Row{types.NewString(words[i%3])})
	}
	ct := Build(schema, rows, 8)
	before := map[string]uint32{}
	for s, w := range ct.Dicts[0].Vals {
		before[w] = uint32(s)
	}
	for i := 20; i < 50; i++ {
		w := words[i%3]
		if i%7 == 0 {
			w = "fresh-" + words[i%3]
		}
		rows = append(rows, types.Row{types.NewString(w)})
	}
	ct.Update(rows)
	for w, c := range before {
		if got, ok := ct.Dicts[0].Code(w); !ok || got != c {
			t.Fatalf("code of %q moved: %d -> %d (ok=%v)", w, c, got, ok)
		}
	}
	ref := Build(schema, rows, 8)
	if len(ref.Dicts[0].Vals) != len(ct.Dicts[0].Vals) {
		t.Fatalf("dict size %d, full rebuild gives %d",
			len(ct.Dicts[0].Vals), len(ref.Dicts[0].Vals))
	}
	for s, w := range ref.Dicts[0].Vals {
		if ct.Dicts[0].Vals[s] != w {
			t.Fatalf("code %d: %q vs full rebuild %q", s, ct.Dicts[0].Vals[s], w)
		}
	}
	checkRoundTrip(t, ct, rows)
}

// TestColstoreUpdateMixedFlip: a suffix value of the wrong kind flips
// the column to Mixed, which forces a full rebuild (banks must be absent
// table-wide) — and the table still round-trips through the row
// fallback.
func TestColstoreUpdateMixedFlip(t *testing.T) {
	schema := types.NewSchema("a", types.KindInt)
	rows := make([]types.Row, 0, 40)
	for i := 0; i < 30; i++ {
		rows = append(rows, types.Row{types.NewInt(int64(i))})
	}
	ct := Build(schema, rows, 16)
	v0 := ct.Version()
	rows = append(rows, types.Row{types.NewString("stray")})
	ct.Update(rows)
	if !ct.Mixed[0] {
		t.Fatal("column must be flagged Mixed after wrong-kind append")
	}
	if ct.Version() <= v0 {
		t.Fatal("version must advance across a mixed-flip rebuild")
	}
	checkRoundTrip(t, ct, rows)
}

// TestColstoreUpdateShrink: a shorter source (truncation) falls back to
// a full rebuild.
func TestColstoreUpdateShrink(t *testing.T) {
	schema := types.NewSchema("a", types.KindInt)
	rows := make([]types.Row, 0, 40)
	for i := 0; i < 40; i++ {
		rows = append(rows, types.Row{types.NewInt(int64(i))})
	}
	ct := Build(schema, rows, 16)
	ct.Update(rows[:10])
	if len(ct.Segs) != 1 || ct.Segs[0].N != 10 {
		t.Fatalf("want one 10-row segment, got %d segs", len(ct.Segs))
	}
	checkRoundTrip(t, ct, rows[:10])
}
