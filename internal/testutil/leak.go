// Package testutil holds small cross-package test helpers. The leak
// checker here is the chaos soak's goroutine-settle loop promoted to
// a reusable primitive: snapshot the goroutine count before the work
// under test, then require the count to return to (at or below) the
// baseline within a deadline, GCing between polls so finalizer-driven
// cleanup (e.g. the worker-pool shutdown backstop) gets to run.
package testutil

import (
	"fmt"
	"runtime"
	"time"
)

// GoroutineBaseline GCs and returns the current goroutine count.
// Call it before starting the work whose cleanup is under test.
func GoroutineBaseline() int {
	runtime.GC()
	return runtime.NumGoroutine()
}

// SettleGoroutines polls until the goroutine count drops to at most
// baseline or the timeout elapses, returning the final count. It GCs
// each round. Usable from non-test code (the chaos soak).
func SettleGoroutines(baseline int, timeout time.Duration) int {
	deadline := time.Now().Add(timeout)
	for {
		runtime.GC()
		n := runtime.NumGoroutine()
		if n <= baseline || time.Now().After(deadline) {
			return n
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// CheckGoroutines returns an error if the goroutine count has not
// settled back to baseline within timeout.
func CheckGoroutines(baseline int, timeout time.Duration) error {
	if n := SettleGoroutines(baseline, timeout); n > baseline {
		return fmt.Errorf("goroutine leak: %d before, %d after settle", baseline, n)
	}
	return nil
}

// failer is the subset of testing.TB we need; taking the interface
// keeps testutil import-light and usable from helpers.
type failer interface {
	Helper()
	Fatalf(format string, args ...any)
}

// VerifyNoLeaks fails the test if goroutines have not returned to
// baseline within 5 seconds.
func VerifyNoLeaks(tb failer, baseline int) {
	tb.Helper()
	if err := CheckGoroutines(baseline, 5*time.Second); err != nil {
		tb.Fatalf("%v", err)
	}
}
