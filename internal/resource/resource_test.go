package resource

import (
	"encoding/json"
	"runtime"
	"testing"
)

// TestCategoryNames pins the pool labels — they are Prometheus label
// values and report vocabulary, so a rename is a breaking change.
func TestCategoryNames(t *testing.T) {
	want := map[Category]string{
		GroupTables:     "group-tables",
		WeightArenas:    "weight-arenas",
		UncertainCache:  "uncertain-cache",
		Prefetch:        "prefetch",
		ColumnarScratch: "col-scratch",
		SegmentCache:    "segment-cache",
		Checkpoint:      "checkpoint",
	}
	if len(want) != int(NumCategories) {
		t.Fatalf("test covers %d categories, ledger has %d", len(want), NumCategories)
	}
	for c, name := range want {
		if c.String() != name {
			t.Errorf("Category(%d).String() = %q, want %q", c, c.String(), name)
		}
	}
	if Category(-1).String() != "unknown" || NumCategories.String() != "unknown" {
		t.Error("out-of-range categories must stringify as unknown")
	}
}

// TestLedgerNilSafety: a detached nil ledger ignores charges and reads
// zeros — the engine relies on this when accounting is off.
func TestLedgerNilSafety(t *testing.T) {
	var l *Ledger
	l.Set(GroupTables, 100)
	l.Observe()
	l.RestorePeak(5)
	if l.Bytes(GroupTables) != 0 || l.Total() != 0 || l.Peak(GroupTables) != 0 || l.PeakTotal() != 0 {
		t.Fatal("nil ledger reported non-zero residency")
	}
	if u := l.Snapshot(); u != (Usage{}) {
		t.Fatalf("nil ledger Snapshot = %+v, want zero", u)
	}
}

// TestLedgerPeaks: Observe advances per-category and total peaks
// independently; shrinking residency never lowers a peak; RestorePeak
// only raises the total high-water mark.
func TestLedgerPeaks(t *testing.T) {
	l := &Ledger{}
	l.Set(GroupTables, 100)
	l.Set(WeightArenas, 50)
	l.Observe()
	if l.Total() != 150 || l.PeakTotal() != 150 {
		t.Fatalf("after first observe: total %d peak %d", l.Total(), l.PeakTotal())
	}
	// Categories peak at different batches: the total peak is the max
	// simultaneous sum, not the sum of per-category peaks.
	l.Set(GroupTables, 20)
	l.Set(WeightArenas, 120)
	l.Observe()
	if got := l.Peak(GroupTables); got != 100 {
		t.Errorf("group-tables peak %d, want 100", got)
	}
	if got := l.Peak(WeightArenas); got != 120 {
		t.Errorf("weight-arenas peak %d, want 120", got)
	}
	if got := l.PeakTotal(); got != 150 {
		t.Errorf("total peak %d, want 150 (max simultaneous)", got)
	}
	// Negative Set clamps; out-of-range categories are ignored.
	l.Set(GroupTables, -5)
	if l.Bytes(GroupTables) != 0 {
		t.Error("negative residency not clamped to zero")
	}
	l.Set(Category(99), 1)
	if l.Total() != 120 {
		t.Errorf("out-of-range Set leaked into total: %d", l.Total())
	}
	// RestorePeak is monotone in both directions of use.
	l.RestorePeak(100)
	if l.PeakTotal() != 150 {
		t.Error("RestorePeak lowered the peak")
	}
	l.RestorePeak(500)
	if l.PeakTotal() != 500 {
		t.Error("RestorePeak did not raise the peak")
	}
}

// TestSnapshotFields: Usage mirrors every category and totals line up;
// a Total above the recorded peak (Set without Observe yet) still
// reports PeakBytes >= TotalBytes.
func TestSnapshotFields(t *testing.T) {
	l := &Ledger{}
	vals := []int64{1, 2, 4, 8, 16, 32, 64} // one per category
	for c := Category(0); c < NumCategories; c++ {
		l.Set(c, vals[c])
	}
	u := l.Snapshot() // no Observe: peak must still cover the live total
	got := []int64{u.GroupTableBytes, u.WeightArenaBytes, u.UncertainBytes,
		u.PrefetchBytes, u.ColScratchBytes, u.SegCacheBytes, u.CheckpointBytes}
	var sum int64
	for c := range vals {
		if got[c] != vals[c] {
			t.Errorf("category %v: snapshot %d, want %d", Category(c), got[c], vals[c])
		}
		sum += vals[c]
	}
	if u.TotalBytes != sum || u.PeakBytes != sum {
		t.Fatalf("total %d peak %d, want both %d", u.TotalBytes, u.PeakBytes, sum)
	}
	// Wire form stays stable: the dashboard's SSE payload and flbench
	// JSON both round-trip this struct.
	b, err := json.Marshal(u)
	if err != nil {
		t.Fatal(err)
	}
	var back Usage
	if err := json.Unmarshal(b, &back); err != nil {
		t.Fatal(err)
	}
	if back != u {
		t.Fatalf("Usage did not round-trip JSON: %+v vs %+v", back, u)
	}
}

// TestGCStatsSub: cumulative fields difference, gauges pass through,
// and counter regressions (process restart, runtime quirk) clamp to
// zero instead of going negative.
func TestGCStatsSub(t *testing.T) {
	prev := GCStats{HeapLiveBytes: 10, HeapGoalBytes: 20, PauseTotalNS: 100, Cycles: 5, AllocBytes: 1000}
	cur := GCStats{HeapLiveBytes: 30, HeapGoalBytes: 40, PauseTotalNS: 160, Cycles: 7, AllocBytes: 1500}
	d := cur.Sub(prev)
	want := GCStats{HeapLiveBytes: 30, HeapGoalBytes: 40, PauseTotalNS: 60, Cycles: 2, AllocBytes: 500}
	if d != want {
		t.Fatalf("Sub = %+v, want %+v", d, want)
	}
	if d = prev.Sub(cur); d.PauseTotalNS != 0 || d.Cycles != 0 || d.AllocBytes != 0 {
		t.Fatalf("regressed counters not clamped: %+v", d)
	}
}

// TestSamplerRead: a real sampler sees a live heap and counts cycles
// across a forced GC; a nil sampler reads zeros.
func TestSamplerRead(t *testing.T) {
	var nilS *Sampler
	if g := nilS.Read(); g != (GCStats{}) {
		t.Fatalf("nil sampler read %+v", g)
	}
	s := NewSampler()
	before := s.Read()
	if before.HeapLiveBytes <= 0 || before.HeapGoalBytes <= 0 {
		t.Fatalf("implausible heap reading: %+v", before)
	}
	// Force some allocation and a GC cycle, then require the cumulative
	// counters to have advanced.
	sink := make([][]byte, 0, 64)
	for i := 0; i < 64; i++ {
		sink = append(sink, make([]byte, 64<<10))
	}
	_ = sink
	runtime.GC()
	after := s.Read()
	d := after.Sub(before)
	if d.Cycles < 1 {
		t.Fatalf("forced GC not observed: delta %+v", d)
	}
	if d.AllocBytes < 64*(64<<10) {
		t.Fatalf("allocations under-counted: delta %+v", d)
	}
}

// TestSamplerNoGoroutine: the sampler is synchronous — constructing and
// reading one must not start any goroutine (nothing to leak on engine
// Close).
func TestSamplerNoGoroutine(t *testing.T) {
	base := runtime.NumGoroutine()
	s := NewSampler()
	for i := 0; i < 10; i++ {
		s.Read()
	}
	if n := runtime.NumGoroutine(); n > base {
		t.Fatalf("sampler spawned goroutines: %d before, %d after", base, n)
	}
}
