// Package resource implements the per-query memory ledger behind
// fluodb's soft memory budgets: byte counters for every pool an online
// query pins (group-table banks, weight arenas, the uncertain cache,
// prefetch buffers, columnar scratch, the segment cache, checkpoint
// encode buffers) plus a process-level GC sampler over runtime/metrics.
//
// The ledger itself is passive arithmetic: the engine charges bytes at
// its existing allocation seams (worker-local plain int64 counters,
// drained at batch barriers) and calls Observe once per committed
// mini-batch. Nothing here takes locks or allocates in steady state, so
// the ledger can stay on without disturbing the 0 allocs/tuple hot
// path. All methods are nil-safe: a detached (*Ledger)(nil) ignores
// charges and reports zeros.
package resource

// Category names one accounting pool of the ledger. Categories are
// residency pools, not allocation-rate counters: each Observe records
// the bytes currently pinned per pool.
type Category int

const (
	// GroupTables: open-addressing group tables — slot arrays, banked
	// main/bootstrap accumulator banks, generic per-trial states
	// (including free-listed recycled entries still pinned).
	GroupTables Category = iota
	// WeightArenas: pooled chunks holding per-tuple bootstrap weight
	// rows for cached uncertain tuples.
	WeightArenas
	// UncertainCache: the uncertainRow slices themselves (headers +
	// replay metadata; weight bytes are counted under WeightArenas).
	UncertainCache
	// Prefetch: double-buffered sampled/weights arrays filled for batch
	// k+1 during batch k.
	Prefetch
	// ColumnarScratch: per-worker tri-state/selection/weight vectors of
	// the vectorized classify/fold path.
	ColumnarScratch
	// SegmentCache: storage.Table columnar segment residency (typed
	// banks, null bitmaps, dictionaries).
	SegmentCache
	// Checkpoint: the most recent checkpoint encode buffer.
	Checkpoint

	NumCategories
)

var categoryNames = [NumCategories]string{
	"group-tables",
	"weight-arenas",
	"uncertain-cache",
	"prefetch",
	"col-scratch",
	"segment-cache",
	"checkpoint",
}

// String returns the stable label of the category, used for Prometheus
// label values and report lines.
func (c Category) String() string {
	if c < 0 || c >= NumCategories {
		return "unknown"
	}
	return categoryNames[c]
}

// Ledger tracks per-category byte residency and peaks for one query.
// It is owned by the engine's controller goroutine and updated only at
// mini-batch boundaries; it is not safe for concurrent use.
type Ledger struct {
	bytes [NumCategories]int64
	peak  [NumCategories]int64
	// peakTotal is the high-water mark of the summed residency.
	peakTotal int64
	observes  int64
}

// Set records the current residency of one category. Negative values
// clamp to zero (a pool cannot pin negative bytes).
func (l *Ledger) Set(c Category, n int64) {
	if l == nil || c < 0 || c >= NumCategories {
		return
	}
	if n < 0 {
		n = 0
	}
	l.bytes[c] = n
}

// Bytes reports the last observed residency of one category.
func (l *Ledger) Bytes(c Category) int64 {
	if l == nil || c < 0 || c >= NumCategories {
		return 0
	}
	return l.bytes[c]
}

// Total sums the current residency across all categories.
func (l *Ledger) Total() int64 {
	if l == nil {
		return 0
	}
	var t int64
	for _, b := range l.bytes {
		t += b
	}
	return t
}

// Observe commits the current residency as one sample, advancing the
// per-category and total peaks. Call once per committed mini-batch,
// after every category has been Set.
func (l *Ledger) Observe() {
	if l == nil {
		return
	}
	var t int64
	for c, b := range l.bytes {
		if b > l.peak[c] {
			l.peak[c] = b
		}
		t += b
	}
	if t > l.peakTotal {
		l.peakTotal = t
	}
	l.observes++
}

// Peak reports the high-water residency of one category.
func (l *Ledger) Peak(c Category) int64 {
	if l == nil || c < 0 || c >= NumCategories {
		return 0
	}
	return l.peak[c]
}

// PeakTotal reports the high-water summed residency.
func (l *Ledger) PeakTotal() int64 {
	if l == nil {
		return 0
	}
	return l.peakTotal
}

// RestorePeak raises the peak water marks to at least total, used when
// resuming from a checkpoint so peaks survive DB.ResumeOnline.
func (l *Ledger) RestorePeak(total int64) {
	if l == nil {
		return
	}
	if total > l.peakTotal {
		l.peakTotal = total
	}
}

// Usage snapshots the ledger (plus engine-stamped GC telemetry and
// degradation state) in wire form; it rides on Snapshot.Resources and
// the dashboard's SSE "mem" payload.
type Usage struct {
	// Per-pool residency in bytes at the most recent mini-batch
	// boundary.
	GroupTableBytes  int64 `json:"group_tables"`
	WeightArenaBytes int64 `json:"weight_arenas"`
	UncertainBytes   int64 `json:"uncertain"`
	PrefetchBytes    int64 `json:"prefetch"`
	ColScratchBytes  int64 `json:"col_scratch"`
	SegCacheBytes    int64 `json:"segment_cache"`
	CheckpointBytes  int64 `json:"checkpoint,omitempty"`
	// TotalBytes sums the pools; PeakBytes is the query's high-water
	// total so far.
	TotalBytes int64 `json:"total"`
	PeakBytes  int64 `json:"peak"`
	// Process-level GC telemetry (runtime/metrics), attributed to the
	// mini-batch that just committed: live heap and GC goal at the
	// boundary, plus pause time and GC cycles that elapsed during the
	// batch.
	HeapLiveBytes int64 `json:"heap_live,omitempty"`
	HeapGoalBytes int64 `json:"heap_goal,omitempty"`
	GCPauseNS     int64 `json:"gc_pause_ns,omitempty"`
	GCCycles      int64 `json:"gc_cycles,omitempty"`
	AllocBytes    int64 `json:"alloc_bytes,omitempty"`
	// Budget state: the soft budget (0 = unbudgeted), the highest
	// degradation rung engaged (0 = none, 1 = segment cache dropped,
	// 2 = prefetch disabled, 3 = uncertain eviction), and tuples
	// evicted for budget reasons.
	BudgetBytes     int64 `json:"budget,omitempty"`
	DegradeRung     int   `json:"degrade_rung,omitempty"`
	BudgetEvictions int64 `json:"budget_evictions,omitempty"`
}

// Snapshot fills the ledger-owned fields of a Usage (pool residencies,
// total, peak). The engine stamps GC and budget fields on top.
func (l *Ledger) Snapshot() Usage {
	if l == nil {
		return Usage{}
	}
	u := Usage{
		GroupTableBytes:  l.bytes[GroupTables],
		WeightArenaBytes: l.bytes[WeightArenas],
		UncertainBytes:   l.bytes[UncertainCache],
		PrefetchBytes:    l.bytes[Prefetch],
		ColScratchBytes:  l.bytes[ColumnarScratch],
		SegCacheBytes:    l.bytes[SegmentCache],
		CheckpointBytes:  l.bytes[Checkpoint],
		PeakBytes:        l.peakTotal,
	}
	u.TotalBytes = l.Total()
	if u.TotalBytes > u.PeakBytes {
		u.PeakBytes = u.TotalBytes
	}
	return u
}
