package resource

import "runtime/metrics"

// GCStats is one reading of the process-level memory telemetry the
// sampler tracks: absolute gauges (heap live, GC goal) and cumulative
// counters (pause time, cycles, allocated bytes). Subtracting two
// readings' cumulative fields attributes GC work to the interval
// between them — the engine does this per mini-batch.
type GCStats struct {
	// HeapLiveBytes is the memory occupied by live heap objects (plus
	// not-yet-swept dead ones), /memory/classes/heap/objects:bytes.
	HeapLiveBytes int64
	// HeapGoalBytes is the heap size the GC is currently pacing toward,
	// /gc/heap/goal:bytes.
	HeapGoalBytes int64
	// PauseTotalNS approximates cumulative stop-the-world pause time,
	// integrated from the /sched/pauses/total/gc:seconds (or legacy
	// /gc/pauses:seconds) histogram by bucket midpoints.
	PauseTotalNS int64
	// Cycles is the cumulative completed GC cycle count,
	// /gc/cycles/total:gc-cycles.
	Cycles int64
	// AllocBytes is the cumulative bytes allocated on the heap,
	// /gc/heap/allocs:bytes.
	AllocBytes int64
}

// Sub returns g - prev on the cumulative fields, keeping g's gauges —
// the per-interval attribution of two successive readings.
func (g GCStats) Sub(prev GCStats) GCStats {
	d := GCStats{
		HeapLiveBytes: g.HeapLiveBytes,
		HeapGoalBytes: g.HeapGoalBytes,
		PauseTotalNS:  g.PauseTotalNS - prev.PauseTotalNS,
		Cycles:        g.Cycles - prev.Cycles,
		AllocBytes:    g.AllocBytes - prev.AllocBytes,
	}
	if d.PauseTotalNS < 0 {
		d.PauseTotalNS = 0
	}
	if d.Cycles < 0 {
		d.Cycles = 0
	}
	if d.AllocBytes < 0 {
		d.AllocBytes = 0
	}
	return d
}

// Sampler reads GCStats from runtime/metrics. It owns a preallocated
// sample slice so steady-state reads do not allocate (runtime/metrics
// reuses histogram buffers held in the samples), and it runs no
// goroutine — the engine reads it synchronously at mini-batch
// boundaries, so there is nothing to stop or leak on Close. A nil
// *Sampler reads zeros.
type Sampler struct {
	samples []metrics.Sample
	// pauseIdx is the index of the pause histogram sample, -1 if the
	// runtime exposes none of the known pause metrics.
	pauseIdx int
}

// Metric names the sampler reads, in sample order.
const (
	idxHeapLive = iota
	idxHeapGoal
	idxCycles
	idxAllocs
	idxPause // must stay last: the pause metric name is probed
)

// NewSampler builds a sampler, probing which pause-histogram metric the
// running runtime exposes.
func NewSampler() *Sampler {
	s := &Sampler{
		samples: []metrics.Sample{
			{Name: "/memory/classes/heap/objects:bytes"},
			{Name: "/gc/heap/goal:bytes"},
			{Name: "/gc/cycles/total:gc-cycles"},
			{Name: "/gc/heap/allocs:bytes"},
		},
		pauseIdx: -1,
	}
	// Newer runtimes renamed the GC pause histogram; probe both and
	// keep whichever exists so the sampler degrades to pause=0 rather
	// than failing on runtime-version skew.
	for _, name := range []string{"/sched/pauses/total/gc:seconds", "/gc/pauses:seconds"} {
		probe := []metrics.Sample{{Name: name}}
		metrics.Read(probe)
		if probe[0].Value.Kind() == metrics.KindFloat64Histogram {
			s.pauseIdx = len(s.samples)
			s.samples = append(s.samples, probe[0])
			break
		}
	}
	return s
}

// Read takes one reading. It is cheap (one metrics.Read over a handful
// of samples) and allocation-free after the first call.
func (s *Sampler) Read() GCStats {
	if s == nil {
		return GCStats{}
	}
	metrics.Read(s.samples)
	var g GCStats
	g.HeapLiveBytes = uintSample(s.samples[idxHeapLive])
	g.HeapGoalBytes = uintSample(s.samples[idxHeapGoal])
	g.Cycles = uintSample(s.samples[idxCycles])
	g.AllocBytes = uintSample(s.samples[idxAllocs])
	if s.pauseIdx >= 0 {
		if h := s.samples[s.pauseIdx].Value; h.Kind() == metrics.KindFloat64Histogram {
			g.PauseTotalNS = int64(histTotal(h.Float64Histogram()) * 1e9)
		}
	}
	return g
}

func uintSample(s metrics.Sample) int64 {
	if s.Value.Kind() != metrics.KindUint64 {
		return 0
	}
	return int64(s.Value.Uint64())
}

// histTotal integrates a runtime/metrics duration histogram by bucket
// midpoints: Σ count·mid(bucket). Unbounded edge buckets fall back to
// their finite edge, so the result is a stable approximation of total
// seconds spent.
func histTotal(h *metrics.Float64Histogram) float64 {
	if h == nil || len(h.Buckets) < 2 {
		return 0
	}
	var total float64
	for i, n := range h.Counts {
		if n == 0 || i+1 >= len(h.Buckets) {
			continue
		}
		lo, hi := h.Buckets[i], h.Buckets[i+1]
		var mid float64
		switch {
		case isInf(lo) && isInf(hi):
			continue
		case isInf(lo):
			mid = hi
		case isInf(hi):
			mid = lo
		default:
			mid = (lo + hi) / 2
		}
		total += float64(n) * mid
	}
	return total
}

func isInf(f float64) bool { return f > 1e308 || f < -1e308 }
