package audit

import (
	"fmt"
	"math"

	"fluodb/internal/baseline"
	"fluodb/internal/plan"
	"fluodb/internal/storage"
)

// cltCoverage measures the empirical coverage of the classic OLA
// baseline's 95% CLT intervals on a monotone SPJA query: it steps the
// baseline through k mini-batches and, per pre-completion update,
// checks each finite ±half-width against ground truth. The query must
// project group keys then aggregates (no HAVING/ORDER BY/LIMIT) so row
// r's aggregate a sits in output column groupWidth+a — the alignment
// baseline.OLA's half-widths are defined for.
func cltCoverage(sql string, cat *storage.Catalog, batches int) (cells, covered int, err error) {
	q, err := plan.Compile(sql, cat)
	if err != nil {
		return 0, 0, fmt.Errorf("audit: clt compile: %w", err)
	}
	oracle, err := NewOracle(q, cat)
	if err != nil {
		return 0, 0, fmt.Errorf("audit: clt oracle: %w", err)
	}
	ola, err := baseline.NewOLA(q, cat, batches)
	if err != nil {
		return 0, 0, fmt.Errorf("audit: clt baseline: %w", err)
	}
	groupWidth := len(q.Root.GroupBy)
	for !ola.Done() {
		up, err := ola.Step()
		if err != nil {
			return 0, 0, err
		}
		if up.FractionProcessed >= 1 {
			break // exact: intervals no longer estimate anything
		}
		for r, row := range up.Rows {
			truth, ok := oracle.Truth(row)
			if !ok {
				continue
			}
			for a, hw := range up.HalfWidth[r] {
				if math.IsNaN(hw) || math.IsInf(hw, 0) {
					continue // no CLT estimator for this aggregate
				}
				col := groupWidth + a
				ef, eok := row[col].AsFloat()
				tf, tok := truth[col].AsFloat()
				if !eok || !tok {
					continue
				}
				cells++
				if math.Abs(ef-tf) <= hw+1e-9*(1+math.Abs(tf)) {
					covered++
				}
			}
		}
	}
	return cells, covered, nil
}
