package audit

import (
	"encoding/json"
	"fmt"
	"math"
	"strings"

	"fluodb/internal/bootstrap"
	"fluodb/internal/core"
	"fluodb/internal/plan"
	"fluodb/internal/storage"
	"fluodb/internal/workload"
)

// AuditQueries is the default query set of the accuracy harness, chosen
// to cover the estimator's three structurally distinct paths on the
// TPC-H-style workload:
//
//   - SPJA: a monotone grouped aggregation — the only shape the classic
//     OLA baseline supports, so it is also where G-OLA bootstrap CIs
//     and CLT CIs are compared head to head;
//   - Q11: grouped HAVING against an uncertain scalar-subquery
//     threshold (set-style deterministic decisions per group);
//   - Q17: the correlated per-group AVG threshold (the recomputing
//     nested workload — range commits, failures, replays).
func AuditQueries() []workload.Query {
	return []workload.Query{
		{
			Name: "SPJA", Dataset: "tpch",
			Description: "monotone grouped aggregation (CLT-comparable: keys then aggregates, no HAVING/ORDER/LIMIT)",
			SQL: `SELECT brand, COUNT(*) AS orders, SUM(quantity) AS qty, AVG(extendedprice) AS avg_price
FROM lineitem GROUP BY brand`,
		},
		mustSuiteQuery("Q11"),
		mustSuiteQuery("Q17"),
	}
}

func mustSuiteQuery(name string) workload.Query {
	q, ok := workload.ByName(name)
	if !ok {
		panic("audit: unknown suite query " + name)
	}
	return q
}

// QueryRun is one audited online execution: the per-batch accuracy
// trajectory plus the run's consistency record.
type QueryRun struct {
	Query      string            `json:"query"`
	Seed       uint64            `json:"seed"`
	Trajectory []TrajectoryPoint `json:"trajectory"`
	// Flips counts in-flight contradictions of committed decisions
	// (recovered by replay); Violations are contradictions still
	// standing when the invariant audit ran — any entry is a bug.
	Flips      int              `json:"flips"`
	Recomputes int              `json:"recomputes"`
	Violations []core.Violation `json:"violations,omitempty"`
	// FinalMaxRelErr is the worst relative error at the last batch —
	// zero when the run-to-completion exactness guarantee holds.
	FinalMaxRelErr float64 `json:"final_max_rel_err"`
}

// RunQuery executes one query online with full auditing: ground truth
// up front, a trajectory point per mini-batch, the deterministic-set
// invariant audit after every batch and at completion.
func RunQuery(name, sql string, cat *storage.Catalog, opt core.Options) (*QueryRun, error) {
	q, err := plan.Compile(sql, cat)
	if err != nil {
		return nil, fmt.Errorf("audit: compile %s: %w", name, err)
	}
	oracle, err := NewOracle(q, cat)
	if err != nil {
		return nil, fmt.Errorf("audit: oracle %s: %w", name, err)
	}
	eng, err := core.New(q, cat, opt)
	if err != nil {
		return nil, fmt.Errorf("audit: engine %s: %w", name, err)
	}
	defer eng.Close()
	run := &QueryRun{Query: name, Seed: opt.Seed}
	for !eng.Done() {
		snap, err := eng.Step()
		if err != nil {
			return nil, fmt.Errorf("audit: step %s: %w", name, err)
		}
		run.Trajectory = append(run.Trajectory, oracle.Compare(snap))
		run.Violations = append(run.Violations, eng.AuditInvariants()...)
	}
	m := eng.Metrics()
	run.Flips = m.DetFlips
	run.Recomputes = m.Recomputes
	if n := len(run.Trajectory); n > 0 {
		run.FinalMaxRelErr = run.Trajectory[n-1].MaxRelErr
	}
	return run, nil
}

// Config parameterizes the replication harness.
type Config struct {
	// Rows/Parts/Batches/Trials shape each replication's workload and
	// engine (workload.TPCHCatalog scale and core.Options).
	Rows    int `json:"rows"`
	Parts   int `json:"parts"`
	Batches int `json:"batches"`
	Trials  int `json:"trials"`
	// Reps is the number of seeded replications; replication r draws an
	// independent world (data + engine randomness) from Mix64(Seed+r).
	Reps int    `json:"reps"`
	Seed uint64 `json:"seed"`
	// Parallelism is passed to the engine (1 keeps the artifact
	// byte-reproducible regardless of the host's core count).
	Parallelism int `json:"parallelism"`
	// SampleCap is the engine's BootstrapSampleCap. The audit measures
	// the estimator's intrinsic validity, so it defaults to -1
	// (replicas over every row): the production default's m-out-of-n
	// subsampling trades per-group coverage for speed, and that trade
	// is reported in EXPERIMENTS.md rather than baked into the gate.
	SampleCap int `json:"sample_cap"`
	// Queries filters the audit set by name (default: all of
	// AuditQueries).
	Queries []string `json:"queries,omitempty"`
}

// WithDefaults fills unset config fields with the small-workload
// defaults used by `flbench -experiment audit` and the check.sh gate.
func (c Config) WithDefaults() Config {
	if c.Rows <= 0 {
		c.Rows = 20000
	}
	if c.Parts <= 0 {
		c.Parts = 120
	}
	if c.Batches <= 0 {
		c.Batches = 10
	}
	if c.Trials <= 0 {
		c.Trials = 100
	}
	if c.Reps <= 0 {
		c.Reps = 20
	}
	if c.Seed == 0 {
		c.Seed = 20150531
	}
	if c.Parallelism == 0 {
		c.Parallelism = 1
	}
	if c.SampleCap == 0 {
		c.SampleCap = -1 // pass an explicit positive cap to audit the subsampled regime
	}
	return c
}

// QuerySummary aggregates a query's audit across all replications.
type QuerySummary struct {
	Query string `json:"query"`
	// Coverage is the empirical fraction of audited 95% bootstrap
	// intervals containing ground truth, over all pre-completion batches
	// of all replications (final batches are excluded: their intervals
	// collapse onto the exact answer and would inflate the rate).
	Coverage   float64 `json:"coverage"`
	CICells    int     `json:"ci_cells"`
	Covered    int     `json:"covered"`
	MeanRelErr float64 `json:"mean_rel_err"`
	MaxRelErr  float64 `json:"max_rel_err"`
	Flips      int     `json:"flips"`
	Violations int     `json:"violations"`
	Recomputes int     `json:"recomputes"`
}

// Result is the full accuracy-audit artifact (BENCH_accuracy.json).
type Result struct {
	Config Config   `json:"config"`
	Seeds  []uint64 `json:"seeds"`
	// GolaCoverage pools the per-query bootstrap-CI coverage; the
	// acceptance gate requires ≥ 0.90 against the nominal 0.95.
	GolaCoverage float64        `json:"gola_coverage"`
	Queries      []QuerySummary `json:"queries"`
	// CLTCoverage is the classic-OLA baseline's empirical CLT-interval
	// coverage on the SPJA query (the only shape it supports), over the
	// same replications — the head-to-head the paper's §5 implies.
	CLTCoverage float64 `json:"clt_coverage"`
	CLTCells    int     `json:"clt_cells"`
	// MeanUncertainPerBatch is the mean cached uncertain-set size per
	// batch index across all runs; DecayFromPeakMonotone reports whether
	// it decays monotonically once past its peak (the uncertain set
	// necessarily grows while classification warms up, then must drain).
	MeanUncertainPerBatch []float64   `json:"mean_uncertain_per_batch"`
	DecayFromPeakMonotone bool        `json:"uncertain_decay_monotone"`
	MeanRelErr            float64     `json:"mean_rel_err"`
	MaxRelErr             float64     `json:"max_rel_err"`
	Flips                 int         `json:"flips"`
	Violations            int         `json:"violations"`
	Runs                  []*QueryRun `json:"runs"`
}

// Run executes the replication harness: Reps independent worlds, each
// auditing every query in the set against its own ground truth.
func Run(cfg Config) (*Result, error) {
	cfg = cfg.WithDefaults()
	queries := AuditQueries()
	if len(cfg.Queries) > 0 {
		var sel []workload.Query
		for _, name := range cfg.Queries {
			found := false
			for _, q := range queries {
				if q.Name == name {
					sel = append(sel, q)
					found = true
				}
			}
			if !found {
				return nil, fmt.Errorf("audit: unknown audit query %q (have SPJA, Q11, Q17)", name)
			}
		}
		queries = sel
	}

	res := &Result{Config: cfg}
	sums := make(map[string]*QuerySummary)
	for _, q := range queries {
		qs := &QuerySummary{Query: q.Name}
		sums[q.Name] = qs
		res.Queries = append(res.Queries, QuerySummary{}) // placeholder, filled below
	}
	var meanErrSum float64
	var meanErrN int
	uncertainSum := make([]float64, cfg.Batches)
	uncertainN := make([]int, cfg.Batches)

	for r := 0; r < cfg.Reps; r++ {
		seed := bootstrap.Mix64(cfg.Seed + uint64(r))
		if seed == 0 {
			seed = 1 // core treats 0 as "use default"; keep worlds distinct
		}
		res.Seeds = append(res.Seeds, seed)
		cat := workload.TPCHCatalog(cfg.Rows, cfg.Parts, seed)
		opt := core.Options{Batches: cfg.Batches, Trials: cfg.Trials,
			Seed: seed, Parallelism: cfg.Parallelism,
			BootstrapSampleCap: cfg.SampleCap}
		for _, q := range queries {
			run, err := RunQuery(q.Name, q.SQL, cat, opt)
			if err != nil {
				return nil, err
			}
			res.Runs = append(res.Runs, run)
			qs := sums[q.Name]
			qs.Flips += run.Flips
			qs.Violations += len(run.Violations)
			qs.Recomputes += run.Recomputes
			for _, tp := range run.Trajectory {
				if tp.Batch-1 < len(uncertainSum) {
					uncertainSum[tp.Batch-1] += float64(tp.Uncertain)
					uncertainN[tp.Batch-1]++
				}
				if tp.Fraction >= 1 {
					continue // exact end state: intervals collapse onto truth
				}
				qs.CICells += tp.CICells
				qs.Covered += tp.Covered
				meanErrSum += tp.MeanRelErr
				meanErrN++
				qs.MeanRelErr += tp.MeanRelErr
				if tp.MaxRelErr > qs.MaxRelErr {
					qs.MaxRelErr = tp.MaxRelErr
				}
			}
		}
		// CLT coverage for the baseline, same world.
		for _, q := range queries {
			if q.Name != "SPJA" {
				continue
			}
			cells, covered, err := cltCoverage(q.SQL, cat, cfg.Batches)
			if err != nil {
				return nil, err
			}
			res.CLTCells += cells
			res.CLTCoverage += float64(covered) // normalized below
		}
	}

	var allCells, allCovered int
	for i, q := range queries {
		qs := sums[q.Name]
		n := 0
		for _, run := range res.Runs {
			if run.Query == q.Name {
				for _, tp := range run.Trajectory {
					if tp.Fraction < 1 {
						n++
					}
				}
			}
		}
		if n > 0 {
			qs.MeanRelErr /= float64(n)
		}
		if qs.CICells > 0 {
			qs.Coverage = float64(qs.Covered) / float64(qs.CICells)
		}
		allCells += qs.CICells
		allCovered += qs.Covered
		res.Flips += qs.Flips
		res.Violations += qs.Violations
		if qs.MaxRelErr > res.MaxRelErr {
			res.MaxRelErr = qs.MaxRelErr
		}
		res.Queries[i] = *qs
	}
	if allCells > 0 {
		res.GolaCoverage = float64(allCovered) / float64(allCells)
	}
	if res.CLTCells > 0 {
		res.CLTCoverage /= float64(res.CLTCells)
	} else {
		res.CLTCoverage = 0
	}
	if meanErrN > 0 {
		res.MeanRelErr = meanErrSum / float64(meanErrN)
	}
	for i := range uncertainSum {
		if uncertainN[i] > 0 {
			uncertainSum[i] /= float64(uncertainN[i])
		}
	}
	res.MeanUncertainPerBatch = uncertainSum
	res.DecayFromPeakMonotone = decaysFromPeak(uncertainSum)
	return res, nil
}

// decaysFromPeak reports whether the series is non-increasing from its
// maximum onward.
func decaysFromPeak(xs []float64) bool {
	peak := 0
	for i, x := range xs {
		if x > xs[peak] {
			peak = i
		}
	}
	for i := peak + 1; i < len(xs); i++ {
		if xs[i] > xs[i-1] {
			return false
		}
	}
	return true
}

// JSON renders the artifact deterministically (fixed field order,
// indented) — the determinism test asserts byte identity across runs.
func (r *Result) JSON() ([]byte, error) {
	for _, run := range r.Runs {
		for _, tp := range run.Trajectory {
			for _, f := range []float64{tp.MeanRelErr, tp.MaxRelErr, tp.MeanCIWidth} {
				if math.IsNaN(f) || math.IsInf(f, 0) {
					return nil, fmt.Errorf("audit: non-finite stat in %s batch %d", run.Query, tp.Batch)
				}
			}
		}
	}
	return json.MarshalIndent(r, "", "  ")
}

// FormatResult renders the audit artifact as the flbench text table.
func FormatResult(r *Result) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Audit: statistical correctness over %d replications (rows=%d, k=%d, B=%d, seed=%d)\n",
		r.Config.Reps, r.Config.Rows, r.Config.Batches, r.Config.Trials, r.Config.Seed)
	fmt.Fprintf(&b, "%6s %10s %10s %14s %13s %8s %12s %12s\n",
		"query", "coverage", "ci cells", "mean rel err", "max rel err", "flips", "recomputes", "violations")
	for _, qs := range r.Queries {
		fmt.Fprintf(&b, "%6s %10.3f %10d %14.4f %13.4f %8d %12d %12d\n",
			qs.Query, qs.Coverage, qs.CICells, qs.MeanRelErr, qs.MaxRelErr,
			qs.Flips, qs.Recomputes, qs.Violations)
	}
	fmt.Fprintf(&b, "G-OLA bootstrap CI coverage: %.3f (nominal 0.95)\n", r.GolaCoverage)
	if r.CLTCells > 0 {
		fmt.Fprintf(&b, "OLA baseline CLT coverage:   %.3f over %d cells (SPJA only)\n",
			r.CLTCoverage, r.CLTCells)
	}
	fmt.Fprintf(&b, "invariant violations: %d\n", r.Violations)
	fmt.Fprintf(&b, "mean uncertain set per batch:")
	for _, u := range r.MeanUncertainPerBatch {
		fmt.Fprintf(&b, " %.1f", u)
	}
	fmt.Fprintf(&b, "\nuncertain decay monotone from peak: %v\n", r.DecayFromPeakMonotone)
	return b.String()
}
