package audit

import (
	"bytes"
	"testing"

	"fluodb/internal/bootstrap"
	"fluodb/internal/core"
	"fluodb/internal/storage"
	"fluodb/internal/types"
	"fluodb/internal/workload"
)

// gateConfig is the small fixed-seed workload the check.sh gate runs;
// TestAuditGate below enforces the ISSUE's acceptance thresholds on it.
func gateConfig() Config {
	return Config{Rows: 4000, Parts: 60, Batches: 8, Trials: 60,
		Reps: 5, Seed: 20150531, Parallelism: 1}
}

func TestOracleKeysAndTruth(t *testing.T) {
	cat := workload.TPCHCatalog(2000, 40, 11)
	run, err := RunQuery("SPJA", AuditQueries()[0].SQL, cat,
		core.Options{Batches: 5, Trials: 40, Seed: 11, Parallelism: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(run.Trajectory) != 5 {
		t.Fatalf("trajectory has %d points, want 5", len(run.Trajectory))
	}
	final := run.Trajectory[len(run.Trajectory)-1]
	// Run-to-completion exactness: zero error, zero unmatched rows, all
	// cells covered.
	if final.MaxRelErr > 1e-9 {
		t.Fatalf("final max relative error %g, want ~0 (exactness guarantee)", final.MaxRelErr)
	}
	if final.Unmatched != 0 {
		t.Fatalf("%d unmatched rows at completion", final.Unmatched)
	}
	if final.Covered != final.CICells {
		t.Fatalf("final batch covered %d/%d cells", final.Covered, final.CICells)
	}
	if len(run.Violations) != 0 {
		t.Fatalf("invariant violations on SPJA: %+v", run.Violations)
	}
	// Early batches must actually audit something.
	if run.Trajectory[0].CICells == 0 {
		t.Fatal("first batch audited no CI cells")
	}
}

func TestCompareCountsMisses(t *testing.T) {
	// A snapshot whose CI excludes truth must be counted uncovered.
	o := &Oracle{
		Schema:  types.NewSchema("g", types.KindString, "v", types.KindFloat),
		KeyCols: []int{0},
		AggCols: []int{1},
		rows: map[string]types.Row{
			types.Row{types.NewString("a")}.KeyString([]int{0}): {types.NewString("a"), types.NewFloat(100)},
		},
	}
	snap := &core.Snapshot{
		Batch: 1, FractionProcessed: 0.5,
		Rows: [][]core.CellEstimate{{
			{Value: types.NewString("a")},
			{Value: types.NewFloat(90), HasCI: true,
				CI: bootstrap.Interval{Lo: 85, Hi: 95}},
		}},
	}
	tp := o.Compare(snap)
	if tp.CICells != 1 || tp.Covered != 0 {
		t.Fatalf("covered %d/%d, want 0/1 (truth 100 outside [85,95])", tp.Covered, tp.CICells)
	}
	if tp.MaxRelErr < 0.099 || tp.MaxRelErr > 0.101 {
		t.Fatalf("MaxRelErr = %g, want 0.1", tp.MaxRelErr)
	}
	if tp.MeanCIWidth < 0.099 || tp.MeanCIWidth > 0.101 {
		t.Fatalf("MeanCIWidth = %g, want 0.1 (10/100)", tp.MeanCIWidth)
	}
}

// TestAuditGate is the check.sh statistical-correctness gate: on the
// small fixed-seed workload, G-OLA 95% bootstrap intervals must cover
// ground truth at ≥ 0.90 empirically, no committed deterministic
// decision may stand contradicted, and the mean uncertain-set size must
// drain monotonically from its peak.
func TestAuditGate(t *testing.T) {
	if testing.Short() {
		t.Skip("replication harness is seconds-long; skipped under -short")
	}
	res, err := Run(gateConfig())
	if err != nil {
		t.Fatal(err)
	}
	if res.GolaCoverage < 0.90 {
		t.Errorf("G-OLA bootstrap CI coverage %.3f < 0.90 over %d cells",
			res.GolaCoverage, cellsOf(res))
	}
	if res.Violations != 0 {
		t.Errorf("%d deterministic-set invariant violations, want 0", res.Violations)
	}
	if !res.DecayFromPeakMonotone {
		t.Errorf("mean uncertain-set size not monotone from peak: %v", res.MeanUncertainPerBatch)
	}
	for _, qs := range res.Queries {
		if qs.CICells == 0 {
			t.Errorf("query %s audited no CI cells", qs.Query)
		}
	}
	t.Logf("gola_coverage=%.3f clt_coverage=%.3f (%d cells) flips=%d mean_rel_err=%.4f",
		res.GolaCoverage, res.CLTCoverage, res.CLTCells, res.Flips, res.MeanRelErr)
}

func cellsOf(res *Result) int {
	n := 0
	for _, qs := range res.Queries {
		n += qs.CICells
	}
	return n
}

// TestAuditJSONDeterminism: same seed → byte-identical artifact across
// two runs (the audit-layer extension of the parallel-determinism
// property).
func TestAuditJSONDeterminism(t *testing.T) {
	if testing.Short() {
		t.Skip("replication harness is seconds-long; skipped under -short")
	}
	cfg := Config{Rows: 2000, Parts: 40, Batches: 5, Trials: 40,
		Reps: 2, Seed: 7, Parallelism: 1}
	a := runJSON(t, cfg)
	b := runJSON(t, cfg)
	if !bytes.Equal(a, b) {
		t.Fatal("same config produced different artifact bytes across runs")
	}
}

// TestAuditParallelismDeterminism: the audit trajectory must be
// byte-identical across Parallelism settings on a workload where the
// parallel path actually engages (≥ 2·parallelThreshold rows per batch)
// and floating-point folds are exact (integer-valued measures,
// uncapped bootstrap replicas).
func TestAuditParallelismDeterminism(t *testing.T) {
	if testing.Short() {
		t.Skip("large fixture; skipped under -short")
	}
	const rows = 3 * 8192
	run1 := auditFixtureRun(t, rows, 1)
	run4 := auditFixtureRun(t, rows, 4)
	a, err := (&Result{Runs: []*QueryRun{run1}}).JSON()
	if err != nil {
		t.Fatal(err)
	}
	b, err := (&Result{Runs: []*QueryRun{run4}}).JSON()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a, b) {
		t.Fatalf("audit trajectory differs between Parallelism 1 and 4:\n%s\n----\n%s", a, b)
	}
}

// auditFixtureRun runs the audit over an integer-measure fixture table
// (exact float addition in any fold order).
func auditFixtureRun(t *testing.T, rows, parallelism int) *QueryRun {
	t.Helper()
	cat := storage.NewCatalog()
	tab := storage.NewTable("fix", types.NewSchema(
		"a", types.KindInt, "v", types.KindFloat))
	for i := 0; i < rows; i++ {
		_ = tab.Append(types.Row{
			types.NewInt(int64(i % 8)),
			types.NewFloat(float64(i%97 + 1)),
		})
	}
	cat.Put(tab)
	run, err := RunQuery("fix",
		`SELECT a, COUNT(*) AS n, SUM(v) AS sv, AVG(v) AS av FROM fix GROUP BY a`,
		cat, core.Options{Batches: 3, Trials: 50, Seed: 42,
			Parallelism: parallelism, BootstrapSampleCap: -1})
	if err != nil {
		t.Fatal(err)
	}
	run.Seed = 0 // seed is not part of the compared trajectory
	return run
}

func runJSON(t *testing.T, cfg Config) []byte {
	t.Helper()
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := res.JSON()
	if err != nil {
		t.Fatal(err)
	}
	return b
}
