package audit

import (
	"math"

	"fluodb/internal/core"
	"fluodb/internal/types"
)

// TrajectoryPoint is the accuracy audit of one mini-batch snapshot: how
// the estimate actually relates to ground truth at that point. All
// float fields are finite (NaN-free) so trajectories marshal to JSON.
type TrajectoryPoint struct {
	Batch    int     `json:"batch"`
	Fraction float64 `json:"fraction"`
	// CICells is the number of audited cells (estimate cells carrying a
	// confidence interval whose row matched an exact result row);
	// Covered of them had truth inside the interval.
	CICells int `json:"ci_cells"`
	Covered int `json:"covered"`
	// MeanRelErr / MaxRelErr relate point estimates to truth, relative
	// to |truth| (absolute error where truth is 0).
	MeanRelErr float64 `json:"mean_rel_err"`
	MaxRelErr  float64 `json:"max_rel_err"`
	// MeanCIWidth is the mean interval width over the audited cells,
	// relative like the errors (so queries of different magnitude
	// aggregate meaningfully).
	MeanCIWidth float64 `json:"mean_ci_width"`
	// Uncertain is the cached uncertain-set size across all lineage
	// blocks; BlockUncertain breaks it down per block (plan order).
	Uncertain      int   `json:"uncertain"`
	BlockUncertain []int `json:"block_uncertain,omitempty"`
	Recomputes     int   `json:"recomputes"`
	// Unmatched counts estimated rows with no exact counterpart (an
	// approximate HAVING admitted a group the exact answer rejects) —
	// expected to reach 0 by the final batch.
	Unmatched int `json:"unmatched_rows,omitempty"`
}

// Compare audits one snapshot against the oracle.
func (o *Oracle) Compare(snap *core.Snapshot) TrajectoryPoint {
	tp := TrajectoryPoint{
		Batch:      snap.Batch,
		Fraction:   snap.FractionProcessed,
		Uncertain:  snap.UncertainRows,
		Recomputes: snap.Recomputes,
	}
	for _, bs := range snap.Blocks {
		tp.BlockUncertain = append(tp.BlockUncertain, bs.Uncertain)
	}
	var sumErr, sumWidth float64
	var nErr int
	vals := make(types.Row, 0, len(o.Schema))
	for _, row := range snap.Rows {
		vals = vals[:0]
		for _, cell := range row {
			vals = append(vals, cell.Value)
		}
		truth, ok := o.Truth(vals)
		if !ok {
			tp.Unmatched++
			continue
		}
		for _, c := range o.AggCols {
			cell := row[c]
			tf, tok := truth[c].AsFloat()
			ef, eok := cell.Value.AsFloat()
			if !tok || !eok {
				continue
			}
			denom := math.Abs(tf)
			if denom == 0 {
				denom = 1
			}
			re := math.Abs(ef-tf) / denom
			sumErr += re
			nErr++
			if re > tp.MaxRelErr {
				tp.MaxRelErr = re
			}
			if !cell.HasCI {
				continue
			}
			tp.CICells++
			// Tolerance absorbs float noise at the exact end state, where
			// the interval collapses onto the point.
			tol := 1e-9 * (1 + math.Abs(tf))
			if tf >= cell.CI.Lo-tol && tf <= cell.CI.Hi+tol {
				tp.Covered++
			}
			sumWidth += (cell.CI.Hi - cell.CI.Lo) / denom
		}
	}
	if nErr > 0 {
		tp.MeanRelErr = sumErr / float64(nErr)
	}
	if tp.CICells > 0 {
		tp.MeanCIWidth = sumWidth / float64(tp.CICells)
	}
	return tp
}
