// Package audit is the statistical-correctness observability layer: it
// checks the two claims G-OLA's usefulness rests on (§4 of the paper)
// against machine-verifiable ground truth. (1) Accuracy: the reported
// 95% bootstrap confidence intervals must actually cover the exact
// answer about 95% of the time — measured over seeded replications as
// empirical coverage, alongside relative error and CI width per
// mini-batch. (2) Consistency: a committed deterministic decision must
// never be contradicted (the invariant monitor in internal/core). The
// OLA literature flags unvalidated error guarantees as the recurring
// failure mode of online-aggregation systems; this package turns them
// into a regression gate (scripts/check.sh) and a reproducible artifact
// (BENCH_accuracy.json, `flbench -experiment audit`).
package audit

import (
	"fluodb/internal/exec"
	"fluodb/internal/expr"
	"fluodb/internal/plan"
	"fluodb/internal/storage"
	"fluodb/internal/types"
)

// Oracle holds a query's exact answer, computed by the batch executor
// over the full tables, indexed by the non-aggregated output columns so
// online snapshot rows can be matched to their true values.
type Oracle struct {
	Schema types.Schema
	// KeyCols are the output columns whose values identify a result row
	// (group keys and other non-aggregated projections); AggCols are the
	// audited columns — the ones the engine puts confidence intervals
	// on. Together they partition the output columns.
	KeyCols []int
	AggCols []int
	rows    map[string]types.Row
}

// NewOracle evaluates the query exactly and indexes the result.
func NewOracle(q *plan.Query, cat *storage.Catalog) (*Oracle, error) {
	res, err := exec.Run(q, cat)
	if err != nil {
		return nil, err
	}
	b := q.Root
	o := &Oracle{Schema: res.Schema, rows: make(map[string]types.Row, len(res.Rows))}
	for c, se := range b.Select {
		if columnIsAggregated(se, len(b.GroupBy)) {
			o.AggCols = append(o.AggCols, c)
		} else {
			o.KeyCols = append(o.KeyCols, c)
		}
	}
	for _, r := range res.Rows {
		o.rows[r.KeyString(o.KeyCols)] = r
	}
	return o, nil
}

// Truth returns the exact output row matching an estimated row's key
// columns (false when the estimated row's group is not in the exact
// answer — e.g. a group the online engine admitted past an approximate
// HAVING threshold that the exact evaluation rejects).
func (o *Oracle) Truth(estimated types.Row) (types.Row, bool) {
	r, ok := o.rows[estimated.KeyString(o.KeyCols)]
	return r, ok
}

// Rows returns the number of exact result rows.
func (o *Oracle) Rows() int { return len(o.rows) }

// columnIsAggregated mirrors the engine's snapshot rule for which output
// columns carry confidence intervals: a column depending on aggregate
// slots (post-aggregate row positions at or beyond the group-by width)
// or on nested-subquery parameters is an estimate; anything else is a
// key passed through exactly.
func columnIsAggregated(e expr.Expr, groupWidth int) bool {
	if expr.HasParams(e) {
		return true
	}
	found := false
	expr.Walk(e, func(x expr.Expr) bool {
		if c, ok := x.(*expr.Col); ok && c.Idx >= groupWidth {
			found = true
		}
		return !found
	})
	return found
}
