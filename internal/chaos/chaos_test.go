package chaos

import "testing"

// TestDeterministic pins the core property: decisions are a pure
// function of (seed, site), so two injectors with the same config agree
// everywhere and replay re-encounters the same schedule.
func TestDeterministic(t *testing.T) {
	cfg := Config{Seed: 42, PanicProb: 0.1, StragglerProb: 0.1, CorruptProb: 0.1, PrefetchDropProb: 0.1}
	a, b := New(cfg), New(cfg)
	for batch := 0; batch < 64; batch++ {
		for w := 0; w < 8; w++ {
			if got, want := a.ShardFault("facts", batch*512, w), b.ShardFault("facts", batch*512, w); got != want {
				t.Fatalf("shard site (%d,%d): %v vs %v", batch, w, got, want)
			}
			if got, want := a.ReclassFault(1, batch, w), b.ReclassFault(1, batch, w); got != want {
				t.Fatalf("reclass site (%d,%d): %v vs %v", batch, w, got, want)
			}
		}
		if got, want := a.PrefetchDrop("facts", batch), b.PrefetchDrop("facts", batch); got != want {
			t.Fatalf("prefetch site %d: %v vs %v", batch, got, want)
		}
	}
}

// TestSeedsDiffer checks different seeds produce different schedules.
func TestSeedsDiffer(t *testing.T) {
	cfg := Config{PanicProb: 0.25, StragglerProb: 0.25, CorruptProb: 0.25}
	a := New(Config{Seed: 1, PanicProb: cfg.PanicProb, StragglerProb: cfg.StragglerProb, CorruptProb: cfg.CorruptProb})
	b := New(Config{Seed: 2, PanicProb: cfg.PanicProb, StragglerProb: cfg.StragglerProb, CorruptProb: cfg.CorruptProb})
	diff := 0
	for batch := 0; batch < 256; batch++ {
		for w := 0; w < 4; w++ {
			if a.ShardFault("facts", batch*512, w) != b.ShardFault("facts", batch*512, w) {
				diff++
			}
		}
	}
	if diff == 0 {
		t.Fatal("seeds 1 and 2 produced identical fault schedules")
	}
}

// TestZeroAndNil checks that zero probabilities and nil injectors never
// fire — the production default must be fault-free.
func TestZeroAndNil(t *testing.T) {
	var nilInj *Injector
	zero := New(Config{Seed: 7})
	for batch := 0; batch < 128; batch++ {
		for w := 0; w < 4; w++ {
			if k := zero.ShardFault("facts", batch, w); k != KindNone {
				t.Fatalf("zero-prob injector fired %v", k)
			}
			if k := nilInj.ShardFault("facts", batch, w); k != KindNone {
				t.Fatalf("nil injector fired %v", k)
			}
		}
		if zero.PrefetchDrop("facts", batch) || nilInj.PrefetchDrop("facts", batch) {
			t.Fatal("prefetch drop fired with zero probability")
		}
	}
	if nilInj.Fired() != 0 || zero.Fired() != 0 {
		t.Fatal("fault counters nonzero without faults")
	}
	nilInj.Sleep() // must not crash
	if nilInj.Seed() != 0 {
		t.Fatal("nil injector seed")
	}
}

// TestRates sanity-checks that firing frequency tracks the configured
// probability (coarsely — this is a hash, not an RNG audit).
func TestRates(t *testing.T) {
	in := New(Config{Seed: 99, PanicProb: 0.2})
	fired := 0
	const sites = 4000
	for i := 0; i < sites; i++ {
		if in.ShardFault("facts", i*512, i%8) == KindPanic {
			fired++
		}
	}
	rate := float64(fired) / sites
	if rate < 0.12 || rate > 0.3 {
		t.Fatalf("panic rate %.3f far from configured 0.2", rate)
	}
	if in.Counts()[KindPanic] != int64(fired) {
		t.Fatalf("counter %d != observed %d", in.Counts()[KindPanic], fired)
	}
}

func TestKindString(t *testing.T) {
	want := map[Kind]string{
		KindNone: "none", KindPanic: "panic", KindStraggler: "straggler",
		KindCorrupt: "corrupt", KindPrefetchDrop: "prefetch-drop",
	}
	for k, s := range want {
		if k.String() != s {
			t.Fatalf("Kind(%d).String() = %q, want %q", int(k), k.String(), s)
		}
	}
	if Kind(99).String() == "" {
		t.Fatal("unknown kind string empty")
	}
}
