// Package chaos provides deterministic fault injection for the query
// runtime. An Injector decides — as a pure function of its seed and the
// fault site — whether a worker panic, straggler delay, row corruption,
// or prefetch-buffer drop fires at a given (table, batch, worker)
// coordinate. Determinism is the point: a fault schedule is replayable
// from its seed alone, so a chaos soak that finds a divergence hands
// the exact failing schedule to the developer, and the engine's own
// failure-recovery replay re-encounters (and re-contains) the same
// faults at the same sites.
//
// The injector only *decides*; the runtime *performs* the fault (panics
// on the worker, sleeps, flips a row, drops a buffer) so that injection
// sites stay inside the code paths whose containment they test.
package chaos

import (
	"fmt"
	"sync/atomic"
	"time"

	"fluodb/internal/bootstrap"
)

// Kind identifies one class of injected fault.
type Kind int

const (
	// KindNone reports "no fault at this site".
	KindNone Kind = iota
	// KindPanic makes a pool worker panic mid-shard.
	KindPanic
	// KindStraggler delays a worker, simulating a stuck or slow shard.
	KindStraggler
	// KindCorrupt flags a shard's rows for corruption before folding.
	KindCorrupt
	// KindPrefetchDrop invalidates a prefetched weight buffer, forcing
	// the feed path back to inline weight derivation.
	KindPrefetchDrop
	// KindSegSeal drops a block's columnar segment cache between batches,
	// forcing an incremental re-encode plus kernel recompilation on the
	// segment-seal seam.
	KindSegSeal
	// KindShardKill kills a shard engine mid-dispatch: the shard
	// goroutine exits without producing its delta, exercising the
	// coordinator's re-dispatch → checkpoint-restore recovery ladder.
	KindShardKill
	// KindShardStraggler delays a shard engine's mini-batch step,
	// simulating an overloaded or slow shard behind the coordinator.
	KindShardStraggler

	numKinds int = iota
)

// String names the fault kind for traces and soak reports.
func (k Kind) String() string {
	switch k {
	case KindNone:
		return "none"
	case KindPanic:
		return "panic"
	case KindStraggler:
		return "straggler"
	case KindCorrupt:
		return "corrupt"
	case KindPrefetchDrop:
		return "prefetch-drop"
	case KindSegSeal:
		return "segseal"
	case KindShardKill:
		return "shard-kill"
	case KindShardStraggler:
		return "shard-straggler"
	}
	return fmt.Sprintf("chaos.Kind(%d)", int(k))
}

// Config sets the per-site firing probabilities of each fault class.
// Probabilities are independent; at a site where several classes fire,
// the injector reports the most disruptive one (panic > corrupt >
// straggler).
type Config struct {
	// Seed drives every decision. Two injectors with equal Config make
	// identical decisions at every site.
	Seed uint64
	// PanicProb is the per-(table,batch,worker) probability of a worker
	// panic during a shard feed.
	PanicProb float64
	// StragglerProb is the probability of a straggler delay at a shard
	// or reclassification site.
	StragglerProb float64
	// CorruptProb is the probability that a shard's rows are corrupted
	// before folding.
	CorruptProb float64
	// PrefetchDropProb is the per-(table,batch) probability that a
	// completed prefetch buffer is invalidated before consumption.
	PrefetchDropProb float64
	// SegSealDropProb is the per-(table,batch) probability that a
	// block's columnar segment cache is dropped before the batch feeds,
	// exercising incremental re-encode + kernel recompile mid-query.
	SegSealDropProb float64
	// ShardKillProb is the per-(table, batch, shard, incarnation)
	// probability that a shard engine dies mid-dispatch. The incarnation
	// is part of the site, so a replacement shard redoing the same slice
	// draws a fresh variate — probability 1 therefore kills every
	// incarnation and exhausts the coordinator's whole recovery ladder.
	ShardKillProb float64
	// ShardStragglerProb is the per-(table, batch, shard, incarnation)
	// probability that a shard engine sleeps StragglerDelay before its
	// step (benign for correctness: the coordinator merges deltas in
	// shard order regardless of arrival order).
	ShardStragglerProb float64
	// StragglerDelay is how long an injected straggler sleeps
	// (default 100µs — long enough to reorder goroutine scheduling,
	// short enough for thousand-schedule soaks).
	StragglerDelay time.Duration
}

// Injector is a seeded, concurrency-safe fault oracle. The zero value
// and the nil injector never fire.
type Injector struct {
	cfg    Config
	counts [numKinds]atomic.Int64
}

// New builds an injector for the given config.
func New(cfg Config) *Injector {
	if cfg.StragglerDelay <= 0 {
		cfg.StragglerDelay = 100 * time.Microsecond
	}
	return &Injector{cfg: cfg}
}

// Seed reports the injector's seed (for trace annotations).
func (in *Injector) Seed() uint64 {
	if in == nil {
		return 0
	}
	return in.cfg.Seed
}

// decide hashes the site into [0,1) and compares against prob. The
// site must already encode the fault class so independent classes draw
// independent variates.
func (in *Injector) decide(site uint64, prob float64) bool {
	if prob <= 0 {
		return false
	}
	u := float64(bootstrap.Mix64(in.cfg.Seed^site)>>11) / (1 << 53)
	return u < prob
}

// Per-class site salts. Distinct odd constants keep the per-class
// decision streams independent even at identical coordinates.
const (
	saltPanic     = 0x9E3779B97F4A7C15
	saltStraggler = 0xC2B2AE3D27D4EB4F
	saltCorrupt   = 0x165667B19E3779F9
	saltPrefetch  = 0x27D4EB2F165667C5
	saltReclass   = 0x85EBCA77C2B2AE63
	saltSegSeal   = 0xA0761D6478BD642F
	saltShardKill = 0xD6E8FEB86659FD93
	saltShardSlow = 0x2545F4914F6CDD1D
)

// siteHash folds a fault-site coordinate into one word. name
// disambiguates tables (or blocks) sharing numeric coordinates.
func siteHash(salt uint64, name string, a, b int) uint64 {
	h := salt
	for i := 0; i < len(name); i++ {
		h = bootstrap.Mix64(h ^ uint64(name[i]))
	}
	h = bootstrap.Mix64(h ^ uint64(a)<<1)
	return bootstrap.Mix64(h ^ uint64(b)<<1 ^ 0xB5)
}

// ShardFault reports the fault (if any) to inject into worker w's shard
// of the batch starting at global row index start of table. Repeated
// calls at the same coordinate give the same answer; the serial retry
// path never calls it, so a contained fault does not re-fire during the
// bit-identical redo.
func (in *Injector) ShardFault(table string, start, w int) Kind {
	if in == nil {
		return KindNone
	}
	switch {
	case in.decide(siteHash(saltPanic, table, start, w), in.cfg.PanicProb):
		in.counts[KindPanic].Add(1)
		return KindPanic
	case in.decide(siteHash(saltCorrupt, table, start, w), in.cfg.CorruptProb):
		in.counts[KindCorrupt].Add(1)
		return KindCorrupt
	case in.decide(siteHash(saltStraggler, table, start, w), in.cfg.StragglerProb):
		in.counts[KindStraggler].Add(1)
		return KindStraggler
	}
	return KindNone
}

// ReclassFault reports the fault (if any) to inject into worker w's
// share of block's uncertain-cache reclassification at batch. Only
// panic and straggler apply (reclassification reads cached rows, so
// there is nothing to corrupt without breaking replay determinism).
func (in *Injector) ReclassFault(block, batch, w int) Kind {
	if in == nil {
		return KindNone
	}
	switch {
	case in.decide(siteHash(saltPanic^saltReclass, "reclass", block*1024+batch, w), in.cfg.PanicProb):
		in.counts[KindPanic].Add(1)
		return KindPanic
	case in.decide(siteHash(saltStraggler^saltReclass, "reclass", block*1024+batch, w), in.cfg.StragglerProb):
		in.counts[KindStraggler].Add(1)
		return KindStraggler
	}
	return KindNone
}

// PrefetchDrop reports whether the prefetched weight buffer for
// (table, batch) should be invalidated before consumption.
func (in *Injector) PrefetchDrop(table string, batch int) bool {
	if in == nil {
		return false
	}
	if in.decide(siteHash(saltPrefetch, table, batch, 0), in.cfg.PrefetchDropProb) {
		in.counts[KindPrefetchDrop].Add(1)
		return true
	}
	return false
}

// shardSite packs a shard coordinate into the siteHash b slot. The
// incarnation advances on every respawn (and every checkpoint-restore
// epoch), so the kill decision for a redone slice is an independent
// draw from the one that killed its predecessor.
func shardSite(shard, incarnation int) int {
	return shard<<16 | (incarnation & 0xFFFF)
}

// ShardKill reports whether the shard engine (shard, incarnation)
// should die while stepping the mini-batch starting at global row index
// start of table. Deterministic and side-effect-free apart from the
// fire counter, like every other decision.
func (in *Injector) ShardKill(table string, start, shard, incarnation int) bool {
	if in == nil {
		return false
	}
	if in.decide(siteHash(saltShardKill, table, start, shardSite(shard, incarnation)), in.cfg.ShardKillProb) {
		in.counts[KindShardKill].Add(1)
		return true
	}
	return false
}

// ShardStraggler reports whether the shard engine (shard, incarnation)
// should sleep before stepping the mini-batch starting at start.
func (in *Injector) ShardStraggler(table string, start, shard, incarnation int) bool {
	if in == nil {
		return false
	}
	if in.decide(siteHash(saltShardSlow, table, start, shardSite(shard, incarnation)), in.cfg.ShardStragglerProb) {
		in.counts[KindShardStraggler].Add(1)
		return true
	}
	return false
}

// SegSealDrop reports whether the columnar segment cache of (table,
// batch) should be dropped before the batch feeds.
func (in *Injector) SegSealDrop(table string, batch int) bool {
	if in == nil {
		return false
	}
	if in.decide(siteHash(saltSegSeal, table, batch, 0), in.cfg.SegSealDropProb) {
		in.counts[KindSegSeal].Add(1)
		return true
	}
	return false
}

// Sleep performs an injected straggler delay.
func (in *Injector) Sleep() {
	if in == nil {
		return
	}
	time.Sleep(in.cfg.StragglerDelay)
}

// Counts returns how many faults of each kind have fired, indexed by
// Kind.
func (in *Injector) Counts() [numKinds]int64 {
	var out [numKinds]int64
	if in == nil {
		return out
	}
	for k := 0; k < numKinds; k++ {
		out[k] = in.counts[k].Load()
	}
	return out
}

// Fired reports the total number of injected faults.
func (in *Injector) Fired() int64 {
	var n int64
	for _, c := range in.Counts() {
		n += c
	}
	return n
}
