package plan

import (
	"strings"
	"testing"

	"fluodb/internal/expr"
	"fluodb/internal/storage"
	"fluodb/internal/types"
)

func testCatalog() *storage.Catalog {
	cat := storage.NewCatalog()
	cat.Put(storage.NewTable("sessions", types.NewSchema(
		"session_id", types.KindInt,
		"buffer_time", types.KindFloat,
		"play_time", types.KindFloat,
		"country", types.KindString,
	)))
	cat.Put(storage.NewTable("lineitem", types.NewSchema(
		"orderkey", types.KindInt,
		"partkey", types.KindInt,
		"suppkey", types.KindInt,
		"quantity", types.KindFloat,
		"extendedprice", types.KindFloat,
	)))
	cat.Put(storage.NewTable("parts", types.NewSchema(
		"partkey", types.KindInt,
		"brand", types.KindString,
	)))
	return cat
}

func compile(t *testing.T, sql string) *Query {
	t.Helper()
	q, err := Compile(sql, testCatalog())
	if err != nil {
		t.Fatalf("Compile(%s): %v", sql, err)
	}
	return q
}

func compileErr(t *testing.T, sql, wantSubstr string) {
	t.Helper()
	_, err := Compile(sql, testCatalog())
	if err == nil {
		t.Fatalf("Compile(%s) should fail", sql)
	}
	if !strings.Contains(err.Error(), wantSubstr) {
		t.Errorf("Compile(%s) error = %q, want substring %q", sql, err, wantSubstr)
	}
}

const sbiSQL = `SELECT AVG(play_time) FROM sessions
	WHERE buffer_time > (SELECT AVG(buffer_time) FROM sessions)`

func TestCompileSBI(t *testing.T) {
	q := compile(t, sbiSQL)
	if len(q.Blocks) != 2 {
		t.Fatalf("blocks = %d, want 2", len(q.Blocks))
	}
	inner, root := q.Blocks[0], q.Blocks[1]
	if q.Root != root || root.Kind != RootBlock {
		t.Fatal("root must be last")
	}
	if inner.Kind != ScalarBlock || inner.ParamIdx != 0 {
		t.Fatalf("inner = %v paramIdx=%d", inner.Kind, inner.ParamIdx)
	}
	if len(q.ScalarBlocks) != 1 || q.ScalarBlocks[0] != inner {
		t.Fatal("scalar param table")
	}
	if len(inner.Aggs) != 1 || inner.Aggs[0].Name != "AVG" {
		t.Fatalf("inner aggs = %+v", inner.Aggs)
	}
	if !expr.HasParams(root.Where) {
		t.Error("root WHERE must reference the scalar param")
	}
	if len(root.Aggs) != 1 || root.Aggs[0].Name != "AVG" {
		t.Fatalf("root aggs = %+v", root.Aggs)
	}
	if len(root.Deps) != 1 || root.Deps[0] != inner.ID {
		t.Errorf("deps = %v", root.Deps)
	}
	if root.UncertainPredicates() != 1 {
		t.Errorf("uncertain predicates = %d", root.UncertainPredicates())
	}
}

const q17SQL = `SELECT SUM(extendedprice) / 7.0 AS avg_yearly FROM lineitem l
	WHERE quantity < (SELECT 0.2 * AVG(quantity) FROM lineitem i WHERE i.partkey = l.partkey)`

func TestCompileQ17Correlated(t *testing.T) {
	q := compile(t, q17SQL)
	if len(q.Blocks) != 2 {
		t.Fatalf("blocks = %d", len(q.Blocks))
	}
	inner := q.Blocks[0]
	if inner.Kind != GroupScalarBlock {
		t.Fatalf("inner kind = %v", inner.Kind)
	}
	if len(q.GroupBlocks) != 1 {
		t.Fatal("group param table")
	}
	if len(inner.GroupBy) != 1 {
		t.Fatalf("inner group-by = %d", len(inner.GroupBy))
	}
	// the correlation conjunct must have been removed from the inner WHERE
	if inner.Where != nil {
		t.Errorf("inner where should be empty, got %s", inner.Where)
	}
	// root WHERE contains a GroupParam keyed by l.partkey
	var gp *expr.GroupParam
	expr.Walk(q.Root.Where, func(e expr.Expr) bool {
		if g, ok := e.(*expr.GroupParam); ok {
			gp = g
		}
		return true
	})
	if gp == nil {
		t.Fatal("no GroupParam in root WHERE")
	}
	if len(gp.Keys) != 1 {
		t.Errorf("group param keys = %d", len(gp.Keys))
	}
}

func TestCompileCompositeCorrelationKeys(t *testing.T) {
	q := compile(t, `SELECT COUNT(*) FROM lineitem l
		WHERE quantity > (SELECT 0.5 * AVG(quantity) FROM lineitem i
			WHERE i.partkey = l.partkey AND i.suppkey = l.suppkey)`)
	inner := q.Blocks[0]
	if inner.Kind != GroupScalarBlock || len(inner.GroupBy) != 2 {
		t.Fatalf("inner: kind=%v groups=%d", inner.Kind, len(inner.GroupBy))
	}
	var gp *expr.GroupParam
	expr.Walk(q.Root.Where, func(e expr.Expr) bool {
		if g, ok := e.(*expr.GroupParam); ok {
			gp = g
		}
		return true
	})
	if gp == nil || len(gp.Keys) != 2 {
		t.Fatal("composite keys not preserved")
	}
}

const q11SQL = `SELECT partkey, SUM(extendedprice) AS value FROM lineitem
	GROUP BY partkey
	HAVING SUM(extendedprice) > (SELECT SUM(extendedprice) * 0.0001 FROM lineitem)`

func TestCompileQ11UncertainHaving(t *testing.T) {
	q := compile(t, q11SQL)
	root := q.Root
	if len(root.GroupBy) != 1 || len(root.Aggs) != 1 {
		t.Fatalf("root shape: groups=%d aggs=%d", len(root.GroupBy), len(root.Aggs))
	}
	if root.Having == nil || !expr.HasParams(root.Having) {
		t.Fatal("having must carry the scalar param")
	}
	// aggregate dedup: SUM(extendedprice) appears twice but one spec
	if len(root.Aggs) != 1 {
		t.Errorf("aggs deduped = %d", len(root.Aggs))
	}
	if root.OutName[1] != "value" {
		t.Errorf("out names = %v", root.OutName)
	}
}

const q18SQL = `SELECT orderkey, SUM(quantity) FROM lineitem
	WHERE orderkey IN (SELECT orderkey FROM lineitem GROUP BY orderkey HAVING SUM(quantity) > 300)
	GROUP BY orderkey`

func TestCompileQ18SetBlock(t *testing.T) {
	q := compile(t, q18SQL)
	if len(q.SetBlocks) != 1 {
		t.Fatalf("set blocks = %d", len(q.SetBlocks))
	}
	inner := q.SetBlocks[0]
	if inner.Kind != SetBlock || len(inner.GroupBy) != 1 || inner.Having == nil {
		t.Fatalf("inner: %v groups=%d having=%v", inner.Kind, len(inner.GroupBy), inner.Having)
	}
	var sp *expr.SetParam
	expr.Walk(q.Root.Where, func(e expr.Expr) bool {
		if s, ok := e.(*expr.SetParam); ok {
			sp = s
		}
		return true
	})
	if sp == nil {
		t.Fatal("no SetParam in root WHERE")
	}
}

func TestCompileInSubqueryWithoutGroupBy(t *testing.T) {
	q := compile(t, `SELECT COUNT(*) FROM lineitem WHERE partkey IN (SELECT partkey FROM parts WHERE brand = 'B1')`)
	inner := q.SetBlocks[0]
	if len(inner.GroupBy) != 1 {
		t.Fatal("IN subquery should group by its key")
	}
	if inner.Having != nil {
		t.Fatal("no having expected")
	}
}

func TestCompileNestedTwoLevels(t *testing.T) {
	// subquery inside a subquery: C2-style mean+stddev threshold
	q := compile(t, `SELECT AVG(play_time) FROM sessions
		WHERE buffer_time > (SELECT AVG(buffer_time) + STDDEV(buffer_time) FROM sessions
			WHERE play_time > (SELECT AVG(play_time) FROM sessions))`)
	if len(q.Blocks) != 3 {
		t.Fatalf("blocks = %d", len(q.Blocks))
	}
	// dependency order: innermost first
	if q.Blocks[0].Kind != ScalarBlock || q.Blocks[1].Kind != ScalarBlock {
		t.Error("both inner blocks scalar")
	}
	mid := q.Blocks[1]
	if len(mid.Deps) != 1 || mid.Deps[0] != q.Blocks[0].ID {
		t.Errorf("mid deps = %v", mid.Deps)
	}
	if len(mid.Aggs) != 2 {
		t.Errorf("mid aggs = %d", len(mid.Aggs))
	}
}

func TestCompileJoin(t *testing.T) {
	q := compile(t, `SELECT brand, AVG(quantity) FROM lineitem l JOIN parts p ON l.partkey = p.partkey GROUP BY brand`)
	root := q.Root
	if len(root.Dims) != 1 || root.Dims[0].Table != "parts" {
		t.Fatalf("dims = %+v", root.Dims)
	}
	if len(root.Input.Schema) != 7 {
		t.Errorf("joined schema width = %d", len(root.Input.Schema))
	}
	// swapped ON sides also work
	q2 := compile(t, `SELECT COUNT(*) FROM lineitem l JOIN parts p ON p.partkey = l.partkey`)
	if len(q2.Root.Dims) != 1 {
		t.Error("swapped join sides")
	}
}

func TestCompileGroupByOrdinalAndAlias(t *testing.T) {
	q := compile(t, `SELECT FLOOR(play_time / 60) AS minute, COUNT(*) FROM sessions GROUP BY 1`)
	if len(q.Root.GroupBy) != 1 {
		t.Fatal("ordinal group-by")
	}
	q2 := compile(t, `SELECT FLOOR(play_time / 60) AS minute, COUNT(*) FROM sessions GROUP BY minute`)
	if len(q2.Root.GroupBy) != 1 {
		t.Fatal("alias group-by")
	}
	// select item referencing group expr binds to the group slot
	col, ok := q2.Root.Select[0].(*expr.Col)
	if !ok || col.Idx != 0 {
		t.Fatalf("select[0] = %#v", q2.Root.Select[0])
	}
}

func TestCompileOrderByForms(t *testing.T) {
	q := compile(t, `SELECT country, COUNT(*) AS c FROM sessions GROUP BY country ORDER BY c DESC, 1 LIMIT 5`)
	if len(q.Root.OrderBy) != 2 {
		t.Fatal("order terms")
	}
	if q.Root.OrderBy[0].Col != 1 || !q.Root.OrderBy[0].Desc {
		t.Errorf("order[0] = %+v", q.Root.OrderBy[0])
	}
	if q.Root.OrderBy[1].Col != 0 || q.Root.OrderBy[1].Desc {
		t.Errorf("order[1] = %+v", q.Root.OrderBy[1])
	}
	if q.Root.Limit != 5 {
		t.Errorf("limit = %d", q.Root.Limit)
	}
}

func TestCompilePlainProjection(t *testing.T) {
	q := compile(t, `SELECT session_id, play_time * 2 FROM sessions WHERE country = 'US'`)
	root := q.Root
	if root.Aggregating {
		t.Fatal("plain block misclassified as aggregating")
	}
	if len(root.Select) != 2 {
		t.Fatal("select width")
	}
	q2 := compile(t, `SELECT * FROM sessions`)
	if len(q2.Root.Select) != 4 {
		t.Errorf("star width = %d", len(q2.Root.Select))
	}
}

func TestCompileCountDistinct(t *testing.T) {
	q := compile(t, `SELECT COUNT(DISTINCT country) FROM sessions`)
	if !q.Root.Aggs[0].Distinct {
		t.Error("distinct flag lost")
	}
}

func TestCompileQuantileParams(t *testing.T) {
	q := compile(t, `SELECT QUANTILE(play_time, 0.9) FROM sessions`)
	if len(q.Root.Aggs[0].Params) != 1 {
		t.Fatal("quantile param")
	}
	compileErr(t, `SELECT QUANTILE(play_time, buffer_time) FROM sessions`, "constants")
	compileErr(t, `SELECT QUANTILE(play_time, 3.0) FROM sessions`, "fraction")
}

func TestCompileExistsRewrite(t *testing.T) {
	q := compile(t, `SELECT COUNT(*) FROM sessions WHERE EXISTS (SELECT 1 FROM parts WHERE brand = 'B1')`)
	if len(q.ScalarBlocks) != 1 {
		t.Fatal("EXISTS should become a scalar COUNT block")
	}
	if q.ScalarBlocks[0].Aggs[0].Name != "COUNT" {
		t.Error("rewritten agg")
	}
}

func TestCompileErrors(t *testing.T) {
	compileErr(t, `SELECT x FROM nope`, "unknown table")
	compileErr(t, `SELECT nope FROM sessions`, "unknown column")
	compileErr(t, `SELECT partkey FROM lineitem l JOIN parts p ON l.partkey = p.partkey`, "ambiguous")
	compileErr(t, `SELECT play_time FROM sessions GROUP BY country`, "GROUP BY")
	compileErr(t, `SELECT AVG(play_time) FROM sessions WHERE AVG(play_time) > 1`, "not allowed")
	// HAVING without GROUP BY implies a single global group; selecting a
	// bare column is then the error.
	compileErr(t, `SELECT country FROM sessions HAVING country = 'x'`, "must appear in GROUP BY")
	compileErr(t, `SELECT SUM(play_time - (SELECT AVG(play_time) FROM sessions)) FROM sessions`,
		"aggregate argument")
	compileErr(t, `SELECT COUNT(*) FROM sessions WHERE session_id IN
		(SELECT session_id FROM sessions s2 WHERE s2.play_time = sessions.play_time)`, "correlated")
	compileErr(t, `SELECT COUNT(*) FROM sessions WHERE buffer_time >
		(SELECT AVG(buffer_time) FROM sessions s2 WHERE s2.play_time > sessions.play_time)`,
		"correlated reference")
	compileErr(t, `SELECT COUNT(*) FROM sessions, parts`, "comma joins are not supported")
	compileErr(t, `SELECT (SELECT play_time FROM sessions) FROM sessions`, "GROUP BY")
	compileErr(t, `SELECT AVG(play_time) FROM sessions GROUP BY 7`, "ordinal 7 out of range")
	compileErr(t, `SELECT AVG(play_time) FROM sessions ORDER BY country`, "does not match")
	compileErr(t, `SELECT * , COUNT(*) FROM sessions`, "SELECT *")
	compileErr(t, `SELECT AVG(play_time) AS a FROM sessions GROUP BY a`, "not allowed")
}

func TestCompileSubqueryOrderLimitRejected(t *testing.T) {
	compileErr(t, `SELECT COUNT(*) FROM sessions WHERE buffer_time >
		(SELECT AVG(buffer_time) FROM sessions ORDER BY 1)`, "ORDER BY/LIMIT inside subqueries")
}

func TestExplainMentionsBlocksAndParams(t *testing.T) {
	q := compile(t, sbiSQL)
	out := q.Explain()
	if !strings.Contains(out, "block 0 (scalar)") || !strings.Contains(out, "block 1 (root)") {
		t.Errorf("explain = %s", out)
	}
	if !strings.Contains(out, "-> $0") {
		t.Errorf("explain should show param binding: %s", out)
	}
}

func TestBlockByID(t *testing.T) {
	q := compile(t, sbiSQL)
	if q.BlockByID(q.Root.ID) != q.Root {
		t.Error("BlockByID root")
	}
	if q.BlockByID(999) != nil {
		t.Error("BlockByID missing")
	}
}

func TestOutSchemaAndKinds(t *testing.T) {
	q := compile(t, `SELECT country, COUNT(*) AS c, MIN(session_id) AS m FROM sessions GROUP BY country`)
	s := q.Root.OutSchema()
	if s[0].Type != types.KindString {
		t.Errorf("country kind = %v", s[0].Type)
	}
	if s[1].Type != types.KindFloat {
		t.Errorf("count kind = %v", s[1].Type)
	}
	if s[2].Type != types.KindInt {
		t.Errorf("min kind = %v (MIN keeps arg kind)", s[2].Type)
	}
}

func TestGroupByStarOrdinalRejected(t *testing.T) {
	compileErr(t, `SELECT *, 1 FROM sessions GROUP BY 1`, "GROUP BY ordinal cannot reference *")
}

func TestHavingAliasReference(t *testing.T) {
	q := compile(t, `SELECT country, COUNT(*) AS c FROM sessions GROUP BY country HAVING c > 10`)
	if q.Root.Having == nil {
		t.Fatal("having")
	}
}
