package plan

import (
	"fmt"
	"strings"

	"fluodb/internal/agg"
	"fluodb/internal/expr"
	"fluodb/internal/sqlparser"
	"fluodb/internal/types"
)

// errNotFound / errAmbiguous classify column resolution failures.
type resolveErr struct {
	ambiguous bool
	msg       string
}

func (e *resolveErr) Error() string { return e.msg }

// resolve finds the column (tbl optional qualifier) in the input's
// concatenated schema.
func (in *Input) resolve(tbl, col string) (int, types.Kind, error) {
	found := -1
	var kind types.Kind
	for i, c := range in.Schema {
		if !strings.EqualFold(c.Name, col) {
			continue
		}
		if tbl != "" && !strings.EqualFold(in.Quals[i], tbl) {
			continue
		}
		if found >= 0 {
			return 0, 0, &resolveErr{ambiguous: true,
				msg: fmt.Sprintf("plan: ambiguous column %q", col)}
		}
		found = i
		kind = c.Type
	}
	if found < 0 {
		name := col
		if tbl != "" {
			name = tbl + "." + col
		}
		return 0, 0, &resolveErr{msg: fmt.Sprintf("plan: unknown column %q", name)}
	}
	return found, kind, nil
}

// scope chains input schemas for correlation detection.
type scope struct {
	in    *Input
	outer *scope
}

// binder binds AST expressions over a block's input schema.
type binder struct {
	p   *Planner
	sc  *scope
	blk *Block // block being built; receives Deps of planned subqueries
}

// bindExpr binds an AST expression over the input schema. Subqueries are
// planned into their own blocks and replaced by placeholder parameters.
// Aggregate calls are rejected — they are only legal through the
// post-aggregate binder.
func (b *binder) bindExpr(ast sqlparser.Expr) (expr.Expr, error) {
	switch x := ast.(type) {
	case *sqlparser.Literal:
		return &expr.Const{V: x.Value}, nil
	case *sqlparser.ColumnRef:
		return b.resolveCol(x)
	case *sqlparser.Binary:
		l, err := b.bindExpr(x.L)
		if err != nil {
			return nil, err
		}
		r, err := b.bindExpr(x.R)
		if err != nil {
			return nil, err
		}
		return &expr.Binary{Op: x.Op, L: l, R: r}, nil
	case *sqlparser.Unary:
		inner, err := b.bindExpr(x.X)
		if err != nil {
			return nil, err
		}
		if x.Op == "NOT" {
			return &expr.Not{X: inner}, nil
		}
		return &expr.Neg{X: inner}, nil
	case *sqlparser.FuncCall:
		if agg.IsAggregate(x.Name) {
			return nil, fmt.Errorf("plan: aggregate %s not allowed in this clause", x.Name)
		}
		return b.bindCall(x, b.bindExpr)
	case *sqlparser.Subquery:
		return b.bindScalarSubquery(x.Select)
	case *sqlparser.InExpr:
		if x.Sub != nil {
			lhs, err := b.bindExpr(x.X)
			if err != nil {
				return nil, err
			}
			return b.bindInSubquery(x, lhs)
		}
		lhs, err := b.bindExpr(x.X)
		if err != nil {
			return nil, err
		}
		list := make([]expr.Expr, len(x.List))
		for i, e := range x.List {
			le, err := b.bindExpr(e)
			if err != nil {
				return nil, err
			}
			list[i] = le
		}
		return &expr.InList{X: lhs, List: list, Negated: x.Negated}, nil
	case *sqlparser.ExistsExpr:
		return b.bindExists(x)
	case *sqlparser.Between:
		return b.bindBetween(x, b.bindExpr)
	case *sqlparser.IsNull:
		inner, err := b.bindExpr(x.X)
		if err != nil {
			return nil, err
		}
		return &expr.IsNull{X: inner, Negated: x.Negated}, nil
	case *sqlparser.Case:
		return b.bindCase(x, b.bindExpr)
	default:
		return nil, fmt.Errorf("plan: unsupported expression %T", ast)
	}
}

// bindCall binds a scalar function call, recursing through `rec` so the
// same code serves both the input-scope and post-aggregate binders.
func (b *binder) bindCall(x *sqlparser.FuncCall, rec func(sqlparser.Expr) (expr.Expr, error)) (expr.Expr, error) {
	fn, ok := expr.LookupFunc(x.Name)
	if !ok {
		return nil, fmt.Errorf("plan: unknown function %s", x.Name)
	}
	if x.Star {
		return nil, fmt.Errorf("plan: %s(*) is not a scalar call", x.Name)
	}
	args := make([]expr.Expr, len(x.Args))
	for i, a := range x.Args {
		e, err := rec(a)
		if err != nil {
			return nil, err
		}
		args[i] = e
	}
	return expr.NewCall(fn, args)
}

// bindBetween rewrites BETWEEN into two comparisons.
func (b *binder) bindBetween(x *sqlparser.Between, rec func(sqlparser.Expr) (expr.Expr, error)) (expr.Expr, error) {
	xe, err := rec(x.X)
	if err != nil {
		return nil, err
	}
	lo, err := rec(x.Lo)
	if err != nil {
		return nil, err
	}
	hi, err := rec(x.Hi)
	if err != nil {
		return nil, err
	}
	var out expr.Expr = &expr.Binary{
		Op: sqlparser.OpAnd,
		L:  &expr.Binary{Op: sqlparser.OpGe, L: xe, R: lo},
		R:  &expr.Binary{Op: sqlparser.OpLe, L: xe, R: hi},
	}
	if x.Negated {
		out = &expr.Not{X: out}
	}
	return out, nil
}

// bindCase binds both CASE forms (the operand form becomes equality
// comparisons).
func (b *binder) bindCase(x *sqlparser.Case, rec func(sqlparser.Expr) (expr.Expr, error)) (expr.Expr, error) {
	var operand expr.Expr
	if x.Operand != nil {
		var err error
		operand, err = rec(x.Operand)
		if err != nil {
			return nil, err
		}
	}
	out := &expr.Case{}
	for _, w := range x.Whens {
		cond, err := rec(w.Cond)
		if err != nil {
			return nil, err
		}
		if operand != nil {
			cond = &expr.Binary{Op: sqlparser.OpEq, L: operand, R: cond}
		}
		res, err := rec(w.Result)
		if err != nil {
			return nil, err
		}
		out.Whens = append(out.Whens, struct{ Cond, Result expr.Expr }{cond, res})
	}
	if x.Else != nil {
		e, err := rec(x.Else)
		if err != nil {
			return nil, err
		}
		out.Else = e
	}
	return out, nil
}

// resolveCol resolves a column reference at depth 0, producing targeted
// errors for correlated references found in outer scopes.
func (b *binder) resolveCol(ref *sqlparser.ColumnRef) (expr.Expr, error) {
	idx, kind, err := b.sc.in.resolve(ref.Table, ref.Name)
	if err == nil {
		return &expr.Col{Idx: idx, Name: ref.SQL(), Typ: kind}, nil
	}
	if re, ok := err.(*resolveErr); ok && re.ambiguous {
		return nil, err
	}
	for s := b.sc.outer; s != nil; s = s.outer {
		if _, _, e := s.in.resolve(ref.Table, ref.Name); e == nil {
			return nil, fmt.Errorf(
				"plan: correlated reference %s: correlation is only supported as "+
					"equality conjuncts in the subquery's WHERE clause", ref.SQL())
		}
	}
	return nil, err
}

// bindExists rewrites uncorrelated EXISTS(sub) into COUNT(*)-subquery > 0.
func (b *binder) bindExists(x *sqlparser.ExistsExpr) (expr.Expr, error) {
	if len(x.Sub.GroupBy) > 0 || x.Sub.Having != nil {
		return nil, fmt.Errorf("plan: EXISTS over grouped subqueries is not supported")
	}
	counted := &sqlparser.SelectStmt{
		Items: []sqlparser.SelectItem{{Expr: &sqlparser.FuncCall{Name: "COUNT", Star: true}}},
		From:  x.Sub.From,
		Where: x.Sub.Where,
		Limit: -1,
	}
	param, err := b.bindScalarSubquery(counted)
	if err != nil {
		return nil, err
	}
	var out expr.Expr = &expr.Binary{
		Op: sqlparser.OpGt, L: param, R: &expr.Const{V: types.NewFloat(0)},
	}
	if x.Negated {
		out = &expr.Not{X: out}
	}
	return out, nil
}

// bindScalarSubquery plans a scalar subquery block and returns its
// placeholder (ScalarParam for uncorrelated, GroupParam for
// equality-correlated subqueries).
func (b *binder) bindScalarSubquery(sel *sqlparser.SelectStmt) (expr.Expr, error) {
	blk, corrOuter, err := b.p.buildBlock(sel, b.sc, ScalarBlock)
	if err != nil {
		return nil, err
	}
	if len(blk.Select) != 1 {
		return nil, fmt.Errorf("plan: scalar subquery must select exactly one column: %s", blk.Label)
	}
	desc := shortLabel(blk.Label)
	b.blk.Deps = append(b.blk.Deps, blk.ID)
	if blk.Kind == GroupScalarBlock {
		keys := make([]expr.Expr, len(corrOuter))
		for i, a := range corrOuter {
			k, err := b.bindExpr(a)
			if err != nil {
				return nil, fmt.Errorf("plan: binding correlation key %s: %w", a.SQL(), err)
			}
			keys[i] = k
		}
		blk.ParamIdx = len(b.p.q.GroupBlocks)
		b.p.q.GroupBlocks = append(b.p.q.GroupBlocks, blk)
		b.p.q.Blocks = append(b.p.q.Blocks, blk)
		return &expr.GroupParam{
			Idx: blk.ParamIdx, Keys: keys, Typ: blk.Select[0].Kind(), Desc: desc,
		}, nil
	}
	blk.ParamIdx = len(b.p.q.ScalarBlocks)
	b.p.q.ScalarBlocks = append(b.p.q.ScalarBlocks, blk)
	b.p.q.Blocks = append(b.p.q.Blocks, blk)
	return &expr.ScalarParam{Idx: blk.ParamIdx, Typ: blk.Select[0].Kind(), Desc: desc}, nil
}

// bindInSubquery plans x IN (SELECT ...) as a SetBlock membership param.
func (b *binder) bindInSubquery(in *sqlparser.InExpr, lhs expr.Expr) (expr.Expr, error) {
	blk, corrOuter, err := b.p.buildBlock(in.Sub, b.sc, SetBlock)
	if err != nil {
		return nil, err
	}
	if len(corrOuter) > 0 || blk.Kind == GroupScalarBlock {
		return nil, fmt.Errorf("plan: correlated IN subqueries are not supported: %s", blk.Label)
	}
	b.blk.Deps = append(b.blk.Deps, blk.ID)
	blk.ParamIdx = len(b.p.q.SetBlocks)
	b.p.q.SetBlocks = append(b.p.q.SetBlocks, blk)
	b.p.q.Blocks = append(b.p.q.Blocks, blk)
	return &expr.SetParam{
		Idx: blk.ParamIdx, X: lhs, Negated: in.Negated, Desc: shortLabel(blk.Label),
	}, nil
}

// shortLabel compresses a subquery's SQL for display.
func shortLabel(sql string) string {
	if len(sql) > 48 {
		return sql[:45] + "..."
	}
	return sql
}

// astResolvable reports whether every column reference in the AST (not
// descending into nested subqueries) resolves within the given input.
func astResolvable(ast sqlparser.Expr, in *Input) bool {
	ok := true
	var walk func(sqlparser.Expr)
	walk = func(e sqlparser.Expr) {
		if !ok || e == nil {
			return
		}
		switch x := e.(type) {
		case *sqlparser.ColumnRef:
			if _, _, err := in.resolve(x.Table, x.Name); err != nil {
				ok = false
			}
		case *sqlparser.Binary:
			walk(x.L)
			walk(x.R)
		case *sqlparser.Unary:
			walk(x.X)
		case *sqlparser.FuncCall:
			for _, a := range x.Args {
				walk(a)
			}
		case *sqlparser.Between:
			walk(x.X)
			walk(x.Lo)
			walk(x.Hi)
		case *sqlparser.IsNull:
			walk(x.X)
		case *sqlparser.InExpr:
			walk(x.X)
			for _, a := range x.List {
				walk(a)
			}
		case *sqlparser.Case:
			walk(x.Operand)
			for _, w := range x.Whens {
				walk(w.Cond)
				walk(w.Result)
			}
			walk(x.Else)
		case *sqlparser.Subquery, *sqlparser.ExistsExpr:
			// opaque: nested subqueries resolve in their own scope
		case *sqlparser.Literal:
		}
	}
	walk(ast)
	return ok
}

// splitASTConjuncts flattens top-level ANDs of a parsed expression.
func splitASTConjuncts(e sqlparser.Expr) []sqlparser.Expr {
	if e == nil {
		return nil
	}
	if b, ok := e.(*sqlparser.Binary); ok && b.Op == sqlparser.OpAnd {
		return append(splitASTConjuncts(b.L), splitASTConjuncts(b.R)...)
	}
	return []sqlparser.Expr{e}
}

// andAll combines bound conjuncts back into a single predicate.
func andAll(conjs []expr.Expr) expr.Expr {
	var out expr.Expr
	for _, c := range conjs {
		if out == nil {
			out = c
		} else {
			out = &expr.Binary{Op: sqlparser.OpAnd, L: out, R: c}
		}
	}
	return out
}
