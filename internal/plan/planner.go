package plan

import (
	"fmt"
	"strings"

	"fluodb/internal/agg"
	"fluodb/internal/expr"
	"fluodb/internal/sqlparser"
	"fluodb/internal/storage"
	"fluodb/internal/types"
)

// Planner compiles parsed SQL into a block DAG against a catalog.
type Planner struct {
	cat    *storage.Catalog
	q      *Query
	nextID int
}

// Compile parses and plans a SQL query.
func Compile(sql string, cat *storage.Catalog) (*Query, error) {
	stmt, err := sqlparser.Parse(sql)
	if err != nil {
		return nil, err
	}
	return CompileStmt(stmt, sql, cat)
}

// CompileStmt plans an already-parsed statement.
func CompileStmt(stmt *sqlparser.SelectStmt, sql string, cat *storage.Catalog) (*Query, error) {
	p := &Planner{cat: cat, q: &Query{SQL: sql}}
	root, _, err := p.buildBlock(stmt, nil, RootBlock)
	if err != nil {
		return nil, err
	}
	p.q.Blocks = append(p.q.Blocks, root)
	p.q.Root = root
	// Renumber block IDs to match dependency order (children first), so
	// EXPLAIN output and error messages read top-down.
	remap := make(map[int]int, len(p.q.Blocks))
	for i, b := range p.q.Blocks {
		remap[b.ID] = i
	}
	for _, b := range p.q.Blocks {
		b.ID = remap[b.ID]
		for i, d := range b.Deps {
			b.Deps[i] = remap[d]
		}
	}
	return p.q, nil
}

// buildInput resolves the FROM clause into a streamed fact table plus
// dimension hash joins (left-deep).
func (p *Planner) buildInput(from sqlparser.TableRef) (Input, []DimJoin, error) {
	if from == nil {
		return Input{}, nil, fmt.Errorf("plan: a FROM clause is required")
	}
	switch t := from.(type) {
	case *sqlparser.BaseTable:
		tab, ok := p.cat.Get(t.Name)
		if !ok {
			return Input{}, nil, fmt.Errorf("plan: unknown table %q", t.Name)
		}
		schema := tab.Schema()
		in := Input{
			Fact:      tab.Name(),
			FactAlias: t.Alias,
			Schema:    append(types.Schema(nil), schema...),
			Quals:     make([]string, len(schema)),
		}
		for i := range in.Quals {
			in.Quals[i] = t.Alias
		}
		return in, nil, nil
	case *sqlparser.Join:
		in, dims, err := p.buildInput(t.Left)
		if err != nil {
			return Input{}, nil, err
		}
		right, ok := t.Right.(*sqlparser.BaseTable)
		if !ok {
			return Input{}, nil, fmt.Errorf("plan: join right side must be a base table")
		}
		dimTab, ok2 := p.cat.Get(right.Name)
		if !ok2 {
			return Input{}, nil, fmt.Errorf("plan: unknown table %q", right.Name)
		}
		eq, ok := t.On.(*sqlparser.Binary)
		if !ok || eq.Op != sqlparser.OpEq {
			return Input{}, nil, fmt.Errorf(
				"plan: join conditions must be a single equality (got %s); "+
					"comma joins are not supported", t.On.SQL())
		}
		dimSchema := dimTab.Schema()
		dimInput := Input{
			Fact: dimTab.Name(), FactAlias: right.Alias,
			Schema: append(types.Schema(nil), dimSchema...),
			Quals:  make([]string, len(dimSchema)),
		}
		for i := range dimInput.Quals {
			dimInput.Quals[i] = right.Alias
		}
		// Classify the equality sides: one over the accumulated input,
		// one over the dimension table.
		leftAST, rightAST := eq.L, eq.R
		if !astResolvable(leftAST, &in) || !astResolvable(rightAST, &dimInput) {
			leftAST, rightAST = rightAST, leftAST
		}
		if !astResolvable(leftAST, &in) || !astResolvable(rightAST, &dimInput) {
			return Input{}, nil, fmt.Errorf(
				"plan: join condition %s must relate the joined table to the tables before it",
				t.On.SQL())
		}
		lb := &binder{p: p, sc: &scope{in: &in}, blk: &Block{}}
		leftKey, err := lb.bindExpr(leftAST)
		if err != nil {
			return Input{}, nil, err
		}
		rb := &binder{p: p, sc: &scope{in: &dimInput}, blk: &Block{}}
		rightKey, err := rb.bindExpr(rightAST)
		if err != nil {
			return Input{}, nil, err
		}
		dims = append(dims, DimJoin{
			Table: dimTab.Name(), Alias: right.Alias, Schema: dimInput.Schema,
			LeftKey: leftKey, RightKey: rightKey, Left: t.Type == sqlparser.LeftJoin,
		})
		in.Schema = append(in.Schema, dimInput.Schema...)
		in.Quals = append(in.Quals, dimInput.Quals...)
		return in, dims, nil
	default:
		return Input{}, nil, fmt.Errorf("plan: unsupported FROM clause %T", from)
	}
}

// astHasAggregate reports whether the AST contains an aggregate call
// outside nested subqueries.
func astHasAggregate(ast sqlparser.Expr) bool {
	found := false
	var walk func(sqlparser.Expr)
	walk = func(e sqlparser.Expr) {
		if found || e == nil {
			return
		}
		switch x := e.(type) {
		case *sqlparser.FuncCall:
			if agg.IsAggregate(x.Name) {
				found = true
				return
			}
			for _, a := range x.Args {
				walk(a)
			}
		case *sqlparser.Binary:
			walk(x.L)
			walk(x.R)
		case *sqlparser.Unary:
			walk(x.X)
		case *sqlparser.Between:
			walk(x.X)
			walk(x.Lo)
			walk(x.Hi)
		case *sqlparser.IsNull:
			walk(x.X)
		case *sqlparser.InExpr:
			walk(x.X)
			for _, a := range x.List {
				walk(a)
			}
		case *sqlparser.Case:
			walk(x.Operand)
			for _, w := range x.Whens {
				walk(w.Cond)
				walk(w.Result)
			}
			walk(x.Else)
		}
	}
	walk(ast)
	return found
}

// buildBlock compiles one SELECT into a lineage block. For subquery
// blocks (outer != nil) it detects equality correlation and returns the
// outer-side key ASTs for the parent binder to bind.
func (p *Planner) buildBlock(stmt *sqlparser.SelectStmt, outer *scope, kind BlockKind) (*Block, []sqlparser.Expr, error) {
	blk := &Block{
		ID: p.nextID, Kind: kind, ParamIdx: -1, Limit: -1,
		Label: stmt.SQL(),
	}
	p.nextID++

	input, dims, err := p.buildInput(stmt.From)
	if err != nil {
		return nil, nil, err
	}
	blk.Input = input
	blk.Dims = dims
	sc := &scope{in: &blk.Input, outer: outer}
	b := &binder{p: p, sc: sc, blk: blk}

	// --- correlation pre-pass over WHERE conjuncts ---
	var plainConj []sqlparser.Expr
	var corrInner, corrOuter []sqlparser.Expr
	for _, conj := range splitASTConjuncts(stmt.Where) {
		if kind != RootBlock && outer != nil {
			if bin, ok := conj.(*sqlparser.Binary); ok && bin.Op == sqlparser.OpEq {
				lIn := astResolvable(bin.L, sc.in)
				rIn := astResolvable(bin.R, sc.in)
				lOut := astResolvable(bin.L, outer.in)
				rOut := astResolvable(bin.R, outer.in)
				switch {
				case lIn && !rIn && rOut:
					corrInner = append(corrInner, bin.L)
					corrOuter = append(corrOuter, bin.R)
					continue
				case rIn && !lIn && lOut:
					corrInner = append(corrInner, bin.R)
					corrOuter = append(corrOuter, bin.L)
					continue
				}
			}
		}
		plainConj = append(plainConj, conj)
	}
	if len(corrInner) > 0 {
		if kind == SetBlock {
			return nil, nil, fmt.Errorf("plan: correlated IN subqueries are not supported: %s", blk.Label)
		}
		if len(stmt.GroupBy) > 0 {
			return nil, nil, fmt.Errorf("plan: a correlated scalar subquery cannot also use GROUP BY: %s", blk.Label)
		}
		blk.Kind = GroupScalarBlock
	}

	// --- bind WHERE ---
	var whereConjs []expr.Expr
	for _, conj := range plainConj {
		e, err := b.bindExpr(conj)
		if err != nil {
			return nil, nil, err
		}
		whereConjs = append(whereConjs, e)
	}
	blk.Where = andAll(whereConjs)

	// --- group-by resolution ---
	groupASTs, err := resolveGroupASTs(stmt, blk.Kind, corrInner)
	if err != nil {
		return nil, nil, err
	}
	aggregating := len(groupASTs) > 0 || stmt.Having != nil || blk.Kind != RootBlock && blk.Kind != SetBlock
	for _, it := range stmt.Items {
		if !it.Star && astHasAggregate(it.Expr) {
			aggregating = true
		}
	}
	if blk.Kind == SetBlock && len(groupASTs) == 0 {
		// IN-subquery without GROUP BY: group by the selected key so
		// membership has set semantics.
		if len(stmt.Items) != 1 || stmt.Items[0].Star {
			return nil, nil, fmt.Errorf("plan: IN subquery must select exactly one column: %s", blk.Label)
		}
		groupASTs = []sqlparser.Expr{stmt.Items[0].Expr}
		aggregating = true
	}
	blk.Aggregating = aggregating

	if stmt.Distinct && aggregating {
		return nil, nil, fmt.Errorf("plan: SELECT DISTINCT with aggregation is not supported")
	}

	if !aggregating {
		blk.Distinct = stmt.Distinct
		if err := p.bindPlainSelect(stmt, b, blk); err != nil {
			return nil, nil, err
		}
	} else {
		if err := p.bindAggSelect(stmt, b, blk, groupASTs); err != nil {
			return nil, nil, err
		}
	}

	// --- ORDER BY / LIMIT (root only) ---
	if blk.Kind != RootBlock && (len(stmt.OrderBy) > 0 || stmt.Limit >= 0 || stmt.Offset > 0) {
		return nil, nil, fmt.Errorf("plan: ORDER BY/LIMIT inside subqueries is not supported")
	}
	if blk.Kind == RootBlock {
		if err := bindOrderBy(stmt, blk); err != nil {
			return nil, nil, err
		}
		blk.Limit = stmt.Limit
		blk.Offset = stmt.Offset
	}

	// --- kind-specific validation ---
	switch blk.Kind {
	case ScalarBlock:
		if !aggregating || len(blk.GroupBy) != 0 {
			return nil, nil, fmt.Errorf(
				"plan: scalar subquery must be a single-row aggregate query: %s", blk.Label)
		}
		if len(blk.Select) != 1 {
			return nil, nil, fmt.Errorf("plan: scalar subquery must select one column: %s", blk.Label)
		}
	case GroupScalarBlock:
		if len(blk.Select) != 1 {
			return nil, nil, fmt.Errorf("plan: correlated subquery must select one column: %s", blk.Label)
		}
	case SetBlock:
		if len(blk.Select) != 1 {
			return nil, nil, fmt.Errorf("plan: IN subquery must select one column: %s", blk.Label)
		}
		col, ok := blk.Select[0].(*expr.Col)
		if !ok || col.Idx != 0 || len(blk.GroupBy) != 1 {
			return nil, nil, fmt.Errorf(
				"plan: IN subquery must select its (single) grouping key: %s", blk.Label)
		}
	}

	if err := validateNoParamsInAggArgs(blk); err != nil {
		return nil, nil, err
	}
	if expr.HasParams(andAllGroup(blk.GroupBy)) {
		return nil, nil, fmt.Errorf("plan: GROUP BY cannot reference nested aggregates")
	}
	return blk, corrOuter, nil
}

func andAllGroup(groups []expr.Expr) expr.Expr { return andAll(groups) }

// resolveGroupASTs expands GROUP BY ordinals and aliases; for correlated
// scalar subqueries the correlation keys become the grouping keys.
func resolveGroupASTs(stmt *sqlparser.SelectStmt, kind BlockKind, corrInner []sqlparser.Expr) ([]sqlparser.Expr, error) {
	if kind == GroupScalarBlock {
		return corrInner, nil
	}
	out := make([]sqlparser.Expr, 0, len(stmt.GroupBy))
	for _, g := range stmt.GroupBy {
		if lit, ok := g.(*sqlparser.Literal); ok && lit.Value.Kind() == types.KindInt {
			n := int(lit.Value.Int())
			if n < 1 || n > len(stmt.Items) {
				return nil, fmt.Errorf("plan: GROUP BY ordinal %d out of range", n)
			}
			if stmt.Items[n-1].Star {
				return nil, fmt.Errorf("plan: GROUP BY ordinal cannot reference *")
			}
			out = append(out, stmt.Items[n-1].Expr)
			continue
		}
		if ref, ok := g.(*sqlparser.ColumnRef); ok && ref.Table == "" {
			matched := false
			for _, it := range stmt.Items {
				if it.Alias != "" && strings.EqualFold(it.Alias, ref.Name) {
					out = append(out, it.Expr)
					matched = true
					break
				}
			}
			if matched {
				continue
			}
		}
		out = append(out, g)
	}
	return out, nil
}

// bindPlainSelect binds a projection-only block (no aggregation).
func (p *Planner) bindPlainSelect(stmt *sqlparser.SelectStmt, b *binder, blk *Block) error {
	if stmt.Having != nil {
		return fmt.Errorf("plan: HAVING requires aggregation")
	}
	for _, it := range stmt.Items {
		if it.Star {
			for i, c := range blk.Input.Schema {
				blk.Select = append(blk.Select, &expr.Col{Idx: i, Name: c.Name, Typ: c.Type})
				blk.OutName = append(blk.OutName, c.Name)
			}
			continue
		}
		e, err := b.bindExpr(it.Expr)
		if err != nil {
			return err
		}
		blk.Select = append(blk.Select, e)
		blk.OutName = append(blk.OutName, outName(it))
	}
	return nil
}

// bindAggSelect binds an aggregating block: group keys, aggregate specs,
// HAVING, and the select list over the post-aggregate layout.
func (p *Planner) bindAggSelect(stmt *sqlparser.SelectStmt, b *binder, blk *Block, groupASTs []sqlparser.Expr) error {
	for _, g := range groupASTs {
		e, err := b.bindExpr(g)
		if err != nil {
			return err
		}
		blk.GroupBy = append(blk.GroupBy, e)
	}
	pa := &postAgg{
		b: b, blk: blk, groupASTs: groupASTs,
		aliases: map[string]sqlparser.Expr{}, binding: map[string]bool{},
	}
	for _, it := range stmt.Items {
		if it.Star {
			return fmt.Errorf("plan: SELECT * is not allowed with aggregation")
		}
		if it.Alias != "" {
			pa.aliases[strings.ToLower(it.Alias)] = it.Expr
		}
	}
	for _, it := range stmt.Items {
		e, err := pa.bind(it.Expr)
		if err != nil {
			return err
		}
		blk.Select = append(blk.Select, e)
		blk.OutName = append(blk.OutName, outName(it))
	}
	if stmt.Having != nil {
		h, err := pa.bind(stmt.Having)
		if err != nil {
			return err
		}
		blk.Having = h
	}
	return nil
}

// outName derives the output column name of a select item.
func outName(it sqlparser.SelectItem) string {
	if it.Alias != "" {
		return it.Alias
	}
	if ref, ok := it.Expr.(*sqlparser.ColumnRef); ok {
		return ref.Name
	}
	return it.Expr.SQL()
}

// bindOrderBy resolves ORDER BY terms to output columns (by ordinal,
// alias/output name, or textual match with a select item).
func bindOrderBy(stmt *sqlparser.SelectStmt, blk *Block) error {
	for _, o := range stmt.OrderBy {
		col := -1
		if lit, ok := o.Expr.(*sqlparser.Literal); ok && lit.Value.Kind() == types.KindInt {
			n := int(lit.Value.Int())
			if n < 1 || n > len(blk.Select) {
				return fmt.Errorf("plan: ORDER BY ordinal %d out of range", n)
			}
			col = n - 1
		}
		if col < 0 {
			if ref, ok := o.Expr.(*sqlparser.ColumnRef); ok && ref.Table == "" {
				for i, name := range blk.OutName {
					if strings.EqualFold(name, ref.Name) {
						col = i
						break
					}
				}
			}
		}
		if col < 0 {
			want := o.Expr.SQL()
			for i, name := range blk.OutName {
				if strings.EqualFold(name, want) {
					col = i
					break
				}
			}
		}
		if col < 0 {
			return fmt.Errorf("plan: ORDER BY %s does not match any output column", o.Expr.SQL())
		}
		blk.OrderBy = append(blk.OrderBy, OrderSpec{Col: col, Desc: o.Desc})
	}
	return nil
}

// postAgg binds expressions over the post-aggregate layout
// [group keys..., aggregate results...].
type postAgg struct {
	b         *binder
	blk       *Block
	groupASTs []sqlparser.Expr
	aliases   map[string]sqlparser.Expr
	binding   map[string]bool // alias-recursion guard
}

func (pa *postAgg) bind(ast sqlparser.Expr) (expr.Expr, error) {
	// 1. textual match with a grouping expression → group slot
	sql := ast.SQL()
	for i, g := range pa.groupASTs {
		if strings.EqualFold(sql, g.SQL()) {
			return &expr.Col{Idx: i, Name: g.SQL(), Typ: pa.blk.GroupBy[i].Kind()}, nil
		}
	}
	switch x := ast.(type) {
	case *sqlparser.Literal:
		return &expr.Const{V: x.Value}, nil
	case *sqlparser.FuncCall:
		if agg.IsAggregate(x.Name) {
			idx, kind, err := pa.ensureAgg(x)
			if err != nil {
				return nil, err
			}
			return &expr.Col{
				Idx: len(pa.blk.GroupBy) + idx, Name: x.SQL(), Typ: kind,
			}, nil
		}
		return pa.b.bindCall(x, pa.bind)
	case *sqlparser.ColumnRef:
		if x.Table == "" {
			key := strings.ToLower(x.Name)
			if aliasAST, ok := pa.aliases[key]; ok && !pa.binding[key] {
				pa.binding[key] = true
				e, err := pa.bind(aliasAST)
				pa.binding[key] = false
				return e, err
			}
		}
		if _, _, err := pa.b.sc.in.resolve(x.Table, x.Name); err == nil {
			return nil, fmt.Errorf(
				"plan: column %s must appear in GROUP BY or inside an aggregate", x.SQL())
		}
		return pa.b.resolveCol(x) // produces the precise error
	case *sqlparser.Binary:
		l, err := pa.bind(x.L)
		if err != nil {
			return nil, err
		}
		r, err := pa.bind(x.R)
		if err != nil {
			return nil, err
		}
		return &expr.Binary{Op: x.Op, L: l, R: r}, nil
	case *sqlparser.Unary:
		inner, err := pa.bind(x.X)
		if err != nil {
			return nil, err
		}
		if x.Op == "NOT" {
			return &expr.Not{X: inner}, nil
		}
		return &expr.Neg{X: inner}, nil
	case *sqlparser.Between:
		return pa.b.bindBetween(x, pa.bind)
	case *sqlparser.IsNull:
		inner, err := pa.bind(x.X)
		if err != nil {
			return nil, err
		}
		return &expr.IsNull{X: inner, Negated: x.Negated}, nil
	case *sqlparser.Case:
		return pa.b.bindCase(x, pa.bind)
	case *sqlparser.Subquery:
		return pa.b.bindScalarSubquery(x.Select)
	case *sqlparser.ExistsExpr:
		return pa.b.bindExists(x)
	case *sqlparser.InExpr:
		if x.Sub != nil {
			lhs, err := pa.bind(x.X)
			if err != nil {
				return nil, err
			}
			return pa.b.bindInSubquery(x, lhs)
		}
		lhs, err := pa.bind(x.X)
		if err != nil {
			return nil, err
		}
		list := make([]expr.Expr, len(x.List))
		for i, e := range x.List {
			le, err := pa.bind(e)
			if err != nil {
				return nil, err
			}
			list[i] = le
		}
		return &expr.InList{X: lhs, List: list, Negated: x.Negated}, nil
	default:
		return nil, fmt.Errorf("plan: unsupported expression %T in aggregate context", ast)
	}
}

// ensureAgg registers (or reuses) an aggregate spec, returning its slot
// index and result kind.
func (pa *postAgg) ensureAgg(x *sqlparser.FuncCall) (int, types.Kind, error) {
	label := x.SQL()
	for i, a := range pa.blk.Aggs {
		if a.Label == label {
			return i, a.OutKind, nil
		}
	}
	fn, ok := agg.Lookup(x.Name)
	if !ok {
		return 0, 0, fmt.Errorf("plan: unknown aggregate %s", x.Name)
	}
	spec := AggSpec{Name: strings.ToUpper(x.Name), Fn: fn, Distinct: x.Distinct, Label: label}
	if x.Star {
		if spec.Name != "COUNT" {
			return 0, 0, fmt.Errorf("plan: %s(*) is not supported", spec.Name)
		}
		spec.Arg = &expr.Const{V: types.NewInt(1)}
	} else {
		if len(x.Args) == 0 {
			return 0, 0, fmt.Errorf("plan: %s requires an argument", spec.Name)
		}
		argE, err := pa.b.bindExpr(x.Args[0])
		if err != nil {
			return 0, 0, err
		}
		spec.Arg = argE
		for _, extra := range x.Args[1:] {
			lit, ok := extra.(*sqlparser.Literal)
			if !ok {
				return 0, 0, fmt.Errorf(
					"plan: %s: arguments after the first must be constants", spec.Name)
			}
			spec.Params = append(spec.Params, lit.Value)
		}
	}
	switch spec.Name {
	case "MIN", "MAX":
		spec.OutKind = spec.Arg.Kind()
	default:
		spec.OutKind = types.KindFloat
	}
	// Validate constructor parameters eagerly for a clean compile error.
	if _, err := spec.NewState(); err != nil {
		return 0, 0, err
	}
	pa.blk.Aggs = append(pa.blk.Aggs, spec)
	return len(pa.blk.Aggs) - 1, spec.OutKind, nil
}

// BindConst binds and evaluates a constant expression (no column
// references, no subqueries) — the value expressions of INSERT ...
// VALUES. Scalar functions and arithmetic are allowed.
func BindConst(ast sqlparser.Expr) (types.Value, error) {
	if hasSubqueryAST(ast) {
		return types.Null, fmt.Errorf("plan: subqueries are not allowed in VALUES")
	}
	empty := Input{}
	b := &binder{sc: &scope{in: &empty}, blk: &Block{}}
	e, err := b.bindExpr(ast)
	if err != nil {
		return types.Null, err
	}
	return e.Eval(&expr.Ctx{}), nil
}

// hasSubqueryAST detects subquery nodes before binding (BindConst has no
// planner to compile them with).
func hasSubqueryAST(ast sqlparser.Expr) bool {
	found := false
	var walk func(sqlparser.Expr)
	walk = func(e sqlparser.Expr) {
		if found || e == nil {
			return
		}
		switch x := e.(type) {
		case *sqlparser.Subquery, *sqlparser.ExistsExpr:
			found = true
		case *sqlparser.Binary:
			walk(x.L)
			walk(x.R)
		case *sqlparser.Unary:
			walk(x.X)
		case *sqlparser.FuncCall:
			for _, a := range x.Args {
				walk(a)
			}
		case *sqlparser.Between:
			walk(x.X)
			walk(x.Lo)
			walk(x.Hi)
		case *sqlparser.IsNull:
			walk(x.X)
		case *sqlparser.InExpr:
			if x.Sub != nil {
				found = true
				return
			}
			walk(x.X)
			for _, a := range x.List {
				walk(a)
			}
		case *sqlparser.Case:
			walk(x.Operand)
			for _, w := range x.Whens {
				walk(w.Cond)
				walk(w.Result)
			}
			walk(x.Else)
		}
	}
	walk(ast)
	return found
}
