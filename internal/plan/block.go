// Package plan turns parsed SQL into FluoDB's executable form: a DAG of
// lineage blocks (§3.3 of the G-OLA paper). Each block is a maximal
// SPJA sub-plan — scan/join/filter followed by at most one aggregation —
// and every nested aggregate subquery becomes its own block whose result
// is broadcast to its parent through a placeholder parameter
// (expr.ScalarParam / expr.GroupParam / expr.SetParam).
package plan

import (
	"fmt"
	"strings"

	"fluodb/internal/agg"
	"fluodb/internal/expr"
	"fluodb/internal/sqlparser"
	"fluodb/internal/types"
)

// BlockKind describes how a block's output is consumed.
type BlockKind int

const (
	// RootBlock is the top-level query; its output is the query result.
	RootBlock BlockKind = iota
	// ScalarBlock is an uncorrelated scalar subquery (one row, one col).
	ScalarBlock
	// GroupScalarBlock is an equality-correlated scalar subquery: one
	// value per correlation-key group.
	GroupScalarBlock
	// SetBlock is an IN-subquery: a set of keys, optionally filtered by
	// an (uncertain) HAVING predicate.
	SetBlock
)

// String implements fmt.Stringer.
func (k BlockKind) String() string {
	switch k {
	case RootBlock:
		return "root"
	case ScalarBlock:
		return "scalar"
	case GroupScalarBlock:
		return "group-scalar"
	case SetBlock:
		return "set"
	default:
		return fmt.Sprintf("BlockKind(%d)", int(k))
	}
}

// DimJoin hash-joins the accumulated row against a dimension table.
// G-OLA streams the fact table and reads dimension tables in entirety
// (§2: "stream through a large fact table while reading smaller
// dimension tables").
type DimJoin struct {
	Table  string
	Alias  string
	Schema types.Schema
	// LeftKey is evaluated over the accumulated row (fact + earlier
	// dims); RightKey over the dimension row.
	LeftKey  expr.Expr
	RightKey expr.Expr
	Left     bool // LEFT JOIN (NULL-extend on miss)
}

// Input is a block's FROM clause: one streamed fact table plus zero or
// more dimension hash-joins. Schema is the concatenation fact ++ dims.
type Input struct {
	Fact      string
	FactAlias string
	Schema    types.Schema
	// Quals[i] is the table alias owning column i (for EXPLAIN).
	Quals []string
}

// AggSpec is one aggregate computed by a block.
type AggSpec struct {
	Name     string // upper-case function name
	Fn       agg.Func
	Params   []types.Value // constant args after the first (QUANTILE q, ...)
	Arg      expr.Expr     // input expression; Const(1) for COUNT(*)
	Distinct bool
	Label    string     // canonical SQL, for dedup and EXPLAIN
	OutKind  types.Kind // result type of the aggregate
}

// NewState builds a fresh state for the spec.
func (a *AggSpec) NewState() (agg.State, error) {
	s, err := a.Fn.NewState(a.Params)
	if err != nil {
		return nil, err
	}
	if a.Distinct {
		s = agg.NewDistinct(s)
	}
	return s, nil
}

// OrderSpec is one ORDER BY term over the block's output columns.
type OrderSpec struct {
	Col  int // output column index
	Desc bool
}

// Block is one lineage block.
//
// Row flow: Input → Where (over Input.Schema) → group by GroupBy,
// folding Aggs → post-aggregate layout [GroupBy values..., Agg results...]
// → Having → Select (both over the post-aggregate layout). For
// non-aggregating blocks (no GroupBy, no Aggs) Having must be nil and
// Select is bound directly over Input.Schema.
type Block struct {
	ID    int
	Kind  BlockKind
	Label string // original subquery SQL, for EXPLAIN/errors

	Input   Input
	Dims    []DimJoin
	Where   expr.Expr // may contain params
	GroupBy []expr.Expr
	Aggs    []AggSpec
	Having  expr.Expr // may contain params
	Select  []expr.Expr
	OutName []string

	// Aggregating reports whether the block has an aggregation step.
	Aggregating bool
	// Distinct deduplicates the output rows of a projection block
	// (SELECT DISTINCT without aggregation).
	Distinct bool

	// ParamIdx is this block's slot in the query's scalar/group/set
	// param arrays (by Kind); -1 for the root.
	ParamIdx int

	// Deps lists the block IDs whose parameters this block references.
	Deps []int

	// Root-only ordering/limit.
	OrderBy []OrderSpec
	Limit   int // -1 = none
	Offset  int // 0 = none
}

// OutSchema derives the output schema of the block.
func (b *Block) OutSchema() types.Schema {
	s := make(types.Schema, len(b.Select))
	for i, e := range b.Select {
		s[i] = types.Column{Name: b.OutName[i], Type: e.Kind()}
	}
	return s
}

// PostAggWidth is the width of the post-aggregate layout.
func (b *Block) PostAggWidth() int { return len(b.GroupBy) + len(b.Aggs) }

// Query is a compiled query: blocks in dependency order (every block
// appears after the blocks it depends on; the root is last).
type Query struct {
	SQL    string
	Blocks []*Block
	Root   *Block
	// Param tables: ScalarBlocks[i] is the block feeding ScalarParam i,
	// and likewise for group and set params.
	ScalarBlocks []*Block
	GroupBlocks  []*Block
	SetBlocks    []*Block
}

// BlockByID returns the block with the given ID.
func (q *Query) BlockByID(id int) *Block {
	for _, b := range q.Blocks {
		if b.ID == id {
			return b
		}
	}
	return nil
}

// Explain renders a human-readable plan.
func (q *Query) Explain() string {
	var sb strings.Builder
	for _, b := range q.Blocks {
		fmt.Fprintf(&sb, "block %d (%s)", b.ID, b.Kind)
		if b.ParamIdx >= 0 {
			fmt.Fprintf(&sb, " -> $%d", b.ParamIdx)
		}
		sb.WriteString("\n")
		fmt.Fprintf(&sb, "  from %s", b.Input.Fact)
		for _, d := range b.Dims {
			join := "join"
			if d.Left {
				join = "left join"
			}
			fmt.Fprintf(&sb, " %s %s on %s = %s", join, d.Table, d.LeftKey, d.RightKey)
		}
		sb.WriteString("\n")
		if b.Where != nil {
			fmt.Fprintf(&sb, "  where %s\n", b.Where)
		}
		if len(b.GroupBy) > 0 {
			parts := make([]string, len(b.GroupBy))
			for i, g := range b.GroupBy {
				parts[i] = g.String()
			}
			fmt.Fprintf(&sb, "  group by %s\n", strings.Join(parts, ", "))
		}
		for i, a := range b.Aggs {
			fmt.Fprintf(&sb, "  agg[%d] %s\n", i, a.Label)
		}
		if b.Having != nil {
			fmt.Fprintf(&sb, "  having %s\n", b.Having)
		}
		parts := make([]string, len(b.Select))
		for i, e := range b.Select {
			parts[i] = fmt.Sprintf("%s AS %s", e, b.OutName[i])
		}
		fmt.Fprintf(&sb, "  select %s\n", strings.Join(parts, ", "))
		if len(b.Deps) > 0 {
			fmt.Fprintf(&sb, "  deps %v\n", b.Deps)
		}
	}
	return sb.String()
}

// uncertainComparisonCount counts θ-comparisons in e that touch params —
// a plan statistic used by EXPLAIN and tests.
func uncertainComparisonCount(e expr.Expr) int {
	n := 0
	expr.Walk(e, func(x expr.Expr) bool {
		if b, ok := x.(*expr.Binary); ok && b.Op.IsComparison() && expr.HasParams(b) {
			n++
		}
		if _, ok := x.(*expr.SetParam); ok {
			n++
		}
		return true
	})
	return n
}

// UncertainPredicates counts the uncertain predicates in the block's
// WHERE and HAVING clauses.
func (b *Block) UncertainPredicates() int {
	return uncertainComparisonCount(b.Where) + uncertainComparisonCount(b.Having)
}

// validateNoParamsInAggArgs enforces G-OLA's lineage-block boundary: a
// nested aggregate's value may appear in predicates (WHERE/HAVING) but
// not inside another aggregate's argument — that pattern would make
// every previously folded tuple stale whenever the inner estimate
// refines, which delta maintenance cannot repair (§3.3).
func validateNoParamsInAggArgs(b *Block) error {
	for _, a := range b.Aggs {
		if a.Arg != nil && expr.HasParams(a.Arg) {
			return fmt.Errorf(
				"plan: %s references a nested aggregate inside an aggregate argument; "+
					"G-OLA broadcasts nested aggregate results only into predicates "+
					"(WHERE/HAVING), not into aggregate inputs", a.Label)
		}
	}
	for _, g := range b.GroupBy {
		if expr.HasParams(g) {
			return fmt.Errorf("plan: GROUP BY expressions cannot reference nested aggregates")
		}
	}
	return nil
}

// binaryIsComparison is re-exported for core's classifier tests.
func binaryIsComparison(op sqlparser.BinaryOp) bool { return op.IsComparison() }
