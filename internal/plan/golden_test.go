package plan

import (
	"strings"
	"testing"

	"fluodb/internal/storage"
	"fluodb/internal/types"
	"fluodb/internal/workload"
)

// TestSuitePlanShapes locks the lineage-block decomposition of every
// evaluation query: block count, kinds, parameter classes, and which
// clauses carry uncertainty. A planner change that silently alters how
// a suite query decomposes fails here.
func TestSuitePlanShapes(t *testing.T) {
	conviva := storage.NewCatalog()
	conviva.Put(storage.NewTable("sessions", workloadSessionsSchema()))
	tpch := storage.NewCatalog()
	tpch.Put(storage.NewTable("lineitem", workload.LineitemSchema()))
	tpch.Put(storage.NewTable("partsupp", workload.PartSuppSchema()))

	type shape struct {
		blocks       int
		kinds        []BlockKind
		scalarParams int
		groupParams  int
		setParams    int
		uncertain    int // uncertain predicates in the root
		rootGroups   int
	}
	want := map[string]shape{
		"SBI": {2, []BlockKind{ScalarBlock, RootBlock}, 1, 0, 0, 1, 0},
		"C1":  {2, []BlockKind{ScalarBlock, RootBlock}, 1, 0, 0, 1, 1},
		"C2":  {2, []BlockKind{ScalarBlock, RootBlock}, 1, 0, 0, 1, 0},
		"C3":  {2, []BlockKind{ScalarBlock, RootBlock}, 1, 0, 0, 1, 1},
		"Q11": {2, []BlockKind{ScalarBlock, RootBlock}, 1, 0, 0, 1, 1},
		"Q17": {2, []BlockKind{GroupScalarBlock, RootBlock}, 0, 1, 0, 1, 0},
		"Q18": {2, []BlockKind{SetBlock, RootBlock}, 0, 0, 1, 1, 2},
		"Q20": {2, []BlockKind{GroupScalarBlock, RootBlock}, 0, 1, 0, 1, 0},
	}
	for _, wq := range workload.Suite() {
		cat := conviva
		if wq.Dataset == "tpch" {
			cat = tpch
		}
		q, err := Compile(wq.SQL, cat)
		if err != nil {
			t.Fatalf("%s: %v", wq.Name, err)
		}
		w, ok := want[wq.Name]
		if !ok {
			t.Fatalf("no expected shape for %s", wq.Name)
		}
		if len(q.Blocks) != w.blocks {
			t.Errorf("%s: blocks = %d, want %d", wq.Name, len(q.Blocks), w.blocks)
		}
		for i, k := range w.kinds {
			if q.Blocks[i].Kind != k {
				t.Errorf("%s: block %d kind = %v, want %v", wq.Name, i, q.Blocks[i].Kind, k)
			}
		}
		if len(q.ScalarBlocks) != w.scalarParams ||
			len(q.GroupBlocks) != w.groupParams ||
			len(q.SetBlocks) != w.setParams {
			t.Errorf("%s: params = %d/%d/%d, want %d/%d/%d", wq.Name,
				len(q.ScalarBlocks), len(q.GroupBlocks), len(q.SetBlocks),
				w.scalarParams, w.groupParams, w.setParams)
		}
		if got := q.Root.UncertainPredicates(); got != w.uncertain {
			t.Errorf("%s: uncertain predicates = %d, want %d", wq.Name, got, w.uncertain)
		}
		if len(q.Root.GroupBy) != w.rootGroups {
			t.Errorf("%s: root group-by = %d, want %d", wq.Name, len(q.Root.GroupBy), w.rootGroups)
		}
		// every plan renders a non-empty EXPLAIN that mentions its param
		out := q.Explain()
		if !strings.Contains(out, "block 0") || !strings.Contains(out, "(root)") {
			t.Errorf("%s: explain = %q", wq.Name, out)
		}
	}
}

// workloadSessionsSchema avoids an import cycle by duplicating the
// sessions schema through the workload package helper.
func workloadSessionsSchema() types.Schema {
	return workload.SessionsSchema()
}
