package agg

import (
	"math"
	"sort"

	"fluodb/internal/types"
)

// tdigest is a merging t-digest (Dunning & Ertl): a bounded-size sketch
// of a distribution whose accuracy concentrates at the tails, replacing
// the naive uniform reservoir for QUANTILE/MEDIAN/PERCENTILE. It is
// weighted (weights carry multiset multiplicities and poissonized
// bootstrap resamples), mergeable, and cloneable, so it slots directly
// into the online engine's state model.
type tdigest struct {
	compression float64
	// processed centroids, sorted by mean
	means   []float64
	weights []float64
	// unprocessed buffer
	bufMeans   []float64
	bufWeights []float64
	totalW     float64
	min, max   float64
	seen       bool
}

// tdigestCompression trades size for accuracy; 100 gives ~0.5–1%
// relative quantile error with ≤ ~200 centroids.
const tdigestCompression = 100

func newTDigest() *tdigest {
	return &tdigest{
		compression: tdigestCompression,
		min:         math.Inf(1),
		max:         math.Inf(-1),
	}
}

// add buffers one observation; the buffer is folded into the digest
// when it outgrows the compression budget.
func (t *tdigest) add(x, w float64) {
	if w <= 0 {
		return
	}
	t.bufMeans = append(t.bufMeans, x)
	t.bufWeights = append(t.bufWeights, w)
	t.totalW += w
	if x < t.min {
		t.min = x
	}
	if x > t.max {
		t.max = x
	}
	t.seen = true
	if len(t.bufMeans) >= int(4*t.compression) {
		t.process()
	}
}

// process merges the buffer into the centroid list, then compresses
// using the k1 scale function's size bound per centroid.
func (t *tdigest) process() {
	if len(t.bufMeans) == 0 {
		return
	}
	means := append(t.means, t.bufMeans...)
	weights := append(t.weights, t.bufWeights...)
	t.bufMeans = t.bufMeans[:0]
	t.bufWeights = t.bufWeights[:0]

	idx := make([]int, len(means))
	for i := range idx {
		idx[i] = i
	}
	sort.SliceStable(idx, func(a, b int) bool { return means[idx[a]] < means[idx[b]] })

	var outM, outW []float64
	var cumW float64
	i := 0
	for i < len(idx) {
		m, w := means[idx[i]], weights[idx[i]]
		i++
		// absorb following centroids while the k1-scale span of the
		// merged centroid stays within one unit (Dunning & Ertl)
		limit := t.k1(cumW/t.totalW) + 1
		for i < len(idx) {
			qRight := (cumW + w + weights[idx[i]]) / t.totalW
			if t.k1(qRight) > limit {
				break
			}
			nw := w + weights[idx[i]]
			m = m + (means[idx[i]]-m)*(weights[idx[i]]/nw)
			w = nw
			i++
		}
		outM = append(outM, m)
		outW = append(outW, w)
		cumW += w
	}
	t.means = outM
	t.weights = outW
}

// k1 is the tail-concentrating scale function of the merging t-digest.
func (t *tdigest) k1(q float64) float64 {
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	return t.compression / (2 * math.Pi) * math.Asin(2*q-1)
}

// quantile returns the q-quantile estimate.
func (t *tdigest) quantile(q float64) (float64, bool) {
	t.process()
	if !t.seen || len(t.means) == 0 {
		return 0, false
	}
	if q <= 0 {
		return t.min, true
	}
	if q >= 1 {
		return t.max, true
	}
	target := q * t.totalW
	var cum float64
	for i := range t.means {
		w := t.weights[i]
		if cum+w >= target {
			// interpolate inside the centroid toward its neighbors
			var lo, hi float64
			if i == 0 {
				lo = t.min
			} else {
				lo = (t.means[i-1] + t.means[i]) / 2
			}
			if i == len(t.means)-1 {
				hi = t.max
			} else {
				hi = (t.means[i] + t.means[i+1]) / 2
			}
			if w <= 0 {
				return t.means[i], true
			}
			frac := (target - cum) / w
			return lo + (hi-lo)*frac, true
		}
		cum += w
	}
	return t.max, true
}

// merge folds another digest into this one.
func (t *tdigest) merge(o *tdigest) {
	o.process()
	for i := range o.means {
		t.add(o.means[i], o.weights[i])
	}
	for i := range o.bufMeans {
		t.add(o.bufMeans[i], o.bufWeights[i])
	}
}

// clone deep-copies the digest.
func (t *tdigest) clone() *tdigest {
	c := &tdigest{
		compression: t.compression,
		totalW:      t.totalW,
		min:         t.min,
		max:         t.max,
		seen:        t.seen,
	}
	c.means = append([]float64(nil), t.means...)
	c.weights = append([]float64(nil), t.weights...)
	c.bufMeans = append([]float64(nil), t.bufMeans...)
	c.bufWeights = append([]float64(nil), t.bufWeights...)
	return c
}

// tdigestState adapts tdigest to the aggregate State interface for
// QUANTILE/MEDIAN/PERCENTILE.
type tdigestState struct {
	q float64
	d *tdigest
}

func newTDigestState(q float64) *tdigestState {
	return &tdigestState{q: q, d: newTDigest()}
}

// Add implements State.
func (s *tdigestState) Add(v types.Value, w float64) {
	f, ok := v.AsFloat()
	if !ok {
		return
	}
	s.d.add(f, w)
}

// Merge implements State.
func (s *tdigestState) Merge(o State) {
	s.d.merge(o.(*tdigestState).d)
}

// Result implements State. Quantiles are intensive: scale is a no-op.
func (s *tdigestState) Result(scale float64) types.Value {
	v, ok := s.d.quantile(s.q)
	if !ok {
		return types.Null
	}
	return types.NewFloat(v)
}

// Clone implements State.
func (s *tdigestState) Clone() State {
	return &tdigestState{q: s.q, d: s.d.clone()}
}
