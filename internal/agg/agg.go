// Package agg implements FluoDB's aggregate functions.
//
// Every aggregate is expressed as a mergeable, weighted State:
//
//   - Add(v, w) folds one input value with weight w. Weights serve two
//     roles in G-OLA: the multiset multiplicity m = k/i of §2.2 (applied at
//     report time through the Result scale factor instead, so states stay
//     scale-free), and the Poisson(1) multiplicities of poissonized
//     bootstrap trials. Weight 0 means "not sampled in this trial".
//   - Merge(other) combines two partial states (partition parallelism).
//   - Result(scale) finalizes, scaling total weight by `scale`. Scale
//     affects SUM and COUNT (extensive aggregates) and is a no-op for
//     intensive ones (AVG, MIN, MAX, STDDEV, quantiles).
//   - Clone() deep-copies, so a snapshot can fold the current uncertain
//     set into a copy of the deterministic state without disturbing it.
//
// User-defined aggregates implement Func and are added via Register.
package agg

import (
	"fmt"
	"math"
	"strings"
	"sync"

	"fluodb/internal/types"
)

// State is a partial aggregate.
type State interface {
	// Add folds value v with weight w (w >= 0). NULL inputs are ignored,
	// as in SQL, except COUNT(*) which the executor feeds non-null tokens.
	Add(v types.Value, w float64)
	// Merge folds another state of the same dynamic type into this one.
	Merge(other State)
	// Result finalizes with the given extensive-weight scale factor.
	Result(scale float64) types.Value
	// Clone deep-copies the state.
	Clone() State
}

// Func describes an aggregate function.
type Func interface {
	// Name is the upper-case SQL name.
	Name() string
	// NewState creates an empty state. params are the constant arguments
	// after the aggregated expression (e.g. the q of QUANTILE(x, q)).
	NewState(params []types.Value) (State, error)
}

// registry of aggregate functions (built-ins plus UDAFs).
var (
	regMu    sync.RWMutex
	registry = map[string]Func{}
)

// Register adds an aggregate function (or UDAF). It overwrites any
// existing function with the same (case-insensitive) name.
func Register(f Func) {
	regMu.Lock()
	defer regMu.Unlock()
	registry[strings.ToUpper(f.Name())] = f
}

// Lookup resolves an aggregate function by name.
func Lookup(name string) (Func, bool) {
	regMu.RLock()
	defer regMu.RUnlock()
	f, ok := registry[strings.ToUpper(name)]
	return f, ok
}

// IsAggregate reports whether name is a registered aggregate.
func IsAggregate(name string) bool {
	_, ok := Lookup(name)
	return ok
}

// simpleFunc adapts a state constructor into a Func.
type simpleFunc struct {
	name string
	mk   func(params []types.Value) (State, error)
}

func (f *simpleFunc) Name() string { return f.name }
func (f *simpleFunc) NewState(params []types.Value) (State, error) {
	return f.mk(params)
}

// NewFunc builds a Func from a name and a state constructor; exported for
// UDAF authors.
func NewFunc(name string, mk func(params []types.Value) (State, error)) Func {
	return &simpleFunc{name: strings.ToUpper(name), mk: mk}
}

func noParams(name string, params []types.Value) error {
	if len(params) != 0 {
		return fmt.Errorf("agg: %s takes exactly one argument", name)
	}
	return nil
}

func init() {
	Register(NewFunc("COUNT", func(p []types.Value) (State, error) {
		if err := noParams("COUNT", p); err != nil {
			return nil, err
		}
		return &countState{}, nil
	}))
	Register(NewFunc("SUM", func(p []types.Value) (State, error) {
		if err := noParams("SUM", p); err != nil {
			return nil, err
		}
		return &sumState{}, nil
	}))
	Register(NewFunc("AVG", func(p []types.Value) (State, error) {
		if err := noParams("AVG", p); err != nil {
			return nil, err
		}
		return &avgState{}, nil
	}))
	Register(NewFunc("MIN", func(p []types.Value) (State, error) {
		if err := noParams("MIN", p); err != nil {
			return nil, err
		}
		return &minMaxState{min: true}, nil
	}))
	Register(NewFunc("MAX", func(p []types.Value) (State, error) {
		if err := noParams("MAX", p); err != nil {
			return nil, err
		}
		return &minMaxState{}, nil
	}))
	mkStd := func(sample bool, variance bool) func(p []types.Value) (State, error) {
		return func(p []types.Value) (State, error) {
			if len(p) != 0 {
				return nil, fmt.Errorf("agg: STDDEV/VARIANCE take exactly one argument")
			}
			return &varState{sample: sample, variance: variance}, nil
		}
	}
	Register(NewFunc("STDDEV", mkStd(true, false)))
	Register(NewFunc("STDEV", mkStd(true, false))) // paper's spelling
	Register(NewFunc("STDDEV_POP", mkStd(false, false)))
	Register(NewFunc("VARIANCE", mkStd(true, true)))
	Register(NewFunc("VAR_POP", mkStd(false, true)))
	Register(NewFunc("QUANTILE", func(p []types.Value) (State, error) {
		if len(p) != 1 {
			return nil, fmt.Errorf("agg: QUANTILE(x, q) takes exactly two arguments")
		}
		q, ok := p[0].AsFloat()
		if !ok || q < 0 || q > 1 {
			return nil, fmt.Errorf("agg: QUANTILE fraction must be in [0,1], got %v", p[0])
		}
		return newTDigestState(q), nil
	}))
	Register(NewFunc("PERCENTILE", func(p []types.Value) (State, error) {
		if len(p) != 1 {
			return nil, fmt.Errorf("agg: PERCENTILE(x, pct) takes exactly two arguments")
		}
		q, ok := p[0].AsFloat()
		if !ok || q < 0 || q > 100 {
			return nil, fmt.Errorf("agg: PERCENTILE must be in [0,100], got %v", p[0])
		}
		return newTDigestState(q / 100), nil
	}))
	Register(NewFunc("MEDIAN", func(p []types.Value) (State, error) {
		if err := noParams("MEDIAN", p); err != nil {
			return nil, err
		}
		return newTDigestState(0.5), nil
	}))
}

// Pre-accumulated state constructors. The online engine keeps the
// bootstrap replicas of CLT-estimable aggregates (SUM/COUNT/AVG) as flat
// float banks instead of per-trial State sets; these constructors
// materialize a State view of one bank cell wherever generic State-based
// code (overlays, snapshots) needs it.

// CountStateOf returns a COUNT state carrying total weight w.
func CountStateOf(w float64) State { return &countState{w: w} }

// SumStateOf returns a SUM state carrying the weighted sum; seen
// distinguishes an empty state (NULL result) from a zero-valued sum.
func SumStateOf(sum float64, seen bool) State { return &sumState{sum: sum, seen: seen} }

// AvgStateOf returns an AVG state carrying the weighted sum and total
// weight.
func AvgStateOf(sum, w float64) State { return &avgState{sum: sum, w: w} }

// --- COUNT ---

type countState struct{ w float64 }

func (s *countState) Add(v types.Value, w float64) {
	if v.IsNull() {
		return
	}
	s.w += w
}
func (s *countState) Merge(o State) { s.w += o.(*countState).w }
func (s *countState) Result(scale float64) types.Value {
	return types.NewFloat(s.w * scale)
}
func (s *countState) Clone() State { c := *s; return &c }

// --- SUM ---

type sumState struct {
	sum  float64
	seen bool
}

func (s *sumState) Add(v types.Value, w float64) {
	f, ok := v.AsFloat()
	if !ok {
		return
	}
	s.sum += f * w
	s.seen = true
}
func (s *sumState) Merge(o State) {
	os := o.(*sumState)
	s.sum += os.sum
	s.seen = s.seen || os.seen
}
func (s *sumState) Result(scale float64) types.Value {
	if !s.seen {
		return types.Null
	}
	return types.NewFloat(s.sum * scale)
}
func (s *sumState) Clone() State { c := *s; return &c }

// --- AVG ---

type avgState struct {
	sum, w float64
}

func (s *avgState) Add(v types.Value, w float64) {
	f, ok := v.AsFloat()
	if !ok {
		return
	}
	s.sum += f * w
	s.w += w
}
func (s *avgState) Merge(o State) {
	os := o.(*avgState)
	s.sum += os.sum
	s.w += os.w
}
func (s *avgState) Result(scale float64) types.Value {
	if s.w == 0 {
		return types.Null
	}
	return types.NewFloat(s.sum / s.w)
}
func (s *avgState) Clone() State { c := *s; return &c }

// --- MIN / MAX ---

type minMaxState struct {
	min  bool
	best types.Value
	seen bool
}

func (s *minMaxState) Add(v types.Value, w float64) {
	if v.IsNull() || w <= 0 {
		return
	}
	if !s.seen {
		s.best = v
		s.seen = true
		return
	}
	c := types.Compare(v, s.best)
	if (s.min && c < 0) || (!s.min && c > 0) {
		s.best = v
	}
}
func (s *minMaxState) Merge(o State) {
	os := o.(*minMaxState)
	if os.seen {
		s.Add(os.best, 1)
	}
}
func (s *minMaxState) Result(scale float64) types.Value {
	if !s.seen {
		return types.Null
	}
	return s.best
}
func (s *minMaxState) Clone() State { c := *s; return &c }

// --- STDDEV / VARIANCE ---
//
// Weighted moments: w, Σwx, Σwx². Sample variance uses the frequency-
// weight correction (w-1 denominator).

type varState struct {
	sample   bool
	variance bool
	w        float64
	sum      float64
	sumsq    float64
}

func (s *varState) Add(v types.Value, w float64) {
	f, ok := v.AsFloat()
	if !ok {
		return
	}
	s.w += w
	s.sum += f * w
	s.sumsq += f * f * w
}
func (s *varState) Merge(o State) {
	os := o.(*varState)
	s.w += os.w
	s.sum += os.sum
	s.sumsq += os.sumsq
}
func (s *varState) Result(scale float64) types.Value {
	denom := s.w
	if s.sample {
		denom = s.w - 1
	}
	if denom <= 0 {
		return types.Null
	}
	mean := s.sum / s.w
	num := s.sumsq - mean*s.sum
	if num < 0 { // floating point guard
		num = 0
	}
	v := num / denom
	if s.variance {
		return types.NewFloat(v)
	}
	return types.NewFloat(math.Sqrt(v))
}
func (s *varState) Clone() State { c := *s; return &c }

// --- DISTINCT wrapper ---

// distinctState deduplicates inputs before delegating. Duplicate
// detection uses the value's canonical key. Weights collapse to 1 for the
// first occurrence (DISTINCT semantics); extensive scaling is therefore
// not applied (scale forced to 1) because duplicating a sample does not
// duplicate its distinct values.
type distinctState struct {
	inner State
	seen  map[string]bool
}

// NewDistinct wraps a state with DISTINCT deduplication.
func NewDistinct(inner State) State {
	return &distinctState{inner: inner, seen: map[string]bool{}}
}

func (s *distinctState) Add(v types.Value, w float64) {
	if v.IsNull() || w <= 0 {
		return
	}
	key := types.KeyString1(v)
	if s.seen[key] {
		return
	}
	s.seen[key] = true
	s.inner.Add(v, 1)
}
func (s *distinctState) Merge(o State) {
	os := o.(*distinctState)
	for k := range os.seen {
		if !s.seen[k] {
			s.seen[k] = true
		}
	}
	// Values already folded into os.inner may double-count across shards
	// for non-COUNT aggregates; FluoDB only parallelizes DISTINCT via
	// key-partitioned streams, so Merge only needs the union of keys for
	// COUNT. For COUNT the result derives from len(seen), handled below.
}
func (s *distinctState) Result(scale float64) types.Value {
	if c, ok := s.inner.(*countState); ok {
		_ = c
		return types.NewFloat(float64(len(s.seen)))
	}
	return s.inner.Result(1)
}
func (s *distinctState) Clone() State {
	seen := make(map[string]bool, len(s.seen))
	for k := range s.seen {
		seen[k] = true
	}
	return &distinctState{inner: s.inner.Clone(), seen: seen}
}
