package agg

import (
	"fmt"
	"math"
	"testing"

	"fluodb/internal/types"
)

func TestHLLAccuracySweep(t *testing.T) {
	for _, n := range []int{100, 1000, 10000, 200000} {
		h := newHLL()
		for i := 0; i < n; i++ {
			h.add(types.NewInt(int64(i)))
		}
		got := h.estimate()
		relErr := math.Abs(got-float64(n)) / float64(n)
		// 2^12 registers → σ ≈ 1.6%; allow 4σ plus small-range noise
		if relErr > 0.07 {
			t.Errorf("n=%d: estimate %.0f (rel err %.3f)", n, got, relErr)
		}
	}
}

func TestHLLDuplicatesDoNotInflate(t *testing.T) {
	h := newHLL()
	for pass := 0; pass < 10; pass++ {
		for i := 0; i < 5000; i++ {
			h.add(types.NewInt(int64(i)))
		}
	}
	got := h.estimate()
	if math.Abs(got-5000)/5000 > 0.07 {
		t.Errorf("estimate with duplicates = %.0f", got)
	}
}

func TestHLLStrings(t *testing.T) {
	h := newHLL()
	for i := 0; i < 20000; i++ {
		h.add(types.NewString(fmt.Sprintf("user-%d@example.com", i)))
	}
	got := h.estimate()
	if math.Abs(got-20000)/20000 > 0.07 {
		t.Errorf("string cardinality = %.0f", got)
	}
}

func TestHLLMergeEqualsUnion(t *testing.T) {
	a, b := newHLL(), newHLL()
	for i := 0; i < 8000; i++ {
		a.add(types.NewInt(int64(i)))
	}
	for i := 4000; i < 12000; i++ {
		b.add(types.NewInt(int64(i)))
	}
	a.merge(b)
	got := a.estimate()
	if math.Abs(got-12000)/12000 > 0.07 {
		t.Errorf("union estimate = %.0f, want ≈12000", got)
	}
}

func TestApproxCountDistinctState(t *testing.T) {
	s := mkState(t, "APPROX_COUNT_DISTINCT")
	if got := resF(t, s, 1); got != 0 {
		t.Errorf("empty = %v", got)
	}
	for i := 0; i < 3000; i++ {
		s.Add(types.NewInt(int64(i%1000)), 1)
	}
	s.Add(types.Null, 1)      // NULL ignored
	s.Add(types.NewInt(5), 0) // weight 0 skipped
	got := resF(t, s, 1)
	if math.Abs(got-1000)/1000 > 0.07 {
		t.Errorf("distinct ≈ %v, want ≈1000", got)
	}
	// scale-invariant like COUNT(DISTINCT)
	if got2 := resF(t, s, 10); got2 != got {
		t.Error("scale must not change distinct estimates")
	}
	// clone independence
	c := s.Clone()
	for i := 0; i < 5000; i++ {
		c.Add(types.NewInt(int64(10000+i)), 1)
	}
	if got3 := resF(t, s, 1); got3 != got {
		t.Error("Clone aliases sketch")
	}
	// merge
	o := mkState(t, "APPROX_COUNT_DISTINCT")
	for i := 1000; i < 2000; i++ {
		o.Add(types.NewInt(int64(i)), 1)
	}
	s.Merge(o)
	if got4 := resF(t, s, 1); math.Abs(got4-2000)/2000 > 0.07 {
		t.Errorf("merged ≈ %v, want ≈2000", got4)
	}
	if _, err := mustLookup(t, "APPROX_COUNT_DISTINCT").NewState([]types.Value{types.NewInt(1)}); err == nil {
		t.Error("params should be rejected")
	}
}

func mustLookup(t *testing.T, name string) Func {
	t.Helper()
	f, ok := Lookup(name)
	if !ok {
		t.Fatalf("missing %s", name)
	}
	return f
}
