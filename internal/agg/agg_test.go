package agg

import (
	"math"
	"testing"
	"testing/quick"

	"fluodb/internal/types"
)

func mkState(t *testing.T, name string, params ...types.Value) State {
	t.Helper()
	f, ok := Lookup(name)
	if !ok {
		t.Fatalf("Lookup(%s) failed", name)
	}
	s, err := f.NewState(params)
	if err != nil {
		t.Fatalf("NewState(%s): %v", name, err)
	}
	return s
}

func addAll(s State, vals ...float64) {
	for _, v := range vals {
		s.Add(types.NewFloat(v), 1)
	}
}

func resF(t *testing.T, s State, scale float64) float64 {
	t.Helper()
	v := s.Result(scale)
	f, ok := v.AsFloat()
	if !ok {
		t.Fatalf("Result = %v, want numeric", v)
	}
	return f
}

func TestCount(t *testing.T) {
	s := mkState(t, "COUNT")
	addAll(s, 1, 2, 3)
	s.Add(types.Null, 1) // NULLs don't count
	if got := resF(t, s, 1); got != 3 {
		t.Errorf("count = %v", got)
	}
	// extensive scaling: m = k/i
	if got := resF(t, s, 4); got != 12 {
		t.Errorf("scaled count = %v", got)
	}
}

func TestSumAvg(t *testing.T) {
	s := mkState(t, "SUM")
	addAll(s, 1, 2, 3.5)
	if got := resF(t, s, 1); got != 6.5 {
		t.Errorf("sum = %v", got)
	}
	if got := resF(t, s, 2); got != 13 {
		t.Errorf("scaled sum = %v", got)
	}
	a := mkState(t, "AVG")
	addAll(a, 1, 2, 3)
	if got := resF(t, a, 1); got != 2 {
		t.Errorf("avg = %v", got)
	}
	// AVG is intensive: scale must not change it.
	if got := resF(t, a, 10); got != 2 {
		t.Errorf("scaled avg = %v", got)
	}
}

func TestEmptyStatesAreNull(t *testing.T) {
	for _, name := range []string{"SUM", "AVG", "MIN", "MAX", "STDDEV", "MEDIAN"} {
		s := mkState(t, name)
		if !s.Result(1).IsNull() {
			t.Errorf("%s of empty input should be NULL, got %v", name, s.Result(1))
		}
	}
	c := mkState(t, "COUNT")
	if got := resF(t, c, 1); got != 0 {
		t.Errorf("COUNT of empty input = %v, want 0", got)
	}
}

func TestMinMax(t *testing.T) {
	mn, mx := mkState(t, "MIN"), mkState(t, "MAX")
	for _, v := range []float64{5, -2, 9, 3} {
		mn.Add(types.NewFloat(v), 1)
		mx.Add(types.NewFloat(v), 1)
	}
	if got := resF(t, mn, 1); got != -2 {
		t.Errorf("min = %v", got)
	}
	if got := resF(t, mx, 1); got != 9 {
		t.Errorf("max = %v", got)
	}
	// weight 0 = not sampled in this bootstrap trial
	mn.Add(types.NewFloat(-100), 0)
	if got := resF(t, mn, 1); got != -2 {
		t.Errorf("weight-0 add changed min: %v", got)
	}
}

func TestStddevMatchesTwoPass(t *testing.T) {
	vals := []float64{4, 8, 15, 16, 23, 42}
	s := mkState(t, "STDDEV")
	addAll(s, vals...)
	mean := 0.0
	for _, v := range vals {
		mean += v
	}
	mean /= float64(len(vals))
	var ss float64
	for _, v := range vals {
		ss += (v - mean) * (v - mean)
	}
	want := math.Sqrt(ss / float64(len(vals)-1))
	if got := resF(t, s, 1); math.Abs(got-want) > 1e-9 {
		t.Errorf("stddev = %v, want %v", got, want)
	}
	v := mkState(t, "VARIANCE")
	addAll(v, vals...)
	if got := resF(t, v, 1); math.Abs(got-want*want) > 1e-6 {
		t.Errorf("variance = %v, want %v", got, want*want)
	}
}

func TestStddevSingleValueNull(t *testing.T) {
	s := mkState(t, "STDDEV")
	addAll(s, 42)
	if !s.Result(1).IsNull() {
		t.Error("sample stddev of one value should be NULL")
	}
	p := mkState(t, "STDDEV_POP")
	addAll(p, 42)
	if got := resF(t, p, 1); got != 0 {
		t.Errorf("population stddev of one value = %v, want 0", got)
	}
}

func TestWeightedMoments(t *testing.T) {
	// Adding x with weight 3 must equal adding it 3 times.
	a := mkState(t, "AVG")
	a.Add(types.NewFloat(10), 3)
	a.Add(types.NewFloat(2), 1)
	b := mkState(t, "AVG")
	addAll(b, 10, 10, 10, 2)
	if resF(t, a, 1) != resF(t, b, 1) {
		t.Error("weighted AVG mismatch")
	}
}

func TestMedianAndQuantile(t *testing.T) {
	m := mkState(t, "MEDIAN")
	addAll(m, 9, 1, 5, 3, 7)
	if got := resF(t, m, 1); got != 5 {
		t.Errorf("median = %v", got)
	}
	q := mkState(t, "QUANTILE", types.NewFloat(0.9))
	for i := 1; i <= 100; i++ {
		q.Add(types.NewFloat(float64(i)), 1)
	}
	got := resF(t, q, 1)
	if got < 88 || got > 92 {
		t.Errorf("p90 of 1..100 = %v", got)
	}
	p := mkState(t, "PERCENTILE", types.NewFloat(50))
	addAll(p, 1, 2, 3)
	if got := resF(t, p, 1); got != 2 {
		t.Errorf("PERCENTILE(50) = %v", got)
	}
}

func TestQuantileParamValidation(t *testing.T) {
	f, _ := Lookup("QUANTILE")
	if _, err := f.NewState([]types.Value{types.NewFloat(1.5)}); err == nil {
		t.Error("q=1.5 should be rejected")
	}
	if _, err := f.NewState(nil); err == nil {
		t.Error("missing q should be rejected")
	}
	c, _ := Lookup("COUNT")
	if _, err := c.NewState([]types.Value{types.NewFloat(1)}); err == nil {
		t.Error("COUNT with params should be rejected")
	}
}

func TestMergeEquivalence(t *testing.T) {
	for _, name := range []string{"COUNT", "SUM", "AVG", "MIN", "MAX", "STDDEV"} {
		whole := mkState(t, name)
		a := mkState(t, name)
		b := mkState(t, name)
		vals := []float64{3, 1, 4, 1, 5, 9, 2, 6}
		for i, v := range vals {
			whole.Add(types.NewFloat(v), 1)
			if i%2 == 0 {
				a.Add(types.NewFloat(v), 1)
			} else {
				b.Add(types.NewFloat(v), 1)
			}
		}
		a.Merge(b)
		w, _ := whole.Result(1).AsFloat()
		m, _ := a.Result(1).AsFloat()
		if math.Abs(w-m) > 1e-9 {
			t.Errorf("%s: merge %v != whole %v", name, m, w)
		}
	}
}

func TestCloneIndependence(t *testing.T) {
	for _, name := range []string{"COUNT", "SUM", "AVG", "MIN", "MAX", "STDDEV", "MEDIAN"} {
		s := mkState(t, name)
		addAll(s, 1, 2, 3)
		before, _ := s.Result(1).AsFloat()
		c := s.Clone()
		addAll(c, 1000)
		after, _ := s.Result(1).AsFloat()
		if before != after {
			t.Errorf("%s: Clone aliases original", name)
		}
	}
}

func TestSumMergeAssociativeQuick(t *testing.T) {
	f := func(xs []float64) bool {
		whole := &sumState{}
		a, b := &sumState{}, &sumState{}
		var absSum float64
		for i, x := range xs {
			if math.IsNaN(x) || math.IsInf(x, 0) {
				return true
			}
			// Bound magnitudes so the tolerance isn't dominated by
			// catastrophic cancellation between ±1e308 values.
			x = math.Mod(x, 1e9)
			absSum += math.Abs(x)
			whole.Add(types.NewFloat(x), 1)
			if i%3 == 0 {
				a.Add(types.NewFloat(x), 1)
			} else {
				b.Add(types.NewFloat(x), 1)
			}
		}
		a.Merge(b)
		if len(xs) == 0 {
			return a.Result(1).IsNull() == whole.Result(1).IsNull()
		}
		wa, _ := a.Result(1).AsFloat()
		ww, _ := whole.Result(1).AsFloat()
		diff := math.Abs(wa - ww)
		tol := 1e-9 * (1 + absSum)
		return diff <= tol
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestAvgScaleInvariantQuick(t *testing.T) {
	// Property: AVG(scale) == AVG(1) for any positive scale — the intensive
	// aggregates are invariant under the multiplicity annotation m = k/i.
	f := func(xs []float64, scaleSeed uint8) bool {
		s := &avgState{}
		any := false
		for _, x := range xs {
			if math.IsNaN(x) || math.IsInf(x, 0) {
				continue
			}
			s.Add(types.NewFloat(x), 1)
			any = true
		}
		if !any {
			return true
		}
		scale := 1 + float64(scaleSeed)
		a, _ := s.Result(1).AsFloat()
		b, _ := s.Result(scale).AsFloat()
		return a == b
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestDistinctCount(t *testing.T) {
	inner := mkState(t, "COUNT")
	d := NewDistinct(inner)
	for _, v := range []int64{1, 2, 2, 3, 3, 3} {
		d.Add(types.NewInt(v), 1)
	}
	d.Add(types.Null, 1)
	if got, _ := d.Result(1).AsFloat(); got != 3 {
		t.Errorf("count distinct = %v", got)
	}
	// DISTINCT never scales.
	if got, _ := d.Result(100).AsFloat(); got != 3 {
		t.Errorf("scaled count distinct = %v", got)
	}
	c := d.Clone()
	c.Add(types.NewInt(99), 1)
	if got, _ := d.Result(1).AsFloat(); got != 3 {
		t.Error("Clone aliases distinct set")
	}
}

func TestDistinctSum(t *testing.T) {
	d := NewDistinct(mkState(t, "SUM"))
	for _, v := range []int64{5, 5, 7} {
		d.Add(types.NewInt(v), 1)
	}
	if got, _ := d.Result(1).AsFloat(); got != 12 {
		t.Errorf("sum distinct = %v", got)
	}
}

func TestRegisterUDAF(t *testing.T) {
	// GEOMEAN as a user-defined aggregate.
	Register(NewFunc("GEOMEAN", func(p []types.Value) (State, error) {
		return &geoMean{}, nil
	}))
	if !IsAggregate("geomean") {
		t.Fatal("UDAF not visible")
	}
	s := mkState(t, "GEOMEAN")
	addAll(s, 1, 100)
	if got := resF(t, s, 1); math.Abs(got-10) > 1e-9 {
		t.Errorf("geomean = %v", got)
	}
}

type geoMean struct{ logSum, w float64 }

func (g *geoMean) Add(v types.Value, w float64) {
	f, ok := v.AsFloat()
	if !ok || f <= 0 {
		return
	}
	g.logSum += math.Log(f) * w
	g.w += w
}
func (g *geoMean) Merge(o State) {
	og := o.(*geoMean)
	g.logSum += og.logSum
	g.w += og.w
}
func (g *geoMean) Result(scale float64) types.Value {
	if g.w == 0 {
		return types.Null
	}
	return types.NewFloat(math.Exp(g.logSum / g.w))
}
func (g *geoMean) Clone() State { c := *g; return &c }

func TestLookupIsCaseInsensitive(t *testing.T) {
	if _, ok := Lookup("avg"); !ok {
		t.Error("lower-case lookup failed")
	}
	if IsAggregate("NOT_AN_AGG") {
		t.Error("unknown name reported as aggregate")
	}
}

func TestStdevAliasFromPaper(t *testing.T) {
	// §2 lists STDEV among the standard aggregates.
	if !IsAggregate("STDEV") {
		t.Error("STDEV alias missing")
	}
}

func BenchmarkAvgAdd(b *testing.B) {
	s := &avgState{}
	v := types.NewFloat(3.5)
	for i := 0; i < b.N; i++ {
		s.Add(v, 1)
	}
}

func BenchmarkQuantileAdd(b *testing.B) {
	s := newTDigestState(0.5)
	v := types.NewFloat(3.5)
	for i := 0; i < b.N; i++ {
		s.Add(v, 1)
	}
}
