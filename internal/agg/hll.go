package agg

import (
	"math"

	"fluodb/internal/types"
)

// hll is a HyperLogLog cardinality sketch (Flajolet et al., with the
// standard small-range correction). It backs APPROX_COUNT_DISTINCT:
// COUNT(DISTINCT x) keeps an exact hash set, which is memory-unbounded
// over big streams; the sketch answers within ~1.6% using 2^m bytes.
type hll struct {
	regs []uint8
}

// hllPrecision is m: 2^12 registers → standard error ≈ 1.04/√4096 ≈ 1.6%.
const hllPrecision = 12

func newHLL() *hll {
	return &hll{regs: make([]uint8, 1<<hllPrecision)}
}

// add folds one value (by its canonical 64-bit hash).
func (h *hll) add(v types.Value) {
	x := v.Hash()
	// Mix once more: Value.Hash is FNV-ish and its low bits correlate
	// for small integers.
	x ^= x >> 33
	x *= 0xFF51AFD7ED558CCD
	x ^= x >> 33
	idx := x >> (64 - hllPrecision)
	rest := x<<hllPrecision | 1<<(hllPrecision-1) // ensure termination
	rank := uint8(1)
	for rest&(1<<63) == 0 {
		rank++
		rest <<= 1
	}
	if rank > h.regs[idx] {
		h.regs[idx] = rank
	}
}

// estimate returns the cardinality estimate.
func (h *hll) estimate() float64 {
	m := float64(len(h.regs))
	var sum float64
	zeros := 0
	for _, r := range h.regs {
		sum += 1 / float64(uint64(1)<<r)
		if r == 0 {
			zeros++
		}
	}
	alpha := 0.7213 / (1 + 1.079/m)
	e := alpha * m * m / sum
	// small-range correction: linear counting
	if e <= 2.5*m && zeros > 0 {
		e = m * math.Log(m/float64(zeros))
	}
	return e
}

// merge folds another sketch (register-wise max).
func (h *hll) merge(o *hll) {
	for i, r := range o.regs {
		if r > h.regs[i] {
			h.regs[i] = r
		}
	}
}

// clone deep-copies the sketch.
func (h *hll) clone() *hll {
	c := &hll{regs: make([]uint8, len(h.regs))}
	copy(c.regs, h.regs)
	return c
}

// hllState adapts hll to the aggregate State interface.
type hllState struct {
	h    *hll
	seen bool
}

// Add implements State. Weights are irrelevant for distinct counting
// (multiplicity does not change the distinct set); weight 0 means "not
// in this resample" and is skipped.
func (s *hllState) Add(v types.Value, w float64) {
	if v.IsNull() || w <= 0 {
		return
	}
	s.h.add(v)
	s.seen = true
}

// Merge implements State.
func (s *hllState) Merge(o State) {
	os := o.(*hllState)
	s.h.merge(os.h)
	s.seen = s.seen || os.seen
}

// Result implements State. Like COUNT(DISTINCT), the estimate is not
// scaled by the multiset multiplicity (duplicating a sample does not
// add distinct values).
func (s *hllState) Result(scale float64) types.Value {
	if !s.seen {
		return types.NewFloat(0)
	}
	return types.NewFloat(math.Round(s.h.estimate()))
}

// Clone implements State.
func (s *hllState) Clone() State {
	return &hllState{h: s.h.clone(), seen: s.seen}
}

func init() {
	Register(NewFunc("APPROX_COUNT_DISTINCT", func(p []types.Value) (State, error) {
		if err := noParams("APPROX_COUNT_DISTINCT", p); err != nil {
			return nil, err
		}
		return &hllState{h: newHLL()}, nil
	}))
}
