package agg

import (
	"math"
	"sort"
	"testing"

	"fluodb/internal/types"
)

// xorshift for test data
type tRand struct{ s uint64 }

func (r *tRand) next() float64 {
	r.s ^= r.s << 13
	r.s ^= r.s >> 7
	r.s ^= r.s << 17
	return float64(r.s>>11) / (1 << 53)
}

func exactQuantile(sorted []float64, q float64) float64 {
	if q <= 0 {
		return sorted[0]
	}
	if q >= 1 {
		return sorted[len(sorted)-1]
	}
	return sorted[int(q*float64(len(sorted)))]
}

func TestTDigestAccuracyUniform(t *testing.T) {
	r := &tRand{s: 7}
	d := newTDigest()
	var vals []float64
	for i := 0; i < 100000; i++ {
		x := r.next() * 1000
		vals = append(vals, x)
		d.add(x, 1)
	}
	sort.Float64s(vals)
	for _, q := range []float64{0.01, 0.1, 0.25, 0.5, 0.75, 0.9, 0.99} {
		got, ok := d.quantile(q)
		if !ok {
			t.Fatalf("q=%v: no estimate", q)
		}
		want := exactQuantile(vals, q)
		// absolute rank error: find got's rank
		rank := float64(sort.SearchFloat64s(vals, got)) / float64(len(vals))
		if math.Abs(rank-q) > 0.01 {
			t.Errorf("q=%v: estimate %v (rank %.4f), exact %v", q, got, rank, want)
		}
	}
	// extreme quantiles are exact min/max
	if got, _ := d.quantile(0); got != vals[0] {
		t.Errorf("q=0: %v vs %v", got, vals[0])
	}
	if got, _ := d.quantile(1); got != vals[len(vals)-1] {
		t.Errorf("q=1: %v vs %v", got, vals[len(vals)-1])
	}
}

func TestTDigestAccuracySkewed(t *testing.T) {
	// log-normal-ish heavy tail: tails are where t-digest shines
	r := &tRand{s: 9}
	d := newTDigest()
	var vals []float64
	for i := 0; i < 50000; i++ {
		u := r.next()
		if u < 1e-12 {
			u = 1e-12
		}
		x := math.Exp(3 + 1.2*math.Sqrt(-2*math.Log(u))*math.Cos(2*math.Pi*r.next()))
		vals = append(vals, x)
		d.add(x, 1)
	}
	sort.Float64s(vals)
	for _, q := range []float64{0.5, 0.9, 0.99, 0.999} {
		got, _ := d.quantile(q)
		rank := float64(sort.SearchFloat64s(vals, got)) / float64(len(vals))
		if math.Abs(rank-q) > 0.012 {
			t.Errorf("q=%v: rank error %.4f", q, math.Abs(rank-q))
		}
	}
}

func TestTDigestBoundedSize(t *testing.T) {
	d := newTDigest()
	for i := 0; i < 500000; i++ {
		d.add(float64(i%99991), 1)
	}
	d.process()
	if len(d.means) > 3*int(d.compression) {
		t.Errorf("digest grew to %d centroids", len(d.means))
	}
}

func TestTDigestWeighted(t *testing.T) {
	// weight w must equal w repeated unit additions
	a, b := newTDigest(), newTDigest()
	r := &tRand{s: 3}
	for i := 0; i < 2000; i++ {
		x := r.next() * 100
		a.add(x, 3)
		b.add(x, 1)
		b.add(x, 1)
		b.add(x, 1)
	}
	for _, q := range []float64{0.25, 0.5, 0.75} {
		av, _ := a.quantile(q)
		bv, _ := b.quantile(q)
		if math.Abs(av-bv) > 2.0 {
			t.Errorf("q=%v: weighted %v vs repeated %v", q, av, bv)
		}
	}
}

func TestTDigestMergeEquivalentAccuracy(t *testing.T) {
	r := &tRand{s: 11}
	whole := newTDigest()
	parts := []*tdigest{newTDigest(), newTDigest(), newTDigest()}
	var vals []float64
	for i := 0; i < 30000; i++ {
		x := r.next() * 500
		vals = append(vals, x)
		whole.add(x, 1)
		parts[i%3].add(x, 1)
	}
	merged := newTDigest()
	for _, p := range parts {
		merged.merge(p)
	}
	sort.Float64s(vals)
	for _, q := range []float64{0.1, 0.5, 0.9} {
		mv, _ := merged.quantile(q)
		rank := float64(sort.SearchFloat64s(vals, mv)) / float64(len(vals))
		if math.Abs(rank-q) > 0.02 {
			t.Errorf("merged q=%v: rank error %.4f", q, math.Abs(rank-q))
		}
	}
}

func TestTDigestCloneIndependent(t *testing.T) {
	d := newTDigest()
	for i := 0; i < 1000; i++ {
		d.add(float64(i), 1)
	}
	before, _ := d.quantile(0.5)
	c := d.clone()
	for i := 0; i < 1000; i++ {
		c.add(1e6, 1)
	}
	after, _ := d.quantile(0.5)
	if before != after {
		t.Error("clone aliases original")
	}
	cm, _ := c.quantile(0.9)
	if cm < 1000 {
		t.Errorf("clone median after skew = %v", cm)
	}
}

func TestTDigestStateInterface(t *testing.T) {
	s := newTDigestState(0.5)
	if !s.Result(1).IsNull() {
		t.Error("empty digest should be NULL")
	}
	for i := 1; i <= 101; i++ {
		s.Add(types.NewFloat(float64(i)), 1)
	}
	s.Add(types.NewString("skip"), 1) // non-numeric ignored
	got, _ := s.Result(1).AsFloat()
	if got < 48 || got > 54 {
		t.Errorf("median of 1..101 = %v", got)
	}
	// intensive: scale no-op
	got2, _ := s.Result(7).AsFloat()
	if got != got2 {
		t.Error("scale must not affect quantiles")
	}
	c := s.Clone()
	c.Add(types.NewFloat(1e9), 100)
	got3, _ := s.Result(1).AsFloat()
	if got3 != got {
		t.Error("Clone aliases state")
	}
	other := newTDigestState(0.5)
	for i := 0; i < 50; i++ {
		other.Add(types.NewFloat(1000), 1)
	}
	s.Merge(other)
	got4, _ := s.Result(1).AsFloat()
	if got4 <= got {
		t.Error("merge should shift the median up")
	}
}

func BenchmarkTDigestAdd(b *testing.B) {
	d := newTDigest()
	r := &tRand{s: 5}
	xs := make([]float64, 4096)
	for i := range xs {
		xs[i] = r.next() * 1000
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		d.add(xs[i%len(xs)], 1)
	}
}
