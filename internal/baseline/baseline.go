// Package baseline implements the two systems the paper compares G-OLA
// against in §5:
//
//   - CDM, classical delta maintenance (in the style of incremental view
//     maintenance [5, 16, 19]): SPJA sub-plans whose predicates carry no
//     nested-aggregate value are maintained incrementally, but any block
//     whose predicate references a nested aggregate must be recomputed
//     over ALL previously seen data whenever the inner estimate refines —
//     which it does at every mini-batch. Per-batch cost therefore grows
//     linearly with the batch index (O(k²)·n total, §3.1).
//
//   - OLA, classic online aggregation (Hellerstein, Haas and Wang [17]):
//     incremental maintenance plus CLT-based error bounds, limited to
//     monotone SPJA queries — it rejects queries with nested aggregate
//     subqueries, which is precisely the limitation G-OLA removes.
package baseline

import (
	"fmt"
	"math"
	"time"

	"fluodb/internal/exec"
	"fluodb/internal/expr"
	"fluodb/internal/plan"
	"fluodb/internal/storage"
	"fluodb/internal/types"
)

// Update is one refined answer from a baseline engine.
type Update struct {
	Batch             int
	FractionProcessed float64
	Schema            types.Schema
	Rows              []types.Row
	Elapsed           time.Duration
	// RowsRecomputed counts tuples re-read this batch (the wasted work
	// Figure 3(b) visualizes for CDM).
	RowsRecomputed int64
}

// CDM executes a query with classical delta maintenance.
type CDM struct {
	q       *plan.Query
	cat     *storage.Catalog
	k       int
	batch   int
	tables  map[string]*cdmStream
	blocks  []*cdmBlock
	rootIdx int
}

type cdmStream struct {
	batches [][]types.Row
	prefix  []types.Row
	total   int
}

type cdmBlock struct {
	b *plan.Block
	// incremental reports whether the block can be maintained by
	// folding only the new mini-batch (no uncertain predicates).
	incremental bool
	tab         *exec.AggTable
}

// NewCDM builds a CDM engine over k mini-batches.
func NewCDM(q *plan.Query, cat *storage.Catalog, k int) (*CDM, error) {
	if !q.Root.Aggregating {
		return nil, fmt.Errorf("baseline: online execution requires an aggregate query")
	}
	c := &CDM{q: q, cat: cat, k: k, tables: map[string]*cdmStream{}}
	for _, b := range q.Blocks {
		if _, ok := c.tables[b.Input.Fact]; !ok {
			t, found := cat.Get(b.Input.Fact)
			if !found {
				return nil, fmt.Errorf("baseline: unknown table %q", b.Input.Fact)
			}
			c.tables[b.Input.Fact] = &cdmStream{batches: t.MiniBatches(k), total: t.NumRows()}
		}
		cb := &cdmBlock{b: b, tab: exec.NewAggTable()}
		// A block is incrementally maintainable iff no predicate that
		// gates its folding references an uncertain value. HAVING is
		// applied at finalize time and does not poison incrementality.
		cb.incremental = !expr.HasParams(b.Where)
		c.blocks = append(c.blocks, cb)
	}
	return c, nil
}

// Done reports whether all batches were processed.
func (c *CDM) Done() bool { return c.batch >= c.k }

// Batch returns the number of batches processed.
func (c *CDM) Batch() int { return c.batch }

// Step processes the next mini-batch, recomputing non-monotone blocks
// over the full prefix, and returns the refined exact-on-prefix answer.
func (c *CDM) Step() (*Update, error) {
	if c.Done() {
		return nil, fmt.Errorf("baseline: all batches processed")
	}
	start := time.Now()
	i := c.batch
	for _, ts := range c.tables {
		if i < len(ts.batches) {
			ts.prefix = append(ts.prefix, ts.batches[i]...)
		}
	}
	env := exec.NewEnv(c.q)
	var recomputed int64
	for _, cb := range c.blocks {
		ts := c.tables[cb.b.Input.Fact]
		var rows []types.Row
		if cb.incremental {
			// fold only the new mini-batch into the persistent state
			if i < len(ts.batches) {
				rows = ts.batches[i]
			}
			if err := foldInto(cb.tab, cb.b, rows, c.cat, env); err != nil {
				return nil, err
			}
		} else {
			// the inner estimate changed → classical maintenance must
			// re-read everything seen so far (§3.1)
			rows = ts.prefix
			recomputed += int64(len(rows))
			tab, err := exec.BuildAggTable(cb.b, rows, c.cat, env)
			if err != nil {
				return nil, err
			}
			cb.tab = tab
		}
		if cb.b.Kind != plan.RootBlock {
			scale := c.scaleFor(cb.b)
			exec.InstallBinding(cb.b, cb.tab, env, scale)
		}
	}
	c.batch++
	rootCB := c.blocks[len(c.blocks)-1]
	out := exec.FinalizeRoot(c.q.Root, rootCB.tab, env, c.scaleFor(c.q.Root))
	rootTS := c.tables[c.q.Root.Input.Fact]
	return &Update{
		Batch:             c.batch,
		FractionProcessed: frac(len(rootTS.prefix), rootTS.total),
		Schema:            c.q.Root.OutSchema(),
		Rows:              out,
		Elapsed:           time.Since(start),
		RowsRecomputed:    recomputed,
	}, nil
}

func (c *CDM) scaleFor(b *plan.Block) float64 {
	ts := c.tables[b.Input.Fact]
	if len(ts.prefix) == 0 || ts.total == 0 {
		return 1
	}
	return float64(ts.total) / float64(len(ts.prefix))
}

func frac(seen, total int) float64 {
	if total == 0 {
		return 1
	}
	return float64(seen) / float64(total)
}

// foldInto streams rows through a block's join + WHERE into an existing
// aggregate table.
func foldInto(tab *exec.AggTable, b *plan.Block, rows []types.Row, cat *storage.Catalog, env *exec.Env) error {
	joiner, err := exec.NewJoiner(b, cat)
	if err != nil {
		return err
	}
	for _, f := range rows {
		for _, row := range joiner.Join(f) {
			ctx := env.Ctx(row)
			if b.Where != nil && !b.Where.Eval(ctx).Truthy() {
				continue
			}
			tab.Fold(b, ctx, 1)
		}
	}
	return nil
}

// OLA is classic online aggregation: incremental states with CLT error
// bounds, restricted to monotone SPJA queries.
type OLA struct {
	q     *plan.Query
	cat   *storage.Catalog
	k     int
	batch int
	ts    *cdmStream
	tab   *exec.AggTable
	// CLT accumulators per (group entry, agg index): count, mean, M2 of
	// the per-tuple aggregate inputs. Keyed by the entry pointer (stable
	// for the lifetime of the table) so the fold path never materializes
	// a key string.
	clt map[*exec.GroupEntry][]welford
	env *exec.Env
}

type welford struct {
	n    float64
	mean float64
	m2   float64
}

func (w *welford) add(x float64) {
	w.n++
	d := x - w.mean
	w.mean += d / w.n
	w.m2 += d * (x - w.mean)
}

func (w *welford) variance() float64 {
	if w.n < 2 {
		return 0
	}
	return w.m2 / (w.n - 1)
}

// OLAUpdate extends Update with CLT half-widths per row/aggregate.
type OLAUpdate struct {
	Update
	// HalfWidth[r][a] is the ±95% CLT bound of aggregate a in row r
	// (NaN when the aggregate has no CLT estimator).
	HalfWidth [][]float64
}

// NewOLA builds a classic OLA engine. It rejects queries with nested
// aggregate subqueries — the paper's motivating limitation.
func NewOLA(q *plan.Query, cat *storage.Catalog, k int) (*OLA, error) {
	if len(q.Blocks) != 1 {
		return nil, fmt.Errorf(
			"baseline: classic OLA supports only SPJA queries; %q has nested aggregate subqueries "+
				"(this is the limitation G-OLA removes)", q.SQL)
	}
	if !q.Root.Aggregating {
		return nil, fmt.Errorf("baseline: online execution requires an aggregate query")
	}
	t, ok := cat.Get(q.Root.Input.Fact)
	if !ok {
		return nil, fmt.Errorf("baseline: unknown table %q", q.Root.Input.Fact)
	}
	return &OLA{
		q: q, cat: cat, k: k,
		ts:  &cdmStream{batches: t.MiniBatches(k), total: t.NumRows()},
		tab: exec.NewAggTable(),
		clt: map[*exec.GroupEntry][]welford{},
		env: exec.NewEnv(q),
	}, nil
}

// Done reports whether all batches were processed.
func (o *OLA) Done() bool { return o.batch >= o.k }

// Step folds the next mini-batch and returns the refined estimate with
// CLT error bounds.
func (o *OLA) Step() (*OLAUpdate, error) {
	if o.Done() {
		return nil, fmt.Errorf("baseline: all batches processed")
	}
	start := time.Now()
	i := o.batch
	b := o.q.Root
	var rows []types.Row
	if i < len(o.ts.batches) {
		rows = o.ts.batches[i]
	}
	o.ts.prefix = append(o.ts.prefix, rows...)
	joiner, err := exec.NewJoiner(b, o.cat)
	if err != nil {
		return nil, err
	}
	for _, f := range rows {
		for _, row := range joiner.Join(f) {
			ctx := o.env.Ctx(row)
			if b.Where != nil && !b.Where.Eval(ctx).Truthy() {
				continue
			}
			entry := o.tab.Entry(b, ctx)
			ws, ok := o.clt[entry]
			if !ok {
				ws = make([]welford, len(b.Aggs))
				o.clt[entry] = ws
			}
			for a := range b.Aggs {
				v := b.Aggs[a].Arg.Eval(ctx)
				entry.States[a].Add(v, 1)
				if f64, okf := v.AsFloat(); okf {
					ws[a].add(f64)
				}
			}
		}
	}
	o.batch++
	scale := 1.0
	if len(o.ts.prefix) > 0 {
		scale = float64(o.ts.total) / float64(len(o.ts.prefix))
	}
	out := exec.FinalizeRoot(b, o.tab, o.env, scale)
	up := &OLAUpdate{Update: Update{
		Batch:             o.batch,
		FractionProcessed: frac(len(o.ts.prefix), o.ts.total),
		Schema:            b.OutSchema(),
		Rows:              out,
		Elapsed:           time.Since(start),
	}}
	up.HalfWidth = o.halfWidths(out, scale)
	return up, nil
}

// halfWidths computes 95% CLT bounds for AVG/SUM/COUNT cells; other
// aggregates get NaN (classic OLA has no closed-form estimator for
// them — one of the S-AQP pain points §1 discusses).
func (o *OLA) halfWidths(rows []types.Row, scale float64) [][]float64 {
	b := o.q.Root
	const z = 1.96
	out := make([][]float64, len(rows))
	for r := range rows {
		out[r] = make([]float64, len(b.Aggs))
		// Recover the group key from the leading group-by columns of the
		// finalized row only when the projection passes them through; we
		// instead re-derive via the table order, which FinalizeRoot
		// preserves for non-limited, non-ordered queries. For simplicity
		// and robustness the bounds are computed per emitted row index
		// when the shapes line up, else NaN.
		for a := range b.Aggs {
			out[r][a] = math.NaN()
		}
	}
	// Row ↔ group alignment only holds when FinalizeRoot emitted every
	// group in table order (no HAVING filtering, ordering, or limit).
	if len(b.OrderBy) > 0 || b.Limit >= 0 || b.Having != nil || len(rows) != o.tab.Len() {
		return out
	}
	idx := 0
	for _, entry := range o.tab.Entries() {
		if idx >= len(rows) {
			break
		}
		ws := o.clt[entry]
		if ws == nil {
			idx++
			continue
		}
		for a := range b.Aggs {
			w := &ws[a]
			if w.n < 2 {
				continue
			}
			se := math.Sqrt(w.variance() / w.n)
			switch b.Aggs[a].Name {
			case "AVG":
				out[idx][a] = z * se
			case "SUM":
				out[idx][a] = z * se * w.n * scale
			case "COUNT":
				// binomial-ish bound on the scaled count
				p := w.n / float64(maxInt(len(o.ts.prefix), 1))
				out[idx][a] = z * scale * math.Sqrt(w.n*(1-p))
			}
		}
		idx++
	}
	return out
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}
