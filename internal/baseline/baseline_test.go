package baseline

import (
	"math"
	"testing"

	"fluodb/internal/bootstrap"
	"fluodb/internal/exec"
	"fluodb/internal/plan"
	"fluodb/internal/storage"
	"fluodb/internal/types"
	"fluodb/internal/workload"
)

func synthSessions(n int, seed uint64) *storage.Catalog {
	cat := storage.NewCatalog()
	rng := bootstrap.NewRNG(seed)
	s := storage.NewTable("sessions", types.NewSchema(
		"session_id", types.KindInt,
		"buffer_time", types.KindFloat,
		"play_time", types.KindFloat,
	))
	for i := 0; i < n; i++ {
		buf := rng.Float64() * 100
		_ = s.Append(types.Row{
			types.NewInt(int64(i)),
			types.NewFloat(buf),
			types.NewFloat(800 - 5*buf + rng.Float64()*200),
		})
	}
	cat.Put(s)
	return cat
}

const sbi = `SELECT AVG(play_time) FROM sessions
	WHERE buffer_time > (SELECT AVG(buffer_time) FROM sessions)`

func TestCDMFinalMatchesExact(t *testing.T) {
	cat := synthSessions(2000, 1)
	q, err := plan.Compile(sbi, cat)
	if err != nil {
		t.Fatal(err)
	}
	exact, err := exec.Run(q, cat)
	if err != nil {
		t.Fatal(err)
	}
	cdm, err := NewCDM(q, cat, 10)
	if err != nil {
		t.Fatal(err)
	}
	var last *Update
	for !cdm.Done() {
		u, err := cdm.Step()
		if err != nil {
			t.Fatal(err)
		}
		last = u
	}
	want, _ := exact.Rows[0][0].AsFloat()
	got, _ := last.Rows[0][0].AsFloat()
	if math.Abs(got-want) > 1e-9 {
		t.Errorf("final = %v, want %v", got, want)
	}
	if last.FractionProcessed != 1 {
		t.Errorf("fraction = %v", last.FractionProcessed)
	}
}

func TestCDMRecomputeGrowsLinearly(t *testing.T) {
	cat := synthSessions(3000, 2)
	q, _ := plan.Compile(sbi, cat)
	cdm, _ := NewCDM(q, cat, 10)
	var recomputed []int64
	for !cdm.Done() {
		u, err := cdm.Step()
		if err != nil {
			t.Fatal(err)
		}
		recomputed = append(recomputed, u.RowsRecomputed)
	}
	// Per-batch re-read grows with the prefix: batch i re-reads ~i·n/k
	// rows (§3.1). Check strict monotone growth.
	for i := 1; i < len(recomputed); i++ {
		if recomputed[i] <= recomputed[i-1] {
			t.Fatalf("recompute not growing: %v", recomputed)
		}
	}
	// Last batch re-reads the whole table for the root (inner block is
	// scalar and recomputed too → up to 2× table size).
	if recomputed[9] < 3000 {
		t.Errorf("last batch recompute = %d", recomputed[9])
	}
}

func TestCDMMonotoneQueryIsIncremental(t *testing.T) {
	cat := synthSessions(2000, 3)
	q, _ := plan.Compile(`SELECT AVG(play_time) FROM sessions WHERE buffer_time > 50`, cat)
	cdm, _ := NewCDM(q, cat, 10)
	for !cdm.Done() {
		u, err := cdm.Step()
		if err != nil {
			t.Fatal(err)
		}
		if u.RowsRecomputed != 0 {
			t.Fatalf("monotone query re-read %d rows", u.RowsRecomputed)
		}
	}
}

func TestCDMIntermediateEstimatesReasonable(t *testing.T) {
	cat := synthSessions(4000, 4)
	q, _ := plan.Compile(sbi, cat)
	exact, _ := exec.Run(q, cat)
	truth, _ := exact.Rows[0][0].AsFloat()
	cdm, _ := NewCDM(q, cat, 10)
	u, err := cdm.Step()
	if err != nil {
		t.Fatal(err)
	}
	got, _ := u.Rows[0][0].AsFloat()
	if math.Abs(got-truth)/math.Abs(truth) > 0.1 {
		t.Errorf("first CDM estimate = %v, truth %v", got, truth)
	}
}

func TestOLARejectsNestedQueries(t *testing.T) {
	cat := synthSessions(100, 5)
	q, _ := plan.Compile(sbi, cat)
	if _, err := NewOLA(q, cat, 10); err == nil {
		t.Fatal("OLA must reject nested aggregate queries")
	}
}

func TestOLAConvergesWithCLTBounds(t *testing.T) {
	cat := synthSessions(5000, 6)
	q, _ := plan.Compile(`SELECT AVG(play_time) FROM sessions`, cat)
	exact, _ := exec.Run(q, cat)
	truth, _ := exact.Rows[0][0].AsFloat()
	ola, err := NewOLA(q, cat, 10)
	if err != nil {
		t.Fatal(err)
	}
	var widths []float64
	contains := 0
	for !ola.Done() {
		u, err := ola.Step()
		if err != nil {
			t.Fatal(err)
		}
		got, _ := u.Rows[0][0].AsFloat()
		hw := u.HalfWidth[0][0]
		if math.IsNaN(hw) {
			t.Fatal("AVG should have a CLT bound")
		}
		widths = append(widths, hw)
		if math.Abs(got-truth) <= hw*1.5 {
			contains++
		}
	}
	if widths[len(widths)-1] >= widths[0] {
		t.Errorf("CLT bound did not shrink: %v", widths)
	}
	if contains < 8 {
		t.Errorf("bound covered truth in %d/10 batches", contains)
	}
	// final estimate exact
	if got, _ := exactLast(t, ola, q, cat); math.Abs(got-truth) > 1e-9 {
		t.Errorf("final = %v, want %v", got, truth)
	}
}

func exactLast(t *testing.T, ola *OLA, q *plan.Query, cat *storage.Catalog) (float64, bool) {
	t.Helper()
	// re-run a fresh OLA to completion to fetch the final row
	o2, err := NewOLA(q, cat, 10)
	if err != nil {
		t.Fatal(err)
	}
	var last *OLAUpdate
	for !o2.Done() {
		u, err := o2.Step()
		if err != nil {
			t.Fatal(err)
		}
		last = u
	}
	return last.Rows[0][0].AsFloat()
}

func TestOLAGroupedQuery(t *testing.T) {
	cat := synthSessions(2000, 7)
	q, _ := plan.Compile(`SELECT FLOOR(buffer_time/25), COUNT(*), SUM(play_time) FROM sessions GROUP BY 1`, cat)
	exact, _ := exec.Run(q, cat)
	ola, err := NewOLA(q, cat, 10)
	if err != nil {
		t.Fatal(err)
	}
	var last *OLAUpdate
	for !ola.Done() {
		u, err := ola.Step()
		if err != nil {
			t.Fatal(err)
		}
		last = u
	}
	if len(last.Rows) != len(exact.Rows) {
		t.Fatalf("groups: got %d, want %d", len(last.Rows), len(exact.Rows))
	}
}

func TestCDMRejectsProjection(t *testing.T) {
	cat := synthSessions(100, 8)
	q, _ := plan.Compile(`SELECT session_id FROM sessions`, cat)
	if _, err := NewCDM(q, cat, 4); err == nil {
		t.Error("projection-only query should be rejected")
	}
	if _, err := NewOLA(q, cat, 4); err == nil {
		t.Error("projection-only query should be rejected by OLA too")
	}
}

func TestStepAfterDoneErrors(t *testing.T) {
	cat := synthSessions(100, 9)
	q, _ := plan.Compile(`SELECT COUNT(*) FROM sessions`, cat)
	cdm, _ := NewCDM(q, cat, 2)
	_, _ = cdm.Step()
	_, _ = cdm.Step()
	if _, err := cdm.Step(); err == nil {
		t.Error("CDM Step after done should error")
	}
	ola, _ := NewOLA(q, cat, 2)
	_, _ = ola.Step()
	_, _ = ola.Step()
	if _, err := ola.Step(); err == nil {
		t.Error("OLA Step after done should error")
	}
}

func TestCDMScaledIntermediateCount(t *testing.T) {
	cat := synthSessions(1000, 10)
	q, _ := plan.Compile(`SELECT COUNT(*) FROM sessions`, cat)
	cdm, _ := NewCDM(q, cat, 10)
	u, _ := cdm.Step()
	got, _ := u.Rows[0][0].AsFloat()
	if got != 1000 {
		t.Errorf("scaled count after batch 1 = %v", got)
	}
}

// TestCDMFinalMatchesExactAcrossSuite checks the CDM baseline produces
// the exact answer at completion for every evaluation query (it is the
// comparison system of Figure 3(b), so its correctness matters as much
// as its cost).
func TestCDMFinalMatchesExactAcrossSuite(t *testing.T) {
	for _, wq := range workload.Suite() {
		var cat *storage.Catalog
		if wq.Dataset == "conviva" {
			cat = workload.ConvivaCatalog(3000, 11)
		} else {
			cat = workload.TPCHCatalog(3000, 25, 12)
		}
		q, err := plan.Compile(wq.SQL, cat)
		if err != nil {
			t.Fatalf("%s: %v", wq.Name, err)
		}
		exact, err := exec.Run(q, cat)
		if err != nil {
			t.Fatalf("%s: %v", wq.Name, err)
		}
		q2, _ := plan.Compile(wq.SQL, cat)
		cdm, err := NewCDM(q2, cat, 6)
		if err != nil {
			t.Fatalf("%s: %v", wq.Name, err)
		}
		var last *Update
		for !cdm.Done() {
			u, err := cdm.Step()
			if err != nil {
				t.Fatalf("%s: %v", wq.Name, err)
			}
			last = u
		}
		if len(last.Rows) != len(exact.Rows) {
			t.Fatalf("%s: rows %d vs %d", wq.Name, len(last.Rows), len(exact.Rows))
		}
		// spot-check aggregate mass: sum of all numeric cells
		sum := func(rows []types.Row) float64 {
			var s float64
			for _, r := range rows {
				for _, v := range r {
					if f, ok := v.AsFloat(); ok {
						s += f
					}
				}
			}
			return s
		}
		a, b := sum(last.Rows), sum(exact.Rows)
		if math.Abs(a-b) > 1e-6*(1+math.Abs(b)) {
			t.Errorf("%s: cell mass %v vs %v", wq.Name, a, b)
		}
	}
}
