package otrace

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
)

// chromeEvent is one entry of the Chrome trace-event format
// (Perfetto/about:tracing loadable). Durations and timestamps are in
// microseconds; "X" is a complete span, "i" an instant, "M" metadata.
type chromeEvent struct {
	Name  string         `json:"name"`
	Phase string         `json:"ph"`
	Ts    float64        `json:"ts"`
	Dur   float64        `json:"dur,omitempty"`
	Pid   int            `json:"pid"`
	Tid   int            `json:"tid"`
	Scope string         `json:"s,omitempty"`
	Args  map[string]any `json:"args,omitempty"`
}

type chromeTrace struct {
	TraceEvents []chromeEvent `json:"traceEvents"`
}

// WriteChromeTrace serializes the tracer's spans and instants as a
// Chrome trace-event JSON object: pid 1 is the query, tids map to the
// controller (0) and pool workers (1..P). Open spans are clamped to
// the current clock so a mid-flight export still nests.
func (t *Tracer) WriteChromeTrace(w io.Writer) error {
	if t == nil {
		_, err := io.WriteString(w, `{"traceEvents":[]}`)
		return err
	}
	now := t.now()
	spans := t.Spans()
	instants := t.Instants()
	label := t.Label()
	if label == "" {
		label = "online query"
	}

	evs := make([]chromeEvent, 0, len(spans)+len(instants)+8)
	evs = append(evs, chromeEvent{
		Name: "process_name", Phase: "M", Pid: 1,
		Args: map[string]any{"name": label},
	})
	tids := map[int]bool{}
	for _, s := range spans {
		tids[int(s.Tid)] = true
	}
	for _, i := range instants {
		tids[int(i.Tid)] = true
	}
	order := make([]int, 0, len(tids))
	for tid := range tids {
		order = append(order, tid)
	}
	sort.Ints(order)
	for _, tid := range order {
		name := "controller"
		if tid > 0 {
			name = fmt.Sprintf("worker %d", tid-1)
		}
		evs = append(evs, chromeEvent{
			Name: "thread_name", Phase: "M", Pid: 1, Tid: tid,
			Args: map[string]any{"name": name},
		})
	}
	for _, s := range spans {
		end := s.End
		if end < s.Start {
			end = now
		}
		args := map[string]any{"id": uint64(s.ID)}
		if s.Parent != 0 {
			args["parent"] = uint64(s.Parent)
		}
		if s.Batch >= 0 {
			args["batch"] = s.Batch
		}
		if s.Block >= 0 {
			args["block"] = s.Block
		}
		evs = append(evs, chromeEvent{
			Name: s.Name, Phase: "X",
			Ts: float64(s.Start) / 1e3, Dur: float64(end-s.Start) / 1e3,
			Pid: 1, Tid: int(s.Tid), Args: args,
		})
	}
	for _, i := range instants {
		args := map[string]any{"seq": i.Seq}
		if i.Batch >= 0 {
			args["batch"] = i.Batch
		}
		if i.Note != "" {
			args["note"] = i.Note
		}
		evs = append(evs, chromeEvent{
			Name: i.Name, Phase: "i", Scope: "t",
			Ts: float64(i.Ts) / 1e3, Pid: 1, Tid: int(i.Tid), Args: args,
		})
	}
	enc := json.NewEncoder(w)
	return enc.Encode(chromeTrace{TraceEvents: evs})
}

// jsonlSpan is the JSONL export shape — one span or instant per line.
type jsonlSpan struct {
	Kind   string `json:"kind"` // "span" or "instant"
	Name   string `json:"name"`
	Tid    int32  `json:"tid"`
	Batch  int32  `json:"batch,omitempty"`
	Block  int32  `json:"block,omitempty"`
	ID     uint64 `json:"id,omitempty"`
	Parent uint64 `json:"parent,omitempty"`
	Seq    uint64 `json:"seq,omitempty"`
	StartN int64  `json:"start_ns"`
	EndN   int64  `json:"end_ns,omitempty"`
	Note   string `json:"note,omitempty"`
}

// WriteJSONL writes spans then instants, one JSON object per line.
func (t *Tracer) WriteJSONL(w io.Writer) error {
	if t == nil {
		return nil
	}
	now := t.now()
	enc := json.NewEncoder(w)
	for _, s := range t.Spans() {
		end := s.End
		if end < s.Start {
			end = now
		}
		rec := jsonlSpan{
			Kind: "span", Name: s.Name, Tid: s.Tid,
			Batch: s.Batch, Block: s.Block,
			ID: uint64(s.ID), Parent: uint64(s.Parent),
			StartN: s.Start, EndN: end,
		}
		if err := enc.Encode(rec); err != nil {
			return err
		}
	}
	for _, i := range t.Instants() {
		rec := jsonlSpan{
			Kind: "instant", Name: i.Name, Tid: i.Tid,
			Batch: i.Batch, Seq: i.Seq, StartN: i.Ts, Note: i.Note,
		}
		if err := enc.Encode(rec); err != nil {
			return err
		}
	}
	return nil
}

// ValidateNesting checks the structural invariants of a span set:
// every non-zero parent exists, every child interval lies within its
// parent's, and every worker "task" span has a "batch" ancestor.
// Open spans (End < Start) are clamped to the maximum observed edge
// before checking, matching the exporters.
func ValidateNesting(spans []Span) error {
	byID := make(map[SpanID]Span, len(spans))
	var maxEdge int64
	for _, s := range spans {
		if s.ID == 0 {
			return fmt.Errorf("span %q has zero ID", s.Name)
		}
		if _, dup := byID[s.ID]; dup {
			return fmt.Errorf("duplicate span ID %d", s.ID)
		}
		byID[s.ID] = s
		if s.Start > maxEdge {
			maxEdge = s.Start
		}
		if s.End > maxEdge {
			maxEdge = s.End
		}
	}
	end := func(s Span) int64 {
		if s.End < s.Start {
			return maxEdge
		}
		return s.End
	}
	for _, s := range spans {
		if s.Parent == 0 {
			continue
		}
		p, ok := byID[s.Parent]
		if !ok {
			return fmt.Errorf("span %q (id %d) references missing parent %d",
				s.Name, s.ID, s.Parent)
		}
		if s.Start < p.Start || end(s) > end(p) {
			return fmt.Errorf("span %q [%d,%d] escapes parent %q [%d,%d]",
				s.Name, s.Start, end(s), p.Name, p.Start, end(p))
		}
	}
	for _, s := range spans {
		if s.Name != "task" {
			continue
		}
		found := false
		for cur := s; cur.Parent != 0; {
			p, ok := byID[cur.Parent]
			if !ok {
				break
			}
			if p.Name == "batch" {
				found = true
				break
			}
			cur = p
		}
		if !found {
			return fmt.Errorf("task span id %d (tid %d, batch %d) has no batch ancestor",
				s.ID, s.Tid, s.Batch)
		}
	}
	return nil
}

// ValidateChromeJSON parses Chrome trace JSON previously produced by
// WriteChromeTrace and re-checks span nesting from the serialized
// args — the smoke-test entry point proving the artifact itself (not
// just the in-memory spans) carries a well-formed hierarchy.
func ValidateChromeJSON(data []byte) (nSpans, nInstants int, err error) {
	var tr struct {
		TraceEvents []struct {
			Name  string         `json:"name"`
			Phase string         `json:"ph"`
			Ts    float64        `json:"ts"`
			Dur   float64        `json:"dur"`
			Tid   int            `json:"tid"`
			Args  map[string]any `json:"args"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(data, &tr); err != nil {
		return 0, 0, fmt.Errorf("chrome trace: %w", err)
	}
	var spans []Span
	for _, ev := range tr.TraceEvents {
		switch ev.Phase {
		case "X":
			s := Span{
				Name:  ev.Name,
				Tid:   int32(ev.Tid),
				Batch: -1, Block: -1,
				Start: int64(ev.Ts * 1e3),
				End:   int64((ev.Ts + ev.Dur) * 1e3),
			}
			if v, ok := ev.Args["id"].(float64); ok {
				s.ID = SpanID(v)
			}
			if v, ok := ev.Args["parent"].(float64); ok {
				s.Parent = SpanID(v)
			}
			if v, ok := ev.Args["batch"].(float64); ok {
				s.Batch = int32(v)
			}
			spans = append(spans, s)
		case "i":
			nInstants++
		}
	}
	// Containment is checked with a 1µs tolerance: the export rounds
	// edges to microseconds, which can nudge a child edge past its
	// parent by up to one quantum.
	const tol = 1000 // ns
	byID := make(map[SpanID]Span, len(spans))
	for _, s := range spans {
		if s.ID == 0 {
			return 0, 0, fmt.Errorf("chrome trace: span %q missing args.id", s.Name)
		}
		if _, dup := byID[s.ID]; dup {
			return 0, 0, fmt.Errorf("chrome trace: duplicate span id %d", s.ID)
		}
		byID[s.ID] = s
	}
	for _, s := range spans {
		if s.Parent == 0 {
			continue
		}
		p, ok := byID[s.Parent]
		if !ok {
			return 0, 0, fmt.Errorf("chrome trace: span %q (id %d) references missing parent %d",
				s.Name, s.ID, s.Parent)
		}
		if s.Start < p.Start-tol || s.End > p.End+tol {
			return 0, 0, fmt.Errorf("chrome trace: span %q [%d,%d] escapes parent %q [%d,%d]",
				s.Name, s.Start, s.End, p.Name, p.Start, p.End)
		}
	}
	for _, s := range spans {
		if s.Name != "task" {
			continue
		}
		found := false
		for cur := s; cur.Parent != 0; {
			p, ok := byID[cur.Parent]
			if !ok {
				break
			}
			if p.Name == "batch" {
				found = true
				break
			}
			cur = p
		}
		if !found {
			return 0, 0, fmt.Errorf("chrome trace: task span id %d has no batch ancestor", s.ID)
		}
	}
	return len(spans), nInstants, nil
}
