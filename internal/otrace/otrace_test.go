package otrace

import (
	"bytes"
	"encoding/json"
	"strings"
	"sync"
	"testing"
	"time"

	"fluodb/internal/testutil"
)

func TestNilTracerIsNoOp(t *testing.T) {
	var tr *Tracer
	if s := tr.Slab(0); s != nil {
		t.Fatalf("nil tracer returned non-nil slab")
	}
	var sl *Slab
	id := sl.Begin("x", 0, -1, -1)
	if id != 0 {
		t.Fatalf("nil slab Begin = %d, want 0", id)
	}
	sl.End(id)
	tr.Instant("ev", 0, 0, 1, "")
	tr.SetLabel("q")
	if got := tr.Spans(); got != nil {
		t.Fatalf("nil tracer Spans = %v", got)
	}
	if got := tr.Instants(); got != nil {
		t.Fatalf("nil tracer Instants = %v", got)
	}
	if tr.DroppedSpans() != 0 || tr.DroppedInstants() != 0 {
		t.Fatalf("nil tracer reports drops")
	}
	var buf bytes.Buffer
	if err := tr.WriteChromeTrace(&buf); err != nil {
		t.Fatal(err)
	}
	var parsed map[string]any
	if err := json.Unmarshal(buf.Bytes(), &parsed); err != nil {
		t.Fatalf("nil export not valid JSON: %v", err)
	}
	if err := tr.WriteJSONL(&buf); err != nil {
		t.Fatal(err)
	}
}

func TestSpanHierarchyRecording(t *testing.T) {
	tr := NewTracer(64)
	tr.SetLabel("SELECT AVG(x)")
	ctl := tr.Slab(0)
	q := ctl.Begin("query", 0, -1, -1)
	b := ctl.Begin("batch", q, 0, -1)
	f := ctl.Begin("feed", b, 0, 2)
	w := tr.Slab(1)
	task := w.Begin("task", f, 0, 2)
	w.End(task)
	ctl.End(f)
	ctl.End(b)
	ctl.End(q)

	spans := tr.Spans()
	if len(spans) != 4 {
		t.Fatalf("got %d spans, want 4", len(spans))
	}
	if err := ValidateNesting(spans); err != nil {
		t.Fatalf("nesting: %v", err)
	}
	byName := map[string]Span{}
	for _, s := range spans {
		byName[s.Name] = s
	}
	if byName["task"].Tid != 1 || byName["query"].Tid != 0 {
		t.Fatalf("track assignment wrong: %+v", byName)
	}
	if byName["feed"].Block != 2 {
		t.Fatalf("feed block = %d, want 2", byName["feed"].Block)
	}
	if byName["batch"].Parent != byName["query"].ID {
		t.Fatalf("batch parent mismatch")
	}
	for _, s := range spans {
		if s.End < s.Start {
			t.Fatalf("span %q left open", s.Name)
		}
		if s.Dur() < 0 {
			t.Fatalf("negative duration on %q", s.Name)
		}
	}
}

func TestSlabOverflowDropsNotCorrupts(t *testing.T) {
	tr := NewTracer(2)
	sl := tr.Slab(0)
	a := sl.Begin("a", 0, -1, -1)
	b := sl.Begin("b", a, -1, -1)
	c := sl.Begin("c", b, -1, -1) // full: dropped
	if c != 0 {
		t.Fatalf("overflow Begin = %d, want 0", c)
	}
	sl.End(c) // must be harmless
	sl.End(b)
	sl.End(a)
	if got := sl.Dropped(); got != 1 {
		t.Fatalf("Dropped = %d, want 1", got)
	}
	if got := tr.DroppedSpans(); got != 1 {
		t.Fatalf("DroppedSpans = %d, want 1", got)
	}
	if err := ValidateNesting(tr.Spans()); err != nil {
		t.Fatalf("nesting after overflow: %v", err)
	}
}

func TestInstantBufferBound(t *testing.T) {
	tr := NewTracer(8)
	tr.maxEvents = 4
	for i := 0; i < 10; i++ {
		tr.Instant("ev", 0, i, uint64(i), "")
	}
	if got := len(tr.Instants()); got != 4 {
		t.Fatalf("kept %d instants, want 4", got)
	}
	if got := tr.DroppedInstants(); got != 6 {
		t.Fatalf("DroppedInstants = %d, want 6", got)
	}
}

func TestConcurrentSlabsNoRace(t *testing.T) {
	base := testutil.GoroutineBaseline()
	tr := NewTracer(4096)
	ctl := tr.Slab(0)
	q := ctl.Begin("query", 0, -1, -1)
	var wg sync.WaitGroup
	for w := 1; w <= 4; w++ {
		sl := tr.Slab(w) // create outside the goroutine, like ensurePool
		wg.Add(1)
		go func(sl *Slab) {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				id := sl.Begin("task", q, i, 0)
				tr.Instant("tick", int(sl.tid), i, uint64(i), "")
				sl.End(id)
			}
		}(sl)
	}
	wg.Wait()
	ctl.End(q)
	spans := tr.Spans()
	if len(spans) != 1+4*500 {
		t.Fatalf("got %d spans, want %d", len(spans), 1+4*500)
	}
	testutil.VerifyNoLeaks(t, base)
}

func TestChromeTraceExportRoundTrip(t *testing.T) {
	tr := NewTracer(64)
	tr.SetLabel("roundtrip")
	ctl := tr.Slab(0)
	q := ctl.Begin("query", 0, -1, -1)
	b := ctl.Begin("batch", q, 0, -1)
	f := ctl.Begin("feed", b, 0, 0)
	w := tr.Slab(2)
	task := w.Begin("task", f, 0, 0)
	time.Sleep(time.Millisecond)
	tr.Instant("fault-injected", 2, 0, 7, "site=shard")
	w.End(task)
	ctl.End(f)
	ctl.End(b)
	ctl.End(q)

	var buf bytes.Buffer
	if err := tr.WriteChromeTrace(&buf); err != nil {
		t.Fatal(err)
	}
	ns, ni, err := ValidateChromeJSON(buf.Bytes())
	if err != nil {
		t.Fatalf("exported trace invalid: %v", err)
	}
	if ns != 4 || ni != 1 {
		t.Fatalf("parsed %d spans / %d instants, want 4 / 1", ns, ni)
	}
	text := buf.String()
	for _, want := range []string{`"process_name"`, `"roundtrip"`, `"worker 1"`, `"controller"`, `"fault-injected"`} {
		if !strings.Contains(text, want) {
			t.Fatalf("export missing %q:\n%s", want, text)
		}
	}
}

func TestJSONLExport(t *testing.T) {
	tr := NewTracer(8)
	ctl := tr.Slab(0)
	q := ctl.Begin("query", 0, -1, -1)
	ctl.End(q)
	tr.Instant("commit", 0, 0, 3, "")
	var buf bytes.Buffer
	if err := tr.WriteJSONL(&buf); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 2 {
		t.Fatalf("got %d lines, want 2", len(lines))
	}
	var rec map[string]any
	for _, ln := range lines {
		if err := json.Unmarshal([]byte(ln), &rec); err != nil {
			t.Fatalf("bad JSONL line %q: %v", ln, err)
		}
	}
	if rec["kind"] != "instant" || rec["seq"] != float64(3) {
		t.Fatalf("last line = %v", rec)
	}
}

func TestValidateNestingCatchesEscape(t *testing.T) {
	spans := []Span{
		{ID: makeSpanID(0, 0), Name: "batch", Start: 100, End: 200},
		{ID: makeSpanID(0, 1), Parent: makeSpanID(0, 0), Name: "task", Start: 150, End: 300},
	}
	if err := ValidateNesting(spans); err == nil {
		t.Fatal("escaping child not detected")
	}
	spans[1].End = 180
	if err := ValidateNesting(spans); err != nil {
		t.Fatalf("contained child rejected: %v", err)
	}
	orphan := []Span{
		{ID: makeSpanID(1, 0), Parent: makeSpanID(9, 9), Name: "task", Start: 1, End: 2},
	}
	if err := ValidateNesting(orphan); err == nil {
		t.Fatal("missing parent not detected")
	}
	noBatch := []Span{
		{ID: makeSpanID(0, 0), Name: "query", Start: 0, End: 100},
		{ID: makeSpanID(1, 0), Parent: makeSpanID(0, 0), Name: "task", Start: 1, End: 2},
	}
	if err := ValidateNesting(noBatch); err == nil {
		t.Fatal("task without batch ancestor not detected")
	}
}

func TestOpenSpansClampInExport(t *testing.T) {
	tr := NewTracer(8)
	ctl := tr.Slab(0)
	q := ctl.Begin("query", 0, -1, -1)
	ctl.Begin("batch", q, 0, -1) // deliberately left open
	var buf bytes.Buffer
	if err := tr.WriteChromeTrace(&buf); err != nil {
		t.Fatal(err)
	}
	if _, _, err := ValidateChromeJSON(buf.Bytes()); err != nil {
		t.Fatalf("open-span export invalid: %v", err)
	}
}
