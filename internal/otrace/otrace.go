// Package otrace records hierarchical spans for online queries:
// query → mini-batch → phase → per-worker shard task, plus prefetch
// fills, serial-retry ladders, reclassification passes and
// checkpoint/resume edges. It follows the same discipline as the
// phase profiler (DESIGN.md §9): span edges happen at batch/phase
// granularity — never per tuple — each edge costs one monotonic clock
// read, and spans land in preallocated per-track slabs so the steady
// state allocates nothing. Every method is nil-safe: a nil *Tracer or
// nil *Slab is a no-op, so call sites need no `if enabled` guards.
package otrace

import (
	"sync"
	"time"
)

// SpanID identifies a span within one Tracer. The zero value means
// "no span" — Begin on a full slab returns 0, and End/child calls with
// a zero ID are no-ops, so overflow degrades to dropped spans rather
// than corrupt nesting. Encoding: bits 40+ hold tid+1, low 40 bits
// hold the slab-local index+1.
type SpanID uint64

func makeSpanID(tid, idx int) SpanID {
	return SpanID(uint64(tid+1)<<40 | uint64(idx+1))
}

func (id SpanID) tid() int   { return int(uint64(id)>>40) - 1 }
func (id SpanID) index() int { return int(uint64(id)&(1<<40-1)) - 1 }

// Span is one timed interval. Start/End are nanoseconds since the
// tracer epoch (one shared time.Time, so spans from different slabs
// compare directly). End is -1 while the span is open.
type Span struct {
	ID     SpanID
	Parent SpanID
	Name   string
	Tid    int32 // track: 0 = controller, 1..P = workers
	Batch  int32 // mini-batch index, -1 if not batch-scoped
	Block  int32 // block (runner) index, -1 if not block-scoped
	Start  int64
	End    int64
}

// Dur returns the span duration, clamping open spans to zero.
func (s Span) Dur() time.Duration {
	if s.End < s.Start {
		return 0
	}
	return time.Duration(s.End - s.Start)
}

// Instant is a point event attached to the timeline — the span-side
// mirror of a core.Tracer ring event, correlated by Seq and Batch.
type Instant struct {
	Name  string
	Tid   int32
	Batch int32
	Seq   uint64 // core trace ring sequence number
	Ts    int64  // ns since tracer epoch
	Note  string
}

// Slab is a preallocated per-track span store. One goroutine owns a
// slab's Begin/End calls at any time (controller or one pool worker);
// the mutex only serializes against snapshot reads, so it is
// uncontended on the hot path.
type Slab struct {
	tr      *Tracer
	tid     int
	mu      sync.Mutex
	spans   []Span
	dropped int
}

// Tracer holds the epoch, the per-track slabs and the instant-event
// buffer for one query.
type Tracer struct {
	mu        sync.Mutex
	epoch     time.Time
	slabs     []*Slab
	events    []Instant
	maxEvents int
	dropped   int // instants dropped after the buffer filled
	slabCap   int
	label     string
}

const (
	// DefaultSlabCapacity bounds spans per track. Batch-granularity
	// spans accrue a handful per batch per track, so this covers
	// thousands of batches.
	DefaultSlabCapacity = 1 << 14
	// DefaultEventCapacity bounds mirrored instant events.
	DefaultEventCapacity = 1 << 13
)

// NewTracer creates a span tracer. cap <= 0 picks DefaultSlabCapacity
// for each slab.
func NewTracer(cap int) *Tracer {
	if cap <= 0 {
		cap = DefaultSlabCapacity
	}
	return &Tracer{
		epoch:     time.Now(),
		maxEvents: DefaultEventCapacity,
		slabCap:   cap,
	}
}

// SetLabel names the traced query; exporters surface it as the
// process name.
func (t *Tracer) SetLabel(s string) {
	if t == nil {
		return
	}
	t.mu.Lock()
	t.label = s
	t.mu.Unlock()
}

// Label returns the query label set via SetLabel.
func (t *Tracer) Label() string {
	if t == nil {
		return ""
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.label
}

// now returns nanoseconds since the tracer epoch (monotonic).
func (t *Tracer) now() int64 { return int64(time.Since(t.epoch)) }

// Slab returns the slab for track tid, creating it (and any gaps) on
// first use. Slabs are created outside the steady state — at pool
// construction or first batch — so the allocation here never lands on
// a per-tuple path.
func (t *Tracer) Slab(tid int) *Slab {
	if t == nil || tid < 0 {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	for len(t.slabs) <= tid {
		t.slabs = append(t.slabs, nil)
	}
	if t.slabs[tid] == nil {
		t.slabs[tid] = &Slab{tr: t, tid: tid, spans: make([]Span, 0, t.slabCap)}
	}
	return t.slabs[tid]
}

// Begin opens a span on the slab and returns its ID. A full slab
// counts a drop and returns 0. batch/block < 0 mean unscoped.
func (s *Slab) Begin(name string, parent SpanID, batch, block int) SpanID {
	if s == nil {
		return 0
	}
	ts := s.tr.now()
	s.mu.Lock()
	if len(s.spans) == cap(s.spans) {
		s.dropped++
		s.mu.Unlock()
		return 0
	}
	id := makeSpanID(s.tid, len(s.spans))
	s.spans = append(s.spans, Span{
		ID: id, Parent: parent, Name: name,
		Tid: int32(s.tid), Batch: int32(batch), Block: int32(block),
		Start: ts, End: -1,
	})
	s.mu.Unlock()
	return id
}

// End closes a span opened on this slab. Zero or foreign IDs are
// ignored (a dropped Begin yields a harmless End).
func (s *Slab) End(id SpanID) {
	if s == nil || id == 0 {
		return
	}
	ts := s.tr.now()
	s.mu.Lock()
	if i := id.index(); id.tid() == s.tid && i >= 0 && i < len(s.spans) {
		s.spans[i].End = ts
	}
	s.mu.Unlock()
}

// Dropped reports spans discarded because the slab was full.
func (s *Slab) Dropped() int {
	if s == nil {
		return 0
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.dropped
}

// Instant records a point event. Safe from any goroutine.
func (t *Tracer) Instant(name string, tid, batch int, seq uint64, note string) {
	if t == nil {
		return
	}
	ts := t.now()
	t.mu.Lock()
	if len(t.events) >= t.maxEvents {
		t.dropped++
	} else {
		t.events = append(t.events, Instant{
			Name: name, Tid: int32(tid), Batch: int32(batch),
			Seq: seq, Ts: ts, Note: note,
		})
	}
	t.mu.Unlock()
}

// DroppedInstants reports instant events discarded after the buffer
// filled.
func (t *Tracer) DroppedInstants() int {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.dropped
}

// Spans snapshots all recorded spans across slabs, ordered by track
// then record order. Open spans are returned with End = -1.
func (t *Tracer) Spans() []Span {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	slabs := append([]*Slab(nil), t.slabs...)
	t.mu.Unlock()
	var out []Span
	for _, s := range slabs {
		if s == nil {
			continue
		}
		s.mu.Lock()
		out = append(out, s.spans...)
		s.mu.Unlock()
	}
	return out
}

// Instants snapshots recorded instant events in emit order.
func (t *Tracer) Instants() []Instant {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return append([]Instant(nil), t.events...)
}

// DroppedSpans totals drops across all slabs.
func (t *Tracer) DroppedSpans() int {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	slabs := append([]*Slab(nil), t.slabs...)
	t.mu.Unlock()
	n := 0
	for _, s := range slabs {
		n += s.Dropped()
	}
	return n
}
