package core

import (
	"time"

	"fluodb/internal/bootstrap"
	"fluodb/internal/colstore"
	"fluodb/internal/expr"
	"fluodb/internal/types"
)

// The columnar fold path. When a block's mini-batch hot loop is shaped
// right — no dimension joins, banked (all-CLT) aggregates, plain-column
// group keys and aggregate arguments, a vectorizable certain WHERE —
// each shard sweeps whole colstore segments instead of walking boxed
// rows: the predicate runs as a compiled kernel into a tri-state vector,
// the selection feeds the banked accumulators straight from the typed
// banks, and group keys resolve through a word-code memo that touches
// the canonical (hash + KeyEqual) path once per distinct key per sweep.
//
// The path is strictly an execution strategy, never a semantics change:
// every accumulator cell receives the same float additions in the same
// ascending-row order as the row path, groups are created at the same
// first-occurrence positions, bootstrap weights/subsample membership are
// the same pure counter hashes, and uncertain rows alias the same source
// tuples — so snapshots, CIs and uncertain sets are bit-identical
// (pinned by TestColumnarBitIdentical across seeds and parallelism).
// Anything outside the shape falls back per batch (or per block) to the
// row path; Options.RowPath forces the fallback globally.

// colPlan is a block's columnar eligibility decision plus the resolved
// column layout, built once on the controller and shared read-only by
// all workers.
type colPlan struct {
	ok bool
	ct *colstore.Table
	// gbCols is the fact-schema column of each GROUP BY expression.
	gbCols []int
	// aggCols is the fact-schema column of each aggregate argument, -1
	// for constant arguments; aggFloats flags float banks (else int).
	aggCols   []int
	aggFloats []bool
	// Constant-argument values, pre-gated: aggConstNull flags SQL NULL,
	// aggConstF holds the AsFloat value, aggConstOK its validity.
	aggConstNull []bool
	aggConstF    []float64
	aggConstOK   []bool
	// Bank-stream aliases: aliasW[i]/aliasV[i] name the aggregate whose
	// physical bank cells carry aggregate i's replica stream. Aggregates
	// over the same plain column receive bit-identical bank additions —
	// COUNT/SUM/AVG all add Σ w·repW to W (their gates coincide on clean
	// columns: SUM/AVG arguments are numeric by eligibility, so non-NULL
	// ⟺ folds), and SUM/AVG both add Σ v·w·repW to V — so the columnar
	// fold writes each distinct stream once; reads redirect through the
	// same aliases (installed on the runner table).
	aliasW []int
	aliasV []int
	// Fused kernel shape: when every aggregate reads the same plain
	// column, the whole bank fold collapses to at most one W stream and
	// one V stream, and weight generation fuses into the fold loop.
	// fuse is that eligibility; fuseCol the shared column; fusePrimV the
	// V-stream owner (-1 when all aggregates are COUNTs).
	fuse      bool
	fuseCol   int
	fusePrimV int
}

// ensureColPlan builds the block's columnar plan on first use. Must run
// on the controller goroutine before workers are submitted (workers
// share the runner shallowly and read the plan pointer).
func (r *blockRunner) ensureColPlan() {
	if r.colPl != nil {
		return
	}
	r.colPl = r.buildColPlan()
}

func (r *blockRunner) buildColPlan() *colPlan {
	p := &colPlan{}
	e := r.eng
	b := r.b
	if e.opt.RowPath || len(b.Dims) > 0 || !r.tab.banked || len(b.Aggs) == 0 {
		return p
	}
	tbl, ok := e.cat.Get(b.Input.Fact)
	if !ok {
		return p
	}
	ct := tbl.Columnar()
	clean := func(idx int) bool {
		return idx >= 0 && idx < len(ct.Schema) && !ct.Mixed[idx]
	}
	for _, g := range b.GroupBy {
		c, isCol := g.(*expr.Col)
		if !isCol || !clean(c.Idx) {
			return p
		}
		p.gbCols = append(p.gbCols, c.Idx)
	}
	for i := range b.Aggs {
		switch a := b.Aggs[i].Arg.(type) {
		case *expr.Col:
			if !clean(a.Idx) {
				return p
			}
			k := ct.Schema[a.Idx].Type
			// COUNT only needs the null bitmap; SUM/AVG read the value and
			// need a numeric/bool bank (strings would never fold anyway, but
			// keeping them on the row path avoids a do-nothing special case).
			if r.cltKinds[i] != cltCount && k != types.KindInt && k != types.KindFloat && k != types.KindBool {
				return p
			}
			p.aggCols = append(p.aggCols, a.Idx)
			p.aggFloats = append(p.aggFloats, k == types.KindFloat)
			p.aggConstNull = append(p.aggConstNull, false)
			p.aggConstF = append(p.aggConstF, 0)
			p.aggConstOK = append(p.aggConstOK, false)
		case *expr.Const:
			f, fok := a.V.AsFloat()
			p.aggCols = append(p.aggCols, -1)
			p.aggFloats = append(p.aggFloats, false)
			p.aggConstNull = append(p.aggConstNull, a.V.IsNull())
			p.aggConstF = append(p.aggConstF, f)
			p.aggConstOK = append(p.aggConstOK, fok)
		default:
			return p
		}
	}
	if r.certainWhere != nil && expr.CompileKernel(r.certainWhere, ct) == nil {
		return p
	}
	p.ct = ct
	p.ok = true

	// Bank-stream dedup: alias each aggregate's W (and, for SUM/AVG, V)
	// stream to the first aggregate over the same plain column. Constant
	// arguments keep their own streams (identity).
	p.aliasW = make([]int, len(b.Aggs))
	p.aliasV = make([]int, len(b.Aggs))
	for i := range p.aliasW {
		p.aliasW[i], p.aliasV[i] = i, i
	}
	for i, c := range p.aggCols {
		if c < 0 {
			continue
		}
		for j := 0; j < i; j++ {
			if p.aggCols[j] == c {
				p.aliasW[i] = p.aliasW[j]
				break
			}
		}
		if r.cltKinds[i] != cltCount {
			for j := 0; j < i; j++ {
				if p.aggCols[j] == c && r.cltKinds[j] != cltCount {
					p.aliasV[i] = p.aliasV[j]
					break
				}
			}
		}
	}
	// Aliased reads must be installed on the runner table before the
	// first snapshot; workers fold into shard tables through the plan's
	// aliases and merge cell-wise, so shard tables need no read aliases.
	r.tab.bankOfW = p.aliasW
	r.tab.bankOfV = p.aliasV

	// Fused-kernel eligibility: one shared plain column means one W
	// stream (owned by aggregate 0) and at most one V stream.
	p.fuse = true
	p.fuseCol = p.aggCols[0]
	p.fusePrimV = -1
	for i, c := range p.aggCols {
		if c < 0 || c != p.fuseCol {
			p.fuse = false
			break
		}
		if r.cltKinds[i] != cltCount && p.fusePrimV < 0 {
			p.fusePrimV = i
		}
	}
	return p
}

// colScratch is one sweeper's (serial runner or worker shard) reusable
// columnar state: the compiled kernel (per-sweeper — kernels own scratch
// and are not goroutine-safe), tri/selection vectors, weight scratch,
// and the group-key word memo.
type colScratch struct {
	kernel     *expr.Kernel
	kernelInit bool
	tri        []uint8
	sel        []int32
	wf         []float64
	wbuf       []uint8
	// Group memo: open-addressed map from the key's word codes (one
	// 64-bit physical code per group-by column plus a null-bit word) to
	// the resolved table entry. Word codes are equal for identical stored
	// values but may differ for values that merely compare equal (-0.0
	// vs 0.0), so a memo miss resolves through the canonical
	// entryCurrent path — the memo is pure memoization, never identity.
	memoKeys    []uint64 // stride = len(gbCols)+1
	memoSlots   []int32  // 1-based into memoEntries/memoKeys rows
	memoMask    uint64
	memoEntries []*onlineEntry
	sole        *onlineEntry // cached sole entry of scalar blocks
	// sweeps counts columnar segment sweeps (observability for tests and
	// the alloc gate: proves the fast path actually engaged).
	sweeps int64
}

// memoReset clears the memo for a new sweep. Entries may be recycled by
// shard tables between batches, so cached pointers never outlive the
// colFeed call that resolved them.
func (cs *colScratch) memoReset() {
	for i := range cs.memoSlots {
		cs.memoSlots[i] = 0
	}
	cs.memoKeys = cs.memoKeys[:0]
	cs.memoEntries = cs.memoEntries[:0]
	cs.sole = nil
}

func (cs *colScratch) memoGrow(stride int) {
	n := len(cs.memoSlots) * 2
	if n < 64 {
		n = 64
	}
	if cap(cs.memoSlots) >= n {
		cs.memoSlots = cs.memoSlots[:n]
		for i := range cs.memoSlots {
			cs.memoSlots[i] = 0
		}
	} else {
		cs.memoSlots = make([]int32, n)
	}
	cs.memoMask = uint64(n - 1)
	for e := 0; e < len(cs.memoEntries); e++ {
		h := memoHash(cs.memoKeys[e*stride : (e+1)*stride])
		i := h & cs.memoMask
		for cs.memoSlots[i] != 0 {
			i = (i + 1) & cs.memoMask
		}
		cs.memoSlots[i] = int32(e + 1)
	}
}

func memoHash(words []uint64) uint64 {
	h := uint64(0x9E3779B97F4A7C15)
	for _, w := range words {
		h = bootstrap.Mix64(h ^ w)
	}
	return h
}

// colFeed sweeps rows[0:len) (= global rows baseIdx..) through the
// columnar classify+fold path into the given targets. It returns false
// — having touched nothing — when the batch is not aligned with the
// columnar cache, letting the caller fall back to the row loop.
func (r *blockRunner) colFeed(rows []types.Row, baseIdx int, ts *tableStream, te *triEnv, tab *onlineTable, uncertain *[]uncertainRow, arena *weightArena, folds *int64, acc *phaseAcc, cs *colScratch, pf *weightPrefetch) bool {
	p := r.colPl
	if p == nil || !p.ok || cs == nil {
		return false
	}
	ct := p.ct
	if !ct.Aligned(rows, baseIdx) {
		return false
	}
	if r.certainWhere != nil && !cs.kernelInit {
		cs.kernel = expr.CompileKernel(r.certainWhere, ct)
		cs.kernelInit = true
	}
	if r.certainWhere != nil && cs.kernel == nil {
		return false
	}
	if len(rows) == 0 {
		return true
	}

	e := r.eng
	prof := e.profile
	trials := e.opt.Trials
	if cap(cs.tri) < ct.SegSize {
		cs.tri = make([]uint8, ct.SegSize)
	}
	if cap(cs.wf) < trials {
		cs.wf = make([]float64, trials)
	}
	if cap(cs.wbuf) < trials {
		cs.wbuf = make([]uint8, trials)
	}
	cs.memoReset()
	tab.initKeyScratch(r.b)

	// Direct float-weight generation (skipping the uint8 round trip) is
	// only safe when nothing can retain uint8 weights: an uncertain
	// classification must hold the exact byte vector.
	directWeights := r.uncertainWhere == nil && pf == nil
	// wlut maps a Poisson(1) multiplicity (≤ 8; 16 slots so the masked
	// index elides bounds checks) to its pre-scaled float weight — the
	// identical float64(k)·repW product the row path computes per draw.
	var wlut [16]float64
	if directWeights {
		for k := range wlut {
			wlut[k] = float64(k) * ts.invP
		}
	}
	// The fused kernel folds weight generation into the bank loop; the
	// profiled path keeps the split loops so phase attribution (weights
	// vs fold) stays meaningful.
	fused := p.fuse && directWeights && !prof

	g := baseIdx
	end := baseIdx + len(rows)
	for g < end {
		seg, lo := ct.Segment(g)
		hi := lo + (end - g)
		if hi > seg.N {
			hi = seg.N
		}
		g += hi - lo
		cs.sweeps++

		var t0 time.Time
		if prof {
			t0 = time.Now()
		}
		// Classify the whole segment range in one kernel pass; the
		// selection preserves ascending row order, which is what keeps
		// accumulator addition sequences identical to the row loop.
		sel := cs.sel[:0]
		if cs.kernel != nil {
			tri := cs.tri[:seg.N]
			cs.kernel.EvalInto(tri, seg, lo, hi)
			for i := lo; i < hi; i++ {
				if tri[i] == expr.TriTrue {
					sel = append(sel, int32(i))
				}
			}
		} else {
			for i := lo; i < hi; i++ {
				sel = append(sel, int32(i))
			}
		}
		cs.sel = sel
		if prof {
			t1 := time.Now()
			acc.ns[phaseClassify] += int64(t1.Sub(t0))
		}

		if fused {
			for _, si := range sel {
				i := int(si)
				gi := seg.Base + i
				en := r.colEntry(tab, cs, ct, seg, i)
				r.colFoldFused(tab, p, en, seg, i, e.sampled(ts, gi),
					ts.weightBase+uint64(gi)*uint64(trials), &wlut)
				*folds++
			}
			continue
		}

		for _, si := range sel {
			i := int(si)
			gi := seg.Base + i
			if prof {
				t0 = time.Now()
			}
			// Subsample membership + per-trial weights: the same pure
			// counter hashes as the row path, computed only for rows that
			// survived the certain filter (they are per-row pure, so
			// skipping filtered rows changes nothing).
			var weights []uint8
			var wf []float64
			repW := 0.0
			if pf != nil {
				if ri := gi - pf.start; pf.sampled[ri] {
					weights = pf.weights[ri*trials : (ri+1)*trials]
					repW = ts.invP
				}
			} else if e.sampled(ts, gi) {
				repW = ts.invP
				if directWeights {
					// Fold-only consumption: prescale straight to floats via
					// the lut. float64(uint8(p)) == float64(p) for the Poisson
					// range, so the accumulator additions are bit-identical.
					wf = cs.wf[:trials]
					base := ts.weightBase + uint64(gi)*uint64(trials)
					for j := range wf {
						wf[j] = wlut[bootstrap.PoissonAt(base+uint64(j))&15]
					}
				} else {
					cs.wbuf = e.weightsInto(cs.wbuf, ts, gi)
					weights = cs.wbuf
				}
			}
			if repW > 0 && wf == nil && len(weights) > 0 {
				wf = cs.wf[:len(weights)]
				for j, w := range weights {
					wf[j] = float64(w) * repW
				}
			}
			if prof {
				t1 := time.Now()
				acc.ns[phaseWeights] += int64(t1.Sub(t0))
				t0 = t1
			}

			if r.uncertainWhere != nil {
				switch te.evalTri(r.uncertainWhere, seg.Rows[i]) {
				case triTrue:
					// fall through to fold below
				case triFalse:
					if prof {
						acc.ns[phaseClassify] += int64(time.Since(t0))
					}
					continue
				default:
					*uncertain = append(*uncertain, uncertainRow{
						row: seg.Rows[i], weights: arena.hold(weights), repW: repW})
					r.sampledIdxValid = false
					if prof {
						acc.ns[phaseClassify] += int64(time.Since(t0))
					}
					continue
				}
				if prof {
					t1 := time.Now()
					acc.ns[phaseClassify] += int64(t1.Sub(t0))
					t0 = t1
				}
			}

			en := r.colEntry(tab, cs, ct, seg, i)
			r.colFold(tab, p, en, ct, seg, i, wf, repW)
			*folds++
			if prof {
				acc.ns[phaseFold] += int64(time.Since(t0))
			}
		}
	}
	return true
}

// colEntry resolves the group entry of segment-local row i through the
// word-code memo, falling back to the canonical hash path on a miss so
// entry identity (and creation order) matches the row loop exactly.
func (r *blockRunner) colEntry(tab *onlineTable, cs *colScratch, ct *colstore.Table, seg *colstore.Segment, i int) *onlineEntry {
	p := r.colPl
	nk := len(p.gbCols)
	if nk == 0 {
		if cs.sole == nil {
			cs.sole = tab.entryCurrent(r.b)
		}
		return cs.sole
	}
	stride := nk + 1
	// Build the physical key: one word code per column + a null-bit word.
	n := len(cs.memoKeys)
	if cap(cs.memoKeys) < n+stride {
		grown := make([]uint64, n, (n+stride)*2+stride)
		copy(grown, cs.memoKeys)
		cs.memoKeys = grown
	}
	words := cs.memoKeys[n : n+stride]
	var nulls uint64
	for k, c := range p.gbCols {
		w, null := ct.KeyWord(seg, c, i)
		if null {
			nulls |= 1 << uint(k)
			w = 0
		}
		words[k] = w
	}
	words[nk] = nulls
	h := memoHash(words)
	if cs.memoSlots != nil {
		j := h & cs.memoMask
		for {
			s := cs.memoSlots[j]
			if s == 0 {
				break
			}
			cand := cs.memoKeys[int(s-1)*stride : int(s)*stride]
			match := true
			for x := 0; x < stride; x++ {
				if cand[x] != words[x] {
					match = false
					break
				}
			}
			if match {
				return cs.memoEntries[s-1]
			}
			j = (j + 1) & cs.memoMask
		}
	}
	// Miss: materialize the key row from the aliased source tuple (the
	// exact Values the row path would have used) and resolve canonically.
	row := seg.Rows[i]
	for k, c := range p.gbCols {
		tab.keyRow[k] = row[c]
	}
	en := tab.entryCurrent(r.b)
	// Insert into the memo.
	if (len(cs.memoEntries)+1)*8 > len(cs.memoSlots)*7 {
		cs.memoGrow(stride)
	}
	cs.memoKeys = cs.memoKeys[:n+stride]
	cs.memoEntries = append(cs.memoEntries, en)
	idx := int32(len(cs.memoEntries))
	j := h & cs.memoMask
	for cs.memoSlots[j] != 0 {
		j = (j + 1) & cs.memoMask
	}
	cs.memoSlots[j] = idx
	return en
}

// colFold adds segment-local row i into the entry's banked accumulators
// straight from the column banks, mirroring onlineTable.fold/foldBank
// cell for cell: same per-aggregate order, same gating, same pre-scaled
// weight values — so every float addition is bit-identical. Deduplicated
// bank streams (plan aliases) are written once, by their owning
// aggregate; reads resolve through the same aliases.
func (r *blockRunner) colFold(tab *onlineTable, p *colPlan, e *onlineEntry, ct *colstore.Table, seg *colstore.Segment, i int, wf []float64, repW float64) {
	e.n++
	if repW > 0 {
		e.ns++
	}
	trials := tab.trials
	for a := range p.aggCols {
		if tab.cltKinds[a] == cltCount {
			// COUNT folds any non-NULL input: only the null bitmap is read
			// (the column may be a string column with no numeric bank).
			var null bool
			if c := p.aggCols[a]; c >= 0 {
				null = seg.Cols[c].Null(i)
			} else {
				null = p.aggConstNull[a]
			}
			if !null {
				e.mainW[a]++
				e.clt[a].add(1)
				if wf != nil && p.aliasW[a] == a {
					bw := e.bankW[a*trials : a*trials+len(wf)]
					for j, x := range wf {
						bw[j] += x
					}
				}
			}
			continue
		}
		// SUM/AVG fold numeric inputs (AsFloat-convertible: NULLs and the
		// plan's kind gate exclude everything else).
		var f float64
		var fok bool
		if c := p.aggCols[a]; c >= 0 {
			col := &seg.Cols[c]
			if !col.Null(i) {
				if p.aggFloats[a] {
					f, fok = col.Floats[i], true
				} else {
					f, fok = float64(col.Ints[i]), true
				}
			}
		} else {
			f, fok = p.aggConstF[a], p.aggConstOK[a]
		}
		if !fok {
			continue
		}
		e.mainW[a]++
		e.mainV[a] += f
		e.clt[a].add(f)
		if wf != nil {
			base := a * trials
			wOwn, vOwn := p.aliasW[a] == a, p.aliasV[a] == a
			switch {
			case wOwn && vOwn:
				bw := e.bankW[base : base+len(wf)]
				bv := e.bankV[base : base+len(wf)]
				for j, x := range wf {
					bw[j] += x
					bv[j] += f * x
				}
			case vOwn:
				bv := e.bankV[base : base+len(wf)]
				for j, x := range wf {
					bv[j] += f * x
				}
			case wOwn:
				bw := e.bankW[base : base+len(wf)]
				for j, x := range wf {
					bw[j] += x
				}
			}
		}
	}
}

// colFoldFused is the single-column fast kernel: when every aggregate
// reads the same plain column there is exactly one W stream (aggregate
// 0's) and at most one V stream, and the tuple's Poisson weights are
// consumed nowhere else — so weight generation, pre-scaling and the
// bank folds collapse into one loop with no intermediate buffer. wlut
// maps a Poisson(1) multiplicity to float64(k)·repW (the same two-step
// computation the generic path performs, so every addition is
// bit-identical). Used only off the profiled path: the split phase
// attribution (weights vs fold) needs the unfused loops.
func (r *blockRunner) colFoldFused(tab *onlineTable, p *colPlan, e *onlineEntry, seg *colstore.Segment, i int, sampled bool, wbase uint64, wlut *[16]float64) {
	e.n++
	if sampled {
		e.ns++
	}
	col := &seg.Cols[p.fuseCol]
	null := col.Null(i)
	var f float64
	if !null && p.fusePrimV >= 0 {
		if p.aggFloats[p.fusePrimV] {
			f = col.Floats[i]
		} else {
			f = float64(col.Ints[i])
		}
	}
	if !null {
		for a := range p.aggCols {
			if tab.cltKinds[a] == cltCount {
				e.mainW[a]++
				e.clt[a].add(1)
			} else {
				e.mainW[a]++
				e.mainV[a] += f
				e.clt[a].add(f)
			}
		}
	}
	if !sampled || null {
		return
	}
	trials := tab.trials
	bw := e.bankW[:trials]
	if p.fusePrimV >= 0 {
		base := p.fusePrimV * trials
		bv := e.bankV[base : base+trials]
		for j := 0; j < trials; j++ {
			x := wlut[bootstrap.PoissonAt(wbase+uint64(j))&15]
			bw[j] += x
			bv[j] += f * x
		}
		return
	}
	for j := 0; j < trials; j++ {
		bw[j] += wlut[bootstrap.PoissonAt(wbase+uint64(j))&15]
	}
}
