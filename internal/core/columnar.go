package core

import (
	"time"

	"fluodb/internal/bootstrap"
	"fluodb/internal/colstore"
	"fluodb/internal/expr"
	"fluodb/internal/types"
)

// The columnar fold path. When a block's mini-batch hot loop is shaped
// right — banked (all-CLT) aggregates over fact columns, plain-column
// group keys, dimension joins keyed on plain fact columns, a
// vectorizable certain WHERE, and (when present) an uncertain WHERE
// whose tri-state classification compiles — each shard sweeps whole
// colstore segments instead of walking boxed rows: the certain
// predicate runs as a compiled kernel, the uncertain predicate as a
// compiled tri-state kernel under the batch's injected variation
// ranges, and the surviving rows split into certainly-in / uncertain
// runs. Certainly-in rows feed the banked accumulators straight from
// the typed banks; group keys resolve through a word-code memo that
// touches the canonical (hash + KeyEqual) path once per distinct key
// per sweep, and dimension fan-out resolves through a persistent join
// memo keyed by the same word codes (dimension tables are read once and
// never change mid-query, so the (key → joined rows) expansion is a
// pure function of the key words).
//
// The path is strictly an execution strategy, never a semantics change:
// every accumulator cell receives the same float additions in the same
// ascending-row order as the row path, groups are created at the same
// first-occurrence positions, bootstrap weights/subsample membership are
// the same pure counter hashes, and uncertain rows carry the same
// joined lineage — so snapshots, CIs and uncertain sets are
// bit-identical (pinned by TestColumnarBitIdentical across seeds and
// parallelism). Anything outside the shape falls back per batch (or per
// block, with the disqualifying reason recorded on the plan) to the row
// path; Options.RowPath forces the fallback globally.

// colPlan is a block's columnar eligibility decision plus the resolved
// column layout, built once on the controller and shared read-only by
// all workers.
type colPlan struct {
	ok bool
	// reason records the eligibility verdict: the disqualifying shape
	// when !ok, the engaged flavor when ok (see verdict()).
	reason string
	ct     *colstore.Table
	// hasDims marks a block with dimension joins: group entries resolve
	// per joined row through the join memo (colEntries), and fusing is
	// off.
	hasDims bool
	// memoCols are the deduplicated fact columns whose word codes key
	// both the group memo and the join memo for dims blocks: every dim
	// join key plus every fact-side group-by column. Rows equal on these
	// words have identical join fan-out, dim-side key values and
	// fact-side key values — so they fold into the same entry list.
	memoCols []int
	// gbCols is the joined-schema column of each GROUP BY expression
	// (fact-schema when the block has no dims).
	gbCols []int
	// aggCols is the fact-schema column of each aggregate argument, -1
	// for constant arguments; aggFloats flags float banks (else int).
	aggCols   []int
	aggFloats []bool
	// Constant-argument values, pre-gated: aggConstNull flags SQL NULL,
	// aggConstF holds the AsFloat value, aggConstOK its validity.
	aggConstNull []bool
	aggConstF    []float64
	aggConstOK   []bool
	// Bank-stream aliases: aliasW[i]/aliasV[i] name the aggregate whose
	// physical bank cells carry aggregate i's replica stream. Aggregates
	// over the same plain column receive bit-identical bank additions —
	// COUNT/SUM/AVG all add Σ w·repW to W (their gates coincide on clean
	// columns: SUM/AVG arguments are numeric by eligibility, so non-NULL
	// ⟺ folds), and SUM/AVG both add Σ v·w·repW to V — so the columnar
	// fold writes each distinct stream once; reads redirect through the
	// same aliases (installed on the runner table).
	aliasW []int
	aliasV []int
	// Fused kernel shape: when every aggregate reads the same plain
	// column, the whole bank fold collapses to at most one W stream and
	// one V stream, and weight generation fuses into the fold loop.
	// fuse is that eligibility; fuseCol the shared column; fusePrimV the
	// V-stream owner (-1 when all aggregates are COUNTs).
	fuse      bool
	fuseCol   int
	fusePrimV int
}

// verdict renders the plan's eligibility for traces and reports.
func (p *colPlan) verdict() string {
	if p == nil {
		return "unplanned"
	}
	if p.ok {
		return p.reason
	}
	return "rowpath:" + p.reason
}

// ensureColPlan builds the block's columnar plan on first use. Must run
// on the controller goroutine before workers are submitted (workers
// share the runner shallowly and read the plan pointer).
func (r *blockRunner) ensureColPlan() {
	if r.colPl != nil {
		return
	}
	r.colPl = r.buildColPlan()
}

// revalidateColPlan re-acquires the columnar encoding after a fault
// dropped it mid-query (chaos segment-seal faults null the plan's table
// but leave the plan valid). Controller-only, between feeds. The
// re-acquired encoding derives its dictionaries from the same rows in
// the same order, so word codes match the dropped one; per-sweeper
// kernels recompile through the identity/version gate in colFeed. The
// memory-budget ladder instead clears ok, which this never resurrects.
func (r *blockRunner) revalidateColPlan() {
	p := r.colPl
	if p == nil || !p.ok || p.ct != nil {
		return
	}
	if tbl, ok := r.eng.cat.Get(r.b.Input.Fact); ok {
		p.ct = tbl.Columnar()
	}
}

func (r *blockRunner) buildColPlan() *colPlan {
	p := &colPlan{}
	e := r.eng
	b := r.b
	switch {
	case e.opt.RowPath:
		p.reason = "forced"
		return p
	case len(b.Aggs) == 0:
		p.reason = "agg:none"
		return p
	case !r.tab.banked:
		p.reason = "agg:not-estimable"
		return p
	}
	tbl, ok := e.cat.Get(b.Input.Fact)
	if !ok {
		p.reason = "input:no-fact-table"
		return p
	}
	ct := tbl.Columnar()
	factW := len(ct.Schema)
	clean := func(idx int) bool {
		return idx >= 0 && idx < factW && !ct.Mixed[idx]
	}
	// Dimension joins: every join key must be a plain clean fact column,
	// so the (key, dim) expansion is a pure function of the key word
	// codes and memoizable per distinct combination (colEntries).
	// Chained keys (reading an earlier dim's columns) stay on the row
	// path.
	p.hasDims = len(b.Dims) > 0
	inMemo := map[int]bool{}
	for _, d := range b.Dims {
		c, isCol := d.LeftKey.(*expr.Col)
		if !isCol {
			p.reason = "join:expr-key"
			return p
		}
		if c.Idx < 0 || c.Idx >= factW {
			p.reason = "join:chained"
			return p
		}
		if !clean(c.Idx) {
			p.reason = "join:mixed-column"
			return p
		}
		if !inMemo[c.Idx] {
			inMemo[c.Idx] = true
			p.memoCols = append(p.memoCols, c.Idx)
		}
	}
	width := len(b.Input.Schema)
	for _, g := range b.GroupBy {
		c, isCol := g.(*expr.Col)
		if !isCol || c.Idx < 0 || c.Idx >= width {
			p.reason = "group:expr-key"
			return p
		}
		if c.Idx < factW {
			if !clean(c.Idx) {
				p.reason = "group:mixed-column"
				return p
			}
			if p.hasDims && !inMemo[c.Idx] {
				inMemo[c.Idx] = true
				p.memoCols = append(p.memoCols, c.Idx)
			}
		}
		// Dim-side keys need no gate of their own: they are read from the
		// memoized joined rows, whose dim part is a pure function of the
		// memo key columns.
		p.gbCols = append(p.gbCols, c.Idx)
	}
	for i := range b.Aggs {
		switch a := b.Aggs[i].Arg.(type) {
		case *expr.Col:
			if a.Idx >= factW {
				p.reason = "agg:dim-column"
				return p
			}
			if !clean(a.Idx) {
				p.reason = "agg:mixed-column"
				return p
			}
			k := ct.Schema[a.Idx].Type
			// COUNT only needs the null bitmap; SUM/AVG read the value and
			// need a numeric/bool bank (strings would never fold anyway, but
			// keeping them on the row path avoids a do-nothing special case).
			if r.cltKinds[i] != cltCount && k != types.KindInt && k != types.KindFloat && k != types.KindBool {
				p.reason = "agg:non-numeric"
				return p
			}
			p.aggCols = append(p.aggCols, a.Idx)
			p.aggFloats = append(p.aggFloats, k == types.KindFloat)
			p.aggConstNull = append(p.aggConstNull, false)
			p.aggConstF = append(p.aggConstF, 0)
			p.aggConstOK = append(p.aggConstOK, false)
		case *expr.Const:
			f, fok := a.V.AsFloat()
			p.aggCols = append(p.aggCols, -1)
			p.aggFloats = append(p.aggFloats, false)
			p.aggConstNull = append(p.aggConstNull, a.V.IsNull())
			p.aggConstF = append(p.aggConstF, f)
			p.aggConstOK = append(p.aggConstOK, fok)
		default:
			p.reason = "agg:expr-arg"
			return p
		}
	}
	if r.certainWhere != nil && expr.CompileKernel(r.certainWhere, ct) == nil {
		p.reason = "where:uncompilable"
		return p
	}
	// Without dims, an uncompilable uncertain predicate degrades to the
	// per-row classification inside the sweep (variant B in colFeed);
	// with dims the sweep classifies fact rows before joining, which is
	// only sound through the (fact-column-only, by construction)
	// tri-state kernel.
	if p.hasDims && r.uncertainWhere != nil && expr.CompileTriKernel(r.uncertainWhere, ct) == nil {
		p.reason = "uncertain:uncompilable"
		return p
	}
	p.ct = ct
	p.ok = true

	// Bank-stream dedup: alias each aggregate's W (and, for SUM/AVG, V)
	// stream to the first aggregate over the same plain column. Constant
	// arguments keep their own streams (identity).
	p.aliasW = make([]int, len(b.Aggs))
	p.aliasV = make([]int, len(b.Aggs))
	for i := range p.aliasW {
		p.aliasW[i], p.aliasV[i] = i, i
	}
	for i, c := range p.aggCols {
		if c < 0 {
			continue
		}
		for j := 0; j < i; j++ {
			if p.aggCols[j] == c {
				p.aliasW[i] = p.aliasW[j]
				break
			}
		}
		if r.cltKinds[i] != cltCount {
			for j := 0; j < i; j++ {
				if p.aggCols[j] == c && r.cltKinds[j] != cltCount {
					p.aliasV[i] = p.aliasV[j]
					break
				}
			}
		}
	}
	// Aliased reads must be installed on the runner table before the
	// first snapshot; workers fold into shard tables through the plan's
	// aliases and merge cell-wise, so shard tables need no read aliases.
	r.tab.bankOfW = p.aliasW
	r.tab.bankOfV = p.aliasV

	// Fused-kernel eligibility: one shared plain column means one W
	// stream (owned by aggregate 0) and at most one V stream. Dims
	// blocks fold once per joined row, so they keep the generic loop.
	p.fuse = !p.hasDims
	p.fuseCol = p.aggCols[0]
	p.fusePrimV = -1
	for i, c := range p.aggCols {
		if c < 0 || c != p.fuseCol {
			p.fuse = false
			break
		}
		if r.cltKinds[i] != cltCount && p.fusePrimV < 0 {
			p.fusePrimV = i
		}
	}
	switch {
	case p.fuse:
		p.reason = "columnar:fused"
	case p.hasDims:
		p.reason = "columnar:dims"
	default:
		p.reason = "columnar"
	}
	return p
}

// colScratch is one sweeper's (serial runner or worker shard) reusable
// columnar state: the compiled kernels (per-sweeper — kernels own
// scratch and are not goroutine-safe), tri/selection vectors, weight
// scratch, the group-key word memo, and the persistent join memo.
type colScratch struct {
	// kernel/triK are recompiled whenever the columnar encoding they
	// were lowered against changes identity or version: incremental
	// appends grow dictionaries (a previously-absent string constant may
	// now have a code), and chaos/budget faults swap the table. The gate
	// compares (kernelCT, kernelVer) against the plan's table in colFeed.
	kernel    *expr.Kernel
	triK      *expr.TriKernel
	kernelCT  *colstore.Table
	kernelVer uint64
	tri       []uint8
	triU      []uint8
	sel       []int32
	selU      []int32
	wf        []float64
	wbuf      []uint8
	// Group memo: open-addressed map from the key's word codes (one
	// 64-bit physical code per memo column plus a null-bit word) to the
	// resolved table entry (no-dims: memoEntries) or entry list (dims:
	// entArena[memoOff:memoOff+memoCnt]). Word codes are equal for
	// identical stored values but may differ for values that merely
	// compare equal (-0.0 vs 0.0), so a memo miss resolves through the
	// canonical entryCurrent path — the memo is pure memoization, never
	// identity. Reset per sweep: entries are recycled between batches.
	memoKeys    []uint64 // stride = len(memo key columns)+1
	memoSlots   []int32  // 1-based into memo rows
	memoMask    uint64
	memoEntries []*onlineEntry
	memoOff     []int32
	memoCnt     []int32
	entArena    []*onlineEntry
	// Join memo: word codes → retained joined rows (jRows[jOff:jOff+jCnt])
	// for dims blocks. Dimension hash tables are built once per query and
	// never change, so the expansion of a fact key combination is stable:
	// this memo persists across sweeps and batches, cleared only with the
	// kernels (its keys are dictionary codes). Only memo-key columns and
	// the dim extensions of a retained row are ever read — the rest of
	// its fact part belongs to the first-occurrence row and may differ
	// from the current row's.
	jKeys  []uint64
	jSlots []int32
	jMask  uint64
	jOff   []int32
	jCnt   []int32
	jRows  []types.Row
	sole   *onlineEntry // cached sole entry of scalar blocks
	// sweeps counts columnar segment sweeps (observability for tests and
	// the alloc gate: proves the fast path actually engaged).
	sweeps int64
}

// memoReset clears the group memo for a new sweep. Entries may be
// recycled by shard tables between batches, so cached pointers never
// outlive the colFeed call that resolved them. The join memo is NOT
// reset here: joined rows stay valid as long as the encoding does.
func (cs *colScratch) memoReset() {
	for i := range cs.memoSlots {
		cs.memoSlots[i] = 0
	}
	cs.memoKeys = cs.memoKeys[:0]
	cs.memoEntries = cs.memoEntries[:0]
	cs.memoOff = cs.memoOff[:0]
	cs.memoCnt = cs.memoCnt[:0]
	for i := range cs.entArena {
		cs.entArena[i] = nil
	}
	cs.entArena = cs.entArena[:0]
	cs.sole = nil
}

// jreset clears the join memo (the encoding changed: dictionary codes
// may have moved, so the cached words are meaningless).
func (cs *colScratch) jreset() {
	for i := range cs.jSlots {
		cs.jSlots[i] = 0
	}
	cs.jKeys = cs.jKeys[:0]
	cs.jOff = cs.jOff[:0]
	cs.jCnt = cs.jCnt[:0]
	for i := range cs.jRows {
		cs.jRows[i] = nil
	}
	cs.jRows = cs.jRows[:0]
}

func (cs *colScratch) memoGrow(stride int) {
	n := len(cs.memoSlots) * 2
	if n < 64 {
		n = 64
	}
	if cap(cs.memoSlots) >= n {
		cs.memoSlots = cs.memoSlots[:n]
		for i := range cs.memoSlots {
			cs.memoSlots[i] = 0
		}
	} else {
		cs.memoSlots = make([]int32, n)
	}
	cs.memoMask = uint64(n - 1)
	rows := len(cs.memoKeys) / stride
	for e := 0; e < rows; e++ {
		h := memoHash(cs.memoKeys[e*stride : (e+1)*stride])
		i := h & cs.memoMask
		for cs.memoSlots[i] != 0 {
			i = (i + 1) & cs.memoMask
		}
		cs.memoSlots[i] = int32(e + 1)
	}
}

func (cs *colScratch) jGrow(stride int) {
	n := len(cs.jSlots) * 2
	if n < 64 {
		n = 64
	}
	if cap(cs.jSlots) >= n {
		cs.jSlots = cs.jSlots[:n]
		for i := range cs.jSlots {
			cs.jSlots[i] = 0
		}
	} else {
		cs.jSlots = make([]int32, n)
	}
	cs.jMask = uint64(n - 1)
	rows := len(cs.jKeys) / stride
	for e := 0; e < rows; e++ {
		h := memoHash(cs.jKeys[e*stride : (e+1)*stride])
		i := h & cs.jMask
		for cs.jSlots[i] != 0 {
			i = (i + 1) & cs.jMask
		}
		cs.jSlots[i] = int32(e + 1)
	}
}

func memoHash(words []uint64) uint64 {
	h := uint64(0x9E3779B97F4A7C15)
	for _, w := range words {
		h = bootstrap.Mix64(h ^ w)
	}
	return h
}

// colFeed sweeps rows[0:len) (= global rows baseIdx..) through the
// columnar classify+fold path into the given targets. It returns false
// — having touched nothing — when the batch is not aligned with the
// columnar cache (or the kernels no longer compile against it), letting
// the caller fall back to the row loop.
func (r *blockRunner) colFeed(rows []types.Row, baseIdx int, ts *tableStream, te *triEnv, tab *onlineTable, uncertain *[]uncertainRow, arena *weightArena, folds *int64, acc *phaseAcc, cs *colScratch, pf *weightPrefetch) bool {
	p := r.colPl
	if p == nil || !p.ok || cs == nil {
		return false
	}
	ct := p.ct
	if ct == nil || !ct.Aligned(rows, baseIdx) {
		return false
	}
	// (Re)compile the kernels when the encoding changed identity or
	// version: incremental appends grow dictionaries (constants that had
	// no code may have one now; compiled code tables are sized to the
	// old dictionary), and fault recovery swaps the table wholesale. The
	// join memo keys by dictionary codes, so it resets with the kernels.
	if cs.kernelCT != ct || cs.kernelVer != ct.Version() {
		cs.kernel, cs.triK = nil, nil
		if r.certainWhere != nil {
			cs.kernel = expr.CompileKernel(r.certainWhere, ct)
		}
		if r.uncertainWhere != nil {
			cs.triK = expr.CompileTriKernel(r.uncertainWhere, ct)
		}
		cs.jreset()
		cs.kernelCT, cs.kernelVer = ct, ct.Version()
	}
	if r.certainWhere != nil && cs.kernel == nil {
		return false
	}
	// Tri-state kernels replicate evalTri only under row-free parameter
	// ranges; set-block HAVING classification (rowRanges) stays per-row.
	useTri := cs.triK != nil && te.rowRanges == nil
	if p.hasDims && r.uncertainWhere != nil && !useTri {
		return false
	}
	if len(rows) == 0 {
		return true
	}

	e := r.eng
	prof := e.profile
	trials := e.opt.Trials
	if cap(cs.tri) < ct.SegSize {
		cs.tri = make([]uint8, ct.SegSize)
	}
	if useTri && cap(cs.triU) < ct.SegSize {
		cs.triU = make([]uint8, ct.SegSize)
	}
	if cap(cs.wf) < trials {
		cs.wf = make([]float64, trials)
	}
	if cap(cs.wbuf) < trials {
		cs.wbuf = make([]uint8, trials)
	}
	cs.memoReset()
	tab.initKeyScratch(r.b)
	if useTri {
		// Inject the batch's variation ranges for the row-free parameter
		// sides of the uncertain predicate (constant within a batch).
		for s, pe := range cs.triK.Slots() {
			pr := te.evalRange(pe, nil)
			cs.triK.SetRange(s, pr.r.Lo, pr.r.Hi, uint8(pr.status))
		}
	}

	// wlut maps a Poisson(1) multiplicity (≤ 8; 16 slots so the masked
	// index elides bounds checks) to its pre-scaled float weight — the
	// identical float64(k)·repW product the row path computes per draw.
	// Every certainly-folded row consumes its weights only as these
	// floats, so the uint8 round trip survives solely for rows that stay
	// uncertain (their byte vectors are retained) and for prefetched
	// batches — the direct path re-qualifies per row, not per plan.
	var wlut [16]float64
	for k := range wlut {
		wlut[k] = float64(k) * ts.invP
	}
	fused := p.fuse && pf == nil && !prof && (r.uncertainWhere == nil || useTri)

	g := baseIdx
	end := baseIdx + len(rows)
	for g < end {
		seg, lo := ct.Segment(g)
		hi := lo + (end - g)
		if hi > seg.N {
			hi = seg.N
		}
		g += hi - lo
		cs.sweeps++

		var t0 time.Time
		if prof {
			t0 = time.Now()
		}
		// Classify the whole segment range in one pass per kernel; the
		// selections preserve ascending row order, which is what keeps
		// accumulator addition sequences, group creation order and the
		// uncertain cache identical to the row loop. Rows failing the
		// certain filter are gone; survivors split into certainly-in
		// (sel) and uncertain (selU) runs.
		sel := cs.sel[:0]
		selU := cs.selU[:0]
		switch {
		case cs.kernel != nil && useTri:
			tri := cs.tri[:seg.N]
			cs.kernel.EvalInto(tri, seg, lo, hi)
			tu := cs.triU[:seg.N]
			cs.triK.EvalInto(tu, seg, lo, hi)
			for i := lo; i < hi; i++ {
				if tri[i] != expr.TriTrue {
					continue
				}
				switch tu[i] {
				case expr.TriTrue:
					sel = append(sel, int32(i))
				case expr.TriNull:
					selU = append(selU, int32(i))
				}
			}
		case cs.kernel != nil:
			tri := cs.tri[:seg.N]
			cs.kernel.EvalInto(tri, seg, lo, hi)
			for i := lo; i < hi; i++ {
				if tri[i] == expr.TriTrue {
					sel = append(sel, int32(i))
				}
			}
		case useTri:
			tu := cs.triU[:seg.N]
			cs.triK.EvalInto(tu, seg, lo, hi)
			for i := lo; i < hi; i++ {
				switch tu[i] {
				case expr.TriTrue:
					sel = append(sel, int32(i))
				case expr.TriNull:
					selU = append(selU, int32(i))
				}
			}
		default:
			for i := lo; i < hi; i++ {
				sel = append(sel, int32(i))
			}
		}
		cs.sel, cs.selU = sel, selU
		if prof {
			t1 := time.Now()
			acc.ns[phaseClassify] += int64(t1.Sub(t0))
		}

		if fused {
			// The uncertain run (selU) still executes below: fusing only
			// collapses the certainly-in folds.
			for _, si := range sel {
				i := int(si)
				gi := seg.Base + i
				en := r.colEntry(tab, cs, ct, seg, i)
				r.colFoldFused(tab, p, en, seg, i, e.sampled(ts, gi),
					ts.weightBase+uint64(gi)*uint64(trials), &wlut)
				*folds++
			}
		} else if r.uncertainWhere != nil && !useTri {
			// Variant B: the uncertain predicate did not compile, so each
			// certain-filtered row classifies through the interpreted
			// evalTri — decided BEFORE weight materialization (both are
			// pure per-row functions, so the reorder changes no value):
			// certainly-out rows skip weight generation entirely, and
			// certainly-in rows take the direct float path.
			for _, si := range sel {
				i := int(si)
				gi := seg.Base + i
				if prof {
					t0 = time.Now()
				}
				d := te.evalTri(r.uncertainWhere, seg.Rows[i])
				if prof {
					t1 := time.Now()
					acc.ns[phaseClassify] += int64(t1.Sub(t0))
					t0 = t1
				}
				if d == triFalse {
					continue
				}
				repW := 0.0
				var weights []uint8
				var wf []float64
				if pf != nil {
					if ri := gi - pf.start; pf.sampled[ri] {
						weights = pf.weights[ri*trials : (ri+1)*trials]
						repW = ts.invP
					}
				} else if e.sampled(ts, gi) {
					repW = ts.invP
					if d == triTrue {
						// Fold-only consumption: prescale straight to floats via
						// the lut. float64(uint8(p)) == float64(p) for the Poisson
						// range, so the accumulator additions are bit-identical.
						wf = cs.wf[:trials]
						base := ts.weightBase + uint64(gi)*uint64(trials)
						for j := range wf {
							wf[j] = wlut[bootstrap.PoissonAt(base+uint64(j))&15]
						}
					} else {
						cs.wbuf = e.weightsInto(cs.wbuf, ts, gi)
						weights = cs.wbuf
					}
				}
				if prof {
					t1 := time.Now()
					acc.ns[phaseWeights] += int64(t1.Sub(t0))
					t0 = t1
				}
				if d != triTrue {
					*uncertain = append(*uncertain, uncertainRow{
						row: seg.Rows[i], weights: arena.hold(weights), repW: repW})
					r.sampledIdxValid = false
					if prof {
						acc.ns[phaseClassify] += int64(time.Since(t0))
					}
					continue
				}
				if repW > 0 && wf == nil && len(weights) > 0 {
					wf = cs.wf[:len(weights)]
					for j, w := range weights {
						wf[j] = float64(w) * repW
					}
				}
				en := r.colEntry(tab, cs, ct, seg, i)
				r.colFold(tab, p, en, ct, seg, i, wf, repW)
				*folds++
				if prof {
					acc.ns[phaseFold] += int64(time.Since(t0))
				}
			}
		} else {
			// Certainly-in run: fold straight from the banks with direct
			// float weights (uint8 only for prefetched batches).
			for _, si := range sel {
				i := int(si)
				gi := seg.Base + i
				if prof {
					t0 = time.Now()
				}
				repW := 0.0
				var wf []float64
				if pf != nil {
					if ri := gi - pf.start; pf.sampled[ri] {
						ws := pf.weights[ri*trials : (ri+1)*trials]
						repW = ts.invP
						wf = cs.wf[:trials]
						for j, w := range ws {
							wf[j] = float64(w) * repW
						}
					}
				} else if e.sampled(ts, gi) {
					repW = ts.invP
					wf = cs.wf[:trials]
					base := ts.weightBase + uint64(gi)*uint64(trials)
					for j := range wf {
						wf[j] = wlut[bootstrap.PoissonAt(base+uint64(j))&15]
					}
				}
				if prof {
					t1 := time.Now()
					acc.ns[phaseWeights] += int64(t1.Sub(t0))
					t0 = t1
				}
				if p.hasDims {
					for _, en := range r.colEntries(tab, cs, ct, seg, i) {
						r.colFold(tab, p, en, ct, seg, i, wf, repW)
						*folds++
					}
				} else {
					en := r.colEntry(tab, cs, ct, seg, i)
					r.colFold(tab, p, en, ct, seg, i, wf, repW)
					*folds++
				}
				if prof {
					acc.ns[phaseFold] += int64(time.Since(t0))
				}
			}
		}
		// Uncertain run: these rows retain their byte weight vectors and
		// cache their joined lineage, exactly as the row path would.
		// (Empty unless the tri kernel classified — variant B caches its
		// uncertain rows inline.)
		for _, si := range selU {
			i := int(si)
			gi := seg.Base + i
			if prof {
				t0 = time.Now()
			}
			repW := 0.0
			var weights []uint8
			if pf != nil {
				if ri := gi - pf.start; pf.sampled[ri] {
					weights = pf.weights[ri*trials : (ri+1)*trials]
					repW = ts.invP
				}
			} else if e.sampled(ts, gi) {
				cs.wbuf = e.weightsInto(cs.wbuf, ts, gi)
				weights = cs.wbuf
				repW = ts.invP
			}
			if prof {
				t1 := time.Now()
				acc.ns[phaseWeights] += int64(t1.Sub(t0))
				t0 = t1
			}
			if p.hasDims {
				// Uncertain rows need this row's own joined lineage (the
				// join memo retains the first-occurrence fact part, which
				// may differ outside the memo columns): run the real join.
				for _, jrow := range r.joiner.Join(seg.Rows[i]) {
					*uncertain = append(*uncertain, uncertainRow{
						row: jrow, weights: arena.hold(weights), repW: repW})
				}
			} else {
				*uncertain = append(*uncertain, uncertainRow{
					row: seg.Rows[i], weights: arena.hold(weights), repW: repW})
			}
			r.sampledIdxValid = false
			if prof {
				acc.ns[phaseClassify] += int64(time.Since(t0))
			}
		}
	}
	return true
}

// colEntry resolves the group entry of segment-local row i through the
// word-code memo, falling back to the canonical hash path on a miss so
// entry identity (and creation order) matches the row loop exactly.
func (r *blockRunner) colEntry(tab *onlineTable, cs *colScratch, ct *colstore.Table, seg *colstore.Segment, i int) *onlineEntry {
	p := r.colPl
	nk := len(p.gbCols)
	if nk == 0 {
		if cs.sole == nil {
			cs.sole = tab.entryCurrent(r.b)
		}
		return cs.sole
	}
	stride := nk + 1
	// Build the physical key: one word code per column + a null-bit word.
	n := len(cs.memoKeys)
	if cap(cs.memoKeys) < n+stride {
		grown := make([]uint64, n, (n+stride)*2+stride)
		copy(grown, cs.memoKeys)
		cs.memoKeys = grown
	}
	words := cs.memoKeys[n : n+stride]
	var nulls uint64
	for k, c := range p.gbCols {
		w, null := ct.KeyWord(seg, c, i)
		if null {
			nulls |= 1 << uint(k)
			w = 0
		}
		words[k] = w
	}
	words[nk] = nulls
	h := memoHash(words)
	if cs.memoSlots != nil {
		j := h & cs.memoMask
		for {
			s := cs.memoSlots[j]
			if s == 0 {
				break
			}
			cand := cs.memoKeys[int(s-1)*stride : int(s)*stride]
			match := true
			for x := 0; x < stride; x++ {
				if cand[x] != words[x] {
					match = false
					break
				}
			}
			if match {
				return cs.memoEntries[s-1]
			}
			j = (j + 1) & cs.memoMask
		}
	}
	// Miss: materialize the key row from the aliased source tuple (the
	// exact Values the row path would have used) and resolve canonically.
	row := seg.Rows[i]
	for k, c := range p.gbCols {
		tab.keyRow[k] = row[c]
	}
	en := tab.entryCurrent(r.b)
	// Insert into the memo.
	if (len(cs.memoEntries)+1)*8 > len(cs.memoSlots)*7 {
		cs.memoGrow(stride)
	}
	cs.memoKeys = cs.memoKeys[:n+stride]
	cs.memoEntries = append(cs.memoEntries, en)
	idx := int32(len(cs.memoEntries))
	j := h & cs.memoMask
	for cs.memoSlots[j] != 0 {
		j = (j + 1) & cs.memoMask
	}
	cs.memoSlots[j] = idx
	return en
}

// colEntries resolves the group entries of segment-local row i for a
// dims block: one entry per joined row, in join order — exactly the
// entries (and, on first occurrence, the creation order) the row path
// would produce by folding each joined row. The group memo caches the
// entry list per distinct memo-key word combination for the current
// sweep; the underlying join fan-out comes from the persistent join
// memo (joinRows).
func (r *blockRunner) colEntries(tab *onlineTable, cs *colScratch, ct *colstore.Table, seg *colstore.Segment, i int) []*onlineEntry {
	p := r.colPl
	stride := len(p.memoCols) + 1
	n := len(cs.memoKeys)
	if cap(cs.memoKeys) < n+stride {
		grown := make([]uint64, n, (n+stride)*2+stride)
		copy(grown, cs.memoKeys)
		cs.memoKeys = grown
	}
	words := cs.memoKeys[n : n+stride]
	var nulls uint64
	for k, c := range p.memoCols {
		w, null := ct.KeyWord(seg, c, i)
		if null {
			nulls |= 1 << uint(k)
			w = 0
		}
		words[k] = w
	}
	words[stride-1] = nulls
	h := memoHash(words)
	if cs.memoSlots != nil {
		j := h & cs.memoMask
		for {
			s := cs.memoSlots[j]
			if s == 0 {
				break
			}
			cand := cs.memoKeys[int(s-1)*stride : int(s)*stride]
			match := true
			for x := 0; x < stride; x++ {
				if cand[x] != words[x] {
					match = false
					break
				}
			}
			if match {
				off := cs.memoOff[s-1]
				return cs.entArena[off : off+cs.memoCnt[s-1]]
			}
			j = (j + 1) & cs.memoMask
		}
	}
	// Miss: expand the join (memoized across sweeps) and resolve each
	// joined row's entry canonically, in join order.
	jlo, jcnt := cs.joinRows(r, words, h, seg.Rows[i])
	elo := int32(len(cs.entArena))
	for _, jrow := range cs.jRows[jlo : jlo+jcnt] {
		for k, c := range p.gbCols {
			tab.keyRow[k] = jrow[c]
		}
		cs.entArena = append(cs.entArena, tab.entryCurrent(r.b))
	}
	if (len(cs.memoOff)+1)*8 > len(cs.memoSlots)*7 {
		cs.memoGrow(stride)
	}
	cs.memoKeys = cs.memoKeys[:n+stride]
	cs.memoOff = append(cs.memoOff, elo)
	cs.memoCnt = append(cs.memoCnt, int32(len(cs.entArena))-elo)
	idx := int32(len(cs.memoOff))
	j := h & cs.memoMask
	for cs.memoSlots[j] != 0 {
		j = (j + 1) & cs.memoMask
	}
	cs.memoSlots[j] = idx
	return cs.entArena[elo:]
}

// joinRows returns the (offset, count) into cs.jRows of the joined rows
// for the given memo-key words, running (and retaining) the real join
// on first occurrence. The retained rows are fresh allocations from the
// joiner (dims blocks never reuse join scratch), so holding them across
// batches is safe; the steady state joins each distinct key combination
// exactly once per query.
func (cs *colScratch) joinRows(r *blockRunner, words []uint64, h uint64, fact types.Row) (int32, int32) {
	stride := len(words)
	if cs.jSlots != nil {
		j := h & cs.jMask
		for {
			s := cs.jSlots[j]
			if s == 0 {
				break
			}
			cand := cs.jKeys[int(s-1)*stride : int(s)*stride]
			match := true
			for x := 0; x < stride; x++ {
				if cand[x] != words[x] {
					match = false
					break
				}
			}
			if match {
				return cs.jOff[s-1], cs.jCnt[s-1]
			}
			j = (j + 1) & cs.jMask
		}
	}
	rows := r.joiner.Join(fact)
	off := int32(len(cs.jRows))
	cs.jRows = append(cs.jRows, rows...)
	n := len(cs.jKeys)
	if cap(cs.jKeys) < n+stride {
		grown := make([]uint64, n, (n+stride)*2+stride)
		copy(grown, cs.jKeys)
		cs.jKeys = grown
	}
	copy(cs.jKeys[n:n+stride], words)
	if (len(cs.jOff)+1)*8 > len(cs.jSlots)*7 {
		cs.jKeys = cs.jKeys[:n+stride]
		cs.jGrow(stride)
	} else {
		cs.jKeys = cs.jKeys[:n+stride]
	}
	cs.jOff = append(cs.jOff, off)
	cs.jCnt = append(cs.jCnt, int32(len(rows)))
	idx := int32(len(cs.jOff))
	j := h & cs.jMask
	for cs.jSlots[j] != 0 {
		j = (j + 1) & cs.jMask
	}
	cs.jSlots[j] = idx
	return off, int32(len(rows))
}

// colFold adds segment-local row i into the entry's banked accumulators
// straight from the column banks, mirroring onlineTable.fold/foldBank
// cell for cell: same per-aggregate order, same gating, same pre-scaled
// weight values — so every float addition is bit-identical. Deduplicated
// bank streams (plan aliases) are written once, by their owning
// aggregate; reads resolve through the same aliases.
func (r *blockRunner) colFold(tab *onlineTable, p *colPlan, e *onlineEntry, ct *colstore.Table, seg *colstore.Segment, i int, wf []float64, repW float64) {
	e.n++
	if repW > 0 {
		e.ns++
	}
	trials := tab.trials
	for a := range p.aggCols {
		if tab.cltKinds[a] == cltCount {
			// COUNT folds any non-NULL input: only the null bitmap is read
			// (the column may be a string column with no numeric bank).
			var null bool
			if c := p.aggCols[a]; c >= 0 {
				null = seg.Cols[c].Null(i)
			} else {
				null = p.aggConstNull[a]
			}
			if !null {
				e.mainW[a]++
				e.clt[a].add(1)
				if wf != nil && p.aliasW[a] == a {
					bw := e.bankW[a*trials : a*trials+len(wf)]
					for j, x := range wf {
						bw[j] += x
					}
				}
			}
			continue
		}
		// SUM/AVG fold numeric inputs (AsFloat-convertible: NULLs and the
		// plan's kind gate exclude everything else).
		var f float64
		var fok bool
		if c := p.aggCols[a]; c >= 0 {
			col := &seg.Cols[c]
			if !col.Null(i) {
				if p.aggFloats[a] {
					f, fok = col.Floats[i], true
				} else {
					f, fok = float64(col.Ints[i]), true
				}
			}
		} else {
			f, fok = p.aggConstF[a], p.aggConstOK[a]
		}
		if !fok {
			continue
		}
		e.mainW[a]++
		e.mainV[a] += f
		e.clt[a].add(f)
		if wf != nil {
			base := a * trials
			wOwn, vOwn := p.aliasW[a] == a, p.aliasV[a] == a
			switch {
			case wOwn && vOwn:
				bw := e.bankW[base : base+len(wf)]
				bv := e.bankV[base : base+len(wf)]
				for j, x := range wf {
					bw[j] += x
					bv[j] += f * x
				}
			case vOwn:
				bv := e.bankV[base : base+len(wf)]
				for j, x := range wf {
					bv[j] += f * x
				}
			case wOwn:
				bw := e.bankW[base : base+len(wf)]
				for j, x := range wf {
					bw[j] += x
				}
			}
		}
	}
}

// colFoldFused is the single-column fast kernel: when every aggregate
// reads the same plain column there is exactly one W stream (aggregate
// 0's) and at most one V stream, and the tuple's Poisson weights are
// consumed nowhere else — so weight generation, pre-scaling and the
// bank folds collapse into one loop with no intermediate buffer. wlut
// maps a Poisson(1) multiplicity to float64(k)·repW (the same two-step
// computation the generic path performs, so every addition is
// bit-identical). Used only off the profiled path: the split phase
// attribution (weights vs fold) needs the unfused loops.
func (r *blockRunner) colFoldFused(tab *onlineTable, p *colPlan, e *onlineEntry, seg *colstore.Segment, i int, sampled bool, wbase uint64, wlut *[16]float64) {
	e.n++
	if sampled {
		e.ns++
	}
	col := &seg.Cols[p.fuseCol]
	null := col.Null(i)
	var f float64
	if !null && p.fusePrimV >= 0 {
		if p.aggFloats[p.fusePrimV] {
			f = col.Floats[i]
		} else {
			f = float64(col.Ints[i])
		}
	}
	if !null {
		for a := range p.aggCols {
			if tab.cltKinds[a] == cltCount {
				e.mainW[a]++
				e.clt[a].add(1)
			} else {
				e.mainW[a]++
				e.mainV[a] += f
				e.clt[a].add(f)
			}
		}
	}
	if !sampled || null {
		return
	}
	trials := tab.trials
	bw := e.bankW[:trials]
	if p.fusePrimV >= 0 {
		base := p.fusePrimV * trials
		bv := e.bankV[base : base+trials]
		for j := 0; j < trials; j++ {
			x := wlut[bootstrap.PoissonAt(wbase+uint64(j))&15]
			bw[j] += x
			bv[j] += f * x
		}
		return
	}
	for j := 0; j < trials; j++ {
		bw[j] += wlut[bootstrap.PoissonAt(wbase+uint64(j))&15]
	}
}
