package core

import (
	"strings"
	"testing"

	"fluodb/internal/plan"
	"fluodb/internal/resource"
	"fluodb/internal/testutil"
)

// Tests for the resource ledger and the MaxMemoryBytes degradation
// ladder (ledger.go): charge-counter ground truth against an
// independent walk of the final table state, allocation-freedom of the
// per-batch collection, bit-identity of budget-degraded runs, and
// goroutine hygiene of the GC sampler.

// ledgerRun drains one engine and returns its snapshots plus the open
// engine (caller closes).
func ledgerRun(t *testing.T, sql string, o Options, seed uint64, rows int) ([]*Snapshot, *Engine) {
	t.Helper()
	cat := determinismCatalog(rows, seed)
	q, err := plan.Compile(sql, cat)
	if err != nil {
		t.Fatal(err)
	}
	eng, err := New(q, cat, o)
	if err != nil {
		t.Fatal(err)
	}
	var snaps []*Snapshot
	for !eng.Done() {
		s, err := eng.Step()
		if err != nil {
			eng.Close()
			t.Fatal(err)
		}
		snaps = append(snaps, s)
	}
	return snaps, eng
}

// TestLedgerGroundTruth cross-checks the incremental group-table charge
// counter against an independent walk of the final table: probe slots
// at 4 bytes each, per-entry header + key values, and the banked
// accumulator arrays at exact capacity × 8. Any seam that allocates
// without charging (or double-charges) breaks the equality.
func TestLedgerGroundTruth(t *testing.T) {
	o := Options{Batches: 4, Trials: 50, Seed: 911, Parallelism: 1}
	snaps, eng := ledgerRun(t, determinismSQL, o, 911, 4*2048)
	defer eng.Close()

	r := eng.runners[len(eng.runners)-1]
	tab := r.tab
	if !tab.banked {
		t.Fatal("CLT-only query should use the banked table")
	}
	if len(tab.entries) == 0 || len(tab.free) != 0 {
		t.Fatalf("unexpected table shape: %d entries, %d free", len(tab.entries), len(tab.free))
	}
	want := 4 * int64(len(tab.slots))
	for _, en := range tab.entries {
		want += entryHeaderBytes + int64(len(en.key))*rowValueBytes
		want += 8 * int64(len(en.mainW)+len(en.mainV)+len(en.bankW)+len(en.bankV))
		if en.clt != nil {
			want += int64(len(en.clt)) * cltAccBytes
		}
	}
	if tab.bytes != want {
		t.Fatalf("group-table charge %d, independent walk says %d", tab.bytes, want)
	}

	// The surfaced usage agrees with the ledger and with itself.
	u := eng.Resources()
	if u.GroupTableBytes < tab.bytes {
		t.Fatalf("Resources group-tables %d < runner charge %d", u.GroupTableBytes, tab.bytes)
	}
	sum := u.GroupTableBytes + u.WeightArenaBytes + u.UncertainBytes +
		u.PrefetchBytes + u.ColScratchBytes + u.SegCacheBytes + u.CheckpointBytes
	if u.TotalBytes != sum {
		t.Fatalf("TotalBytes %d != pool sum %d", u.TotalBytes, sum)
	}
	if u.PeakBytes < u.TotalBytes {
		t.Fatalf("PeakBytes %d below TotalBytes %d", u.PeakBytes, u.TotalBytes)
	}
	if u.GroupTableBytes == 0 || u.ColScratchBytes == 0 {
		t.Fatalf("expected live pools, got %+v", u)
	}
	m := eng.Metrics()
	if m.MemBytes != u.TotalBytes || m.MemPeakBytes != u.PeakBytes {
		t.Fatalf("metrics mirror out of sync: %d/%d vs %d/%d",
			m.MemBytes, m.MemPeakBytes, u.TotalBytes, u.PeakBytes)
	}
	// Every committed batch stamped a usage with a consistent total.
	for i, s := range snaps {
		if s.Resources.TotalBytes <= 0 {
			t.Fatalf("batch %d: no resource observation: %+v", i+1, s.Resources)
		}
	}
}

// TestLedgerUncertainCharge: the uncertain-cache pool is exactly the
// cached headers (cap × sizeof), and the weight-arena pool is live when
// tuples are cached.
func TestLedgerUncertainCharge(t *testing.T) {
	o := Options{Batches: 4, Trials: 32, Seed: 331, Parallelism: 1}
	_, eng := ledgerRun(t, chaosSQL, o, 331, 4*2048)
	defer eng.Close()
	var want int64
	for _, r := range eng.runners {
		want += uncertainRowBytes * int64(cap(r.uncertain))
	}
	eng.collectResidency()
	if got := eng.ledger.Bytes(resource.UncertainCache); got != want {
		t.Fatalf("uncertain charge %d, cap walk says %d", got, want)
	}
}

// TestLedgerCollectAllocs pins the per-batch collection itself —
// residency walk, peak observe, GC read, usage stamp — to zero
// allocations, so the ledger can stay always-on.
func TestLedgerCollectAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("race instrumentation allocates")
	}
	o := Options{Batches: 4, Trials: 50, Seed: 911, Parallelism: 1}
	_, eng := ledgerRun(t, determinismSQL, o, 911, 4*2048)
	defer eng.Close()
	var snap Snapshot
	allocs := testing.AllocsPerRun(100, func() {
		eng.observeResources(&snap)
	})
	if allocs != 0 {
		t.Fatalf("resource observation allocates %.1f per batch, want 0", allocs)
	}
}

// TestBudgetDegradeBitIdentical is the acceptance gate: a 1-byte soft
// budget forces all three degradation rungs from the first batch, and
// the run must stay bit-identical to the unbudgeted run — across seeds
// and worker counts. Rungs 1–2 are bit-identical fallbacks by
// construction and rung 3 has nothing to evict on an aggregate-only
// query, so only answer-preserving machinery may engage.
func TestBudgetDegradeBitIdentical(t *testing.T) {
	for _, seed := range []uint64{411, 1213} {
		for _, p := range []int{1, 2, 4, 8} {
			o := Options{
				Batches: 5, Trials: 32, Seed: seed,
				Parallelism: p, ParallelThreshold: 128,
			}
			clean, cleanEng := ledgerRun(t, determinismSQL, o, seed, 5*2048)
			cleanEng.Close()

			ob := o
			ob.MaxMemoryBytes = 1
			tr := NewTracer(0)
			ob.Tracer = tr
			got, eng := ledgerRun(t, determinismSQL, ob, seed, 5*2048)

			label := "budget-degrade"
			compareSnapshots(t, label, clean, got)
			if rung := eng.Resources().DegradeRung; rung != 3 {
				t.Fatalf("%s seed=%d P=%d: final rung %d, want 3", label, seed, p, rung)
			}
			if ev := eng.Metrics().BudgetEvictions; ev != 0 {
				t.Fatalf("%s: aggregate-only query evicted %d uncertain tuples", label, ev)
			}
			eng.Close()
			// Trajectory: every committed batch reports the full ladder
			// (1-byte budget engages everything on batch 1, then latches),
			// and the Degraded reason names each rung.
			for i, s := range got {
				if s.Resources.DegradeRung != 3 {
					t.Fatalf("%s: batch %d rung %d, want 3", label, i+1, s.Resources.DegradeRung)
				}
				if want := "budget:segcache+prefetch+evict"; s.Degraded != want {
					t.Fatalf("%s: batch %d Degraded = %q, want %q", label, i+1, s.Degraded, want)
				}
			}
			// The ladder announced itself: one EvDegrade per rung, in order.
			var rungs []int
			for _, ev := range tr.Events() {
				if ev.Kind == EvDegrade {
					rungs = append(rungs, ev.Kept)
				}
			}
			if len(rungs) != 3 || rungs[0] != 1 || rungs[1] != 2 || rungs[2] != 3 {
				t.Fatalf("%s: EvDegrade rungs = %v, want [1 2 3]", label, rungs)
			}
		}
	}
}

// TestBudgetCheckpointResume: a budget-degraded query checkpointed
// mid-run resumes with its rungs re-engaged and completes bit-identical
// to the uninterrupted budgeted run (itself bit-identical to
// unbudgeted), with the memory peak surviving the round trip.
func TestBudgetCheckpointResume(t *testing.T) {
	const seed = 617
	o := Options{
		Batches: 6, Trials: 32, Seed: seed,
		Parallelism: 2, ParallelThreshold: 128,
		MaxMemoryBytes: 1,
	}
	full, fullEng := ledgerRun(t, determinismSQL, o, seed, 6*2048)
	peak := fullEng.Resources().PeakBytes
	fullEng.Close()

	cat := determinismCatalog(6*2048, seed)
	q, err := plan.Compile(determinismSQL, cat)
	if err != nil {
		t.Fatal(err)
	}
	eng, err := New(q, cat, o)
	if err != nil {
		t.Fatal(err)
	}
	snaps := make([]*Snapshot, 0, o.Batches)
	for i := 0; i < 3; i++ {
		s, err := eng.Step()
		if err != nil {
			t.Fatal(err)
		}
		snaps = append(snaps, s)
	}
	ckpt, err := eng.Checkpoint()
	if err != nil {
		t.Fatal(err)
	}
	eng.Close()

	res, err := Resume(q, cat, o, ckpt)
	if err != nil {
		t.Fatal(err)
	}
	defer res.Close()
	if res.degradeRung != 3 {
		t.Fatalf("resumed engine rung %d, want 3 re-engaged", res.degradeRung)
	}
	for !res.Done() {
		s, err := res.Step()
		if err != nil {
			t.Fatal(err)
		}
		snaps = append(snaps, s)
	}
	compareSnapshots(t, "budget-resume", full, snaps)
	if got := res.Resources().PeakBytes; got < peak/2 {
		t.Fatalf("peak did not survive resume: %d vs original %d", got, peak)
	}
	if res.Metrics().DegradeRung != 3 {
		t.Fatal("resumed metrics lost the degradation rung")
	}
}

// TestBudgetEvictionReason: under an uncertain-heavy workload a tiny
// budget reaches rung 3 with real evictions, splitting the metrics by
// reason and naming both causes in Degraded when the row cap also
// fires.
func TestBudgetEvictionReason(t *testing.T) {
	o := Options{
		Batches: 6, Trials: 32, Seed: 411,
		Parallelism: 2, ParallelThreshold: 128,
		MaxMemoryBytes: 1,
	}
	snaps, eng := ledgerRun(t, chaosSQL, o, 331, 6*2048)
	defer eng.Close()
	m := eng.Metrics()
	if m.BudgetEvictions == 0 {
		t.Skip("workload cached no uncertain tuples at enforcement points")
	}
	if m.UncertainEvictions < m.BudgetEvictions {
		t.Fatalf("eviction split inconsistent: total %d < budget %d",
			m.UncertainEvictions, m.BudgetEvictions)
	}
	last := snaps[len(snaps)-1]
	if !strings.Contains(last.Degraded, "budget:segcache+prefetch+evict") {
		t.Fatalf("Degraded = %q, want budget ladder named", last.Degraded)
	}
	if last.Resources.BudgetEvictions != m.BudgetEvictions {
		t.Fatalf("usage evictions %d != metrics %d",
			last.Resources.BudgetEvictions, m.BudgetEvictions)
	}
	if len(last.Rows) == 0 {
		t.Fatal("degraded run produced no rows")
	}
}

// TestSamplerNoGoroutineLeak: the engine's GC sampler is synchronous —
// running and closing budgeted engines must return the process to its
// goroutine baseline (nothing left polling runtime/metrics).
func TestSamplerNoGoroutineLeak(t *testing.T) {
	baseline := testutil.GoroutineBaseline()
	for i := 0; i < 3; i++ {
		o := Options{
			Batches: 3, Trials: 16, Seed: uint64(100 + i),
			Parallelism: 4, ParallelThreshold: 128,
			MaxMemoryBytes: 1,
		}
		_, eng := ledgerRun(t, determinismSQL, o, uint64(100+i), 3*1024)
		eng.Close()
	}
	testutil.VerifyNoLeaks(t, baseline)
}
