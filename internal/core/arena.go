package core

import "sync"

// Uncertain rows must retain their per-trial bootstrap weights until the
// tuple classifies deterministically, but the fold loop fills weights
// into a reusable scratch buffer. weightArena gives retained copies a
// home without a per-tuple allocation: copies are bump-allocated out of
// pooled chunks, and whole chunks are recycled once the uncertain set
// they served drains.

// weightArenaChunk is the chunk size in weights (bytes).
const weightArenaChunk = 1 << 14

var weightChunkPool = sync.Pool{
	New: func() any {
		c := make([]uint8, 0, weightArenaChunk)
		return &c
	},
}

// weightArena bump-allocates weight copies out of pooled chunks.
type weightArena struct {
	cur    []uint8
	chunks []*[]uint8 // every chunk ever handed out, for release
	// bytes is the resource-ledger charge: capacity pinned by held
	// chunks. Worker-local (no atomics); transferred by adopt at the
	// batch barrier, zeroed by release.
	bytes int64
}

// hold copies w into the arena and returns the stable copy.
func (a *weightArena) hold(w []uint8) []uint8 {
	if len(w) == 0 {
		return nil
	}
	if cap(a.cur)-len(a.cur) < len(w) {
		c := weightChunkPool.Get().(*[]uint8)
		if cap(*c) < len(w) {
			// Oversized request (Trials > chunk size): dedicated chunk.
			big := make([]uint8, 0, len(w))
			c = &big
		}
		a.chunks = append(a.chunks, c)
		a.cur = (*c)[:0]
		a.bytes += int64(cap(*c))
	}
	n := len(a.cur)
	a.cur = a.cur[: n+len(w) : cap(a.cur)]
	s := a.cur[n : n+len(w) : n+len(w)]
	copy(s, w)
	return s
}

// release returns every chunk to the pool. Only safe once nothing
// references slices handed out by hold (the uncertain set is empty or
// being discarded).
func (a *weightArena) release() {
	for _, c := range a.chunks {
		*c = (*c)[:0]
		weightChunkPool.Put(c)
	}
	a.chunks, a.cur = nil, nil
	a.bytes = 0
}

// adopt transfers o's chunks into a (after a worker table merge, the
// runner's uncertain set owns slices allocated from worker arenas).
func (a *weightArena) adopt(o *weightArena) {
	a.chunks = append(a.chunks, o.chunks...)
	a.bytes += o.bytes
	o.chunks, o.cur, o.bytes = nil, nil, 0
}

// uncertainBufPool recycles worker uncertain-row buffers across batches.
var uncertainBufPool = sync.Pool{
	New: func() any { return new([]uncertainRow) },
}
