package core

import (
	"errors"
	"fmt"
	"testing"
)

// Every ErrorKind doubles as an errors.Is sentinel; QueryError must
// match its own kind (and only its own kind) anywhere in a wrap chain,
// and errors.As must recover the typed error through wrapping.
func TestErrorKindSentinels(t *testing.T) {
	kinds := []ErrorKind{
		ErrKindInvalidOptions,
		ErrKindWorkerPanic,
		ErrKindPoolStopped,
		ErrKindInterrupted,
		ErrKindCheckpoint,
		ErrKindShardLost,
	}
	for _, k := range kinds {
		qe := &QueryError{Kind: k, Batch: 3, Worker: 1, Note: "probe"}
		if !errors.Is(qe, k) {
			t.Errorf("errors.Is(%v, %q) = false", qe, k)
		}
		wrapped := fmt.Errorf("outer: %w", qe)
		if !errors.Is(wrapped, k) {
			t.Errorf("errors.Is through wrap failed for kind %q", k)
		}
		var got *QueryError
		if !errors.As(wrapped, &got) || got.Kind != k {
			t.Errorf("errors.As through wrap failed for kind %q", k)
		}
		for _, other := range kinds {
			if other != k && errors.Is(qe, other) {
				t.Errorf("kind %q wrongly matches sentinel %q", k, other)
			}
		}
	}
}

// TestErrorKindUnwrapChain checks that a QueryError carrying a cause
// keeps both matchable: the kind sentinel via Is, the cause via the
// standard Unwrap chain.
func TestErrorKindUnwrapChain(t *testing.T) {
	cause := errors.New("shard 2 (incarnation 5): dead")
	qe := &QueryError{Kind: ErrKindShardLost, Batch: 1, Worker: 2, Err: cause}
	if !errors.Is(qe, ErrKindShardLost) {
		t.Fatal("kind sentinel lost when Err is set")
	}
	if !errors.Is(qe, cause) {
		t.Fatal("cause not reachable through Unwrap")
	}
	if errors.Is(qe, ErrKindCheckpoint) {
		t.Fatal("wrong kind matched")
	}
}

// TestErrPoolStoppedSentinel pins the exported variable's kind.
func TestErrPoolStoppedSentinel(t *testing.T) {
	if !errors.Is(ErrPoolStopped, ErrKindPoolStopped) {
		t.Fatal("ErrPoolStopped must match its kind sentinel")
	}
}
