package core

import (
	"fmt"
	"testing"

	"fluodb/internal/bootstrap"
	"fluodb/internal/otrace"
	"fluodb/internal/plan"
	"fluodb/internal/storage"
	"fluodb/internal/types"
)

// Benchmarks for the steady-state mini-batch fold loop: group lookup,
// aggregate updates and (for sampled tuples) per-trial bootstrap folds.

// foldCatalog builds a fact table with two low-cardinality key columns
// (a: 8 values, b: 16 values) and one measure, so every benchmark tuple
// hits an existing group (the steady state).
func foldCatalog(n int, seed uint64) *storage.Catalog {
	cat := storage.NewCatalog()
	t := storage.NewTable("facts", types.NewSchema(
		"a", types.KindString,
		"b", types.KindInt,
		"x", types.KindFloat,
	))
	as := []string{"aa", "bb", "cc", "dd", "ee", "ff", "gg", "hh"}
	rng := bootstrap.NewRNG(seed)
	for i := 0; i < n; i++ {
		_ = t.Append(types.Row{
			types.NewString(as[rng.Intn(len(as))]),
			types.NewInt(int64(rng.Intn(16))),
			types.NewFloat(rng.Float64() * 100),
		})
	}
	cat.Put(t)
	return cat
}

// foldBenchEnv builds an engine over the fold catalog, feeds the first
// mini-batch (so all groups exist) and returns the pieces needed to
// drive the fold loop by hand.
func foldBenchEnv(tb testing.TB, multiKey, profile, spanned bool) (*Engine, *blockRunner, *tableStream, *triEnv, []types.Row) {
	cat := foldCatalog(20000, 71)
	sql := `SELECT a, SUM(x), AVG(x) FROM facts GROUP BY a`
	if multiKey {
		sql = `SELECT a, b, SUM(x), AVG(x) FROM facts GROUP BY a, b`
	}
	q, err := plan.Compile(sql, cat)
	if err != nil {
		tb.Fatal(err)
	}
	opt := Options{Batches: 10, Trials: 100, Seed: 72, Parallelism: 1}
	if profile {
		// Full instrumentation on: fine phase timers plus an attached
		// tracer, the configuration the alloc regression must also hold
		// under.
		opt.Profile = true
		opt.Tracer = NewTracer(0)
	}
	if spanned {
		// Span timelines on top: spans are recorded at batch/phase/task
		// granularity, never per tuple, so the fold loop must stay
		// alloc-free with a SpanTracer attached too.
		opt.Spans = otrace.NewTracer(0)
	}
	eng, err := New(q, cat, opt)
	if err != nil {
		tb.Fatal(err)
	}
	if _, err := eng.Step(); err != nil {
		tb.Fatal(err)
	}
	r := eng.runners[len(eng.runners)-1]
	ts := eng.tables["facts"]
	return eng, r, ts, eng.triEnv(), ts.batches[1]
}

func benchFold(b *testing.B, multiKey, sampled bool) {
	eng, r, ts, te, rows := foldBenchEnv(b, multiKey, false, false)
	var weights []uint8
	var wbuf []uint8
	repW := 0.0
	if sampled {
		repW = ts.invP
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		fact := rows[i%len(rows)]
		if sampled {
			wbuf = eng.weightsInto(wbuf, ts, i%len(rows))
			weights = wbuf
		}
		r.feedTuple(fact, weights, repW, te)
	}
}

func BenchmarkFoldSingleKey(b *testing.B)        { benchFold(b, false, false) }
func BenchmarkFoldSingleKeySampled(b *testing.B) { benchFold(b, false, true) }
func BenchmarkFoldMultiKey(b *testing.B)         { benchFold(b, true, false) }
func BenchmarkFoldMultiKeySampled(b *testing.B)  { benchFold(b, true, true) }

func TestFoldBenchEnvGroups(t *testing.T) {
	_, r, _, _, _ := foldBenchEnv(t, true, false, false)
	if got := len(r.tab.order); got != 8*16 {
		t.Fatalf("expected 128 groups after warmup, got %d", got)
	}
	fmt.Println("groups:", len(r.tab.order))
}

// TestFoldSteadyStateAllocs pins the steady-state fold path (existing
// groups, sampled and unsampled tuples) to zero allocations per tuple —
// with instrumentation off ("plain"), with the phase profiler and
// tracer enabled ("profiled"), and additionally with span timelines
// attached ("spanned"): phase timers are monotonic clock reads into
// pre-allocated accumulators and spans are batch-granular slab appends,
// so turning observability on must not cost allocations. Skipped under
// the race detector, whose instrumentation allocates.
func TestFoldSteadyStateAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("race instrumentation allocates")
	}
	for _, tc := range []struct {
		name     string
		multiKey bool
		sampled  bool
	}{
		{"single-key", false, false},
		{"single-key/sampled", false, true},
		{"multi-key", true, false},
		{"multi-key/sampled", true, true},
	} {
		for _, mode := range []struct {
			name             string
			profile, spanned bool
		}{
			{"plain", false, false},
			{"profiled", true, false},
			{"spanned", true, true},
		} {
			t.Run(tc.name+"/"+mode.name, func(t *testing.T) {
				eng, r, ts, te, rows := foldBenchEnv(t, tc.multiKey, mode.profile, mode.spanned)
				var wbuf []uint8
				repW := 0.0
				if tc.sampled {
					repW = ts.invP
				}
				i := 0
				allocs := testing.AllocsPerRun(2000, func() {
					fact := rows[i%len(rows)]
					var weights []uint8
					if tc.sampled {
						wbuf = eng.weightsInto(wbuf, ts, i%len(rows))
						weights = wbuf
					}
					r.feedTuple(fact, weights, repW, te)
					i++
				})
				if allocs != 0 {
					t.Fatalf("steady-state fold allocates %.1f allocs/tuple, want 0", allocs)
				}
				if mode.profile && r.acc.ns[phaseFold] == 0 {
					t.Fatal("profiled run recorded no fold time")
				}
			})
		}
	}
}
