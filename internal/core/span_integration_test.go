package core

import (
	"bytes"
	"testing"

	"fluodb/internal/chaos"
	"fluodb/internal/otrace"
	"fluodb/internal/plan"
	"fluodb/internal/testutil"
)

// spanEnv runs a P=4 multi-key grouped query to completion with a span
// tracer attached and returns the tracer.
func spanEnv(t *testing.T, opt Options) (*otrace.Tracer, *Engine) {
	t.Helper()
	cat := foldCatalog(20000, 71)
	q, err := plan.Compile(`SELECT a, b, SUM(x), AVG(x) FROM facts GROUP BY a, b`, cat)
	if err != nil {
		t.Fatal(err)
	}
	sp := otrace.NewTracer(0)
	sp.SetLabel("span integration")
	opt.Spans = sp
	eng, err := New(q, cat, opt)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(eng.Close)
	for !eng.Done() {
		if _, err := eng.Step(); err != nil {
			t.Fatal(err)
		}
	}
	return sp, eng
}

// TestSpanHierarchyParallelQuery is the tentpole acceptance test: a
// P=4 multi-key query must produce a correctly nested
// query→batch→phase→task timeline whose Chrome export round-trips.
func TestSpanHierarchyParallelQuery(t *testing.T) {
	base := testutil.GoroutineBaseline()
	sp, eng := spanEnv(t, Options{
		Batches: 8, Trials: 50, Seed: 7,
		Parallelism: 4, ParallelThreshold: 64,
	})
	spans := sp.Spans()
	if err := otrace.ValidateNesting(spans); err != nil {
		t.Fatalf("nesting: %v", err)
	}
	count := map[string]int{}
	workerTasks := 0
	for _, s := range spans {
		count[s.Name]++
		if s.Name == "task" && s.Tid > 0 {
			workerTasks++
		}
		if s.End < s.Start {
			t.Fatalf("span %q (batch %d) left open", s.Name, s.Batch)
		}
	}
	if count["query"] != 1 {
		t.Fatalf("query spans = %d, want 1", count["query"])
	}
	if count["batch"] < 8 {
		t.Fatalf("batch spans = %d, want >= 8", count["batch"])
	}
	if count["feed"] < 8 || count["reclassify"] < 8 || count["snapshot"] < 8 {
		t.Fatalf("phase spans missing: %v", count)
	}
	if workerTasks == 0 {
		t.Fatal("no worker task spans recorded at P=4")
	}
	if count["prefetch"] == 0 {
		t.Fatal("no prefetch spans recorded")
	}
	if sp.DroppedSpans() != 0 {
		t.Fatalf("spans dropped: %d", sp.DroppedSpans())
	}

	var buf bytes.Buffer
	if err := sp.WriteChromeTrace(&buf); err != nil {
		t.Fatal(err)
	}
	ns, _, err := otrace.ValidateChromeJSON(buf.Bytes())
	if err != nil {
		t.Fatalf("exported chrome trace invalid: %v", err)
	}
	if ns != len(spans) {
		t.Fatalf("export carried %d spans, recorded %d", ns, len(spans))
	}
	if rep := eng.Report(); rep == "" {
		t.Fatal("empty report")
	} else if !bytes.Contains([]byte(rep), []byte("timeline spans:")) {
		t.Fatalf("report missing timeline section:\n%s", rep)
	}
	eng.Close()
	testutil.VerifyNoLeaks(t, base)
}

// TestSpanInstantCorrelation: chaos-injected faults must appear as
// instant events carrying the ring's sequence numbers, even when the
// caller supplied no ring tracer (the engine creates one internally).
func TestSpanInstantCorrelation(t *testing.T) {
	sp, _ := spanEnv(t, Options{
		Batches: 6, Trials: 20, Seed: 11,
		Parallelism: 4, ParallelThreshold: 64,
		Chaos: chaos.New(chaos.Config{Seed: 5, PanicProb: 0.4}),
	})
	ins := sp.Instants()
	if len(ins) == 0 {
		t.Fatal("no instant events mirrored")
	}
	havePanic := false
	seqSeen := map[uint64]bool{}
	for _, i := range ins {
		if i.Name == EvWorkerPanic || i.Name == EvFault {
			havePanic = true
		}
		if seqSeen[i.Seq] {
			t.Fatalf("duplicate mirrored seq %d", i.Seq)
		}
		seqSeen[i.Seq] = true
	}
	if !havePanic {
		t.Fatal("fault/panic instants missing under chaos")
	}
	if err := otrace.ValidateNesting(sp.Spans()); err != nil {
		t.Fatalf("nesting under chaos: %v", err)
	}
	// Serial retries must appear as spans when panics were contained.
	retries := 0
	for _, s := range sp.Spans() {
		if s.Name == "serial-retry" {
			retries++
		}
	}
	if retries == 0 {
		t.Fatal("no serial-retry spans despite injected panics")
	}
}

// TestSpanCheckpointResume: checkpoint and resume edges land on the
// timeline, and the resume replay's batches nest under the resume span.
func TestSpanCheckpointResume(t *testing.T) {
	cat := foldCatalog(8000, 3)
	q, err := plan.Compile(`SELECT a, SUM(x) FROM facts GROUP BY a`, cat)
	if err != nil {
		t.Fatal(err)
	}
	sp := otrace.NewTracer(0)
	opt := Options{Batches: 6, Trials: 20, Seed: 9, Parallelism: 1, Spans: sp}
	eng, err := New(q, cat, opt)
	if err != nil {
		t.Fatal(err)
	}
	defer eng.Close()
	for i := 0; i < 3; i++ {
		if _, err := eng.Step(); err != nil {
			t.Fatal(err)
		}
	}
	ck, err := eng.Checkpoint()
	if err != nil {
		t.Fatal(err)
	}

	sp2 := otrace.NewTracer(0)
	opt2 := opt
	opt2.Spans = sp2
	eng2, err := Resume(q, cat, opt2, ck)
	if err != nil {
		t.Fatal(err)
	}
	defer eng2.Close()
	for !eng2.Done() {
		if _, err := eng2.Step(); err != nil {
			t.Fatal(err)
		}
	}

	names := func(tr *otrace.Tracer) map[string]int {
		m := map[string]int{}
		for _, s := range tr.Spans() {
			m[s.Name]++
		}
		return m
	}
	if n := names(sp); n["checkpoint"] != 1 {
		t.Fatalf("checkpoint spans = %d, want 1", n["checkpoint"])
	}
	n2 := names(sp2)
	if n2["resume"] != 1 {
		t.Fatalf("resume spans = %d, want 1", n2["resume"])
	}
	if err := otrace.ValidateNesting(sp2.Spans()); err != nil {
		t.Fatalf("resume nesting: %v", err)
	}
}
