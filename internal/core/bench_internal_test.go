package core

import (
	"testing"

	"fluodb/internal/plan"
)

// Component micro-benchmarks for the hot paths of one G-OLA mini-batch.

func BenchmarkFeedTupleSBI(b *testing.B) {
	cat := synthCatalog(20000, 50, 61)
	q, _ := plan.Compile(`SELECT AVG(play_time) FROM sessions
		WHERE buffer_time > (SELECT AVG(buffer_time) FROM sessions)`, cat)
	eng, err := New(q, cat, Options{Batches: 10, Trials: 100, Seed: 62})
	if err != nil {
		b.Fatal(err)
	}
	// One warm-up batch so ranges exist and classification is exercised.
	if _, err := eng.Step(); err != nil {
		b.Fatal(err)
	}
	r := eng.runners[len(eng.runners)-1]
	ts := eng.tables["sessions"]
	rows := ts.batches[1]
	te := eng.triEnv()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		fact := rows[i%len(rows)]
		var weights []uint8
		repW := 0.0
		if eng.sampled(ts, i%len(rows)) {
			weights = eng.weightsFor(ts, i%len(rows))
			repW = ts.invP
		}
		r.feedTuple(fact, weights, repW, te)
	}
}

func BenchmarkClassifyTuple(b *testing.B) {
	cat := synthCatalog(20000, 50, 63)
	q, _ := plan.Compile(`SELECT AVG(play_time) FROM sessions
		WHERE buffer_time > (SELECT AVG(buffer_time) FROM sessions)`, cat)
	eng, _ := New(q, cat, Options{Batches: 10, Trials: 50, Seed: 64})
	if _, err := eng.Step(); err != nil {
		b.Fatal(err)
	}
	r := eng.runners[len(eng.runners)-1]
	te := eng.triEnv()
	row := eng.tables["sessions"].batches[1][0]
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		te.evalTri(r.uncertainWhere, row)
	}
}

func BenchmarkSnapshotGlobalAgg(b *testing.B) {
	cat := synthCatalog(20000, 50, 65)
	q, _ := plan.Compile(`SELECT AVG(play_time) FROM sessions
		WHERE buffer_time > (SELECT AVG(buffer_time) FROM sessions)`, cat)
	eng, _ := New(q, cat, Options{Batches: 10, Trials: 100, Seed: 66})
	if _, err := eng.Step(); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		eng.snapshot(0)
	}
}

func BenchmarkWeightsFor(b *testing.B) {
	cat := synthCatalog(1000, 10, 67)
	q, _ := plan.Compile(`SELECT COUNT(*) FROM sessions`, cat)
	eng, _ := New(q, cat, Options{Batches: 2, Trials: 100, Seed: 68})
	ts := eng.tables["sessions"]
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		eng.weightsFor(ts, i)
	}
}
