package core

import (
	"fmt"
	"math"
	"sync/atomic"

	"fluodb/internal/bootstrap"
	"fluodb/internal/expr"
	"fluodb/internal/types"
)

// scalarBinding is the online value of an uncorrelated scalar subquery.
type scalarBinding struct {
	point types.Value
	reps  []types.Value // one per bootstrap trial
	rng   paramRange
	// committed is the intersection of every variation range published
	// so far; escaping it is a range failure (§3.2).
	committed    bootstrap.Range
	hasCommitted bool
	epsBoost     float64 // widened after each failure to guarantee progress
}

// groupBinding is the online value of a correlated (per-group) scalar
// subquery. Replica vectors are materialized lazily through repFn: with
// closed-form CLT ranges, per-trial group estimates are only needed for
// the (few) groups actually probed during snapshot error estimation.
type groupBinding struct {
	point     map[string]types.Value
	reps      map[string][]types.Value
	repFn     func(key string) []types.Value
	rng       map[string]paramRange
	committed map[string]bootstrap.Range
	complete  bool
	epsBoost  float64
}

// repsFor returns the (possibly lazily computed) replica vector of a
// group, or nil when the group is unknown.
func (g *groupBinding) repsFor(key string) []types.Value {
	if vs, ok := g.reps[key]; ok {
		return vs
	}
	if g.repFn == nil {
		return nil
	}
	vs := g.repFn(key)
	g.reps[key] = vs
	return vs
}

// setBinding is the online membership of an IN-subquery. Per-trial
// membership vectors are materialized lazily through repFn (only the
// keys probed during snapshot error estimation pay for per-trial
// evaluation).
type setBinding struct {
	point     map[string]bool
	reps      map[string][]bool
	repFn     func(key string) []bool
	tri       map[string]tri
	committed map[string]bool // key → committed det membership
	complete  bool
	epsBoost  float64 // widened after each failure to guarantee progress
}

// repsFor returns the (possibly lazily computed) per-trial membership of
// a key, or nil when unknown.
func (s *setBinding) repsFor(key string) []bool {
	if ms, ok := s.reps[key]; ok {
		return ms
	}
	if s.repFn == nil {
		return nil
	}
	ms := s.repFn(key)
	s.reps[key] = ms
	return ms
}

// bindings is the full parameter environment of a query during online
// execution.
type bindings struct {
	trials  int
	scalars []*scalarBinding
	groups  []*groupBinding
	sets    []*setBinding
	// noCommit disables deterministic classification entirely: ranges
	// publish as unknown and no decisions are committed. It is the
	// guaranteed-termination fallback when repeated range failures keep
	// recurring (every tuple stays uncertain; results remain correct,
	// delta maintenance just degrades to snapshot-time evaluation).
	noCommit bool
	// tracer (when non-nil) receives commit and range-failure events;
	// the paramIdx → plan-block-ID maps let events name the owning
	// block. Filled by core.New; reset() leaves them intact.
	tracer       *Tracer
	scalarBlocks []int
	groupBlocks  []int
	setBlocks    []int
	// flips counts every contradiction of a previously committed
	// deterministic decision (range escape or membership flip) detected
	// in-flight, across the whole run: reset() deliberately does not
	// clear it, so the count survives failure-recovery replays. Exposed
	// as Metrics.DetFlips and the gola_deterministic_flips_total metric.
	flips int
}

// blockOf maps a parameter index to its plan block ID (0 when the map
// was never wired, e.g. bindings built directly in tests).
func blockOf(ids []int, idx int) int {
	if idx < len(ids) {
		return ids[idx]
	}
	return 0
}

// pfloat extracts a float for event payloads (0 for non-numeric).
func pfloat(v types.Value) float64 {
	f, _ := v.AsFloat()
	return f
}

func newBindings(nScalar, nGroup, nSet, trials int) *bindings {
	b := &bindings{
		trials:  trials,
		scalars: make([]*scalarBinding, nScalar),
		groups:  make([]*groupBinding, nGroup),
		sets:    make([]*setBinding, nSet),
	}
	for i := range b.scalars {
		b.scalars[i] = &scalarBinding{
			point:    types.Null,
			reps:     nullValues(trials),
			rng:      paramRange{status: rsUnknown},
			epsBoost: 1,
		}
	}
	for i := range b.groups {
		b.groups[i] = &groupBinding{
			point:     map[string]types.Value{},
			reps:      map[string][]types.Value{},
			rng:       map[string]paramRange{},
			committed: map[string]bootstrap.Range{},
			epsBoost:  1,
		}
	}
	for i := range b.sets {
		b.sets[i] = &setBinding{
			point:     map[string]bool{},
			reps:      map[string][]bool{},
			tri:       map[string]tri{},
			committed: map[string]bool{},
			epsBoost:  1,
		}
	}
	return b
}

func nullValues(n int) []types.Value {
	out := make([]types.Value, n)
	for i := range out {
		out[i] = types.Null
	}
	return out
}

// reset clears estimates but preserves the epsBoost widening factors
// (replay after a failure must use wider ranges or it would fail again
// at the same batch).
func (b *bindings) reset() {
	for i, s := range b.scalars {
		boost := s.epsBoost
		b.scalars[i] = &scalarBinding{
			point: types.Null, reps: nullValues(b.trials),
			rng: paramRange{status: rsUnknown}, epsBoost: boost,
		}
	}
	for i, g := range b.groups {
		boost := g.epsBoost
		b.groups[i] = &groupBinding{
			point: map[string]types.Value{}, reps: map[string][]types.Value{},
			rng: map[string]paramRange{}, committed: map[string]bootstrap.Range{},
			epsBoost: boost,
		}
	}
	for i, s := range b.sets {
		boost := s.epsBoost
		b.sets[i] = &setBinding{
			point: map[string]bool{}, reps: map[string][]bool{},
			tri: map[string]tri{}, committed: map[string]bool{},
			epsBoost: boost,
		}
	}
}

// pointCtx builds the point-estimate expression context for a row.
func (b *bindings) pointCtx(row types.Row) *expr.Ctx {
	ctx := &expr.Ctx{Row: row}
	ctx.Scalars = make([]types.Value, len(b.scalars))
	for i, s := range b.scalars {
		ctx.Scalars[i] = s.point
	}
	ctx.Groups = make([]func(string) (types.Value, bool), len(b.groups))
	for i := range b.groups {
		g := b.groups[i]
		ctx.Groups[i] = func(key string) (types.Value, bool) {
			v, ok := g.point[key]
			return v, ok
		}
	}
	ctx.SetsFns = make([]expr.SetLookup, len(b.sets))
	for i := range b.sets {
		s := b.sets[i]
		ctx.SetsFns[i] = func(key string) bool { return s.point[key] }
	}
	return ctx
}

// trialCtx builds the expression context of bootstrap trial j.
func (b *bindings) trialCtx(row types.Row, j int) *expr.Ctx {
	ctx := &expr.Ctx{Row: row}
	ctx.Scalars = make([]types.Value, len(b.scalars))
	for i, s := range b.scalars {
		ctx.Scalars[i] = s.reps[j]
	}
	ctx.Groups = make([]func(string) (types.Value, bool), len(b.groups))
	for i := range b.groups {
		g := b.groups[i]
		ctx.Groups[i] = func(key string) (types.Value, bool) {
			vs := g.repsFor(key)
			if vs == nil {
				return types.Null, false
			}
			return vs[j], true
		}
	}
	ctx.SetsFns = make([]expr.SetLookup, len(b.sets))
	for i := range b.sets {
		s := b.sets[i]
		ctx.SetsFns[i] = func(key string) bool {
			ms := s.repsFor(key)
			return ms != nil && ms[j]
		}
	}
	return ctx
}

// triEnv builds the interval-semantics environment for tuple
// classification.
func (b *bindings) triEnv() *triEnv {
	te := &triEnv{pointCtx: b.pointCtx(nil)}
	te.scalarRanges = make([]paramRange, len(b.scalars))
	for i, s := range b.scalars {
		te.scalarRanges[i] = s.rng
	}
	te.groupRanges = make([]func(string) paramRange, len(b.groups))
	for i := range b.groups {
		g := b.groups[i]
		te.groupRanges[i] = func(key string) paramRange {
			if r, ok := g.rng[key]; ok {
				return r
			}
			if g.complete {
				// Missing group on a fully-consumed table: the nested
				// aggregate is NULL for this key, so predicates fail.
				return paramRange{status: rsNull}
			}
			return paramRange{status: rsUnknown}
		}
	}
	te.setTri = make([]func(string) tri, len(b.sets))
	for i := range b.sets {
		s := b.sets[i]
		te.setTri[i] = func(key string) tri {
			if t, ok := s.tri[key]; ok {
				return t
			}
			if s.complete {
				return triFalse
			}
			return triUnknown
		}
	}
	return te
}

// workerPointCtx builds a point-estimate context for a persistent
// worker. Unlike pointCtx, the group and set lookups dereference the
// binding slot (b.groups[i], b.sets[i]) at call time: reset() replaces
// the binding structs wholesale during failure-recovery replay, which
// would strand closures that captured the old pointers. Scalar values
// are by-value snapshots; refreshTriEnv re-fills them before each task.
func (b *bindings) workerPointCtx() *expr.Ctx {
	ctx := &expr.Ctx{Scalars: make([]types.Value, len(b.scalars))}
	ctx.Groups = make([]func(string) (types.Value, bool), len(b.groups))
	for i := range b.groups {
		ctx.Groups[i] = func(key string) (types.Value, bool) {
			v, ok := b.groups[i].point[key]
			return v, ok
		}
	}
	ctx.SetsFns = make([]expr.SetLookup, len(b.sets))
	for i := range b.sets {
		ctx.SetsFns[i] = func(key string) bool { return b.sets[i].point[key] }
	}
	return ctx
}

// workerTriEnv is triEnv for a persistent worker: group/set lookups are
// dynamic (they survive bindings.reset), the scalar snapshots are
// filled by refreshTriEnv before each batch of tasks.
func (b *bindings) workerTriEnv() *triEnv {
	te := &triEnv{pointCtx: b.workerPointCtx()}
	te.scalarRanges = make([]paramRange, len(b.scalars))
	te.groupRanges = make([]func(string) paramRange, len(b.groups))
	for i := range b.groups {
		te.groupRanges[i] = func(key string) paramRange {
			g := b.groups[i]
			if r, ok := g.rng[key]; ok {
				return r
			}
			if g.complete {
				// Missing group on a fully-consumed table: the nested
				// aggregate is NULL for this key, so predicates fail.
				return paramRange{status: rsNull}
			}
			return paramRange{status: rsUnknown}
		}
	}
	te.setTri = make([]func(string) tri, len(b.sets))
	for i := range b.sets {
		te.setTri[i] = func(key string) tri {
			s := b.sets[i]
			if t, ok := s.tri[key]; ok {
				return t
			}
			if s.complete {
				return triFalse
			}
			return triUnknown
		}
	}
	return te
}

// refreshTriEnv re-snapshots the by-value state of a worker triEnv —
// scalar points and variation ranges — from the current bindings.
// Everything else in the environment reads the live bindings at call
// time and needs no refresh.
func (b *bindings) refreshTriEnv(te *triEnv) {
	for i, s := range b.scalars {
		te.scalarRanges[i] = s.rng
		te.pointCtx.Scalars[i] = s.point
	}
}

// updateScalar installs a fresh estimate and variation range for scalar
// param idx; it reports whether a committed-range failure was detected.
func (b *bindings) updateScalar(idx int, point types.Value, reps []types.Value, rng paramRange) bool {
	s := b.scalars[idx]
	s.point = point
	s.reps = reps
	if b.noCommit {
		s.rng = paramRange{status: rsUnknown}
		return false
	}
	s.rng = rng
	if s.rng.status != rsOK {
		return false
	}
	if !s.hasCommitted {
		s.committed = s.rng.r
		s.hasCommitted = true
		b.tracer.Emit(Event{Kind: EvCommit, Block: blockOf(b.scalarBlocks, idx),
			Point: pfloat(point), Lo: s.committed.Lo, Hi: s.committed.Hi, Boost: s.epsBoost})
		return false
	}
	if escapes(s.committed, point) {
		b.flips++
		b.tracer.Emit(Event{Kind: EvRangeFailure, Block: blockOf(b.scalarBlocks, idx),
			Point: pfloat(point), Lo: s.committed.Lo, Hi: s.committed.Hi, Boost: s.epsBoost})
		s.epsBoost *= 2
		return true
	}
	s.committed = intersect(s.committed, s.rng.r)
	return false
}

// updateGroupEntry installs a fresh estimate and variation range for one
// group of group param idx; it reports whether a committed-range failure
// was detected. When commit is false (group below the minimum support),
// the range publishes as unknown so downstream tuples stay uncertain and
// no decision is committed.
func (b *bindings) updateGroupEntry(idx int, key string, point types.Value, rng paramRange, commit bool) bool {
	g := b.groups[idx]
	g.point[key] = point
	if b.noCommit {
		g.rng[key] = paramRange{status: rsUnknown}
		return false
	}
	if !commit {
		g.rng[key] = paramRange{status: rsUnknown}
		// An earlier committed range may still be violated (possible
		// only through replay; in the forward path support is
		// monotone), so check it if present.
		if committed, ok := g.committed[key]; ok && escapes(committed, point) {
			b.flips++
			b.tracer.Emit(Event{Kind: EvRangeFailure, Block: blockOf(b.groupBlocks, idx), Key: key,
				Point: pfloat(point), Lo: committed.Lo, Hi: committed.Hi, Boost: g.epsBoost,
				Note: "support dropped below commit threshold during replay"})
			return true
		}
		return false
	}
	g.rng[key] = rng
	if rng.status != rsOK {
		return false
	}
	committed, ok := g.committed[key]
	if !ok {
		g.committed[key] = rng.r
		b.tracer.Emit(Event{Kind: EvCommit, Block: blockOf(b.groupBlocks, idx), Key: key,
			Point: pfloat(point), Lo: rng.r.Lo, Hi: rng.r.Hi, Boost: g.epsBoost})
		return false
	}
	if escapes(committed, point) {
		b.flips++
		if debugFailures.Load() {
			fmt.Printf("core: group range failure key=%q committed=[%g,%g] point=%v boost=%g\n",
				key, committed.Lo, committed.Hi, point, g.epsBoost)
		}
		b.tracer.Emit(Event{Kind: EvRangeFailure, Block: blockOf(b.groupBlocks, idx), Key: key,
			Point: pfloat(point), Lo: committed.Lo, Hi: committed.Hi, Boost: g.epsBoost})
		return true
	}
	g.committed[key] = intersect(committed, rng.r)
	return false
}

// debugFailures enables failure-path printf tracing (tests only). It is
// read from worker goroutines, hence atomic; structured observation
// should use the Tracer instead.
var debugFailures atomic.Bool

// updateSetEntry installs a fresh membership classification for one key
// of set param idx; it reports whether a committed membership decision
// was contradicted.
func (b *bindings) updateSetEntry(idx int, key string, point bool, t tri) bool {
	s := b.sets[idx]
	s.point[key] = point
	if b.noCommit {
		s.tri[key] = triUnknown
		return false
	}
	s.tri[key] = t
	if committed, ok := s.committed[key]; ok {
		if point != committed {
			b.flips++
			delete(s.committed, key)
			b.tracer.Emit(Event{Kind: EvRangeFailure, Block: blockOf(b.setBlocks, idx), Key: key,
				Note: "membership contradicts committed decision"})
			return true
		}
		return false
	}
	if t != triUnknown {
		s.committed[key] = t == triTrue
		note := "committed member"
		if t != triTrue {
			note = "committed non-member"
		}
		b.tracer.Emit(Event{Kind: EvCommit, Block: blockOf(b.setBlocks, idx), Key: key, Note: note})
	}
	return false
}

// buildRange derives the variation range of an uncertain numeric value
// from its point estimate and bootstrap replicas, with slack
// ε = epsSigma · stddev(replicas) (§3.2: ε equal to one standard
// deviation balances recomputation probability against uncertain-set
// size).
func buildRange(point types.Value, reps []types.Value, epsSigma float64) paramRange {
	p, ok := point.AsFloat()
	if !ok {
		if point.IsNull() {
			return paramRange{status: rsNull}
		}
		return paramRange{status: rsUnknown}
	}
	vals := make([]float64, 0, len(reps))
	for _, r := range reps {
		if f, ok := r.AsFloat(); ok {
			vals = append(vals, f)
		}
	}
	// Without enough replica evidence (e.g. a group whose rows fall
	// outside the bootstrap subsample) no range can be trusted: stay
	// uncertain rather than committing against a degenerate interval.
	if len(vals) < minReplicaObs(len(reps)) {
		return paramRange{status: rsUnknown}
	}
	sd := bootstrap.StdDev(vals)
	// (Near-)zero replica variance before completion means the
	// bootstrap has no dispersion information — e.g. every replica of
	// an AVG over a single sampled tuple equals that tuple, up to
	// floating-point noise. Such hairline ranges must never commit
	// deterministic decisions: the epsilon boost multiplies the (tiny)
	// variance and could not recover from a wrong commit. The
	// threshold is relative to the value magnitude.
	if sd <= 1e-9*(1+math.Abs(p)) {
		return paramRange{status: rsUnknown}
	}
	return okRange(bootstrap.VariationRange(p, vals, epsSigma*sd))
}

// minReplicaObs is the minimum number of replica observations required
// to trust a variation range.
func minReplicaObs(trials int) int {
	m := trials / 4
	if m < 3 {
		m = 3
	}
	return m
}

// escapes reports whether the running point estimate left the committed
// range — the paper's failure condition. (Bootstrap replicas are not
// checked: with subsampled replicas their extremes are noisy, and the
// point estimate is what converges to the value the committed decisions
// must hold for; a wrong decision is caught when the point crosses.)
func escapes(committed bootstrap.Range, point types.Value) bool {
	f, ok := point.AsFloat()
	return ok && !committed.Contains(f)
}

func intersect(a, b bootstrap.Range) bootstrap.Range {
	lo, hi := a.Lo, a.Hi
	if b.Lo > lo {
		lo = b.Lo
	}
	if b.Hi < hi {
		hi = b.Hi
	}
	if hi < lo {
		hi = lo
	}
	return bootstrap.Range{Lo: lo, Hi: hi}
}
