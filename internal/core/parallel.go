package core

import (
	"runtime"
	"sync"
	"time"

	"fluodb/internal/types"
)

// Intra-batch parallelism. FluoDB is "a parallel online query execution
// framework" (§1); here each mini-batch is sharded across workers, each
// folding into a private aggregate table and uncertain buffer, merged
// deterministically (worker 0..P−1) afterwards. All aggregate states
// are mergeable by construction (internal/agg), the CLT moments merge
// with the parallel-variance formula, and per-tuple resamples are
// counter-based hashes, so the statistics are identical to a serial run
// up to group insertion order.

// parallelThreshold is the minimum shard size worth a goroutine.
const parallelThreshold = 2048

// merge folds another accumulator into a (Chan et al. parallel
// variance).
func (a *cltAcc) merge(b cltAcc) {
	if b.n == 0 {
		return
	}
	if a.n == 0 {
		*a = b
		return
	}
	n := a.n + b.n
	d := b.mean - a.mean
	a.m2 += b.m2 + d*d*a.n*b.n/n
	a.mean += d * b.n / n
	a.n = n
}

// feedShard folds rows[lo:hi) of a mini-batch into a private table and
// uncertain buffer. te, tab, uncertain, arena, acc and the weights
// scratch must be private to the worker.
func (r *blockRunner) feedShard(rows []types.Row, baseIdx int, ts *tableStream, te *triEnv, tab *onlineTable, uncertain *[]uncertainRow, arena *weightArena, folds *int64, acc *phaseAcc) {
	e := r.eng
	prof := e.profile
	var wbuf []uint8
	for i, fact := range rows {
		var weights []uint8
		repW := 0.0
		var t0 time.Time
		if prof {
			t0 = time.Now()
		}
		if e.sampled(ts, baseIdx+i) {
			wbuf = e.weightsInto(wbuf, ts, baseIdx+i)
			weights = wbuf
			repW = ts.invP
		}
		if prof {
			acc.ns[phaseWeights] += int64(time.Since(t0))
		}
		r.feedTupleTo(fact, weights, repW, te, tab, uncertain, arena, folds, acc)
	}
}

// feedBatchSerial folds a mini-batch on the caller's goroutine, reusing
// the runner's weights scratch.
func (r *blockRunner) feedBatchSerial(rows []types.Row, baseIdx int, ts *tableStream, te *triEnv) {
	prof := r.eng.profile
	for i, fact := range rows {
		var weights []uint8
		repW := 0.0
		var t0 time.Time
		if prof {
			t0 = time.Now()
		}
		if r.eng.sampled(ts, baseIdx+i) {
			r.wbuf = r.eng.weightsInto(r.wbuf, ts, baseIdx+i)
			weights = r.wbuf
			repW = ts.invP
		}
		if prof {
			r.acc.ns[phaseWeights] += int64(time.Since(t0))
		}
		r.feedTuple(fact, weights, repW, te)
	}
}

// feedBatchParallel shards one mini-batch across the engine's workers.
// It falls back to serial feeding for small batches, or when the shard
// clamp leaves a single worker (one goroutine with full shard/merge
// overhead would only be slower).
func (r *blockRunner) feedBatchParallel(rows []types.Row, baseIdx int, ts *tableStream, te *triEnv) {
	workers := r.eng.opt.Parallelism
	if workers <= 1 || len(rows) < 2*parallelThreshold {
		r.feedBatchSerial(rows, baseIdx, ts, te)
		return
	}
	if max := len(rows) / parallelThreshold; workers > max {
		workers = max
	}
	if workers <= 1 {
		r.feedBatchSerial(rows, baseIdx, ts, te)
		return
	}
	type shardOut struct {
		tab       *onlineTable
		uncertain *[]uncertainRow
		arena     weightArena
		folds     int64
		// Per-worker phase times, merged into the runner's accumulator
		// after the barrier; phase breakdowns therefore sum worker time
		// and may exceed batch wall time under parallel folding.
		acc phaseAcc
	}
	outs := make([]shardOut, workers)
	// joiner shares dimension hash tables (read-only) but its one-row
	// scratch is per-call state: give each worker a shallow copy.
	var wg sync.WaitGroup
	size := len(rows) / workers
	for w := 0; w < workers; w++ {
		lo := w * size
		hi := lo + size
		if w == workers-1 {
			hi = len(rows)
		}
		wg.Add(1)
		go func(w, lo, hi int) {
			defer wg.Done()
			wr := *r // shallow: shares joiner dims, block, engine
			wr.joiner = r.joiner.CloneForWorker()
			tab := newOnlineTable(r.eng.opt.Trials)
			tab.configure(r.cltKinds)
			wte := r.eng.triEnv()
			unc := uncertainBufPool.Get().(*[]uncertainRow)
			*unc = (*unc)[:0]
			out := &outs[w]
			out.tab = tab
			out.uncertain = unc
			wr.feedShard(rows[lo:hi], baseIdx+lo, ts, wte, tab, unc, &out.arena, &out.folds, &out.acc)
		}(w, lo, hi)
	}
	wg.Wait()
	for w := range outs {
		r.tab.merge(outs[w].tab)
		r.uncertain = append(r.uncertain, *outs[w].uncertain...)
		r.arena.adopt(&outs[w].arena)
		r.eng.metrics.DeterministicFolds += outs[w].folds
		r.acc.merge(&outs[w].acc)
		// The uncertain rows now live in r.uncertain; recycle the worker
		// buffer (zeroed so dropped rows stay collectable).
		buf := *outs[w].uncertain
		for i := range buf {
			buf[i] = uncertainRow{}
		}
		*outs[w].uncertain = buf[:0]
		uncertainBufPool.Put(outs[w].uncertain)
	}
	r.sampledIdxValid = false
}

// defaultParallelism resolves Parallelism 0.
func defaultParallelism() int { return runtime.GOMAXPROCS(0) }
