package core

import (
	"runtime"
	"sync"

	"fluodb/internal/plan"
	"fluodb/internal/types"
)

// Intra-batch parallelism. FluoDB is "a parallel online query execution
// framework" (§1); here each mini-batch is sharded across workers, each
// folding into a private aggregate table and uncertain buffer, merged
// deterministically (worker 0..P−1) afterwards. All aggregate states
// are mergeable by construction (internal/agg), the CLT moments merge
// with the parallel-variance formula, and per-tuple resamples are
// counter-based hashes, so the statistics are identical to a serial run
// up to group insertion order.

// parallelThreshold is the minimum shard size worth a goroutine.
const parallelThreshold = 2048

// merge folds another accumulator into a (Chan et al. parallel
// variance).
func (a *cltAcc) merge(b cltAcc) {
	if b.n == 0 {
		return
	}
	if a.n == 0 {
		*a = b
		return
	}
	n := a.n + b.n
	d := b.mean - a.mean
	a.m2 += b.m2 + d*d*a.n*b.n/n
	a.mean += d * b.n / n
	a.n = n
}

// mergeEntry folds a worker's group entry into the main entry.
func (e *onlineEntry) mergeEntry(o *onlineEntry) {
	e.n += o.n
	e.ns += o.ns
	for i := range e.main {
		e.main[i].Merge(o.main[i])
	}
	for j := range e.reps {
		for i := range e.reps[j] {
			e.reps[j][i].Merge(o.reps[j][i])
		}
	}
	if e.clt != nil && o.clt != nil {
		for i := range e.clt {
			e.clt[i].merge(o.clt[i])
		}
	}
}

// merge folds a worker table into t, preserving t's insertion order for
// existing groups and appending new groups in the worker's order.
func (t *onlineTable) merge(o *onlineTable, b *plan.Block) {
	for _, key := range o.order {
		oe := o.m[key]
		e, ok := t.m[key]
		if !ok {
			t.m[key] = oe
			t.order = append(t.order, key)
			continue
		}
		e.mergeEntry(oe)
	}
}

// feedShard folds rows[lo:hi) of a mini-batch into a private table and
// uncertain buffer. te must be private to the worker.
func (r *blockRunner) feedShard(rows []types.Row, baseIdx int, ts *tableStream, te *triEnv, tab *onlineTable, uncertain *[]uncertainRow, folds *int64) {
	e := r.eng
	for i, fact := range rows {
		var weights []uint8
		repW := 0.0
		if e.sampled(ts, baseIdx+i) {
			weights = e.weightsFor(ts, baseIdx+i)
			repW = ts.invP
		}
		for _, row := range r.joiner.Join(fact) {
			te.pointCtx.Row = row
			if r.certainWhere != nil && !r.certainWhere.Eval(te.pointCtx).Truthy() {
				continue
			}
			if r.uncertainWhere == nil {
				tab.fold(r.b, te.pointCtx, weights, repW)
				*folds++
				continue
			}
			switch te.evalTri(r.uncertainWhere, row) {
			case triTrue:
				te.pointCtx.Row = row
				tab.fold(r.b, te.pointCtx, weights, repW)
				*folds++
			case triFalse:
				// dropped forever
			default:
				*uncertain = append(*uncertain, uncertainRow{row: row, weights: weights, repW: repW})
			}
		}
	}
}

// feedBatchParallel shards one mini-batch across the engine's workers.
// It falls back to serial feeding for small batches.
func (r *blockRunner) feedBatchParallel(rows []types.Row, baseIdx int, ts *tableStream, te *triEnv) {
	workers := r.eng.opt.Parallelism
	if workers <= 1 || len(rows) < 2*parallelThreshold {
		for i, fact := range rows {
			var weights []uint8
			repW := 0.0
			if r.eng.sampled(ts, baseIdx+i) {
				weights = r.eng.weightsFor(ts, baseIdx+i)
				repW = ts.invP
			}
			r.feedTuple(fact, weights, repW, te)
		}
		return
	}
	if max := len(rows) / parallelThreshold; workers > max {
		workers = max
	}
	type shardOut struct {
		tab       *onlineTable
		uncertain []uncertainRow
		folds     int64
	}
	outs := make([]shardOut, workers)
	// joiner shares dimension hash tables (read-only) but its one-row
	// scratch is per-call state: give each worker a shallow copy.
	var wg sync.WaitGroup
	size := len(rows) / workers
	for w := 0; w < workers; w++ {
		lo := w * size
		hi := lo + size
		if w == workers-1 {
			hi = len(rows)
		}
		wg.Add(1)
		go func(w, lo, hi int) {
			defer wg.Done()
			wr := *r // shallow: shares joiner dims, block, engine
			wr.joiner = r.joiner.CloneForWorker()
			tab := newOnlineTable(r.eng.opt.Trials)
			tab.cltKinds = r.cltKinds
			wte := r.eng.triEnv()
			var unc []uncertainRow
			var folds int64
			wr.feedShard(rows[lo:hi], baseIdx+lo, ts, wte, tab, &unc, &folds)
			outs[w] = shardOut{tab: tab, uncertain: unc, folds: folds}
		}(w, lo, hi)
	}
	wg.Wait()
	for w := range outs {
		r.tab.merge(outs[w].tab, r.b)
		r.uncertain = append(r.uncertain, outs[w].uncertain...)
		r.eng.metrics.DeterministicFolds += outs[w].folds
	}
	if len(outs) > 0 {
		r.sampledIdxValid = false
	}
}

// defaultParallelism resolves Parallelism 0.
func defaultParallelism() int { return runtime.GOMAXPROCS(0) }
