package core

import (
	"runtime"
	"sync"

	"fluodb/internal/types"
)

// Intra-batch parallelism. FluoDB is "a parallel online query execution
// framework" (§1); here each mini-batch is sharded across workers, each
// folding into a private aggregate table and uncertain buffer, merged
// deterministically (worker 0..P−1) afterwards. All aggregate states
// are mergeable by construction (internal/agg), the CLT moments merge
// with the parallel-variance formula, and per-tuple resamples are
// counter-based hashes, so the statistics are identical to a serial run
// up to group insertion order.

// parallelThreshold is the minimum shard size worth a goroutine.
const parallelThreshold = 2048

// merge folds another accumulator into a (Chan et al. parallel
// variance).
func (a *cltAcc) merge(b cltAcc) {
	if b.n == 0 {
		return
	}
	if a.n == 0 {
		*a = b
		return
	}
	n := a.n + b.n
	d := b.mean - a.mean
	a.m2 += b.m2 + d*d*a.n*b.n/n
	a.mean += d * b.n / n
	a.n = n
}

// feedShard folds rows[lo:hi) of a mini-batch into a private table and
// uncertain buffer. te, tab, uncertain, arena and the weights scratch
// must be private to the worker.
func (r *blockRunner) feedShard(rows []types.Row, baseIdx int, ts *tableStream, te *triEnv, tab *onlineTable, uncertain *[]uncertainRow, arena *weightArena, folds *int64) {
	e := r.eng
	var wbuf []uint8
	for i, fact := range rows {
		var weights []uint8
		repW := 0.0
		if e.sampled(ts, baseIdx+i) {
			wbuf = e.weightsInto(wbuf, ts, baseIdx+i)
			weights = wbuf
			repW = ts.invP
		}
		for _, row := range r.joiner.Join(fact) {
			te.pointCtx.Row = row
			if r.certainWhere != nil && !r.certainWhere.Eval(te.pointCtx).Truthy() {
				continue
			}
			if r.uncertainWhere == nil {
				tab.fold(r.b, te.pointCtx, weights, repW)
				*folds++
				continue
			}
			switch te.evalTri(r.uncertainWhere, row) {
			case triTrue:
				te.pointCtx.Row = row
				tab.fold(r.b, te.pointCtx, weights, repW)
				*folds++
			case triFalse:
				// dropped forever
			default:
				*uncertain = append(*uncertain, uncertainRow{row: row, weights: arena.hold(weights), repW: repW})
			}
		}
	}
}

// feedBatchSerial folds a mini-batch on the caller's goroutine, reusing
// the runner's weights scratch.
func (r *blockRunner) feedBatchSerial(rows []types.Row, baseIdx int, ts *tableStream, te *triEnv) {
	for i, fact := range rows {
		var weights []uint8
		repW := 0.0
		if r.eng.sampled(ts, baseIdx+i) {
			r.wbuf = r.eng.weightsInto(r.wbuf, ts, baseIdx+i)
			weights = r.wbuf
			repW = ts.invP
		}
		r.feedTuple(fact, weights, repW, te)
	}
}

// feedBatchParallel shards one mini-batch across the engine's workers.
// It falls back to serial feeding for small batches, or when the shard
// clamp leaves a single worker (one goroutine with full shard/merge
// overhead would only be slower).
func (r *blockRunner) feedBatchParallel(rows []types.Row, baseIdx int, ts *tableStream, te *triEnv) {
	workers := r.eng.opt.Parallelism
	if workers <= 1 || len(rows) < 2*parallelThreshold {
		r.feedBatchSerial(rows, baseIdx, ts, te)
		return
	}
	if max := len(rows) / parallelThreshold; workers > max {
		workers = max
	}
	if workers <= 1 {
		r.feedBatchSerial(rows, baseIdx, ts, te)
		return
	}
	type shardOut struct {
		tab       *onlineTable
		uncertain *[]uncertainRow
		arena     weightArena
		folds     int64
	}
	outs := make([]shardOut, workers)
	// joiner shares dimension hash tables (read-only) but its one-row
	// scratch is per-call state: give each worker a shallow copy.
	var wg sync.WaitGroup
	size := len(rows) / workers
	for w := 0; w < workers; w++ {
		lo := w * size
		hi := lo + size
		if w == workers-1 {
			hi = len(rows)
		}
		wg.Add(1)
		go func(w, lo, hi int) {
			defer wg.Done()
			wr := *r // shallow: shares joiner dims, block, engine
			wr.joiner = r.joiner.CloneForWorker()
			tab := newOnlineTable(r.eng.opt.Trials)
			tab.configure(r.cltKinds)
			wte := r.eng.triEnv()
			unc := uncertainBufPool.Get().(*[]uncertainRow)
			*unc = (*unc)[:0]
			out := &outs[w]
			out.tab = tab
			out.uncertain = unc
			wr.feedShard(rows[lo:hi], baseIdx+lo, ts, wte, tab, unc, &out.arena, &out.folds)
		}(w, lo, hi)
	}
	wg.Wait()
	for w := range outs {
		r.tab.merge(outs[w].tab)
		r.uncertain = append(r.uncertain, *outs[w].uncertain...)
		r.arena.adopt(&outs[w].arena)
		r.eng.metrics.DeterministicFolds += outs[w].folds
		// The uncertain rows now live in r.uncertain; recycle the worker
		// buffer (zeroed so dropped rows stay collectable).
		buf := *outs[w].uncertain
		for i := range buf {
			buf[i] = uncertainRow{}
		}
		*outs[w].uncertain = buf[:0]
		uncertainBufPool.Put(outs[w].uncertain)
	}
	r.sampledIdxValid = false
}

// defaultParallelism resolves Parallelism 0.
func defaultParallelism() int { return runtime.GOMAXPROCS(0) }
