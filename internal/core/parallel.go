package core

import (
	"fmt"
	"runtime"
	"sync"
	"time"

	"fluodb/internal/chaos"
	"fluodb/internal/retry"
	"fluodb/internal/types"
)

// Intra-batch parallelism. FluoDB is "a parallel online query execution
// framework" (§1); here each mini-batch is sharded across the engine's
// persistent workers (pool.go), each folding into a private aggregate
// table and uncertain buffer, merged deterministically (worker 0..P−1)
// afterwards. All aggregate states are mergeable by construction
// (internal/agg), the CLT moments merge with the parallel-variance
// formula, and per-tuple resamples are counter-based hashes, so the
// statistics are identical to a serial run up to group insertion order.
//
// Worker shard state persists across batches: tables are reset (entry
// free list), not reallocated, and the weights scratch, uncertain
// buffers and classification environments are reused. The pre-pool
// runtime that spawned fresh goroutines and tables per batch survives
// as feedBatchSpawn behind Options.PerBatchSpawn, as the A/B baseline
// for the scaling benchmark.

// merge folds another accumulator into a (Chan et al. parallel
// variance).
func (a *cltAcc) merge(b cltAcc) {
	if b.n == 0 {
		return
	}
	if a.n == 0 {
		*a = b
		return
	}
	n := a.n + b.n
	d := b.mean - a.mean
	a.m2 += b.m2 + d*d*a.n*b.n/n
	a.mean += d * b.n / n
	a.n = n
}

// feedShard folds rows[lo:hi) of a mini-batch into a private table and
// uncertain buffer. te, tab, uncertain, arena, acc, the cs columnar
// scratch and the wbuf weights scratch must be private to the worker;
// the (possibly grown) scratch is returned for reuse. pf, when non-nil,
// supplies prefetched subsample membership and weight vectors for the
// whole batch (read-only, safely shared across shards). When the
// block's columnar plan applies (and cs is provided), the shard is swept
// by the vectorized classify/fold path instead of the row loop below —
// bit-identically.
func (r *blockRunner) feedShard(rows []types.Row, baseIdx int, ts *tableStream, te *triEnv, tab *onlineTable, uncertain *[]uncertainRow, arena *weightArena, folds *int64, acc *phaseAcc, wbuf []uint8, pf *weightPrefetch, cs *colScratch) []uint8 {
	e := r.eng
	if cs != nil && r.colFeed(rows, baseIdx, ts, te, tab, uncertain, arena, folds, acc, cs, pf) {
		return wbuf
	}
	prof := e.profile
	trials := e.opt.Trials
	for i, fact := range rows {
		var weights []uint8
		repW := 0.0
		var t0 time.Time
		if prof {
			t0 = time.Now()
		}
		if pf != nil {
			if ri := baseIdx + i - pf.start; pf.sampled[ri] {
				weights = pf.weights[ri*trials : (ri+1)*trials]
				repW = ts.invP
			}
		} else if e.sampled(ts, baseIdx+i) {
			wbuf = e.weightsInto(wbuf, ts, baseIdx+i)
			weights = wbuf
			repW = ts.invP
		}
		if prof {
			acc.ns[phaseWeights] += int64(time.Since(t0))
		}
		r.feedTupleTo(fact, weights, repW, te, tab, uncertain, arena, folds, acc)
	}
	return wbuf
}

// feedBatchSerial folds a mini-batch on the caller's goroutine, reusing
// the runner's weights scratch. Columnar-eligible blocks sweep the
// batch through colFeed instead (bit-identical, see columnar.go).
func (r *blockRunner) feedBatchSerial(rows []types.Row, baseIdx int, ts *tableStream, te *triEnv, pf *weightPrefetch) {
	r.ensureColPlan()
	r.revalidateColPlan()
	if r.colPl.ok {
		if r.cs == nil {
			r.cs = &colScratch{}
		}
		if r.colFeed(rows, baseIdx, ts, te, r.tab, &r.uncertain, &r.arena,
			&r.eng.metrics.DeterministicFolds, &r.acc, r.cs, pf) {
			return
		}
	}
	prof := r.eng.profile
	trials := r.eng.opt.Trials
	for i, fact := range rows {
		var weights []uint8
		repW := 0.0
		var t0 time.Time
		if prof {
			t0 = time.Now()
		}
		if pf != nil {
			if ri := baseIdx + i - pf.start; pf.sampled[ri] {
				weights = pf.weights[ri*trials : (ri+1)*trials]
				repW = ts.invP
			}
		} else if r.eng.sampled(ts, baseIdx+i) {
			r.wbuf = r.eng.weightsInto(r.wbuf, ts, baseIdx+i)
			weights = r.wbuf
			repW = ts.invP
		}
		if prof {
			r.acc.ns[phaseWeights] += int64(time.Since(t0))
		}
		r.feedTuple(fact, weights, repW, te)
	}
}

// chaosFault is the panic value of an injected fault, so containment
// diagnostics can tell injected faults from real bugs.
type chaosFault struct{ kind chaos.Kind }

func (c *chaosFault) String() string { return "chaos: injected " + c.kind.String() }

// panicNote renders a recovered panic value for trace events.
func panicNote(v any) string {
	s := fmt.Sprint(v)
	if len(s) > 200 {
		s = s[:200]
	}
	return s
}

// feedBatchParallel shards one mini-batch across the engine's workers.
// It falls back to serial feeding for small batches, or when the shard
// clamp leaves a single worker (one worker with full shard/merge
// overhead would only be slower). A worker panic (injected or real) is
// contained: the affected shard scratch is quarantined and the whole
// batch is redone serially over the same shard boundaries, which is
// bit-identical to a clean parallel pass by construction. Only when the
// serial retries themselves keep panicking does a typed error surface.
func (r *blockRunner) feedBatchParallel(rows []types.Row, baseIdx int, ts *tableStream, te *triEnv, pf *weightPrefetch) error {
	e := r.eng
	// Build the columnar plan on the controller before any worker can
	// race to it (workers share the runner shallowly); re-acquire the
	// encoding here too if a fault dropped it.
	r.ensureColPlan()
	r.revalidateColPlan()
	workers := e.opt.Parallelism
	thr := e.opt.ParallelThreshold
	if workers <= 1 || len(rows) < 2*thr {
		r.feedBatchSerial(rows, baseIdx, ts, te, pf)
		return nil
	}
	if max := len(rows) / thr; workers > max {
		workers = max
	}
	if workers <= 1 {
		r.feedBatchSerial(rows, baseIdx, ts, te, pf)
		return nil
	}
	if e.opt.PerBatchSpawn {
		r.feedBatchSpawn(rows, baseIdx, ts, workers, pf)
		return nil
	}
	pool := e.ensurePool()
	if pool == nil { // engine closed: degrade to serial, stay correct
		r.feedBatchSerial(rows, baseIdx, ts, te, pf)
		return nil
	}
	inj := e.opt.Chaos
	g := &taskGroup{}
	size := len(rows) / workers
	submitted := workers
	for w := 0; w < workers; w++ {
		lo := w * size
		hi := lo + size
		if w == workers-1 {
			hi = len(rows)
		}
		err := pool.submit(w, g, func(wc *workerCtx) {
			if inj != nil {
				switch k := inj.ShardFault(ts.name, baseIdx, wc.id); k {
				case chaos.KindPanic:
					e.traceFault("panic", ts.name, wc.id, "injected worker panic")
					panic(&chaosFault{kind: k})
				case chaos.KindStraggler:
					// A straggler is benign for correctness — merge order is
					// fixed by worker index — but stresses barrier/scheduling.
					e.traceFault("straggler", ts.name, wc.id, "injected straggler delay")
					inj.Sleep()
				case chaos.KindCorrupt:
					// Poison the private shard (double-fold its rows) and then
					// fail: the soak's bit-identity check proves the corrupted
					// scratch is quarantined, never merged.
					e.traceFault("corrupt", ts.name, wc.id, "injected shard corruption")
					sh := wc.shard(r)
					wte := wc.refresh(e)
					wr := *r
					wr.joiner = sh.joiner
					wc.wbuf = wr.feedShard(rows[lo:hi], baseIdx+lo, ts, wte,
						sh.tab, &sh.uncertain, &sh.arena, &sh.folds, &sh.acc, wc.wbuf, pf, sh.cs)
					panic(&chaosFault{kind: k})
				}
			}
			sh := wc.shard(r)
			wte := wc.refresh(e)
			sl := e.workerSlab(wc.id)
			tsp := sl.Begin("task", e.spanFeed, e.spanBatchNo, r.b.ID)
			wr := *r // shallow: shares block/engine, swaps per-worker scratch
			wr.joiner = sh.joiner
			wc.wbuf = wr.feedShard(rows[lo:hi], baseIdx+lo, ts, wte,
				sh.tab, &sh.uncertain, &sh.arena, &sh.folds, &sh.acc, wc.wbuf, pf, sh.cs)
			sl.End(tsp)
		})
		if err != nil {
			// Pool stopped mid-submit: drain what made it onto the workers,
			// then redo everything serially.
			submitted = w
			break
		}
	}
	panics := g.wait()
	if submitted < workers || len(panics) > 0 {
		for _, p := range panics {
			e.trace.Emit(Event{Kind: EvWorkerPanic, Key: ts.name, Worker: p.worker, Note: panicNote(p.val)})
		}
		// Any worker's shard for this runner may hold a partial or
		// poisoned fold; discard them all and rebuild on the next batch.
		pool.quarantine(r.idx)
		return r.retrySerialShards(rows, baseIdx, ts, te, pf, workers, size)
	}
	// Drain worker shards in worker order (0..P−1): with shard
	// boundaries fixed by row position this reproduces the group
	// insertion order of the per-batch-spawn runtime exactly.
	for w := 0; w < workers; w++ {
		sh := pool.ctxs[w].shards[r.idx]
		r.tab.merge(sh.tab)
		r.uncertain = append(r.uncertain, sh.uncertain...)
		r.arena.adopt(&sh.arena)
		e.metrics.DeterministicFolds += sh.folds
		sh.folds = 0
		r.acc.merge(&sh.acc)
		sh.acc.reset()
		// The uncertain rows now live in r.uncertain; keep the worker
		// buffer (zeroed so dropped rows stay collectable) and recycle
		// the shard table's entries for the next batch.
		for i := range sh.uncertain {
			sh.uncertain[i] = uncertainRow{}
		}
		sh.uncertain = sh.uncertain[:0]
		sh.tab.recycle()
	}
	r.sampledIdxValid = false
	return nil
}

// maxShardRetries bounds the serial redo ladder after a contained
// worker failure.
const maxShardRetries = 3

// retrySerialShards redoes a failed parallel batch on the controller's
// goroutine under the shared bounded-backoff policy (internal/retry;
// Seed 0 keeps the historical nominal ladder 1ms→2ms→4ms, cap 8ms).
// Each attempt folds the exact shard partition of the failed pass into
// fresh staging tables and merges them in worker order — float addition
// is non-associative, so replaying the same shard plan (rather than one
// flat serial fold) is what makes the retry bit-identical to a clean
// parallel pass. Chaos injection never fires here (faults are keyed to
// pool workers), so an injected schedule cannot livelock the redo.
func (r *blockRunner) retrySerialShards(rows []types.Row, baseIdx int, ts *tableStream, te *triEnv, pf *weightPrefetch, workers, size int) error {
	e := r.eng
	var lastPanic any
	pol := retry.Policy{Attempts: maxShardRetries, Base: time.Millisecond, Cap: 8 * time.Millisecond}
	err := pol.Do(uint64(baseIdx), func(attempt int) error {
		e.trace.Emit(Event{Kind: EvSerialRetry, Key: ts.name, Kept: attempt})
		ssp := e.sctl.Begin("serial-retry", e.spanFeed, e.spanBatchNo, r.b.ID)
		ok, pv := r.serialShardPass(rows, baseIdx, ts, te, pf, workers, size)
		e.sctl.End(ssp)
		if ok {
			return nil
		}
		lastPanic = pv
		return fmt.Errorf("attempt %d panicked", attempt)
	})
	if err == nil {
		return nil
	}
	return &QueryError{Kind: ErrKindWorkerPanic, Batch: e.batch, Worker: -1,
		Note: fmt.Sprintf("parallel batch failed and %d serial retries panicked: %s", maxShardRetries, panicNote(lastPanic))}
}

// serialShardPass folds the batch's shard partition sequentially into
// staging tables, committing into the runner only when every shard
// completed — a panic mid-pass (necessarily a real bug, not injection)
// discards the staging wholesale so the runner's own state is never
// half-updated and the next attempt starts clean.
func (r *blockRunner) serialShardPass(rows []types.Row, baseIdx int, ts *tableStream, te *triEnv, pf *weightPrefetch, workers, size int) (ok bool, panicVal any) {
	e := r.eng
	type staging struct {
		tab       *onlineTable
		uncertain []uncertainRow
		arena     weightArena
		folds     int64
		acc       phaseAcc
	}
	outs := make([]staging, workers)
	defer func() {
		if v := recover(); v != nil {
			panicVal = v
		}
	}()
	for w := 0; w < workers; w++ {
		lo := w * size
		hi := lo + size
		if w == workers-1 {
			hi = len(rows)
		}
		st := &outs[w]
		st.tab = newShardTable(e.opt.Trials)
		st.tab.configure(r.cltKinds)
		if r.cs == nil {
			r.cs = &colScratch{}
		}
		r.wbuf = r.feedShard(rows[lo:hi], baseIdx+lo, ts, te,
			st.tab, &st.uncertain, &st.arena, &st.folds, &st.acc, r.wbuf, pf, r.cs)
	}
	for w := 0; w < workers; w++ {
		st := &outs[w]
		r.tab.merge(st.tab)
		r.uncertain = append(r.uncertain, st.uncertain...)
		r.arena.adopt(&st.arena)
		e.metrics.DeterministicFolds += st.folds
		r.acc.merge(&st.acc)
	}
	r.sampledIdxValid = false
	return true, nil
}

// feedBatchSpawn is the legacy parallel runtime: fresh goroutines,
// tables and uncertain buffers every batch. workers has already been
// clamped by feedBatchParallel.
func (r *blockRunner) feedBatchSpawn(rows []types.Row, baseIdx int, ts *tableStream, workers int, pf *weightPrefetch) {
	type shardOut struct {
		tab       *onlineTable
		uncertain *[]uncertainRow
		arena     weightArena
		folds     int64
		// Per-worker phase times, merged into the runner's accumulator
		// after the barrier; phase breakdowns therefore sum worker time
		// and may exceed batch wall time under parallel folding.
		acc phaseAcc
	}
	outs := make([]shardOut, workers)
	// joiner shares dimension hash tables (read-only) but its one-row
	// scratch is per-call state: give each worker a shallow copy.
	var wg sync.WaitGroup
	size := len(rows) / workers
	for w := 0; w < workers; w++ {
		lo := w * size
		hi := lo + size
		if w == workers-1 {
			hi = len(rows)
		}
		wg.Add(1)
		go func(w, lo, hi int) {
			defer wg.Done()
			wr := *r // shallow: shares joiner dims, block, engine
			wr.joiner = r.joiner.CloneForWorker()
			tab := newOnlineTable(r.eng.opt.Trials)
			tab.configure(r.cltKinds)
			wte := r.eng.triEnv()
			unc := uncertainBufPool.Get().(*[]uncertainRow)
			*unc = (*unc)[:0]
			out := &outs[w]
			out.tab = tab
			out.uncertain = unc
			// nil colScratch: the legacy baseline stays on the row path.
			wr.feedShard(rows[lo:hi], baseIdx+lo, ts, wte, tab, unc, &out.arena, &out.folds, &out.acc, nil, pf, nil)
		}(w, lo, hi)
	}
	wg.Wait()
	for w := range outs {
		r.tab.merge(outs[w].tab)
		r.uncertain = append(r.uncertain, *outs[w].uncertain...)
		r.arena.adopt(&outs[w].arena)
		r.eng.metrics.DeterministicFolds += outs[w].folds
		r.acc.merge(&outs[w].acc)
		// The uncertain rows now live in r.uncertain; recycle the worker
		// buffer (zeroed so dropped rows stay collectable).
		buf := *outs[w].uncertain
		for i := range buf {
			buf[i] = uncertainRow{}
		}
		*outs[w].uncertain = buf[:0]
		uncertainBufPool.Put(outs[w].uncertain)
	}
	r.sampledIdxValid = false
}

// defaultParallelism resolves Parallelism 0.
func defaultParallelism() int { return runtime.GOMAXPROCS(0) }
