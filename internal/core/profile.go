package core

import (
	"fmt"
	"strings"
	"time"
)

// The per-phase profiler answers the question PR 1's throughput work
// raised: where does batch time actually go? The paper attributes
// FluoDB's ~60% online overhead to error estimation (§5); the phases
// below split every mini-batch into the G-OLA stages so that claim is
// verifiable per block on our own engine.
//
// Two granularities, one discipline:
//
//   - Coarse phases (uncertain re-evaluation, range maintenance,
//     recompute replay, snapshot emission) are timed at call
//     granularity — two monotonic clock reads per block per batch —
//     and are always collected.
//   - Fine phases (join, fold, bootstrap-weight generation, tuple
//     classification) live inside the per-tuple fold loop and are
//     gated by Options.Profile: one clock read per phase transition,
//     zero reads when disabled.
//
// Accumulators are plain int64 arrays owned by exactly one goroutine:
// each parallel worker carries its own phaseAcc in its shard output and
// the runner merges them at the batch boundary, so enabling the
// profiler keeps the steady-state fold at 0 allocs/tuple (pinned by
// TestFoldSteadyStateAllocs' profiled subtests).

// Phase indices. Keep PhaseNames aligned.
const (
	phaseJoin = iota
	phaseFold
	phaseWeights
	phaseClassify
	phaseUncertain
	phaseRanges
	phaseRecompute
	phaseSnapshot
	numPhases
)

// PhaseNames lists the profiler phases in breakdown order, aligned with
// PhaseTimes.Durations.
var PhaseNames = []string{
	"join", "fold", "weights", "classify",
	"uncertain", "ranges", "recompute", "snapshot",
}

// phaseAcc accumulates per-phase nanoseconds. An accumulator is owned
// by exactly one goroutine at a time; cross-goroutine visibility comes
// from the existing batch-boundary synchronization (WaitGroup), never
// from atomics on the hot path.
type phaseAcc struct{ ns [numPhases]int64 }

func (a *phaseAcc) merge(o *phaseAcc) {
	for i := range o.ns {
		a.ns[i] += o.ns[i]
	}
}

func (a *phaseAcc) reset() { *a = phaseAcc{} }

func (a *phaseAcc) times() PhaseTimes {
	return PhaseTimes{
		Join:      time.Duration(a.ns[phaseJoin]),
		Fold:      time.Duration(a.ns[phaseFold]),
		Weights:   time.Duration(a.ns[phaseWeights]),
		Classify:  time.Duration(a.ns[phaseClassify]),
		Uncertain: time.Duration(a.ns[phaseUncertain]),
		Ranges:    time.Duration(a.ns[phaseRanges]),
		Recompute: time.Duration(a.ns[phaseRecompute]),
		Snapshot:  time.Duration(a.ns[phaseSnapshot]),
	}
}

// PhaseTimes is a per-phase wall-time breakdown of G-OLA execution.
//
//   - Join: dimension-table hash joins of fact tuples
//   - Fold: deterministic folds into main + replica aggregate state
//   - Weights: per-tuple Poisson bootstrap multiplicity generation
//   - Classify: certain-filter evaluation and tri-state classification
//   - Uncertain: re-evaluation of the cached uncertain set (§3.2 delta
//     maintenance)
//   - Ranges: parameter estimate/replica/variation-range maintenance
//     after each block consumes a batch (the error-estimation cost §5
//     attributes the online overhead to)
//   - Recompute: failure-recovery replay (overlaps the other phases,
//     which re-accrue during replay — see BatchWork)
//   - Snapshot: snapshot materialization with bootstrap CIs (runs after
//     the batch duration is measured)
//
// Under parallel folding the fine phases sum worker time, so a batch's
// breakdown may legitimately exceed its wall duration; with
// Parallelism 1 it is a wall-time decomposition.
type PhaseTimes struct {
	Join      time.Duration
	Fold      time.Duration
	Weights   time.Duration
	Classify  time.Duration
	Uncertain time.Duration
	Ranges    time.Duration
	Recompute time.Duration
	Snapshot  time.Duration
}

// Durations returns the phases in PhaseNames order.
func (p PhaseTimes) Durations() []time.Duration {
	return []time.Duration{
		p.Join, p.Fold, p.Weights, p.Classify,
		p.Uncertain, p.Ranges, p.Recompute, p.Snapshot,
	}
}

// BatchWork is the disjoint in-batch processing time: every phase
// except Recompute (whose replay re-accrues the others, so including it
// would double-count) and Snapshot (measured after the batch duration).
// With serial folding, BatchWork ≤ the batch duration.
func (p PhaseTimes) BatchWork() time.Duration {
	return p.Join + p.Fold + p.Weights + p.Classify + p.Uncertain + p.Ranges
}

// Milliseconds returns the non-zero phases as name → milliseconds, the
// wire/JSON form shared by the dashboard and flbench.
func (p PhaseTimes) Milliseconds() map[string]float64 {
	out := map[string]float64{}
	for i, d := range p.Durations() {
		if d > 0 {
			out[PhaseNames[i]] = float64(d.Microseconds()) / 1000
		}
	}
	return out
}

// String renders the non-zero phases compactly ("join 1.2ms fold 3.4ms").
func (p PhaseTimes) String() string {
	var b strings.Builder
	for i, d := range p.Durations() {
		if d == 0 {
			continue
		}
		if b.Len() > 0 {
			b.WriteByte(' ')
		}
		fmt.Fprintf(&b, "%s %s", PhaseNames[i], fmtDur(d))
	}
	if b.Len() == 0 {
		return "(no phase time recorded)"
	}
	return b.String()
}

// BlockPhaseStat is one lineage block's cumulative profile.
type BlockPhaseStat struct {
	Block     int    // plan block ID
	Kind      string // "root", "scalar", "group-scalar", "set"
	Label     string // the block's SQL
	Table     string // streamed fact table
	Groups    int    // live groups in the block's aggregate state
	Uncertain int    // cached uncertain tuples
	Columnar  string // eligibility verdict: "columnar[:flavor]" or "rowpath:<reason>"
	Phases    PhaseTimes
}

// fmtBytes renders a byte count in human units (profiles and flbench).
func fmtBytes(b int64) string {
	switch {
	case b >= 1<<30:
		return fmt.Sprintf("%.2fGiB", float64(b)/(1<<30))
	case b >= 1<<20:
		return fmt.Sprintf("%.2fMiB", float64(b)/(1<<20))
	case b >= 1<<10:
		return fmt.Sprintf("%.1fKiB", float64(b)/(1<<10))
	default:
		return fmt.Sprintf("%dB", b)
	}
}

// fmtDur renders a duration with ms precision appropriate for profiles.
func fmtDur(d time.Duration) string {
	switch {
	case d >= time.Second:
		return fmt.Sprintf("%.2fs", d.Seconds())
	case d >= time.Millisecond:
		return fmt.Sprintf("%.1fms", float64(d.Microseconds())/1000)
	default:
		return fmt.Sprintf("%.3fms", float64(d.Nanoseconds())/1e6)
	}
}

// Report renders an EXPLAIN-ANALYZE-style text profile of the execution
// so far: run totals, the per-phase breakdown, each lineage block's
// cumulative per-phase cost, and the per-batch trajectory.
func (e *Engine) Report() string {
	m := e.Metrics()
	var b strings.Builder
	var total time.Duration
	for _, d := range m.BatchDurations {
		total += d
	}
	fmt.Fprintf(&b, "G-OLA profile: %d/%d batches, %d rows, %d recomputes, %d uncertain cached, %s processing\n",
		m.Batches, e.opt.Batches, m.RowsProcessed, m.Recomputes, e.UncertainRows(), fmtDur(total))
	fmt.Fprintf(&b, "phase totals: %s\n", m.Phases)
	if !e.opt.Profile {
		b.WriteString("(fine phases join/fold/weights/classify require Options.Profile)\n")
	}
	if e.spans != nil {
		b.WriteString(e.timelineSummary())
	}
	if n := len(e.conv.series); n > 0 {
		p := e.conv.series[n-1]
		if p.HasCI {
			fmt.Fprintf(&b, "convergence: hw p50=%.4f p90=%.4f max=%.4f (relative), %.0f rows/s, churn +%d/-%d\n",
				p.HalfWidthP50, p.HalfWidthP90, p.HalfWidthMax, p.RowsPerSec, p.UncertainIn, p.UncertainOut)
			if e.lastSnap != nil {
				if eta, ok := e.lastSnap.ETA(0.01); ok {
					fmt.Fprintf(&b, "eta to 1%% error: %s\n", fmtDur(eta))
				}
			}
		}
	}
	if u := e.lastUsage; u.TotalBytes > 0 || u.PeakBytes > 0 {
		fmt.Fprintf(&b, "memory: %s resident (peak %s) — tables %s, arenas %s, uncertain %s, prefetch %s, scratch %s, segcache %s",
			fmtBytes(u.TotalBytes), fmtBytes(u.PeakBytes),
			fmtBytes(u.GroupTableBytes), fmtBytes(u.WeightArenaBytes),
			fmtBytes(u.UncertainBytes), fmtBytes(u.PrefetchBytes),
			fmtBytes(u.ColScratchBytes), fmtBytes(u.SegCacheBytes))
		if u.CheckpointBytes > 0 {
			fmt.Fprintf(&b, ", checkpoint %s", fmtBytes(u.CheckpointBytes))
		}
		b.WriteByte('\n')
		if m.GCCycles > 0 || u.HeapLiveBytes > 0 {
			fmt.Fprintf(&b, "gc: heap live %s goal %s, %d cycles, %s pause total\n",
				fmtBytes(u.HeapLiveBytes), fmtBytes(u.HeapGoalBytes),
				m.GCCycles, fmtDur(time.Duration(m.GCPauseNS)))
		}
		if u.BudgetBytes > 0 {
			fmt.Fprintf(&b, "budget: %s soft limit, degrade rung %d", fmtBytes(u.BudgetBytes), u.DegradeRung)
			if e.degradeReason != "" {
				fmt.Fprintf(&b, " (%s)", e.degradeReason)
			}
			if m.BudgetEvictions > 0 {
				fmt.Fprintf(&b, ", %d budget evictions", m.BudgetEvictions)
			}
			b.WriteByte('\n')
		}
	}
	for _, bp := range m.BlockPhases {
		fmt.Fprintf(&b, "block %d [%s] table=%s groups=%d uncertain=%d plan=%s\n  %s\n",
			bp.Block, bp.Kind, bp.Table, bp.Groups, bp.Uncertain, bp.Columnar, bp.Phases)
		if bp.Label != "" {
			fmt.Fprintf(&b, "  %s\n", strings.ReplaceAll(bp.Label, "\n", " "))
		}
	}
	if len(m.PhasePerBatch) > 0 {
		fmt.Fprintf(&b, "%5s %10s %10s %10s %10s %10s %10s %10s %10s %10s %10s\n",
			"batch", "dur",
			"join", "fold", "weights", "classify", "uncertain", "ranges", "recompute", "snapshot", "unc.rows")
		for i, p := range m.PhasePerBatch {
			var dur time.Duration
			if i < len(m.BatchDurations) {
				dur = m.BatchDurations[i]
			}
			unc := 0
			if i < len(m.UncertainPerBatch) {
				unc = m.UncertainPerBatch[i]
			}
			fmt.Fprintf(&b, "%5d %10s %10s %10s %10s %10s %10s %10s %10s %10s %10d\n",
				i+1, fmtDur(dur),
				fmtDur(p.Join), fmtDur(p.Fold), fmtDur(p.Weights), fmtDur(p.Classify),
				fmtDur(p.Uncertain), fmtDur(p.Ranges), fmtDur(p.Recompute), fmtDur(p.Snapshot), unc)
		}
	}
	return b.String()
}
