package core

import (
	"fmt"
	"math"
	"testing"

	"fluodb/internal/bootstrap"
	"fluodb/internal/exec"
	"fluodb/internal/plan"
	"fluodb/internal/types"
)

// TestRandomizedQueryEquivalence generates a battery of randomized
// nested-aggregate queries and checks, for each, that the G-OLA final
// snapshot equals the exact batch answer. This is the engine's core
// soundness property: whatever the thresholds, aggregate mixes, nesting
// or grouping, finishing the scan must yield the exact result.
func TestRandomizedQueryEquivalence(t *testing.T) {
	if testing.Short() {
		t.Skip("randomized battery")
	}
	rng := bootstrap.NewRNG(0xFACADE)
	aggs := []string{"AVG", "SUM", "COUNT", "MIN", "MAX", "STDDEV"}
	cols := []string{"buffer_time", "play_time"}
	cmps := []string{">", "<", ">=", "<="}

	for trial := 0; trial < 25; trial++ {
		cat := synthCatalog(1500+rng.Intn(2000), 30, uint64(trial)+100)

		innerAgg := aggs[rng.Intn(len(aggs))]
		innerCol := cols[rng.Intn(len(cols))]
		outerCol := cols[rng.Intn(len(cols))]
		cmp := cmps[rng.Intn(len(cmps))]
		factor := 0.5 + rng.Float64()*1.5
		outAgg1 := aggs[rng.Intn(len(aggs))]
		outAgg2 := aggs[rng.Intn(len(aggs))]

		grouped := rng.Intn(2) == 0
		groupBy := ""
		groupSel := ""
		keyCols := 0
		if grouped {
			groupBy = "GROUP BY country"
			groupSel = "country, "
			keyCols = 1
		}
		sql := fmt.Sprintf(
			`SELECT %s%s(play_time), %s(buffer_time) FROM sessions
			 WHERE %s %s (SELECT %.4f * %s(%s) FROM sessions) %s`,
			groupSel, outAgg1, outAgg2, outerCol, cmp, factor, innerAgg, innerCol, groupBy)

		q, err := plan.Compile(sql, cat)
		if err != nil {
			t.Fatalf("trial %d: compile %s: %v", trial, sql, err)
		}
		exact, err := exec.Run(q, cat)
		if err != nil {
			t.Fatalf("trial %d: exact: %v", trial, err)
		}
		q2, _ := plan.Compile(sql, cat)
		eng, err := New(q2, cat, Options{
			Batches: 4 + rng.Intn(8),
			Trials:  10 + rng.Intn(20),
			Seed:    uint64(trial) + 1,
		})
		if err != nil {
			t.Fatalf("trial %d: engine: %v", trial, err)
		}
		final, err := eng.Run(nil)
		if err != nil {
			t.Fatalf("trial %d: run: %v", trial, err)
		}
		got := final.ValueRows()
		if len(got) != len(exact.Rows) {
			t.Fatalf("trial %d (%s): rows %d vs %d", trial, sql, len(got), len(exact.Rows))
		}
		index := map[string]types.Row{}
		for _, r := range exact.Rows {
			index[r.KeyString(seqCols(keyCols))] = r
		}
		for _, g := range got {
			w, ok := index[g.KeyString(seqCols(keyCols))]
			if !ok {
				t.Fatalf("trial %d (%s): unexpected group %v", trial, sql, g)
			}
			for c := keyCols; c < len(g); c++ {
				gf, gok := g[c].AsFloat()
				wf, wok := w[c].AsFloat()
				if gok != wok {
					t.Fatalf("trial %d (%s): col %d: %v vs %v", trial, sql, c, g[c], w[c])
				}
				if gok && math.Abs(gf-wf) > 1e-6*(1+math.Abs(wf)) {
					t.Fatalf("trial %d (%s): col %d: got %v want %v (recomputes=%d)",
						trial, sql, c, gf, wf, final.Recomputes)
				}
			}
		}
	}
}

func seqCols(n int) []int {
	out := make([]int, n)
	for i := range out {
		out[i] = i
	}
	return out
}

// TestRandomizedMonotoneEquivalence does the same for monotone queries
// (no nesting) across random aggregate/grouping mixes — exercising the
// plain incremental path and extensive-aggregate scaling.
func TestRandomizedMonotoneEquivalence(t *testing.T) {
	rng := bootstrap.NewRNG(0xBEEF)
	aggs := []string{"AVG", "SUM", "COUNT", "MIN", "MAX"}
	for trial := 0; trial < 15; trial++ {
		cat := synthCatalog(1000+rng.Intn(1500), 20, uint64(trial)+500)
		a1 := aggs[rng.Intn(len(aggs))]
		a2 := aggs[rng.Intn(len(aggs))]
		thr := rng.Float64() * 100
		sql := fmt.Sprintf(
			`SELECT country, %s(play_time), %s(buffer_time) FROM sessions
			 WHERE buffer_time > %.3f GROUP BY country`, a1, a2, thr)
		q, err := plan.Compile(sql, cat)
		if err != nil {
			t.Fatal(err)
		}
		exact, _ := exec.Run(q, cat)
		q2, _ := plan.Compile(sql, cat)
		eng, err := New(q2, cat, Options{Batches: 5, Trials: 10, Seed: uint64(trial) + 7})
		if err != nil {
			t.Fatal(err)
		}
		final, err := eng.Run(nil)
		if err != nil {
			t.Fatal(err)
		}
		got := final.ValueRows()
		if len(got) != len(exact.Rows) {
			t.Fatalf("trial %d: rows %d vs %d", trial, len(got), len(exact.Rows))
		}
		index := map[string]types.Row{}
		for _, r := range exact.Rows {
			index[r.KeyString([]int{0})] = r
		}
		for _, g := range got {
			w := index[g.KeyString([]int{0})]
			if w == nil {
				t.Fatalf("trial %d: missing group %v", trial, g[0])
			}
			for c := 1; c < len(g); c++ {
				gf, _ := g[c].AsFloat()
				wf, _ := w[c].AsFloat()
				if math.Abs(gf-wf) > 1e-9*(1+math.Abs(wf)) {
					t.Fatalf("trial %d col %d: %v vs %v", trial, c, gf, wf)
				}
			}
		}
	}
}
