package core

import (
	"fmt"

	"fluodb/internal/agg"
	"fluodb/internal/exec"
	"fluodb/internal/expr"
	"fluodb/internal/plan"
	"fluodb/internal/sqlparser"
	"fluodb/internal/types"
)

// andOp aliases the AND operator for conjunct reassembly.
const andOp = sqlparser.OpAnd

// onlineEntry is one group's incremental state: the main aggregate
// states plus one state set per bootstrap trial.
type onlineEntry struct {
	key  types.Row
	main []agg.State
	reps [][]agg.State // [trial][agg]
	// n counts deterministically folded tuples; groups below the
	// minimum-support threshold never commit deterministic decisions
	// (their bootstrap ranges are too unreliable).
	n int
	// ns counts folded tuples inside the bootstrap subsample. A group
	// with ns == 0 has no replica evidence: its replica states are
	// structurally present but empty, and must not be read as values.
	ns int
	// clt holds per-aggregate Welford moments for closed-form variation
	// ranges (nil when the block has no CLT-estimable aggregate).
	clt []cltAcc
}

// onlineTable maps group keys to online entries, preserving insertion
// order for deterministic output.
type onlineTable struct {
	m        map[string]*onlineEntry
	order    []string
	trials   int
	cltKinds []cltKind // per-aggregate CLT class (shared with the runner)
	// scratch buffers for per-tuple group-key evaluation (the engine is
	// single-threaded per query).
	keyRow types.Row
	cols   []int
}

func newOnlineTable(trials int) *onlineTable {
	return &onlineTable{m: map[string]*onlineEntry{}, trials: trials}
}

func newEntryStates(b *plan.Block) []agg.State {
	out := make([]agg.State, len(b.Aggs))
	for i := range b.Aggs {
		s, err := b.Aggs[i].NewState()
		if err != nil {
			panic(fmt.Sprintf("core: agg state: %v", err)) // validated at plan time
		}
		out[i] = s
	}
	return out
}

func (t *onlineTable) newEntry(b *plan.Block, key types.Row) *onlineEntry {
	e := &onlineEntry{key: key, main: newEntryStates(b)}
	e.reps = make([][]agg.State, t.trials)
	for j := range e.reps {
		e.reps[j] = newEntryStates(b)
	}
	for _, k := range t.cltKinds {
		if k != cltNone {
			e.clt = make([]cltAcc, len(b.Aggs))
			break
		}
	}
	return e
}

// entry returns (creating if needed) the group entry for the row in ctx.
func (t *onlineTable) entry(b *plan.Block, ctx *expr.Ctx) *onlineEntry {
	var key string
	if len(b.GroupBy) == 1 {
		if t.keyRow == nil {
			t.keyRow = make(types.Row, 1)
		}
		t.keyRow[0] = b.GroupBy[0].Eval(ctx)
		key = types.KeyString1(t.keyRow[0])
	} else {
		if t.keyRow == nil {
			t.keyRow = make(types.Row, len(b.GroupBy))
			t.cols = make([]int, len(b.GroupBy))
			for i := range t.cols {
				t.cols[i] = i
			}
		}
		for i, g := range b.GroupBy {
			t.keyRow[i] = g.Eval(ctx)
		}
		key = t.keyRow.KeyString(t.cols)
	}
	e, ok := t.m[key]
	if !ok {
		e = t.newEntry(b, t.keyRow.Clone())
		t.m[key] = e
		t.order = append(t.order, key)
	}
	return e
}

// fold adds the row in ctx into the main state (weight 1) and — when the
// tuple is in the bootstrap subsample (repW > 0, carrying the 1/p
// inverse sampling weight) — into each replica with its Poisson(1)
// multiplicity.
func (t *onlineTable) fold(b *plan.Block, ctx *expr.Ctx, weights []uint8, repW float64) {
	e := t.entry(b, ctx)
	e.n++
	if repW > 0 {
		e.ns++
	}
	for i := range b.Aggs {
		v := b.Aggs[i].Arg.Eval(ctx)
		e.main[i].Add(v, 1)
		if e.clt != nil && t.cltKinds[i] != cltNone && !v.IsNull() {
			switch t.cltKinds[i] {
			case cltCount:
				e.clt[i].add(1)
			default:
				if f, ok := v.AsFloat(); ok {
					e.clt[i].add(f)
				}
			}
		}
		if repW <= 0 {
			continue
		}
		for j, w := range weights {
			if w > 0 {
				e.reps[j][i].Add(v, float64(w)*repW)
			}
		}
	}
}

// uncertainRow is a cached tuple whose classification may still flip.
// The joined row is its lineage within the block (§3.3): everything
// needed to lazily re-evaluate the uncertain predicate and the block's
// aggregate arguments.
type uncertainRow struct {
	row     types.Row
	weights []uint8
	repW    float64 // 0 when outside the bootstrap subsample, else 1/p
}

// blockRunner executes one lineage block online.
type blockRunner struct {
	b      *plan.Block
	eng    *Engine
	joiner *exec.Joiner

	// WHERE split into certain conjuncts (no uncertain placeholders;
	// evaluated exactly per tuple) and uncertain conjuncts (classified
	// through variation ranges).
	certainWhere   expr.Expr
	uncertainWhere expr.Expr

	tab       *onlineTable
	uncertain []uncertainRow
	// sampledIdx caches the indexes of uncertain rows inside the
	// bootstrap subsample; trial overlays only visit those.
	sampledIdx      []int
	sampledIdxValid bool

	// cltKinds classifies each aggregate for closed-form ranges;
	// allCLT reports whether every aggregate in the block is estimable,
	// in which case deterministic classification does not depend on
	// bootstrap-subsample evidence at all.
	cltKinds []cltKind
	allCLT   bool
}

func newBlockRunner(b *plan.Block, eng *Engine) (*blockRunner, error) {
	j, err := exec.NewJoiner(b, eng.cat)
	if err != nil {
		return nil, err
	}
	r := &blockRunner{b: b, eng: eng, joiner: j, tab: newOnlineTable(eng.opt.Trials)}
	r.cltKinds = make([]cltKind, len(b.Aggs))
	r.allCLT = len(b.Aggs) > 0
	for i := range b.Aggs {
		r.cltKinds[i] = cltKindOf(&b.Aggs[i])
		if r.cltKinds[i] == cltNone {
			r.allCLT = false
		}
	}
	r.tab.cltKinds = r.cltKinds
	var certain, unc []expr.Expr
	for _, c := range expr.SplitConjuncts(b.Where) {
		if expr.HasParams(c) {
			unc = append(unc, c)
		} else {
			certain = append(certain, c)
		}
	}
	r.certainWhere = andExprs(certain)
	r.uncertainWhere = andExprs(unc)
	return r, nil
}

func andExprs(es []expr.Expr) expr.Expr {
	var out expr.Expr
	for _, e := range es {
		if out == nil {
			out = e
		} else {
			out = &expr.Binary{Op: andOp, L: out, R: e}
		}
	}
	return out
}

// reset clears all online state (used by failure-recovery replay).
func (r *blockRunner) reset() {
	r.tab = newOnlineTable(r.eng.opt.Trials)
	r.tab.cltKinds = r.cltKinds
	r.uncertain = nil
	r.sampledIdxValid = false
}

// sampledUncertain returns the indexes of uncertain rows carrying
// bootstrap weight, cached until the uncertain set next changes.
func (r *blockRunner) sampledUncertain() []int {
	if !r.sampledIdxValid {
		r.sampledIdx = r.sampledIdx[:0]
		for i := range r.uncertain {
			if r.uncertain[i].repW > 0 {
				r.sampledIdx = append(r.sampledIdx, i)
			}
		}
		r.sampledIdxValid = true
	}
	return r.sampledIdx
}

// reclassify re-examines the cached uncertain set against the current
// variation ranges: tuples that became deterministic are folded (or
// dropped) permanently; the rest stay cached. This is the delta
// maintenance step of §3.2 — only U_{i-1} and the new mini-batch are
// touched, never the full prefix.
func (r *blockRunner) reclassify(te *triEnv) {
	if len(r.uncertain) == 0 {
		return
	}
	kept := r.uncertain[:0]
	for _, u := range r.uncertain {
		switch te.evalTri(r.uncertainWhere, u.row) {
		case triTrue:
			te.pointCtx.Row = u.row
			r.tab.fold(r.b, te.pointCtx, u.weights, u.repW)
			r.eng.metrics.DeterministicFolds++
		case triFalse:
			// dropped forever
		default:
			kept = append(kept, u)
		}
	}
	// Zero the tail so dropped rows are collectable.
	for i := len(kept); i < len(r.uncertain); i++ {
		r.uncertain[i] = uncertainRow{}
	}
	r.uncertain = kept
	r.sampledIdxValid = false
}

// feedTuple pushes one fact tuple (with its per-trial bootstrap
// multiplicities and subsample weight) through join → certain filter →
// classification.
func (r *blockRunner) feedTuple(fact types.Row, weights []uint8, repW float64, te *triEnv) {
	for _, row := range r.joiner.Join(fact) {
		te.pointCtx.Row = row
		if r.certainWhere != nil && !r.certainWhere.Eval(te.pointCtx).Truthy() {
			continue
		}
		if r.uncertainWhere == nil {
			r.tab.fold(r.b, te.pointCtx, weights, repW)
			r.eng.metrics.DeterministicFolds++
			continue
		}
		switch te.evalTri(r.uncertainWhere, row) {
		case triTrue:
			te.pointCtx.Row = row
			r.tab.fold(r.b, te.pointCtx, weights, repW)
			r.eng.metrics.DeterministicFolds++
		case triFalse:
			// dropped forever
		default:
			r.uncertain = append(r.uncertain, uncertainRow{row: row, weights: weights, repW: repW})
			r.sampledIdxValid = false
		}
	}
}

// overlay is a copy-on-write view of an onlineTable for one trial
// (trial = -1 selects the main states). Snapshots fold the uncertain set
// into the overlay without disturbing the deterministic base state.
type overlay struct {
	base    *onlineTable
	trial   int
	touched map[string]*exec.GroupEntry
	extra   []string // keys created by uncertain rows, in order
}

func newOverlay(base *onlineTable, trial int) *overlay {
	return &overlay{base: base, trial: trial, touched: map[string]*exec.GroupEntry{}}
}

// baseStates selects the right state set from a base entry.
func (o *overlay) baseStates(e *onlineEntry) []agg.State {
	if o.trial < 0 {
		return e.main
	}
	return e.reps[o.trial]
}

// entryFor returns a mutable entry for the key, cloning from base on
// first touch.
func (o *overlay) entryFor(b *plan.Block, key string, keyRow types.Row) *exec.GroupEntry {
	if e, ok := o.touched[key]; ok {
		return e
	}
	var states []agg.State
	if be, ok := o.base.m[key]; ok {
		src := o.baseStates(be)
		states = make([]agg.State, len(src))
		for i, s := range src {
			states[i] = s.Clone()
		}
	} else {
		states = newEntryStates(b)
		o.extra = append(o.extra, key)
	}
	e := &exec.GroupEntry{Key: keyRow, States: states}
	o.touched[key] = e
	return e
}

// fold adds one row into the overlay with the given weight.
func (o *overlay) fold(b *plan.Block, ctx *expr.Ctx, w float64) {
	keyRow := make(types.Row, len(b.GroupBy))
	cols := make([]int, len(b.GroupBy))
	for i, g := range b.GroupBy {
		keyRow[i] = g.Eval(ctx)
		cols[i] = i
	}
	key := keyRow.KeyString(cols)
	e := o.entryFor(b, key, keyRow)
	for i := range b.Aggs {
		e.States[i].Add(b.Aggs[i].Arg.Eval(ctx), w)
	}
}

// keys lists all group keys (base order, then overlay-only keys).
func (o *overlay) keys() []string {
	if len(o.extra) == 0 {
		return o.base.order
	}
	out := make([]string, 0, len(o.base.order)+len(o.extra))
	out = append(out, o.base.order...)
	out = append(out, o.extra...)
	return out
}

// entry returns the (possibly overlaid) group entry for a key, or nil.
func (o *overlay) entry(key string) *exec.GroupEntry {
	if e, ok := o.touched[key]; ok {
		return e
	}
	if be, ok := o.base.m[key]; ok {
		return &exec.GroupEntry{Key: be.key, States: o.baseStates(be)}
	}
	return nil
}

// trialEntry is entry restricted to groups with bootstrap evidence: for
// trial overlays it returns nil when the group has no subsampled tuples
// (neither deterministic nor uncertain), so empty replica states are
// never misread as values.
func (o *overlay) trialEntry(key string) *exec.GroupEntry {
	if e, ok := o.touched[key]; ok {
		return e // uncertain folds only happen for sampled tuples in trials
	}
	if be, ok := o.base.m[key]; ok && (o.trial < 0 || be.ns > 0) {
		return &exec.GroupEntry{Key: be.key, States: o.baseStates(be)}
	}
	return nil
}

// overlayFor folds the runner's uncertain set (under the point bindings
// for trial < 0, or trial j's bindings and Poisson weights otherwise)
// into a copy-on-write view of its deterministic state.
func (r *blockRunner) overlayFor(trial int) *overlay {
	o := newOverlay(r.tab, trial)
	var ctx *expr.Ctx
	if trial < 0 {
		ctx = r.eng.bind.pointCtx(nil)
	} else {
		ctx = r.eng.bind.trialCtx(nil, trial)
	}
	if trial < 0 {
		for i := range r.uncertain {
			u := &r.uncertain[i]
			ctx.Row = u.row
			if r.uncertainWhere != nil && !r.uncertainWhere.Eval(ctx).Truthy() {
				continue
			}
			o.fold(r.b, ctx, 1)
		}
		return o
	}
	for _, i := range r.sampledUncertain() {
		u := &r.uncertain[i]
		if u.weights[trial] == 0 {
			continue
		}
		ctx.Row = u.row
		if r.uncertainWhere != nil && !r.uncertainWhere.Eval(ctx).Truthy() {
			continue
		}
		o.fold(r.b, ctx, float64(u.weights[trial])*u.repW)
	}
	return o
}
