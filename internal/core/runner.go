package core

import (
	"time"

	"fluodb/internal/agg"
	"fluodb/internal/chaos"
	"fluodb/internal/exec"
	"fluodb/internal/expr"
	"fluodb/internal/plan"
	"fluodb/internal/sqlparser"
	"fluodb/internal/types"
)

// andOp aliases the AND operator for conjunct reassembly.
const andOp = sqlparser.OpAnd

// uncertainRow is a cached tuple whose classification may still flip.
// The joined row is its lineage within the block (§3.3): everything
// needed to lazily re-evaluate the uncertain predicate and the block's
// aggregate arguments.
type uncertainRow struct {
	row     types.Row
	weights []uint8
	repW    float64 // 0 when outside the bootstrap subsample, else 1/p
}

// blockRunner executes one lineage block online.
type blockRunner struct {
	b      *plan.Block
	eng    *Engine
	joiner *exec.Joiner
	// idx is the runner's position in Engine.runners; worker contexts
	// index their per-runner shard scratch by it (they must not hold
	// runner pointers between tasks, see pool.go).
	idx int

	// WHERE split into certain conjuncts (no uncertain placeholders;
	// evaluated exactly per tuple) and uncertain conjuncts (classified
	// through variation ranges).
	certainWhere   expr.Expr
	uncertainWhere expr.Expr

	tab       *onlineTable
	uncertain []uncertainRow
	// wbuf is the reusable per-tuple bootstrap-weights scratch (weights
	// are consumed synchronously inside fold; uncertain rows that must
	// retain them copy into the arena).
	wbuf  []uint8
	arena weightArena
	// sampledIdx caches the indexes of uncertain rows inside the
	// bootstrap subsample; trial overlays only visit those.
	sampledIdx      []int
	sampledIdxValid bool
	// reclassBuf is the reusable per-row decision buffer of the parallel
	// reclassification pass (one tri per cached uncertain row).
	reclassBuf []uint8

	// colPl is the block's columnar-path eligibility plan (see
	// columnar.go), built once on the controller and shared read-only by
	// workers; cs is the serial path's columnar scratch (workers keep
	// theirs in their shard state).
	colPl *colPlan
	cs    *colScratch

	// cltKinds classifies each aggregate for closed-form ranges;
	// allCLT reports whether every aggregate in the block is estimable,
	// in which case deterministic classification does not depend on
	// bootstrap-subsample evidence at all.
	cltKinds []cltKind
	allCLT   bool

	// acc is the block's per-batch phase-time scratch, flushed into the
	// engine's cumulative profiles at the end of each Step. Parallel
	// workers accumulate into per-shard copies merged at the batch
	// boundary (see feedBatchParallel), so the serial owner is the only
	// goroutine ever writing here.
	acc phaseAcc
}

func newBlockRunner(b *plan.Block, eng *Engine) (*blockRunner, error) {
	j, err := exec.NewJoiner(b, eng.cat)
	if err != nil {
		return nil, err
	}
	r := &blockRunner{b: b, eng: eng, joiner: j, tab: newOnlineTable(eng.opt.Trials)}
	r.cltKinds = make([]cltKind, len(b.Aggs))
	r.allCLT = len(b.Aggs) > 0
	for i := range b.Aggs {
		r.cltKinds[i] = cltKindOf(&b.Aggs[i])
		if r.cltKinds[i] == cltNone {
			r.allCLT = false
		}
	}
	r.tab.configure(r.cltKinds)
	var certain, unc []expr.Expr
	for _, c := range expr.SplitConjuncts(b.Where) {
		if expr.HasParams(c) {
			unc = append(unc, c)
		} else {
			certain = append(certain, c)
		}
	}
	r.certainWhere = andExprs(certain)
	r.uncertainWhere = andExprs(unc)
	return r, nil
}

func andExprs(es []expr.Expr) expr.Expr {
	var out expr.Expr
	for _, e := range es {
		if out == nil {
			out = e
		} else {
			out = &expr.Binary{Op: andOp, L: out, R: e}
		}
	}
	return out
}

// reset clears all online state (used by failure-recovery replay).
func (r *blockRunner) reset() {
	r.tab = newOnlineTable(r.eng.opt.Trials)
	r.tab.configure(r.cltKinds)
	// The replacement table must keep the columnar plan's bank-stream
	// aliases: the replayed prefix folds through the same deduplicated
	// writes, so unaliased reads would see the unwritten twin cells.
	if r.colPl != nil && r.colPl.ok {
		r.tab.bankOfW = r.colPl.aliasW
		r.tab.bankOfV = r.colPl.aliasV
	}
	r.uncertain = nil
	r.arena.release()
	r.sampledIdxValid = false
}

// sampledUncertain returns the indexes of uncertain rows carrying
// bootstrap weight, cached until the uncertain set next changes.
func (r *blockRunner) sampledUncertain() []int {
	if !r.sampledIdxValid {
		r.sampledIdx = r.sampledIdx[:0]
		for i := range r.uncertain {
			if r.uncertain[i].repW > 0 {
				r.sampledIdx = append(r.sampledIdx, i)
			}
		}
		r.sampledIdxValid = true
	}
	return r.sampledIdx
}

// reclassify re-examines the cached uncertain set against the current
// variation ranges: tuples that became deterministic are folded (or
// dropped) permanently; the rest stay cached. This is the delta
// maintenance step of §3.2 — only U_{i-1} and the new mini-batch are
// touched, never the full prefix.
func (r *blockRunner) reclassify(te *triEnv) (folded, dropped int) {
	if len(r.uncertain) == 0 {
		return 0, 0
	}
	// For large uncertain sets the tri-state decisions are computed on
	// the worker pool; the fold/drop applications below then run
	// serially in original cache order, so the result is bit-identical
	// to the fully serial scan.
	decisions := r.reclassifyDecisions()
	kept := r.uncertain[:0]
	for i, u := range r.uncertain {
		d := triUnknown
		if decisions != nil {
			d = tri(decisions[i])
		} else {
			d = te.evalTri(r.uncertainWhere, u.row)
		}
		switch d {
		case triTrue:
			te.pointCtx.Row = u.row
			r.tab.fold(r.b, te.pointCtx, u.weights, u.repW)
			r.eng.metrics.DeterministicFolds++
			folded++
		case triFalse:
			dropped++
		default:
			kept = append(kept, u)
		}
	}
	// Zero the tail so dropped rows are collectable.
	for i := len(kept); i < len(r.uncertain); i++ {
		r.uncertain[i] = uncertainRow{}
	}
	r.uncertain = kept
	if len(r.uncertain) == 0 {
		// Nothing references arena-held weight copies anymore: recycle
		// the chunks.
		r.arena.release()
	}
	r.sampledIdxValid = false
	return folded, dropped
}

// evictOldest force-resolves the n oldest cached uncertain tuples by
// their current point-estimate truth: tuples whose uncertain predicate
// holds at the point bindings are folded (with their retained bootstrap
// weights), the rest dropped. This trades statistical caution for
// bounded memory — an evicted tuple can no longer flip when ranges
// tighten, though a contradiction surfacing later still triggers the
// usual failure-recovery replay.
func (r *blockRunner) evictOldest(n int, te *triEnv) (folded, dropped int) {
	if n > len(r.uncertain) {
		n = len(r.uncertain)
	}
	for i := 0; i < n; i++ {
		u := r.uncertain[i]
		te.pointCtx.Row = u.row
		if r.uncertainWhere == nil || r.uncertainWhere.Eval(te.pointCtx).Truthy() {
			r.tab.fold(r.b, te.pointCtx, u.weights, u.repW)
			folded++
		} else {
			dropped++
		}
	}
	kept := copy(r.uncertain, r.uncertain[n:])
	for i := kept; i < len(r.uncertain); i++ {
		r.uncertain[i] = uncertainRow{}
	}
	r.uncertain = r.uncertain[:kept]
	if len(r.uncertain) == 0 {
		r.arena.release()
	}
	r.sampledIdxValid = false
	return folded, dropped
}

// reclassifyDecisions evaluates the uncertain predicate over the cached
// uncertain set on the worker pool, one tri decision per row, or nil
// when the set is too small (or parallelism is off / legacy spawn mode
// is selected) — the caller then evaluates inline. Sharding uses the
// same threshold-clamped split as the batch feed; decisions land in a
// fixed per-row buffer, so worker completion order cannot reorder them.
func (r *blockRunner) reclassifyDecisions() []uint8 {
	e := r.eng
	n := len(r.uncertain)
	workers := e.opt.Parallelism
	thr := e.opt.ParallelThreshold
	if workers <= 1 || e.opt.PerBatchSpawn || n < 2*thr {
		return nil
	}
	if max := n / thr; workers > max {
		workers = max
	}
	if workers <= 1 {
		return nil
	}
	pool := e.ensurePool()
	if pool == nil {
		return nil
	}
	if cap(r.reclassBuf) < n {
		r.reclassBuf = make([]uint8, n)
	}
	buf := r.reclassBuf[:n]
	unc := r.uncertain
	where := r.uncertainWhere
	inj := e.opt.Chaos
	g := &taskGroup{}
	size := n / workers
	failed := false
	for w := 0; w < workers; w++ {
		lo := w * size
		hi := lo + size
		if w == workers-1 {
			hi = n
		}
		err := pool.submit(w, g, func(wc *workerCtx) {
			if inj != nil {
				switch inj.ReclassFault(r.idx, e.batch, wc.id) {
				case chaos.KindPanic:
					e.traceFault("panic", "reclassify", wc.id, "injected reclassification panic")
					panic(&chaosFault{kind: chaos.KindPanic})
				case chaos.KindStraggler:
					e.traceFault("straggler", "reclassify", wc.id, "injected reclassification straggler")
					inj.Sleep()
				}
			}
			wte := wc.refresh(e)
			sl := e.workerSlab(wc.id)
			tsp := sl.Begin("reclass-task", e.spanReclass, e.spanBatchNo, r.b.ID)
			for i := lo; i < hi; i++ {
				buf[i] = uint8(wte.evalTri(where, unc[i].row))
			}
			sl.End(tsp)
		})
		if err != nil {
			failed = true
			break
		}
	}
	panics := g.wait()
	if failed || len(panics) > 0 {
		// Decisions only fill a scratch buffer — no runner state was
		// touched, so containment is simply "fall back to inline
		// evaluation", which is bit-identical by definition.
		for _, p := range panics {
			e.trace.Emit(Event{Kind: EvWorkerPanic, Key: "reclassify", Worker: p.worker, Note: panicNote(p.val)})
		}
		return nil
	}
	return buf
}

// feedTuple pushes one fact tuple (with its per-trial bootstrap
// multiplicities and subsample weight) through join → certain filter →
// classification. weights may live in a reusable scratch buffer: tuples
// that stay uncertain copy them into the runner's arena.
func (r *blockRunner) feedTuple(fact types.Row, weights []uint8, repW float64, te *triEnv) {
	r.feedTupleTo(fact, weights, repW, te, r.tab, &r.uncertain, &r.arena,
		&r.eng.metrics.DeterministicFolds, &r.acc)
}

// feedTupleTo is feedTuple with explicit fold targets, shared by the
// serial path (runner-owned state) and parallel workers (shard-private
// state). When profiling is enabled it splits the work into join, fold
// and classify time via monotonic clock reads into acc — everything in
// this function that is neither the join nor a fold counts as
// classification. time.Now is allocation-free, so the profiled path
// keeps the steady-state fold at 0 allocs/tuple.
func (r *blockRunner) feedTupleTo(fact types.Row, weights []uint8, repW float64, te *triEnv, tab *onlineTable, uncertain *[]uncertainRow, arena *weightArena, folds *int64, acc *phaseAcc) {
	prof := r.eng.profile
	var t0 time.Time
	if prof {
		t0 = time.Now()
	}
	rows := r.joiner.Join(fact)
	if prof {
		t1 := time.Now()
		acc.ns[phaseJoin] += int64(t1.Sub(t0))
		t0 = t1
	}
	for _, row := range rows {
		te.pointCtx.Row = row
		if r.certainWhere != nil && !r.certainWhere.Eval(te.pointCtx).Truthy() {
			continue
		}
		if r.uncertainWhere == nil {
			if prof {
				t1 := time.Now()
				acc.ns[phaseClassify] += int64(t1.Sub(t0))
				t0 = t1
			}
			tab.fold(r.b, te.pointCtx, weights, repW)
			*folds++
			if prof {
				t1 := time.Now()
				acc.ns[phaseFold] += int64(t1.Sub(t0))
				t0 = t1
			}
			continue
		}
		switch te.evalTri(r.uncertainWhere, row) {
		case triTrue:
			te.pointCtx.Row = row
			if prof {
				t1 := time.Now()
				acc.ns[phaseClassify] += int64(t1.Sub(t0))
				t0 = t1
			}
			tab.fold(r.b, te.pointCtx, weights, repW)
			*folds++
			if prof {
				t1 := time.Now()
				acc.ns[phaseFold] += int64(t1.Sub(t0))
				t0 = t1
			}
		case triFalse:
			// dropped forever
		default:
			*uncertain = append(*uncertain, uncertainRow{row: row, weights: arena.hold(weights), repW: repW})
			r.sampledIdxValid = false
		}
	}
	if prof {
		acc.ns[phaseClassify] += int64(time.Since(t0))
	}
}

// overlay is a copy-on-write view of an onlineTable for one trial
// (trial = -1 selects the main states). Snapshots fold the uncertain set
// into the overlay without disturbing the deterministic base state.
type overlay struct {
	base    *onlineTable
	trial   int
	touched map[string]*exec.GroupEntry
	extra   []string // keys created by uncertain rows, in order
}

func newOverlay(base *onlineTable, trial int) *overlay {
	return &overlay{base: base, trial: trial, touched: map[string]*exec.GroupEntry{}}
}

// baseStates selects the right state set from a base entry. For banked
// tables and trial >= 0 the returned states are freshly materialized
// views of the bank cells (mutation-safe).
func (o *overlay) baseStates(e *onlineEntry) []agg.State {
	if o.trial < 0 {
		return o.base.mainStates(e)
	}
	return o.base.trialStates(e, o.trial)
}

// entryFor returns a mutable entry for the key, cloning from base on
// first touch.
func (o *overlay) entryFor(b *plan.Block, key string, keyRow types.Row) *exec.GroupEntry {
	if e, ok := o.touched[key]; ok {
		return e
	}
	var states []agg.State
	if be, ok := o.base.m[key]; ok {
		src := o.baseStates(be)
		states = make([]agg.State, len(src))
		for i, s := range src {
			states[i] = s.Clone()
		}
	} else {
		states = newEntryStates(b)
		o.extra = append(o.extra, key)
	}
	e := &exec.GroupEntry{Key: keyRow, States: states}
	o.touched[key] = e
	return e
}

// fold adds one row into the overlay with the given weight.
func (o *overlay) fold(b *plan.Block, ctx *expr.Ctx, w float64) {
	keyRow := make(types.Row, len(b.GroupBy))
	cols := make([]int, len(b.GroupBy))
	for i, g := range b.GroupBy {
		keyRow[i] = g.Eval(ctx)
		cols[i] = i
	}
	key := keyRow.KeyString(cols)
	e := o.entryFor(b, key, keyRow)
	for i := range b.Aggs {
		e.States[i].Add(b.Aggs[i].Arg.Eval(ctx), w)
	}
}

// keys lists all group keys (base order, then overlay-only keys).
func (o *overlay) keys() []string {
	if len(o.extra) == 0 {
		return o.base.order
	}
	out := make([]string, 0, len(o.base.order)+len(o.extra))
	out = append(out, o.base.order...)
	out = append(out, o.extra...)
	return out
}

// entry returns the (possibly overlaid) group entry for a key, or nil.
func (o *overlay) entry(key string) *exec.GroupEntry {
	if e, ok := o.touched[key]; ok {
		return e
	}
	if be, ok := o.base.m[key]; ok {
		return &exec.GroupEntry{Key: be.key, States: o.baseStates(be)}
	}
	return nil
}

// trialEntry is entry restricted to groups with bootstrap evidence: for
// trial overlays it returns nil when the group has no subsampled tuples
// (neither deterministic nor uncertain), so empty replica states are
// never misread as values.
func (o *overlay) trialEntry(key string) *exec.GroupEntry {
	if e, ok := o.touched[key]; ok {
		return e // uncertain folds only happen for sampled tuples in trials
	}
	if be, ok := o.base.m[key]; ok && (o.trial < 0 || be.ns > 0) {
		return &exec.GroupEntry{Key: be.key, States: o.baseStates(be)}
	}
	return nil
}

// postInto writes the group's finalized post-aggregate row
// [keys..., results...] into buf, under the same evidence rules as
// trialEntry. It is the snapshot hot path: for banked tables the trial
// results come straight from the bank floats — no state materialization,
// no per-group allocation.
func (o *overlay) postInto(b *plan.Block, key string, scale float64, buf types.Row) (types.Row, bool) {
	if e, ok := o.touched[key]; ok {
		return exec.PostRowInto(b, e, scale, buf), true
	}
	be, ok := o.base.m[key]
	if !ok || (o.trial >= 0 && be.ns == 0) {
		return buf, false
	}
	if o.base.banked {
		t := o.base
		bw, bv, stride, trial := be.mainW, be.mainV, 1, o.trial >= 0
		if trial {
			bw, bv = be.bankW[o.trial:], be.bankV[o.trial:]
			stride = t.trials
		}
		buf = buf[:0]
		buf = append(buf, be.key...)
		for i, k := range t.cltKinds {
			// Replica banks may be deduplicated across aggregates: route
			// through the stream aliases (identity for the mains, which are
			// always written per aggregate).
			wi, vi := i, i
			if trial {
				wi, vi = t.bankW(i), t.bankV(i)
			}
			w := bw[wi*stride]
			switch {
			case k == cltCount:
				buf = append(buf, types.NewFloat(w*scale))
			case w == 0:
				buf = append(buf, types.Null)
			case k == cltSum:
				buf = append(buf, types.NewFloat(bv[vi*stride]*scale))
			default: // cltAvg
				buf = append(buf, types.NewFloat(bv[vi*stride]/w))
			}
		}
		return buf, true
	}
	states := be.main
	if o.trial >= 0 {
		states = be.reps[o.trial]
	}
	buf = buf[:0]
	buf = append(buf, be.key...)
	for _, s := range states {
		buf = append(buf, s.Result(scale))
	}
	return buf, true
}

// overlayFor folds the runner's uncertain set (under the point bindings
// for trial < 0, or trial j's bindings and Poisson weights otherwise)
// into a copy-on-write view of its deterministic state.
func (r *blockRunner) overlayFor(trial int) *overlay {
	o := newOverlay(r.tab, trial)
	var ctx *expr.Ctx
	if trial < 0 {
		ctx = r.eng.bind.pointCtx(nil)
	} else {
		ctx = r.eng.bind.trialCtx(nil, trial)
	}
	if trial < 0 {
		for i := range r.uncertain {
			u := &r.uncertain[i]
			ctx.Row = u.row
			if r.uncertainWhere != nil && !r.uncertainWhere.Eval(ctx).Truthy() {
				continue
			}
			o.fold(r.b, ctx, 1)
		}
		return o
	}
	for _, i := range r.sampledUncertain() {
		u := &r.uncertain[i]
		if u.weights[trial] == 0 {
			continue
		}
		ctx.Row = u.row
		if r.uncertainWhere != nil && !r.uncertainWhere.Eval(ctx).Truthy() {
			continue
		}
		o.fold(r.b, ctx, float64(u.weights[trial])*u.repW)
	}
	return o
}
