package core

import (
	"errors"
	"fmt"
)

// Typed runtime errors. Callers branch on Kind — either through
// errors.As on *QueryError, or directly with errors.Is against a kind
// constant: every ErrorKind is itself an error value, and QueryError
// implements Is so `errors.Is(err, ErrKindCheckpoint)` matches any
// QueryError of that kind anywhere in a wrap chain.

// ErrorKind classifies a QueryError. Each kind constant doubles as the
// errors.Is sentinel for that kind.
type ErrorKind string

const (
	// ErrKindInvalidOptions reports an Options value rejected at engine
	// construction.
	ErrKindInvalidOptions ErrorKind = "invalid-options"
	// ErrKindWorkerPanic reports a worker-task panic that survived the
	// serial retry ladder.
	ErrKindWorkerPanic ErrorKind = "worker-panic"
	// ErrKindPoolStopped reports a submission to a stopped worker pool.
	ErrKindPoolStopped ErrorKind = "pool-stopped"
	// ErrKindInterrupted reports a deadline or cancellation; the
	// accompanying snapshot is the bounded-time approximate answer.
	ErrKindInterrupted ErrorKind = "interrupted"
	// ErrKindCheckpoint reports a malformed or mismatched checkpoint.
	ErrKindCheckpoint ErrorKind = "checkpoint"
	// ErrKindShardLost reports a shard engine whose death exhausted the
	// coordinator's recovery ladder (re-dispatch to replacement shards,
	// then checkpoint restore): the query cannot make progress.
	ErrKindShardLost ErrorKind = "shard-lost"
)

// Error makes a kind usable as an errors.Is target.
func (k ErrorKind) Error() string { return "core: " + string(k) }

// QueryError is the runtime's typed error. Batch and Worker are -1 when
// not applicable.
type QueryError struct {
	Kind   ErrorKind
	Batch  int
	Worker int
	Err    error
	Note   string
}

func (e *QueryError) Error() string {
	msg := fmt.Sprintf("core: %s", e.Kind)
	if e.Batch >= 0 {
		msg += fmt.Sprintf(" (batch %d", e.Batch)
		if e.Worker >= 0 {
			msg += fmt.Sprintf(", worker %d", e.Worker)
		}
		msg += ")"
	}
	if e.Note != "" {
		msg += ": " + e.Note
	}
	if e.Err != nil {
		msg += ": " + e.Err.Error()
	}
	return msg
}

func (e *QueryError) Unwrap() error { return e.Err }

// Is matches the error's kind sentinel, so
// errors.Is(err, ErrKindInterrupted) works on wrapped QueryErrors.
func (e *QueryError) Is(target error) bool {
	k, ok := target.(ErrorKind)
	return ok && k == e.Kind
}

// queryErr builds a QueryError without positional context.
func queryErr(kind ErrorKind, note string) *QueryError {
	return &QueryError{Kind: kind, Batch: -1, Worker: -1, Note: note}
}

// ErrPoolStopped is returned by workerPool.submit after stop; callers
// degrade to the serial path.
var ErrPoolStopped = queryErr(ErrKindPoolStopped, "worker pool stopped")

// IsInterrupted reports whether err is a deadline/cancel interruption
// (whose snapshot is a valid bounded-time answer, not a failure).
func IsInterrupted(err error) bool {
	var qe *QueryError
	return errors.As(err, &qe) && qe.Kind == ErrKindInterrupted
}
