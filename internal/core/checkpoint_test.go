package core

import (
	"bytes"
	"errors"
	"testing"

	"fluodb/internal/chaos"
	"fluodb/internal/plan"
)

// stepTo runs exactly k mini-batches on a fresh engine and returns it
// plus the snapshots it produced.
func stepTo(t *testing.T, eng *Engine, k int) []*Snapshot {
	t.Helper()
	var snaps []*Snapshot
	for i := 0; i < k; i++ {
		s, err := eng.Step()
		if err != nil {
			t.Fatalf("step %d: %v", i+1, err)
		}
		snaps = append(snaps, s)
	}
	return snaps
}

// finish drains an engine to completion.
func finish(t *testing.T, eng *Engine) []*Snapshot {
	t.Helper()
	var snaps []*Snapshot
	for !eng.Done() {
		s, err := eng.Step()
		if err != nil {
			t.Fatalf("finish: %v", err)
		}
		snaps = append(snaps, s)
	}
	return snaps
}

// roundTrip checkpoints eng at its current batch, resumes a second
// engine from the bytes, verifies the resumed engine re-serializes to
// byte-identical state, then runs both to completion and demands
// bit-identical remaining snapshots.
func roundTrip(t *testing.T, label, sql string, o Options, k int) {
	t.Helper()
	cat := determinismCatalog(6*2048, 347)
	q, err := plan.Compile(sql, cat)
	if err != nil {
		t.Fatalf("%s: %v", label, err)
	}
	eng, err := New(q, cat, o)
	if err != nil {
		t.Fatalf("%s: %v", label, err)
	}
	defer eng.Close()
	stepTo(t, eng, k)

	ck1, err := eng.Checkpoint()
	if err != nil {
		t.Fatalf("%s: checkpoint: %v", label, err)
	}

	res, err := Resume(q, cat, o, ck1)
	if err != nil {
		t.Fatalf("%s: resume: %v", label, err)
	}
	defer res.Close()

	// Byte-identical re-serialization: restored state must be exactly the
	// state that was saved, not merely equivalent.
	ck2, err := res.Checkpoint()
	if err != nil {
		t.Fatalf("%s: re-checkpoint: %v", label, err)
	}
	if !bytes.Equal(ck1, ck2) {
		t.Fatalf("%s: resumed engine re-serializes differently (%d vs %d bytes)",
			label, len(ck1), len(ck2))
	}

	rest := finish(t, eng)
	restResumed := finish(t, res)
	compareSnapshots(t, label+"/continuation", rest, restResumed)
}

// TestCheckpointResumeFull exercises the full (state-serializing) mode:
// every aggregate in this query is banked, so the checkpoint carries the
// tables verbatim and resume does no replay.
func TestCheckpointResumeFull(t *testing.T) {
	o := Options{Batches: 6, Trials: 32, Seed: 419, Parallelism: 2, ParallelThreshold: 128}
	roundTrip(t, "full", chaosSQL, o, 3)
}

// TestCheckpointResumeReplay exercises the replay mode: MIN is not a
// banked aggregate, so the checkpoint stores only the decisions and
// resume re-derives the state by replaying the prefix.
func TestCheckpointResumeReplay(t *testing.T) {
	sql := `SELECT a, MIN(x), MAX(x), SUM(x) FROM facts GROUP BY a`
	o := Options{Batches: 6, Trials: 32, Seed: 419, Parallelism: 2, ParallelThreshold: 128}
	roundTrip(t, "replay", sql, o, 3)
}

// TestCheckpointUnderChaos: a checkpoint taken mid-run with fault
// injection active resumes into the same bit-identical stream (resume
// itself runs fault-free; the faults already contained before the
// checkpoint must leave no trace in the state).
func TestCheckpointUnderChaos(t *testing.T) {
	o := Options{
		Batches: 6, Trials: 32, Seed: 419, Parallelism: 4, ParallelThreshold: 128,
		Chaos: chaos.New(chaos.Config{Seed: 21, PanicProb: 0.25, CorruptProb: 0.15}),
	}
	roundTrip(t, "chaos", chaosSQL, o, 3)
}

// TestCheckpointAtBoundaries covers the edges: checkpoint before any
// batch and after the final batch.
func TestCheckpointAtBoundaries(t *testing.T) {
	o := Options{Batches: 4, Trials: 16, Seed: 5}
	roundTrip(t, "start", chaosSQL, o, 0)
	roundTrip(t, "end", chaosSQL, o, 4)
}

// TestCheckpointMetricsSurvive pins that cumulative metrics (rows,
// folds, evictions) travel with the checkpoint rather than resetting.
func TestCheckpointMetricsSurvive(t *testing.T) {
	cat := determinismCatalog(6*2048, 347)
	q, err := plan.Compile(chaosSQL, cat)
	if err != nil {
		t.Fatal(err)
	}
	o := Options{Batches: 6, Trials: 16, Seed: 31}
	eng, err := New(q, cat, o)
	if err != nil {
		t.Fatal(err)
	}
	defer eng.Close()
	stepTo(t, eng, 3)
	want := eng.Metrics()
	ck, err := eng.Checkpoint()
	if err != nil {
		t.Fatal(err)
	}
	res, err := Resume(q, cat, o, ck)
	if err != nil {
		t.Fatal(err)
	}
	defer res.Close()
	got := res.Metrics()
	if got.Batches != want.Batches || got.RowsProcessed != want.RowsProcessed ||
		got.DeterministicFolds != want.DeterministicFolds ||
		got.UncertainEvictions != want.UncertainEvictions ||
		got.Recomputes != want.Recomputes || got.DetFlips != want.DetFlips {
		t.Fatalf("metrics diverged across resume:\n  saved   %+v\n  resumed %+v", want, got)
	}
}

// TestCheckpointRejections pins the typed failure modes of restore.
func TestCheckpointRejections(t *testing.T) {
	cat := determinismCatalog(2048, 349)
	q, err := plan.Compile(chaosSQL, cat)
	if err != nil {
		t.Fatal(err)
	}
	o := Options{Batches: 4, Trials: 16, Seed: 7}
	eng, err := New(q, cat, o)
	if err != nil {
		t.Fatal(err)
	}
	defer eng.Close()
	stepTo(t, eng, 2)
	ck, err := eng.Checkpoint()
	if err != nil {
		t.Fatal(err)
	}

	wantCkErr := func(label string, data []byte, opt Options, query *plan.Query) {
		t.Helper()
		res, err := Resume(query, cat, opt, data)
		if err == nil {
			res.Close()
			t.Fatalf("%s: resume accepted, want checkpoint error", label)
		}
		var qe *QueryError
		if !errors.As(err, &qe) || qe.Kind != ErrKindCheckpoint {
			t.Fatalf("%s: got %v, want ErrKindCheckpoint", label, err)
		}
	}

	wantCkErr("empty", nil, o, q)
	wantCkErr("bad magic", []byte("NOTACKPT-----"), o, q)
	wantCkErr("truncated", ck[:len(ck)/2], o, q)

	corrupt := append([]byte(nil), ck...)
	corrupt[len(corrupt)-1] ^= 0xFF
	wantCkErr("trailing corruption", corrupt, o, q)

	// Fingerprint: different statistical configuration must be refused.
	o2 := o
	o2.Trials = 64
	wantCkErr("trials mismatch", ck, o2, q)
	o3 := o
	o3.Seed = 8
	wantCkErr("seed mismatch", ck, o3, q)

	// Fingerprint: different query shape must be refused.
	q2, err := plan.Compile(`SELECT a, SUM(x) FROM facts GROUP BY a`, cat)
	if err != nil {
		t.Fatal(err)
	}
	wantCkErr("query mismatch", ck, o, q2)

	// Parallelism is execution strategy, not state: it may differ.
	oP := o
	oP.Parallelism = 4
	oP.ParallelThreshold = 128
	res, err := Resume(q, cat, oP, ck)
	if err != nil {
		t.Fatalf("parallelism change rejected: %v", err)
	}
	res.Close()
}

// TestCheckpointCrossParallelism: a checkpoint taken by a serial engine
// may be resumed by a pooled one — parallelism is execution strategy,
// not state, so the fingerprint admits it. The continuations agree on
// groups and point estimates; bit-identity is NOT promised across a
// parallelism change (shard merges sum floats in a different order), so
// CIs are only required to be numerically close.
func TestCheckpointCrossParallelism(t *testing.T) {
	cat := determinismCatalog(6*2048, 353)
	q, err := plan.Compile(chaosSQL, cat)
	if err != nil {
		t.Fatal(err)
	}
	serial := Options{Batches: 6, Trials: 32, Seed: 11, Parallelism: 1}
	pooled := Options{Batches: 6, Trials: 32, Seed: 11, Parallelism: 4, ParallelThreshold: 128}

	engS, err := New(q, cat, serial)
	if err != nil {
		t.Fatal(err)
	}
	defer engS.Close()
	stepTo(t, engS, 3)
	ck, err := engS.Checkpoint()
	if err != nil {
		t.Fatal(err)
	}
	res, err := Resume(q, cat, pooled, ck)
	if err != nil {
		t.Fatal(err)
	}
	defer res.Close()
	rest, restResumed := finish(t, engS), finish(t, res)
	if len(rest) != len(restResumed) {
		t.Fatalf("continuation lengths differ: %d vs %d", len(rest), len(restResumed))
	}
	const tol = 1e-9
	for i := range rest {
		a, b := rest[i], restResumed[i]
		if len(a.Rows) != len(b.Rows) {
			t.Fatalf("batch %d: %d vs %d rows", a.Batch, len(a.Rows), len(b.Rows))
		}
		for r := range a.Rows {
			for c := range a.Rows[r] {
				ca, cb := a.Rows[r][c], b.Rows[r][c]
				fa, oka := ca.Value.AsFloat()
				fb, okb := cb.Value.AsFloat()
				switch {
				case oka != okb:
					t.Fatalf("batch %d row %d col %d: value kinds differ", a.Batch, r, c)
				case !oka:
					if ca.Value != cb.Value {
						t.Fatalf("batch %d row %d col %d: %v vs %v", a.Batch, r, c, ca.Value, cb.Value)
					}
				case !closeRel(fa, fb, tol):
					t.Fatalf("batch %d row %d col %d: point %v vs %v", a.Batch, r, c, fa, fb)
				}
				if ca.HasCI != cb.HasCI {
					t.Fatalf("batch %d row %d col %d: HasCI differs", a.Batch, r, c)
				}
				if ca.HasCI && (!closeRel(ca.CI.Lo, cb.CI.Lo, tol) || !closeRel(ca.CI.Hi, cb.CI.Hi, tol)) {
					t.Fatalf("batch %d row %d col %d: CI %+v vs %+v", a.Batch, r, c, ca.CI, cb.CI)
				}
			}
		}
	}
}

func closeRel(a, b, tol float64) bool {
	d := a - b
	if d < 0 {
		d = -d
	}
	m := a
	if m < 0 {
		m = -m
	}
	if bm := b; bm < 0 {
		if -bm > m {
			m = -bm
		}
	} else if bm > m {
		m = bm
	}
	return d <= tol*(1+m)
}
