package core

import (
	"math"
	"sort"
	"time"
)

// Convergence observatory (DESIGN.md §14). Every committed batch is
// sampled into a bounded per-query series: CI half-width quantiles per
// aggregate, uncertain-set size and churn, recompute count and
// throughput. The series feeds the dashboard SSE stream, the gola_*
// metric families, and the 1/√n-fit ETA-to-target-half-width predictor
// (Snapshot.ETA) — the telemetry a BlinkDB-style `ERROR 1%` stopping
// rule will consume. The observatory is telemetry, not engine state:
// checkpoints do not carry it, and a resumed engine re-fits after a
// couple of batches.

// AggConvergence is one output column's relative CI half-width
// quantiles at a batch boundary. Half-widths are relative to |point|
// (denominator 1 when the point estimate is 0 — the audit harness
// convention), so they compare directly to an `ERROR 1%` target.
type AggConvergence struct {
	Column string  `json:"column"`
	P50    float64 `json:"p50"`
	P90    float64 `json:"p90"`
	Max    float64 `json:"max"`
}

// ConvergencePoint is one batch's convergence sample.
type ConvergencePoint struct {
	Batch    int     `json:"batch"`
	Fraction float64 `json:"fraction"`
	Rows     int64   `json:"rows"` // cumulative root-table rows processed
	BatchMS  float64 `json:"batch_ms"`
	// RowsPerSec is this batch's throughput (batch rows over batch wall
	// time) — the rate the ETA extrapolates.
	RowsPerSec float64 `json:"rows_per_sec"`
	// Relative CI half-width quantiles across every cell carrying a CI.
	HalfWidthP50 float64 `json:"hw_p50"`
	HalfWidthP90 float64 `json:"hw_p90"`
	HalfWidthMax float64 `json:"hw_max"`
	// HasCI reports that at least one cell carried a confidence
	// interval this batch (the quantiles are meaningless otherwise).
	HasCI  bool             `json:"has_ci"`
	PerAgg []AggConvergence `json:"per_agg,omitempty"`
	// Uncertain-set telemetry: size after the batch, and churn across
	// the step — Out counts tuples leaving the cache (reclassification
	// folds/drops plus budget evictions, including replay work), In
	// counts fresh arrivals.
	Uncertain    int   `json:"uncertain"`
	UncertainIn  int64 `json:"uncertain_in"`
	UncertainOut int64 `json:"uncertain_out"`
	Recomputes   int   `json:"recomputes"` // cumulative
	// FitC is the fitted constant of the 1/√n model hw ≈ C/√rows
	// (median of hwMax·√rows over the trailing window; 0 until enough
	// CI-carrying batches exist).
	FitC float64 `json:"fit_c"`
}

// convergeState is the engine-side accumulator behind the series.
type convergeState struct {
	series []ConvergencePoint
	// stepOut accrues uncertain-cache departures (reclassify folds and
	// drops, budget evictions) across one StepContext, including any
	// replay work inside it; observeConvergence consumes and resets it.
	stepOut       int64
	prevUncertain int
	prevRows      int64
	scratch       []float64
	colScratch    [][]float64
}

// maxConvergencePoints bounds the per-query series; on overflow the
// series is decimated by dropping every other point, halving temporal
// resolution instead of forgetting the run's start.
const maxConvergencePoints = 512

// fitWindow is the trailing number of CI-carrying points the 1/√n fit
// uses. Early batches are the noisiest half-width estimates; a short
// median window tracks the current regime and shrugs off outliers.
const fitWindow = 8

// relHalfWidth is the relative CI half-width of one cell, using the
// audit harness denominator convention (|point|, or 1 when 0).
func relHalfWidth(c CellEstimate) float64 {
	hw := (c.CI.Hi - c.CI.Lo) / 2
	if hw < 0 || math.IsNaN(hw) || math.IsInf(hw, 0) {
		return 0
	}
	denom := 1.0
	if f, ok := c.Value.AsFloat(); ok && f != 0 {
		denom = math.Abs(f)
	}
	return hw / denom
}

// quantile reads the q-quantile from an ascending-sorted slice.
func quantile(sorted []float64, q float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	i := int(q * float64(len(sorted)-1))
	return sorted[i]
}

// observeConvergence samples the batch that just committed into the
// convergence series and stamps the point onto the snapshot.
func (e *Engine) observeConvergence(snap *Snapshot, dur time.Duration) {
	cs := &e.conv
	pt := ConvergencePoint{
		Batch:      snap.Batch,
		Fraction:   snap.FractionProcessed,
		Rows:       e.metrics.RowsProcessed,
		BatchMS:    float64(dur.Microseconds()) / 1000,
		Uncertain:  snap.UncertainRows,
		Recomputes: snap.Recomputes,
	}
	if secs := dur.Seconds(); secs > 0 {
		pt.RowsPerSec = float64(pt.Rows-cs.prevRows) / secs
	}

	// Relative half-width quantiles: across all CI cells, and per
	// output column (by schema name).
	all := cs.scratch[:0]
	nCols := len(snap.Schema)
	if cap(cs.colScratch) < nCols {
		cs.colScratch = make([][]float64, nCols)
	}
	cols := cs.colScratch[:nCols]
	for c := range cols {
		cols[c] = cols[c][:0]
	}
	for _, row := range snap.Rows {
		for c, cell := range row {
			if !cell.HasCI {
				continue
			}
			hw := relHalfWidth(cell)
			all = append(all, hw)
			if c < nCols {
				cols[c] = append(cols[c], hw)
			}
		}
	}
	if len(all) > 0 {
		pt.HasCI = true
		sort.Float64s(all)
		pt.HalfWidthP50 = quantile(all, 0.50)
		pt.HalfWidthP90 = quantile(all, 0.90)
		pt.HalfWidthMax = all[len(all)-1]
		for c := range cols {
			if len(cols[c]) == 0 {
				continue
			}
			sort.Float64s(cols[c])
			pt.PerAgg = append(pt.PerAgg, AggConvergence{
				Column: snap.Schema[c].Name,
				P50:    quantile(cols[c], 0.50),
				P90:    quantile(cols[c], 0.90),
				Max:    cols[c][len(cols[c])-1],
			})
		}
	}
	cs.scratch = all

	// Churn: departures were counted at their source; arrivals balance
	// the set-size delta.
	pt.UncertainOut = cs.stepOut
	if in := int64(snap.UncertainRows-cs.prevUncertain) + cs.stepOut; in > 0 {
		pt.UncertainIn = in
	}
	cs.stepOut = 0
	cs.prevUncertain = snap.UncertainRows
	cs.prevRows = pt.Rows

	cs.series = append(cs.series, pt)
	if len(cs.series) > maxConvergencePoints {
		keep := cs.series[:0]
		for i := 0; i < len(cs.series); i += 2 {
			keep = append(keep, cs.series[i])
		}
		cs.series = keep
	}
	pt.FitC = cs.fitC()
	cs.series[len(cs.series)-1].FitC = pt.FitC
	snap.Convergence = pt
}

// fitC fits hw ≈ C/√rows over the trailing window: each CI-carrying
// point contributes hwMax·√rows, and the median of those estimates is
// C. The max half-width (not the mean) is fitted because an `ERROR ε`
// contract means every cell within ε — the slowest-converging cell
// binds.
func (cs *convergeState) fitC() float64 {
	var ests []float64
	for i := len(cs.series) - 1; i >= 0 && len(ests) < fitWindow; i-- {
		p := cs.series[i]
		if !p.HasCI || p.HalfWidthMax <= 0 || p.Rows <= 0 {
			continue
		}
		ests = append(ests, p.HalfWidthMax*math.Sqrt(float64(p.Rows)))
	}
	if len(ests) < 2 {
		return 0
	}
	sort.Float64s(ests)
	return ests[len(ests)/2]
}

// ConvergenceSeries returns a copy of the per-batch convergence series
// recorded so far (decimated to at most maxConvergencePoints).
func (e *Engine) ConvergenceSeries() []ConvergencePoint {
	return append([]ConvergencePoint(nil), e.conv.series...)
}

// ETA predicts how much longer the query must run until every
// CI-carrying cell's relative half-width is at or below eps, by the
// 1/√n model: hw ≈ C/√rows ⇒ rows needed = (C/eps)², extrapolated at
// the current throughput and clamped to the rows remaining. The bool
// reports whether a prediction was possible (a CI exists and the fit
// has converged); (0, true) means the target is already met. By
// construction the estimate is monotone non-increasing in eps.
func (s *Snapshot) ETA(eps float64) (time.Duration, bool) {
	c := s.Convergence
	if eps <= 0 || !c.HasCI {
		return 0, false
	}
	if c.HalfWidthMax <= eps {
		return 0, true
	}
	if c.FitC <= 0 || c.RowsPerSec <= 0 || c.Rows <= 0 {
		return 0, false
	}
	need := (c.FitC / eps) * (c.FitC / eps)
	rem := need - float64(c.Rows)
	if rem < 0 {
		rem = 0
	}
	// The run ends when the table is exhausted (the answer is then
	// exact), so never predict past the remaining rows.
	if c.Fraction > 0 {
		if max := float64(c.Rows)/c.Fraction - float64(c.Rows); rem > max {
			rem = max
		}
	}
	return time.Duration(rem / c.RowsPerSec * float64(time.Second)), true
}
