package core

import (
	"testing"

	"fluodb/internal/bootstrap"
	"fluodb/internal/expr"
	"fluodb/internal/sqlparser"
	"fluodb/internal/types"
)

func col(i int) expr.Expr { return &expr.Col{Idx: i, Name: "c", Typ: types.KindFloat} }
func cnum(f float64) expr.Expr {
	return &expr.Const{V: types.NewFloat(f)}
}
func binop(op sqlparser.BinaryOp, l, r expr.Expr) expr.Expr {
	return &expr.Binary{Op: op, L: l, R: r}
}

// env builds a triEnv with one scalar param range.
func env(lo, hi float64) *triEnv {
	return &triEnv{
		pointCtx:     &expr.Ctx{Scalars: []types.Value{types.NewFloat((lo + hi) / 2)}},
		scalarRanges: []paramRange{okRange(bootstrap.Range{Lo: lo, Hi: hi})},
	}
}

func param() expr.Expr {
	return &expr.ScalarParam{Idx: 0, Typ: types.KindFloat, Desc: "p"}
}

func TestEvalTriComparisons(t *testing.T) {
	te := env(10, 20) // $0 ∈ [10,20]
	row := types.Row{types.NewFloat(0)}
	set := func(v float64) types.Row { return types.Row{types.NewFloat(v)} }
	_ = row
	cases := []struct {
		op   sqlparser.BinaryOp
		x    float64 // col > param etc.
		want tri
	}{
		{sqlparser.OpGt, 25, triTrue},     // 25 > [10,20] always
		{sqlparser.OpGt, 5, triFalse},     // 5 > [10,20] never
		{sqlparser.OpGt, 15, triUnknown},  // inside the range
		{sqlparser.OpGt, 10, triFalse},    // 10 > [10,20]: never (x ≤ lo)
		{sqlparser.OpGe, 20, triTrue},     // 20 ≥ [10,20]: always (x ≥ hi)
		{sqlparser.OpGe, 9.9, triFalse},   // below
		{sqlparser.OpLt, 5, triTrue},      // 5 < [10,20] always
		{sqlparser.OpLt, 20, triUnknown},  // 20 < [10,20]: only if param = 20... never! see below
		{sqlparser.OpLe, 10, triTrue},     // 10 ≤ [10,20] always
		{sqlparser.OpEq, 25, triFalse},    // disjoint
		{sqlparser.OpEq, 15, triUnknown},  // overlapping
		{sqlparser.OpNe, 25, triTrue},     // disjoint → always ≠
		{sqlparser.OpNe, 15, triUnknown},  // overlapping
		{sqlparser.OpLt, 9.99, triTrue},   // strictly below
		{sqlparser.OpLt, 20.01, triFalse}, // strictly above hi → x < p never
	}
	for _, c := range cases {
		e := binop(c.op, col(0), param())
		got := te.evalTri(e, set(c.x))
		// Note on {OpLt, 20}: 20 < p requires p > 20, impossible in
		// [10,20] — a sharper implementation would say triFalse; ours
		// conservatively says... verify what it says and accept either
		// correct-or-conservative (never a WRONG det answer).
		if c.op == sqlparser.OpLt && c.x == 20 {
			if got == triTrue {
				t.Errorf("20 < [10,20] must not be det-true")
			}
			continue
		}
		if got != c.want {
			t.Errorf("%v %s param[10,20] = %v, want %v", c.x, c.op, got, c.want)
		}
	}
}

func TestEvalTriNullOperandIsFalse(t *testing.T) {
	te := env(10, 20)
	e := binop(sqlparser.OpGt, col(0), param())
	if got := te.evalTri(e, types.Row{types.Null}); got != triFalse {
		t.Errorf("NULL > param = %v, want det-false (SQL semantics)", got)
	}
}

func TestEvalTriKleene(t *testing.T) {
	te := env(10, 20)
	inside := binop(sqlparser.OpGt, cnum(15), param())  // unknown
	alwaysT := binop(sqlparser.OpGt, cnum(25), param()) // true
	alwaysF := binop(sqlparser.OpGt, cnum(5), param())  // false
	and := func(l, r expr.Expr) expr.Expr { return binop(sqlparser.OpAnd, l, r) }
	or := func(l, r expr.Expr) expr.Expr { return binop(sqlparser.OpOr, l, r) }

	if got := te.evalTri(and(alwaysF, inside), nil); got != triFalse {
		t.Errorf("F AND U = %v", got)
	}
	if got := te.evalTri(and(alwaysT, inside), nil); got != triUnknown {
		t.Errorf("T AND U = %v", got)
	}
	if got := te.evalTri(or(alwaysT, inside), nil); got != triTrue {
		t.Errorf("T OR U = %v", got)
	}
	if got := te.evalTri(or(alwaysF, inside), nil); got != triUnknown {
		t.Errorf("F OR U = %v", got)
	}
	not := &expr.Not{X: inside}
	if got := te.evalTri(not, nil); got != triUnknown {
		t.Errorf("NOT U = %v", got)
	}
	notT := &expr.Not{X: alwaysT}
	if got := te.evalTri(notT, nil); got != triFalse {
		t.Errorf("NOT T = %v", got)
	}
}

func TestIntervalArithmetic(t *testing.T) {
	te := env(10, 20)
	check := func(e expr.Expr, lo, hi float64) {
		t.Helper()
		pr := te.evalRange(e, nil)
		if pr.status != rsOK {
			t.Fatalf("%s: status %v", e, pr.status)
		}
		if pr.r.Lo != lo || pr.r.Hi != hi {
			t.Errorf("%s: [%g,%g], want [%g,%g]", e, pr.r.Lo, pr.r.Hi, lo, hi)
		}
	}
	check(binop(sqlparser.OpAdd, param(), cnum(5)), 15, 25)
	check(binop(sqlparser.OpSub, cnum(100), param()), 80, 90)
	check(binop(sqlparser.OpMul, cnum(2), param()), 20, 40)
	check(binop(sqlparser.OpMul, cnum(-1), param()), -20, -10)
	check(binop(sqlparser.OpDiv, param(), cnum(2)), 5, 10)
	check(&expr.Neg{X: param()}, -20, -10)
	// 1/param with param spanning... [10,20] doesn't span 0:
	check(binop(sqlparser.OpDiv, cnum(40), param()), 2, 4)
}

func TestIntervalDivByRangeSpanningZero(t *testing.T) {
	te := env(-1, 1)
	pr := te.evalRange(binop(sqlparser.OpDiv, cnum(1), param()), nil)
	if pr.status != rsUnknown {
		t.Errorf("1/[-1,1] should be unknown, got %+v", pr)
	}
}

func TestUnsupportedExprIsConservative(t *testing.T) {
	te := env(10, 20)
	// SQRT(param): no interval rule → unknown, never a wrong answer
	fn, _ := expr.LookupFunc("SQRT")
	call, _ := expr.NewCall(fn, []expr.Expr{param()})
	if pr := te.evalRange(call, nil); pr.status != rsUnknown {
		t.Errorf("SQRT(param) range = %+v, want unknown", pr)
	}
	cmp := binop(sqlparser.OpGt, cnum(100), call)
	if got := te.evalTri(cmp, nil); got != triUnknown {
		t.Errorf("comparison with opaque range = %v, want unknown", got)
	}
}

func TestRowRangesClassifyHaving(t *testing.T) {
	// HAVING SUM(q) > 300 with the group's SUM range as a row range.
	having := binop(sqlparser.OpGt, col(1), cnum(300))
	te := &triEnv{pointCtx: &expr.Ctx{}}
	post := types.Row{types.NewInt(7), types.NewFloat(400)}

	te.rowRanges = []paramRange{okRange(bootstrap.Point(7)), okRange(bootstrap.Range{Lo: 350, Hi: 450})}
	if got := te.evalTri(having, post); got != triTrue {
		t.Errorf("range fully above threshold = %v", got)
	}
	te.rowRanges[1] = okRange(bootstrap.Range{Lo: 100, Hi: 200})
	if got := te.evalTri(having, post); got != triFalse {
		t.Errorf("range fully below threshold = %v", got)
	}
	te.rowRanges[1] = okRange(bootstrap.Range{Lo: 250, Hi: 350})
	if got := te.evalTri(having, post); got != triUnknown {
		t.Errorf("straddling range = %v", got)
	}
	// Without row ranges the same predicate evaluates exactly.
	te.rowRanges = nil
	if got := te.evalTri(having, post); got != triTrue {
		t.Errorf("pointwise having = %v", got)
	}
}

func TestSetTriMembership(t *testing.T) {
	te := &triEnv{
		pointCtx: &expr.Ctx{},
		setTri: []func(string) tri{func(key string) tri {
			switch key {
			case types.KeyString1(types.NewInt(1)):
				return triTrue
			case types.KeyString1(types.NewInt(2)):
				return triFalse
			default:
				return triUnknown
			}
		}},
	}
	sp := &expr.SetParam{Idx: 0, X: col(0)}
	if got := te.evalTri(sp, types.Row{types.NewInt(1)}); got != triTrue {
		t.Errorf("member = %v", got)
	}
	if got := te.evalTri(sp, types.Row{types.NewInt(2)}); got != triFalse {
		t.Errorf("non-member = %v", got)
	}
	if got := te.evalTri(sp, types.Row{types.NewInt(3)}); got != triUnknown {
		t.Errorf("unknown member = %v", got)
	}
	neg := &expr.SetParam{Idx: 0, X: col(0), Negated: true}
	if got := te.evalTri(neg, types.Row{types.NewInt(2)}); got != triTrue {
		t.Errorf("NOT IN non-member = %v", got)
	}
	if got := te.evalTri(sp, types.Row{types.Null}); got != triFalse {
		t.Errorf("NULL IN set = %v", got)
	}
}

func TestGroupRangeLookupStatuses(t *testing.T) {
	g := &groupBinding{
		rng: map[string]paramRange{
			"k1": okRange(bootstrap.Range{Lo: 1, Hi: 2}),
		},
	}
	b := &bindings{groups: []*groupBinding{g}}
	te := b.triEnv()
	if pr := te.groupRanges[0]("k1"); pr.status != rsOK {
		t.Error("known group")
	}
	if pr := te.groupRanges[0]("nope"); pr.status != rsUnknown {
		t.Error("unknown group on incomplete table must be unknown")
	}
	g.complete = true
	if pr := te.groupRanges[0]("nope"); pr.status != rsNull {
		t.Error("missing group on complete table is NULL")
	}
}

func TestEscapesPointOnly(t *testing.T) {
	committed := bootstrap.Range{Lo: 10, Hi: 20}
	if escapes(committed, types.NewFloat(15)) {
		t.Error("inside point should not escape")
	}
	if !escapes(committed, types.NewFloat(25)) {
		t.Error("outside point must escape")
	}
	if escapes(committed, types.Null) {
		t.Error("NULL never escapes")
	}
}

func TestIntersect(t *testing.T) {
	a := bootstrap.Range{Lo: 0, Hi: 10}
	b := bootstrap.Range{Lo: 5, Hi: 15}
	got := intersect(a, b)
	if got.Lo != 5 || got.Hi != 10 {
		t.Errorf("intersect = %+v", got)
	}
	// disjoint collapses to a point at the crossing
	c := bootstrap.Range{Lo: 20, Hi: 30}
	got2 := intersect(a, c)
	if got2.Lo != got2.Hi {
		t.Errorf("disjoint intersect = %+v", got2)
	}
}

func TestBuildRangeGuards(t *testing.T) {
	mkReps := func(vals ...float64) []types.Value {
		out := make([]types.Value, len(vals))
		for i, v := range vals {
			out[i] = types.NewFloat(v)
		}
		return out
	}
	// too few observations → unknown
	if pr := buildRange(types.NewFloat(5), mkReps(5, 5), 1); pr.status != rsUnknown {
		t.Errorf("2 reps = %v", pr.status)
	}
	// zero variance → unknown (no dispersion information)
	if pr := buildRange(types.NewFloat(5), mkReps(5, 5, 5, 5, 5, 5, 5, 5, 5, 5, 5, 5), 1); pr.status != rsUnknown {
		t.Errorf("degenerate reps = %v", pr.status)
	}
	// healthy replicas → range covering point and replica spread
	pr := buildRange(types.NewFloat(5), mkReps(4, 5, 6, 4.5, 5.5, 4, 6, 5, 4.8, 5.2, 4.4, 5.6), 1)
	if pr.status != rsOK {
		t.Fatalf("healthy reps = %v", pr.status)
	}
	if !pr.r.Contains(5) || !pr.r.Contains(4) || !pr.r.Contains(6) {
		t.Errorf("range %+v should cover point and replica extremes", pr.r)
	}
	// NULL point → null
	if pr := buildRange(types.Null, mkReps(1, 2, 3), 1); pr.status != rsNull {
		t.Errorf("null point = %v", pr.status)
	}
}
