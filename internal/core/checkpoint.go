package core

import (
	"encoding/binary"
	"fmt"
	"math"
	"sort"
	"time"

	"fluodb/internal/bootstrap"
	"fluodb/internal/plan"
	"fluodb/internal/storage"
	"fluodb/internal/types"
)

// Checkpoint/resume. A G-OLA engine at a mini-batch boundary is fully
// described by (a) the deterministic set — each block's online
// aggregate table, (b) the uncertain cache, (c) the parameter bindings
// (points, variation ranges, committed intersections, epsilon boosts),
// and (d) the RNG cursor — which, with counter-based resampling, is
// just the seed plus the batch index: weights for any row regenerate as
// pure hashes. Serializing those lets a cancelled or crashed query
// resume exactly where it stopped, replay-free.
//
// Two modes, chosen automatically:
//
//   - full: every block's table is banked (all aggregates CLT-estimable
//     — SUM/COUNT/AVG, the common OLA shape). Entries are flat float
//     banks, serialized verbatim in insertion order; resume rebuilds the
//     tables bit-identically with zero reprocessing.
//   - replay: some aggregate carries opaque state (MIN/MAX, quantile
//     digests, HLL sketches). The checkpoint stores only the bindings'
//     epsilon boosts, the no-commit flag and the batch index; resume
//     reprocesses batches 0..k−1 — deterministic by the same argument as
//     failure-recovery replay, at the cost of redoing prefix work.
//
// The encoding is hand-rolled (fixed-width little-endian, float bits,
// sorted map keys) so equal states serialize to equal bytes: the soak
// asserts checkpoint → resume → checkpoint round-trips byte-identically.
// An FNV-1a trailer guards the payload: a flipped bit anywhere —
// including free-form numeric fields no structural check would catch —
// is refused at restore instead of silently resuming from bad state.

const (
	ckMagic   = "FLCP1"
	ckVersion = 1

	ckModeFull   = 0
	ckModeReplay = 1
)

// ckSum is FNV-1a 64 over the checkpoint payload.
func ckSum(b []byte) uint64 {
	h := uint64(0xcbf29ce484222325)
	for _, c := range b {
		h ^= uint64(c)
		h *= 0x100000001b3
	}
	return h
}

// ckWriter is a little-endian append-only buffer.
type ckWriter struct{ buf []byte }

func (w *ckWriter) u64(v uint64) {
	w.buf = binary.LittleEndian.AppendUint64(w.buf, v)
}
func (w *ckWriter) i(v int)       { w.u64(uint64(int64(v))) }
func (w *ckWriter) i64(v int64)   { w.u64(uint64(v)) }
func (w *ckWriter) f64(v float64) { w.u64(math.Float64bits(v)) }
func (w *ckWriter) b(v bool) {
	if v {
		w.buf = append(w.buf, 1)
	} else {
		w.buf = append(w.buf, 0)
	}
}
func (w *ckWriter) byte1(v byte) { w.buf = append(w.buf, v) }
func (w *ckWriter) str(s string) {
	w.i(len(s))
	w.buf = append(w.buf, s...)
}
func (w *ckWriter) bytes(b []uint8) {
	w.i(len(b))
	w.buf = append(w.buf, b...)
}
func (w *ckWriter) floats(fs []float64) {
	w.i(len(fs))
	for _, f := range fs {
		w.f64(f)
	}
}
func (w *ckWriter) value(v types.Value) {
	w.byte1(byte(v.Kind()))
	switch v.Kind() {
	case types.KindNull:
	case types.KindBool:
		w.b(v.Bool())
	case types.KindInt:
		w.i64(v.Int())
	case types.KindFloat:
		w.f64(v.Float())
	case types.KindString:
		w.str(v.Str())
	}
}
func (w *ckWriter) row(r types.Row) {
	w.i(len(r))
	for _, v := range r {
		w.value(v)
	}
}

// ckReader is the matching cursor; failures latch into err.
type ckReader struct {
	buf []byte
	at  int
	err error
}

func (r *ckReader) fail(msg string) {
	if r.err == nil {
		r.err = queryErr(ErrKindCheckpoint, msg)
	}
}
func (r *ckReader) u64() uint64 {
	if r.err != nil {
		return 0
	}
	if r.at+8 > len(r.buf) {
		r.fail("truncated checkpoint")
		return 0
	}
	v := binary.LittleEndian.Uint64(r.buf[r.at:])
	r.at += 8
	return v
}
func (r *ckReader) i() int       { return int(int64(r.u64())) }
func (r *ckReader) i64() int64   { return int64(r.u64()) }
func (r *ckReader) f64() float64 { return math.Float64frombits(r.u64()) }
func (r *ckReader) byte1() byte {
	if r.err != nil {
		return 0
	}
	if r.at >= len(r.buf) {
		r.fail("truncated checkpoint")
		return 0
	}
	v := r.buf[r.at]
	r.at++
	return v
}
func (r *ckReader) b() bool { return r.byte1() != 0 }
func (r *ckReader) str() string {
	n := r.i()
	if r.err != nil || n < 0 || r.at+n > len(r.buf) {
		r.fail("truncated string")
		return ""
	}
	s := string(r.buf[r.at : r.at+n])
	r.at += n
	return s
}
func (r *ckReader) bytes() []uint8 {
	n := r.i()
	if r.err != nil || n < 0 || r.at+n > len(r.buf) {
		r.fail("truncated bytes")
		return nil
	}
	b := make([]uint8, n)
	copy(b, r.buf[r.at:r.at+n])
	r.at += n
	return b
}
func (r *ckReader) floats() []float64 {
	n := r.i()
	if r.err != nil || n < 0 {
		return nil
	}
	fs := make([]float64, n)
	for i := range fs {
		fs[i] = r.f64()
	}
	return fs
}
func (r *ckReader) value() types.Value {
	switch types.Kind(r.byte1()) {
	case types.KindNull:
		return types.Null
	case types.KindBool:
		return types.NewBool(r.b())
	case types.KindInt:
		return types.NewInt(r.i64())
	case types.KindFloat:
		return types.NewFloat(r.f64())
	case types.KindString:
		return types.NewString(r.str())
	}
	r.fail("unknown value kind")
	return types.Null
}
func (r *ckReader) row() types.Row {
	n := r.i()
	if r.err != nil || n < 0 || n > len(r.buf) {
		r.fail("bad row length")
		return nil
	}
	row := make(types.Row, n)
	for i := range row {
		row[i] = r.value()
	}
	return row
}

// fingerprint ties a checkpoint to the query shape and the
// statistics-affecting options; Parallelism and other purely
// operational knobs may differ between save and resume.
func (e *Engine) fingerprint() uint64 {
	s := fmt.Sprintf("seed=%d b=%d t=%d c=%v eps=%v sup=%d cap=%d budget=%d",
		e.opt.Seed, e.opt.Batches, e.opt.Trials, e.opt.Confidence,
		e.opt.EpsilonSigma, e.opt.MinGroupSupport, e.opt.BootstrapSampleCap,
		e.opt.SnapshotEvalBudget)
	full := append([]string(nil), e.opt.FullTables...)
	sort.Strings(full)
	for _, f := range full {
		s += "|full=" + f
	}
	for _, r := range e.runners {
		s += fmt.Sprintf("|blk=%d:%s:%s", r.b.ID, r.b.Kind, r.b.Label)
	}
	names := make([]string, 0, len(e.tables))
	for n := range e.tables {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		s += fmt.Sprintf("|tab=%s:%d", n, e.tables[n].total)
	}
	return hashString(s)
}

// checkpointMode picks full when every block's table is banked.
func (e *Engine) checkpointMode() byte {
	for _, r := range e.runners {
		if !r.tab.banked {
			return ckModeReplay
		}
	}
	return ckModeFull
}

// Checkpoint serializes the engine's state at the current mini-batch
// boundary. The bytes are self-describing and deterministic: equal
// engine states produce equal checkpoints.
func (e *Engine) Checkpoint() ([]byte, error) {
	if e.fatal != nil {
		return nil, queryErr(ErrKindCheckpoint, "engine is in a fatal state")
	}
	csp := e.sctl.Begin("checkpoint", e.spanQuery, e.batch, -1)
	defer e.sctl.End(csp)
	mode := e.checkpointMode()
	w := &ckWriter{}
	w.buf = append(w.buf, ckMagic...)
	w.byte1(ckVersion)
	w.byte1(mode)
	w.u64(e.fingerprint())
	w.i(e.batch)

	// Bindings. Both modes persist the boosts and flags; full mode also
	// persists points, ranges and committed intersections.
	w.b(e.bind.noCommit)
	w.i(e.bind.flips)
	w.i(len(e.bind.scalars))
	for _, s := range e.bind.scalars {
		w.f64(s.epsBoost)
		if mode == ckModeFull {
			w.value(s.point)
			w.f64(s.rng.r.Lo)
			w.f64(s.rng.r.Hi)
			w.byte1(byte(s.rng.status))
			w.f64(s.committed.Lo)
			w.f64(s.committed.Hi)
			w.b(s.hasCommitted)
		}
	}
	w.i(len(e.bind.groups))
	for _, g := range e.bind.groups {
		w.f64(g.epsBoost)
		if mode == ckModeFull {
			w.b(g.complete)
			keys := sortedKeys(g.point)
			w.i(len(keys))
			for _, k := range keys {
				w.str(k)
				w.value(g.point[k])
			}
			keys = sortedKeys(g.rng)
			w.i(len(keys))
			for _, k := range keys {
				pr := g.rng[k]
				w.str(k)
				w.f64(pr.r.Lo)
				w.f64(pr.r.Hi)
				w.byte1(byte(pr.status))
			}
			keys = sortedKeys(g.committed)
			w.i(len(keys))
			for _, k := range keys {
				w.str(k)
				w.f64(g.committed[k].Lo)
				w.f64(g.committed[k].Hi)
			}
		}
	}
	w.i(len(e.bind.sets))
	for _, sb := range e.bind.sets {
		w.f64(sb.epsBoost)
		if mode == ckModeFull {
			w.b(sb.complete)
			keys := sortedKeys(sb.point)
			w.i(len(keys))
			for _, k := range keys {
				w.str(k)
				w.b(sb.point[k])
			}
			keys = sortedKeys(sb.tri)
			w.i(len(keys))
			for _, k := range keys {
				w.str(k)
				w.byte1(byte(sb.tri[k]))
			}
			keys = sortedKeys(sb.committed)
			w.i(len(keys))
			for _, k := range keys {
				w.str(k)
				w.b(sb.committed[k])
			}
		}
	}

	// Deterministic set + uncertain cache (full mode only; replay mode
	// reconstructs both by reprocessing the prefix).
	if mode == ckModeFull {
		w.i(len(e.runners))
		for _, r := range e.runners {
			t := r.tab
			w.i(len(t.entries))
			for _, en := range t.entries {
				w.row(en.key)
				w.i(en.n)
				w.i(en.ns)
				w.floats(en.mainW)
				w.floats(en.mainV)
				w.floats(en.bankW)
				w.floats(en.bankV)
				w.i(len(en.clt))
				for _, c := range en.clt {
					w.f64(c.n)
					w.f64(c.mean)
					w.f64(c.m2)
				}
			}
			w.i(len(r.uncertain))
			for _, u := range r.uncertain {
				w.row(u.row)
				w.bytes(u.weights)
				w.f64(u.repW)
			}
		}
	}

	// Metrics (restored verbatim so a resumed engine reports the same
	// history as the uninterrupted run).
	w.i(e.metrics.Batches)
	w.i(e.metrics.Recomputes)
	w.i64(e.metrics.RowsProcessed)
	w.i64(e.metrics.DeterministicFolds)
	w.i64(e.metrics.UncertainEvictions)
	w.i64(e.metrics.BudgetEvictions)
	w.i(e.degradeRung)
	w.i64(e.ledger.PeakTotal())
	w.i64(e.metrics.GCPauseNS)
	w.i64(e.metrics.GCCycles)
	w.i(len(e.metrics.UncertainPerBatch))
	for _, n := range e.metrics.UncertainPerBatch {
		w.i(n)
	}
	w.i(len(e.metrics.BatchDurations))
	for _, d := range e.metrics.BatchDurations {
		w.i64(int64(d))
	}
	w.u64(ckSum(w.buf))
	// Record the encode-buffer size as the checkpoint resource charge.
	// The caller owns the returned bytes, so this is the cost of the most
	// recent checkpoint — the residency a checkpointing loop sustains.
	e.ckBytes = int64(cap(w.buf))
	e.trace.Emit(Event{Kind: EvCheckpoint, Kept: e.batch,
		Note: fmt.Sprintf("mode=%d bytes=%d", mode, len(w.buf))})
	return w.buf, nil
}

// Resume rebuilds an engine from a checkpoint taken by Checkpoint on an
// engine with the same query and statistics-affecting options.
// Operational options (Parallelism, tracer, chaos injector) may differ.
func Resume(q *plan.Query, cat *storage.Catalog, opt Options, data []byte) (*Engine, error) {
	e, err := New(q, cat, opt)
	if err != nil {
		return nil, err
	}
	if err := e.restore(data); err != nil {
		return nil, err
	}
	return e, nil
}

func (e *Engine) restore(data []byte) error {
	rsp := e.sctl.Begin("resume", 0, -1, -1)
	oldTop := e.spanTop
	e.spanTop = rsp
	defer func() {
		e.spanTop = oldTop
		e.sctl.End(rsp)
	}()
	if len(data) < len(ckMagic) || string(data[:len(ckMagic)]) != ckMagic {
		return queryErr(ErrKindCheckpoint, "bad magic")
	}
	if len(data) < len(ckMagic)+8 {
		return queryErr(ErrKindCheckpoint, "truncated checkpoint")
	}
	body := data[:len(data)-8]
	if want := binary.LittleEndian.Uint64(data[len(data)-8:]); ckSum(body) != want {
		return queryErr(ErrKindCheckpoint, "checksum mismatch: checkpoint bytes corrupted")
	}
	r := &ckReader{buf: body}
	r.at = len(ckMagic)
	if v := r.byte1(); v != ckVersion {
		return queryErr(ErrKindCheckpoint, fmt.Sprintf("unsupported version %d", v))
	}
	mode := r.byte1()
	if fp := r.u64(); fp != e.fingerprint() {
		return queryErr(ErrKindCheckpoint, "fingerprint mismatch: checkpoint belongs to a different query or options")
	}
	batch := r.i()
	if batch < 0 || batch > e.opt.Batches {
		return queryErr(ErrKindCheckpoint, "batch index out of range")
	}

	noCommit := r.b()
	flips := r.i()
	if n := r.i(); n != len(e.bind.scalars) {
		return queryErr(ErrKindCheckpoint, "scalar binding count mismatch")
	}
	for _, s := range e.bind.scalars {
		s.epsBoost = r.f64()
		if mode == ckModeFull {
			s.point = r.value()
			s.rng.r.Lo = r.f64()
			s.rng.r.Hi = r.f64()
			s.rng.status = rangeStatus(r.byte1())
			s.committed.Lo = r.f64()
			s.committed.Hi = r.f64()
			s.hasCommitted = r.b()
		}
	}
	if n := r.i(); n != len(e.bind.groups) {
		return queryErr(ErrKindCheckpoint, "group binding count mismatch")
	}
	for _, g := range e.bind.groups {
		g.epsBoost = r.f64()
		if mode == ckModeFull {
			g.complete = r.b()
			for n := r.i(); n > 0 && r.err == nil; n-- {
				k := r.str()
				g.point[k] = r.value()
			}
			for n := r.i(); n > 0 && r.err == nil; n-- {
				k := r.str()
				var pr paramRange
				pr.r.Lo = r.f64()
				pr.r.Hi = r.f64()
				pr.status = rangeStatus(r.byte1())
				g.rng[k] = pr
			}
			for n := r.i(); n > 0 && r.err == nil; n-- {
				k := r.str()
				lo, hi := r.f64(), r.f64()
				g.committed[k] = rangeOf(lo, hi)
			}
		}
	}
	if n := r.i(); n != len(e.bind.sets) {
		return queryErr(ErrKindCheckpoint, "set binding count mismatch")
	}
	for _, sb := range e.bind.sets {
		sb.epsBoost = r.f64()
		if mode == ckModeFull {
			sb.complete = r.b()
			for n := r.i(); n > 0 && r.err == nil; n-- {
				k := r.str()
				sb.point[k] = r.b()
			}
			for n := r.i(); n > 0 && r.err == nil; n-- {
				k := r.str()
				sb.tri[k] = tri(r.byte1())
			}
			for n := r.i(); n > 0 && r.err == nil; n-- {
				k := r.str()
				sb.committed[k] = r.b()
			}
		}
	}
	e.bind.noCommit = noCommit
	e.bind.flips = flips

	if mode == ckModeFull {
		if n := r.i(); n != len(e.runners) {
			return queryErr(ErrKindCheckpoint, "runner count mismatch")
		}
		for _, rn := range e.runners {
			nEntries := r.i()
			if r.err != nil {
				return r.err
			}
			for i := 0; i < nEntries; i++ {
				key := r.row()
				en := &onlineEntry{
					key: key,
					n:   r.i(),
					ns:  r.i(),
				}
				en.mainW = r.floats()
				en.mainV = r.floats()
				en.bankW = r.floats()
				en.bankV = r.floats()
				nClt := r.i()
				if nClt > 0 && r.err == nil {
					en.clt = make([]cltAcc, nClt)
					for j := range en.clt {
						en.clt[j].n = r.f64()
						en.clt[j].mean = r.f64()
						en.clt[j].m2 = r.f64()
					}
				}
				if r.err != nil {
					return r.err
				}
				cols := identityCols(len(key))
				en.hash = key.HashKey(cols)
				rn.tab.insert(en)
				en.skey = key.KeyString(cols)
				rn.tab.m[en.skey] = en
				rn.tab.order = append(rn.tab.order, en.skey)
			}
			nUnc := r.i()
			if r.err != nil {
				return r.err
			}
			for i := 0; i < nUnc; i++ {
				row := r.row()
				weights := r.bytes()
				repW := r.f64()
				if r.err != nil {
					return r.err
				}
				if weights != nil {
					weights = rn.arena.hold(weights)
				}
				rn.uncertain = append(rn.uncertain, uncertainRow{row: row, weights: weights, repW: repW})
			}
			rn.sampledIdxValid = false
		}
		e.batch = batch
		// Table progress is a function of the batch index.
		for _, ts := range e.tables {
			if batch > 0 && len(ts.batches) > 0 {
				j := batch - 1
				if j >= len(ts.batches) {
					j = len(ts.batches) - 1
				}
				ts.seen = ts.starts[j] + len(ts.batches[j])
			}
		}
	}

	// Metrics come after any replay so the replayed prefix's own
	// bookkeeping is overwritten with the original run's history.
	mBatches := r.i()
	mRecomputes := r.i()
	mRows := r.i64()
	mFolds := r.i64()
	mEvict := r.i64()
	mBudgetEvict := r.i64()
	mDegradeRung := r.i()
	mMemPeak := r.i64()
	mGCPause := r.i64()
	mGCCycles := r.i64()
	var perBatch []int
	if n := r.i(); n > 0 && r.err == nil {
		perBatch = make([]int, n)
		for i := range perBatch {
			perBatch[i] = r.i()
		}
	}
	var durs []time.Duration
	if n := r.i(); n > 0 && r.err == nil {
		durs = make([]time.Duration, n)
		for i := range durs {
			durs[i] = time.Duration(r.i64())
		}
	}
	if r.err != nil {
		return r.err
	}

	if mode == ckModeReplay && batch > 0 {
		// Reprocess the prefix with the restored boosts: by the
		// failure-recovery invariant, fresh processing of batches 0..k−1
		// under the final boost values reproduces the engine state at
		// batch k exactly.
		if err := e.replayUpTo(batch - 1); err != nil {
			return err
		}
		e.batch = batch
	}
	e.metrics.Batches = mBatches
	e.metrics.Recomputes = mRecomputes
	e.metrics.RowsProcessed = mRows
	e.metrics.DeterministicFolds = mFolds
	e.metrics.UncertainEvictions = mEvict
	e.metrics.BudgetEvictions = mBudgetEvict
	e.metrics.GCPauseNS = mGCPause
	e.metrics.GCCycles = mGCCycles
	e.metrics.UncertainPerBatch = perBatch
	e.metrics.BatchDurations = durs
	e.bind.flips = flips
	// Re-engage latched degradation rungs: a resumed budget-degraded
	// query must keep running degraded (un-degrading would re-grow the
	// freed pools and break the determinism of the latch). A replay-mode
	// restore may already have re-engaged rungs deterministically during
	// prefix reprocessing; setDegradeRung is monotone, so this is safe.
	if mDegradeRung >= 1 && e.degradeRung < 1 {
		e.setDegradeRung(1)
		e.dropSegmentCache()
	}
	if mDegradeRung >= 2 && e.degradeRung < 2 {
		e.setDegradeRung(2)
		e.dropPrefetch()
	}
	if mDegradeRung >= 3 && e.degradeRung < 3 {
		e.setDegradeRung(3)
	}
	e.updateDegradeReason()
	e.metrics.DegradeRung = e.degradeRung
	e.ledger.RestorePeak(mMemPeak)
	e.metrics.MemPeakBytes = e.ledger.PeakTotal()
	e.trace.Emit(Event{Kind: EvResume, Kept: batch,
		Note: fmt.Sprintf("mode=%d", mode)})
	return nil
}

// identityCols returns [0..n) for key-projection calls on stored keys.
func identityCols(n int) []int {
	cols := make([]int, n)
	for i := range cols {
		cols[i] = i
	}
	return cols
}

// rangeOf builds a bootstrap.Range (helper keeping the reader terse).
func rangeOf(lo, hi float64) bootstrap.Range { return bootstrap.Range{Lo: lo, Hi: hi} }
