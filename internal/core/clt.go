package core

import (
	"math"

	"fluodb/internal/bootstrap"
	"fluodb/internal/plan"
	"fluodb/internal/types"
)

// CLT-based variation ranges.
//
// Bootstrap replicas generalize to arbitrary aggregates but need
// per-group evidence, which a bounded subsample cannot provide when a
// correlated subquery has thousands of groups (TPC-H Q17's per-part
// averages). For the standard estimable aggregates — AVG, SUM, COUNT —
// the sampling error of the running estimate has a closed form, so the
// engine maintains O(1) Welford moments per (group, aggregate) and
// derives variation ranges as point ± z·SE, with a finite-population
// correction √(1−f) that collapses the range as the scan completes.
// Bootstrap replicas remain the fallback for every other aggregate and
// stay in use for confidence-interval reporting.

// cltKind classifies an aggregate for closed-form range estimation.
type cltKind uint8

const (
	cltNone cltKind = iota
	cltAvg
	cltSum
	cltCount
)

// cltKindOf maps an aggregate spec to its CLT class.
func cltKindOf(a *plan.AggSpec) cltKind {
	if a.Distinct {
		return cltNone
	}
	switch a.Name {
	case "AVG":
		return cltAvg
	case "SUM":
		return cltSum
	case "COUNT":
		return cltCount
	default:
		return cltNone
	}
}

// cltAcc is a Welford accumulator over an aggregate's (non-NULL) input
// values.
type cltAcc struct {
	n    float64
	mean float64
	m2   float64
}

func (a *cltAcc) add(x float64) {
	a.n++
	d := x - a.mean
	a.mean += d / a.n
	a.m2 += d * (x - a.mean)
}

func (a *cltAcc) variance() float64 {
	if a.n < 2 {
		return 0
	}
	return a.m2 / (a.n - 1)
}

// cltRange derives the variation range of one aggregate slot.
//
//	f     — fraction of the block's table processed
//	scale — extensive multiplicity 1/f
//	z     — total half-width multiplier (base z + ε, times any boost)
//
// It returns rsUnknown when the accumulator carries too little evidence
// (n < 2 leaves the variance unidentified).
func cltRange(kind cltKind, a *cltAcc, scale, f, z float64) paramRange {
	if kind == cltNone {
		return paramRange{status: rsUnknown}
	}
	if a.n == 0 {
		// No qualifying input yet: SUM/AVG are NULL, COUNT is 0.
		if kind == cltCount {
			return okRange(bootstrap.Point(0))
		}
		return paramRange{status: rsNull}
	}
	rem := 1 - f
	if rem < 0 {
		rem = 0
	}
	sd := math.Sqrt(a.variance())
	// The sample standard deviation from few observations underestimates
	// σ often enough to make committed ranges fragile; inflate by a
	// rough χ²-style small-sample factor (→1 as n grows).
	smallN := math.Sqrt((a.n + 3) / math.Max(a.n-1, 1))
	switch kind {
	case cltAvg:
		// The AVG range is pure sd — a handful of (possibly identical)
		// observations identifies it too poorly to commit against.
		if a.n < 4 {
			return paramRange{status: rsUnknown}
		}
		se := sd * smallN / math.Sqrt(a.n) * math.Sqrt(rem)
		if rem > 0 && se <= 1e-9*(1+math.Abs(a.mean)) {
			return paramRange{status: rsUnknown} // degenerate: no dispersion info
		}
		return okRange(bootstrap.Range{Lo: a.mean - z*se, Hi: a.mean + z*se})
	case cltSum:
		if a.n < 2 {
			return paramRange{status: rsUnknown}
		}
		point := scale * a.n * a.mean
		se := scale * math.Sqrt(a.n*rem*(sd*sd*smallN*smallN+a.mean*a.mean))
		if rem > 0 && se <= 1e-9*(1+math.Abs(point)) {
			return paramRange{status: rsUnknown}
		}
		return okRange(bootstrap.Range{Lo: point - z*se, Hi: point + z*se})
	case cltCount:
		point := scale * a.n
		se := scale * math.Sqrt(a.n*rem)
		return okRange(bootstrap.Range{Lo: point - z*se, Hi: point + z*se})
	}
	return paramRange{status: rsUnknown}
}

// cltZBase is the base half-width multiplier, matching the effective
// coverage of a 100-trial bootstrap min/max range (~±2.6σ).
const cltZBase = 2.6

// cltRowRanges builds per-slot variation ranges for a group entry's
// post-aggregate row: group-key slots are exact points; CLT-estimable
// aggregate slots get closed-form ranges; the rest are unknown.
func (e *Engine) cltRowRanges(r *blockRunner, en *onlineEntry, post types.Row, scale, f, z float64, out []paramRange) []paramRange {
	b := r.b
	out = out[:0]
	for c := range post {
		if c < len(b.GroupBy) {
			if fv, ok := post[c].AsFloat(); ok {
				out = append(out, okRange(bootstrap.Point(fv)))
			} else {
				out = append(out, paramRange{status: rsUnknown})
			}
			continue
		}
		ia := c - len(b.GroupBy)
		if en.clt == nil || r.cltKinds[ia] == cltNone {
			out = append(out, paramRange{status: rsUnknown})
			continue
		}
		out = append(out, cltRange(r.cltKinds[ia], &en.clt[ia], scale, f, z))
	}
	return out
}
