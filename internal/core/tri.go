// Package core implements the G-OLA execution model (§2–§3 of the
// paper): mini-batch online processing with efficient delta maintenance.
//
// The controller partitions every streamed fact table into k uniform
// mini-batches. Each lineage block (see internal/plan) keeps incremental
// aggregate state — a main state plus B poissonized-bootstrap replica
// states — and, at every predicate that references a nested aggregate's
// value, classifies input tuples into a deterministic set (folded into
// the aggregate states permanently) and an uncertain set (cached with
// lineage and lazily re-evaluated as the nested estimates refine).
// Variation ranges R(u) = [min(û)−ε, max(û)+ε] computed from the
// bootstrap replicas drive the classification; the controller monitors
// committed ranges and schedules recomputation when an estimate escapes
// them (§3.2).
package core

import (
	"fluodb/internal/bootstrap"
	"fluodb/internal/expr"
	"fluodb/internal/sqlparser"
	"fluodb/internal/types"
)

// tri is a three-valued predicate outcome under interval semantics.
type tri int

const (
	triFalse tri = iota
	triTrue
	triUnknown
)

func triFromBool(b bool) tri {
	if b {
		return triTrue
	}
	return triFalse
}

// rangeStatus qualifies an interval evaluation.
type rangeStatus int

const (
	rsOK      rangeStatus = iota // range is meaningful
	rsNull                       // the value is SQL NULL (predicates fail)
	rsUnknown                    // cannot bound the value → conservative
)

// triEnv provides the interval view of the parameter bindings plus the
// point-estimate context for the certain sub-expressions.
type triEnv struct {
	pointCtx     *expr.Ctx
	scalarRanges []paramRange
	groupRanges  []func(key string) paramRange
	setTri       []func(key string) tri
	// rowRanges, when non-nil, gives variation ranges for the columns of
	// the current row itself. It is used to classify set-block HAVING
	// predicates, where the group's own (scaled, still-converging)
	// aggregates occupy post-aggregate columns.
	rowRanges []paramRange
	// hp/hc memoize the HasParams / hasCols tree walks (they run on
	// every tuple otherwise). Expression trees are immutable after
	// planning, so caching by node identity is sound.
	hp func(expr.Expr) bool
	hc func(expr.Expr) bool
}

func (te *triEnv) hasParams(e expr.Expr) bool {
	if te.hp != nil {
		return te.hp(e)
	}
	return expr.HasParams(e)
}

func (te *triEnv) hasColumns(e expr.Expr) bool {
	if te.hc != nil {
		return te.hc(e)
	}
	return hasCols(e)
}

// hasCols reports whether the expression reads any row column.
func hasCols(e expr.Expr) bool {
	found := false
	expr.Walk(e, func(x expr.Expr) bool {
		if _, ok := x.(*expr.Col); ok {
			found = true
		}
		return !found
	})
	return found
}

// paramRange is a variation range plus its status.
type paramRange struct {
	r      bootstrap.Range
	status rangeStatus
}

func okRange(r bootstrap.Range) paramRange { return paramRange{r: r, status: rsOK} }

// evalRange evaluates a numeric expression to a variation range.
func (te *triEnv) evalRange(e expr.Expr, row types.Row) paramRange {
	// Sub-expressions without params (and, when row ranges are active,
	// without column reads) are exact: evaluate pointwise.
	if !te.hasParams(e) && (te.rowRanges == nil || !te.hasColumns(e)) {
		te.pointCtx.Row = row
		v := e.Eval(te.pointCtx)
		if v.IsNull() {
			return paramRange{status: rsNull}
		}
		f, ok := v.AsFloat()
		if !ok {
			return paramRange{status: rsUnknown}
		}
		return okRange(bootstrap.Point(f))
	}
	switch x := e.(type) {
	case *expr.Col:
		if te.rowRanges != nil {
			if x.Idx >= 0 && x.Idx < len(te.rowRanges) {
				return te.rowRanges[x.Idx]
			}
			return paramRange{status: rsUnknown}
		}
		// unreachable via the fast path above, but kept for safety
		te.pointCtx.Row = row
		v := x.Eval(te.pointCtx)
		if v.IsNull() {
			return paramRange{status: rsNull}
		}
		if f, ok := v.AsFloat(); ok {
			return okRange(bootstrap.Point(f))
		}
		return paramRange{status: rsUnknown}
	case *expr.ScalarParam:
		if x.Idx < 0 || x.Idx >= len(te.scalarRanges) {
			return paramRange{status: rsUnknown}
		}
		return te.scalarRanges[x.Idx]
	case *expr.GroupParam:
		if x.Idx < 0 || x.Idx >= len(te.groupRanges) || te.groupRanges[x.Idx] == nil {
			return paramRange{status: rsUnknown}
		}
		te.pointCtx.Row = row
		key := x.KeyString(te.pointCtx)
		return te.groupRanges[x.Idx](key)
	case *expr.Neg:
		in := te.evalRange(x.X, row)
		if in.status != rsOK {
			return in
		}
		return okRange(bootstrap.Range{Lo: -in.r.Hi, Hi: -in.r.Lo})
	case *expr.Binary:
		return te.evalBinaryRange(x, row)
	default:
		return paramRange{status: rsUnknown}
	}
}

func (te *triEnv) evalBinaryRange(x *expr.Binary, row types.Row) paramRange {
	switch x.Op {
	case sqlparser.OpAdd, sqlparser.OpSub, sqlparser.OpMul, sqlparser.OpDiv:
	default:
		return paramRange{status: rsUnknown}
	}
	l := te.evalRange(x.L, row)
	if l.status == rsNull {
		return l
	}
	r := te.evalRange(x.R, row)
	if r.status == rsNull {
		return r
	}
	if l.status != rsOK || r.status != rsOK {
		return paramRange{status: rsUnknown}
	}
	a, b := l.r, r.r
	switch x.Op {
	case sqlparser.OpAdd:
		return okRange(bootstrap.Range{Lo: a.Lo + b.Lo, Hi: a.Hi + b.Hi})
	case sqlparser.OpSub:
		return okRange(bootstrap.Range{Lo: a.Lo - b.Hi, Hi: a.Hi - b.Lo})
	case sqlparser.OpMul:
		c1, c2, c3, c4 := a.Lo*b.Lo, a.Lo*b.Hi, a.Hi*b.Lo, a.Hi*b.Hi
		return okRange(bootstrap.Range{Lo: min4(c1, c2, c3, c4), Hi: max4(c1, c2, c3, c4)})
	case sqlparser.OpDiv:
		if b.Lo <= 0 && b.Hi >= 0 {
			return paramRange{status: rsUnknown} // denominator may cross zero
		}
		c1, c2, c3, c4 := a.Lo/b.Lo, a.Lo/b.Hi, a.Hi/b.Lo, a.Hi/b.Hi
		return okRange(bootstrap.Range{Lo: min4(c1, c2, c3, c4), Hi: max4(c1, c2, c3, c4)})
	}
	return paramRange{status: rsUnknown}
}

func min4(a, b, c, d float64) float64 {
	m := a
	for _, x := range []float64{b, c, d} {
		if x < m {
			m = x
		}
	}
	return m
}

func max4(a, b, c, d float64) float64 {
	m := a
	for _, x := range []float64{b, c, d} {
		if x > m {
			m = x
		}
	}
	return m
}

// evalTri evaluates a predicate under interval semantics: triTrue and
// triFalse mean the outcome is the same for every value the uncertain
// aggregates may still take; triUnknown sends the tuple to the
// uncertain set.
func (te *triEnv) evalTri(e expr.Expr, row types.Row) tri {
	if !te.hasParams(e) && (te.rowRanges == nil || !te.hasColumns(e)) {
		te.pointCtx.Row = row
		return triFromBool(e.Eval(te.pointCtx).Truthy())
	}
	switch x := e.(type) {
	case *expr.Binary:
		switch x.Op {
		case sqlparser.OpAnd:
			l := te.evalTri(x.L, row)
			if l == triFalse {
				return triFalse
			}
			r := te.evalTri(x.R, row)
			if r == triFalse {
				return triFalse
			}
			if l == triTrue && r == triTrue {
				return triTrue
			}
			return triUnknown
		case sqlparser.OpOr:
			l := te.evalTri(x.L, row)
			if l == triTrue {
				return triTrue
			}
			r := te.evalTri(x.R, row)
			if r == triTrue {
				return triTrue
			}
			if l == triFalse && r == triFalse {
				return triFalse
			}
			return triUnknown
		case sqlparser.OpEq, sqlparser.OpNe, sqlparser.OpLt, sqlparser.OpLe,
			sqlparser.OpGt, sqlparser.OpGe:
			return te.evalCompareTri(x, row)
		default:
			return triUnknown
		}
	case *expr.Not:
		switch te.evalTri(x.X, row) {
		case triTrue:
			return triFalse
		case triFalse:
			return triTrue
		default:
			return triUnknown
		}
	case *expr.SetParam:
		return te.evalSetTri(x, row)
	default:
		return triUnknown
	}
}

// evalCompareTri compares two variation ranges.
func (te *triEnv) evalCompareTri(x *expr.Binary, row types.Row) tri {
	l := te.evalRange(x.L, row)
	r := te.evalRange(x.R, row)
	// SQL: a comparison with NULL is never truthy.
	if l.status == rsNull || r.status == rsNull {
		return triFalse
	}
	if l.status != rsOK || r.status != rsOK {
		return triUnknown
	}
	a, b := l.r, r.r
	switch x.Op {
	case sqlparser.OpGt:
		if a.Lo > b.Hi {
			return triTrue
		}
		if a.Hi <= b.Lo {
			return triFalse
		}
	case sqlparser.OpGe:
		if a.Lo >= b.Hi {
			return triTrue
		}
		if a.Hi < b.Lo {
			return triFalse
		}
	case sqlparser.OpLt:
		if a.Hi < b.Lo {
			return triTrue
		}
		if a.Lo >= b.Hi {
			return triFalse
		}
	case sqlparser.OpLe:
		if a.Hi <= b.Lo {
			return triTrue
		}
		if a.Lo > b.Hi {
			return triFalse
		}
	case sqlparser.OpEq:
		if !a.Overlaps(b) {
			return triFalse
		}
		if a.Lo == a.Hi && b.Lo == b.Hi && a.Lo == b.Lo {
			return triTrue
		}
	case sqlparser.OpNe:
		if !a.Overlaps(b) {
			return triTrue
		}
		if a.Lo == a.Hi && b.Lo == b.Hi && a.Lo == b.Lo {
			return triFalse
		}
	}
	return triUnknown
}

// evalSetTri resolves uncertain set membership.
func (te *triEnv) evalSetTri(x *expr.SetParam, row types.Row) tri {
	te.pointCtx.Row = row
	v := x.X.Eval(te.pointCtx)
	if v.IsNull() {
		return triFalse
	}
	if x.Idx < 0 || x.Idx >= len(te.setTri) || te.setTri[x.Idx] == nil {
		return triUnknown
	}
	m := te.setTri[x.Idx](types.KeyString1(v))
	if m == triUnknown {
		return triUnknown
	}
	member := m == triTrue
	return triFromBool(member != x.Negated)
}
