package core

import (
	"testing"

	"fluodb/internal/plan"
	"fluodb/internal/testutil"
)

// pooledBatchEnv builds a warmed pooled engine over the fold catalog:
// one Step creates the worker pool and every group, so repeated batch
// feeds exercise the steady state.
func pooledBatchEnv(tb testing.TB) (*Engine, *blockRunner, *tableStream, *triEnv) {
	cat := foldCatalog(3*8192, 71)
	q, err := plan.Compile(`SELECT a, b, SUM(x), AVG(x) FROM facts GROUP BY a, b`, cat)
	if err != nil {
		tb.Fatal(err)
	}
	eng, err := New(q, cat, Options{
		Batches: 3, Trials: 100, Seed: 72,
		Parallelism: 4, ParallelThreshold: 512,
	})
	if err != nil {
		tb.Fatal(err)
	}
	if _, err := eng.Step(); err != nil {
		tb.Fatal(err)
	}
	r := eng.runners[len(eng.runners)-1]
	return eng, r, eng.tables["facts"], eng.triEnv()
}

// TestPooledFeedBatchAllocs pins the pooled batch feed to amortized
// ~zero allocations per tuple: after warmup, a batch costs only the
// per-worker task closures (a handful of allocations amortized over
// thousands of rows) — no fresh shard tables, goroutines, weight
// scratch or uncertain buffers. The legacy spawn runtime allocated all
// of those every batch; this gate keeps the pool honest.
func TestPooledFeedBatchAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("race instrumentation allocates")
	}
	eng, r, ts, te := pooledBatchEnv(t)
	defer eng.Close()
	rows := ts.batches[1]
	// Warm the shard scratch (first pooled batch builds worker tables,
	// joiner clones and classification environments).
	r.feedBatchParallel(rows, ts.starts[1], ts, te, nil)
	allocs := testing.AllocsPerRun(20, func() {
		r.feedBatchParallel(rows, ts.starts[1], ts, te, nil)
	})
	perRow := allocs / float64(len(rows))
	if perRow > 0.01 {
		t.Fatalf("pooled batch feed allocates %.1f allocs/batch (%.4f/tuple) over %d rows, want ≤0.01/tuple",
			allocs, perRow, len(rows))
	}
}

// benchPooledBatch measures a full batch feed through either runtime;
// the pooled path reuses warmed shard scratch, the spawn path pays
// per-batch goroutine + shard-table setup.
func benchPooledBatch(b *testing.B, spawn bool) {
	cat := foldCatalog(3*8192, 71)
	q, err := plan.Compile(`SELECT a, b, SUM(x), AVG(x) FROM facts GROUP BY a, b`, cat)
	if err != nil {
		b.Fatal(err)
	}
	eng, err := New(q, cat, Options{
		Batches: 3, Trials: 100, Seed: 72,
		Parallelism: 4, ParallelThreshold: 512,
		PerBatchSpawn: spawn,
	})
	if err != nil {
		b.Fatal(err)
	}
	defer eng.Close()
	if _, err := eng.Step(); err != nil {
		b.Fatal(err)
	}
	r := eng.runners[len(eng.runners)-1]
	ts, te := eng.tables["facts"], eng.triEnv()
	rows := ts.batches[1]
	r.feedBatchParallel(rows, ts.starts[1], ts, te, nil)
	b.ReportAllocs()
	b.SetBytes(int64(len(rows)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r.feedBatchParallel(rows, ts.starts[1], ts, te, nil)
	}
}

func BenchmarkFoldBatchPooled(b *testing.B) { benchPooledBatch(b, false) }
func BenchmarkFoldBatchSpawn(b *testing.B)  { benchPooledBatch(b, true) }

// TestPoolLifecycleNoLeaks opens and closes many pooled engines and
// requires the worker goroutines to drain back to the baseline — the
// reusable leak check shared with the dashboard-disconnect and otrace
// tests (internal/testutil).
func TestPoolLifecycleNoLeaks(t *testing.T) {
	base := testutil.GoroutineBaseline()
	for i := 0; i < 8; i++ {
		eng, _, _, _ := pooledBatchEnv(t)
		if _, err := eng.Step(); err != nil {
			t.Fatal(err)
		}
		eng.Close()
	}
	testutil.VerifyNoLeaks(t, base)
}

// TestEngineCloseIdempotent checks the pool lifecycle: Close is
// idempotent, and a closed engine degrades to serial feeding instead of
// panicking on its stopped pool.
func TestEngineCloseIdempotent(t *testing.T) {
	eng, r, ts, te := pooledBatchEnv(t)
	eng.Close()
	eng.Close()
	// The pooled path must fall back to serial on a closed engine.
	r.feedBatchParallel(ts.batches[1], ts.starts[1], ts, te, nil)
	if eng.pool != nil {
		t.Fatal("closed engine rebuilt its worker pool")
	}
}
