package core

import (
	"sort"
	"time"

	"fluodb/internal/bootstrap"
	"fluodb/internal/exec"
	"fluodb/internal/expr"
	"fluodb/internal/types"
)

// CellEstimate is one output cell: the point estimate computed as if the
// query ran on all data seen so far (Q(Dᵢ, k/i) of §2.2), with a
// bootstrap confidence interval for aggregated cells.
type CellEstimate struct {
	Value types.Value
	CI    bootstrap.Interval
	RSD   float64
	HasCI bool
}

// BlockStat is one lineage block's online state at snapshot time.
type BlockStat struct {
	ID        int
	Kind      string // "root", "scalar", "group-scalar", "set"
	Label     string // the block's SQL
	Table     string // streamed fact table
	Groups    int    // live groups in the block's aggregate state
	Uncertain int    // cached uncertain tuples
	// Phases is the block's cumulative per-phase processing time (fine
	// phases require Options.Profile; see PhaseTimes).
	Phases PhaseTimes
}

// Snapshot is the refined approximate answer after one mini-batch.
type Snapshot struct {
	Batch             int // 1-based index of the batch just processed
	TotalBatches      int
	FractionProcessed float64
	Schema            types.Schema
	Rows              [][]CellEstimate
	UncertainRows     int           // cached uncertain tuples across all blocks
	Recomputes        int           // cumulative range-failure recomputations
	Elapsed           time.Duration // processing time of this batch
	// Phases breaks down where this batch went (including the emission
	// of this snapshot; fine phases require Options.Profile). Worker
	// time is summed under parallel folding, so the breakdown may exceed
	// Elapsed.
	Phases PhaseTimes
	// Blocks profiles each lineage block (dependency order, root last) —
	// the observability the paper's Query Controller exposes (§4).
	Blocks []BlockStat
	// Interrupted marks a bounded-time answer: a deadline or cancel
	// stopped the prefix at a mini-batch boundary and this snapshot is
	// the last committed result (its CIs remain valid for the processed
	// prefix). InterruptReason carries the context error.
	Interrupted     bool
	InterruptReason string
	// Degraded names every degradation in force, empty when none:
	// "budget:..." lists the MaxMemoryBytes ladder rungs engaged
	// (segcache, prefetch, evict), "cap:evict" marks MaxUncertainRows
	// evictions. The answer is still a valid estimate — budget rungs 1-2
	// are bit-identical fallbacks, and evictions trade deterministic-set
	// precision for bounded memory.
	Degraded string
	// Resources is this batch's memory observation: per-pool byte
	// residency from the resource ledger, GC telemetry attributed to the
	// batch, and soft-budget state (ledger.go, DESIGN.md §15).
	Resources ResourceUsage
	// Convergence is this batch's convergence-observatory sample: CI
	// half-width quantiles, uncertain churn, throughput, and the 1/√n
	// fit behind ETA (converge.go). Zero-valued when no batch has
	// committed (e.g. an interrupted first batch).
	Convergence ConvergencePoint
	// Shards is the per-shard progress of the coordinator topology
	// (coordinator.go), nil for unsharded engines. An Incarnation above 0
	// means the slot was respawned after an injected or real death.
	Shards []ShardStat
}

// ShardStat is one shard slot's progress inside a sharded engine.
type ShardStat struct {
	ID          int   `json:"id"`
	Incarnation int   `json:"incarnation"`
	Rows        int64 `json:"rows"`
	Steps       int64 `json:"steps"`
}

// RSD returns the mean relative standard deviation across all cells
// that carry a confidence interval — the y-axis of the paper's
// Figure 3(a).
func (s *Snapshot) RSD() float64 {
	var sum float64
	var n int
	for _, row := range s.Rows {
		for _, c := range row {
			if c.HasCI {
				sum += c.RSD
				n++
			}
		}
	}
	if n == 0 {
		return 0
	}
	return sum / float64(n)
}

// ValueRows strips the estimates down to plain rows.
func (s *Snapshot) ValueRows() []types.Row {
	out := make([]types.Row, len(s.Rows))
	for i, row := range s.Rows {
		r := make(types.Row, len(row))
		for j, c := range row {
			r[j] = c.Value
		}
		out[i] = r
	}
	return out
}

// columnIsAggregated reports whether a root select column depends on
// aggregate slots or uncertain params (and therefore deserves a CI).
func columnIsAggregated(e expr.Expr, groupWidth int) bool {
	if expr.HasParams(e) {
		return true
	}
	found := false
	expr.Walk(e, func(x expr.Expr) bool {
		if c, ok := x.(*expr.Col); ok && c.Idx >= groupWidth {
			found = true
		}
		return !found
	})
	return found
}

// snapshot materializes the current approximate result with error bars.
func (e *Engine) snapshot(elapsed time.Duration) *Snapshot {
	b := e.q.Root
	rr := e.runners[len(e.runners)-1]
	scale := e.scaleFor(b)
	ts := e.tables[b.Input.Fact]

	snap := &Snapshot{
		Batch:         e.batch,
		TotalBatches:  e.opt.Batches,
		Schema:        b.OutSchema(),
		UncertainRows: e.UncertainRows(),
		Recomputes:    e.metrics.Recomputes,
		Elapsed:       elapsed,
		Degraded:      e.degradeReason,
	}
	if ts.total > 0 {
		snap.FractionProcessed = float64(ts.seen) / float64(ts.total)
	}
	if e.coord != nil {
		snap.Shards = e.coord.progress()
	}
	for i, r := range e.runners {
		snap.Blocks = append(snap.Blocks, BlockStat{
			ID:        r.b.ID,
			Kind:      r.b.Kind.String(),
			Label:     r.b.Label,
			Table:     r.b.Input.Fact,
			Groups:    len(r.tab.order),
			Uncertain: len(r.uncertain),
			Phases:    e.blockAcc[i].times(),
		})
	}

	hasCI := make([]bool, len(b.Select))
	for c, se := range b.Select {
		hasCI[c] = columnIsAggregated(se, len(b.GroupBy))
	}

	mainO := rr.overlayFor(-1)
	keys := mainO.keys()
	// Bound the per-snapshot error-estimation work: with many output
	// groups, compute the CIs from a prefix of the trials (trials are
	// exchangeable, so any subset is a valid — coarser — bootstrap).
	effTrials := e.opt.Trials
	if e.opt.SnapshotEvalBudget > 0 {
		groups := len(keys)
		if groups < 1 {
			groups = 1
		}
		effTrials = e.opt.SnapshotEvalBudget / groups
		if effTrials < 8 {
			effTrials = 8
		}
		if effTrials > e.opt.Trials {
			effTrials = e.opt.Trials
		}
	}
	trialOs := make([]*overlay, effTrials)
	for j := range trialOs {
		trialOs[j] = rr.overlayFor(j)
	}
	pctx := e.bind.pointCtx(nil)
	tctxs := make([]*expr.Ctx, effTrials)
	for j := range tctxs {
		tctxs[j] = e.bind.trialCtx(nil, j)
	}
	global := len(b.GroupBy) == 0
	type scored struct {
		cells []CellEstimate
		point types.Row
	}
	var rows []scored

	// Scratch reused across groups: trial post-rows, per-column replica
	// values, and the point estimates as floats (for the m-out-of-n
	// adjustment, applied inline to avoid boxing a Value per replica).
	var tbuf types.Row
	repVals := make([][]float64, len(b.Select))
	for c := range repVals {
		if hasCI[c] {
			repVals[c] = make([]float64, 0, effTrials)
		}
	}
	pointF := make([]float64, len(b.Select))
	pointOk := make([]bool, len(b.Select))
	adjust := ts.sqrtP < 1
	emit := func(entry *exec.GroupEntry, trialPost func(j int, buf types.Row) (types.Row, bool)) {
		post := exec.PostRow(b, entry, scale)
		pctx.Row = post
		if b.Having != nil && !b.Having.Eval(pctx).Truthy() {
			return
		}
		point := make(types.Row, len(b.Select))
		for c, se := range b.Select {
			pctx.Row = post
			point[c] = se.Eval(pctx)
			if hasCI[c] {
				repVals[c] = repVals[c][:0]
				pointF[c], pointOk[c] = point[c].AsFloat()
			}
		}
		for j := 0; j < effTrials; j++ {
			tpost, ok := trialPost(j, tbuf)
			if !ok {
				continue
			}
			tbuf = tpost
			for c, se := range b.Select {
				if !hasCI[c] {
					continue
				}
				tctxs[j].Row = tpost
				f, ok := se.Eval(tctxs[j]).AsFloat()
				if !ok {
					continue
				}
				if adjust && pointOk[c] {
					f = pointF[c] + (f-pointF[c])*ts.sqrtP
				}
				repVals[c] = append(repVals[c], f)
			}
		}
		cells := make([]CellEstimate, len(b.Select))
		for c := range cells {
			cells[c].Value = point[c]
			if hasCI[c] && len(repVals[c]) > 0 {
				// RSD first: it sums in trial order, the order the seed
				// implementation used; the in-place CI sort would perturb
				// the floating-point summation otherwise.
				cells[c].RSD = bootstrap.RSD(repVals[c])
				cells[c].CI = bootstrap.PercentileCIInPlace(repVals[c], e.opt.Confidence)
				cells[c].HasCI = true
			}
		}
		rows = append(rows, scored{cells: cells, point: point})
	}

	if global {
		entry := soleEntry(b, mainO)
		emit(entry, func(j int, buf types.Row) (types.Row, bool) {
			return exec.PostRowInto(b, soleEntry(b, trialOs[j]), scale, buf), true
		})
	} else {
		for _, key := range keys {
			entry := mainO.entry(key)
			if entry == nil {
				continue
			}
			k := key
			emit(entry, func(j int, buf types.Row) (types.Row, bool) {
				return trialOs[j].postInto(b, k, scale, buf)
			})
		}
	}

	if len(b.OrderBy) > 0 {
		sort.SliceStable(rows, func(i, j int) bool {
			for _, o := range b.OrderBy {
				c := types.Compare(rows[i].point[o.Col], rows[j].point[o.Col])
				if c != 0 {
					if o.Desc {
						return c > 0
					}
					return c < 0
				}
			}
			return false
		})
	}
	if b.Offset > 0 {
		if b.Offset >= len(rows) {
			rows = nil
		} else {
			rows = rows[b.Offset:]
		}
	}
	if b.Limit >= 0 && len(rows) > b.Limit {
		rows = rows[:b.Limit]
	}
	snap.Rows = make([][]CellEstimate, len(rows))
	for i, r := range rows {
		snap.Rows[i] = r.cells
	}
	return snap
}
