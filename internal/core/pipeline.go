package core

// Pipelined bootstrap-weight generation. Per-tuple resamples are
// counter-based hashes — a pure function of (seed, table, row index,
// trial) independent of any engine state — so batch k+1's weight
// vectors and subsample membership can be computed on the worker pool
// while the controller runs batch k's serial ranges/snapshot tail. The
// per-table buffer is double-buffered by construction: a fill is
// launched only after the previous fill has been fully consumed
// (launchPrefetch waits on the fill barrier before reusing the arrays),
// and every consumer waits on it and validates the (table, batch)
// identity before reading. Failure-recovery replay restarts the prefix
// at batch 0, so replayUpTo invalidates the buffers up front; because
// the derivation is pure, a discarded prefetch costs nothing but the
// work. That same purity is the fault story: a prefetch lost to a
// worker panic, a pool shutdown, or an injected drop degrades to inline
// weight derivation with byte-identical results.

// weightPrefetch is one table's prefetched weight block for a single
// upcoming mini-batch.
type weightPrefetch struct {
	ts    *tableStream
	batch int
	start int // global row index of the batch's first row
	// sampled[i] reports subsample membership of row start+i; weights
	// holds the per-trial multiplicities of sampled rows, laid out
	// [row][trial] (rows outside the subsample keep stale bytes — they
	// are never read).
	sampled []bool
	weights []uint8
	// fill is the fill barrier: launchPrefetch submits the worker tasks
	// under it, every reader (consumer, relaunch, invalidate, Close)
	// drains it. A fresh group per launch keeps recovered-panic state
	// from leaking across batches.
	fill  *taskGroup
	valid bool
	// bytes is the resource-ledger charge for the two arrays, recorded
	// by the controller at launch time (fills run concurrently with the
	// batch tail, so the ledger never reads the slice headers live).
	bytes int64
}

// drain waits for any in-flight fill and reports whether it completed
// without a worker panic. A panicked fill leaves undefined bytes in the
// arrays, so the buffer is invalidated and consumers fall back to
// inline derivation.
func (pf *weightPrefetch) drain() bool {
	if pf.fill == nil {
		return true
	}
	if panics := pf.fill.wait(); len(panics) > 0 {
		pf.valid = false
		return false
	}
	return true
}

// launchPrefetch schedules batch bi's weight generation on the worker
// pool for every streamed table. It is a no-op until the pool exists
// (serial engines never pay for it) and under the legacy per-batch
// spawn runtime.
func (e *Engine) launchPrefetch(bi int) {
	if e.pool == nil || e.closed || e.opt.PerBatchSpawn || bi >= e.opt.Batches {
		return
	}
	if e.degradeRung >= 2 {
		// Budget rung 2: prefetch stays off for the rest of the query;
		// consumers derive weights inline (byte-identical — resamples are
		// pure counter hashes).
		return
	}
	trials := e.opt.Trials
	for _, ts := range e.tables {
		if bi >= len(ts.batches) || len(ts.batches[bi]) == 0 {
			continue
		}
		pf := e.prefetch[ts.name]
		if pf == nil {
			pf = &weightPrefetch{}
			e.prefetch[ts.name] = pf
		}
		// The previous fill must be fully drained before its arrays are
		// reused (consumers waited on the barrier before reading, and the
		// batch that read them has already been processed by the time the
		// next launch happens).
		pf.drain()
		n := len(ts.batches[bi])
		pf.ts, pf.batch, pf.start, pf.valid = ts, bi, ts.starts[bi], true
		pf.fill = &taskGroup{}
		if cap(pf.sampled) < n {
			pf.sampled = make([]bool, n)
		}
		pf.sampled = pf.sampled[:n]
		if cap(pf.weights) < n*trials {
			pf.weights = make([]uint8, n*trials)
		}
		pf.weights = pf.weights[:n*trials]
		pf.bytes = int64(cap(pf.sampled)) + int64(cap(pf.weights))
		workers := e.pool.size()
		if workers > n {
			workers = n
		}
		size := n / workers
		for w := 0; w < workers; w++ {
			lo := w * size
			hi := lo + size
			if w == workers-1 {
				hi = n
			}
			err := e.pool.submit(w, pf.fill, func(wc *workerCtx) {
				// Fills overlap the controller's batch tail and outlive the
				// batch span, so the span parents to the query span.
				sl := e.workerSlab(wc.id)
				psp := sl.Begin("prefetch", e.spanQuery, bi+1, -1)
				for i := lo; i < hi; i++ {
					s := e.sampled(ts, pf.start+i)
					pf.sampled[i] = s
					if s {
						e.weightsInto(pf.weights[i*trials:i*trials:(i+1)*trials], ts, pf.start+i)
					}
				}
				sl.End(psp)
			})
			if err != nil {
				// Pool stopped mid-launch: the rows this worker would have
				// covered stay stale, so the whole buffer is unusable. The
				// already-submitted tasks still drain through pf.fill.
				pf.valid = false
				break
			}
		}
	}
}

// prefetched returns the prefetch buffer for (ts, bi) once its fill has
// completed, or nil when no matching (or intact) prefetch exists — the
// feed path then derives weights inline, producing byte-identical
// values. An injected prefetch drop discards the buffer here, right at
// the consumption point it is meant to stress.
func (e *Engine) prefetched(ts *tableStream, bi int) *weightPrefetch {
	pf := e.prefetch[ts.name]
	if pf == nil {
		return nil
	}
	if !pf.drain() {
		e.traceFault("prefetch-panic", ts.name, -1, "prefetch fill panicked; deriving weights inline")
		return nil
	}
	if !pf.valid || pf.ts != ts || pf.batch != bi {
		return nil
	}
	if e.opt.Chaos.PrefetchDrop(ts.name, bi) {
		pf.valid = false
		e.traceFault("prefetch-drop", ts.name, -1, "injected prefetch invalidation")
		return nil
	}
	return pf
}

// invalidatePrefetch drains in-flight fills and marks every buffer
// stale. Called before each replay attempt: the replayed prefix
// restarts at batch 0 and must re-pipeline from there.
func (e *Engine) invalidatePrefetch() {
	for _, pf := range e.prefetch {
		pf.drain()
		pf.valid = false
	}
}
