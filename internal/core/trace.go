package core

import (
	"encoding/json"
	"io"
	"sync"
	"time"
)

// Structured G-OLA event tracing. The engine's interesting decisions —
// a partial result escaping its committed variation range (§3.2), the
// first deterministic commit of a range, uncertain tuples flipping to
// certain, a recompute being triggered — used to be visible only
// through an ad-hoc debug printf. The Tracer captures them as typed
// events in a bounded ring so tools (flbench -trace) and tests can
// replay exactly why the engine recomputed or how an uncertain set
// drained, without unbounded memory on long runs.

// Event kinds.
const (
	// EvCommit: a variation range was committed for a parameter
	// (scalar, group key, or set membership) for the first time.
	EvCommit = "commit"
	// EvRangeFailure: a freshly folded estimate escaped its committed
	// variation range, forcing a recompute of dependent blocks.
	EvRangeFailure = "range-failure"
	// EvFlip: cached uncertain tuples resolved during reclassification —
	// folded (matched after all) or dropped (provably excluded).
	EvFlip = "uncertain-flip"
	// EvRecompute: the engine started a failure-recovery replay.
	EvRecompute = "recompute"
	// EvNoCommit: replay kept failing and the engine fell back to
	// uncommitted (exact-to-date) evaluation for the batch.
	EvNoCommit = "no-commit-fallback"
	// EvDetViolation: the invariant audit (Engine.AuditInvariants) found
	// a surviving committed decision contradicted by the current point
	// state. Unlike EvRangeFailure this is not recovered by replay — it
	// means a deterministic decision the engine stood by was wrong.
	EvDetViolation = "det-violation"
	// EvFault: a chaos-injected fault fired (or a real worker panic was
	// contained). Key carries the fault kind, Worker the affected worker.
	EvFault = "fault-injected"
	// EvWorkerPanic: a pool task panicked and was contained; the shard
	// is quarantined and the batch redone serially.
	EvWorkerPanic = "worker-panic"
	// EvSerialRetry: a failed parallel pass was redone serially (Kept
	// carries the attempt number).
	EvSerialRetry = "serial-retry"
	// EvEvict: the uncertain cache exceeded Options.MaxUncertainRows and
	// the oldest cached tuples were force-resolved by point estimate
	// (Folded/Dropped counts, Kept = rows remaining).
	EvEvict = "uncertain-evict"
	// EvDegrade: the MaxMemoryBytes soft budget engaged a degradation
	// rung (Kept = rung: 1 segment cache dropped, 2 prefetch disabled,
	// 3 uncertain eviction; Note describes it). Every rung falls back to
	// a bit-identical path, so answers are unchanged.
	EvDegrade = "mem-degrade"
	// EvInterrupt: a deadline or cancellation stopped the prefix; the
	// last committed snapshot became the bounded-time answer.
	EvInterrupt = "deadline-interrupt"
	// EvCheckpoint / EvResume: engine state was serialized / restored.
	EvCheckpoint = "checkpoint"
	EvResume     = "resume"
	// EvShardRespawn: the coordinator replaced a dead/failed shard with a
	// fresh incarnation and re-dispatched its slice (recovery rung 1;
	// Worker is the shard slot, Kept the ladder attempt).
	EvShardRespawn = "shard-respawn"
	// EvShardRestore: rung 1 exhausted — the whole topology was respawned
	// and the engine restored from its last-commit checkpoint (rung 2).
	EvShardRestore = "shard-restore"
	// EvColPlan: a block's columnar-eligibility verdict, emitted once on
	// the first batch. Note carries the verdict — the engaged flavor
	// ("columnar", "columnar:fused", "columnar:dims") or the
	// disqualifying reason ("rowpath:group:mixed-column", ...).
	EvColPlan = "columnar-plan"
)

// Event is one traced engine decision. Numeric fields are meaningful
// per kind: commit and range-failure carry the committed interval
// [Lo, Hi], the observed Point, and the epsilon Boost in force;
// uncertain-flip carries Folded/Dropped/Kept tuple counts.
type Event struct {
	Seq     uint64  `json:"seq"`
	Ms      float64 `json:"ms"` // since trace start
	Batch   int     `json:"batch"`
	Block   int     `json:"block,omitempty"`
	Kind    string  `json:"kind"`
	Key     string  `json:"key,omitempty"`
	Point   float64 `json:"point,omitempty"`
	Lo      float64 `json:"lo,omitempty"`
	Hi      float64 `json:"hi,omitempty"`
	Boost   float64 `json:"boost,omitempty"`
	Folded  int     `json:"folded,omitempty"`
	Dropped int     `json:"dropped,omitempty"`
	Kept    int     `json:"kept,omitempty"`
	Worker  int     `json:"worker,omitempty"`
	Note    string  `json:"note,omitempty"`
}

// Tracer is a bounded ring of Events. Emission is mutex-protected —
// events fire at block/batch granularity, never per tuple, so the lock
// is far off the fold hot path. When the ring is full the oldest
// events are overwritten; Dropped reports how many.
type Tracer struct {
	mu      sync.Mutex
	ring    []Event
	next    uint64 // total events ever emitted
	batch   int    // current 1-based batch, stamped onto events
	start   time.Time
	started bool
	// mirror, when set, receives a copy of every emitted event after it
	// is stamped (outside the ring lock). The engine uses it to attach
	// ring events to the span timeline as instants (internal/otrace),
	// correlated by Seq/Batch.
	mirror func(Event)
}

// DefaultTraceCapacity bounds a Tracer built with NewTracer(0).
const DefaultTraceCapacity = 4096

// NewTracer builds a tracer retaining the most recent capacity events
// (DefaultTraceCapacity if capacity <= 0).
func NewTracer(capacity int) *Tracer {
	if capacity <= 0 {
		capacity = DefaultTraceCapacity
	}
	return &Tracer{ring: make([]Event, 0, capacity)}
}

// Emit records an event, stamping its sequence number, relative
// timestamp, and current batch. Nil tracers are safe no-ops so call
// sites need no guards.
func (t *Tracer) Emit(ev Event) {
	if t == nil {
		return
	}
	t.mu.Lock()
	if !t.started {
		t.started = true
		t.start = time.Now()
	}
	ev.Seq = t.next
	ev.Ms = float64(time.Since(t.start).Microseconds()) / 1000
	ev.Batch = t.batch
	t.next++
	if len(t.ring) < cap(t.ring) {
		t.ring = append(t.ring, ev)
	} else {
		t.ring[int(ev.Seq)%cap(t.ring)] = ev
	}
	mirror := t.mirror
	t.mu.Unlock()
	if mirror != nil {
		mirror(ev)
	}
}

// setMirror installs the post-emit hook. Call before the engine runs;
// emissions are concurrent with it otherwise.
func (t *Tracer) setMirror(fn func(Event)) {
	if t == nil {
		return
	}
	t.mu.Lock()
	t.mirror = fn
	t.mu.Unlock()
}

// setBatch stamps subsequent events with the given 1-based batch.
func (t *Tracer) setBatch(b int) {
	if t == nil {
		return
	}
	t.mu.Lock()
	t.batch = b
	t.mu.Unlock()
}

// Events returns the retained events, oldest first.
func (t *Tracer) Events() []Event {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]Event, 0, len(t.ring))
	if int(t.next) > cap(t.ring) {
		// Ring has wrapped: oldest retained event is at next % cap.
		at := int(t.next) % cap(t.ring)
		out = append(out, t.ring[at:]...)
		out = append(out, t.ring[:at]...)
	} else {
		out = append(out, t.ring...)
	}
	return out
}

// Dropped reports how many events were overwritten by ring wrap.
func (t *Tracer) Dropped() int {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if int(t.next) <= cap(t.ring) {
		return 0
	}
	return int(t.next) - cap(t.ring)
}

// traceFault emits an EvFault event for an injected or contained fault.
// key identifies the fault class, where the table/site, w the worker
// (-1 when not worker-scoped).
func (e *Engine) traceFault(key, where string, w int, note string) {
	e.trace.Emit(Event{Kind: EvFault, Key: key, Note: where + ": " + note, Worker: w})
}

// WriteJSONL streams the retained events as JSON Lines, oldest first.
func (t *Tracer) WriteJSONL(w io.Writer) error {
	enc := json.NewEncoder(w)
	for _, ev := range t.Events() {
		if err := enc.Encode(ev); err != nil {
			return err
		}
	}
	return nil
}
