package core

import (
	"fmt"
	"runtime"
	"sync"
	"time"

	"fluodb/internal/retry"
	"fluodb/internal/storage"
	"fluodb/internal/types"
)

// The shard coordinator (DESIGN.md §17). With Options.Shards = N ≥ 1
// the engine stops folding mini-batches itself: each (block, batch) is
// split into N contiguous row slices by the deterministic partitioner
// (storage.SliceRanges) and dispatched to N shard engines, whose
// staging deltas merge back in shard order. The engine remains the
// single authority for all cross-batch state — bindings, runner tables,
// the uncertain cache, snapshots, checkpoints — so shards are
// stateless compute and the coordinator's recovery ladder is sound:
//
//	rung 1  re-dispatch the failed slice to a replacement shard
//	        (incarnation+1) under the shared bounded-backoff policy —
//	        "re-step from the shard's last committed batch", which for
//	        stateless shards is exactly redoing the slice;
//	rung 2  respawn the whole topology under a fresh incarnation epoch
//	        and restore the engine from its auto-kept checkpoint of the
//	        last committed batch (engine.go shardRestore);
//	rung 3  surface QueryError{Kind: shard-lost}.
//
// Determinism: merging contiguous slices in slice order reproduces the
// serial group insertion order for any N (a group first appearing in a
// later slice cannot precede one first appearing in an earlier slice),
// and every per-tuple statistic is a counter-based hash of the global
// row index — so the N-shard trajectory matches the single-engine run
// for any N and any per-shard parallelism, pinned by the exact-fixture
// bit-identity matrix in shard_test.go.

// maxShardRedispatch bounds recovery rung 1 (attempts per failed
// slice, each on a fresh incarnation).
const maxShardRedispatch = 3

// maxShardRestores bounds recovery rung 2 (checkpoint restores per
// Step) before the coordinator declares the shard lost.
const maxShardRestores = 2

// shardDown reports a slice whose shard (and every replacement tried by
// rung 1) failed; StepContext escalates it to a checkpoint restore.
type shardDown struct {
	shard int
	batch int
	cause error
}

func (s *shardDown) Error() string {
	return fmt.Sprintf("core: shard %d down at batch %d: %v", s.shard, s.batch, s.cause)
}

func (s *shardDown) Unwrap() error { return s.cause }

// shardCoordinator owns the shard topology of one engine.
type shardCoordinator struct {
	eng     *Engine
	n       int
	shards  []ShardEngine
	incs    []int // next/current incarnation per slot (monotone)
	spawned bool
	// Per-slot progress for Snapshot.Shards and the dashboard: rows
	// dispatched (across all blocks) and completed dispatches.
	rows  []int64
	steps []int64
}

func newShardCoordinator(e *Engine, n int) *shardCoordinator {
	return &shardCoordinator{eng: e, n: n,
		shards: make([]ShardEngine, n), incs: make([]int, n),
		rows: make([]int64, n), steps: make([]int64, n)}
}

// ensure spawns the shard goroutines lazily (first feed) and arms the
// finalizer backstop, mirroring ensurePool.
func (c *shardCoordinator) ensure() {
	if c.spawned || c.eng.closed {
		return
	}
	c.spawned = true
	runtime.SetFinalizer(c.eng, (*Engine).Close)
	for i := range c.shards {
		c.shards[i] = newLocalShard(i, c.incs[i], c.eng.opt.Chaos)
	}
}

// respawn replaces slot i with a fresh incarnation (rung 1). Close is
// safe whether the old shard died or merely failed.
func (c *shardCoordinator) respawn(i int) {
	if c.shards[i] != nil {
		c.shards[i].Close()
	}
	c.incs[i]++
	c.shards[i] = newLocalShard(i, c.incs[i], c.eng.opt.Chaos)
	c.eng.metrics.ShardRespawns++
}

// respawnAll replaces the whole topology under a fresh incarnation
// epoch (rung 2): every slot advances, so the restored replay draws
// fresh chaos variates at every site.
func (c *shardCoordinator) respawnAll() {
	for i := range c.shards {
		if c.shards[i] != nil {
			c.shards[i].Close()
		}
		c.incs[i]++
		c.shards[i] = newLocalShard(i, c.incs[i], c.eng.opt.Chaos)
	}
}

// stop shuts every shard down (engine Close / finalizer path).
func (c *shardCoordinator) stop() {
	for i, s := range c.shards {
		if s != nil {
			s.Close()
			c.shards[i] = nil
		}
	}
	c.spawned = false
}

// feedBatch dispatches one (block, batch) across the shard topology and
// merges the deltas, driving recovery rung 1 for any failed slice. A
// returned *shardDown means rung 1 is exhausted for that slice and
// nothing was merged — the runner's state is exactly as before the
// call, so a checkpoint restore can redo the whole batch.
func (c *shardCoordinator) feedBatch(r *blockRunner, rows []types.Row, baseIdx int, ts *tableStream, pf *weightPrefetch) error {
	e := c.eng
	if len(rows) == 0 {
		return nil
	}
	// Plan/encoding acquisition stays on the controller so shards share
	// the columnar state read-only, exactly like pool workers.
	r.ensureColPlan()
	r.revalidateColPlan()
	c.ensure()

	tasks := make([]*ShardTask, c.n)
	deltas := make([]*ShardDelta, c.n)
	errs := make([]error, c.n)
	var wg sync.WaitGroup
	for i, rg := range storage.SliceRanges(len(rows), c.n) {
		tasks[i] = &ShardTask{r: r, rows: rows[rg.Lo:rg.Hi], baseIdx: baseIdx + rg.Lo,
			ts: ts, pf: pf, workers: e.opt.Parallelism, thr: e.opt.ParallelThreshold}
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			deltas[i], errs[i] = c.shards[i].Step(tasks[i])
		}(i)
	}
	wg.Wait()

	// Rung 1: each failed slice is redone on replacement shards with
	// fresh incarnations, under the shared bounded-backoff policy. The
	// jitter site is the slice coordinate, so concurrent ladders (and
	// reruns of the same schedule) sleep deterministically.
	pol := retry.Policy{Attempts: maxShardRedispatch, Base: time.Millisecond,
		Cap: 8 * time.Millisecond, Seed: e.opt.Seed}
	for i := range errs {
		if errs[i] == nil {
			continue
		}
		e.metrics.ShardKills++
		cause := errs[i]
		site := uint64(baseIdx)<<8 ^ uint64(i)
		rerr := pol.Do(site, func(attempt int) error {
			c.respawn(i)
			e.trace.Emit(Event{Kind: EvShardRespawn, Key: ts.name, Worker: i, Kept: attempt,
				Note: fmt.Sprintf("re-dispatching rows [%d,+%d) to incarnation %d",
					tasks[i].baseIdx, len(tasks[i].rows), c.incs[i])})
			d, err := c.shards[i].Step(tasks[i])
			if err != nil {
				cause = err
				return err
			}
			deltas[i], errs[i] = d, nil
			return nil
		})
		if rerr != nil {
			return &shardDown{shard: i, batch: e.batch, cause: cause}
		}
	}

	// Merge in shard order: contiguous slices in slice order reproduce
	// the serial group insertion order (and, with the per-shard
	// sub-slice merge inside Step, the worker-pool order too).
	for i, d := range deltas {
		if d == nil {
			continue
		}
		r.tab.merge(d.tab)
		r.uncertain = append(r.uncertain, d.uncertain...)
		r.arena.adopt(&d.arena)
		e.metrics.DeterministicFolds += d.folds
		r.acc.merge(&d.acc)
		c.rows[i] += int64(len(tasks[i].rows))
		c.steps[i]++
	}
	r.sampledIdxValid = false
	return nil
}

// progress reports per-slot shard state for Snapshot.Shards.
func (c *shardCoordinator) progress() []ShardStat {
	out := make([]ShardStat, c.n)
	for i := range out {
		out[i] = ShardStat{ID: i, Incarnation: c.incs[i],
			Rows: c.rows[i], Steps: c.steps[i]}
	}
	return out
}
