package core

import (
	"testing"
	"time"

	"fluodb/internal/plan"
)

// convergeEnv runs a grouped aggregate to completion, collecting every
// snapshot.
func convergeEnv(t *testing.T, batches int) (*Engine, []*Snapshot) {
	t.Helper()
	cat := foldCatalog(20000, 71)
	q, err := plan.Compile(`SELECT a, SUM(x), AVG(x) FROM facts GROUP BY a`, cat)
	if err != nil {
		t.Fatal(err)
	}
	eng, err := New(q, cat, Options{Batches: batches, Trials: 50, Seed: 13, Parallelism: 1})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(eng.Close)
	var snaps []*Snapshot
	for !eng.Done() {
		s, err := eng.Step()
		if err != nil {
			t.Fatal(err)
		}
		snaps = append(snaps, s)
	}
	return eng, snaps
}

func TestConvergenceSeriesRecorded(t *testing.T) {
	eng, snaps := convergeEnv(t, 8)
	series := eng.ConvergenceSeries()
	if len(series) != 8 {
		t.Fatalf("series length %d, want 8", len(series))
	}
	for i, p := range series {
		if p.Batch != i+1 {
			t.Fatalf("series[%d].Batch = %d", i, p.Batch)
		}
		if p.HalfWidthP50 > p.HalfWidthP90 || p.HalfWidthP90 > p.HalfWidthMax {
			t.Fatalf("quantiles out of order at batch %d: %+v", p.Batch, p)
		}
		if p.Rows <= 0 || p.Fraction <= 0 {
			t.Fatalf("progress missing at batch %d: %+v", p.Batch, p)
		}
		if !p.HasCI {
			continue
		}
		if len(p.PerAgg) == 0 {
			t.Fatalf("CI present but no per-aggregate quantiles at batch %d", p.Batch)
		}
		// The key column "a" carries no CI and must not be sampled.
		for _, a := range p.PerAgg {
			if a.Column == "a" {
				t.Fatalf("key column sampled as aggregate: %+v", p.PerAgg)
			}
		}
	}
	// Early batches must carry CIs (the run is approximate there).
	if !series[0].HasCI || !series[3].HasCI {
		t.Fatalf("early batches missing CI samples: %+v", series[:4])
	}
	// Snapshots carry their batch's point.
	for i, s := range snaps {
		if s.Convergence.Batch != i+1 {
			t.Fatalf("snapshot %d carries convergence batch %d", i+1, s.Convergence.Batch)
		}
	}
	// Half-widths shrink as the sample grows.
	last := series[len(series)-1]
	if last.Fraction < 0.999 {
		t.Fatalf("final fraction %v", last.Fraction)
	}
	if last.HalfWidthMax > series[0].HalfWidthMax {
		t.Fatalf("half-width grew over the run: first %v, last %v",
			series[0].HalfWidthMax, last.HalfWidthMax)
	}
}

func TestConvergenceETAMonotone(t *testing.T) {
	_, snaps := convergeEnv(t, 10)
	// A mid-run snapshot: CIs are meaningful and the run is not done.
	s := snaps[5]
	c := s.Convergence
	if !c.HasCI {
		t.Fatalf("no CI at batch 6: %+v", c)
	}
	if c.FitC <= 0 {
		t.Fatalf("fit not converged by batch 6: %+v", c)
	}
	if c.RowsPerSec <= 0 {
		t.Fatalf("no throughput estimate: %+v", c)
	}
	// ETA must be monotone non-increasing in eps, and 0 once the target
	// is already met.
	prev := time.Duration(-1)
	for _, eps := range []float64{1e-6, 1e-5, 1e-4, 1e-3, 1e-2, 1e-1, 1, 10} {
		eta, ok := s.ETA(eps)
		if !ok {
			t.Fatalf("ETA(%v) not predictable: %+v", eps, c)
		}
		if eta < 0 {
			t.Fatalf("negative ETA(%v) = %v", eps, eta)
		}
		if prev >= 0 && eta > prev {
			t.Fatalf("ETA not monotone: ETA(%v) = %v > previous %v", eps, eta, prev)
		}
		prev = eta
		if c.HalfWidthMax <= eps && eta != 0 {
			t.Fatalf("target met (hw %v <= eps %v) but ETA = %v", c.HalfWidthMax, eps, eta)
		}
	}
	if _, ok := s.ETA(0); ok {
		t.Fatal("ETA(0) should not be predictable")
	}
	if _, ok := s.ETA(-1); ok {
		t.Fatal("ETA(-1) should not be predictable")
	}
}

// TestConvergenceETAConsistentWithTrajectory is the acceptance check:
// the ETA predictor must be monotone-consistent with the audited
// trajectory — if at batch b the model predicts the run reaches eps
// only after more rows, then the achieved half-width at b must indeed
// still exceed eps; and once a batch achieves eps, ETA(eps) = 0 there.
func TestConvergenceETAConsistentWithTrajectory(t *testing.T) {
	_, snaps := convergeEnv(t, 12)
	for _, s := range snaps {
		c := s.Convergence
		if !c.HasCI {
			continue
		}
		for _, eps := range []float64{1e-3, 1e-2, 1e-1} {
			eta, ok := s.ETA(eps)
			if !ok {
				continue
			}
			achieved := c.HalfWidthMax <= eps
			if achieved && eta != 0 {
				t.Fatalf("batch %d achieved eps=%v (hw %v) but ETA=%v",
					c.Batch, eps, c.HalfWidthMax, eta)
			}
			if !achieved && eta == 0 && c.Fraction < 0.999 {
				// Not yet achieved mid-run: a zero ETA is only
				// consistent if the model says the needed rows are
				// already processed — tolerated only when hw is within
				// 2x of the target (fit noise), never when far off.
				if c.HalfWidthMax > 2*eps {
					t.Fatalf("batch %d hw %v >> eps %v yet ETA=0",
						c.Batch, c.HalfWidthMax, eps)
				}
			}
		}
	}
	// The audited trajectory ends exact: the engine's invariant audit
	// must be clean, anchoring the half-widths the ETA reasons about.
	eng, _ := convergeEnv(t, 6)
	if v := eng.AuditInvariants(); len(v) != 0 {
		t.Fatalf("invariant violations: %v", v)
	}
}

func TestConvergenceChurnAccounting(t *testing.T) {
	// Subquery workload keeps an uncertain cache churning.
	cat := foldCatalog(20000, 71)
	q, err := plan.Compile(
		`SELECT COUNT(*) FROM facts WHERE x > (SELECT AVG(x) FROM facts)`, cat)
	if err != nil {
		t.Fatal(err)
	}
	eng, err := New(q, cat, Options{Batches: 8, Trials: 50, Seed: 17, Parallelism: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer eng.Close()
	prevSize := 0
	for !eng.Done() {
		s, err := eng.Step()
		if err != nil {
			t.Fatal(err)
		}
		c := s.Convergence
		if c.UncertainIn < 0 || c.UncertainOut < 0 {
			t.Fatalf("negative churn: %+v", c)
		}
		// Balance identity: size' = size + in - out. In is derived from
		// the delta, so the identity must hold exactly whenever In > 0.
		if c.UncertainIn > 0 {
			if got := int64(prevSize) + c.UncertainIn - c.UncertainOut; got != int64(c.Uncertain) {
				t.Fatalf("churn imbalance at batch %d: %d + %d - %d = %d, size %d",
					c.Batch, prevSize, c.UncertainIn, c.UncertainOut, got, c.Uncertain)
			}
		}
		prevSize = c.Uncertain
	}
	anyChurn := false
	for _, p := range eng.ConvergenceSeries() {
		if p.UncertainIn > 0 || p.UncertainOut > 0 {
			anyChurn = true
		}
	}
	if !anyChurn {
		t.Fatal("subquery run recorded no uncertain churn")
	}
}

func TestConvergenceSeriesDecimation(t *testing.T) {
	var cs convergeState
	for i := 1; i <= 3*maxConvergencePoints; i++ {
		cs.series = append(cs.series, ConvergencePoint{Batch: i})
		if len(cs.series) > maxConvergencePoints {
			keep := cs.series[:0]
			for j := 0; j < len(cs.series); j += 2 {
				keep = append(keep, cs.series[j])
			}
			cs.series = keep
		}
	}
	if len(cs.series) > maxConvergencePoints {
		t.Fatalf("series unbounded: %d", len(cs.series))
	}
	// Batches must stay strictly increasing after decimation.
	for i := 1; i < len(cs.series); i++ {
		if cs.series[i].Batch <= cs.series[i-1].Batch {
			t.Fatalf("series disordered at %d", i)
		}
	}
}
