package core

import (
	"context"
	"errors"
	"testing"

	"fluodb/internal/chaos"
	"fluodb/internal/plan"
)

// The chaos SQL exercises every containment surface at once: a scalar
// subquery parameter keeps a live uncertain cache (reclassification +
// bindings), grouped SUM/AVG/COUNT keeps the tables banked, and the
// WHERE predicate keeps classification meaningful.
const chaosSQL = `SELECT a, COUNT(x), SUM(x), AVG(x) FROM facts
	WHERE x < (SELECT 0.8 * AVG(x) FROM facts) GROUP BY a`

func chaosOptions(inj *chaos.Injector) Options {
	return Options{
		Batches: 6, Trials: 32, Seed: 411,
		Parallelism: 4, ParallelThreshold: 128,
		Chaos: inj,
	}
}

// TestChaosPanicContainment: every injected worker panic is contained
// and redone serially, and the run stays bit-identical to a fault-free
// run of the same seed — the core tentpole guarantee.
func TestChaosPanicContainment(t *testing.T) {
	cat := determinismCatalog(6*2048, 311)
	clean := runSnapshots(t, cat, chaosSQL, chaosOptions(nil))
	inj := chaos.New(chaos.Config{Seed: 7, PanicProb: 0.3})
	faulty := runSnapshots(t, cat, chaosSQL, chaosOptions(inj))
	if inj.Counts()[chaos.KindPanic] == 0 {
		t.Fatal("injector never fired a panic; test exercised nothing")
	}
	compareSnapshots(t, "panic-chaos", clean, faulty)
}

// TestChaosAllFaultKinds layers panics, stragglers, shard corruption
// and prefetch drops in one run and still demands bit-identity.
func TestChaosAllFaultKinds(t *testing.T) {
	cat := determinismCatalog(6*2048, 313)
	clean := runSnapshots(t, cat, chaosSQL, chaosOptions(nil))
	inj := chaos.New(chaos.Config{
		Seed: 99, PanicProb: 0.15, StragglerProb: 0.2,
		CorruptProb: 0.15, PrefetchDropProb: 0.3,
	})
	faulty := runSnapshots(t, cat, chaosSQL, chaosOptions(inj))
	if inj.Fired() == 0 {
		t.Fatal("no faults fired")
	}
	compareSnapshots(t, "mixed-chaos", clean, faulty)
}

// TestChaosSegSealDrop injects columnar segment-cache drops on the
// incremental seal seam: the sealed segments are released mid-query,
// the plan revalidation re-encodes them (recompiling the kernels
// against the fresh encoding), and the run stays bit-identical to a
// fault-free run with the columnar path still engaged at the end.
func TestChaosSegSealDrop(t *testing.T) {
	cat := columnarCatalog(6*2048, 319)
	sql := `SELECT a, COUNT(x), SUM(x), AVG(x) FROM facts
		WHERE x < (SELECT 0.8 * AVG(x) FROM facts) GROUP BY a`
	o := Options{Batches: 6, Trials: 32, Seed: 411,
		Parallelism: 2, ParallelThreshold: 128}
	clean := runSnapshots(t, cat, sql, o)

	inj := chaos.New(chaos.Config{Seed: 5, SegSealDropProb: 0.5})
	tr := NewTracer(0)
	of := o
	of.Chaos = inj
	of.Tracer = tr
	q, err := plan.Compile(sql, cat)
	if err != nil {
		t.Fatal(err)
	}
	eng, err := New(q, cat, of)
	if err != nil {
		t.Fatal(err)
	}
	defer eng.Close()
	var faulty []*Snapshot
	for !eng.Done() {
		s, err := eng.Step()
		if err != nil {
			t.Fatal(err)
		}
		faulty = append(faulty, s)
	}
	if inj.Counts()[chaos.KindSegSeal] == 0 {
		t.Fatal("injector never dropped a segment cache; test exercised nothing")
	}
	compareSnapshots(t, "segseal-chaos", clean, faulty)
	r := eng.runners[len(eng.runners)-1]
	if !r.colPl.ok || r.colPl.ct == nil {
		t.Fatal("columnar plan did not re-engage after a segment-cache drop")
	}
	segFaults, colPlans := 0, 0
	for _, ev := range tr.Events() {
		if ev.Kind == EvFault && ev.Key == "segseal" {
			segFaults++
		}
		if ev.Kind == EvColPlan && ev.Block == r.b.ID && ev.Note == "columnar:fused" {
			colPlans++
		}
	}
	if colPlans != 1 {
		t.Fatalf("EvColPlan(columnar:fused) events for root = %d, want 1", colPlans)
	}
	if segFaults == 0 {
		t.Fatal("segseal drops fired but no EvFault(segseal) events traced")
	}
}

// TestPoolSubmitAfterStop pins the satellite fix: submission to a
// stopped pool returns the typed sentinel instead of panicking on a
// closed channel.
func TestPoolSubmitAfterStop(t *testing.T) {
	p := newWorkerPool(2)
	g := &taskGroup{}
	if err := p.submit(0, g, func(*workerCtx) {}); err != nil {
		t.Fatalf("submit before stop: %v", err)
	}
	if panics := g.wait(); panics != nil {
		t.Fatalf("unexpected panics: %v", panics)
	}
	p.stop()
	p.stop() // idempotent
	err := p.submit(0, g, func(*workerCtx) {})
	var qe *QueryError
	if !errors.As(err, &qe) || qe.Kind != ErrKindPoolStopped {
		t.Fatalf("submit after stop: got %v, want ErrKindPoolStopped", err)
	}
}

// TestWorkerPanicReleasesBarrier checks containment mechanics directly:
// a panicking task must still release the barrier and surface its
// panic value (a bare WaitGroup would deadlock here).
func TestWorkerPanicReleasesBarrier(t *testing.T) {
	p := newWorkerPool(2)
	defer p.stop()
	g := &taskGroup{}
	if err := p.submit(0, g, func(*workerCtx) { panic("boom") }); err != nil {
		t.Fatal(err)
	}
	if err := p.submit(1, g, func(*workerCtx) {}); err != nil {
		t.Fatal(err)
	}
	panics := g.wait()
	if len(panics) != 1 {
		t.Fatalf("got %d panics, want 1", len(panics))
	}
	if panics[0].worker != 0 || panics[0].val != "boom" {
		t.Fatalf("panic record = %+v", panics[0])
	}
	if len(panics[0].stack) == 0 {
		t.Fatal("panic stack not captured")
	}
	// The pool must stay serviceable for the next barrier.
	g2 := &taskGroup{}
	ran := false
	if err := p.submit(0, g2, func(*workerCtx) { ran = true }); err != nil {
		t.Fatal(err)
	}
	if panics := g2.wait(); panics != nil || !ran {
		t.Fatalf("pool dead after contained panic (ran=%v, panics=%v)", ran, panics)
	}
}

// TestOptionsValidate pins the satellite: explicitly negative or
// impossible option values are rejected with a typed error, while zero
// sentinels still resolve to defaults.
func TestOptionsValidate(t *testing.T) {
	cat := determinismCatalog(1024, 1)
	q, err := plan.Compile(`SELECT SUM(x) FROM facts`, cat)
	if err != nil {
		t.Fatal(err)
	}
	bad := []Options{
		{Parallelism: -2},
		{Batches: -1},
		{Trials: -5},
		{ParallelThreshold: -1},
		{Confidence: 1.5},
		{Confidence: -0.5},
		{EpsilonSigma: -1},
		{MinGroupSupport: -3},
		{MaxUncertainRows: -1},
	}
	for _, o := range bad {
		if _, err := New(q, cat, o); err == nil {
			t.Fatalf("Options %+v accepted, want invalid-options error", o)
		} else {
			var qe *QueryError
			if !errors.As(err, &qe) || qe.Kind != ErrKindInvalidOptions {
				t.Fatalf("Options %+v: got %v, want ErrKindInvalidOptions", o, err)
			}
		}
	}
	// Zero values remain "use defaults".
	eng, err := New(q, cat, Options{})
	if err != nil {
		t.Fatalf("zero options rejected: %v", err)
	}
	eng.Close()
}

// TestDeadlineReturnsBoundedAnswer: a cancelled context stops the
// prefix at a batch boundary and hands back the last committed snapshot
// as a bounded-time answer; a fresh context resumes the same engine and
// the completed run is bit-identical to an uninterrupted one.
func TestDeadlineReturnsBoundedAnswer(t *testing.T) {
	cat := determinismCatalog(6*2048, 317)
	clean := runSnapshots(t, cat, chaosSQL, chaosOptions(nil))

	q, err := plan.Compile(chaosSQL, cat)
	if err != nil {
		t.Fatal(err)
	}
	eng, err := New(q, cat, chaosOptions(nil))
	if err != nil {
		t.Fatal(err)
	}
	defer eng.Close()
	var snaps []*Snapshot
	for i := 0; i < 2; i++ {
		s, err := eng.Step()
		if err != nil {
			t.Fatal(err)
		}
		snaps = append(snaps, s)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	bounded, err := eng.StepContext(ctx)
	if !IsInterrupted(err) {
		t.Fatalf("cancelled StepContext: got %v, want interrupted QueryError", err)
	}
	if bounded == nil || !bounded.Interrupted || bounded.InterruptReason == "" {
		t.Fatalf("bounded snapshot = %+v, want Interrupted with reason", bounded)
	}
	// The bounded answer is the last committed snapshot (same rows, CIs
	// intact).
	compareSnapshots(t, "bounded-answer", []*Snapshot{snaps[1]}, []*Snapshot{bounded})
	// The engine is not poisoned: resume with a live context.
	for !eng.Done() {
		s, err := eng.StepContext(context.Background())
		if err != nil {
			t.Fatal(err)
		}
		snaps = append(snaps, s)
	}
	compareSnapshots(t, "post-interrupt-resume", clean, snaps)

	// RunContext converts interruption into (snapshot, nil).
	eng2, err := New(q, cat, chaosOptions(nil))
	if err != nil {
		t.Fatal(err)
	}
	defer eng2.Close()
	if _, err := eng2.Step(); err != nil {
		t.Fatal(err)
	}
	ctx2, cancel2 := context.WithCancel(context.Background())
	cancel2()
	last, err := eng2.RunContext(ctx2, nil)
	if err != nil {
		t.Fatalf("RunContext under cancel: %v", err)
	}
	if last == nil || !last.Interrupted {
		t.Fatalf("RunContext bounded answer = %+v", last)
	}
}

// TestUncertainEviction pins the MaxUncertainRows budget: the cache
// stays bounded, evictions are counted and surfaced as Degraded, and
// the engine still completes with a plausible answer.
func TestUncertainEviction(t *testing.T) {
	cat := determinismCatalog(6*2048, 331)
	q, err := plan.Compile(chaosSQL, cat)
	if err != nil {
		t.Fatal(err)
	}
	const budget = 64
	eng, err := New(q, cat, Options{
		Batches: 6, Trials: 32, Seed: 411,
		Parallelism: 2, ParallelThreshold: 128,
		MaxUncertainRows: budget,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer eng.Close()
	var last *Snapshot
	for !eng.Done() {
		s, err := eng.Step()
		if err != nil {
			t.Fatal(err)
		}
		if got := eng.UncertainRows(); got > budget {
			t.Fatalf("uncertain cache %d exceeds budget %d after batch %d", got, budget, s.Batch)
		}
		last = s
	}
	m := eng.Metrics()
	if m.UncertainEvictions == 0 {
		t.Skip("workload kept uncertain cache under budget; eviction path not reached")
	}
	if last.Degraded == "" {
		t.Fatal("snapshot not marked Degraded despite evictions")
	}
	if len(last.Rows) == 0 {
		t.Fatal("degraded run produced no rows")
	}
	found := false
	for _, ev := range eng.trace.Events() {
		if ev.Kind == EvEvict {
			found = true
		}
	}
	_ = found // trace is nil-tracer by default; eviction metric is the contract
}

// TestUncertainEvictionTraced re-runs the eviction scenario with a
// tracer and checks the EvEvict events carry fold/drop counts.
func TestUncertainEvictionTraced(t *testing.T) {
	cat := determinismCatalog(6*2048, 331)
	q, err := plan.Compile(chaosSQL, cat)
	if err != nil {
		t.Fatal(err)
	}
	tr := NewTracer(0)
	eng, err := New(q, cat, Options{
		Batches: 6, Trials: 32, Seed: 411,
		Parallelism: 1, MaxUncertainRows: 32, Tracer: tr,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer eng.Close()
	for !eng.Done() {
		if _, err := eng.Step(); err != nil {
			t.Fatal(err)
		}
	}
	if eng.Metrics().UncertainEvictions == 0 {
		t.Skip("no evictions under this workload")
	}
	evicts := 0
	for _, ev := range tr.Events() {
		if ev.Kind == EvEvict {
			evicts++
			if ev.Folded+ev.Dropped == 0 {
				t.Fatalf("EvEvict with zero resolved rows: %+v", ev)
			}
		}
	}
	if evicts == 0 {
		t.Fatal("evictions counted but no EvEvict events traced")
	}
}

// TestChaosTraceEvents checks injected faults surface as EvFault /
// EvWorkerPanic / EvSerialRetry events.
func TestChaosTraceEvents(t *testing.T) {
	cat := determinismCatalog(6*2048, 311)
	tr := NewTracer(0)
	o := chaosOptions(chaos.New(chaos.Config{Seed: 7, PanicProb: 0.3}))
	o.Tracer = tr
	runSnapshots(t, cat, chaosSQL, o)
	var faults, contained, retries int
	for _, ev := range tr.Events() {
		switch ev.Kind {
		case EvFault:
			faults++
		case EvWorkerPanic:
			contained++
		case EvSerialRetry:
			retries++
		}
	}
	if faults == 0 || contained == 0 || retries == 0 {
		t.Fatalf("trace incomplete: %d faults, %d contained panics, %d serial retries",
			faults, contained, retries)
	}
}
