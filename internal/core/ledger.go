package core

import (
	"unsafe"

	"fluodb/internal/resource"
)

// Resource ledger glue (DESIGN.md §15). The engine charges bytes at its
// existing allocation seams — weight-arena chunk acquisition
// (arena.go), group-table bank/slot growth (table.go), uncertain-cache
// and prefetch/scratch array growth — into worker-local plain int64
// counters that already travel through the batch barriers (merge/adopt
// transfer them with the state they describe). Once per committed
// mini-batch the controller folds those counters into a
// resource.Ledger, reads the runtime/metrics GC sampler, and stamps
// Snapshot.Resources. The per-tuple hot path is untouched: no atomics,
// no per-tuple arithmetic, 0 allocs/tuple with the ledger on.
//
// On top of the ledger sits the soft budget Options.MaxMemoryBytes with
// a three-rung degradation ladder, evaluated at the same deterministic
// pre-commit point as the uncertain-cache cap (end of processBatch, so
// failure-recovery replay re-degrades identically). Every rung falls
// back to a path that is bit-identical by construction:
//
//	rung 1 — drop the columnar segment cache: colFeed reports
//	         ineligibility and the row loop takes over (the PR 6
//	         equivalence gates pin the two paths bit-identical);
//	rung 2 — disable weight prefetch: consumers derive weights inline,
//	         byte-identical because resamples are pure counter hashes;
//	rung 3 — run the existing MaxUncertainRows eviction path against
//	         the remaining overage (reason "budget" instead of "cap").
//
// Rungs latch for the rest of the query: un-degrading mid-run would
// re-grow the freed pools and oscillate around the budget.

// ResourceUsage is one mini-batch's memory observation: per-pool byte
// residency, GC telemetry attributed to the batch, and budget state.
// It rides on Snapshot.Resources.
type ResourceUsage = resource.Usage

// uncertainRowBytes is the in-cache header cost of one cached uncertain
// tuple (the retained weight bytes are charged to the arena, the joined
// row to its table's batch storage).
const uncertainRowBytes = int64(unsafe.Sizeof(uncertainRow{}))

// memBytes is the colScratch resource charge: every reusable vector and
// memo array the sweeper pins between batches.
func (cs *colScratch) memBytes() int64 {
	if cs == nil {
		return 0
	}
	return int64(cap(cs.tri)) + int64(cap(cs.triU)) +
		4*int64(cap(cs.sel)) + 4*int64(cap(cs.selU)) +
		8*int64(cap(cs.wf)) + int64(cap(cs.wbuf)) +
		8*int64(cap(cs.memoKeys)) + 4*int64(cap(cs.memoSlots)) +
		8*int64(cap(cs.memoEntries)) +
		4*int64(cap(cs.memoOff)) + 4*int64(cap(cs.memoCnt)) +
		8*int64(cap(cs.entArena)) +
		8*int64(cap(cs.jKeys)) + 4*int64(cap(cs.jSlots)) +
		4*int64(cap(cs.jOff)) + 4*int64(cap(cs.jCnt)) +
		24*int64(cap(cs.jRows))
}

// collectResidency folds every charge counter into the ledger. Runs on
// the controller at mini-batch boundaries; worker shards are parked
// then (only prefetch fills may be in flight, and those touch nothing
// read here — prefetch buffer sizes are recorded at launch time).
func (e *Engine) collectResidency() {
	var tables, arenas, uncertain, scratch int64
	for _, r := range e.runners {
		tables += r.tab.bytes
		arenas += r.arena.bytes
		uncertain += uncertainRowBytes * int64(cap(r.uncertain))
		scratch += r.cs.memBytes()
		scratch += int64(cap(r.wbuf)) + int64(cap(r.reclassBuf)) + 8*int64(cap(r.sampledIdx))
	}
	if e.pool != nil {
		for _, wc := range e.pool.ctxs {
			scratch += int64(cap(wc.wbuf))
			for _, sh := range wc.shards {
				if sh == nil {
					continue
				}
				tables += sh.tab.bytes
				arenas += sh.arena.bytes
				uncertain += uncertainRowBytes * int64(cap(sh.uncertain))
				scratch += sh.cs.memBytes()
			}
		}
	}
	var prefetch int64
	for _, pf := range e.prefetch {
		prefetch += pf.bytes
	}
	var segs int64
	for _, r := range e.runners {
		if t, ok := e.cat.Get(r.b.Input.Fact); ok {
			segs += t.ColumnarBytes()
		}
	}
	e.ledger.Set(resource.GroupTables, tables)
	e.ledger.Set(resource.WeightArenas, arenas)
	e.ledger.Set(resource.UncertainCache, uncertain)
	e.ledger.Set(resource.ColumnarScratch, scratch)
	e.ledger.Set(resource.Prefetch, prefetch)
	e.ledger.Set(resource.SegmentCache, segs)
	e.ledger.Set(resource.Checkpoint, e.ckBytes)
}

// observeResources commits one mini-batch's memory observation: collect
// residency, advance peaks, attribute GC deltas, stamp snap.Resources
// and the degradation reason, and mirror the headline numbers into
// Metrics.
func (e *Engine) observeResources(snap *Snapshot) {
	e.collectResidency()
	e.ledger.Observe()
	u := e.ledger.Snapshot()
	if e.gcSampler != nil {
		now := e.gcSampler.Read()
		d := now.Sub(e.gcPrev)
		e.gcPrev = now
		u.HeapLiveBytes = d.HeapLiveBytes
		u.HeapGoalBytes = d.HeapGoalBytes
		u.GCPauseNS = d.PauseTotalNS
		u.GCCycles = d.Cycles
		u.AllocBytes = d.AllocBytes
		e.metrics.GCPauseNS += d.PauseTotalNS
		e.metrics.GCCycles += d.Cycles
	}
	u.BudgetBytes = e.opt.MaxMemoryBytes
	u.DegradeRung = e.degradeRung
	u.BudgetEvictions = e.metrics.BudgetEvictions
	e.lastUsage = u
	e.metrics.MemBytes = u.TotalBytes
	e.metrics.MemPeakBytes = u.PeakBytes
	e.metrics.DegradeRung = e.degradeRung
	snap.Resources = u
}

// Degradation reason strings, ordered by rung; combined ladder states
// concatenate ("budget:segcache+prefetch+evict"), and cap-driven
// evictions append their own tag so Snapshot.Degraded names every cause.
const (
	degradeSegCache = "segcache"
	degradePrefetch = "prefetch"
	degradeEvict    = "evict"
)

// updateDegradeReason rebuilds the cached Snapshot.Degraded string.
// Called only when degradation state changes, so steady-state snapshots
// assign a prebuilt string (no per-batch allocation).
func (e *Engine) updateDegradeReason() {
	budget := ""
	if e.degradeRung >= 1 {
		budget = degradeSegCache
	}
	if e.degradeRung >= 2 {
		budget += "+" + degradePrefetch
	}
	if e.degradeRung >= 3 {
		budget += "+" + degradeEvict
	}
	reason := ""
	if budget != "" {
		reason = "budget:" + budget
	}
	if e.metrics.UncertainEvictions > e.metrics.BudgetEvictions {
		if reason != "" {
			reason += ","
		}
		reason += "cap:" + degradeEvict
	}
	e.degradeReason = reason
}

// enforceMemoryBudget applies Options.MaxMemoryBytes at the
// deterministic pre-commit point (end of processBatch, next to the
// uncertain-cache cap): while the ledger total exceeds the soft budget,
// engage the next rung of the degradation ladder. Residency is
// re-collected between rungs so a rung that frees enough memory stops
// the ladder.
func (e *Engine) enforceMemoryBudget() {
	budget := e.opt.MaxMemoryBytes
	if budget <= 0 {
		return
	}
	e.collectResidency()
	if e.ledger.Total() <= budget {
		return
	}
	if e.degradeRung < 1 {
		e.setDegradeRung(1)
		e.dropSegmentCache()
		e.collectResidency()
		if e.ledger.Total() <= budget {
			return
		}
	}
	if e.degradeRung < 2 {
		e.setDegradeRung(2)
		e.dropPrefetch()
		e.collectResidency()
		if e.ledger.Total() <= budget {
			return
		}
	}
	if e.degradeRung < 3 {
		e.setDegradeRung(3)
	}
	// Rung 3: shed uncertain-cache residency through the existing
	// eviction path. Evict enough of the oldest cached tuples to cover
	// the overage (at least one whole cache's worth of headway is not
	// forced — eviction frees header+arena bytes gradually and the
	// ladder re-evaluates every batch).
	over := e.ledger.Total() - budget
	perRow := uncertainRowBytes
	if perRow < 1 {
		perRow = 1
	}
	evict := int(over / perRow)
	if evict < 1 {
		evict = 1
	}
	e.evictUncertain(evict, "budget")
}

// setDegradeRung latches a new (higher) rung, emits the trace event and
// rebuilds the degradation reason.
func (e *Engine) setDegradeRung(rung int) {
	if rung <= e.degradeRung {
		return
	}
	e.degradeRung = rung
	e.updateDegradeReason()
	note := ""
	switch rung {
	case 1:
		note = "budget rung 1: columnar segment cache dropped (row path takes over)"
	case 2:
		note = "budget rung 2: weight prefetch disabled (inline derivation)"
	case 3:
		note = "budget rung 3: uncertain-cache eviction engaged"
	}
	e.trace.Emit(Event{Kind: EvDegrade, Kept: rung, Note: note})
}

// dropSegmentCache is rung 1: disable every block's columnar plan (the
// row loop is bit-identical by the PR 6 equivalence gates) and release
// the storage-level segment cache. The plan's bank-stream aliases stay
// installed on the live tables — the row path writes every cell, so
// aliased reads remain consistent.
func (e *Engine) dropSegmentCache() {
	for _, r := range e.runners {
		if r.colPl != nil && r.colPl.ok {
			r.colPl.ok = false
			r.colPl.ct = nil
		}
		if t, ok := e.cat.Get(r.b.Input.Fact); ok {
			t.DropColumnar()
		}
	}
}

// dropPrefetch is rung 2: drain in-flight fills, discard the buffers
// and keep launchPrefetch off for the rest of the query (its guard
// checks degradeRung). Consumers fall back to inline weight derivation,
// byte-identical by counter purity.
func (e *Engine) dropPrefetch() {
	for _, pf := range e.prefetch {
		pf.drain()
		pf.valid = false
		pf.sampled, pf.weights, pf.bytes = nil, nil, 0
	}
}

// evictUncertain force-resolves up to n cached uncertain tuples through
// the evictOldest path, charging the given reason ("cap" | "budget")
// into the metrics split behind gola_uncertain_evictions{reason}.
func (e *Engine) evictUncertain(n int, reason string) {
	remaining := n
	for remaining > 0 {
		var victim *blockRunner
		for _, r := range e.runners {
			if victim == nil || len(r.uncertain) > len(victim.uncertain) {
				victim = r
			}
		}
		if victim == nil || len(victim.uncertain) == 0 {
			return
		}
		evict := remaining
		if evict > len(victim.uncertain) {
			evict = len(victim.uncertain)
		}
		folded, dropped := victim.evictOldest(evict, e.triEnv())
		e.metrics.UncertainEvictions += int64(evict)
		if reason == "budget" {
			e.metrics.BudgetEvictions += int64(evict)
		}
		e.updateDegradeReason()
		e.conv.stepOut += int64(evict)
		e.trace.Emit(Event{Kind: EvEvict, Block: victim.b.ID, Key: reason,
			Folded: folded, Dropped: dropped, Kept: len(victim.uncertain)})
		remaining -= evict
	}
}

// Resources returns the most recent mini-batch's memory observation
// (zero-valued before the first committed batch).
func (e *Engine) Resources() ResourceUsage { return e.lastUsage }
