package core

import (
	"fmt"
	"unsafe"

	"fluodb/internal/agg"
	"fluodb/internal/expr"
	"fluodb/internal/plan"
	"fluodb/internal/types"
)

// The online group table is an open-addressing hash table keyed by the
// group-by row itself (types.Row.HashKey + types.KeyEqual): the
// steady-state lookup never materializes a canonical key string. The
// string-keyed view (m, order) that parameter bindings, overlays and
// snapshots navigate by is maintained only when a group is created —
// once per group, not once per tuple.
//
// For blocks whose aggregates are all CLT-estimable (SUM/COUNT/AVG,
// non-DISTINCT — the overwhelmingly common case), the per-trial
// bootstrap replicas are kept as two flat float banks laid out
// [agg][trial] instead of Trials×Aggs interface-dispatched states: the
// trial fold becomes a branch-light float loop and group creation stops
// allocating Trials state sets. Blocks with any other aggregate
// (MIN/MAX, STDDEV, quantiles, DISTINCT, UDAFs) keep the generic
// per-trial State sets.

// onlineEntry is one group's incremental state: the main aggregate
// states plus per-trial bootstrap replicas (banked floats or generic
// state sets).
type onlineEntry struct {
	key  types.Row
	skey string      // canonical key string (computed once, at creation)
	hash uint64      // HashKey of key (cached for probing and rehash)
	main []agg.State // nil when the table is banked
	// mainW/mainV are the banked main accumulators (same per-kind
	// semantics as bankW/bankV, weight 1 per tuple), so the
	// deterministic fold skips the per-aggregate interface dispatch.
	mainW []float64
	mainV []float64
	reps  [][]agg.State // [trial][agg]; nil when the table is banked
	// bankW/bankV are the banked replica accumulators, indexed
	// [agg*trials + trial]. Per aggregate kind:
	//   COUNT: bankW = Σ w·repW over non-NULL inputs (bankV unused)
	//   SUM:   bankW = Σ w·repW, bankV = Σ v·w·repW over numeric inputs
	//   AVG:   same sums as SUM; result is bankV/bankW
	// bankW > 0 ⟺ the replica has evidence (weights are positive).
	bankW []float64
	bankV []float64
	// n counts deterministically folded tuples; groups below the
	// minimum-support threshold never commit deterministic decisions
	// (their bootstrap ranges are too unreliable).
	n int
	// ns counts folded tuples inside the bootstrap subsample. A group
	// with ns == 0 has no replica evidence: its replica states are
	// structurally present but empty, and must not be read as values.
	ns int
	// clt holds per-aggregate Welford moments for closed-form variation
	// ranges (nil when the block has no CLT-estimable aggregate).
	clt []cltAcc
}

// onlineTable maps group keys to online entries, preserving insertion
// order for deterministic output.
type onlineTable struct {
	entries []*onlineEntry
	// slots holds 1-based indexes into entries (0 = empty), power-of-two
	// sized, linear probing. Kept below 7/8 load.
	slots []int32
	mask  uint64
	// String-keyed view for binding/overlay/snapshot code; maintained at
	// group creation only. Shard tables (worker-private, merged into a
	// runner table after every batch) have m == nil: they skip the
	// string view entirely — skey is computed lazily at adoption time by
	// merge — and recycle their entries across batches through free.
	m     map[string]*onlineEntry
	order []string
	free  []*onlineEntry

	trials   int
	cltKinds []cltKind // per-aggregate CLT class (shared with the runner)
	banked   bool      // every aggregate is CLT-estimable → float banks
	// bankOfW/bankOfV redirect per-aggregate replica-bank reads to the
	// aggregate that owns the physical stream (nil = identity). Two
	// aggregates over the same plain column receive bit-identical bank
	// additions (COUNT/SUM/AVG all add Σ w·repW to W; SUM/AVG both add
	// Σ v·w·repW to V), so the columnar fold writes each distinct stream
	// once and reads resolve through these aliases. The row-oriented
	// fold keeps writing every aggregate's cells — twin cells then carry
	// redundant (identical) data, which aliased reads simply ignore —
	// so mixed row/columnar feeding stays consistent. Installed only
	// when the columnar plan proves the streams identical (plain clean
	// columns; see colPlan bank aliasing).
	bankOfW []int
	bankOfV []int
	// scratch buffers for per-tuple group-key evaluation (the engine is
	// single-threaded per table).
	keyRow types.Row
	cols   []int
	// gbCols/argCols hold the source column index when a group-by
	// expression / aggregate argument is a plain column reference
	// (-1 otherwise), so the per-tuple evaluation skips the interface
	// dispatch in the overwhelmingly common case.
	gbCols  []int
	argCols []int
	// wf holds the tuple's bootstrap weights as pre-scaled floats
	// (w·repW), so the banked fold is a branch-free add loop: a zero
	// weight adds 0.0, which is exact.
	wf []float64
	// bytes is the resource-ledger charge: bytes pinned by this table's
	// probe slots and entry-owned arrays (including free-listed recycled
	// entries, whose backing arrays stay live). Charged only where
	// allocations happen — fresh newEntry, grow — never on the per-tuple
	// hit path; merge transfers the worker's charge to the adopter.
	bytes int64
}

func newOnlineTable(trials int) *onlineTable {
	return &onlineTable{m: map[string]*onlineEntry{}, trials: trials}
}

// newShardTable builds a worker-private shard table: no string-keyed
// view (nobody navigates a shard by key string; merge computes skey at
// adoption), entries recycled batch to batch via recycle().
func newShardTable(trials int) *onlineTable {
	return &onlineTable{trials: trials}
}

// colIdx returns the source column index of a plain column reference,
// or -1 when the expression needs full evaluation.
func colIdx(x expr.Expr) int {
	if c, ok := x.(*expr.Col); ok && c.Idx >= 0 {
		return c.Idx
	}
	return -1
}

// configure installs the runner's aggregate classification. banked
// requires every aggregate to be CLT-estimable.
func (t *onlineTable) configure(cltKinds []cltKind) {
	t.cltKinds = cltKinds
	t.banked = true
	for _, k := range cltKinds {
		if k == cltNone {
			t.banked = false
			break
		}
	}
}

func newEntryStates(b *plan.Block) []agg.State {
	out := make([]agg.State, len(b.Aggs))
	for i := range b.Aggs {
		s, err := b.Aggs[i].NewState()
		if err != nil {
			panic(fmt.Sprintf("core: agg state: %v", err)) // validated at plan time
		}
		out[i] = s
	}
	return out
}

func (t *onlineTable) newEntry(b *plan.Block, key types.Row, hash uint64) *onlineEntry {
	if n := len(t.free); n > 0 {
		// Recycled (banked-only, see recycle) entry: zero the
		// accumulators, take over the key. The bank slices keep their
		// backing arrays — this is the cross-batch allocation the shard
		// tables exist to avoid.
		e := t.free[n-1]
		t.free = t.free[:n-1]
		if cap(e.key) >= len(key) {
			e.key = e.key[:len(key)]
			copy(e.key, key)
		} else {
			e.key = key.Clone()
		}
		e.skey = ""
		e.hash = hash
		for i := range e.mainW {
			e.mainW[i], e.mainV[i] = 0, 0
		}
		for i := range e.bankW {
			e.bankW[i], e.bankV[i] = 0, 0
		}
		for i := range e.clt {
			e.clt[i] = cltAcc{}
		}
		e.n, e.ns = 0, 0
		return e
	}
	e := &onlineEntry{key: key.Clone(), hash: hash}
	t.bytes += entryHeaderBytes + int64(len(key))*rowValueBytes
	if t.banked {
		na := len(b.Aggs)
		mw := make([]float64, 2*na)
		e.mainW, e.mainV = mw[:na:na], mw[na:]
		n := na * t.trials
		e.bankW = make([]float64, n)
		e.bankV = make([]float64, n)
		t.bytes += 8 * int64(2*na+2*n)
	} else {
		e.main = newEntryStates(b)
		e.reps = make([][]agg.State, t.trials)
		for j := range e.reps {
			e.reps[j] = newEntryStates(b)
		}
		// Generic agg.States are heap objects of aggregate-specific
		// shape; charge a flat estimate per state rather than walking
		// every implementation.
		t.bytes += int64(len(b.Aggs)*(1+t.trials)) * genericStateBytes
	}
	for _, k := range t.cltKinds {
		if k != cltNone {
			e.clt = make([]cltAcc, len(b.Aggs))
			t.bytes += int64(len(b.Aggs)) * cltAccBytes
			break
		}
	}
	return e
}

// Resource-ledger sizing constants for group-table entries. The bank
// arrays are charged exactly (capacity × 8); these cover the fixed
// per-entry overhead and the opaque generic states.
const (
	entryHeaderBytes  = int64(unsafe.Sizeof(onlineEntry{}))
	rowValueBytes     = int64(unsafe.Sizeof(types.Value{}))
	cltAccBytes       = int64(unsafe.Sizeof(cltAcc{}))
	genericStateBytes = 64 // estimate: one small heap object + interface header
)

// find probes for an entry with the given hash whose key projection
// equals keyRow on cols; nil on miss.
func (t *onlineTable) find(hash uint64, keyRow types.Row, cols []int) *onlineEntry {
	if t.slots == nil {
		return nil
	}
	i := hash & t.mask
	for {
		s := t.slots[i]
		if s == 0 {
			return nil
		}
		e := t.entries[s-1]
		if e.hash == hash && types.KeyEqual(e.key, keyRow, cols) {
			return e
		}
		i = (i + 1) & t.mask
	}
}

// insert appends e to the entry list and links it into the probe table
// (the caller has verified the key is absent).
func (t *onlineTable) insert(e *onlineEntry) {
	if (len(t.entries)+1)*8 > len(t.slots)*7 {
		t.grow()
	}
	t.entries = append(t.entries, e)
	idx := int32(len(t.entries)) // 1-based
	i := e.hash & t.mask
	for t.slots[i] != 0 {
		i = (i + 1) & t.mask
	}
	t.slots[i] = idx
}

func (t *onlineTable) grow() {
	n := len(t.slots) * 2
	if n < 16 {
		n = 16
	}
	t.bytes += 4 * int64(n-len(t.slots)) // old array is released
	t.slots = make([]int32, n)
	t.mask = uint64(n - 1)
	for i, e := range t.entries {
		j := e.hash & t.mask
		for t.slots[j] != 0 {
			j = (j + 1) & t.mask
		}
		t.slots[j] = int32(i + 1)
	}
}

// initKeyScratch lazily sizes the group-key evaluation scratch.
func (t *onlineTable) initKeyScratch(b *plan.Block) {
	if t.cols == nil && len(b.GroupBy) > 0 {
		t.keyRow = make(types.Row, len(b.GroupBy))
		t.cols = make([]int, len(b.GroupBy))
		t.gbCols = make([]int, len(b.GroupBy))
		for i := range t.cols {
			t.cols[i] = i
			t.gbCols[i] = colIdx(b.GroupBy[i])
		}
	}
}

// entryCurrent resolves (creating if needed) the group entry for the key
// currently staged in t.keyRow: hash, probe, insert, and — when the
// string-keyed view is live — skey/order maintenance. Callers fill
// keyRow first (entry for the row path, the columnar memo on a miss).
func (t *onlineTable) entryCurrent(b *plan.Block) *onlineEntry {
	h := t.keyRow.HashKey(t.cols)
	if e := t.find(h, t.keyRow, t.cols); e != nil {
		return e
	}
	e := t.newEntry(b, t.keyRow, h)
	t.insert(e)
	if t.m != nil {
		e.skey = t.keyRow.KeyString(t.cols)
		t.m[e.skey] = e
		t.order = append(t.order, e.skey)
	}
	return e
}

// entry returns (creating if needed) the group entry for the row in ctx.
// The steady-state hit path is allocation-free: key evaluation into a
// reused scratch row, hash, probe.
func (t *onlineTable) entry(b *plan.Block, ctx *expr.Ctx) *onlineEntry {
	t.initKeyScratch(b)
	row := ctx.Row
	for i, g := range b.GroupBy {
		if c := t.gbCols[i]; c >= 0 && c < len(row) {
			t.keyRow[i] = row[c]
		} else {
			t.keyRow[i] = g.Eval(ctx)
		}
	}
	return t.entryCurrent(b)
}

// fold adds the row in ctx into the main state (weight 1) and — when the
// tuple is in the bootstrap subsample (repW > 0, carrying the 1/p
// inverse sampling weight) — into each replica with its Poisson(1)
// multiplicity.
func (t *onlineTable) fold(b *plan.Block, ctx *expr.Ctx, weights []uint8, repW float64) {
	e := t.entry(b, ctx)
	e.n++
	if repW > 0 {
		e.ns++
	}
	if t.argCols == nil {
		t.argCols = make([]int, len(b.Aggs))
		for i := range b.Aggs {
			t.argCols[i] = colIdx(b.Aggs[i].Arg)
		}
	}
	if t.banked {
		var wf []float64
		if repW > 0 && len(weights) > 0 {
			// Pre-scale the multiplicities once per tuple; the
			// per-aggregate bank folds become branch-free float loops.
			if cap(t.wf) < len(weights) {
				t.wf = make([]float64, len(weights))
			}
			wf = t.wf[:len(weights)]
			for j, w := range weights {
				wf[j] = float64(w) * repW
			}
		}
		row := ctx.Row
		for i := range b.Aggs {
			var v types.Value
			if c := t.argCols[i]; c >= 0 && c < len(row) {
				v = row[c]
			} else {
				v = b.Aggs[i].Arg.Eval(ctx)
			}
			// Gate exactly as State.Add + cltAcc would: COUNT folds any
			// non-NULL input, SUM/AVG fold numeric inputs.
			if t.cltKinds[i] == cltCount {
				if !v.IsNull() {
					e.mainW[i]++
					e.clt[i].add(1)
				}
			} else if f, ok := v.AsFloat(); ok {
				e.mainW[i]++
				e.mainV[i] += f
				e.clt[i].add(f)
			}
			if wf != nil {
				t.foldBank(e, i, v, wf)
			}
		}
		return
	}
	for i := range b.Aggs {
		var v types.Value
		if c := t.argCols[i]; c >= 0 && c < len(ctx.Row) {
			v = ctx.Row[c]
		} else {
			v = b.Aggs[i].Arg.Eval(ctx)
		}
		e.main[i].Add(v, 1)
		if e.clt != nil && t.cltKinds[i] != cltNone && !v.IsNull() {
			switch t.cltKinds[i] {
			case cltCount:
				e.clt[i].add(1)
			default:
				if f, ok := v.AsFloat(); ok {
					e.clt[i].add(f)
				}
			}
		}
		if repW <= 0 {
			continue
		}
		for j, w := range weights {
			if w > 0 {
				e.reps[j][i].Add(v, float64(w)*repW)
			}
		}
	}
}

// foldBank folds one aggregate input into the banked replicas, given
// the tuple's pre-scaled weights (w·repW). The add is gated exactly as
// the corresponding State.Add would gate it (COUNT skips NULLs, SUM/AVG
// skip non-numerics); a zero weight adds 0.0, which leaves the
// accumulator bit-identical to skipping it.
func (t *onlineTable) foldBank(e *onlineEntry, i int, v types.Value, wf []float64) {
	base := i * t.trials
	bw := e.bankW[base : base+len(wf)]
	if t.cltKinds[i] == cltCount {
		if v.IsNull() {
			return
		}
		for j, x := range wf {
			bw[j] += x
		}
		return
	}
	f, ok := v.AsFloat()
	if !ok {
		return
	}
	bv := e.bankV[base : base+len(wf)]
	for j, x := range wf {
		bw[j] += x
		bv[j] += f * x
	}
}

// mainStates returns the entry's main aggregate states, materializing a
// State view of the banked accumulators when the table is banked.
// Banked views are fresh objects: callers may mutate them freely.
func (t *onlineTable) mainStates(e *onlineEntry) []agg.State {
	if e.mainW == nil {
		return e.main
	}
	out := make([]agg.State, len(t.cltKinds))
	for i, k := range t.cltKinds {
		switch k {
		case cltCount:
			out[i] = agg.CountStateOf(e.mainW[i])
		case cltSum:
			out[i] = agg.SumStateOf(e.mainV[i], e.mainW[i] > 0)
		default: // cltAvg
			out[i] = agg.AvgStateOf(e.mainV[i], e.mainW[i])
		}
	}
	return out
}

// trialStates returns trial j's replica states, materializing a State
// view of the bank cells when the table is banked. Banked views are
// fresh objects: callers may mutate them freely.
func (t *onlineTable) trialStates(e *onlineEntry, j int) []agg.State {
	if e.bankW == nil {
		return e.reps[j]
	}
	out := make([]agg.State, len(t.cltKinds))
	for i, k := range t.cltKinds {
		w := e.bankW[t.bankW(i)*t.trials+j]
		switch k {
		case cltCount:
			out[i] = agg.CountStateOf(w)
		case cltSum:
			out[i] = agg.SumStateOf(e.bankV[t.bankV(i)*t.trials+j], w > 0)
		default: // cltAvg
			out[i] = agg.AvgStateOf(e.bankV[t.bankV(i)*t.trials+j], w)
		}
	}
	return out
}

// bankW/bankV resolve aggregate i's physical replica-bank stream
// through the alias tables (identity when no aliasing is installed).
func (t *onlineTable) bankW(i int) int {
	if t.bankOfW == nil {
		return i
	}
	return t.bankOfW[i]
}

func (t *onlineTable) bankV(i int) int {
	if t.bankOfV == nil {
		return i
	}
	return t.bankOfV[i]
}

// mergeEntry folds a worker's group entry into the main entry. Both
// entries come from tables configured identically, so bank layouts
// match.
func (e *onlineEntry) mergeEntry(o *onlineEntry) {
	e.n += o.n
	e.ns += o.ns
	if e.mainW != nil {
		for i := range e.mainW {
			e.mainW[i] += o.mainW[i]
			e.mainV[i] += o.mainV[i]
		}
	} else {
		for i := range e.main {
			e.main[i].Merge(o.main[i])
		}
	}
	if e.bankW != nil {
		for i, w := range o.bankW {
			e.bankW[i] += w
		}
		for i, v := range o.bankV {
			e.bankV[i] += v
		}
	} else {
		for j := range e.reps {
			for i := range e.reps[j] {
				e.reps[j][i].Merge(o.reps[j][i])
			}
		}
	}
	if e.clt != nil && o.clt != nil {
		for i := range e.clt {
			e.clt[i].merge(o.clt[i])
		}
	}
}

// merge folds a worker table into t, preserving t's insertion order for
// existing groups and appending new groups in the worker's order.
// Adopted entries (new groups moving wholesale into t) are nil'ed out
// of o so a following o.recycle() cannot hand them back out.
func (t *onlineTable) merge(o *onlineTable) {
	cols := t.cols
	if cols == nil {
		cols = o.cols // t may not have seen a tuple yet
	}
	// Transfer the worker's ledger charge wholesale: adopted entries now
	// live here, and o's retained arrays (slots, free list) were charged
	// once and will not be re-charged when recycle reuses them, so the
	// sum across tables stays exact.
	t.bytes += o.bytes
	o.bytes = 0
	for k, oe := range o.entries {
		e := t.find(oe.hash, oe.key, cols)
		if e == nil {
			t.insert(oe)
			if t.m != nil {
				if oe.skey == "" && len(oe.key) > 0 {
					// Shard tables skip the string key; compute it once, at
					// adoption. (A scalar block's sole group legitimately has
					// skey "", and recomputing it would yield "" again.)
					oe.skey = oe.key.KeyString(cols)
				}
				t.m[oe.skey] = oe
				t.order = append(t.order, oe.skey)
			}
			// A keyless destination (a shard table adopting another
			// shard's sub-delta inside a shard engine) keeps deferring
			// the string key to its own adoption into the runner table.
			o.entries[k] = nil
			continue
		}
		e.mergeEntry(oe)
	}
}

// recycle resets a shard table for the next batch: entries not adopted
// by the merge target return to the free list (banked tables only —
// generic agg.States have no reset), probe slots clear, the entry list
// truncates. The backing arrays all survive, so a steady-state batch
// creates no per-group garbage.
func (t *onlineTable) recycle() {
	for i, e := range t.entries {
		if e != nil && t.banked {
			t.free = append(t.free, e)
		}
		t.entries[i] = nil
	}
	t.entries = t.entries[:0]
	for i := range t.slots {
		t.slots[i] = 0
	}
}
